// File-based workflow: write a dataset to Matrix Market, read it back,
// run a script against it, and export the result — the round trip an
// external user takes when bringing their own data.
//
//   ./example_file_based [workdir]

#include <cstdio>
#include <string>

#include "common/string_util.h"
#include "data/generators.h"
#include "io/matrix_market.h"
#include "matrix/kernels.h"
#include "runtime/program_runner.h"

using namespace remac;

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "/tmp";
  const std::string a_path = dir + "/remac_example_A.mtx";
  const std::string b_path = dir + "/remac_example_b.mtx";
  const std::string x_path = dir + "/remac_example_x.mtx";

  // 1. Produce input files (stand-in for data exported from elsewhere).
  {
    DataCatalog staging;
    DatasetSpec spec;
    spec.name = "stage";
    spec.rows = 20000;
    spec.cols = 120;
    spec.sparsity = 0.01;
    spec.zipf_rows = 1.0;
    spec.zipf_cols = 1.0;
    spec.seed = 2024;
    if (Status st = RegisterDataset(&staging, spec); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    if (Status st = WriteMatrixMarket(a_path, staging.Value("stage").value());
        !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    (void)WriteMatrixMarket(b_path, staging.Value("stage_b").value());
    std::printf("wrote %s and %s\n", a_path.c_str(), b_path.c_str());
  }

  // 2. Load them into a fresh catalog, exactly as `remac run --data`
  //    does, and run ridge regression through the adaptive optimizer.
  DataCatalog catalog;
  auto a = ReadMatrixMarket(a_path);
  auto b = ReadMatrixMarket(b_path);
  if (!a.ok() || !b.ok()) {
    std::fprintf(stderr, "read failed\n");
    return 1;
  }
  catalog.Register("A", std::move(a).value());
  catalog.Register("A_b", std::move(b).value());

  const int iterations = 30;
  const std::string script =
      "A = read(\"A\");\n"
      "b = read(\"A_b\");\n"
      "x = zeros(ncol(A), 1);\n"
      "i = 0;\n"
      "while (i < 30) {\n"
      "  g = t(A) %*% (A %*% x) - t(A) %*% b + 0.1 * x;\n"
      "  x = x - 0.000001 * g;\n"
      "  i = i + 1;\n"
      "}\n";
  RunConfig config;
  config.optimizer = OptimizerKind::kRemacAdaptive;
  config.max_iterations = iterations;
  auto run = RunScript(script, catalog, config);
  if (!run.ok()) {
    std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
    return 1;
  }
  std::printf("optimized with %d CSE + %d LSE; simulated %s\n",
              run->optimize.applied_cse, run->optimize.applied_lse,
              HumanSeconds(run->breakdown.TotalSeconds() -
                           run->breakdown.compilation_seconds)
                  .c_str());

  // 3. Export the solution.
  const Matrix x = run->env.at("x").AsMatrix();
  if (Status st = WriteMatrixMarket(x_path, x, /*dense=*/true); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("|x|_F = %.6f, written to %s\n", FrobeniusNorm(x),
              x_path.c_str());
  return 0;
}
