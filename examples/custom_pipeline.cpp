// Using the library below the one-call RunScript API: compile a script,
// run the block-wise search yourself, inspect the elimination options and
// the cost graph, pick options manually, and execute the emitted program.
// This is the integration surface for embedding ReMac in another engine
// (paper Section 5: the components are switchable).
//
//   ./example_custom_pipeline

#include <cstdio>

#include "algorithms/scripts.h"
#include "common/string_util.h"
#include "core/adaptive_optimizer.h"
#include "core/analysis.h"
#include "core/block_search.h"
#include "core/cost_graph.h"
#include "core/dp_prober.h"
#include "data/generators.h"
#include "plan/plan_builder.h"
#include "runtime/executor.h"
#include "sparsity/estimator.h"

using namespace remac;

int main() {
  // Data + script.
  DataCatalog catalog;
  DatasetSpec spec;
  spec.name = "ds";
  spec.rows = 30000;
  spec.cols = 80;
  spec.sparsity = 0.02;
  spec.seed = 33;
  if (Status st = RegisterDataset(&catalog, spec); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const int iterations = 20;
  auto program = CompileScript(DfpScript("ds", iterations), catalog);
  if (!program.ok()) {
    std::fprintf(stderr, "%s\n", program.status().ToString().c_str());
    return 1;
  }

  // --- Automatic elimination, by hand -----------------------------------
  const LoopStructure loop = FindLoop(*program);
  auto outputs = InlineLoopBody(loop.loop->body);
  auto space = BuildSearchSpace(*outputs, loop.loop_assigned,
                                InferSymmetricVars(loop));
  std::printf("Coordinate axis: %lld factors across %zu blocks\n",
              static_cast<long long>(space->coordinate_length),
              space->blocks.size());
  for (size_t b = 0; b < space->blocks.size() && b < 6; ++b) {
    std::printf("  block %zu: %s\n", b, space->blocks[b].ToString().c_str());
  }

  SearchReport search_report;
  const auto options = BlockWiseSearch(*space, &search_report);
  std::printf("\nBlock-wise search: %lld windows in %s -> %zu options\n",
              static_cast<long long>(search_report.windows_visited),
              HumanSeconds(search_report.wall_seconds).c_str(),
              options.size());
  int shown = 0;
  for (const auto& opt : options) {
    if (opt.occurrences.front().Length() >= 3 && shown < 5) {
      std::printf("  %s\n", opt.ToString().c_str());
      ++shown;
    }
  }

  // --- Adaptive elimination, by hand ------------------------------------
  MncEstimator estimator;
  CostModel cost_model(ClusterModel(), &estimator, &catalog);
  auto vars = PropagateProgramStats(*program, catalog, cost_model);
  CostGraph graph(&*space, &cost_model, &*vars, iterations);
  if (Status st = graph.Build(); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  ProbeReport probe;
  auto chosen = AdaptiveProbe(graph, options, &probe);
  std::printf(
      "\nDP probing: %d evaluations, estimated per-iteration cost %s -> %s\n",
      probe.evaluations, HumanSeconds(probe.baseline_cost).c_str(),
      HumanSeconds(probe.chosen_cost).c_str());
  for (const auto* opt : chosen.value()) {
    std::printf("  picked %s\n", opt->ToString().c_str());
  }

  // --- Emission + execution through the packaged optimizer --------------
  OptimizerConfig config;
  config.iterations = iterations;
  ReMacOptimizer optimizer(ClusterModel(), &estimator, &catalog, config);
  OptimizeReport report;
  auto optimized = optimizer.Optimize(*program, &report);
  if (!optimized.ok()) {
    std::fprintf(stderr, "%s\n", optimized.status().ToString().c_str());
    return 1;
  }
  TransmissionLedger ledger{ClusterModel()};
  Executor executor(ClusterModel(), &catalog, &ledger);
  if (Status st = executor.Run(optimized->statements, iterations); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("\nExecuted optimized program: simulated %s [%s]\n",
              HumanSeconds(ledger.TotalSeconds()).c_str(),
              ledger.Breakdown().ToString().c_str());
  return 0;
}
