// Skew sensitivity: ReMac's adaptive elimination changes its plan as the
// data distribution changes (paper Section 6.5). This example sweeps the
// Zipf exponent of a cri2-shaped dataset and shows which options the
// optimizer picks and what that does to simulated transmission time.
//
//   ./example_skewed_data

#include <cstdio>

#include "algorithms/scripts.h"
#include "common/string_util.h"
#include "data/generators.h"
#include "runtime/program_runner.h"

using namespace remac;

int main() {
  const int iterations = 20;
  std::printf("%-10s %10s %10s %8s  %s\n", "dataset", "SystemDS", "ReMac",
              "applied", "notes (chosen options)");
  for (double exponent : {0.0, 0.7, 1.4, 2.1, 2.8}) {
    DataCatalog catalog;
    DatasetSpec spec = ZipfSpec(exponent);
    // Smaller rows than the benchmark scale keeps this example snappy.
    spec.rows = 20000;
    if (Status st = RegisterDataset(&catalog, spec); !st.ok()) {
      std::fprintf(stderr, "dataset: %s\n", st.ToString().c_str());
      return 1;
    }
    const std::string script = DfpScript(spec.name, iterations);

    auto execution = [&](OptimizerKind kind, RunReport* out) {
      RunConfig config;
      config.optimizer = kind;
      config.max_iterations = iterations;
      auto run = RunScript(script, catalog, config);
      if (!run.ok()) return -1.0;
      if (out != nullptr) *out = *run;
      return run->breakdown.TotalSeconds() -
             run->breakdown.compilation_seconds;
    };
    RunReport remac_report;
    const double systemds = execution(OptimizerKind::kSystemDs, nullptr);
    const double remac =
        execution(OptimizerKind::kRemacAdaptive, &remac_report);
    std::string notes;
    for (size_t i = 0;
         i < remac_report.optimize.applied_options.size() && i < 2; ++i) {
      if (!notes.empty()) notes += ", ";
      notes += remac_report.optimize.applied_options[i];
    }
    std::printf("%-10s %10s %10s %5d+%dL  %s\n", spec.name.c_str(),
                HumanSeconds(systemds).c_str(), HumanSeconds(remac).c_str(),
                remac_report.optimize.applied_cse,
                remac_report.optimize.applied_lse, notes.c_str());
  }
  std::printf(
      "\nThe plan adapts: the A^T A hoist is only chosen where the\n"
      "estimated product sparsity makes it pay off.\n");
  return 0;
}
