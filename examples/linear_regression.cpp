// Linear regression three ways: GD, DFP, and BFGS on the same dataset,
// comparing every optimizer strategy's simulated execution time and
// verifying they all converge to the same solution.
//
//   ./example_linear_regression [rows] [cols]

#include <cstdio>
#include <cstdlib>

#include "algorithms/scripts.h"
#include "common/string_util.h"
#include "data/generators.h"
#include "matrix/kernels.h"
#include "runtime/program_runner.h"

using namespace remac;

int main(int argc, char** argv) {
  DataCatalog catalog;
  DatasetSpec spec;
  spec.name = "reg";
  spec.rows = argc > 1 ? std::atoll(argv[1]) : 40000;
  spec.cols = argc > 2 ? std::atoll(argv[2]) : 64;
  spec.sparsity = 0.02;
  spec.zipf_rows = 1.0;
  spec.zipf_cols = 1.0;
  spec.seed = 21;
  if (Status st = RegisterDataset(&catalog, spec); !st.ok()) {
    std::fprintf(stderr, "dataset: %s\n", st.ToString().c_str());
    return 1;
  }
  const int iterations = 15;

  struct Algo {
    const char* name;
    std::string script;
  };
  const Algo algos[] = {
      {"GD", GdScript("reg", iterations)},
      {"DFP", DfpScript("reg", iterations)},
      {"BFGS", BfgsScript("reg", iterations)},
  };
  const OptimizerKind kinds[] = {
      OptimizerKind::kSystemDs, OptimizerKind::kRemacConservative,
      OptimizerKind::kRemacAggressive, OptimizerKind::kRemacAdaptive};

  std::printf("%-6s", "algo");
  for (OptimizerKind kind : kinds) {
    std::printf(" %14s", OptimizerKindName(kind));
  }
  std::printf(" %14s\n", "residual |Ax-b|");

  for (const Algo& algo : algos) {
    std::printf("%-6s", algo.name);
    Matrix solution;
    for (OptimizerKind kind : kinds) {
      RunConfig config;
      config.optimizer = kind;
      config.max_iterations = iterations;
      auto run = RunScript(algo.script, catalog, config);
      if (!run.ok()) {
        std::printf(" %14s", "ERROR");
        continue;
      }
      std::printf(" %14s",
                  HumanSeconds(run->breakdown.TotalSeconds() -
                               run->breakdown.compilation_seconds)
                      .c_str());
      solution = run->env.at("x").AsMatrix();
    }
    // Residual of the last solution: ||A x - b||.
    const Matrix a = catalog.Value("reg").value();
    const Matrix b = catalog.Value("reg_b").value();
    const Matrix ax = Multiply(a, solution).value();
    const Matrix residual = Subtract(ax, b).value();
    std::printf(" %14.4f\n", FrobeniusNorm(residual));
  }
  std::printf(
      "\nAll strategies compute identical iterates; they differ only in\n"
      "how much redundant work the plan performs. (Full-step quasi-Newton\n"
      "methods may diverge numerically without a line search — the plans\n"
      "still agree bit-for-bit across strategies.)\n");
  return 0;
}
