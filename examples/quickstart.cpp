// Quickstart: run a linear-algebra script through ReMac and see what the
// optimizer found and how much simulated cluster time it saved.
//
//   ./example_quickstart

#include <cstdio>

#include "algorithms/scripts.h"
#include "common/string_util.h"
#include "data/generators.h"
#include "runtime/program_runner.h"

using namespace remac;

int main() {
  // 1. Generate a dataset and register it (plus its label vector) in the
  //    catalog under the name "demo". In a real deployment this is where
  //    you load your data.
  DataCatalog catalog;
  DatasetSpec spec;
  spec.name = "demo";
  spec.rows = 50000;
  spec.cols = 100;
  spec.sparsity = 0.01;
  spec.zipf_rows = 1.0;
  spec.zipf_cols = 1.0;
  spec.seed = 7;
  if (Status st = RegisterDataset(&catalog, spec); !st.ok()) {
    std::fprintf(stderr, "dataset: %s\n", st.ToString().c_str());
    return 1;
  }

  // 2. A DML-like script: DFP for least squares (paper Equations 1-2).
  const int iterations = 20;
  const std::string script = DfpScript("demo", iterations);
  std::printf("Script:\n%s\n", script.c_str());

  // 3. Run it twice: SystemDS-style baseline vs ReMac adaptive.
  for (OptimizerKind kind :
       {OptimizerKind::kSystemDs, OptimizerKind::kRemacAdaptive}) {
    RunConfig config;
    config.optimizer = kind;
    config.max_iterations = iterations;
    auto run = RunScript(script, catalog, config);
    if (!run.ok()) {
      std::fprintf(stderr, "run: %s\n", run.status().ToString().c_str());
      return 1;
    }
    std::printf("=== %s ===\n", OptimizerKindName(kind));
    std::printf("  compile: %s (wall)\n",
                HumanSeconds(run->compile_wall_seconds).c_str());
    std::printf("  simulated cluster time: %s  [%s]\n",
                HumanSeconds(run->breakdown.TotalSeconds() -
                             run->breakdown.compilation_seconds)
                    .c_str(),
                run->breakdown.ToString().c_str());
    if (kind == OptimizerKind::kRemacAdaptive) {
      std::printf("  elimination options found: %d, applied: %d CSE + %d LSE\n",
                  run->optimize.options_found, run->optimize.applied_cse,
                  run->optimize.applied_lse);
      std::printf("  optimized program:\n%s\n",
                  run->optimized_source.c_str());
    }
  }
  return 0;
}
