#include <gtest/gtest.h>

#include "algorithms/scripts.h"
#include "core/adaptive_optimizer.h"
#include "data/generators.h"
#include "plan/plan_builder.h"
#include "runtime/executor.h"
#include "sparsity/estimator.h"

namespace remac {
namespace {

DataCatalog OptCatalog(int64_t rows = 300, int64_t cols = 10) {
  DataCatalog catalog;
  DatasetSpec spec;
  spec.name = "ds";
  spec.rows = rows;
  spec.cols = cols;
  spec.sparsity = 0.5;
  spec.seed = 6;
  EXPECT_TRUE(RegisterDataset(&catalog, spec, true).ok());
  return catalog;
}

Result<CompiledProgram> OptimizeScript(const std::string& script,
                                       const DataCatalog& catalog,
                                       OptimizerConfig config,
                                       OptimizeReport* report = nullptr) {
  auto program = CompileScript(script, catalog);
  if (!program.ok()) return program.status();
  static MetadataEstimator estimator;
  ReMacOptimizer optimizer(ClusterModel(), &estimator, &catalog, config);
  return optimizer.Optimize(*program, report);
}

Matrix RunProgram(const CompiledProgram& program, const DataCatalog& catalog,
                  const std::string& var, int iterations) {
  Executor executor(ClusterModel(), &catalog, nullptr);
  EXPECT_TRUE(executor.Run(program.statements, iterations).ok());
  auto value = executor.Get(var);
  EXPECT_TRUE(value.ok());
  return value->AsMatrix();
}

TEST(Optimizer, EmitsHoistedLseBeforeLoop) {
  const DataCatalog catalog = OptCatalog();
  OptimizerConfig config;
  config.strategy = EliminationStrategy::kAutomatic;
  OptimizeReport report;
  auto optimized = OptimizeScript(GdScript("ds", 5), catalog, config, &report);
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
  EXPECT_GT(report.applied_lse, 0);
  // Hoisted temp assignments appear before the loop statement.
  bool saw_temp = false;
  for (const auto& stmt : optimized->statements) {
    if (stmt.kind == CompiledStmt::Kind::kLoop) break;
    saw_temp = saw_temp || stmt.is_temp;
  }
  EXPECT_TRUE(saw_temp);
}

TEST(Optimizer, OptimizedGdMatchesUnoptimized) {
  const DataCatalog catalog = OptCatalog();
  auto reference = CompileScript(GdScript("ds", 4), catalog);
  ASSERT_TRUE(reference.ok());
  const Matrix expected = RunProgram(*reference, catalog, "x", 4);
  for (EliminationStrategy strategy :
       {EliminationStrategy::kNone, EliminationStrategy::kAutomatic,
        EliminationStrategy::kConservative, EliminationStrategy::kAggressive,
        EliminationStrategy::kAdaptive}) {
    OptimizerConfig config;
    config.strategy = strategy;
    auto optimized = OptimizeScript(GdScript("ds", 4), catalog, config);
    ASSERT_TRUE(optimized.ok()) << EliminationStrategyName(strategy);
    const Matrix got = RunProgram(*optimized, catalog, "x", 4);
    EXPECT_TRUE(got.ApproxEquals(expected, 1e-8))
        << EliminationStrategyName(strategy);
  }
}

TEST(Optimizer, OptimizedDfpMatchesUnoptimized) {
  const DataCatalog catalog = OptCatalog();
  auto reference = CompileScript(DfpScript("ds", 3), catalog);
  ASSERT_TRUE(reference.ok());
  const Matrix expected_x = RunProgram(*reference, catalog, "x", 3);
  const Matrix expected_h = RunProgram(*reference, catalog, "H", 3);
  for (EliminationStrategy strategy :
       {EliminationStrategy::kAutomatic, EliminationStrategy::kAdaptive}) {
    OptimizerConfig config;
    config.strategy = strategy;
    auto optimized = OptimizeScript(DfpScript("ds", 3), catalog, config);
    ASSERT_TRUE(optimized.ok());
    EXPECT_TRUE(RunProgram(*optimized, catalog, "x", 3)
                    .ApproxEquals(expected_x, 1e-7))
        << EliminationStrategyName(strategy);
    EXPECT_TRUE(RunProgram(*optimized, catalog, "H", 3)
                    .ApproxEquals(expected_h, 1e-7))
        << EliminationStrategyName(strategy);
  }
}

TEST(Optimizer, OptimizedBfgsAndGnmfMatch) {
  const DataCatalog catalog = OptCatalog();
  for (const std::string& script :
       {BfgsScript("ds", 3), GnmfScript("ds", 4, 3)}) {
    auto reference = CompileScript(script, catalog);
    ASSERT_TRUE(reference.ok());
    const std::string var = script.find("V =") != std::string::npos ? "W" : "x";
    const Matrix expected = RunProgram(*reference, catalog, var, 3);
    OptimizerConfig config;
    config.strategy = EliminationStrategy::kAdaptive;
    auto optimized = OptimizeScript(script, catalog, config);
    ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
    EXPECT_TRUE(
        RunProgram(*optimized, catalog, var, 3).ApproxEquals(expected, 1e-7));
  }
}

TEST(Optimizer, LoopFreeProgramGetsCse) {
  const DataCatalog catalog = OptCatalog();
  OptimizerConfig config;
  config.strategy = EliminationStrategy::kAdaptive;
  OptimizeReport report;
  auto optimized =
      OptimizeScript(PartialDfpScript("ds"), catalog, config, &report);
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
  EXPECT_GT(report.options_found, 0);
  // Result value is preserved.
  auto reference = CompileScript(PartialDfpScript("ds"), catalog);
  ASSERT_TRUE(reference.ok());
  const Matrix expected = RunProgram(*reference, catalog, "val", 1);
  EXPECT_TRUE(
      RunProgram(*optimized, catalog, "val", 1).ApproxEquals(expected, 1e-8));
}

TEST(Optimizer, ForcedKeysApplyExactly) {
  const DataCatalog catalog = OptCatalog();
  OptimizerConfig config;
  config.forced_option_keys = {JoinKey({"A'", "A"})};
  OptimizeReport report;
  auto optimized =
      OptimizeScript(GdScript("ds", 5), catalog, config, &report);
  ASSERT_TRUE(optimized.ok());
  EXPECT_EQ(report.applied_cse + report.applied_lse, 1);
  ASSERT_EQ(report.applied_options.size(), 1u);
  EXPECT_NE(report.applied_options[0].find("A"), std::string::npos);
}

TEST(Optimizer, ReportCountsConsistent) {
  const DataCatalog catalog = OptCatalog();
  OptimizerConfig config;
  config.strategy = EliminationStrategy::kAdaptive;
  OptimizeReport report;
  auto optimized =
      OptimizeScript(DfpScript("ds", 5), catalog, config, &report);
  ASSERT_TRUE(optimized.ok());
  EXPECT_EQ(static_cast<int>(report.applied_options.size()),
            report.applied_cse + report.applied_lse);
  EXPECT_GE(report.options_found,
            report.applied_cse + report.applied_lse);
  EXPECT_GT(report.total_compile_seconds, 0.0);
  EXPECT_GT(report.search.windows_visited, 0);
}

TEST(Optimizer, TreeWiseSearchPathWorks) {
  const DataCatalog catalog = OptCatalog();
  OptimizerConfig config;
  config.search = SearchMethod::kTreeWise;
  config.treewise_budget = 100000000;
  auto reference = CompileScript(GdScript("ds", 3), catalog);
  ASSERT_TRUE(reference.ok());
  const Matrix expected = RunProgram(*reference, catalog, "x", 3);
  auto optimized = OptimizeScript(GdScript("ds", 3), catalog, config);
  ASSERT_TRUE(optimized.ok());
  EXPECT_TRUE(
      RunProgram(*optimized, catalog, "x", 3).ApproxEquals(expected, 1e-8));
}

TEST(Optimizer, EnumCombinerPathWorks) {
  const DataCatalog catalog = OptCatalog();
  OptimizerConfig config;
  config.combiner = CombinerKind::kEnumBreadthFirst;
  config.enum_budget = 500;
  auto reference = CompileScript(DfpScript("ds", 3), catalog);
  ASSERT_TRUE(reference.ok());
  const Matrix expected = RunProgram(*reference, catalog, "x", 3);
  auto optimized = OptimizeScript(DfpScript("ds", 3), catalog, config);
  ASSERT_TRUE(optimized.ok());
  EXPECT_TRUE(
      RunProgram(*optimized, catalog, "x", 3).ApproxEquals(expected, 1e-7));
}

TEST(Optimizer, TempsScheduledBeforeUse) {
  const DataCatalog catalog = OptCatalog();
  OptimizerConfig config;
  config.strategy = EliminationStrategy::kAutomatic;
  auto optimized = OptimizeScript(DfpScript("ds", 3), catalog, config);
  ASSERT_TRUE(optimized.ok());
  // Executing validates the schedule: any temp used before assignment
  // would fail with NotFound.
  Executor executor(ClusterModel(), &catalog, nullptr);
  EXPECT_TRUE(executor.Run(optimized->statements, 3).ok());
}

}  // namespace
}  // namespace remac
