// Request-scoped tracing + contention-profiling tests: context
// propagation across pool tasks, rooted span trees from traced service
// runs, bitwise identity of results with tracing on vs off, the shared
// trace-clock epoch, and the contended-only semantics of the profiling
// clocks. The Trace*/Contention* suites run under TSan/ASan/UBSan via
// scripts/check.sh.

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "algorithms/scripts.h"
#include "data/generators.h"
#include "obs/metrics.h"
#include "obs/trace_context.h"
#include "sched/thread_pool.h"
#include "sched/trace.h"
#include "service/plan_service.h"

namespace remac {
namespace {

/// Restores the global tracer flags on scope exit so a failing test
/// cannot leak tracing into unrelated suites.
struct TracerGuard {
  ~TracerGuard() {
    Tracer::Global().SetEnabled(false);
    Tracer::Global().SetProfiling(false);
  }
};

DataCatalog TraceCatalog() {
  DataCatalog catalog;
  DatasetSpec spec;
  spec.name = "tr";
  spec.rows = 120;
  spec.cols = 12;
  spec.sparsity = 0.4;
  spec.seed = 5;
  EXPECT_TRUE(RegisterDataset(&catalog, spec).ok());
  return catalog;
}

RunConfig TraceConfig() {
  RunConfig config;
  config.max_iterations = 4;
  config.executed_iterations = 1;
  return config;
}

// ---------------------------------------------------------------------
// Context propagation.
// ---------------------------------------------------------------------

TEST(TraceContextTest, DisabledTracerStartsNoRequests) {
  ASSERT_FALSE(Tracer::Global().enabled());
  EXPECT_EQ(Tracer::Global().StartRequest(), nullptr);
  EXPECT_FALSE(CurrentTraceContext().active());
  // Spans against an inactive context are dropped without effect.
  ScopedTraceSpan span("ignored");
  EXPECT_FALSE(span.active());
}

TEST(TraceContextTest, ScopeInstallsAndRestores) {
  TracerGuard guard;
  Tracer::Global().SetEnabled(true);
  auto trace = Tracer::Global().StartRequest();
  ASSERT_NE(trace, nullptr);
  {
    TraceContextScope scope(TraceContext{trace, RequestTrace::kRootSpanId});
    EXPECT_TRUE(CurrentTraceContext().active());
    EXPECT_EQ(CurrentTraceContext().trace.get(), trace.get());
  }
  EXPECT_FALSE(CurrentTraceContext().active());
}

TEST(TraceContextTest, PoolSubmitCarriesContextToWorker) {
  TracerGuard guard;
  Tracer::Global().SetEnabled(true);
  ThreadPool pool(2);
  auto trace = Tracer::Global().StartRequest();
  ASSERT_NE(trace, nullptr);
  std::atomic<bool> done{false};
  std::atomic<bool> worker_saw_trace{false};
  {
    TraceContextScope scope(TraceContext{trace, RequestTrace::kRootSpanId});
    pool.Submit([&] {
      worker_saw_trace = CurrentTraceContext().trace.get() == trace.get();
      {
        ScopedTraceSpan span("on-worker");
      }
      done = true;
    });
  }
  while (!done) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_TRUE(worker_saw_trace);
  // The pool wrapper may add a "pool-queue" wait span when the worker
  // took >10us to pick the task up; the worker-side span must be there
  // either way, parented under the root.
  int on_worker_spans = 0;
  for (const TraceSpan& span : trace->Spans()) {
    if (span.name == "on-worker") {
      ++on_worker_spans;
      EXPECT_EQ(span.parent, RequestTrace::kRootSpanId);
    } else {
      EXPECT_EQ(span.name, "pool-queue");
      EXPECT_STREQ(span.category, "wait");
    }
  }
  EXPECT_EQ(on_worker_spans, 1);
}

TEST(TraceContextTest, NestedScopedSpansParentCorrectly) {
  TracerGuard guard;
  Tracer::Global().SetEnabled(true);
  auto trace = Tracer::Global().StartRequest();
  ASSERT_NE(trace, nullptr);
  uint64_t outer_id = 0;
  {
    TraceContextScope scope(TraceContext{trace, RequestTrace::kRootSpanId});
    ScopedTraceSpan outer("outer", "stage", /*enter=*/true);
    outer_id = outer.span_id();
    ScopedTraceSpan inner("inner");
    inner.Stop();
    outer.Stop();
  }
  const std::vector<TraceSpan> spans = trace->Spans();
  ASSERT_EQ(spans.size(), 2u);
  // inner stops first, so it is recorded first and parents under outer.
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].parent, outer_id);
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].parent, RequestTrace::kRootSpanId);
}

// ---------------------------------------------------------------------
// Span trees from traced service runs.
// ---------------------------------------------------------------------

TEST(TraceServiceTest, TracedRunProducesRootedSpanTree) {
  TracerGuard guard;
  DataCatalog catalog = TraceCatalog();
  Tracer::Global().SetEnabled(true);
  PlanService service(&catalog);
  auto report = service.Run(ServiceRequest{DfpScript("tr", 4), TraceConfig()});
  ASSERT_TRUE(report.ok());
  ASSERT_NE(report->trace, nullptr);
  const std::vector<TraceSpan> spans = report->trace->Spans();
  ASSERT_GE(spans.size(), 4u);

  std::map<uint64_t, const TraceSpan*> by_id;
  std::set<std::string> names;
  size_t roots = 0;
  for (const TraceSpan& span : spans) {
    EXPECT_TRUE(by_id.emplace(span.id, &span).second)
        << "duplicate span id " << span.id;
    names.insert(span.name);
    if (span.parent == 0) {
      ++roots;
      EXPECT_EQ(span.id, RequestTrace::kRootSpanId);
    }
  }
  EXPECT_EQ(roots, 1u);
  // The cold path must show the compile and execute stages.
  EXPECT_TRUE(names.count("parse"));
  EXPECT_TRUE(names.count("optimize"));
  EXPECT_TRUE(names.count("execute"));
  EXPECT_TRUE(names.count("request"));

  const TraceSpan* root = by_id.at(RequestTrace::kRootSpanId);
  for (const TraceSpan& span : spans) {
    if (span.id == RequestTrace::kRootSpanId) continue;
    // Every parent exists, and no child outlasts the root interval
    // (all spans close before CloseRoot stamps the root's end).
    ASSERT_TRUE(by_id.count(span.parent))
        << span.name << " has unknown parent " << span.parent;
    EXPECT_LE(span.duration_us, root->duration_us + 1.0);
    EXPECT_GE(span.start_us + 1.0, root->start_us);
    EXPECT_LE(span.start_us + span.duration_us,
              root->start_us + root->duration_us + 1.0);
  }
}

TEST(TraceServiceTest, WarmHitTraceSkipsTheOptimizeSpan) {
  TracerGuard guard;
  DataCatalog catalog = TraceCatalog();
  Tracer::Global().SetEnabled(true);
  PlanService service(&catalog);
  const ServiceRequest request{GdScript("tr", 4), TraceConfig()};
  ASSERT_TRUE(service.Run(request).ok());  // cold: fills the cache
  auto warm = service.Run(request);
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE(warm->cache_hit);
  ASSERT_NE(warm->trace, nullptr);
  std::set<std::string> names;
  for (const TraceSpan& span : warm->trace->Spans()) names.insert(span.name);
  EXPECT_TRUE(names.count("plancache-probe"));
  EXPECT_TRUE(names.count("execute"));
  EXPECT_FALSE(names.count("optimize"));  // the whole point of the cache
}

TEST(TraceServiceTest, TracingOnAndOffAreBitwiseIdentical) {
  TracerGuard guard;
  DataCatalog catalog = TraceCatalog();
  const ServiceRequest request{BfgsScript("tr", 4), TraceConfig()};

  PlanService off_service(&catalog);
  auto off = off_service.Run(request);
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(off->trace, nullptr);

  Tracer::Global().SetEnabled(true);
  PlanService on_service(&catalog);
  auto on = on_service.Run(request);
  ASSERT_TRUE(on.ok());
  ASSERT_NE(on->trace, nullptr);
  EXPECT_GT(on->trace->size(), 0);

  ASSERT_EQ(off->run.env.size(), on->run.env.size());
  for (const auto& [name, value] : off->run.env) {
    const auto it = on->run.env.find(name);
    ASSERT_NE(it, on->run.env.end()) << name;
    ASSERT_EQ(value.is_scalar, it->second.is_scalar) << name;
    if (value.is_scalar) {
      EXPECT_EQ(value.scalar, it->second.scalar) << name;
    } else {
      // tolerance 0.0: exact element equality.
      EXPECT_TRUE(value.matrix.ApproxEquals(it->second.matrix, 0.0)) << name;
    }
  }
}

TEST(TraceServiceTest, SessionSubmissionTracesIncludeQueueWait) {
  TracerGuard guard;
  DataCatalog catalog = TraceCatalog();
  Tracer::Global().SetEnabled(true);
  ThreadPool::SetGlobalThreads(2);
  PlanService service(&catalog);
  PlanService::Session session = service.NewSession();
  session.Submit(ServiceRequest{GdScript("tr", 4), TraceConfig()});
  session.Submit(ServiceRequest{GdScript("tr", 4), TraceConfig()});
  const auto results = session.Wait();
  ThreadPool::SetGlobalThreads(0);
  ASSERT_EQ(results.size(), 2u);
  for (const auto& result : results) {
    ASSERT_TRUE(result.ok());
    ASSERT_NE(result.value().trace, nullptr);
    // The trace starts at submission, so the root covers queue + run.
    const std::vector<TraceSpan> spans = result.value().trace->Spans();
    ASSERT_FALSE(spans.empty());
    EXPECT_EQ(spans.back().id, RequestTrace::kRootSpanId);
  }
}

// ---------------------------------------------------------------------
// Trace structure primitives.
// ---------------------------------------------------------------------

TEST(TraceJsonTest, ChromeJsonCarriesIdentityAndRelativeTimestamps) {
  RequestTrace trace(42);
  TraceSpan child;
  child.id = trace.NextSpanId();
  child.parent = RequestTrace::kRootSpanId;
  child.name = "stage \"x\"";  // quote must be escaped
  child.start_us = trace.start_us() + 5.0;
  child.duration_us = 3.0;
  trace.Record(child);
  trace.CloseRoot("request");
  const std::string json = trace.ToChromeJson();
  EXPECT_NE(json.find("\"request_id\":42"), std::string::npos);
  EXPECT_NE(json.find("\"dropped\":0"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("stage \\\"x\\\""), std::string::npos);
  // Child ts is relative to the root start.
  EXPECT_NE(json.find("\"ts\":5.000"), std::string::npos);
  EXPECT_NE(json.find("\"parent\":0"), std::string::npos);
}

TEST(TraceJsonTest, SpansPastTheCapAreCountedAsDropped) {
  RequestTrace trace(7);
  for (int i = 0; i < 65536 + 25; ++i) {
    TraceSpan span;
    span.id = trace.NextSpanId();
    span.parent = RequestTrace::kRootSpanId;
    span.name = "s";
    trace.Record(span);
  }
  // CloseRoot's record is also past the cap: the root drops too, and
  // the validator skips tree checks when dropped > 0.
  trace.CloseRoot("request");
  EXPECT_EQ(trace.size(), 65536);
  EXPECT_EQ(trace.dropped(), 26);
  EXPECT_NE(trace.ToChromeJson().find("\"dropped\":26"), std::string::npos);
}

TEST(TraceEpochTest, SinkAndRequestSpansShareTheClock) {
  // TraceSink events and request spans must land on one timeline: a
  // sink timestamp taken "now" sits within a request-span bracket.
  TraceSink sink;
  const double before = TraceNowMicros();
  const double sink_now = sink.NowMicros();
  const double after = TraceNowMicros();
  EXPECT_GE(sink_now, before);
  EXPECT_LE(sink_now, after);
}

// ---------------------------------------------------------------------
// Contention profiling.
// ---------------------------------------------------------------------

TEST(ContentionTimedMutexTest, UncontendedAcquisitionObservesNothing) {
  TracerGuard guard;
  Tracer::Global().SetProfiling(true);
  MetricsRegistry registry;
  Histogram* hist = registry.GetHistogram("remac.test.lock_wait");
  std::mutex mu;
  {
    TimedMutexLock lock(mu, hist, "test-lock");
  }
  EXPECT_EQ(hist->Count(), 0);  // try_lock fast path: no clocks, no obs
}

TEST(ContentionTimedMutexTest, ContendedAcquisitionIsTimed) {
  TracerGuard guard;
  Tracer::Global().SetProfiling(true);
  MetricsRegistry registry;
  Histogram* hist = registry.GetHistogram("remac.test.lock_wait");
  std::mutex mu;
  std::atomic<bool> holder_ready{false};
  std::thread holder([&] {
    std::lock_guard<std::mutex> lock(mu);
    holder_ready = true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  });
  while (!holder_ready) std::this_thread::yield();
  {
    TimedMutexLock lock(mu, hist, "test-lock");
  }
  holder.join();
  EXPECT_EQ(hist->Count(), 1);
  EXPECT_GT(hist->Sum(), 0.0);
}

TEST(ContentionTimedMutexTest, DisabledProfilingIsAPlainLock) {
  ASSERT_FALSE(Tracer::Global().any_active());
  MetricsRegistry registry;
  Histogram* hist = registry.GetHistogram("remac.test.lock_wait");
  std::mutex mu;
  std::thread holder([&] {
    std::lock_guard<std::mutex> lock(mu);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  {
    TimedMutexLock lock(mu, hist, "test-lock");
  }
  holder.join();
  EXPECT_EQ(hist->Count(), 0);  // even contended: profiling is off
}

TEST(ContentionPoolQueueTest, QueueLatencyLandsInTheHistogram) {
  TracerGuard guard;
  Tracer::Global().SetProfiling(true);
  Histogram* queue_hist = MetricsRegistry::Global().GetHistogram(
      "remac.contention.pool_queue_seconds");
  const int64_t before = queue_hist->Count();
  ThreadPool pool(1);
  std::atomic<bool> release{false};
  std::atomic<int> ran{0};
  pool.Submit([&] {
    while (!release) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ++ran;
  });
  pool.Submit([&] { ++ran; });  // queues behind the blocked task
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  release = true;
  while (ran.load() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(queue_hist->Count(), before + 2);
}

TEST(ContentionServiceTest, FlightWaitHistogramMatchesWaitCount) {
  TracerGuard guard;
  DataCatalog catalog = TraceCatalog();
  Histogram* wait_hist = MetricsRegistry::Global().GetHistogram(
      "remac.service.flight_wait_seconds");
  const int64_t before = wait_hist->Count();
  ThreadPool::SetGlobalThreads(4);
  PlanService service(&catalog);
  PlanService::Session session = service.NewSession();
  // Same cold key from many threads: one leads, the rest single-flight.
  for (int k = 0; k < 8; ++k) {
    session.Submit(ServiceRequest{DfpScript("tr", 4), TraceConfig()});
  }
  const auto results = session.Wait();
  ThreadPool::SetGlobalThreads(0);
  for (const auto& result : results) ASSERT_TRUE(result.ok());
  const ServiceStats stats = service.stats();
  // Every counted single-flight wait observed exactly one histogram
  // sample (the wait duration) — count and histogram agree.
  EXPECT_EQ(wait_hist->Count() - before, stats.single_flight_waits);
}

}  // namespace
}  // namespace remac
