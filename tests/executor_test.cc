#include <gtest/gtest.h>

#include "data/generators.h"
#include "plan/plan_builder.h"
#include "runtime/executor.h"

namespace remac {
namespace {

DataCatalog ExecCatalog() {
  DataCatalog catalog;
  DatasetSpec spec;
  spec.name = "ds";
  spec.rows = 50;
  spec.cols = 6;
  spec.sparsity = 0.5;
  spec.seed = 9;
  EXPECT_TRUE(RegisterDataset(&catalog, spec).ok());
  return catalog;
}

Result<RtValue> RunAndGet(const std::string& script, const std::string& var,
                          const DataCatalog& catalog,
                          int max_iterations = 100) {
  auto program = CompileScript(script, catalog);
  if (!program.ok()) return program.status();
  Executor executor(ClusterModel(), &catalog, nullptr);
  REMAC_RETURN_NOT_OK(executor.Run(program->statements, max_iterations));
  return executor.Get(var);
}

TEST(Executor, ScalarArithmetic) {
  const DataCatalog catalog = ExecCatalog();
  auto v = RunAndGet("x = (2 + 3) * 4 - 6 / 3;\n", "x", catalog);
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->AsScalar().value(), 18.0);
}

TEST(Executor, WhileLoopRunsUntilConditionFalse) {
  const DataCatalog catalog = ExecCatalog();
  auto v = RunAndGet("i = 0;\nwhile (i < 7) {\n  i = i + 1;\n}\n", "i",
                     catalog);
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->AsScalar().value(), 7.0);
}

TEST(Executor, WhileLoopRespectsIterationCap) {
  const DataCatalog catalog = ExecCatalog();
  auto v = RunAndGet("i = 0;\nwhile (i < 1000) {\n  i = i + 1;\n}\n", "i",
                     catalog, /*max_iterations=*/5);
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->AsScalar().value(), 5.0);
}

TEST(Executor, ForLoopCounts) {
  const DataCatalog catalog = ExecCatalog();
  auto v = RunAndGet("s = 0;\nfor (k in 1:4) {\n  s = s + k;\n}\n", "s",
                     catalog);
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->AsScalar().value(), 10.0);
}

TEST(Executor, Generators) {
  const DataCatalog catalog = ExecCatalog();
  auto eye = RunAndGet("E = eye(3);\n", "E", catalog);
  ASSERT_TRUE(eye.ok());
  EXPECT_DOUBLE_EQ(eye->AsMatrix().At(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(eye->AsMatrix().At(0, 1), 0.0);
  auto ones = RunAndGet("O = ones(2, 3);\n", "O", catalog);
  ASSERT_TRUE(ones.ok());
  EXPECT_EQ(ones->AsMatrix().nnz(), 6);
  auto zeros = RunAndGet("Z = zeros(2, 2);\n", "Z", catalog);
  ASSERT_TRUE(zeros.ok());
  EXPECT_EQ(zeros->AsMatrix().nnz(), 0);
  auto rnd = RunAndGet("R = rand(4, 4);\n", "R", catalog);
  ASSERT_TRUE(rnd.ok());
  EXPECT_EQ(rnd->AsMatrix().nnz(), 16);  // strictly positive generator
}

TEST(Executor, MatrixScalarBroadcasts) {
  const DataCatalog catalog = ExecCatalog();
  auto v = RunAndGet("M = ones(2, 2);\nY = 2 * M + 1;\n", "Y", catalog);
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->AsMatrix().At(0, 0), 3.0);
  auto w = RunAndGet("M = ones(2, 2);\nY = 1 - M;\n", "Y", catalog);
  ASSERT_TRUE(w.ok());
  EXPECT_DOUBLE_EQ(w->AsMatrix().At(1, 1), 0.0);
}

TEST(Executor, OneByOneMatrixActsAsScalar) {
  const DataCatalog catalog = ExecCatalog();
  // t(v) %*% v is a 1x1 matrix; dividing by it must work.
  auto v = RunAndGet("v = ones(3, 1);\nY = v / (t(v) %*% v);\n", "Y",
                     catalog);
  ASSERT_TRUE(v.ok());
  EXPECT_NEAR(v->AsMatrix().At(0, 0), 1.0 / 3.0, 1e-12);
}

TEST(Executor, SumNormNcolNrow) {
  const DataCatalog catalog = ExecCatalog();
  auto s = RunAndGet("M = ones(2, 3);\ny = sum(M);\n", "y", catalog);
  EXPECT_DOUBLE_EQ(s->AsScalar().value(), 6.0);
  auto n = RunAndGet("M = ones(2, 2);\ny = norm(M);\n", "y", catalog);
  EXPECT_DOUBLE_EQ(n->AsScalar().value(), 2.0);
  auto q = RunAndGet("y = sqrt(16) + abs(0 - 2);\n", "y", catalog);
  EXPECT_DOUBLE_EQ(q->AsScalar().value(), 6.0);
}

TEST(Executor, ReadMarksDistributed) {
  const DataCatalog catalog = ExecCatalog();
  auto program = CompileScript("A = read(\"ds\");\n", catalog);
  ASSERT_TRUE(program.ok());
  Executor executor(ClusterModel(), &catalog, nullptr);
  ASSERT_TRUE(executor.Run(program->statements).ok());
  EXPECT_TRUE(executor.Get("A")->distributed);
}

TEST(Executor, InputPartitionBookedOncePerDataset) {
  const DataCatalog catalog = ExecCatalog();
  auto program = CompileScript(
      "A = read(\"ds\");\nB = read(\"ds\");\n", catalog);
  ASSERT_TRUE(program.ok());
  ClusterModel model;
  TransmissionLedger ledger(model);
  Executor executor(model, &catalog, &ledger);
  executor.set_count_input_partition(true);
  ASSERT_TRUE(executor.Run(program->statements).ok());
  const double once = ledger.Breakdown().input_partition_seconds;
  EXPECT_GT(once, 0.0);
  // A second read of the same dataset books nothing extra.
  auto again = CompileScript("C = read(\"ds\");\n", catalog);
  ASSERT_TRUE(executor.Run(again->statements).ok());
  EXPECT_DOUBLE_EQ(ledger.Breakdown().input_partition_seconds, once);
}

TEST(Executor, BarrierCommitUsesStartOfIterationValues) {
  const DataCatalog catalog = ExecCatalog();
  auto program = CompileScript(
      "a = 1;\nb = 10;\ni = 0;\n"
      "while (i < 1) {\n  a = b;\n  b = a;\n  i = i + 1;\n}\n",
      catalog);
  ASSERT_TRUE(program.ok());
  // Sequential: a=10, b=10. Barrier-commit: a=10, b=1 (old a).
  for (auto& stmt : program->statements) {
    if (stmt.kind == CompiledStmt::Kind::kLoop) stmt.barrier_commit = true;
  }
  Executor executor(ClusterModel(), &catalog, nullptr);
  ASSERT_TRUE(executor.Run(program->statements).ok());
  EXPECT_DOUBLE_EQ(executor.Get("a")->AsScalar().value(), 10.0);
  EXPECT_DOUBLE_EQ(executor.Get("b")->AsScalar().value(), 1.0);
}

TEST(Executor, UndefinedVariableError) {
  const DataCatalog catalog = ExecCatalog();
  PlanNodePtr bad = MakeInput("ghost", Shape{2, 2, false});
  Executor executor(ClusterModel(), &catalog, nullptr);
  EXPECT_EQ(executor.Eval(*bad).status().code(), StatusCode::kNotFound);
}

TEST(Executor, LedgerAccumulatesDuringExecution) {
  const DataCatalog catalog = ExecCatalog();
  auto program = CompileScript(
      "A = read(\"ds\");\nv = ones(6, 1);\nw = A %*% v;\n", catalog);
  ASSERT_TRUE(program.ok());
  ClusterModel model;
  TransmissionLedger ledger(model);
  Executor executor(model, &catalog, &ledger);
  ASSERT_TRUE(executor.Run(program->statements).ok());
  EXPECT_GT(ledger.TotalSeconds(), 0.0);
  EXPECT_GT(executor.ops_executed(), 0);
}

}  // namespace
}  // namespace remac
