// Telemetry subsystem tests: exactness of the registry primitives under
// concurrency (the Obs* suites run under TSan/ASan via scripts/check.sh),
// export goldens, stage spans, and the cost-model accuracy audit.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "algorithms/scripts.h"
#include "data/generators.h"
#include "obs/cost_audit.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "runtime/program_runner.h"
#include "sched/trace.h"

namespace remac {
namespace {

// ---------------------------------------------------------------------
// Registry primitives.
// ---------------------------------------------------------------------

TEST(ObsCounter, ConcurrentHammerIsExact) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("remac.test.hammer");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 4000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Re-resolve through the registry from every thread: registration
      // races against updates and must stay clean and stable.
      Counter* c = registry.GetCounter("remac.test.hammer");
      for (int i = 0; i < kPerThread; ++i) c->Add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter->Value(), int64_t{kThreads} * kPerThread);
}

TEST(ObsGauge, ConcurrentAddAndSetMax) {
  MetricsRegistry registry;
  Gauge* sum = registry.GetGauge("remac.test.sum");
  Gauge* peak = registry.GetGauge("remac.test.peak");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        sum->Add(1.0);
        peak->SetMax(static_cast<double>(t * kPerThread + i));
      }
    });
  }
  for (auto& t : threads) t.join();
  // Integer-valued doubles accumulate exactly at this magnitude.
  EXPECT_DOUBLE_EQ(sum->Value(), static_cast<double>(kThreads * kPerThread));
  EXPECT_DOUBLE_EQ(peak->Value(),
                   static_cast<double>(kThreads * kPerThread - 1));
}

TEST(ObsHistogram, ConcurrentObserveIsExact) {
  MetricsRegistry registry;
  Histogram* hist =
      registry.GetHistogram("remac.test.lat", {1.0, 10.0, 100.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist->Observe(static_cast<double>((t + i) % 200));
      }
    });
  }
  for (auto& t : threads) t.join();
  const int64_t total = int64_t{kThreads} * kPerThread;
  EXPECT_EQ(hist->Count(), total);
  int64_t bucket_total = 0;
  for (int64_t c : hist->BucketCounts()) bucket_total += c;
  EXPECT_EQ(bucket_total, total);
}

TEST(ObsHistogram, BucketBoundariesAreInclusiveUpperEdges) {
  // Unsorted with a duplicate: the constructor sorts and dedupes.
  Histogram hist({4.0, 1.0, 2.0, 2.0});
  ASSERT_EQ(hist.bounds(), (std::vector<double>{1.0, 2.0, 4.0}));
  hist.Observe(-1.0);  // below the first bound
  hist.Observe(0.0);
  hist.Observe(1.0);  // exactly on a bound: lands in that bucket
  hist.Observe(1.0000001);
  hist.Observe(2.0);
  hist.Observe(4.0);
  hist.Observe(4.0000001);  // past every bound: +Inf overflow
  EXPECT_EQ(hist.BucketCounts(), (std::vector<int64_t>{3, 2, 1, 1}));
  EXPECT_EQ(hist.Count(), 7);
  hist.Reset();
  EXPECT_EQ(hist.Count(), 0);
  EXPECT_EQ(hist.BucketCounts(), (std::vector<int64_t>{0, 0, 0, 0}));
}

TEST(ObsHistogram, QuantileGoldenValues) {
  // Bounds {1,2,4}; one observation in bucket [0,1], two in (1,2], one
  // in (2,4]. Exact interpolation goldens, hand-computed:
  //   p50: target 2 of 4 -> 1 into bucket (1,2] of 2 -> 1 + 1*(1/2)
  //   p95: target 3.8    -> 0.8 into bucket (2,4] of 1 -> 2 + 2*0.8
  Histogram hist({1.0, 2.0, 4.0});
  hist.Observe(0.5);
  hist.Observe(1.5);
  hist.Observe(1.7);
  hist.Observe(3.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(hist, 0.50), 1.5);
  EXPECT_DOUBLE_EQ(HistogramQuantile(hist, 0.95), 3.6);
  EXPECT_DOUBLE_EQ(HistogramQuantile(hist, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(hist, 0.0), 0.0);
}

TEST(ObsHistogram, QuantileOverflowClampsAndEmptyIsZero) {
  Histogram hist({1.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(HistogramQuantile(hist, 0.5), 0.0);  // empty
  hist.Observe(100.0);  // +Inf overflow bucket
  // The histogram cannot know how far past the top bound the value
  // landed; the quantile clamps to the top finite bound.
  EXPECT_DOUBLE_EQ(HistogramQuantile(hist, 0.99), 4.0);
}

TEST(ObsRegistry, SameNameReturnsSameMetric) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.GetCounter("a"), registry.GetCounter("a"));
  EXPECT_NE(registry.GetCounter("a"), registry.GetCounter("b"));
  // Bounds apply only on first registration.
  Histogram* h = registry.GetHistogram("h", {1.0});
  EXPECT_EQ(registry.GetHistogram("h", {5.0, 6.0}), h);
  EXPECT_EQ(h->bounds().size(), 1u);
}

TEST(ObsRegistry, ResetZeroesInPlace) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("c");
  Gauge* g = registry.GetGauge("g");
  Histogram* h = registry.GetHistogram("h", {1.0});
  c->Add(5);
  g->Set(3.0);
  h->Observe(0.5);
  registry.Reset();
  EXPECT_EQ(c->Value(), 0);
  EXPECT_DOUBLE_EQ(g->Value(), 0.0);
  EXPECT_EQ(h->Count(), 0);
  EXPECT_EQ(registry.GetCounter("c"), c);  // pointers stay valid
}

// ---------------------------------------------------------------------
// Export goldens.
// ---------------------------------------------------------------------

MetricsRegistry& GoldenRegistry(MetricsRegistry& registry) {
  registry.GetCounter("remac.test.requests")->Add(3);
  registry.GetGauge("remac.test.depth")->Set(2.5);
  Histogram* lat = registry.GetHistogram("remac.test.lat", {1.0, 2.0});
  lat->Observe(0.5);
  lat->Observe(2.0);
  lat->Observe(9.0);
  return registry;
}

TEST(ObsExport, JsonGolden) {
  MetricsRegistry registry;
  GoldenRegistry(registry);
  EXPECT_EQ(
      registry.ToJson(),
      "{\"counters\": {\"remac.test.requests\": 3}, "
      "\"gauges\": {\"remac.test.depth\": 2.5}, "
      "\"histograms\": {\"remac.test.lat\": {\"count\": 3, \"sum\": 11.5, "
      "\"buckets\": [{\"le\": 1, \"count\": 1}, {\"le\": 2, \"count\": 1}, "
      "{\"le\": \"+Inf\", \"count\": 1}]}}}");
  EXPECT_EQ(registry.ToJson(/*include_histograms=*/false),
            "{\"counters\": {\"remac.test.requests\": 3}, "
            "\"gauges\": {\"remac.test.depth\": 2.5}}");
}

TEST(ObsExport, PrometheusGolden) {
  MetricsRegistry registry;
  GoldenRegistry(registry);
  EXPECT_EQ(registry.ToPrometheus(),
            "# TYPE remac_test_requests counter\n"
            "remac_test_requests 3\n"
            "# TYPE remac_test_depth gauge\n"
            "remac_test_depth 2.5\n"
            "# TYPE remac_test_lat histogram\n"
            "remac_test_lat_bucket{le=\"1\"} 1\n"
            "remac_test_lat_bucket{le=\"2\"} 2\n"
            "remac_test_lat_bucket{le=\"+Inf\"} 3\n"
            "remac_test_lat_sum 11.5\n"
            "remac_test_lat_count 3\n");
}

TEST(ObsExport, WriteToFilePicksFormatByExtension) {
  MetricsRegistry registry;
  GoldenRegistry(registry);
  const std::string json_path = testing::TempDir() + "/obs_test_metrics.json";
  const std::string prom_path = testing::TempDir() + "/obs_test_metrics.prom";
  ASSERT_TRUE(registry.WriteToFile(json_path).ok());
  ASSERT_TRUE(registry.WriteToFile(prom_path).ok());
  auto slurp = [](const std::string& path) {
    std::ifstream in(path);
    std::ostringstream body;
    body << in.rdbuf();
    return body.str();
  };
  EXPECT_EQ(slurp(json_path), registry.ToJson() + "\n");
  EXPECT_EQ(slurp(prom_path), registry.ToPrometheus());
  std::remove(json_path.c_str());
  std::remove(prom_path.c_str());
  EXPECT_FALSE(registry.WriteToFile("/nonexistent-dir/x.json").ok());
}

TEST(ObsExport, PrometheusEscapesHostileNames) {
  // Leading digit gets a '_' prefix (Prometheus names cannot start with
  // a digit); every non-[a-zA-Z0-9_:] character becomes '_'.
  MetricsRegistry registry;
  registry.GetCounter("9lives.metric-x")->Add(1);
  const std::string prom = registry.ToPrometheus();
  EXPECT_NE(prom.find("# TYPE _9lives_metric_x counter\n"),
            std::string::npos);
  EXPECT_NE(prom.find("_9lives_metric_x 1\n"), std::string::npos);
}

TEST(ObsExport, JsonEscapesControlCharacters) {
  MetricsRegistry registry;
  registry.GetCounter(std::string("bad\"name\\with\n\t\x01" "ctl"))->Add(2);
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("bad\\\"name\\\\with\\n\\t\\u0001ctl"),
            std::string::npos);
  // No raw control bytes may survive into the emitted JSON.
  for (char c : json) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20);
  }
}

TEST(ObsExport, WriteToFileIsAtomicAndShortTxtPicksPrometheus) {
  MetricsRegistry registry;
  GoldenRegistry(registry);
  // The write goes through a temp file + rename: after success the temp
  // must be gone and the target complete.
  const std::string path = testing::TempDir() + "/m.txt";  // short name
  ASSERT_TRUE(registry.WriteToFile(path).ok());
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  std::ifstream in(path);
  std::ostringstream body;
  body << in.rdbuf();
  // ".txt" selects the Prometheus text format even on a 5-char path
  // (a suffix check, not a positional substring test).
  EXPECT_EQ(body.str(), registry.ToPrometheus());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Stage spans.
// ---------------------------------------------------------------------

TEST(ObsSpan, ObservesHistogramOnceAndEmitsTrace) {
  MetricsRegistry registry;
  Histogram* hist = registry.GetHistogram("remac.test.span");
  TraceSink trace;
  {
    StageSpan span(hist, &trace, "unit-test-stage");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_GE(span.ElapsedSeconds(), 0.004);
    EXPECT_GE(span.Stop(), 0.004);
    span.Stop();  // idempotent: second stop records nothing
  }
  EXPECT_EQ(hist->Count(), 1);
  // The recorded duration must be the real elapsed time, not zero.
  EXPECT_GE(hist->Sum(), 0.004);
  ASSERT_EQ(trace.size(), 1);
  const TraceEvent event = trace.Events()[0];
  EXPECT_EQ(event.name, "unit-test-stage");
  EXPECT_EQ(event.category, "stage");
  EXPECT_GE(event.duration_us, 4000.0);
}

TEST(ObsSpan, DestructorStops) {
  MetricsRegistry registry;
  Histogram* hist = registry.GetHistogram("remac.test.span");
  {
    StageSpan span(hist);
  }
  EXPECT_EQ(hist->Count(), 1);
}

// ---------------------------------------------------------------------
// Cost-model accuracy audit.
// ---------------------------------------------------------------------

TEST(ObsAudit, RelativeErrorHandlesZeroDenominator) {
  PrimitiveAudit zero;
  EXPECT_DOUBLE_EQ(zero.RelativeError(), 0.0);
  PrimitiveAudit phantom;
  phantom.predicted = 10.0;
  EXPECT_DOUBLE_EQ(phantom.RelativeError(), 1.0);
  PrimitiveAudit close;
  close.predicted = 90.0;
  close.actual = 100.0;
  EXPECT_NEAR(close.RelativeError(), 0.1, 1e-12);
}

const DataCatalog& AuditCatalog() {
  static DataCatalog* catalog = [] {
    auto* c = new DataCatalog();
    DatasetSpec spec;
    spec.name = "ds";
    spec.rows = 400;
    spec.cols = 12;
    spec.sparsity = 0.4;
    spec.seed = 10;
    EXPECT_TRUE(RegisterDataset(c, spec, true).ok());
    return c;
  }();
  return *catalog;
}

TEST(ObsAudit, BroadcastMultiplyPredictionMatchesLedger) {
  // A 1.6MB dense product chain against a 1MB driver: A is distributed
  // (> driver/4), B is broadcastable (<= driver/8), so the multiply runs
  // as broadcast MM and books broadcast bytes into the ledger. The audit
  // walks the same plan with the same cost functions, so its predicted
  // broadcast transmission must match what the executor booked.
  RunConfig config;
  config.cluster.driver_memory_bytes = 1 << 20;
  config.optimizer = OptimizerKind::kAsWritten;
  const std::string script =
      "A = rand(1000, 200);\nB = rand(200, 20);\ny = A %*% B;\n";
  auto run = RunScript(script, AuditCatalog(), config);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const CostAuditRecord& audit = run->audit;
  ASSERT_TRUE(audit.valid) << audit.error;
  const auto& broadcast =
      audit.transmission[static_cast<int>(TransmissionPrimitive::kBroadcast)];
  EXPECT_GT(broadcast.actual, 0.0);
  EXPECT_LT(broadcast.RelativeError(), 0.05)
      << "predicted " << broadcast.predicted << " actual "
      << broadcast.actual;
  EXPECT_GT(audit.flops.actual, 0.0);
  EXPECT_LT(audit.flops.RelativeError(), 0.05)
      << "predicted " << audit.flops.predicted << " actual "
      << audit.flops.actual;
}

TEST(ObsAudit, CseEliminationReducesActualFlops) {
  // DFP repeats t(A) %*% A many times per iteration; adaptive elimination
  // must reduce the FLOPs the simulated cluster actually tallies, not
  // just the predicted cost.
  const std::string script = DfpScript("ds", 4);
  RunConfig baseline_config;
  baseline_config.optimizer = OptimizerKind::kRemacNone;
  baseline_config.max_iterations = 4;
  auto baseline = RunScript(script, AuditCatalog(), baseline_config);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  ASSERT_TRUE(baseline->audit.valid) << baseline->audit.error;

  RunConfig adaptive_config;
  adaptive_config.optimizer = OptimizerKind::kRemacAdaptive;
  adaptive_config.max_iterations = 4;
  auto adaptive = RunScript(script, AuditCatalog(), adaptive_config);
  ASSERT_TRUE(adaptive.ok()) << adaptive.status().ToString();
  ASSERT_TRUE(adaptive->audit.valid) << adaptive->audit.error;
  EXPECT_GT(adaptive->optimize.applied_cse + adaptive->optimize.applied_lse,
            0);
  EXPECT_LT(adaptive->audit.flops.actual, baseline->audit.flops.actual);
}

TEST(ObsAudit, PublishRecordsIntoRegistry) {
  MetricsRegistry registry;
  PredictedCost predicted;
  predicted.local_flops = 100.0;
  std::array<double, kNumTransmissionPrimitives> actual_bytes{};
  CostAuditRecord audit = MakeCostAudit(predicted, 100.0, actual_bytes);
  PublishCostAudit(audit, &registry);
  EXPECT_EQ(registry.GetCounter("remac.audit.programs")->Value(), 1);
  EXPECT_DOUBLE_EQ(
      registry.GetGauge("remac.audit.flops.predicted")->Value(), 100.0);
  EXPECT_EQ(
      registry.GetHistogram("remac.audit.flops.rel_error")->Count(), 1);

  CostAuditRecord failed;
  failed.error = "boom";
  PublishCostAudit(failed, &registry);
  EXPECT_EQ(registry.GetCounter("remac.audit.programs")->Value(), 2);
  EXPECT_EQ(registry.GetCounter("remac.audit.failures")->Value(), 1);
}

}  // namespace
}  // namespace remac
