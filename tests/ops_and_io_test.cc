// Tests for the extended operator set (exp/log/rowSums/colSums/diag/
// trace), Matrix Market I/O, and the algorithms that use them.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "algorithms/scripts.h"
#include "data/generators.h"
#include "io/matrix_market.h"
#include "plan/plan_builder.h"
#include "runtime/program_runner.h"

namespace remac {
namespace {

DataCatalog OpsCatalog() {
  DataCatalog catalog;
  DatasetSpec spec;
  spec.name = "ds";
  spec.rows = 150;
  spec.cols = 10;
  spec.sparsity = 0.5;
  spec.seed = 77;
  EXPECT_TRUE(RegisterDataset(&catalog, spec).ok());
  return catalog;
}

Result<RtValue> RunVar(const std::string& script, const std::string& var,
                    const DataCatalog& catalog) {
  RunConfig config;
  config.optimizer = OptimizerKind::kAsWritten;
  config.max_iterations = 10;
  auto run = RunScript(script, catalog, config);
  if (!run.ok()) return run.status();
  auto it = run->env.find(var);
  if (it == run->env.end()) return Status::NotFound(var);
  return it->second;
}

TEST(Ops, ExpAndLog) {
  const DataCatalog catalog = OpsCatalog();
  auto v = RunVar("M = ones(2, 2);\nE = exp(M);\nL = log(exp(M));\n", "L",
               catalog);
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_NEAR(v->AsMatrix().At(0, 0), 1.0, 1e-12);
  auto e = RunVar("Z = zeros(2, 2);\nE = exp(Z);\n", "E", catalog);
  ASSERT_TRUE(e.ok());
  EXPECT_NEAR(e->AsMatrix().At(1, 1), 1.0, 1e-12);  // exp(0) densifies
}

TEST(Ops, RowAndColSums) {
  const DataCatalog catalog = OpsCatalog();
  auto r = RunVar("M = ones(3, 4);\ns = rowSums(M);\n", "s", catalog);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->AsMatrix().rows(), 3);
  EXPECT_EQ(r->AsMatrix().cols(), 1);
  EXPECT_DOUBLE_EQ(r->AsMatrix().At(2, 0), 4.0);
  auto c = RunVar("M = ones(3, 4);\ns = colSums(M);\n", "s", catalog);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->AsMatrix().rows(), 1);
  EXPECT_DOUBLE_EQ(c->AsMatrix().At(0, 3), 3.0);
}

TEST(Ops, DiagBothDirections) {
  const DataCatalog catalog = OpsCatalog();
  auto d = RunVar("v = ones(3, 1);\nD = diag(2 * v);\n", "D", catalog);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->AsMatrix().rows(), 3);
  EXPECT_EQ(d->AsMatrix().cols(), 3);
  EXPECT_DOUBLE_EQ(d->AsMatrix().At(1, 1), 2.0);
  EXPECT_DOUBLE_EQ(d->AsMatrix().At(0, 1), 0.0);
  auto v = RunVar("E = eye(4);\nd = diag(3 * E);\n", "d", catalog);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsMatrix().rows(), 4);
  EXPECT_EQ(v->AsMatrix().cols(), 1);
  EXPECT_DOUBLE_EQ(v->AsMatrix().At(2, 0), 3.0);
}

TEST(Ops, Trace) {
  const DataCatalog catalog = OpsCatalog();
  auto t = RunVar("E = eye(5);\ns = trace(2 * E);\n", "s", catalog);
  ASSERT_TRUE(t.ok());
  EXPECT_DOUBLE_EQ(t->AsScalar().value(), 10.0);
}

TEST(Ops, SigmoidViaExp) {
  const DataCatalog catalog = OpsCatalog();
  auto p = RunVar("Z = zeros(2, 1);\np = 1 / (1 + exp(-Z));\n", "p", catalog);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_NEAR(p->AsMatrix().At(0, 0), 0.5, 1e-12);
}

TEST(Algorithms, LogisticRegressionOptimizedMatches) {
  const DataCatalog catalog = OpsCatalog();
  const std::string script = LogisticRegressionScript("ds", 3);
  RunConfig reference;
  reference.optimizer = OptimizerKind::kAsWritten;
  reference.max_iterations = 3;
  auto expected = RunScript(script, catalog, reference);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();
  RunConfig config;
  config.optimizer = OptimizerKind::kRemacAdaptive;
  config.max_iterations = 3;
  auto run = RunScript(script, catalog, config);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run->env.at("x").AsMatrix().ApproxEquals(
      expected->env.at("x").AsMatrix(), 1e-7));
}

TEST(Algorithms, RidgeRegressionHoistsLoopConstants) {
  const DataCatalog catalog = OpsCatalog();
  const std::string script = RidgeRegressionScript("ds", 3);
  RunConfig config;
  config.optimizer = OptimizerKind::kRemacAdaptive;
  config.max_iterations = 3;
  auto run = RunScript(script, catalog, config);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_GT(run->optimize.applied_lse, 0);  // A^T b at least
  RunConfig reference;
  reference.optimizer = OptimizerKind::kAsWritten;
  reference.max_iterations = 3;
  auto expected = RunScript(script, catalog, reference);
  ASSERT_TRUE(expected.ok());
  EXPECT_TRUE(run->env.at("x").AsMatrix().ApproxEquals(
      expected->env.at("x").AsMatrix(), 1e-7));
}

TEST(MatrixMarket, CoordinateRoundTrip) {
  auto m = CsrMatrix::FromTriplets(
      4, 3, {{0, 0, 1.5}, {2, 1, -2.25}, {3, 2, 1e-7}});
  const Matrix original = Matrix::WrapCsr(std::move(m));
  auto text = FormatMatrixMarket(original);
  ASSERT_TRUE(text.ok());
  auto parsed = ParseMatrixMarket(text.value());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->ApproxEquals(original, 1e-15));
}

TEST(MatrixMarket, ArrayRoundTrip) {
  DenseMatrix d(2, 3, {1, 2, 3, 4, 5, 6});
  const Matrix original = Matrix::WrapDense(std::move(d));
  auto text = FormatMatrixMarket(original, /*dense=*/true);
  ASSERT_TRUE(text.ok());
  auto parsed = ParseMatrixMarket(text.value());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->ApproxEquals(original, 1e-15));
}

TEST(MatrixMarket, SymmetricMirrored) {
  const std::string content =
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "% a comment\n"
      "3 3 2\n"
      "2 1 5.0\n"
      "3 3 7.0\n";
  auto parsed = ParseMatrixMarket(content);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_DOUBLE_EQ(parsed->At(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(parsed->At(0, 1), 5.0);  // mirrored
  EXPECT_DOUBLE_EQ(parsed->At(2, 2), 7.0);
  EXPECT_EQ(parsed->nnz(), 3);
}

TEST(MatrixMarket, PatternEntriesGetOnes) {
  const std::string content =
      "%%MatrixMarket matrix pattern real general\n";  // malformed on purpose
  EXPECT_FALSE(ParseMatrixMarket(content).ok());
  const std::string ok_content =
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 1\n"
      "1 2\n";
  auto parsed = ParseMatrixMarket(ok_content);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_DOUBLE_EQ(parsed->At(0, 1), 1.0);
}

TEST(MatrixMarket, CommentsAndBlanksInterleavedWithData) {
  // The MatrixMarket spec allows '%' comments and blank lines anywhere
  // after the banner, including between coordinate entries.
  const std::string content =
      "%%MatrixMarket matrix coordinate real general\n"
      "% leading comment\n"
      "\n"
      "3 3 3\n"
      "1 1 1.0\n"
      "\n"
      "% mid-data comment\n"
      "2 2 2.0\n"
      "   \n"
      "3 3 3.0\n"
      "% trailing comment\n";
  auto parsed = ParseMatrixMarket(content);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_DOUBLE_EQ(parsed->At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(parsed->At(1, 1), 2.0);
  EXPECT_DOUBLE_EQ(parsed->At(2, 2), 3.0);
  EXPECT_EQ(parsed->nnz(), 3);
}

TEST(MatrixMarket, SymmetricPatternWithInterleavedComments) {
  const std::string content =
      "%%MatrixMarket matrix coordinate pattern symmetric\n"
      "3 3 2\n"
      "% off-diagonal, mirrored\n"
      "2 1\n"
      "\n"
      "3 3\n";
  auto parsed = ParseMatrixMarket(content);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_DOUBLE_EQ(parsed->At(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(parsed->At(0, 1), 1.0);  // mirrored
  EXPECT_DOUBLE_EQ(parsed->At(2, 2), 1.0);  // diagonal not duplicated
  EXPECT_EQ(parsed->nnz(), 3);
}

TEST(MatrixMarket, HeaderAndCommentsOnlyReportsMissingSizeLine) {
  const std::string content =
      "%%MatrixMarket matrix coordinate real general\n"
      "% only comments follow\n"
      "\n"
      "% nothing else\n";
  auto parsed = ParseMatrixMarket(content);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("missing size line"),
            std::string::npos);
}

TEST(MatrixMarket, Errors) {
  EXPECT_FALSE(ParseMatrixMarket("").ok());
  EXPECT_FALSE(ParseMatrixMarket("garbage\n1 1 1\n").ok());
  EXPECT_FALSE(ParseMatrixMarket("%%MatrixMarket matrix coordinate real "
                                 "general\n2 2 1\n5 5 1.0\n")
                   .ok());  // out of bounds
  EXPECT_FALSE(ParseMatrixMarket("%%MatrixMarket matrix coordinate real "
                                 "general\n2 2 3\n1 1 1.0\n")
                   .ok());  // truncated
  EXPECT_EQ(ReadMatrixMarket("/nonexistent/file.mtx").status().code(),
            StatusCode::kNotFound);
}

TEST(MatrixMarket, FileRoundTrip) {
  const std::string path = "/tmp/remac_mm_test.mtx";
  const Matrix original = Matrix::Identity(5);
  ASSERT_TRUE(WriteMatrixMarket(path, original).ok());
  auto parsed = ReadMatrixMarket(path);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->ApproxEquals(original));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace remac
