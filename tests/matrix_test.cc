#include <gtest/gtest.h>

#include "matrix/csr_matrix.h"
#include "matrix/dense_matrix.h"
#include "matrix/matrix.h"

namespace remac {
namespace {

TEST(DenseMatrix, ConstructionAndAccess) {
  DenseMatrix m(2, 3);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.size(), 6);
  m.At(1, 2) = 5.0;
  EXPECT_EQ(m.At(1, 2), 5.0);
  EXPECT_EQ(m.At(0, 0), 0.0);
}

TEST(DenseMatrix, Identity) {
  const DenseMatrix id = DenseMatrix::Identity(3);
  for (int64_t r = 0; r < 3; ++r) {
    for (int64_t c = 0; c < 3; ++c) {
      EXPECT_EQ(id.At(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(DenseMatrix, SparsityAndNnz) {
  DenseMatrix m(2, 2);
  m.At(0, 1) = 3.0;
  EXPECT_EQ(m.CountNonZeros(), 1);
  EXPECT_DOUBLE_EQ(m.Sparsity(), 0.25);
}

TEST(DenseMatrix, ApproxEquals) {
  DenseMatrix a(1, 2, {1.0, 2.0});
  DenseMatrix b(1, 2, {1.0, 2.0 + 1e-12});
  DenseMatrix c(1, 2, {1.0, 2.5});
  EXPECT_TRUE(a.ApproxEquals(b));
  EXPECT_FALSE(a.ApproxEquals(c));
  EXPECT_FALSE(a.ApproxEquals(DenseMatrix(2, 1)));
}

TEST(CsrMatrix, FromTripletsSortsAndMerges) {
  auto m = CsrMatrix::FromTriplets(
      3, 3, {{2, 1, 5.0}, {0, 2, 1.0}, {0, 2, 2.0}, {1, 0, 4.0}});
  EXPECT_EQ(m.nnz(), 3);
  EXPECT_EQ(m.ToDense().At(0, 2), 3.0);  // duplicates summed
  EXPECT_EQ(m.ToDense().At(1, 0), 4.0);
  EXPECT_EQ(m.ToDense().At(2, 1), 5.0);
}

TEST(CsrMatrix, RoundTripThroughDense) {
  DenseMatrix d(3, 4);
  d.At(0, 0) = 1.0;
  d.At(2, 3) = -2.0;
  d.At(1, 2) = 0.5;
  const CsrMatrix sparse = CsrMatrix::FromDense(d);
  EXPECT_EQ(sparse.nnz(), 3);
  EXPECT_TRUE(sparse.ToDense().ApproxEquals(d));
}

TEST(CsrMatrix, RowAndColCounts) {
  auto m = CsrMatrix::FromTriplets(3, 3,
                                   {{0, 0, 1.0}, {0, 1, 1.0}, {2, 1, 1.0}});
  const auto rows = m.RowCounts();
  const auto cols = m.ColCounts();
  EXPECT_EQ(rows, (std::vector<int64_t>{2, 0, 1}));
  EXPECT_EQ(cols, (std::vector<int64_t>{1, 2, 0}));
}

TEST(CsrMatrix, EmptyRows) {
  const CsrMatrix m(4, 4);
  EXPECT_EQ(m.nnz(), 0);
  for (int64_t r = 0; r < 4; ++r) EXPECT_EQ(m.RowNnz(r), 0);
}

TEST(Matrix, FormatSelectionBySparsity) {
  DenseMatrix dense(10, 10);
  for (int64_t i = 0; i < 100; ++i) dense.data()[i] = 1.0;
  EXPECT_TRUE(Matrix::FromDense(dense).is_dense());

  DenseMatrix sparse(10, 10);
  sparse.At(0, 0) = 1.0;
  const Matrix m = Matrix::FromDense(sparse);
  EXPECT_FALSE(m.is_dense());  // sparsity 0.01 <= 0.4 -> CSR
  EXPECT_EQ(m.nnz(), 1);
}

TEST(Matrix, FromCsrDensifiesWhenDense) {
  DenseMatrix dense(4, 4);
  for (int64_t i = 0; i < 16; ++i) dense.data()[i] = 2.0;
  const Matrix m = Matrix::FromCsr(CsrMatrix::FromDense(dense));
  EXPECT_TRUE(m.is_dense());
}

TEST(Matrix, IdentityAndZeros) {
  const Matrix id = Matrix::Identity(5);
  EXPECT_EQ(id.nnz(), 5);
  EXPECT_EQ(id.At(3, 3), 1.0);
  EXPECT_EQ(id.At(3, 2), 0.0);
  const Matrix z = Matrix::Zeros(3, 7);
  EXPECT_EQ(z.nnz(), 0);
  EXPECT_EQ(z.rows(), 3);
  EXPECT_EQ(z.cols(), 7);
}

TEST(Matrix, SharedPayloadCopiesAreCheap) {
  DenseMatrix d(100, 100);
  d.At(1, 1) = 9.0;
  const Matrix a = Matrix::WrapDense(std::move(d));
  const Matrix b = a;  // shares the payload
  EXPECT_EQ(&a.dense(), &b.dense());
}

TEST(Matrix, AtInBothFormats) {
  auto csr = CsrMatrix::FromTriplets(2, 3, {{0, 1, 7.0}, {1, 2, 8.0}});
  const Matrix sparse = Matrix::WrapCsr(csr);
  EXPECT_EQ(sparse.At(0, 1), 7.0);
  EXPECT_EQ(sparse.At(0, 0), 0.0);
  const Matrix dense = Matrix::WrapDense(csr.ToDense());
  EXPECT_EQ(dense.At(1, 2), 8.0);
  EXPECT_TRUE(sparse.ApproxEquals(dense));
}

TEST(Matrix, SizeInBytesReflectsFormat) {
  DenseMatrix d(100, 100);
  d.At(0, 0) = 1.0;
  const Matrix sparse = Matrix::FromDense(d);
  const Matrix dense = Matrix::WrapDense(std::move(d));
  EXPECT_LT(sparse.SizeInBytes(), dense.SizeInBytes());
}

}  // namespace
}  // namespace remac
