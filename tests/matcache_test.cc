// Materialized-intermediate cache tests: byte-budget admission and
// benefit-aware eviction, pinned entries surviving eviction, dataset-
// level invalidation (including the registration-version term in the
// key), single-flight publication, and the service-level guarantees —
// cross-request reuse is bitwise-identical to recomputing, stale data
// never serves, and concurrent misses on one key compute once. The
// MatCache*/MatrixBytes suites run under TSan/ASan via scripts/check.sh.

#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "matrix/csr_matrix.h"
#include "matrix/dense_matrix.h"
#include "matrix/matrix.h"
#include "sched/thread_pool.h"
#include "service/matcache/exec_context.h"
#include "service/matcache/intermediate_key.h"
#include "service/matcache/matcache.h"
#include "service/plan_service.h"
#include "service/program_fingerprint.h"

namespace remac {
namespace {

// ---------------------------------------------------------------------
// Matrix::BytesUsed — the cache's byte-budget currency.

TEST(MatrixBytes, DenseFootprintIsExact) {
  DenseMatrix dense(12, 5, std::vector<double>(60, 1.0));
  EXPECT_EQ(dense.BytesUsed(), 60 * static_cast<int64_t>(sizeof(double)));
  Matrix m = Matrix::WrapDense(dense);
  EXPECT_EQ(m.BytesUsed(), dense.BytesUsed());
}

TEST(MatrixBytes, CsrFootprintCountsAllThreeArrays) {
  // 3x4 with 2 nonzeros.
  DenseMatrix dense(3, 4);
  dense.At(0, 1) = 2.0;
  dense.At(2, 3) = 5.0;
  Matrix m = Matrix::WrapCsr(CsrMatrix::FromDense(dense));
  ASSERT_FALSE(m.is_dense());
  const int64_t expected =
      2 * static_cast<int64_t>(sizeof(double)) +    // values
      2 * static_cast<int64_t>(sizeof(int32_t)) +   // col indices
      4 * static_cast<int64_t>(sizeof(int64_t));    // row_ptr (rows + 1)
  EXPECT_EQ(m.BytesUsed(), expected);
}

// ---------------------------------------------------------------------
// MatCache mechanics.

RtValue DenseValue(int64_t rows, int64_t cols, double fill) {
  return RtValue::FromMatrix(
      Matrix::WrapDense(
          DenseMatrix(rows, cols, std::vector<double>(rows * cols, fill))),
      /*distributed=*/false);
}

TEST(MatCache, OfferThenGetServesTheEntry) {
  MatCacheOptions options;
  options.capacity_bytes = 1 << 20;
  options.shards = 1;
  MatCache cache(options);
  auto offered = cache.Offer("k", DenseValue(4, 4, 2.5), 100.0, {"ds"});
  ASSERT_NE(offered, nullptr);
  EXPECT_EQ(offered->bytes, 16 * static_cast<int64_t>(sizeof(double)));

  auto served = cache.Get("k");
  ASSERT_NE(served, nullptr);
  EXPECT_EQ(served->value.matrix.At(0, 0), 2.5);
  const MatCacheStats stats = cache.stats();
  EXPECT_EQ(stats.admits, 1);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.entries, 1);
  EXPECT_EQ(stats.resident_bytes, offered->bytes);
}

TEST(MatCache, BytePressureEvictsTheLowestBenefitEntry) {
  MatCacheOptions options;
  options.capacity_bytes = 300;  // holds two 128-byte entries, not three
  options.shards = 1;
  MatCache cache(options);
  cache.Offer("expensive", DenseValue(4, 4, 1.0), 1e9, {"ds"});
  cache.Offer("cheap", DenseValue(4, 4, 1.0), 1.0, {"ds"});
  cache.Offer("incoming", DenseValue(4, 4, 1.0), 1e6, {"ds"});
  // Straight LRU would drop "expensive" (the oldest); the benefit-aware
  // sampler drops "cheap" — trivial to recompute per resident byte.
  EXPECT_EQ(cache.Get("cheap"), nullptr);
  EXPECT_NE(cache.Get("expensive"), nullptr);
  EXPECT_NE(cache.Get("incoming"), nullptr);
  const MatCacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_LE(stats.resident_bytes, options.capacity_bytes);
}

TEST(MatCache, PinnedEntriesSurviveEviction) {
  MatCacheOptions options;
  options.capacity_bytes = 200;  // room for exactly one 128-byte entry
  options.shards = 1;
  MatCache cache(options);
  auto pinned = cache.Offer("old", DenseValue(4, 4, 7.0), 10.0, {"ds"});
  cache.Offer("new", DenseValue(4, 4, 1.0), 10.0, {"ds"});
  EXPECT_EQ(cache.Get("old"), nullptr);  // evicted from the index
  // ...but the pinned value is untouched: an in-flight execution holding
  // the shared_ptr keeps reading valid data.
  EXPECT_EQ(pinned->value.matrix.At(3, 3), 7.0);
}

TEST(MatCache, OversizedValuesAreRejectedButStillReturned) {
  MatCacheOptions options;
  options.capacity_bytes = 64;
  options.shards = 1;
  MatCache cache(options);
  auto entry = cache.Offer("big", DenseValue(8, 8, 3.0), 1e12, {"ds"});
  ASSERT_NE(entry, nullptr);  // followers are still served the value
  EXPECT_EQ(entry->value.matrix.At(0, 0), 3.0);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().rejects, 1);
}

TEST(MatCache, ZeroCapacityDisablesAdmission) {
  MatCacheOptions options;
  options.capacity_bytes = 0;
  MatCache cache(options);
  cache.Offer("k", DenseValue(2, 2, 1.0), 1e9, {"ds"});
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Get("k"), nullptr);
}

TEST(MatCache, AdmissionBarScalesWithObservedProbes) {
  MatCacheOptions options;
  options.capacity_bytes = 1 << 20;
  options.shards = 1;
  // 128-byte value must predict >= 128k FLOPs on first sight.
  options.admit_flops_per_byte = 1000.0;
  MatCache cache(options);

  cache.Offer("k", DenseValue(4, 4, 1.0), 1e3, {"ds"});
  EXPECT_EQ(cache.size(), 0u);  // 1e3 FLOPs * 1 probe < bar: rejected

  // The same key probed repeatedly earns residency: the ghost-frequency
  // map amortizes the per-byte bar over demonstrated demand.
  for (int i = 0; i < 200; ++i) (void)cache.Get("k");
  cache.Offer("k", DenseValue(4, 4, 1.0), 1e3, {"ds"});
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().admits, 1);
  EXPECT_EQ(cache.stats().rejects, 1);
}

TEST(MatCache, EraseDatasetsDropsEveryIntersectingEntry) {
  MatCacheOptions options;
  options.capacity_bytes = 1 << 20;
  options.shards = 2;
  MatCache cache(options);
  cache.Offer("ka", DenseValue(2, 2, 1.0), 1.0, {"a"});
  cache.Offer("kb", DenseValue(2, 2, 1.0), 1.0, {"b"});
  cache.Offer("kab", DenseValue(2, 2, 1.0), 1.0, {"a", "b"});
  EXPECT_EQ(cache.EraseDatasets({"a"}), 2);
  EXPECT_EQ(cache.Get("ka"), nullptr);
  EXPECT_EQ(cache.Get("kab"), nullptr);
  EXPECT_NE(cache.Get("kb"), nullptr);
  EXPECT_EQ(cache.stats().invalidations, 2);
}

TEST(MatCache, SingleFlightPublishesTheLeadersValue) {
  MatCache cache;
  auto lead = cache.JoinFlight("k");
  ASSERT_TRUE(lead.second);
  auto follow = cache.JoinFlight("k");
  ASSERT_FALSE(follow.second);
  ASSERT_EQ(lead.first, follow.first);

  std::shared_ptr<const MaterializedIntermediate> received;
  std::shared_ptr<MatCache::Flight> flight = follow.first;
  std::thread waiter(
      [&cache, flight, &received] { received = cache.WaitFlight(flight.get()); });
  auto entry = cache.Offer("k", DenseValue(2, 2, 4.0), 10.0, {"ds"});
  cache.CompleteFlight("k", entry);
  waiter.join();
  ASSERT_EQ(received, entry);
  // The flight is gone: the next miss starts a fresh one.
  EXPECT_TRUE(cache.JoinFlight("k").second);
}

TEST(MatCache, CancelledFlightWakesFollowersEmptyHanded) {
  MatCache cache;
  ASSERT_TRUE(cache.JoinFlight("k").second);
  auto follow = cache.JoinFlight("k");
  ASSERT_FALSE(follow.second);
  cache.CancelFlight("k");
  EXPECT_EQ(cache.WaitFlight(follow.first.get()), nullptr);
}

TEST(MatCache, SingleFlightDisabledMakesEveryoneALeader) {
  MatCacheOptions options;
  options.single_flight = false;
  MatCache cache(options);
  auto a = cache.JoinFlight("k");
  auto b = cache.JoinFlight("k");
  EXPECT_TRUE(a.second);
  EXPECT_TRUE(b.second);
  EXPECT_EQ(a.first, nullptr);
  EXPECT_EQ(b.first, nullptr);
}

// ---------------------------------------------------------------------
// Cache keys.

TEST(MatCacheKey, RegistrationVersionIsPartOfTheKey) {
  DataCatalog catalog;
  MatrixStats stats;
  stats.rows = 10;
  stats.cols = 10;
  stats.sparsity = 0.5;
  catalog.RegisterStats("m", stats);

  SubplanCandidate candidate;
  candidate.window_key = "W";
  candidate.structural_digest = 7;
  candidate.datasets = {"m"};

  auto k1 = IntermediateCacheKey(candidate, catalog, "env");
  ASSERT_TRUE(k1.ok());
  // Re-registering the same metadata bumps the version: superseded data
  // must be unreachable even when dims and sparsity bucket agree.
  catalog.RegisterStats("m", stats);
  auto k2 = IntermediateCacheKey(candidate, catalog, "env");
  ASSERT_TRUE(k2.ok());
  EXPECT_NE(k1.value(), k2.value());

  // The execution-environment digest keys bit-affecting knobs apart.
  auto k3 = IntermediateCacheKey(candidate, catalog, "other-env");
  ASSERT_TRUE(k3.ok());
  EXPECT_NE(k2.value(), k3.value());

  candidate.datasets = {"missing"};
  EXPECT_FALSE(IntermediateCacheKey(candidate, catalog, "env").ok());
}

TEST(MatCacheKey, ExecEnvDigestTracksBitAffectingKnobsOnly) {
  RunConfig a;
  RunConfig b = a;
  b.estimator = EstimatorKind::kExact;  // cost-only: same bits
  EXPECT_EQ(ExecEnvDigest(a), ExecEnvDigest(b));
  RunConfig c = a;
  c.cluster.num_workers = a.cluster.num_workers + 3;
  EXPECT_NE(ExecEnvDigest(a), ExecEnvDigest(c));
  RunConfig d = a;
  d.engine = EngineKind::kPbdR;  // forces dense storage: different bits
  EXPECT_NE(ExecEnvDigest(a), ExecEnvDigest(d));
}

// ---------------------------------------------------------------------
// Service-level: cross-request reuse, invalidation, concurrency.

void RegisterServiceDataset(DataCatalog* catalog, uint64_t seed = 11,
                            int64_t rows = 220, double sparsity = 0.35) {
  DatasetSpec spec;
  spec.name = "ds";
  spec.rows = rows;
  spec.cols = 10;
  spec.sparsity = sparsity;
  spec.seed = seed;
  ASSERT_TRUE(RegisterDataset(catalog, spec).ok());
}

/// A script whose Gram chain t(read) %*% read is a pure-read candidate;
/// `scale` varies the downstream arithmetic so each variant is a
/// distinct program (distinct plan-cache key) sharing one intermediate.
std::string GramScript(const std::string& scale) {
  return "g = t(read(\"ds\")) %*% read(\"ds\");\n"
         "x = " + scale + " * g;\n";
}

void ExpectBitwiseEqual(const RtValue& a, const RtValue& b,
                        const std::string& label) {
  ASSERT_EQ(a.is_scalar, b.is_scalar) << label;
  if (a.is_scalar) {
    EXPECT_EQ(a.scalar, b.scalar) << label;
    return;
  }
  ASSERT_EQ(a.matrix.rows(), b.matrix.rows()) << label;
  ASSERT_EQ(a.matrix.cols(), b.matrix.cols()) << label;
  for (int64_t r = 0; r < a.matrix.rows(); ++r) {
    for (int64_t c = 0; c < a.matrix.cols(); ++c) {
      ASSERT_EQ(a.matrix.At(r, c), b.matrix.At(r, c))
          << label << " differs at (" << r << "," << c << ")";
    }
  }
}

TEST(MatCacheService, CrossProgramReuseIsBitwiseIdentical) {
  DataCatalog catalog;
  RegisterServiceDataset(&catalog);
  PlanService service(&catalog);

  // Two *different* programs sharing one pure-read Gram chain: the
  // second request must be a plan-cache miss but a matcache hit, and
  // its intermediate-derived numbers must match bit for bit.
  auto cold = service.Run({GramScript("0.5"), RunConfig{}});
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_GE(cold->matcache.probes, 1);
  EXPECT_EQ(cold->matcache.hits, 0);

  auto shared = service.Run({GramScript("2.0"), RunConfig{}});
  ASSERT_TRUE(shared.ok()) << shared.status().ToString();
  EXPECT_FALSE(shared->cache_hit);  // distinct program
  EXPECT_GE(shared->matcache.hits, 1) << "Gram chain was not shared";
  ExpectBitwiseEqual(cold->run.env.at("g"), shared->run.env.at("g"),
                     "shared Gram intermediate");

  const ServiceStats stats = service.stats();
  EXPECT_GE(stats.matcache.admits, 1);
  EXPECT_GE(stats.matcache.entries, 1);
  EXPECT_GT(stats.matcache.resident_bytes, 0);
}

TEST(MatCacheService, WarmRequestServesFromTheCache) {
  DataCatalog catalog;
  RegisterServiceDataset(&catalog);
  PlanService service(&catalog);
  const ServiceRequest request{GramScript("0.5"), RunConfig{}};

  auto cold = service.Run(request);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  auto warm = service.Run(request);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->cache_hit);            // plan cache
  EXPECT_GE(warm->matcache.hits, 1);       // intermediate cache
  ExpectBitwiseEqual(cold->run.env.at("x"), warm->run.env.at("x"),
                     "cached vs recomputed");
}

TEST(MatCacheService, ReregisteredDataNeverServesStaleIntermediates) {
  DataCatalog catalog;
  RegisterServiceDataset(&catalog, /*seed=*/11);
  PlanService service(&catalog);
  const ServiceRequest request{GramScript("0.5"), RunConfig{}};
  ASSERT_TRUE(service.Run(request).ok());
  ASSERT_GE(service.stats().matcache.entries, 1);

  // Same dims, same sparsity bucket, different content: the plan is
  // still valid (metadata key unchanged) but every materialized
  // intermediate of "ds" must be invalidated — the version term keeps
  // old keys unreachable, the fragment watcher erases the bytes.
  RegisterServiceDataset(&catalog, /*seed=*/77);
  auto fresh = service.Run(request);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  EXPECT_TRUE(fresh->cache_hit) << "plan should survive a content swap";
  EXPECT_EQ(fresh->matcache.hits, 0) << "served stale bytes";
  EXPECT_GE(service.stats().matcache.invalidations, 1);

  // The recomputed intermediate is resident again under the new key.
  auto warm = service.Run(request);
  ASSERT_TRUE(warm.ok());
  EXPECT_GE(warm->matcache.hits, 1);
  ExpectBitwiseEqual(fresh->run.env.at("x"), warm->run.env.at("x"),
                     "post-invalidation");
}

TEST(MatCacheService, DimensionChangeCascadesThroughBothCaches) {
  DataCatalog catalog;
  RegisterServiceDataset(&catalog, 11, /*rows=*/160);
  PlanService service(&catalog);
  const ServiceRequest request{GramScript("0.5"), RunConfig{}};
  ASSERT_TRUE(service.Run(request).ok());

  // Dims change: the plan-cache entry is explicitly invalidated
  // (ErasePlansForProgram) and the dataset's intermediates are erased.
  RegisterServiceDataset(&catalog, 11, /*rows=*/240);
  auto report = service.Run(request);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->cache_hit);
  EXPECT_EQ(report->matcache.hits, 0);
  const ServiceStats stats = service.stats();
  EXPECT_GE(stats.cache.invalidations, 1);
  EXPECT_GE(stats.matcache.invalidations, 1);
}

TEST(MatCacheService, DisabledCacheLeavesRequestsUntouched) {
  DataCatalog catalog;
  RegisterServiceDataset(&catalog);
  ServiceOptions options;
  options.mat_cache_bytes = 0;
  PlanService service(&catalog, options);
  const ServiceRequest request{GramScript("0.5"), RunConfig{}};
  auto a = service.Run(request);
  auto b = service.Run(request);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->matcache.probes, 0);
  EXPECT_EQ(b->matcache.probes, 0);
  EXPECT_EQ(service.stats().matcache.entries, 0);
  ExpectBitwiseEqual(a->run.env.at("x"), b->run.env.at("x"), "disabled");
}

// Hammer: many concurrent requests, each a distinct program, all
// sharing one Gram intermediate. Every request resolves its key exactly
// one way (hit, led flight, or waited flight), at most one entry is
// ever resident, and every derived result is bitwise identical. Runs
// under TSan/ASan via scripts/check.sh.
TEST(MatCacheConcurrency, ConcurrentMissesComputeTheIntermediateOnce) {
  ThreadPool::SetGlobalThreads(8);
  DataCatalog catalog;
  RegisterServiceDataset(&catalog);
  PlanService service(&catalog);

  constexpr int kRequests = 24;
  PlanService::Session session = service.NewSession();
  for (int k = 0; k < kRequests; ++k) {
    session.Submit({GramScript("0.125 * " + std::to_string(k + 1)),
                    RunConfig{}});
  }
  const auto results = session.Wait();
  ASSERT_EQ(results.size(), static_cast<size_t>(kRequests));

  int64_t resolutions = 0;
  const Result<ServiceReport>* reference = nullptr;
  for (const auto& result : results) {
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_GE(result.value().matcache.probes, 1);
    resolutions += result.value().matcache.hits +
                   result.value().matcache.flights_led +
                   result.value().matcache.flight_waits;
    if (reference == nullptr) reference = &result;
    ExpectBitwiseEqual(reference->value().run.env.at("g"),
                       result.value().run.env.at("g"), "hammer");
  }
  // One resolution per request: nobody recomputed behind the cache's
  // back, nobody was double-counted.
  EXPECT_EQ(resolutions, kRequests);

  const MatCacheStats stats = service.mat_cache().stats();
  EXPECT_EQ(stats.entries, 1);  // one shared chain, one resident entry
  EXPECT_GE(stats.admits, 1);
  EXPECT_GE(stats.hits + stats.flight_waits, 1) << "nothing was shared";
  ThreadPool::SetGlobalThreads(0);
}

TEST(MatCache, MeasuredAdmitThresholdClampedAndStable) {
  const double measured = MeasuredAdmitFlopsPerByte();
  // The derived break-even density must land inside the clamp window and
  // be measured once per process (repeat calls return the same sample).
  EXPECT_GE(measured, 0.05);
  EXPECT_LE(measured, 64.0);
  EXPECT_DOUBLE_EQ(measured, MeasuredAdmitFlopsPerByte());
}

TEST(MatCache, NegativeServiceKnobDerivesPositiveThreshold) {
  // The service default (-1) must resolve to the measured threshold, not
  // admit-everything: an entry with near-zero recompute FLOPs and a big
  // footprint gets rejected.
  ServiceOptions options;
  EXPECT_LT(options.mat_admit_flops_per_byte, 0.0);
  MatCache cache(MatCacheOptions{
      .capacity_bytes = 64 << 20,
      .shards = 2,
      .admit_flops_per_byte = MeasuredAdmitFlopsPerByte(),
  });
  DenseMatrix dense(256, 256);
  for (int64_t i = 0; i < dense.size(); ++i) dense.data()[i] = 1.0;
  RtValue value;
  value.matrix = Matrix::FromDense(std::move(dense));
  cache.Offer("cheap-but-fat", std::move(value), /*predicted_flops=*/1.0,
              {});
  EXPECT_EQ(cache.stats().entries, 0);
  EXPECT_EQ(cache.stats().rejects, 1);
}

}  // namespace
}  // namespace remac
