// Failure-injection and robustness tests: error paths, graceful
// degradation, and the extended estimator/visualization surfaces.

#include <gtest/gtest.h>

#include "algorithms/scripts.h"
#include "data/generators.h"
#include "plan/plan_dot.h"
#include "runtime/program_runner.h"
#include "sparsity/estimator.h"

namespace remac {
namespace {

DataCatalog RobustCatalog() {
  DataCatalog catalog;
  DatasetSpec spec;
  spec.name = "ds";
  spec.rows = 120;
  spec.cols = 9;
  spec.sparsity = 0.5;
  spec.seed = 31;
  EXPECT_TRUE(RegisterDataset(&catalog, spec).ok());
  return catalog;
}

TEST(Robustness, NestedLoopsPassThroughUnoptimized) {
  const DataCatalog catalog = RobustCatalog();
  const std::string script =
      "A = read(\"ds\");\n"
      "x = ones(ncol(A), 1);\n"
      "i = 0;\n"
      "while (i < 2) {\n"
      "  j = 0;\n"
      "  while (j < 2) {\n"
      "    x = x + 0.001 * (t(A) %*% (A %*% x));\n"
      "    j = j + 1;\n"
      "  }\n"
      "  i = i + 1;\n"
      "}\n";
  RunConfig reference;
  reference.optimizer = OptimizerKind::kAsWritten;
  auto expected = RunScript(script, catalog, reference);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();
  RunConfig config;
  config.optimizer = OptimizerKind::kRemacAdaptive;
  auto run = RunScript(script, catalog, config);
  ASSERT_TRUE(run.ok()) << run.status().ToString();  // no failure, no opt
  EXPECT_TRUE(run->env.at("x").AsMatrix().ApproxEquals(
      expected->env.at("x").AsMatrix(), 1e-9));
}

TEST(Robustness, MissingDatasetSurfacesNotFound) {
  const DataCatalog catalog = RobustCatalog();
  RunConfig config;
  auto run = RunScript("A = read(\"ghost\");\n", catalog, config);
  EXPECT_EQ(run.status().code(), StatusCode::kNotFound);
}

TEST(Robustness, ParseErrorsSurfaceCleanly) {
  const DataCatalog catalog = RobustCatalog();
  RunConfig config;
  auto run = RunScript("x = ;\n", catalog, config);
  EXPECT_EQ(run.status().code(), StatusCode::kParseError);
}

TEST(Robustness, DimensionMismatchSurfaceCleanly) {
  const DataCatalog catalog = RobustCatalog();
  RunConfig config;
  auto run = RunScript("A = read(\"ds\");\nB = A %*% A;\n", catalog, config);
  EXPECT_EQ(run.status().code(), StatusCode::kDimensionMismatch);
}

TEST(Robustness, ZeroIterationLoopStillValid) {
  const DataCatalog catalog = RobustCatalog();
  RunConfig config;
  config.optimizer = OptimizerKind::kRemacAdaptive;
  auto run = RunScript(
      "A = read(\"ds\");\nx = ones(9, 1);\ni = 0;\n"
      "while (i < 0) {\n  x = t(A) %*% (A %*% x);\n  i = i + 1;\n}\n",
      catalog, config);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_DOUBLE_EQ(run->env.at("x").AsMatrix().At(0, 0), 1.0);  // untouched
}

TEST(Robustness, EmptyProgram) {
  const DataCatalog catalog = RobustCatalog();
  RunConfig config;
  auto run = RunScript("", catalog, config);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run->env.empty());
}

TEST(SamplingEstimator, ProducesUsableEstimatesAndRunsEndToEnd) {
  const DataCatalog catalog = RobustCatalog();
  const SamplingEstimator estimator(16);
  auto stats = catalog.Stats("ds").value();
  const NodeStats leaf = estimator.LeafStats("ds", stats);
  EXPECT_NEAR(leaf.sparsity, stats.sparsity, 1e-9);
  const NodeStats product =
      estimator.Multiply(estimator.Transpose(leaf), leaf);
  EXPECT_GT(product.sparsity, 0.0);
  EXPECT_LE(product.sparsity, 1.0);

  RunConfig reference;
  reference.optimizer = OptimizerKind::kAsWritten;
  reference.max_iterations = 3;
  auto expected = RunScript(DfpScript("ds", 3), catalog, reference);
  ASSERT_TRUE(expected.ok());
  RunConfig config;
  config.optimizer = OptimizerKind::kRemacAdaptive;
  config.estimator = EstimatorKind::kSampling;
  config.max_iterations = 3;
  auto run = RunScript(DfpScript("ds", 3), catalog, config);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run->env.at("x").AsMatrix().ApproxEquals(
      expected->env.at("x").AsMatrix(), 1e-7));
}

TEST(PlanDot, RendersProgramStructure) {
  const DataCatalog catalog = RobustCatalog();
  RunConfig config;
  config.optimizer = OptimizerKind::kRemacAdaptive;
  config.max_iterations = 3;
  config.execute = false;
  auto run = CompileOnly(GdScript("ds", 3), catalog, config);
  ASSERT_TRUE(run.ok());
  ASSERT_NE(run->optimized_program, nullptr);
  const std::string dot = ProgramToDot(*run->optimized_program);
  EXPECT_NE(dot.find("digraph program"), std::string::npos);
  EXPECT_NE(dot.find("read(ds)"), std::string::npos);
  EXPECT_NE(dot.find("label=\"loop\""), std::string::npos);
  EXPECT_NE(dot.find("%*%"), std::string::npos);
  // Balanced braces (structurally valid DOT).
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));
}

TEST(PlanDot, SinglePlanRender) {
  const DataCatalog catalog = RobustCatalog();
  auto program = CompileScript(
      "A = read(\"ds\");\ny = t(A) %*% (A %*% ones(9, 1));\n", catalog);
  ASSERT_TRUE(program.ok());
  const std::string dot =
      PlanToDot(*program->statements[1].plan, "example");
  EXPECT_NE(dot.find("digraph plan"), std::string::npos);
  EXPECT_NE(dot.find("example"), std::string::npos);
  EXPECT_NE(dot.find("9x1"), std::string::npos);
}

}  // namespace
}  // namespace remac
