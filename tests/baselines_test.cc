#include <gtest/gtest.h>

#include "algorithms/scripts.h"
#include "baselines/engine_modes.h"
#include "baselines/spores_optimizer.h"
#include "baselines/systemds_optimizer.h"
#include "data/generators.h"
#include "plan/plan_builder.h"
#include "runtime/executor.h"
#include "sparsity/estimator.h"

namespace remac {
namespace {

DataCatalog BaselineCatalog() {
  DataCatalog catalog;
  DatasetSpec spec;
  spec.name = "ds";
  spec.rows = 300;
  spec.cols = 10;
  spec.sparsity = 0.5;
  spec.seed = 8;
  EXPECT_TRUE(RegisterDataset(&catalog, spec, true).ok());
  return catalog;
}

Matrix RunProgram(const CompiledProgram& program, const DataCatalog& catalog,
                  const std::string& var, int iterations,
                  EngineTraits traits = {}) {
  Executor executor(ClusterModel(), &catalog, nullptr, traits);
  EXPECT_TRUE(executor.Run(program.statements, iterations).ok());
  auto value = executor.Get(var);
  EXPECT_TRUE(value.ok()) << value.status().ToString();
  return value->AsMatrix();
}

TEST(SystemDs, ExplicitCseExtractsIdenticalSubtrees) {
  const DataCatalog catalog = BaselineCatalog();
  auto program = CompileScript(
      "A = read(\"ds\");\n"
      "v = read(\"ds_pd\");\n"
      "p = t(A) %*% (A %*% v);\n"
      "q = t(A) %*% (A %*% v) + v;\n",
      catalog);
  ASSERT_TRUE(program.ok());
  MetadataEstimator estimator;
  auto optimized =
      SystemDsOptimize(*program, ClusterModel(), &estimator, &catalog);
  ASSERT_TRUE(optimized.ok());
  int temps = 0;
  for (const auto& stmt : optimized->statements) temps += stmt.is_temp;
  EXPECT_GE(temps, 1);  // the repeated t(A)(Av) became a temp
  // Numerics preserved.
  const Matrix expected = RunProgram(*program, catalog, "q", 1);
  EXPECT_TRUE(
      RunProgram(*optimized, catalog, "q", 1).ApproxEquals(expected, 1e-9));
}

TEST(SystemDs, CseRespectsVariableVersions) {
  const DataCatalog catalog = BaselineCatalog();
  // The same text (B %*% v) appears before and after B changes; it must
  // NOT be unified.
  auto program = CompileScript(
      "B = eye(4);\n"
      "v = ones(4, 1);\n"
      "p = B %*% v;\n"
      "B = B + B;\n"
      "q = B %*% v;\n",
      catalog);
  ASSERT_TRUE(program.ok());
  MetadataEstimator estimator;
  auto optimized =
      SystemDsOptimize(*program, ClusterModel(), &estimator, &catalog);
  ASSERT_TRUE(optimized.ok());
  const Matrix p = RunProgram(*optimized, catalog, "p", 1);
  const Matrix q = RunProgram(*optimized, catalog, "q", 1);
  EXPECT_NEAR(p.At(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(q.At(0, 0), 2.0, 1e-12);
}

TEST(SystemDs, ChainReorderingPreservesValues) {
  const DataCatalog catalog = BaselineCatalog();
  auto program = CompileScript(DfpScript("ds", 3), catalog);
  ASSERT_TRUE(program.ok());
  MetadataEstimator estimator;
  const Matrix expected = RunProgram(*program, catalog, "x", 3);
  for (bool cse : {true, false}) {
    SystemDsConfig config;
    config.explicit_cse = cse;
    auto optimized = SystemDsOptimize(*program, ClusterModel(), &estimator,
                                      &catalog, config);
    ASSERT_TRUE(optimized.ok());
    EXPECT_TRUE(RunProgram(*optimized, catalog, "x", 3)
                    .ApproxEquals(expected, 1e-8))
        << "explicit_cse=" << cse;
  }
}

TEST(SystemDs, NoLoopConstantHoisting) {
  // SystemDS does not support LSE: nothing may move out of the loop.
  const DataCatalog catalog = BaselineCatalog();
  auto program = CompileScript(GdScript("ds", 3), catalog);
  ASSERT_TRUE(program.ok());
  MetadataEstimator estimator;
  auto optimized =
      SystemDsOptimize(*program, ClusterModel(), &estimator, &catalog);
  ASSERT_TRUE(optimized.ok());
  size_t preamble_original = 0;
  size_t preamble_optimized = 0;
  for (const auto& stmt : program->statements) {
    preamble_original += stmt.kind == CompiledStmt::Kind::kAssign;
  }
  for (const auto& stmt : optimized->statements) {
    preamble_optimized += stmt.kind == CompiledStmt::Kind::kAssign;
  }
  EXPECT_EQ(preamble_original, preamble_optimized);
}

TEST(Spores, FindsSomeCseNoLse) {
  const DataCatalog catalog = BaselineCatalog();
  auto program = CompileScript(DfpScript("ds", 3), catalog);
  ASSERT_TRUE(program.ok());
  MetadataEstimator estimator;
  OptimizeReport report;
  auto optimized = SporesOptimize(*program, ClusterModel(), &estimator,
                                  &catalog, SporesConfig{}, &report);
  ASSERT_TRUE(optimized.ok());
  EXPECT_EQ(report.applied_lse, 0);  // SPORES has no loop analysis
  const Matrix expected =
      RunProgram(*CompileScript(DfpScript("ds", 3), catalog), catalog, "x", 3);
  EXPECT_TRUE(
      RunProgram(*optimized, catalog, "x", 3).ApproxEquals(expected, 1e-8));
}

TEST(EngineModes, TraitsMatchPaperDescriptions) {
  const EngineTraits sysds = TraitsFor(EngineKind::kSystemDsLike);
  EXPECT_FALSE(sysds.force_dense);
  EXPECT_FALSE(sysds.force_distributed);
  const EngineTraits pbdr = TraitsFor(EngineKind::kPbdR);
  EXPECT_TRUE(pbdr.force_dense);
  EXPECT_TRUE(pbdr.force_distributed);
  const EngineTraits scidb = TraitsFor(EngineKind::kSciDb);
  EXPECT_TRUE(scidb.force_distributed);
  EXPECT_GT(scidb.input_partition_factor, pbdr.input_partition_factor);
}

TEST(EngineModes, ForcedDenseStillCorrect) {
  const DataCatalog catalog = BaselineCatalog();
  auto program = CompileScript(GdScript("ds", 3), catalog);
  ASSERT_TRUE(program.ok());
  const Matrix expected = RunProgram(*program, catalog, "x", 3);
  const Matrix pbdr = RunProgram(*program, catalog, "x", 3,
                                 TraitsFor(EngineKind::kPbdR));
  EXPECT_TRUE(pbdr.ApproxEquals(expected, 1e-9));
}

TEST(EngineModes, ForcedDistributedBooksMoreTransmission) {
  const DataCatalog catalog = BaselineCatalog();
  auto program = CompileScript(GdScript("ds", 3), catalog);
  ASSERT_TRUE(program.ok());
  ClusterModel model;
  TransmissionLedger local_ledger(model);
  Executor local_exec(model, &catalog, &local_ledger);
  ASSERT_TRUE(local_exec.Run(program->statements, 3).ok());
  TransmissionLedger dist_ledger(model);
  Executor dist_exec(model, &catalog, &dist_ledger,
                     TraitsFor(EngineKind::kPbdR));
  ASSERT_TRUE(dist_exec.Run(program->statements, 3).ok());
  EXPECT_GT(dist_ledger.Breakdown().transmission_seconds,
            local_ledger.Breakdown().transmission_seconds);
}

}  // namespace
}  // namespace remac
