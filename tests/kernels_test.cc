#include <gtest/gtest.h>

#include "common/rng.h"
#include "matrix/kernels.h"

namespace remac {
namespace {

Matrix RandomMatrix(int64_t rows, int64_t cols, double sparsity,
                    uint64_t seed, bool force_dense_format) {
  Rng rng(seed);
  DenseMatrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) {
    if (rng.NextDouble() < sparsity) m.data()[i] = rng.NextGaussian();
  }
  if (force_dense_format) return Matrix::WrapDense(std::move(m));
  return Matrix::WrapCsr(CsrMatrix::FromDense(m));
}

DenseMatrix NaiveMultiply(const Matrix& a, const Matrix& b) {
  const DenseMatrix da = a.ToDense();
  const DenseMatrix db = b.ToDense();
  DenseMatrix c(da.rows(), db.cols());
  for (int64_t i = 0; i < da.rows(); ++i) {
    for (int64_t j = 0; j < da.cols(); ++j) {
      for (int64_t k = 0; k < db.cols(); ++k) {
        c.At(i, k) += da.At(i, j) * db.At(j, k);
      }
    }
  }
  return c;
}

/// All four format combinations must agree with the naive reference.
class MultiplyFormatTest
    : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

TEST_P(MultiplyFormatTest, MatchesNaive) {
  const auto [a_dense, b_dense] = GetParam();
  const Matrix a = RandomMatrix(17, 23, 0.3, 1, a_dense);
  const Matrix b = RandomMatrix(23, 11, 0.3, 2, b_dense);
  auto c = Multiply(a, b);
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(c->ToDense().ApproxEquals(NaiveMultiply(a, b), 1e-9));
}

INSTANTIATE_TEST_SUITE_P(AllFormats, MultiplyFormatTest,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool()));

TEST(Kernels, MultiplyDimensionMismatch) {
  const Matrix a = RandomMatrix(3, 4, 1.0, 3, true);
  const Matrix b = RandomMatrix(5, 2, 1.0, 4, true);
  EXPECT_EQ(Multiply(a, b).status().code(), StatusCode::kDimensionMismatch);
}

TEST(Kernels, TransposeBothFormats) {
  for (bool dense : {true, false}) {
    const Matrix a = RandomMatrix(7, 13, 0.4, 5, dense);
    const Matrix t = Transpose(a);
    EXPECT_EQ(t.rows(), 13);
    EXPECT_EQ(t.cols(), 7);
    for (int64_t r = 0; r < 7; ++r) {
      for (int64_t c = 0; c < 13; ++c) {
        EXPECT_EQ(a.At(r, c), t.At(c, r));
      }
    }
  }
}

TEST(Kernels, TransposeInvolution) {
  const Matrix a = RandomMatrix(9, 6, 0.2, 6, false);
  EXPECT_TRUE(Transpose(Transpose(a)).ApproxEquals(a));
}

TEST(Kernels, AddSubElementwise) {
  for (bool dense : {true, false}) {
    const Matrix a = RandomMatrix(8, 8, 0.3, 7, dense);
    const Matrix b = RandomMatrix(8, 8, 0.3, 8, dense);
    auto sum = Add(a, b);
    auto diff = Subtract(a, b);
    ASSERT_TRUE(sum.ok());
    ASSERT_TRUE(diff.ok());
    for (int64_t r = 0; r < 8; ++r) {
      for (int64_t c = 0; c < 8; ++c) {
        EXPECT_NEAR(sum->At(r, c), a.At(r, c) + b.At(r, c), 1e-12);
        EXPECT_NEAR(diff->At(r, c), a.At(r, c) - b.At(r, c), 1e-12);
      }
    }
  }
}

TEST(Kernels, AddMixedFormats) {
  const Matrix a = RandomMatrix(6, 6, 0.3, 9, true);
  const Matrix b = RandomMatrix(6, 6, 0.3, 10, false);
  auto sum = Add(a, b);
  ASSERT_TRUE(sum.ok());
  EXPECT_NEAR(sum->At(2, 2), a.At(2, 2) + b.At(2, 2), 1e-12);
}

TEST(Kernels, ElementwiseMultiplyAndSafeDivide) {
  const Matrix a = RandomMatrix(5, 5, 0.6, 11, false);
  const Matrix b = RandomMatrix(5, 5, 0.6, 12, false);
  auto prod = ElementwiseMultiply(a, b);
  auto quot = ElementwiseDivide(a, b);
  ASSERT_TRUE(prod.ok());
  ASSERT_TRUE(quot.ok());
  for (int64_t r = 0; r < 5; ++r) {
    for (int64_t c = 0; c < 5; ++c) {
      EXPECT_NEAR(prod->At(r, c), a.At(r, c) * b.At(r, c), 1e-12);
      const double expected =
          b.At(r, c) == 0.0 ? 0.0 : a.At(r, c) / b.At(r, c);
      EXPECT_NEAR(quot->At(r, c), expected, 1e-12);
    }
  }
}

TEST(Kernels, ScalarOps) {
  const Matrix a = RandomMatrix(4, 4, 0.5, 13, false);
  const Matrix scaled = ScalarMultiply(a, -2.0);
  const Matrix shifted = ScalarAdd(a, 1.5);
  const Matrix negated = Negate(a);
  for (int64_t r = 0; r < 4; ++r) {
    for (int64_t c = 0; c < 4; ++c) {
      EXPECT_NEAR(scaled.At(r, c), -2.0 * a.At(r, c), 1e-12);
      EXPECT_NEAR(shifted.At(r, c), a.At(r, c) + 1.5, 1e-12);
      EXPECT_NEAR(negated.At(r, c), -a.At(r, c), 1e-12);
    }
  }
}

TEST(Kernels, Reductions) {
  DenseMatrix d(2, 2, {3.0, 0.0, -4.0, 0.0});
  const Matrix m = Matrix::WrapDense(std::move(d));
  EXPECT_DOUBLE_EQ(SumAll(m), -1.0);
  EXPECT_DOUBLE_EQ(FrobeniusNorm(m), 5.0);
}

TEST(Kernels, MultiplyNnzExactMatchesActual) {
  const Matrix a = RandomMatrix(20, 30, 0.1, 14, false);
  const Matrix b = RandomMatrix(30, 25, 0.1, 15, false);
  auto nnz = MultiplyNnzExact(a, b);
  ASSERT_TRUE(nnz.ok());
  auto c = Multiply(a, b);
  ASSERT_TRUE(c.ok());
  // Pattern-product nnz >= value nnz (cancellation only removes entries).
  EXPECT_GE(nnz.value(), c->nnz());
  // With random values cancellation is (a.s.) absent.
  EXPECT_EQ(nnz.value(), c->nnz());
}

TEST(Kernels, ThreadOverrideRoundTrips) {
  const int original = KernelThreads();
  SetKernelThreads(2);
  EXPECT_EQ(KernelThreads(), 2);
  SetKernelThreads(0);
  EXPECT_EQ(KernelThreads(), original);
}

TEST(Kernels, LargeParallelMultiplyMatchesSerial) {
  const Matrix a = RandomMatrix(600, 40, 0.5, 16, true);
  const Matrix b = RandomMatrix(40, 30, 0.5, 17, true);
  SetKernelThreads(1);
  auto serial = Multiply(a, b);
  SetKernelThreads(8);
  auto parallel = Multiply(a, b);
  SetKernelThreads(0);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_TRUE(serial->ApproxEquals(*parallel, 1e-12));
}

/// Associativity: (AB)C == A(BC) across random shapes.
class AssociativityTest : public ::testing::TestWithParam<int> {};

TEST_P(AssociativityTest, HoldsNumerically) {
  const int seed = GetParam();
  Rng rng(static_cast<uint64_t>(seed));
  const int64_t m = 2 + rng.NextBounded(10);
  const int64_t k1 = 2 + rng.NextBounded(10);
  const int64_t k2 = 2 + rng.NextBounded(10);
  const int64_t n = 2 + rng.NextBounded(10);
  const Matrix a = RandomMatrix(m, k1, 0.5, seed * 3 + 1, seed % 2 == 0);
  const Matrix b = RandomMatrix(k1, k2, 0.5, seed * 3 + 2, seed % 3 == 0);
  const Matrix c = RandomMatrix(k2, n, 0.5, seed * 3 + 3, true);
  const Matrix left = Multiply(Multiply(a, b).value(), c).value();
  const Matrix right = Multiply(a, Multiply(b, c).value()).value();
  EXPECT_TRUE(left.ApproxEquals(right, 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Sweep, AssociativityTest, ::testing::Range(0, 12));

/// (AB)^T == B^T A^T.
class TransposeProductTest : public ::testing::TestWithParam<int> {};

TEST_P(TransposeProductTest, Holds) {
  const int seed = GetParam();
  const Matrix a = RandomMatrix(6 + seed, 9, 0.4, seed + 100, seed % 2 == 0);
  const Matrix b = RandomMatrix(9, 4 + seed, 0.4, seed + 200, seed % 2 == 1);
  const Matrix lhs = Transpose(Multiply(a, b).value());
  const Matrix rhs = Multiply(Transpose(b), Transpose(a)).value();
  EXPECT_TRUE(lhs.ApproxEquals(rhs, 1e-10));
}

INSTANTIATE_TEST_SUITE_P(Sweep, TransposeProductTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace remac
