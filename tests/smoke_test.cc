// End-to-end smoke test: DFP on a tiny dataset, every optimizer path,
// numerics must match the unoptimized run.

#include <gtest/gtest.h>

#include "algorithms/scripts.h"
#include "data/generators.h"
#include "runtime/program_runner.h"

namespace remac {
namespace {

DataCatalog SmallCatalog() {
  DataCatalog catalog;
  DatasetSpec spec;
  spec.name = "tiny";
  spec.rows = 200;
  spec.cols = 12;
  spec.sparsity = 0.5;
  spec.seed = 7;
  EXPECT_TRUE(RegisterDataset(&catalog, spec, true).ok());
  return catalog;
}

TEST(Smoke, DfpAllOptimizersAgree) {
  const DataCatalog catalog = SmallCatalog();
  const std::string script = DfpScript("tiny", 3);

  RunConfig base_config;
  base_config.optimizer = OptimizerKind::kAsWritten;
  base_config.max_iterations = 3;
  auto base = RunScript(script, catalog, base_config);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  const Matrix expected = base->env.at("x").AsMatrix();

  for (OptimizerKind kind :
       {OptimizerKind::kSystemDs, OptimizerKind::kSystemDsNoCse,
        OptimizerKind::kSpores, OptimizerKind::kRemacNone,
        OptimizerKind::kRemacAutomatic, OptimizerKind::kRemacConservative,
        OptimizerKind::kRemacAggressive, OptimizerKind::kRemacAdaptive}) {
    RunConfig config;
    config.optimizer = kind;
    config.max_iterations = 3;
    auto run = RunScript(script, catalog, config);
    ASSERT_TRUE(run.ok()) << OptimizerKindName(kind) << ": "
                          << run.status().ToString();
    const Matrix got = run->env.at("x").AsMatrix();
    EXPECT_TRUE(got.ApproxEquals(expected, 1e-6))
        << "optimizer " << OptimizerKindName(kind)
        << " changed the result";
  }
}

TEST(Smoke, AdaptiveFindsOptions) {
  const DataCatalog catalog = SmallCatalog();
  RunConfig config;
  config.optimizer = OptimizerKind::kRemacAdaptive;
  config.max_iterations = 3;
  auto run = RunScript(DfpScript("tiny", 3), catalog, config);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_GT(run->optimize.options_found, 10);
}

}  // namespace
}  // namespace remac
