#include <gtest/gtest.h>

#include "common/rng.h"
#include "cost/physical_model.h"
#include "distributed/blocked_matrix.h"
#include "distributed/distributed_ops.h"
#include "matrix/kernels.h"

namespace remac {
namespace {

Matrix RandomSparse(int64_t rows, int64_t cols, double sp, uint64_t seed) {
  Rng rng(seed);
  DenseMatrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) {
    if (rng.NextDouble() < sp) m.data()[i] = rng.NextGaussian();
  }
  return Matrix::FromDense(std::move(m));
}

ClusterModel SmallModel() {
  ClusterModel model;
  model.block_size = 16;
  model.driver_memory_bytes = 1 << 20;  // 1 MB: small things stay local
  return model;
}

TEST(PhysicalModel, MultiplyFlopsFormula) {
  // Paper: FLOP = 3 * R_U * C_U * C_V * S_U * S_V.
  EXPECT_DOUBLE_EQ(MultiplyFlops(10, 20, 30, 0.5, 0.1), 3 * 10 * 20 * 30 * 0.05);
}

TEST(PhysicalModel, MatrixBytesFormatRule) {
  // Dense above 0.4, CSR (alpha * sp + beta) below.
  const double dense = MatrixBytes(100, 100, 0.8);
  EXPECT_DOUBLE_EQ(dense, 100 * 100 * 8.0);
  const double sparse = MatrixBytes(100, 100, 0.01);
  EXPECT_LT(sparse, dense);
  // Linear in sparsity within the CSR regime.
  const double sparse2 = MatrixBytes(100, 100, 0.02);
  const double beta = MatrixBytes(100, 100, 0.0);
  EXPECT_NEAR(sparse2 - beta, 2.0 * (sparse - beta), 1e-9);
}

TEST(PhysicalModel, NumBlocks) {
  EXPECT_EQ(NumBlocks(1000, 1024), 1);
  EXPECT_EQ(NumBlocks(1025, 1024), 2);
  EXPECT_EQ(NumBlocks(0, 1024), 0);
}

TEST(BlockedMatrix, GridShapeAndNnz) {
  const Matrix m = RandomSparse(40, 33, 0.2, 1);
  const BlockedMatrix blocked = BlockedMatrix::Partition(m, SmallModel());
  EXPECT_EQ(blocked.grid_rows(), 3);  // ceil(40/16)
  EXPECT_EQ(blocked.grid_cols(), 3);  // ceil(33/16)
  int64_t total = 0;
  for (int64_t br = 0; br < 3; ++br) {
    for (int64_t bc = 0; bc < 3; ++bc) {
      total += blocked.BlockNnz(br, bc);
    }
  }
  EXPECT_EQ(total, m.nnz());
}

TEST(BlockedMatrix, PerWorkerBytesSumToTotal) {
  const Matrix m = RandomSparse(64, 64, 0.3, 2);
  const BlockedMatrix blocked = BlockedMatrix::Partition(m, SmallModel());
  const HashPartitioner partitioner(6);
  const auto loads = blocked.PerWorkerBytes(partitioner);
  double sum = 0.0;
  for (double l : loads) sum += l;
  EXPECT_NEAR(sum, blocked.TotalBytes(), 1e-6);
}

TEST(DistributedOps, LocalWhenBothLocal) {
  const ClusterModel model = SmallModel();
  MatInfo a{10, 10, 1.0, false};
  MatInfo b{10, 10, 1.0, false};
  const OpCosting c = CostMultiply(a, b, 1.0, model);
  EXPECT_EQ(c.method, MultiplyMethod::kLocalOp);
  EXPECT_EQ(c.broadcast_bytes, 0.0);
  EXPECT_FALSE(c.result_distributed);
}

TEST(DistributedOps, BmmBroadcastsSmallSide) {
  ClusterModel model = SmallModel();
  MatInfo big{100000, 64, 1.0, true};
  MatInfo small{64, 1, 1.0, false};
  const OpCosting c = CostMultiply(big, small, 1.0, model);
  EXPECT_EQ(c.method, MultiplyMethod::kBmm);
  EXPECT_NEAR(c.broadcast_bytes, small.Bytes(), 1.0);
}

TEST(DistributedOps, CpmmWhenBothDistributed) {
  const ClusterModel model = SmallModel();
  MatInfo a{100000, 64, 1.0, true};
  MatInfo b{64, 100000, 1.0, true};
  const OpCosting c = CostMultiply(a, b, 1.0, model);
  EXPECT_EQ(c.method, MultiplyMethod::kCpmm);
  EXPECT_GE(c.shuffle_bytes, a.Bytes() + b.Bytes());
}

TEST(DistributedOps, BmmShuffleGrowsWithInnerSplits) {
  ClusterModel model = SmallModel();
  // Distributed side split along the inner dimension -> aggregation
  // shuffle; unsplit inner dimension -> none (paper Equation 6).
  MatInfo tall{1000, 8, 1.0, true};      // inner fits one block
  MatInfo wide{1000, 64, 1.0, true};     // inner split into 4 blocks
  MatInfo vec8{8, 1, 1.0, false};
  MatInfo vec64{64, 1, 1.0, false};
  const OpCosting unsplit = CostMultiply(tall, vec8, 1.0, model);
  const OpCosting split = CostMultiply(wide, vec64, 1.0, model);
  EXPECT_EQ(unsplit.shuffle_bytes, 0.0);
  EXPECT_GT(split.shuffle_bytes, 0.0);
}

TEST(DistributedOps, SmallResultsCollectToDriver) {
  const ClusterModel model = SmallModel();
  MatInfo a{10000, 64, 1.0, true};  // 80KB result < driver share
  MatInfo b{64, 1, 1.0, false};
  const OpCosting c = CostMultiply(a, b, 1.0, model);
  EXPECT_FALSE(c.result_distributed);
  EXPECT_GT(c.collection_bytes, 0.0);
}

TEST(DistributedOps, ExecMultiplyMatchesKernels) {
  const ClusterModel model = SmallModel();
  const Matrix a = RandomSparse(20, 12, 0.5, 3);
  const Matrix b = RandomSparse(12, 8, 0.5, 4);
  TransmissionLedger ledger(model);
  auto out = ExecMultiply(a, false, false, b, false, false, model, &ledger);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->value.ApproxEquals(Multiply(a, b).value()));
}

TEST(DistributedOps, ExecMultiplyTransposeFusion) {
  const ClusterModel model = SmallModel();
  const Matrix a = RandomSparse(9, 14, 0.5, 5);
  const Matrix b = RandomSparse(9, 7, 0.5, 6);
  auto fused = ExecMultiply(a, false, /*a_transposed=*/true, b, false, false,
                            model, nullptr);
  ASSERT_TRUE(fused.ok());
  const Matrix reference = Multiply(Transpose(a), b).value();
  EXPECT_TRUE(fused->value.ApproxEquals(reference));
}

TEST(DistributedOps, ExecElementwiseBooks) {
  const ClusterModel model = SmallModel();
  const Matrix a = RandomSparse(6, 6, 0.8, 7);
  const Matrix b = RandomSparse(6, 6, 0.8, 8);
  TransmissionLedger ledger(model);
  auto out = ExecElementwise(BinaryOpKind::kSub, a, true, b, false, model,
                             &ledger);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->value.ApproxEquals(Subtract(a, b).value()));
  // The local operand was broadcast.
  EXPECT_GT(ledger.BytesFor(TransmissionPrimitive::kBroadcast), 0.0);
}

TEST(DistributedOps, TransposeDistributedShuffles) {
  const ClusterModel model = SmallModel();
  MatInfo a{100000, 64, 1.0, true};
  const OpCosting c = CostTranspose(a, model);
  EXPECT_NEAR(c.shuffle_bytes, a.Bytes(), 1.0);
  EXPECT_TRUE(c.result_distributed);
  const OpCosting local = CostTranspose(MatInfo{10, 10, 1.0, false}, model);
  EXPECT_EQ(local.shuffle_bytes, 0.0);
}

TEST(DistributedOps, SecondsMatchModelWeights) {
  ClusterModel model;
  model.shuffle_bytes_per_sec = 1e6;
  model.flops_per_sec = 1e9;
  OpCosting c;
  c.method = MultiplyMethod::kCpmm;
  c.flops = 1e9;
  c.shuffle_bytes = 2e6;
  EXPECT_NEAR(c.Seconds(model), 1.0 + 2.0, 1e-9);
}

}  // namespace
}  // namespace remac
