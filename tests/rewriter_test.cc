#include <gtest/gtest.h>

#include <functional>

#include "common/rng.h"
#include "lang/parser.h"
#include "plan/plan_builder.h"
#include "plan/rewriter.h"
#include "runtime/executor.h"

namespace remac {
namespace {

/// Builds a catalog with square-ish matrices so arbitrary expressions
/// over {A, B, C, v} type-check.
DataCatalog RewriterCatalog() {
  DataCatalog catalog;
  Rng rng(99);
  auto add = [&](const std::string& name, int64_t rows, int64_t cols) {
    DenseMatrix m(rows, cols);
    for (int64_t i = 0; i < m.size(); ++i) m.data()[i] = rng.NextGaussian();
    catalog.Register(name, Matrix::WrapDense(std::move(m)));
  };
  add("A", 6, 6);
  add("B", 6, 6);
  add("C", 6, 6);
  add("v", 6, 1);
  return catalog;
}

PlanNodePtr BuildExprPlan(const std::string& source,
                          const DataCatalog& catalog) {
  std::string script;
  script += "A = read(\"A\");\nB = read(\"B\");\nC = read(\"C\");\n";
  script += "v = read(\"v\");\n";
  script += "out = " + source + ";\n";
  auto program = CompileScript(script, catalog);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return program->statements.back().plan;
}

Matrix EvalPlan(const PlanNodePtr& plan, const DataCatalog& catalog) {
  Executor executor(ClusterModel::SingleNode(), &catalog, nullptr);
  // Bind the named inputs the expressions reference.
  for (const char* name : {"A", "B", "C", "v"}) {
    auto value = catalog.Value(name);
    EXPECT_TRUE(value.ok());
    executor.Set(name, RtValue::FromMatrix(std::move(value).value(), false));
  }
  auto value = executor.Eval(*plan);
  EXPECT_TRUE(value.ok()) << value.status().ToString();
  if (!value.ok()) return Matrix::Zeros(1, 1);
  return value->AsMatrix();
}

bool HasTransposeAboveNonLeaf(const PlanNode& node) {
  if (node.op == PlanOp::kTranspose) {
    const PlanNode& child = *node.children[0];
    if (!(child.op == PlanOp::kInput || child.op == PlanOp::kReadData ||
          IsGeneratorOp(child.op))) {
      return true;
    }
  }
  for (const auto& child : node.children) {
    if (HasTransposeAboveNonLeaf(*child)) return true;
  }
  return false;
}

class PushDownTest : public ::testing::TestWithParam<const char*> {};

TEST_P(PushDownTest, PreservesValueAndReachesLeaves) {
  const DataCatalog catalog = RewriterCatalog();
  const PlanNodePtr original = BuildExprPlan(GetParam(), catalog);
  const PlanNodePtr rewritten = PushDownTransposes(original);
  EXPECT_FALSE(HasTransposeAboveNonLeaf(*rewritten))
      << rewritten->ToString();
  EXPECT_TRUE(EvalPlan(original, catalog)
                  .ApproxEquals(EvalPlan(rewritten, catalog), 1e-9))
      << "push-down changed the value of " << original->ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Expressions, PushDownTest,
    ::testing::Values("t(A %*% B)",                   // t(XY) = t(Y)t(X)
                      "t(t(A))",                      // involution
                      "t(A + B)",                     // distributes over +
                      "t(A - B %*% C)",               //
                      "t(t(v) %*% A)",                // vector forms
                      "t(A %*% B %*% C)",             // chains
                      "t((A + B) %*% C)",             //
                      "t(2 * A)",                     // scalar coefficient
                      "t(A) %*% t(B)",                // already pushed
                      "t(A %*% t(B %*% C))"));        // nested

class ExpandTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ExpandTest, PreservesValue) {
  const DataCatalog catalog = RewriterCatalog();
  const PlanNodePtr original = BuildExprPlan(GetParam(), catalog);
  const PlanNodePtr expanded = ExpandDistributive(original);
  EXPECT_TRUE(EvalPlan(original, catalog)
                  .ApproxEquals(EvalPlan(expanded, catalog), 1e-9))
      << "expansion changed the value of " << original->ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Expressions, ExpandTest,
    ::testing::Values("(A + B) %*% C",
                      "A %*% (B + C)",
                      "(A + B) %*% (B + C)",
                      "(2 * A) %*% B",
                      "A %*% (3 * B)",
                      "2 * (A + B)",
                      "(A - B) %*% C %*% v",
                      "(A + B) %*% C + A %*% v %*% t(v)"));

TEST(Expand, DistributesProductOverSum) {
  const DataCatalog catalog = RewriterCatalog();
  const PlanNodePtr plan = BuildExprPlan("(A + B) %*% C", catalog);
  const PlanNodePtr expanded = ExpandDistributive(plan);
  // Top must now be the sum.
  EXPECT_EQ(expanded->op, PlanOp::kAdd);
}

TEST(Expand, PullsScalarOutOfChain) {
  const DataCatalog catalog = RewriterCatalog();
  const PlanNodePtr plan = BuildExprPlan("(2 * A) %*% B", catalog);
  const PlanNodePtr expanded = ExpandDistributive(plan);
  EXPECT_EQ(expanded->op, PlanOp::kMul);
  EXPECT_EQ(expanded->children[0]->op, PlanOp::kConst);
  EXPECT_EQ(expanded->children[1]->op, PlanOp::kMatMul);
}

TEST(Expand, RespectsTermBudget) {
  const DataCatalog catalog = RewriterCatalog();
  // (A+B)^6-ish expansion would blow past a tiny budget; the tree must
  // come back valid (and equal in value) even when expansion stops.
  const PlanNodePtr plan = BuildExprPlan(
      "(A + B) %*% (A + B) %*% (A + B) %*% (A + B)", catalog);
  const PlanNodePtr expanded = ExpandDistributive(plan, /*max_terms=*/4);
  EXPECT_TRUE(EvalPlan(plan, catalog)
                  .ApproxEquals(EvalPlan(expanded, catalog), 1e-8));
}

TEST(Fold, ConstantArithmetic) {
  const DataCatalog catalog = RewriterCatalog();
  const PlanNodePtr plan = BuildExprPlan("(2 * 3) * A", catalog);
  const PlanNodePtr folded = FoldConstants(plan);
  EXPECT_EQ(folded->op, PlanOp::kMul);
  EXPECT_EQ(folded->children[0]->op, PlanOp::kConst);
  EXPECT_DOUBLE_EQ(folded->children[0]->value, 6.0);
}

TEST(Fold, DropsUnitCoefficient) {
  const DataCatalog catalog = RewriterCatalog();
  const PlanNodePtr plan = BuildExprPlan("-(-A)", catalog);
  const PlanNodePtr folded = FoldConstants(plan);
  // (-1) * ((-1) * A) folds to A.
  EXPECT_EQ(folded->op, PlanOp::kInput);
  EXPECT_EQ(folded->name, "A");
}

TEST(Normalize, FullPipelinePreservesValue) {
  const DataCatalog catalog = RewriterCatalog();
  const PlanNodePtr plan = BuildExprPlan(
      "t((A + B) %*% C) %*% v - 2 * (t(C) %*% v)", catalog);
  const PlanNodePtr normalized = NormalizeForSearch(plan);
  EXPECT_TRUE(EvalPlan(plan, catalog)
                  .ApproxEquals(EvalPlan(normalized, catalog), 1e-9));
  EXPECT_FALSE(HasTransposeAboveNonLeaf(*normalized));
}

}  // namespace
}  // namespace remac
