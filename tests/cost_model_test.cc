#include <gtest/gtest.h>

#include "algorithms/scripts.h"
#include "cost/cost_model.h"
#include "data/generators.h"
#include "lang/parser.h"
#include "plan/plan_builder.h"
#include "sparsity/estimator.h"

namespace remac {
namespace {

struct Fixture {
  DataCatalog catalog;
  MetadataEstimator estimator;
  ClusterModel cluster;
  std::unique_ptr<CostModel> model;

  Fixture() {
    DatasetSpec spec;
    spec.name = "ds";
    spec.rows = 50000;
    spec.cols = 64;
    spec.sparsity = 0.01;
    spec.seed = 3;
    EXPECT_TRUE(RegisterDataset(&catalog, spec).ok());
    model = std::make_unique<CostModel>(cluster, &estimator, &catalog);
  }
};

TEST(CostModel, DatasetStatsAreDistributed) {
  Fixture f;
  auto stats = f.model->DatasetStats("ds");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->stats.rows, 50000);
  EXPECT_TRUE(stats->distributed);  // read() inputs live on the cluster
}

TEST(CostModel, UnknownDataset) {
  Fixture f;
  EXPECT_EQ(f.model->DatasetStats("nope").status().code(),
            StatusCode::kNotFound);
}

TEST(CostModel, MatVecCheaperThanMatMat) {
  Fixture f;
  auto a = f.model->DatasetStats("ds").value();
  CostedStats vec;
  vec.stats.rows = 64;
  vec.stats.cols = 1;
  vec.stats.sparsity = 1.0;
  CostedStats mat;
  mat.stats.rows = 64;
  mat.stats.cols = 20000;
  mat.stats.sparsity = 1.0;
  mat.distributed = true;
  const double matvec = f.model->MultiplyCost(a, vec).seconds;
  const double matmat = f.model->MultiplyCost(a, mat).seconds;
  EXPECT_LT(matvec, matmat / 10.0);
}

TEST(CostModel, CostTreeAccumulatesOperators) {
  Fixture f;
  auto program = CompileScript(
      "A = read(\"ds\");\nv = t(A) %*% (A %*% zeros(64, 1));\n", f.catalog);
  ASSERT_TRUE(program.ok());
  auto propagated = PropagateProgramStats(*program, f.catalog, *f.model);
  ASSERT_TRUE(propagated.ok());
  const VarStats vars = std::move(propagated).value();
  auto whole = f.model->CostTree(*program->statements[1].plan, vars);
  ASSERT_TRUE(whole.ok()) << whole.status().ToString();
  EXPECT_GT(whole->seconds, 0.0);
  EXPECT_EQ(whole->stats.rows, 64);
  EXPECT_EQ(whole->stats.cols, 1);
}

TEST(CostModel, CostTreeMissingVariable) {
  Fixture f;
  VarStats vars;
  auto expr = ParseExpression("x");
  ASSERT_TRUE(expr.ok());
  PlanNodePtr plan = MakeInput("x", Shape{4, 4, false});
  EXPECT_EQ(f.model->CostTree(*plan, vars).status().code(),
            StatusCode::kNotFound);
}

TEST(CostModel, ScalarBroadcastCostsOnePass) {
  Fixture f;
  CostedStats scalar;
  scalar.stats.rows = 1;
  scalar.stats.cols = 1;
  CostedStats mat;
  mat.stats.rows = 1000;
  mat.stats.cols = 1000;
  mat.stats.sparsity = 1.0;
  const CostedStats out = f.model->ElementwiseCost(PlanOp::kMul, scalar, mat);
  EXPECT_EQ(out.stats.rows, 1000);
  EXPECT_GT(out.seconds, 0.0);
}

TEST(CostModel, PropagateProgramStats) {
  Fixture f;
  auto program = CompileScript(GdScript("ds", 5), f.catalog);
  ASSERT_TRUE(program.ok());
  auto vars = PropagateProgramStats(*program, f.catalog, *f.model);
  ASSERT_TRUE(vars.ok()) << vars.status().ToString();
  ASSERT_TRUE(vars->Contains("x"));
  ASSERT_TRUE(vars->Contains("g"));
  // After the sweeps, x reaches its dense steady state (x starts at
  // zeros but accumulates the dense gradient).
  EXPECT_EQ(vars->vars.at("x").stats.rows, 64);
  EXPECT_GT(vars->vars.at("x").stats.sparsity, 0.5);
}

TEST(CostModel, PropagateHandlesDfpLoopVariables) {
  Fixture f;
  auto program = CompileScript(DfpScript("ds", 5), f.catalog);
  ASSERT_TRUE(program.ok());
  auto vars = PropagateProgramStats(*program, f.catalog, *f.model);
  ASSERT_TRUE(vars.ok());
  // H starts as eye (sparsity 1/n) and densifies through the update.
  EXPECT_GT(vars->vars.at("H").stats.sparsity, 0.5);
  EXPECT_EQ(vars->vars.at("H").stats.rows, 64);
  EXPECT_EQ(vars->vars.at("d").stats.cols, 1);
}

TEST(CostModel, EstimatorChoiceChangesEstimates) {
  Fixture f;
  MncEstimator mnc;
  CostModel mnc_model(f.cluster, &mnc, &f.catalog);
  auto program = CompileScript(
      "A = read(\"ds\");\nB = t(A) %*% A;\n", f.catalog);
  ASSERT_TRUE(program.ok());
  auto propagated = PropagateProgramStats(*program, f.catalog, *f.model);
  ASSERT_TRUE(propagated.ok());
  const VarStats vars = std::move(propagated).value();
  auto md_cost = f.model->CostTree(*program->statements[1].plan, vars);
  auto mnc_cost = mnc_model.CostTree(*program->statements[1].plan, vars);
  ASSERT_TRUE(md_cost.ok());
  ASSERT_TRUE(mnc_cost.ok());
  // Both produce sane estimates; they generally differ on skewed data.
  EXPECT_GT(md_cost->seconds, 0.0);
  EXPECT_GT(mnc_cost->seconds, 0.0);
}

}  // namespace
}  // namespace remac
