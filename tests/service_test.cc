// Plan-service tests: fingerprint canonicalization, cache semantics
// (LRU + cost-aware eviction, explicit invalidation), warm-hit bitwise
// identity across the four evaluation algorithms, and the concurrent
// single-flight guarantee. The Service*/PlanCache*/Fingerprint* suites
// run under both TSan and ASan via scripts/check.sh.

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "algorithms/scripts.h"
#include "data/generators.h"
#include "obs/metrics.h"
#include "sched/thread_pool.h"
#include "service/plan_cache.h"
#include "service/plan_service.h"
#include "service/program_fingerprint.h"

namespace remac {
namespace {

// ---------------------------------------------------------------------
// Fingerprint

TEST(Fingerprint, AlphaRenamedScriptsShareAFingerprint) {
  auto a = FingerprintScript(R"(
    a = read("ds");
    x = t(a) %*% a;
  )");
  auto b = FingerprintScript(R"(
    # same program, different naming and spacing
    input = read("ds");
    gram = t(input) %*% input;
  )");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->canonical, b->canonical);
  EXPECT_EQ(a->hash, b->hash);
}

TEST(Fingerprint, StructurallyDifferentScriptsDiffer) {
  auto a = FingerprintScript("a = read(\"ds\"); x = t(a) %*% a;");
  auto b = FingerprintScript("a = read(\"ds\"); x = a %*% t(a);");
  auto c = FingerprintScript("a = read(\"other\"); x = t(a) %*% a;");
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_NE(a->hash, b->hash);  // operand order matters
  EXPECT_NE(a->hash, c->hash);  // dataset names are part of the identity
}

TEST(Fingerprint, LoopsAndLiteralsAreCanonicalized) {
  auto a = FingerprintScript(
      "i = 0; while (i < 5) { i = i + 1; }");
  auto b = FingerprintScript(
      "counter = 0; while (counter < 5) { counter = counter + 1; }");
  auto c = FingerprintScript(
      "i = 0; while (i < 6) { i = i + 1; }");
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(a->hash, b->hash);
  EXPECT_NE(a->hash, c->hash);  // numeric literals are kept
}

TEST(Fingerprint, DatasetsRecordedInFirstUseOrder) {
  auto fp = FingerprintScript(
      "a = read(\"ds\"); b = read(\"ds_b\"); c = read(\"ds\");");
  ASSERT_TRUE(fp.ok());
  EXPECT_EQ(fp->datasets, (std::vector<std::string>{"ds", "ds_b"}));
}

TEST(Fingerprint, SparsityBucketsFollowTheCostModelRegimes) {
  // Everything at or above the dense-format threshold is one regime.
  EXPECT_EQ(SparsityBucket(0.4), 0);
  EXPECT_EQ(SparsityBucket(0.7), 0);
  EXPECT_EQ(SparsityBucket(1.0), 0);
  // Just below the threshold is a different bucket.
  EXPECT_NE(SparsityBucket(0.39), SparsityBucket(0.4));
  // Close sparsities share a half-decade bucket...
  EXPECT_EQ(SparsityBucket(0.35), SparsityBucket(0.32));
  EXPECT_EQ(SparsityBucket(0.012), SparsityBucket(0.015));
  // ...while different scales do not.
  EXPECT_NE(SparsityBucket(0.3), SparsityBucket(0.01));
  // Empty and near-empty collapse into one sentinel bucket.
  EXPECT_EQ(SparsityBucket(0.0), SparsityBucket(1e-14));
}

TEST(Fingerprint, MetadataKeyTracksDimsAndBucket) {
  DataCatalog catalog;
  MatrixStats stats;
  stats.rows = 100;
  stats.cols = 100;
  stats.sparsity = 0.2;
  catalog.RegisterStats("m", stats);
  auto key1 = InputMetadataKey({"m"}, catalog);
  ASSERT_TRUE(key1.ok());

  stats.rows = 200;  // dims changed
  catalog.RegisterStats("m", stats);
  auto key2 = InputMetadataKey({"m"}, catalog);
  ASSERT_TRUE(key2.ok());
  EXPECT_NE(key1.value(), key2.value());

  stats.rows = 100;
  stats.sparsity = 0.21;  // same bucket as 0.2
  catalog.RegisterStats("m", stats);
  auto key3 = InputMetadataKey({"m"}, catalog);
  ASSERT_TRUE(key3.ok());
  EXPECT_EQ(key1.value(), key3.value());

  EXPECT_FALSE(InputMetadataKey({"missing"}, catalog).ok());
}

// ---------------------------------------------------------------------
// PlanCache

std::shared_ptr<const CachedPlan> MakePlan(double cost,
                                           uint64_t program_hash = 1) {
  CachedPlan plan;
  plan.program = std::make_shared<const CompiledProgram>();
  plan.build_wall_seconds = cost;
  plan.program_hash = program_hash;
  return std::make_shared<const CachedPlan>(std::move(plan));
}

TEST(PlanCache, LruEvictsBeyondCapacity) {
  PlanCache cache(2, /*shards=*/1);
  cache.Put("a", MakePlan(1.0));
  cache.Put("b", MakePlan(1.0));
  cache.Put("c", MakePlan(1.0));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_EQ(cache.Get("a"), nullptr);  // oldest equal-cost entry dropped
  EXPECT_NE(cache.Get("b"), nullptr);
  EXPECT_NE(cache.Get("c"), nullptr);
}

TEST(PlanCache, GetPromotesToMostRecent) {
  PlanCache cache(2, /*shards=*/1);
  cache.Put("a", MakePlan(1.0));
  cache.Put("b", MakePlan(1.0));
  EXPECT_NE(cache.Get("a"), nullptr);  // a is now MRU
  cache.Put("c", MakePlan(1.0));
  EXPECT_NE(cache.Get("a"), nullptr);
  EXPECT_EQ(cache.Get("b"), nullptr);
}

TEST(PlanCache, CostAwareEvictionKeepsExpensiveEntries) {
  PlanCache cache(2, /*shards=*/1);
  cache.Put("expensive", MakePlan(5.0));
  cache.Put("cheap", MakePlan(0.001));
  cache.Put("incoming", MakePlan(1.0));
  // Straight LRU would drop "expensive" (the oldest); the cost-aware
  // sampler drops "cheap" instead.
  EXPECT_NE(cache.Get("expensive"), nullptr);
  EXPECT_EQ(cache.Get("cheap"), nullptr);
  EXPECT_NE(cache.Get("incoming"), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1);
}

TEST(PlanCache, CapacityOneAlwaysKeepsTheNewestEntry) {
  // At capacity 1 the tail sample is exactly the displaced entry: the
  // just-inserted plan must never be the victim, no matter how cheap.
  PlanCache cache(1, /*shards=*/8);  // shard count clamps to capacity
  EXPECT_EQ(cache.capacity(), 1u);
  cache.Put("a", MakePlan(100.0));
  cache.Put("b", MakePlan(0.001));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Get("a"), nullptr);
  EXPECT_NE(cache.Get("b"), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1);
}

TEST(PlanCache, CapacityTwoProtectsTheJustInsertedEntry) {
  PlanCache cache(2, /*shards=*/1);
  cache.Put("a", MakePlan(1.0));
  cache.Put("b", MakePlan(50.0));
  cache.Put("c", MakePlan(0.001));  // cheapest of all, but MRU
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.Get("c"), nullptr);  // never sampled for eviction
  EXPECT_NE(cache.Get("b"), nullptr);  // sticky: expensive to rebuild
  EXPECT_EQ(cache.Get("a"), nullptr);
}

TEST(PlanCache, CapacityThreeEvictsCheapestOfTheTailSample) {
  PlanCache cache(3, /*shards=*/1);
  cache.Put("old-expensive", MakePlan(10.0));
  cache.Put("mid-cheap", MakePlan(0.01));
  cache.Put("newer", MakePlan(1.0));
  cache.Put("newest", MakePlan(1.0));
  // The tail sample holds {old-expensive, mid-cheap, newer}; the
  // cheapest of them goes even though it is not the oldest.
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.Get("mid-cheap"), nullptr);
  EXPECT_NE(cache.Get("old-expensive"), nullptr);
  EXPECT_NE(cache.Get("newer"), nullptr);
  EXPECT_NE(cache.Get("newest"), nullptr);
}

TEST(PlanCache, EvictionCounterInvariantUnderBurstInserts) {
  // Distinct-key inserts conserve entries: everything ever Put is either
  // still resident or counted as an eviction.
  PlanCache cache(3, /*shards=*/1);
  constexpr int kInserts = 50;
  for (int i = 0; i < kInserts; ++i) {
    cache.Put("k" + std::to_string(i), MakePlan(0.1 + (i % 7)));
  }
  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 3);
  EXPECT_EQ(stats.evictions + stats.entries, kInserts);
}

TEST(PlanCache, PutReplaceNeitherEvictsNorGrows) {
  PlanCache cache(2, /*shards=*/1);
  cache.Put("a", MakePlan(1.0));
  cache.Put("b", MakePlan(1.0));
  cache.Put("a", MakePlan(9.0));  // replace in place, promote to MRU
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 0);
  auto a = cache.Get("a");
  ASSERT_NE(a, nullptr);
  EXPECT_DOUBLE_EQ(a->build_wall_seconds, 9.0);
  // The replace made "a" most-recent, so the next insert displaces "b".
  cache.Put("c", MakePlan(1.0));
  EXPECT_EQ(cache.Get("b"), nullptr);
  EXPECT_NE(cache.Get("a"), nullptr);
}

TEST(PlanCache, EraseProgramDropsEveryBucketOfThatProgram) {
  PlanCache cache(8, /*shards=*/2);
  cache.Put("p1-bucketA", MakePlan(1.0, /*program_hash=*/11));
  cache.Put("p1-bucketB", MakePlan(1.0, /*program_hash=*/11));
  cache.Put("p2-bucketA", MakePlan(1.0, /*program_hash=*/22));
  EXPECT_EQ(cache.ErasePlansForProgram(11), 2);
  EXPECT_EQ(cache.Get("p1-bucketA"), nullptr);
  EXPECT_EQ(cache.Get("p1-bucketB"), nullptr);
  EXPECT_NE(cache.Get("p2-bucketA"), nullptr);
  EXPECT_EQ(cache.stats().invalidations, 2);
}

// ---------------------------------------------------------------------
// PlanService

const DataCatalog& ServiceCatalog() {
  static DataCatalog* catalog = [] {
    auto* c = new DataCatalog();
    DatasetSpec spec;
    spec.name = "ds";
    spec.rows = 220;
    spec.cols = 10;
    spec.sparsity = 0.35;
    spec.seed = 11;
    EXPECT_TRUE(RegisterDataset(c, spec).ok());
    return c;
  }();
  return *catalog;
}

RunConfig SmallConfig() {
  RunConfig config;
  config.max_iterations = 3;
  return config;
}

void ExpectBitwiseEqual(const RtValue& a, const RtValue& b,
                        const std::string& label) {
  ASSERT_EQ(a.is_scalar, b.is_scalar) << label;
  if (a.is_scalar) {
    EXPECT_EQ(a.scalar, b.scalar) << label;
    return;
  }
  ASSERT_EQ(a.matrix.rows(), b.matrix.rows()) << label;
  ASSERT_EQ(a.matrix.cols(), b.matrix.cols()) << label;
  for (int64_t r = 0; r < a.matrix.rows(); ++r) {
    for (int64_t c = 0; c < a.matrix.cols(); ++c) {
      ASSERT_EQ(a.matrix.At(r, c), b.matrix.At(r, c))
          << label << " differs at (" << r << "," << c << ")";
    }
  }
}

TEST(Service, WarmHitIsBitwiseIdenticalOnAllFourAlgorithms) {
  struct Case {
    const char* name;
    std::string script;
    const char* check_var;
  };
  const std::vector<Case> cases = {
      {"GD", GdScript("ds", 3), "x"},
      {"DFP", DfpScript("ds", 3), "x"},
      {"BFGS", BfgsScript("ds", 3), "x"},
      {"GNMF", GnmfScript("ds", 3, 3), "W"},
  };
  PlanService service(&ServiceCatalog());
  for (const Case& c : cases) {
    ServiceRequest request{c.script, SmallConfig()};
    auto cold = service.Run(request);
    ASSERT_TRUE(cold.ok()) << c.name << ": " << cold.status().ToString();
    EXPECT_FALSE(cold->cache_hit) << c.name;

    auto warm = service.Run(request);
    ASSERT_TRUE(warm.ok()) << c.name;
    EXPECT_TRUE(warm->cache_hit) << c.name;
    // The warm path never touches the optimizer: exactly zero, not just
    // small.
    EXPECT_EQ(warm->timing.optimize_seconds, 0.0) << c.name;

    ASSERT_TRUE(cold->run.env.count(c.check_var)) << c.name;
    ASSERT_TRUE(warm->run.env.count(c.check_var)) << c.name;
    ExpectBitwiseEqual(cold->run.env.at(c.check_var),
                       warm->run.env.at(c.check_var), c.name);
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.optimizer_invocations, 4);
  EXPECT_EQ(stats.cache.hits, 4);
  EXPECT_EQ(stats.warm_requests, 4);
  EXPECT_EQ(stats.cold_requests, 4);
}

TEST(Service, AlphaRenamedScriptSharesThePlan) {
  PlanService service(&ServiceCatalog());
  ServiceRequest original{GdScript("ds", 3), SmallConfig()};
  ASSERT_TRUE(service.Run(original).ok());
  // Same program with different variable names: new source text, same
  // fingerprint — must hit without re-optimizing.
  ServiceRequest renamed{R"(
M = read("ds");
labels = read("ds_b");
w = zeros(ncol(M), 1);
step = 0.000001;
k = 0;
while (k < 3) {
  grad = t(M) %*% (M %*% w) - t(M) %*% labels;
  w = w - step * grad;
  k = k + 1;
}
)",
                         SmallConfig()};
  auto report = service.Run(renamed);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->cache_hit);
  EXPECT_EQ(service.stats().optimizer_invocations, 1);
}

TEST(Service, EvictionUnderTinyCapacity) {
  ServiceOptions options;
  options.cache_capacity = 1;
  options.cache_shards = 1;
  PlanService service(&ServiceCatalog(), options);
  ServiceRequest gd{GdScript("ds", 3), SmallConfig()};
  ServiceRequest dfp{DfpScript("ds", 3), SmallConfig()};

  auto gd1 = service.Run(gd);
  ASSERT_TRUE(gd1.ok());
  ASSERT_TRUE(service.Run(dfp).ok());  // evicts the GD plan
  auto gd2 = service.Run(gd);          // cold again, evicts the DFP plan
  ASSERT_TRUE(gd2.ok());
  EXPECT_FALSE(gd2->cache_hit);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cache.evictions, 2);
  EXPECT_EQ(stats.cache.hits, 0);
  EXPECT_EQ(stats.optimizer_invocations, 3);
  EXPECT_EQ(stats.cache.entries, 1);
  // Re-optimizing after eviction reproduces the numbers exactly.
  ExpectBitwiseEqual(gd1->run.env.at("x"), gd2->run.env.at("x"), "GD");
}

TEST(Service, InvalidationWhenInputDimsChange) {
  DataCatalog catalog;
  DatasetSpec spec;
  spec.name = "ds";
  spec.rows = 160;
  spec.cols = 8;
  spec.sparsity = 0.35;
  spec.seed = 3;
  ASSERT_TRUE(RegisterDataset(&catalog, spec).ok());

  PlanService service(&catalog);
  ServiceRequest request{GdScript("ds", 3), SmallConfig()};
  ASSERT_TRUE(service.Run(request).ok());
  EXPECT_EQ(service.stats().cache.entries, 1);

  // The dataset grows: same names, different dims. The stale plan must
  // be dropped, not just shadowed under a new key.
  spec.rows = 240;
  ASSERT_TRUE(RegisterDataset(&catalog, spec).ok());
  auto report = service.Run(request);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->cache_hit);
  const ServiceStats stats = service.stats();
  EXPECT_GE(stats.cache.invalidations, 1);
  EXPECT_EQ(stats.cache.entries, 1);
  EXPECT_EQ(stats.optimizer_invocations, 2);
}

TEST(Service, InvalidationWhenSparsityLeavesItsBucket) {
  DataCatalog catalog;
  DatasetSpec spec;
  spec.name = "ds";
  spec.rows = 160;
  spec.cols = 8;
  spec.sparsity = 0.35;
  spec.seed = 3;
  ASSERT_TRUE(RegisterDataset(&catalog, spec).ok());

  PlanService service(&catalog);
  ServiceRequest request{GdScript("ds", 3), SmallConfig()};
  ASSERT_TRUE(service.Run(request).ok());

  // Sparsity moves several half-decades: new bucket, stale plan dropped.
  spec.sparsity = 0.05;
  ASSERT_TRUE(RegisterDataset(&catalog, spec).ok());
  auto report = service.Run(request);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->cache_hit);
  EXPECT_GE(service.stats().cache.invalidations, 1);

  // Within-bucket drift keeps the plan (0.05 and 0.06 share a bucket).
  spec.sparsity = 0.06;
  ASSERT_TRUE(RegisterDataset(&catalog, spec).ok());
  auto drift = service.Run(request);
  ASSERT_TRUE(drift.ok());
  EXPECT_TRUE(drift->cache_hit);
}

TEST(Service, DifferentConfigsGetDifferentPlans) {
  PlanService service(&ServiceCatalog());
  RunConfig adaptive = SmallConfig();
  RunConfig none = SmallConfig();
  none.optimizer = OptimizerKind::kRemacNone;
  ASSERT_TRUE(service.Run({DfpScript("ds", 3), adaptive}).ok());
  auto report = service.Run({DfpScript("ds", 3), none});
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->cache_hit);
  EXPECT_EQ(service.stats().optimizer_invocations, 2);
}

TEST(Service, ParseErrorsPropagate) {
  PlanService service(&ServiceCatalog());
  auto report = service.Run({"x = ;", SmallConfig()});
  EXPECT_FALSE(report.ok());
}

// Hammer: many concurrent sessions on the same key — the optimizer must
// run exactly once (single-flight), and every request must see the same
// numbers. Runs under TSan/ASan via scripts/check.sh.
TEST(ServiceConcurrency, EightThreadHammerOptimizesOncePerKey) {
  ThreadPool::SetGlobalThreads(8);
  PlanService service(&ServiceCatalog());
  RunConfig config = SmallConfig();
  config.executed_iterations = 1;  // keep the hammer about the compiler
  const ServiceRequest request{DfpScript("ds", 3), config};

  PlanService::Session session = service.NewSession();
  constexpr int kRequests = 32;
  for (int k = 0; k < kRequests; ++k) session.Submit(request);
  const auto results = session.Wait();
  ASSERT_EQ(results.size(), static_cast<size_t>(kRequests));

  const Result<ServiceReport>* reference = nullptr;
  for (const auto& result : results) {
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    if (reference == nullptr) reference = &result;
    ExpectBitwiseEqual(reference->value().run.env.at("x"),
                       result.value().run.env.at("x"), "hammer");
  }

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, kRequests);
  EXPECT_EQ(stats.optimizer_invocations, 1);  // the single-flight claim
  // Every non-leader either waited on the flight or hit the cache.
  EXPECT_EQ(stats.cache.hits + stats.single_flight_waits, kRequests - 1);
  ThreadPool::SetGlobalThreads(0);
}

TEST(ServiceConcurrency, HammerAcrossKeysOptimizesOncePerKey) {
  ThreadPool::SetGlobalThreads(8);
  PlanService service(&ServiceCatalog());
  RunConfig config = SmallConfig();
  config.executed_iterations = 1;
  const std::vector<std::string> scripts = {
      GdScript("ds", 3), DfpScript("ds", 3), BfgsScript("ds", 3),
      GnmfScript("ds", 3, 3)};

  PlanService::Session session = service.NewSession();
  for (int k = 0; k < 32; ++k) {
    session.Submit({scripts[k % scripts.size()], config});
  }
  for (const auto& result : session.Wait()) {
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }
  EXPECT_EQ(service.stats().optimizer_invocations, 4);
  ThreadPool::SetGlobalThreads(0);
}

// ---------------------------------------------------------------------
// Admission control + warm-hit coalescing

TEST(Admission, QueueEatenDeadlineShedsToSerial) {
  ThreadPool::SetGlobalThreads(1);
  PlanService service(&ServiceCatalog());

  // Reference: the same program served serially, no pressure.
  RunConfig config = SmallConfig();
  auto reference = service.Run({DfpScript("ds", 3), config});
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  // Occupy the request lane's only worker, so the submitted request
  // spends real wall time queued — enough to blow its tiny deadline
  // before it even starts.
  ThreadPool::RequestLane().Submit(
      [] { std::this_thread::sleep_for(std::chrono::milliseconds(50)); });
  Counter* shed_metric =
      MetricsRegistry::Global().GetCounter("remac.service.shed");
  const int64_t shed_before = shed_metric->Value();

  ServiceRequest request;
  request.source = DfpScript("ds", 3);
  request.config = config;
  request.config.scheduler = SchedulerKind::kTaskGraph;
  request.deadline_seconds = 1e-3;
  PlanService::Session session = service.NewSession();
  session.Submit(request);
  const auto results = session.Wait();
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].ok()) << results[0].status().ToString();
  const ServiceReport& report = results[0].value();
  EXPECT_TRUE(report.degraded);
  EXPECT_TRUE(report.shed);
  EXPECT_EQ(report.degraded_reason, "shed-deadline");
  // Shed is degraded, not rejected: the serial fallback's answer is the
  // exact one.
  ExpectBitwiseEqual(reference->run.env.at("x"), report.run.env.at("x"),
                     "shed-deadline");
  EXPECT_EQ(service.stats().shed_requests, 1);
  EXPECT_EQ(shed_metric->Value(), shed_before + 1);
  ThreadPool::SetGlobalThreads(0);
}

TEST(Admission, UnloadedSessionRequestIsNotShed) {
  ThreadPool::SetGlobalThreads(2);
  PlanService service(&ServiceCatalog());
  ServiceRequest request;
  request.source = DfpScript("ds", 3);
  request.config = SmallConfig();
  request.config.scheduler = SchedulerKind::kTaskGraph;
  request.deadline_seconds = 3600.0;
  PlanService::Session session = service.NewSession();
  session.Submit(request);
  const auto results = session.Wait();
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].ok()) << results[0].status().ToString();
  EXPECT_FALSE(results[0].value().shed);
  EXPECT_FALSE(results[0].value().degraded);
  EXPECT_EQ(service.stats().shed_requests, 0);
  ThreadPool::SetGlobalThreads(0);
}

TEST(Admission, CoalescedWarmHitsShareOneExecution) {
  ServiceOptions options;
  options.coalesce_warm_hits = true;
  PlanService service(&ServiceCatalog(), options);
  const ServiceRequest request{DfpScript("ds", 3), SmallConfig()};
  auto reference = service.Run(request);  // warm the key
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  Counter* coalesced_metric =
      MetricsRegistry::Global().GetCounter("remac.service.coalesced");
  const int64_t metric_before = coalesced_metric->Value();

  // Barrier-released identical warm requests overlap with overwhelming
  // probability; retry a few rounds so scheduler noise cannot flake the
  // test. Every round asserts bitwise identity regardless of overlap.
  int64_t coalesced = 0;
  for (int attempt = 0; attempt < 20 && coalesced == 0; ++attempt) {
    constexpr int kClients = 8;
    std::vector<Result<ServiceReport>> results(
        static_cast<size_t>(kClients), Status::Internal("unset"));
    std::atomic<int> ready{0};
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        ready.fetch_add(1);
        while (ready.load() < kClients) std::this_thread::yield();
        results[static_cast<size_t>(c)] = service.Run(request);
      });
    }
    for (std::thread& client : clients) client.join();
    for (const auto& result : results) {
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_TRUE(result.value().cache_hit);
      ExpectBitwiseEqual(reference->run.env.at("x"),
                         result.value().run.env.at("x"), "coalesced");
    }
    coalesced = service.stats().coalesced_requests;
  }
  EXPECT_GT(coalesced, 0) << "no two identical requests ever overlapped";
  EXPECT_EQ(coalesced_metric->Value() - metric_before, coalesced);
}

TEST(Admission, StochasticPlansNeverCoalesce) {
  ServiceOptions options;
  options.coalesce_warm_hits = true;
  PlanService service(&ServiceCatalog(), options);
  // GNMF initializes with rand(): its plan is flagged non-deterministic
  // at build time, so concurrent identical requests must each run.
  const ServiceRequest request{GnmfScript("ds", 3, 3), SmallConfig()};
  ASSERT_TRUE(service.Run(request).ok());
  constexpr int kClients = 6;
  std::atomic<int> ready{0};
  std::atomic<int> failed{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      ready.fetch_add(1);
      while (ready.load() < kClients) std::this_thread::yield();
      if (!service.Run(request).ok()) failed.fetch_add(1);
    });
  }
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(failed.load(), 0);
  EXPECT_EQ(service.stats().coalesced_requests, 0);
}

}  // namespace
}  // namespace remac
