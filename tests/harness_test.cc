// Tests for the benchmark harness's extrapolated measurement: the
// simulated loop time must scale linearly in iterations, so running
// 1 and 2 real iterations and extrapolating to N must agree with an
// actual N-iteration run.

#include <gtest/gtest.h>

#include "algorithms/scripts.h"
#include "bench/harness.h"
#include "data/generators.h"

namespace remac {
namespace {

TEST(Harness, ExtrapolationMatchesFullRun) {
  DataCatalog catalog;
  DatasetSpec spec;
  spec.name = "hx";
  spec.rows = 3000;
  spec.cols = 40;
  spec.sparsity = 0.05;
  spec.seed = 91;
  ASSERT_TRUE(RegisterDataset(&catalog, spec).ok());
  const int iterations = 9;
  const std::string script = GdScript("hx", iterations);

  // Full run: execute all iterations for real.
  RunConfig full;
  full.optimizer = OptimizerKind::kRemacAdaptive;
  full.max_iterations = iterations;
  auto full_run = RunScript(script, catalog, full);
  ASSERT_TRUE(full_run.ok());
  const double full_loop = full_run->breakdown.computation_seconds +
                           full_run->breakdown.transmission_seconds;

  // Extrapolated: T(1) + (N-1)(T(2)-T(1)).
  auto measure = [&](int executed) {
    RunConfig config = full;
    config.executed_iterations = executed;
    auto run = RunScript(script, catalog, config);
    EXPECT_TRUE(run.ok());
    return run->breakdown.computation_seconds +
           run->breakdown.transmission_seconds;
  };
  const double t1 = measure(1);
  const double t2 = measure(2);
  const double extrapolated = t1 + (iterations - 1) * (t2 - t1);
  EXPECT_NEAR(extrapolated, full_loop, full_loop * 0.02 + 1e-9);
}

TEST(Harness, MeasureScriptReportsComponents) {
  DataCatalog& catalog = bench::SharedCatalog();
  if (!catalog.Contains("hx2")) {
    DatasetSpec spec;
    spec.name = "hx2";
    spec.rows = 2000;
    spec.cols = 30;
    spec.sparsity = 0.1;
    spec.seed = 92;
    ASSERT_TRUE(RegisterDataset(&catalog, spec).ok());
  }
  RunConfig config;
  config.optimizer = OptimizerKind::kSystemDs;
  auto m = bench::MeasureScript(GdScript("hx2", 50), config, 50);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_GT(m->execution_seconds, 0.0);
  EXPECT_GE(m->elapsed_seconds, m->execution_seconds);
  EXPECT_NEAR(m->execution_seconds,
              m->breakdown.computation_seconds +
                  m->breakdown.transmission_seconds +
                  m->breakdown.input_partition_seconds,
              1e-12);
}

TEST(Harness, LongerHorizonAmortizesLse) {
  DataCatalog& catalog = bench::SharedCatalog();
  if (!catalog.Contains("hx3")) {
    DatasetSpec spec;
    spec.name = "hx3";
    spec.rows = 20000;
    spec.cols = 64;
    spec.sparsity = 0.01;
    spec.seed = 93;
    ASSERT_TRUE(RegisterDataset(&catalog, spec).ok());
  }
  RunConfig config;
  config.optimizer = OptimizerKind::kRemacAdaptive;
  auto short_run = bench::MeasureScript(GdScript("hx3", 5), config, 5);
  auto long_run = bench::MeasureScript(GdScript("hx3", 200), config, 200);
  ASSERT_TRUE(short_run.ok());
  ASSERT_TRUE(long_run.ok());
  // Per-iteration cost shrinks with the horizon (hoisted productions
  // amortize across more iterations).
  EXPECT_LT(long_run->execution_seconds / 200.0,
            short_run->execution_seconds / 5.0 + 1e-12);
}

}  // namespace
}  // namespace remac
