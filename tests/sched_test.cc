// Tests for the task-graph scheduler subsystem: the work-stealing pool,
// DAG construction from variable versions, thread-safe ledger booking,
// bitwise determinism of the parallel executor, makespan accounting and
// the Chrome-trace sink.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "algorithms/scripts.h"
#include "data/generators.h"
#include "obs/metrics.h"
#include "plan/plan_builder.h"
#include "runtime/executor.h"
#include "runtime/program_runner.h"
#include "sched/parallel_executor.h"
#include "sched/task_graph.h"
#include "sched/thread_pool.h"
#include "sched/trace.h"

namespace remac {
namespace {

DataCatalog SchedCatalog() {
  DataCatalog catalog;
  DatasetSpec spec;
  spec.name = "ds";
  spec.rows = 50;
  spec.cols = 6;
  spec.sparsity = 0.5;
  spec.seed = 9;
  EXPECT_TRUE(RegisterDataset(&catalog, spec).ok());
  return catalog;
}

// ---------------------------------------------------------------------------
// ThreadPool

TEST(ThreadPool, RunAndWaitExecutesEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 64; ++i) {
    tasks.push_back([&count] { count.fetch_add(1); });
  }
  pool.RunAndWait(std::move(tasks));
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, NestedRunAndWaitDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  std::vector<std::function<void()>> outer;
  for (int i = 0; i < 4; ++i) {
    outer.push_back([&pool, &count] {
      std::vector<std::function<void()>> inner;
      for (int j = 0; j < 4; ++j) {
        inner.push_back([&count] { count.fetch_add(1); });
      }
      pool.RunAndWait(std::move(inner));
    });
  }
  pool.RunAndWait(std::move(outer));
  EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPool, SizeOnePoolStillCompletesNestedWork) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  std::vector<std::function<void()>> outer;
  for (int i = 0; i < 3; ++i) {
    outer.push_back([&pool, &count] {
      std::vector<std::function<void()>> inner;
      for (int j = 0; j < 3; ++j) {
        inner.push_back([&count] { count.fetch_add(1); });
      }
      pool.RunAndWait(std::move(inner));
    });
  }
  pool.RunAndWait(std::move(outer));
  EXPECT_EQ(count.load(), 9);
}

TEST(ThreadPool, TryRunOneDrainsSubmittedWork) {
  ThreadPool pool(1);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran.store(true); });
  // Either the worker or this loop picks it up.
  for (int i = 0; i < 10000 && !ran.load(); ++i) pool.TryRunOne();
  while (!ran.load()) {
  }
  EXPECT_TRUE(ran.load());
  EXPECT_GE(pool.tasks_executed(), 1);
}

TEST(ThreadPool, CurrentWorkerIdIsMinusOneOutsideThePool) {
  EXPECT_EQ(ThreadPool::CurrentWorkerId(), -1);
}

TEST(ThreadPool, StatsCountExecutionsStealsAndQueueDepth) {
  ThreadPool pool(2);
  // Park one worker on a gate. Submit round-robins across the two
  // deques, so the parked worker's share can only run via steals, and
  // its deque visibly backs up at submission time.
  std::atomic<bool> release{false};
  std::atomic<int> done{0};
  pool.Submit([&release] {
    while (!release.load()) std::this_thread::yield();
  });
  constexpr int kTasks = 32;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&done] { done.fetch_add(1); });
  }
  while (done.load() < kTasks) std::this_thread::yield();
  release.store(true);
  while (pool.tasks_executed() < kTasks + 1) std::this_thread::yield();

  const PoolStats stats = pool.stats();
  EXPECT_EQ(stats.threads, 2);
  EXPECT_GE(stats.tasks_executed, kTasks + 1);
  EXPECT_GE(stats.steals, 1);
  EXPECT_GE(stats.peak_queue_depth, 2);
}

TEST(ThreadPool, IdleWaitsAreSignaledNotPolled) {
  ThreadPool pool(1);
  // The worker parks exactly once at startup. Parked waits are signaled
  // (no timeout), so a long idle stretch adds zero wakeups — the old
  // implementation re-woke every 50 ms to re-poll the queues.
  while (pool.stats().wait_wakeups < 1) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_EQ(pool.stats().wait_wakeups, 1);

  // RunAndWait's completion wait is signaled too: long-running tasks
  // leave the waiters parked, not polling on a 1 ms timeout (which
  // would rack up ~60 wakeups across this run).
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 2; ++i) {
    tasks.push_back(
        [] { std::this_thread::sleep_for(std::chrono::milliseconds(60)); });
  }
  pool.RunAndWait(std::move(tasks));
  EXPECT_LT(pool.stats().wait_wakeups, 10);
}

// ---------------------------------------------------------------------------
// Two-lane pool

TEST(LanePool, CurrentPoolIdentifiesTheWorkersLane) {
  EXPECT_EQ(ThreadPool::CurrentPool(), nullptr);
  std::atomic<ThreadPool*> exec_seen{nullptr};
  std::atomic<ThreadPool*> request_seen{nullptr};
  std::atomic<int> exec_id{-2};
  std::atomic<int> done{0};
  ThreadPool::Global().Submit([&] {
    exec_seen.store(ThreadPool::CurrentPool());
    exec_id.store(ThreadPool::CurrentWorkerId());
    done.fetch_add(1);
  });
  ThreadPool::RequestLane().Submit([&] {
    request_seen.store(ThreadPool::CurrentPool());
    done.fetch_add(1);
  });
  while (done.load() < 2) std::this_thread::yield();
  EXPECT_EQ(exec_seen.load(), &ThreadPool::Global());
  EXPECT_EQ(request_seen.load(), &ThreadPool::RequestLane());
  EXPECT_GE(exec_id.load(), 0);
  EXPECT_LT(exec_id.load(), ThreadPool::Global().size());
}

TEST(LanePool, LanesAreDistinctAndSizedFromOneBudget) {
  ASSERT_NE(&ThreadPool::Global(), &ThreadPool::RequestLane());
  ThreadPool::SetGlobalThreads(3);
  EXPECT_EQ(ThreadPool::Global().size(), 3);
  EXPECT_EQ(ThreadPool::RequestLane().size(), 3);
  // Per-run exec-lane sizing leaves the request lane alone, so a
  // request-lane worker re-configuring execution parallelism can never
  // tear down (and join) the very lane it runs on.
  ThreadPool::SetExecLaneThreads(2);
  EXPECT_EQ(ThreadPool::Global().size(), 2);
  EXPECT_EQ(ThreadPool::RequestLane().size(), 3);
  ThreadPool::SetGlobalThreads(0);
  EXPECT_EQ(ThreadPool::Global().size(), ThreadPool::RequestLane().size());
}

TEST(LanePool, WorkerOriginatedContinuationsComplete) {
  // A worker task that submits its own continuations (own-queue routing)
  // must never strand them: either the submitter picks them up next or
  // a woken sibling steals them. Chain depth x fan-out stresses both.
  ThreadPool pool(2);
  std::atomic<int> count{0};
  std::function<void(int)> chain = [&](int depth) {
    count.fetch_add(1);
    if (depth <= 0) return;
    pool.Submit([&chain, depth] { chain(depth - 1); });
    pool.Submit([&chain, depth] { chain(depth - 1); });
  };
  pool.Submit([&chain] { chain(6); });
  // 1 + 2 + 4 + ... + 2^7 - 1 tasks minus... the root counts once per
  // node of a depth-6 binary recursion: 2^7 - 1 = 127 increments.
  while (count.load() < 127) std::this_thread::yield();
  EXPECT_EQ(count.load(), 127);
}

TEST(LanePool, RepeatedParkWakeCyclesLoseNoSubmissions) {
  // Missed-wakeup regression: alternate idle parks with single submits.
  // A lost wakeup deadlocks this loop (the task sits queued while the
  // only worker sleeps), so completing is the assertion.
  ThreadPool pool(1);
  for (int round = 0; round < 200; ++round) {
    std::atomic<bool> ran{false};
    pool.Submit([&ran] { ran.store(true); });
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (!ran.load()) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "submission lost at round " << round;
      std::this_thread::yield();
    }
  }
}

TEST(LanePool, LaneMetricsMirrorTasksAndThreads) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* exec_tasks =
      registry.GetCounter("remac.pool.lane.exec.tasks");
  Counter* request_tasks =
      registry.GetCounter("remac.pool.lane.request.tasks");
  const int64_t exec_before = exec_tasks->Value();
  const int64_t request_before = request_tasks->Value();
  std::atomic<int> done{0};
  ThreadPool::Global().Submit([&done] { done.fetch_add(1); });
  ThreadPool::RequestLane().Submit([&done] { done.fetch_add(1); });
  while (done.load() < 2) std::this_thread::yield();
  EXPECT_GE(exec_tasks->Value(), exec_before + 1);
  EXPECT_GE(request_tasks->Value(), request_before + 1);
  EXPECT_EQ(registry.GetGauge("remac.pool.lane.exec.threads")->Value(),
            static_cast<double>(ThreadPool::Global().size()));
  EXPECT_EQ(registry.GetGauge("remac.pool.lane.request.threads")->Value(),
            static_cast<double>(ThreadPool::RequestLane().size()));
}

// ---------------------------------------------------------------------------
// TransmissionLedger thread safety (satellite: contention test)

TEST(Ledger, ConcurrentBookingLosesNoUpdates) {
  const ClusterModel model;
  TransmissionLedger ledger(model);
  ThreadPool pool(8);
  constexpr int kTasks = 16;
  constexpr int kAddsPerTask = 2000;
  std::vector<std::function<void()>> tasks;
  for (int t = 0; t < kTasks; ++t) {
    tasks.push_back([&ledger] {
      for (int i = 0; i < kAddsPerTask; ++i) {
        ledger.AddDistributedFlops(1.0);
        ledger.AddLocalFlops(2.0);
        ledger.AddTransmission(TransmissionPrimitive::kShuffle, 3.0);
        ledger.AddInputPartition(4.0);
      }
    });
  }
  pool.RunAndWait(std::move(tasks));
  // Sums of small integers are exact in double precision, so any lost
  // update shows up as an exact mismatch.
  const double n = kTasks * kAddsPerTask;
  EXPECT_DOUBLE_EQ(ledger.TotalFlops(), 1.0 * n + 2.0 * n);
  EXPECT_DOUBLE_EQ(ledger.BytesFor(TransmissionPrimitive::kShuffle), 3.0 * n);
}

TEST(Ledger, MergeFromFoldsEveryAccumulator) {
  const ClusterModel model;
  TransmissionLedger a(model);
  TransmissionLedger b(model);
  a.AddDistributedFlops(10.0);
  b.AddDistributedFlops(5.0);
  b.AddLocalFlops(7.0);
  b.AddTransmission(TransmissionPrimitive::kBroadcast, 100.0);
  b.AddCompilationSeconds(0.5);
  a.MergeFrom(b);
  EXPECT_DOUBLE_EQ(a.TotalFlops(), 22.0);
  EXPECT_DOUBLE_EQ(a.BytesFor(TransmissionPrimitive::kBroadcast), 100.0);
  EXPECT_DOUBLE_EQ(a.Breakdown().compilation_seconds, 0.5);
}

// ---------------------------------------------------------------------------
// TaskGraph construction

TEST(TaskGraph, RawWarWawEdgesFollowVariableVersions) {
  const DataCatalog catalog = SchedCatalog();
  auto program =
      CompileScript("a = 1;\nb = a + 1;\na = b * 2;\nc = a + b;\n", catalog);
  ASSERT_TRUE(program.ok());
  const TaskGraph graph = BuildTaskGraph(program->statements);
  ASSERT_EQ(graph.nodes.size(), 4u);

  // b = a + 1 reads a@1 produced by statement 0.
  const TaskNode& read_b = graph.nodes[1];
  ASSERT_NE(read_b.FindDep(0, DepKind::kRaw), nullptr);
  EXPECT_EQ(read_b.FindDep(0, DepKind::kRaw)->var, "a");
  EXPECT_EQ(read_b.read_versions.at("a"), 1);

  // a = b * 2 rewrites a: RAW on b's writer, WAW on a's first writer,
  // WAR on a's reader.
  const TaskNode& rewrite_a = graph.nodes[2];
  EXPECT_NE(rewrite_a.FindDep(1, DepKind::kRaw), nullptr);
  EXPECT_NE(rewrite_a.FindDep(0, DepKind::kWaw), nullptr);
  EXPECT_NE(rewrite_a.FindDep(1, DepKind::kWar), nullptr);
  EXPECT_EQ(rewrite_a.write_versions.at("a"), 2);

  // c = a + b consumes the *second* version of a.
  const TaskNode& read_c = graph.nodes[3];
  EXPECT_NE(read_c.FindDep(2, DepKind::kRaw), nullptr);
  EXPECT_EQ(read_c.read_versions.at("a"), 2);
  EXPECT_EQ(read_c.read_versions.at("b"), 1);
}

TEST(TaskGraph, IndependentStatementsHaveNoEdges) {
  const DataCatalog catalog = SchedCatalog();
  auto program = CompileScript("x = 1;\ny = 2;\nz = 3;\n", catalog);
  ASSERT_TRUE(program.ok());
  const TaskGraph graph = BuildTaskGraph(program->statements);
  EXPECT_EQ(graph.EdgeCount(), 0);
}

TEST(TaskGraph, BarrierCommitSuppressesHazardsOfStagedWrites) {
  const DataCatalog catalog = SchedCatalog();
  auto program = CompileScript("x = 1;\ng = x + 1;\nx = g * 2;\n", catalog);
  ASSERT_TRUE(program.ok());
  // Treat the last two statements as a barrier-commit loop body: both see
  // the start-of-iteration x, so no RAW from g's write to x's read and no
  // WAR back from x's rewrite.
  const std::vector<CompiledStmt> body(program->statements.begin() + 1,
                                       program->statements.end());
  const TaskGraph graph = BuildTaskGraph(body, /*barrier_commit=*/true);
  ASSERT_EQ(graph.nodes.size(), 2u);
  EXPECT_EQ(graph.EdgeCount(), 0);
  EXPECT_EQ(graph.nodes[0].write_versions.at("g"), 0);
  EXPECT_EQ(graph.nodes[1].read_versions.at("g"), 0);
}

TEST(TaskGraph, LoopsAggregateTheirBodyAccess) {
  const DataCatalog catalog = SchedCatalog();
  auto program = CompileScript(
      "i = 0;\ns = 0;\nwhile (i < 3) {\n  i = i + 1;\n  s = s + 2;\n}\n"
      "r = s + i;\n",
      catalog);
  ASSERT_TRUE(program.ok());
  const TaskGraph graph = BuildTaskGraph(program->statements);
  ASSERT_EQ(graph.nodes.size(), 4u);
  const TaskNode& loop = graph.nodes[2];
  EXPECT_EQ(loop.label, "loop");
  EXPECT_NE(loop.FindDep(0, DepKind::kRaw), nullptr);
  EXPECT_NE(loop.FindDep(1, DepKind::kRaw), nullptr);
  const TaskNode& after = graph.nodes[3];
  EXPECT_NE(after.FindDep(2, DepKind::kRaw), nullptr);
  EXPECT_FALSE(after.DependsOn(0));  // i@loop-version comes from the loop
}

TEST(TaskGraph, DynamicRandLoopOrdersLaterRandUsers) {
  const DataCatalog catalog = SchedCatalog();
  auto program = CompileScript(
      "i = 0;\nwhile (i < 2) {\n  i = i + 1;\n  X = rand(2, 2);\n}\n"
      "Y = rand(2, 2);\n",
      catalog);
  ASSERT_TRUE(program.ok());
  const TaskGraph graph = BuildTaskGraph(program->statements);
  ASSERT_EQ(graph.nodes.size(), 3u);
  const TaskNode& loop = graph.nodes[1];
  EXPECT_TRUE(loop.dynamic_rand);
  EXPECT_GT(loop.rand_count, 0);
  const TaskNode& after = graph.nodes[2];
  EXPECT_EQ(after.rand_count, 1);
  EXPECT_NE(after.FindDep(1, DepKind::kRandOrder), nullptr);
}

TEST(TaskGraph, StaticRandUsersNeedNoOrderingEdges) {
  const DataCatalog catalog = SchedCatalog();
  auto program = CompileScript("A = rand(4, 4);\nB = rand(4, 4);\n", catalog);
  ASSERT_TRUE(program.ok());
  const TaskGraph graph = BuildTaskGraph(program->statements);
  // Straight-line rand consumption is statically known, so the two
  // statements can run concurrently with re-based counters.
  EXPECT_EQ(graph.EdgeCount(), 0);
  EXPECT_EQ(graph.nodes[0].rand_count, 1);
  EXPECT_FALSE(graph.nodes[0].dynamic_rand);
}

// ---------------------------------------------------------------------------
// Makespan accounting

TEST(SchedMakespan, ChainIsSerialEverywhere) {
  const std::vector<std::vector<int>> deps = {{}, {0}, {1}};
  const std::vector<double> costs = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(ListScheduleMakespan(deps, costs, 1), 6.0);
  EXPECT_DOUBLE_EQ(ListScheduleMakespan(deps, costs, 4), 6.0);
  EXPECT_DOUBLE_EQ(CriticalPathSeconds(deps, costs), 6.0);
}

TEST(SchedMakespan, IndependentTasksSplitAcrossWorkers) {
  const std::vector<std::vector<int>> deps = {{}, {}, {}, {}};
  const std::vector<double> costs = {1.0, 1.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(ListScheduleMakespan(deps, costs, 1), 4.0);
  EXPECT_DOUBLE_EQ(ListScheduleMakespan(deps, costs, 2), 2.0);
  EXPECT_DOUBLE_EQ(ListScheduleMakespan(deps, costs, 4), 1.0);
  EXPECT_DOUBLE_EQ(CriticalPathSeconds(deps, costs), 1.0);
}

TEST(SchedMakespan, DiamondRespectsDependencies) {
  // 0 -> {1, 2} -> 3
  const std::vector<std::vector<int>> deps = {{}, {0}, {0}, {1, 2}};
  const std::vector<double> costs = {1.0, 2.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(CriticalPathSeconds(deps, costs), 4.0);
  EXPECT_DOUBLE_EQ(ListScheduleMakespan(deps, costs, 2), 4.0);
  EXPECT_DOUBLE_EQ(ListScheduleMakespan(deps, costs, 1), 6.0);
}

// ---------------------------------------------------------------------------
// Bitwise determinism of the parallel executor

void ExpectValueBitwise(const std::string& name, const RtValue& a,
                        const RtValue& b) {
  ASSERT_EQ(a.is_scalar, b.is_scalar) << name;
  EXPECT_EQ(a.distributed, b.distributed) << name;
  if (a.is_scalar) {
    EXPECT_EQ(std::memcmp(&a.scalar, &b.scalar, sizeof(double)), 0)
        << name << ": " << a.scalar << " vs " << b.scalar;
    return;
  }
  ASSERT_EQ(a.matrix.rows(), b.matrix.rows()) << name;
  ASSERT_EQ(a.matrix.cols(), b.matrix.cols()) << name;
  for (int64_t r = 0; r < a.matrix.rows(); ++r) {
    for (int64_t c = 0; c < a.matrix.cols(); ++c) {
      const double va = a.matrix.At(r, c);
      const double vb = b.matrix.At(r, c);
      ASSERT_EQ(std::memcmp(&va, &vb, sizeof(double)), 0)
          << name << " at (" << r << ", " << c << "): " << va << " vs "
          << vb;
    }
  }
}

void ExpectEnvBitwise(const std::map<std::string, RtValue>& serial,
                      const std::map<std::string, RtValue>& parallel) {
  ASSERT_EQ(serial.size(), parallel.size());
  for (const auto& [name, value] : serial) {
    auto it = parallel.find(name);
    ASSERT_NE(it, parallel.end()) << name;
    ExpectValueBitwise(name, value, it->second);
  }
}

/// Runs `script` with the serial executor and the task-graph scheduler at
/// several pool sizes, requiring bitwise-identical environments and sane
/// makespan accounting.
void CheckSchedulerDeterminism(const std::string& script) {
  const DataCatalog catalog = SchedCatalog();
  RunConfig config;
  config.max_iterations = 3;
  auto serial = RunScript(script, catalog, config);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  for (int threads : {1, 2, 8}) {
    RunConfig parallel_config = config;
    parallel_config.scheduler = SchedulerKind::kTaskGraph;
    parallel_config.pool_threads = threads;
    auto parallel = RunScript(script, catalog, parallel_config);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    ExpectEnvBitwise(serial->env, parallel->env);
    const ScheduleReport& schedule = parallel->schedule;
    EXPECT_TRUE(schedule.used);
    EXPECT_EQ(schedule.pool_threads, threads);
    EXPECT_GT(schedule.tasks, 0);
    EXPECT_GT(schedule.serial_seconds, 0.0);
    EXPECT_LE(schedule.makespan_seconds, schedule.serial_seconds);
    EXPECT_GE(schedule.makespan_seconds, schedule.critical_path_seconds);
    EXPECT_GT(schedule.critical_path_seconds, 0.0);
    // Parallel DAG execution must book the same simulated cluster time
    // as the serial pass (associativity noise aside).
    const double serial_exec = serial->breakdown.computation_seconds +
                               serial->breakdown.transmission_seconds;
    const double parallel_exec = parallel->breakdown.computation_seconds +
                                 parallel->breakdown.transmission_seconds;
    EXPECT_NEAR(parallel_exec, serial_exec,
                1e-9 * std::max(1.0, serial_exec));
  }
}

TEST(SchedDeterminism, Dfp) { CheckSchedulerDeterminism(DfpScript("ds", 3)); }

TEST(SchedDeterminism, Bfgs) {
  CheckSchedulerDeterminism(BfgsScript("ds", 3));
}

TEST(SchedDeterminism, Gd) { CheckSchedulerDeterminism(GdScript("ds", 3)); }

TEST(SchedDeterminism, GnmfWithRandInitialization) {
  CheckSchedulerDeterminism(GnmfScript("ds", 4, 3));
}

TEST(SchedDeterminism, DynamicRandLoopKeepsTheStreamAligned) {
  const DataCatalog catalog = SchedCatalog();
  const std::string script =
      "i = 0;\nS = rand(300, 4);\n"
      "while (i < 3) {\n  i = i + 1;\n  S = S + rand(300, 4);\n}\n"
      "T = rand(300, 4);\nU = S + T;\n";
  auto program = CompileScript(script, catalog);
  ASSERT_TRUE(program.ok());

  Executor serial(ClusterModel(), &catalog, nullptr);
  ASSERT_TRUE(serial.Run(program->statements, 10).ok());

  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    TransmissionLedger ledger((ClusterModel()));
    ParallelExecutor parallel(ClusterModel(), &catalog, &ledger, &pool);
    ASSERT_TRUE(parallel.Run(program->statements, 10).ok());
    ExpectEnvBitwise(serial.env(), parallel.env());
  }
}

// ---------------------------------------------------------------------------
// Trace hooks

TEST(SchedTrace, WritesChromeTraceJson) {
  const DataCatalog catalog = SchedCatalog();
  auto program =
      CompileScript("A = read(\"ds\");\nB = t(A) %*% A;\nC = B + B;\n",
                    catalog);
  ASSERT_TRUE(program.ok());
  ThreadPool pool(2);
  TransmissionLedger ledger((ClusterModel()));
  TraceSink trace;
  ParallelExecutor executor(ClusterModel(), &catalog, &ledger, &pool);
  executor.set_trace(&trace);
  ASSERT_TRUE(executor.Run(program->statements).ok());
  EXPECT_GE(trace.size(), 3u);

  const std::string json = trace.ToChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);

  const std::string path = testing::TempDir() + "/remac_sched_trace.json";
  ASSERT_TRUE(trace.WriteChromeJson(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char head[16] = {0};
  const size_t got = std::fread(head, 1, sizeof(head) - 1, f);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_GT(got, 0u);
  EXPECT_EQ(head[0], '{');
}

TEST(SchedTrace, ProgramRunnerWritesTraceFile) {
  const DataCatalog catalog = SchedCatalog();
  RunConfig config;
  config.max_iterations = 2;
  config.scheduler = SchedulerKind::kTaskGraph;
  config.trace_path = testing::TempDir() + "/remac_runner_trace.json";
  auto report = RunScript(DfpScript("ds", 2), catalog, config);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->schedule.used);
  std::FILE* f = std::fopen(config.trace_path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  std::remove(config.trace_path.c_str());
}

// ---------------------------------------------------------------------------
// Error propagation

TEST(SchedErrors, UndefinedVariableFailsLikeTheSerialExecutor) {
  const DataCatalog catalog = SchedCatalog();
  auto program = CompileScript("x = 1;\ny = x + 1;\n", catalog);
  ASSERT_TRUE(program.ok());
  // Run only the second statement: x is undefined at runtime, which must
  // surface as the same error on both execution paths.
  const std::vector<CompiledStmt> tail(program->statements.begin() + 1,
                                       program->statements.end());
  ThreadPool pool(2);
  TransmissionLedger ledger((ClusterModel()));
  ParallelExecutor executor(ClusterModel(), &catalog, &ledger, &pool);
  const Status status = executor.Run(tail);
  EXPECT_FALSE(status.ok());

  Executor serial(ClusterModel(), &catalog, nullptr);
  const Status serial_status = serial.Run(tail);
  EXPECT_FALSE(serial_status.ok());
  EXPECT_EQ(status.code(), serial_status.code());
}

}  // namespace
}  // namespace remac
