#include <gtest/gtest.h>

#include "algorithms/scripts.h"
#include "core/block_search.h"
#include "core/cost_graph.h"
#include "data/generators.h"
#include "plan/plan_builder.h"
#include "sparsity/estimator.h"

namespace remac {
namespace {

/// Full optimizer front-end up to the cost graph.
struct GraphFixture {
  DataCatalog catalog;
  CompiledProgram program;
  SearchSpace space;
  std::vector<EliminationOption> options;
  MetadataEstimator estimator;
  std::unique_ptr<CostModel> cost_model;
  VarStats vars;
  std::unique_ptr<CostGraph> graph;

  explicit GraphFixture(const std::string& script, int iterations = 10) {
    DatasetSpec spec;
    spec.name = "ds";
    spec.rows = 40000;
    spec.cols = 32;
    spec.sparsity = 0.02;
    spec.seed = 4;
    EXPECT_TRUE(RegisterDataset(&catalog, spec).ok());
    program = CompileScript(script, catalog).value();
    LoopStructure loop = FindLoop(program);
    auto outputs = InlineLoopBody(loop.loop->body).value();
    space = BuildSearchSpace(outputs, loop.loop_assigned,
                             InferSymmetricVars(loop))
                .value();
    options = BlockWiseSearch(space, nullptr);
    cost_model = std::make_unique<CostModel>(ClusterModel(), &estimator,
                                             &catalog);
    vars = PropagateProgramStats(program, catalog, *cost_model).value();
    graph = std::make_unique<CostGraph>(&space, cost_model.get(), &vars,
                                        iterations);
    EXPECT_TRUE(graph->Build().ok());
  }

  const EliminationOption* ByKey(const std::string& key,
                                 OptionKind kind) const {
    for (const auto& opt : options) {
      if (opt.key == key && opt.kind == kind) return &opt;
    }
    return nullptr;
  }
};

TEST(CostGraph, IntervalStatsShapes) {
  GraphFixture f(GdScript("ds", 10));
  // Find the A^T A x block (3 factors).
  for (size_t b = 0; b < f.space.blocks.size(); ++b) {
    const Block& block = f.space.blocks[b];
    if (block.Length() == 3) {
      const CostedStats& whole =
          f.graph->IntervalStats(static_cast<int>(b), 0, 3);
      EXPECT_EQ(whole.stats.rows, 32);
      EXPECT_EQ(whole.stats.cols, 1);
      const CostedStats& ata =
          f.graph->IntervalStats(static_cast<int>(b), 0, 2);
      EXPECT_EQ(ata.stats.rows, 32);
      EXPECT_EQ(ata.stats.cols, 32);
    }
  }
}

TEST(CostGraph, ChainDpPicksMatVecOrder) {
  GraphFixture f(GdScript("ds", 10));
  // For the chain A^T A x, right-to-left (two mat-vecs) beats computing
  // A^T A first; the default split must reflect that.
  for (size_t b = 0; b < f.space.blocks.size(); ++b) {
    const Block& block = f.space.blocks[b];
    if (block.Length() != 3) continue;
    const SplitNode* split = f.graph->DefaultSplit(static_cast<int>(b));
    ASSERT_NE(split, nullptr);
    // Root splits after the first factor: A^T (A x).
    EXPECT_EQ(split->left->range.end, 1);
  }
}

TEST(CostGraph, PlainCostDecreasingInUnits) {
  GraphFixture f(DfpScript("ds", 10));
  // Contracting any interval to a free temp can only reduce chain cost.
  for (size_t b = 0; b < f.space.blocks.size(); ++b) {
    const Block& block = f.space.blocks[b];
    if (block.Length() < 3) continue;
    const int n = static_cast<int>(block.Length());
    const double plain = f.graph->PlainIntervalCost(static_cast<int>(b), 0, n);
    const double contracted = f.graph->ChainCostWithUnits(
        static_cast<int>(b), 0, n, {{Interval{0, 2}, 99}}, nullptr);
    EXPECT_LE(contracted, plain + 1e-12);
  }
}

TEST(CostGraph, EvaluateEmptyIsBaseline) {
  GraphFixture f(GdScript("ds", 10));
  auto cost = f.graph->Evaluate({});
  ASSERT_TRUE(cost.ok());
  EXPECT_GT(cost->per_iteration_seconds, 0.0);
  EXPECT_EQ(cost->hoisted_seconds, 0.0);
}

TEST(CostGraph, LseAmortizesProduction) {
  GraphFixture f10(GdScript("ds", 10), 10);
  GraphFixture f100(GdScript("ds", 100), 100);
  const EliminationOption* lse10 =
      f10.ByKey(JoinKey({"A'", "b"}), OptionKind::kLse);
  const EliminationOption* lse100 =
      f100.ByKey(JoinKey({"A'", "b"}), OptionKind::kLse);
  ASSERT_NE(lse10, nullptr);
  ASSERT_NE(lse100, nullptr);
  const double base10 = f10.graph->Evaluate({}).value().per_iteration_seconds;
  const double with10 =
      f10.graph->Evaluate({lse10}).value().per_iteration_seconds;
  const double base100 =
      f100.graph->Evaluate({}).value().per_iteration_seconds;
  const double with100 =
      f100.graph->Evaluate({lse100}).value().per_iteration_seconds;
  // Relative benefit grows with the horizon (production cost amortized).
  EXPECT_LT(with100 / base100, with10 / base10 + 1e-9);
}

TEST(CostGraph, EvaluateRejectsConflicts) {
  GraphFixture f(DfpScript("ds", 10));
  const EliminationOption* a = nullptr;
  const EliminationOption* b = nullptr;
  for (size_t i = 0; i < f.options.size() && b == nullptr; ++i) {
    for (size_t j = i + 1; j < f.options.size(); ++j) {
      if (OptionsConflict(f.options[i], f.options[j])) {
        a = &f.options[i];
        b = &f.options[j];
        break;
      }
    }
  }
  ASSERT_NE(a, nullptr) << "DFP must contain contradictory options";
  EXPECT_EQ(f.graph->Evaluate({a, b}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CostGraph, CseProductionChargedOncePerIteration) {
  GraphFixture f(DfpScript("ds", 10));
  // Applying a beneficial CSE reduces the per-iteration cost versus
  // recomputing at each occurrence site.
  const EliminationOption* cse =
      f.ByKey(JoinKey({"A'", "A", "H@0", "g@1"}), OptionKind::kCse);
  ASSERT_NE(cse, nullptr);
  auto base = f.graph->Evaluate({});
  auto with = f.graph->Evaluate({cse});
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(with.ok());
  EXPECT_GT(with->production_seconds.count(cse->id), 0u);
  EXPECT_LT(with->per_iteration_seconds, base->per_iteration_seconds);
}

TEST(CostGraph, NestedOptionsCompose) {
  GraphFixture f(DfpScript("ds", 10));
  const EliminationOption* inner =
      f.ByKey(JoinKey({"A'", "A"}), OptionKind::kLse);
  const EliminationOption* outer =
      f.ByKey(JoinKey({"A'", "A", "H@0", "g@1"}), OptionKind::kCse);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(outer, nullptr);
  ASSERT_FALSE(OptionsConflict(*inner, *outer));
  auto both = f.graph->Evaluate({inner, outer});
  ASSERT_TRUE(both.ok()) << both.status().ToString();
  // The outer production benefits from the nested hoisted temp.
  auto outer_only = f.graph->Evaluate({outer});
  ASSERT_TRUE(outer_only.ok());
  EXPECT_LE(both->production_seconds.at(outer->id),
            outer_only->production_seconds.at(outer->id) + 1e-12);
}

TEST(CostGraph, OriginalOrderIntervals) {
  GraphFixture f(GdScript("ds", 10));
  for (size_t b = 0; b < f.space.blocks.size(); ++b) {
    const int n = static_cast<int>(f.space.blocks[b].Length());
    if (n < 2) continue;
    // The root interval is always part of the default split.
    EXPECT_TRUE(f.graph->IsOriginalOrderInterval(static_cast<int>(b), 0, n));
  }
}

}  // namespace
}  // namespace remac
