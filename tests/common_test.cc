#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"

namespace remac {
namespace {

TEST(Status, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  const Status st = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad thing");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad thing");
}

TEST(Status, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> r(Status::OutOfRange("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

Result<int> Doubled(Result<int> in) {
  REMAC_ASSIGN_OR_RETURN(const int v, std::move(in));
  return v * 2;
}

TEST(Result, AssignOrReturnPropagates) {
  EXPECT_EQ(Doubled(21).value(), 42);
  EXPECT_EQ(Doubled(Status::Internal("x")).status().code(),
            StatusCode::kInternal);
}

TEST(Rng, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 4);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, BoundedRespectsBound) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.NextBounded(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(Rng, GaussianMomentsRoughlyStandard) {
  Rng rng(11);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Zipf, UniformAtExponentZero) {
  Rng rng(5);
  const ZipfSampler sampler(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) ++counts[sampler.Sample(rng)];
  for (int c : counts) EXPECT_NEAR(c, 5000, 500);
}

TEST(Zipf, SkewConcentratesOnLowRanks) {
  Rng rng(6);
  const ZipfSampler sampler(1000, 2.0);
  int head = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) head += sampler.Sample(rng) < 10;
  EXPECT_GT(head, n * 0.8);  // >80% of mass in the top 1% of ranks
}

TEST(StringUtil, JoinAndSplit) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  const auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
}

TEST(StringUtil, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x \n"), "x");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
}

TEST(StringUtil, Format) {
  EXPECT_EQ(StringFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(StringFormat("%.2f", 1.005), "1.00");
}

TEST(StringUtil, HumanUnits) {
  EXPECT_EQ(HumanBytes(1024.0 * 1024.0), "1.0MB");
  EXPECT_EQ(HumanSeconds(0.5), "500.0ms");
  EXPECT_EQ(HumanSeconds(5400), "90.0min");
}

}  // namespace
}  // namespace remac
