#include <gtest/gtest.h>

#include <set>

#include "algorithms/scripts.h"
#include "core/block_search.h"
#include "data/generators.h"
#include "plan/plan_builder.h"

namespace remac {
namespace {

DataCatalog SearchCatalog() {
  DataCatalog catalog;
  DatasetSpec spec;
  spec.name = "ds";
  spec.rows = 100;
  spec.cols = 8;
  spec.sparsity = 0.5;
  spec.seed = 2;
  EXPECT_TRUE(RegisterDataset(&catalog, spec, true).ok());
  return catalog;
}

SearchSpace SpaceFor(const std::string& script, const DataCatalog& catalog) {
  auto program = CompileScript(script, catalog);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  LoopStructure loop = FindLoop(*program);
  std::vector<CompiledStmt> body;
  if (loop.loop != nullptr) {
    body = loop.loop->body;
  } else {
    for (const auto& stmt : program->statements) {
      body.push_back(stmt);
      loop.loop_assigned.insert(stmt.target);
    }
  }
  auto outputs = InlineLoopBody(body);
  EXPECT_TRUE(outputs.ok());
  auto space = BuildSearchSpace(*outputs, loop.loop_assigned,
                                InferSymmetricVars(loop));
  EXPECT_TRUE(space.ok()) << space.status().ToString();
  return std::move(space).value();
}

const EliminationOption* FindByKey(
    const std::vector<EliminationOption>& options, const std::string& key,
    OptionKind kind) {
  for (const auto& opt : options) {
    if (opt.key == key && opt.kind == kind) return &opt;
  }
  return nullptr;
}

TEST(BlockSearch, FindsLseOfAtAInGd) {
  const DataCatalog catalog = SearchCatalog();
  const SearchSpace space = SpaceFor(GdScript("ds", 5), catalog);
  SearchReport report;
  const auto options = BlockWiseSearch(space, &report);
  EXPECT_GT(report.windows_visited, 0);
  // The implicit LSE of A^T A (A is loop-constant).
  EXPECT_NE(FindByKey(options, JoinKey({"A'", "A"}), OptionKind::kLse),
            nullptr);
  // And of A^T b.
  EXPECT_NE(
      FindByKey(options, JoinKey({"A'", "b"}), OptionKind::kLse),
      nullptr);
}

TEST(BlockSearch, FindsImplicitCseAcrossOrientations) {
  const DataCatalog catalog = SearchCatalog();
  const SearchSpace space = SpaceFor(DfpScript("ds", 5), catalog);
  const auto options = BlockWiseSearch(space, nullptr);
  // A^T A H g appears forward and reversed (the paper's
  // d^T A^T A = (A^T A d)^T example, with d = Hg inlined); the canonical
  // key has >= 2 occurrences with mixed orientations.
  const EliminationOption* opt =
      FindByKey(options, JoinKey({"A'", "A", "H@0", "g@1"}),
                OptionKind::kCse);
  ASSERT_NE(opt, nullptr);
  EXPECT_GE(opt->occurrences.size(), 2u);
  bool fwd = false;
  bool rev = false;
  for (const auto& occ : opt->occurrences) {
    fwd = fwd || occ.forward;
    rev = rev || !occ.forward;
  }
  EXPECT_TRUE(fwd && rev);
}

TEST(BlockSearch, DfpFindsManyOptions) {
  const DataCatalog catalog = SearchCatalog();
  const SearchSpace space = SpaceFor(DfpScript("ds", 5), catalog);
  SearchReport report;
  const auto options = BlockWiseSearch(space, &report);
  EXPECT_GE(options.size(), 15u);
  EXPECT_EQ(report.options_found, static_cast<int>(options.size()));
  // Ids are dense and deterministic.
  for (size_t i = 0; i < options.size(); ++i) {
    EXPECT_EQ(options[i].id, static_cast<int>(i));
  }
}

TEST(BlockSearch, DeterministicAcrossRuns) {
  const DataCatalog catalog = SearchCatalog();
  const SearchSpace space = SpaceFor(BfgsScript("ds", 5), catalog);
  const auto a = BlockWiseSearch(space, nullptr);
  const auto b = BlockWiseSearch(space, nullptr);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_EQ(a[i].occurrences.size(), b[i].occurrences.size());
  }
}

TEST(BlockSearch, CseOccurrencesAreDisjoint) {
  const DataCatalog catalog = SearchCatalog();
  const SearchSpace space = SpaceFor(DfpScript("ds", 5), catalog);
  for (const auto& opt : BlockWiseSearch(space, nullptr)) {
    for (size_t i = 0; i < opt.occurrences.size(); ++i) {
      for (size_t j = i + 1; j < opt.occurrences.size(); ++j) {
        EXPECT_FALSE(opt.occurrences[i].Overlaps(opt.occurrences[j]))
            << opt.ToString();
      }
    }
  }
}

TEST(BlockSearch, LseWindowsAreAllLoopConstant) {
  const DataCatalog catalog = SearchCatalog();
  const SearchSpace space = SpaceFor(DfpScript("ds", 5), catalog);
  for (const auto& opt : BlockWiseSearch(space, nullptr)) {
    if (!opt.IsLse()) continue;
    for (const auto& occ : opt.occurrences) {
      EXPECT_TRUE(
          space.blocks[occ.block_id].AllLoopConstant(occ.begin, occ.end))
          << opt.ToString();
    }
  }
}

TEST(BlockSearch, NoLseInGnmf) {
  const DataCatalog catalog = SearchCatalog();
  // Both factors change every iteration; V alone is constant but a bare
  // leaf is no computation. The only loop-constant computations would
  // have to involve V with itself, which GNMF has none of.
  const SearchSpace space = SpaceFor(GnmfScript("ds", 4, 5), catalog);
  for (const auto& opt : BlockWiseSearch(space, nullptr)) {
    EXPECT_FALSE(opt.IsLse()) << opt.ToString();
  }
}

TEST(TreeWise, AgreesWithBlockWiseWhenComplete) {
  const DataCatalog catalog = SearchCatalog();
  const SearchSpace space = SpaceFor(GdScript("ds", 5), catalog);
  const auto block = BlockWiseSearch(space, nullptr);
  SearchReport report;
  const auto tree = TreeWiseSearch(space, /*budget=*/100000000, &report);
  EXPECT_GE(report.windows_visited, 0);  // not truncated
  // Same option keys found (the paper: identical outputs, wildly
  // different cost).
  std::set<std::string> block_keys;
  std::set<std::string> tree_keys;
  for (const auto& o : block) {
    block_keys.insert(o.key + (o.IsLse() ? "#L" : "#C"));
  }
  for (const auto& o : tree) {
    tree_keys.insert(o.key + (o.IsLse() ? "#L" : "#C"));
  }
  EXPECT_EQ(block_keys, tree_keys);
}

TEST(TreeWise, BudgetTruncationReported) {
  const DataCatalog catalog = SearchCatalog();
  const SearchSpace space = SpaceFor(DfpScript("ds", 5), catalog);
  SearchReport report;
  TreeWiseSearch(space, /*budget=*/100, &report);
  EXPECT_EQ(report.windows_visited, -1);  // truncated
}

TEST(TreeWise, VisitsFarMoreNodesThanBlockWise) {
  const DataCatalog catalog = SearchCatalog();
  const SearchSpace space = SpaceFor(DfpScript("ds", 5), catalog);
  SearchReport block_report;
  BlockWiseSearch(space, &block_report);
  int64_t budget = 2000000;
  SearchReport tree_report;
  TreeWiseSearch(space, budget, &tree_report);
  // The duplicated-search blowup of Section 3.1.
  EXPECT_GT(tree_report.wall_seconds, 0.0);
  EXPECT_GT(tree_report.wall_seconds, block_report.wall_seconds);
}

TEST(Sampled, FindsSubsetOfCseAndNoLse) {
  const DataCatalog catalog = SearchCatalog();
  const SearchSpace space = SpaceFor(DfpScript("ds", 5), catalog);
  const auto full = BlockWiseSearch(space, nullptr);
  const auto sampled = SampledSearch(space, 3, 8, nullptr);
  std::set<std::string> full_keys;
  for (const auto& o : full) full_keys.insert(o.key);
  size_t lse = 0;
  for (const auto& o : sampled) {
    EXPECT_TRUE(full_keys.count(o.key)) << o.ToString();
    lse += o.IsLse();
  }
  EXPECT_EQ(lse, 0u);                       // SPORES finds no LSE
  EXPECT_LT(sampled.size(), full.size());   // and misses long-chain CSE
}

TEST(Options, ConflictSemantics) {
  EliminationOption a;
  a.occurrences = {{0, 2, 5, true}};
  EliminationOption b;
  b.occurrences = {{0, 3, 6, true}};  // partial overlap
  EliminationOption c;
  c.occurrences = {{0, 3, 5, true}};  // nested inside a
  EliminationOption d;
  d.occurrences = {{1, 2, 5, true}};  // other block
  EliminationOption e;
  e.occurrences = {{0, 2, 5, true}};  // identical range
  EXPECT_TRUE(OptionsConflict(a, b));
  EXPECT_FALSE(OptionsConflict(a, c));
  EXPECT_FALSE(OptionsConflict(a, d));
  EXPECT_TRUE(OptionsConflict(a, e));
}

}  // namespace
}  // namespace remac
