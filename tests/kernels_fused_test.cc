#include <gtest/gtest.h>

#include <cstring>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "data/generators.h"
#include "matrix/kernels.h"
#include "obs/metrics.h"
#include "plan/plan_builder.h"
#include "runtime/executor.h"

/// Bitwise-identity tests for the kernel layer (ISSUE 5): fused
/// transpose-multiply vs materialize-then-multiply for every format combo
/// and transpose pattern, blocked GEMM vs the naive reference, and
/// thread-count determinism for the parallel/chunked kernels. Suites are
/// named Kernels* so scripts/check.sh runs them under TSan/ASan/UBSan.

namespace remac {
namespace {

Matrix RandomMatrix(int64_t rows, int64_t cols, double sparsity,
                    uint64_t seed, bool force_dense_format) {
  Rng rng(seed);
  DenseMatrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) {
    if (rng.NextDouble() < sparsity) m.data()[i] = rng.NextGaussian();
  }
  if (force_dense_format) return Matrix::WrapDense(std::move(m));
  return Matrix::WrapCsr(CsrMatrix::FromDense(m));
}

/// Exact equality: same storage format, same structure, and bit-identical
/// value arrays (memcmp, so -0.0 vs 0.0 or differing NaN payloads fail).
::testing::AssertionResult BitwiseEqual(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return ::testing::AssertionFailure() << "shape mismatch";
  }
  if (a.is_dense() != b.is_dense()) {
    return ::testing::AssertionFailure()
           << "format mismatch: " << (a.is_dense() ? "dense" : "csr") << " vs "
           << (b.is_dense() ? "dense" : "csr");
  }
  if (a.is_dense()) {
    const int64_t bytes = a.dense().size() * static_cast<int64_t>(sizeof(double));
    if (bytes > 0 &&
        std::memcmp(a.dense().data(), b.dense().data(), bytes) != 0) {
      return ::testing::AssertionFailure() << "dense payload differs";
    }
    return ::testing::AssertionSuccess();
  }
  const CsrMatrix& sa = a.csr();
  const CsrMatrix& sb = b.csr();
  if (sa.row_ptr() != sb.row_ptr()) {
    return ::testing::AssertionFailure() << "row_ptr differs";
  }
  if (sa.col_idx() != sb.col_idx()) {
    return ::testing::AssertionFailure() << "col_idx differs";
  }
  if (sa.nnz() > 0 && std::memcmp(sa.values().data(), sb.values().data(),
                                  sa.nnz() * sizeof(double)) != 0) {
    return ::testing::AssertionFailure() << "csr values differ";
  }
  return ::testing::AssertionSuccess();
}

/// Restores the hardware-default thread count even on test failure.
struct ThreadGuard {
  ~ThreadGuard() { SetKernelThreads(0); }
};

/// Fused vs materialized across all 4 format combos x 3 transpose
/// patterns x {1, 2, 8} threads.
class KernelsFusedTest
    : public ::testing::TestWithParam<std::tuple<bool, bool, int>> {};

void CheckFusedAgainstMaterialized(const Matrix& a, bool a_t, const Matrix& b,
                                   bool b_t) {
  const Matrix ea = a_t ? Transpose(a) : a;
  const Matrix eb = b_t ? Transpose(b) : b;
  auto expected = Multiply(ea, eb);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();
  auto fused = MultiplyTransposed(a, a_t, b, b_t);
  ASSERT_TRUE(fused.ok()) << fused.status().ToString();
  EXPECT_TRUE(BitwiseEqual(*fused, *expected))
      << "a_t=" << a_t << " b_t=" << b_t << " a_dense=" << a.is_dense()
      << " b_dense=" << b.is_dense();
}

TEST_P(KernelsFusedTest, BitwiseMatchesMaterializedMultiply) {
  const auto [a_dense, b_dense, threads] = GetParam();
  ThreadGuard guard;
  SetKernelThreads(threads);
  // Effective product: (17 x 23) * (23 x 11).
  const int64_t m = 17, k = 23, n = 11;
  // AᵀB: stored A is k x m.
  CheckFusedAgainstMaterialized(RandomMatrix(k, m, 0.35, 21, a_dense), true,
                                RandomMatrix(k, n, 0.35, 22, b_dense), false);
  // ABᵀ: stored B is n x k.
  CheckFusedAgainstMaterialized(RandomMatrix(m, k, 0.35, 23, a_dense), false,
                                RandomMatrix(n, k, 0.35, 24, b_dense), true);
  // AᵀBᵀ: both stored transposed.
  CheckFusedAgainstMaterialized(RandomMatrix(k, m, 0.35, 25, a_dense), true,
                                RandomMatrix(n, k, 0.35, 26, b_dense), true);
}

TEST_P(KernelsFusedTest, EdgeShapes) {
  const auto [a_dense, b_dense, threads] = GetParam();
  ThreadGuard guard;
  SetKernelThreads(threads);
  // Empty output rows: effective (0 x 5) * (5 x 3).
  CheckFusedAgainstMaterialized(RandomMatrix(5, 0, 1.0, 31, a_dense), true,
                                RandomMatrix(5, 3, 1.0, 32, b_dense), false);
  // Empty shared dimension: effective (4 x 0) * (0 x 3).
  CheckFusedAgainstMaterialized(RandomMatrix(0, 4, 1.0, 33, a_dense), true,
                                RandomMatrix(3, 0, 1.0, 34, b_dense), true);
  // Single row / column: effective (1 x 7) * (7 x 1).
  CheckFusedAgainstMaterialized(RandomMatrix(7, 1, 0.8, 35, a_dense), true,
                                RandomMatrix(1, 7, 0.8, 36, b_dense), true);
  // 1 x N times N x N (vector-matrix through the fused path).
  CheckFusedAgainstMaterialized(RandomMatrix(1, 9, 0.8, 37, a_dense), false,
                                RandomMatrix(9, 9, 0.5, 38, b_dense), true);
}

INSTANTIATE_TEST_SUITE_P(AllFormatsAndThreads, KernelsFusedTest,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool(),
                                            ::testing::Values(1, 2, 8)));

TEST(KernelsFused, DimensionMismatchUsesEffectiveDims) {
  const Matrix a = RandomMatrix(3, 4, 1.0, 41, true);
  const Matrix b = RandomMatrix(3, 4, 1.0, 42, true);
  // Aᵀ (4 x 3) times B (3 x 4) is valid; A times B is not.
  EXPECT_TRUE(MultiplyTransposed(a, true, b, false).ok());
  EXPECT_EQ(MultiplyTransposed(a, false, b, false).status().code(),
            StatusCode::kDimensionMismatch);
  // Aᵀ (4 x 3) times Bᵀ (4 x 3) is not valid.
  EXPECT_EQ(MultiplyTransposed(a, true, b, true).status().code(),
            StatusCode::kDimensionMismatch);
}

TEST(KernelsFused, NoTransposeFlagsDelegatesToMultiply) {
  const Matrix a = RandomMatrix(6, 7, 0.5, 43, true);
  const Matrix b = RandomMatrix(7, 5, 0.5, 44, false);
  auto plain = Multiply(a, b);
  auto fused = MultiplyTransposed(a, false, b, false);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(fused.ok());
  EXPECT_TRUE(BitwiseEqual(*fused, *plain));
}

TEST(KernelsFused, BumpsFusedMetricsAndAvoidsTransposeKernel) {
  auto& reg = MetricsRegistry::Global();
  Counter* fused = reg.GetCounter("remac.kernel.fused_transpose");
  Counter* transposes = reg.GetCounter("remac.kernel.transposes");
  Counter* bytes_avoided = reg.GetCounter("remac.kernel.fused_bytes_avoided");
  const Matrix a = RandomMatrix(40, 30, 0.5, 45, true);
  const Matrix b = RandomMatrix(40, 20, 0.5, 46, true);
  const int64_t fused_before = fused->Value();
  const int64_t transposes_before = transposes->Value();
  const int64_t bytes_before = bytes_avoided->Value();
  ASSERT_TRUE(MultiplyTransposed(a, true, b, false).ok());
  EXPECT_EQ(fused->Value(), fused_before + 1);
  EXPECT_EQ(transposes->Value(), transposes_before);
  EXPECT_EQ(bytes_avoided->Value() - bytes_before,
            static_cast<int64_t>(a.SizeInBytes()));
}

/// Blocked GEMM must be bit-identical to the naive reference, which is in
/// turn bit-identical to a textbook triple loop (per output element the
/// shared index ascends and the accumulator starts at +0.0).
class KernelsBlockedGemmTest : public ::testing::TestWithParam<int> {};

TEST_P(KernelsBlockedGemmTest, BitwiseMatchesNaive) {
  ThreadGuard guard;
  SetKernelThreads(GetParam());
  // Shapes straddling the MR=8 / NC=64 tile boundaries, with zeros so the
  // v == 0.0 skip path is exercised.
  const struct {
    int64_t m, k, n;
  } shapes[] = {{150, 70, 130}, {8, 64, 64}, {9, 65, 65}, {1, 40, 200}};
  for (const auto& s : shapes) {
    const Matrix a = RandomMatrix(s.m, s.k, 0.6, 51 + s.m, true);
    const Matrix b = RandomMatrix(s.k, s.n, 0.6, 52 + s.n, true);
    auto blocked = Multiply(a, b);
    auto naive = MultiplyReferenceNaive(a, b);
    ASSERT_TRUE(blocked.ok());
    ASSERT_TRUE(naive.ok());
    EXPECT_TRUE(BitwiseEqual(*blocked, *naive))
        << s.m << "x" << s.k << "x" << s.n;
    // Cross-check the reference against a textbook triple loop.
    DenseMatrix c(s.m, s.n);
    const DenseMatrix da = a.ToDense();
    const DenseMatrix db = b.ToDense();
    for (int64_t i = 0; i < s.m; ++i) {
      for (int64_t j = 0; j < s.k; ++j) {
        const double v = da.At(i, j);
        if (v == 0.0) continue;
        for (int64_t x = 0; x < s.n; ++x) c.At(i, x) += v * db.At(j, x);
      }
    }
    EXPECT_TRUE(BitwiseEqual(*naive, Matrix::WrapDense(std::move(c))));
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, KernelsBlockedGemmTest,
                         ::testing::Values(1, 2, 8));

/// Every parallelized kernel must produce the same bits at any thread
/// count (chunk boundaries depend only on KernelThreads(); reductions use
/// fixed-size chunks folded in order).
TEST(KernelsDeterminism, ThreadCountInvariance) {
  ThreadGuard guard;
  // Big enough to parallelize and to span many reduction chunks.
  const Matrix dense = RandomMatrix(300, 500, 0.7, 61, true);
  const Matrix sparse = RandomMatrix(300, 500, 0.05, 62, false);
  const Matrix dense2 = RandomMatrix(300, 500, 0.7, 63, true);

  SetKernelThreads(1);
  const double sum1 = SumAll(dense);
  const double norm1 = FrobeniusNorm(dense);
  const double ssum1 = SumAll(sparse);
  const Matrix t1 = Transpose(dense);
  const Matrix add1 = Add(dense, dense2).value();
  const Matrix scale1 = ScalarMultiply(dense, 1.7);
  const Matrix shift1 = ScalarAdd(sparse, 0.25);

  for (int threads : {2, 8}) {
    SetKernelThreads(threads);
    EXPECT_EQ(SumAll(dense), sum1) << threads;
    EXPECT_EQ(FrobeniusNorm(dense), norm1) << threads;
    EXPECT_EQ(SumAll(sparse), ssum1) << threads;
    EXPECT_TRUE(BitwiseEqual(Transpose(dense), t1)) << threads;
    EXPECT_TRUE(BitwiseEqual(Add(dense, dense2).value(), add1)) << threads;
    EXPECT_TRUE(BitwiseEqual(ScalarMultiply(dense, 1.7), scale1)) << threads;
    EXPECT_TRUE(BitwiseEqual(ScalarAdd(sparse, 0.25), shift1)) << threads;
  }
}

TEST(KernelsDeterminism, WideShortShapesStillExact) {
  ThreadGuard guard;
  // 20 x 30000: the old rows < 256 cutoff kept this serial; the
  // element-count heuristic parallelizes it. Results must not change.
  const Matrix a = RandomMatrix(20, 30000, 0.9, 64, true);
  const Matrix b = RandomMatrix(20, 30000, 0.9, 65, true);
  SetKernelThreads(1);
  const Matrix sum_serial = Add(a, b).value();
  const double norm_serial = FrobeniusNorm(a);
  SetKernelThreads(8);
  EXPECT_TRUE(BitwiseEqual(Add(a, b).value(), sum_serial));
  EXPECT_EQ(FrobeniusNorm(a), norm_serial);
}

TEST(KernelsDeterminism, SparseMultiplyThreadInvariant) {
  ThreadGuard guard;
  const Matrix a = RandomMatrix(400, 300, 0.05, 66, false);
  const Matrix b = RandomMatrix(300, 350, 0.05, 67, false);
  SetKernelThreads(1);
  const Matrix serial = Multiply(a, b).value();
  for (int threads : {2, 8}) {
    SetKernelThreads(threads);
    EXPECT_TRUE(BitwiseEqual(Multiply(a, b).value(), serial)) << threads;
  }
}

/// End-to-end: a t(X) %*% X script goes through the executor's transpose
/// unwrapping into the fused kernels — zero transpose materializations.
TEST(KernelsExecutorFusion, ScriptNeverMaterializesTranspose) {
  DataCatalog catalog;
  DatasetSpec spec;
  spec.name = "X";
  spec.rows = 60;
  spec.cols = 8;
  spec.sparsity = 0.6;
  spec.seed = 71;
  ASSERT_TRUE(RegisterDataset(&catalog, spec).ok());
  auto program = CompileScript("X = read(\"X\");\nG = t(X) %*% X;\n", catalog);
  ASSERT_TRUE(program.ok()) << program.status().ToString();

  auto& reg = MetricsRegistry::Global();
  Counter* fused = reg.GetCounter("remac.kernel.fused_transpose");
  Counter* transposes = reg.GetCounter("remac.kernel.transposes");
  const int64_t fused_before = fused->Value();
  const int64_t transposes_before = transposes->Value();

  Executor executor(ClusterModel(), &catalog, nullptr);
  ASSERT_TRUE(executor.Run(program->statements, 100).ok());

  EXPECT_GE(fused->Value(), fused_before + 1);
  EXPECT_EQ(transposes->Value(), transposes_before);

  // And the fused result matches the explicitly materialized product.
  auto g = executor.Get("G");
  ASSERT_TRUE(g.ok());
  auto program2 = CompileScript(
      "X = read(\"X\");\nT = t(X);\nG2 = T %*% X;\n", catalog);
  ASSERT_TRUE(program2.ok());
  Executor executor2(ClusterModel(), &catalog, nullptr);
  ASSERT_TRUE(executor2.Run(program2->statements, 100).ok());
  auto g2 = executor2.Get("G2");
  ASSERT_TRUE(g2.ok());
  EXPECT_TRUE(BitwiseEqual(g->matrix, g2->matrix));
}

}  // namespace
}  // namespace remac
