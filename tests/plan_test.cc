#include <gtest/gtest.h>

#include "matrix/kernels.h"
#include "plan/plan_builder.h"
#include "plan/plan_node.h"

namespace remac {
namespace {

DataCatalog TestCatalog() {
  DataCatalog catalog;
  DenseMatrix a(20, 5);
  for (int64_t i = 0; i < a.size(); ++i) a.data()[i] = 1.0 + i;
  catalog.Register("A", Matrix::WrapDense(std::move(a)));
  DenseMatrix b(20, 1);
  for (int64_t i = 0; i < b.size(); ++i) b.data()[i] = 2.0;
  catalog.Register("b", Matrix::WrapDense(std::move(b)));
  return catalog;
}

TEST(Catalog, RegisterDerivesStats) {
  const DataCatalog catalog = TestCatalog();
  auto stats = catalog.Stats("A");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->rows, 20);
  EXPECT_EQ(stats->cols, 5);
  EXPECT_DOUBLE_EQ(stats->sparsity, 1.0);
  EXPECT_EQ(stats->row_counts.size(), 20u);
  EXPECT_EQ(stats->col_counts.size(), 5u);
}

TEST(Catalog, MissingEntries) {
  const DataCatalog catalog = TestCatalog();
  EXPECT_FALSE(catalog.Contains("missing"));
  EXPECT_EQ(catalog.Stats("missing").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(catalog.Value("missing").status().code(), StatusCode::kNotFound);
}

TEST(PlanBuilder, ShapesInferredThroughStatements) {
  const DataCatalog catalog = TestCatalog();
  auto program = CompileScript(
      "A = read(\"A\");\n"
      "x = zeros(ncol(A), 1);\n"
      "y = A %*% x;\n",
      catalog);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const CompiledStmt& y = program->statements[2];
  EXPECT_EQ(y.plan->shape.rows, 20);
  EXPECT_EQ(y.plan->shape.cols, 1);
}

TEST(PlanBuilder, NcolFoldsToConstant) {
  const DataCatalog catalog = TestCatalog();
  auto program = CompileScript("A = read(\"A\");\nn = ncol(A);\n", catalog);
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->statements[1].plan->op, PlanOp::kConst);
  EXPECT_DOUBLE_EQ(program->statements[1].plan->value, 5.0);
}

TEST(PlanBuilder, UnaryMinusBecomesScalarMultiply) {
  const DataCatalog catalog = TestCatalog();
  auto program = CompileScript(
      "A = read(\"A\");\ny = -A;\n", catalog);
  ASSERT_TRUE(program.ok());
  const PlanNode& plan = *program->statements[1].plan;
  EXPECT_EQ(plan.op, PlanOp::kMul);
  EXPECT_EQ(plan.children[0]->op, PlanOp::kConst);
  EXPECT_DOUBLE_EQ(plan.children[0]->value, -1.0);
}

TEST(PlanBuilder, MatMulDimensionMismatch) {
  const DataCatalog catalog = TestCatalog();
  auto program = CompileScript(
      "A = read(\"A\");\ny = A %*% A;\n", catalog);
  EXPECT_EQ(program.status().code(), StatusCode::kDimensionMismatch);
}

TEST(PlanBuilder, UndefinedVariable) {
  const DataCatalog catalog = TestCatalog();
  auto program = CompileScript("y = nope + 1;\n", catalog);
  EXPECT_EQ(program.status().code(), StatusCode::kNotFound);
}

TEST(PlanBuilder, UnknownDataset) {
  const DataCatalog catalog = TestCatalog();
  auto program = CompileScript("y = read(\"nope\");\n", catalog);
  EXPECT_EQ(program.status().code(), StatusCode::kNotFound);
}

TEST(PlanBuilder, UnknownFunction) {
  const DataCatalog catalog = TestCatalog();
  auto program = CompileScript("y = frobnicate(1);\n", catalog);
  EXPECT_EQ(program.status().code(), StatusCode::kNotFound);
}

TEST(PlanBuilder, ScalarMatMulDegradesToMul) {
  const DataCatalog catalog = TestCatalog();
  auto program = CompileScript(
      "A = read(\"A\");\ns = 2;\ny = s %*% A;\n", catalog);
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->statements[2].plan->op, PlanOp::kMul);
}

TEST(PlanBuilder, WhileConditionCompiles) {
  const DataCatalog catalog = TestCatalog();
  auto program = CompileScript(
      "i = 0;\nwhile (i < 3) {\n  i = i + 1;\n}\n", catalog);
  ASSERT_TRUE(program.ok());
  const CompiledStmt& loop = program->statements[1];
  EXPECT_EQ(loop.kind, CompiledStmt::Kind::kLoop);
  ASSERT_NE(loop.condition, nullptr);
  EXPECT_EQ(loop.condition->op, PlanOp::kLess);
}

TEST(PlanBuilder, ForLoopStaticTripCount) {
  const DataCatalog catalog = TestCatalog();
  auto program = CompileScript(
      "x = 1;\nfor (k in 2:6) {\n  x = x + k;\n}\n", catalog);
  ASSERT_TRUE(program.ok());
  const CompiledStmt& loop = program->statements[1];
  EXPECT_EQ(loop.static_trip_count, 5);
  EXPECT_DOUBLE_EQ(loop.loop_begin, 2.0);
}

TEST(PlanNode, EqualsAndClone) {
  const DataCatalog catalog = TestCatalog();
  auto p1 = CompileScript("A = read(\"A\");\ny = t(A) %*% A;\n", catalog);
  auto p2 = CompileScript("A = read(\"A\");\ny = t(A) %*% A;\n", catalog);
  ASSERT_TRUE(p1.ok() && p2.ok());
  const PlanNode& a = *p1->statements[1].plan;
  const PlanNode& b = *p2->statements[1].plan;
  EXPECT_TRUE(PlanNode::Equals(a, b));
  EXPECT_TRUE(PlanNode::Equals(a, *a.Clone()));
  EXPECT_FALSE(PlanNode::Equals(a, *p1->statements[0].plan));
}

TEST(PlanNode, CountNodes) {
  const DataCatalog catalog = TestCatalog();
  auto program =
      CompileScript("A = read(\"A\");\ny = t(A) %*% A;\n", catalog);
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(CountNodes(*program->statements[1].plan), 4);  // mm, t, A, A
}

TEST(PlanNode, ShapeScalarLike) {
  Shape scalar{1, 1, true};
  Shape one_by_one{1, 1, false};
  Shape matrix{3, 4, false};
  EXPECT_TRUE(scalar.ScalarLike());
  EXPECT_TRUE(one_by_one.ScalarLike());
  EXPECT_FALSE(matrix.ScalarLike());
}

}  // namespace
}  // namespace remac
