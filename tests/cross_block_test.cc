#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/analysis.h"
#include "core/cross_block.h"
#include "data/generators.h"
#include "plan/plan_builder.h"
#include "runtime/program_runner.h"

namespace remac {
namespace {

DataCatalog XbCatalog() {
  DataCatalog catalog;
  Rng rng(55);
  auto add = [&](const std::string& name, int64_t rows, int64_t cols,
                 uint64_t seed) {
    DatasetSpec spec;
    spec.name = name;
    spec.rows = rows;
    spec.cols = cols;
    spec.sparsity = 0.6;
    spec.seed = seed;
    catalog.Register(name, GenerateMatrix(spec));
  };
  add("P", 12, 12, 1);
  add("X", 12, 12, 2);
  add("Y", 12, 12, 3);
  add("Z", 12, 12, 4);
  add("Q", 12, 12, 5);
  return catalog;
}

/// The paper's example: P XY + P YZ + XY Q + YZ Q has a grouped common
/// subexpression XY + YZ across four blocks.
const char* kPaperExample =
    "P = read(\"P\");\n"
    "X = read(\"X\");\n"
    "Y = read(\"Y\");\n"
    "Z = read(\"Z\");\n"
    "Q = read(\"Q\");\n"
    "i = 0;\n"
    "while (i < 2) {\n"
    "  R = P %*% X %*% Y + P %*% Y %*% Z + X %*% Y %*% Q "
    "+ Y %*% Z %*% Q;\n"
    "  P = P + R;\n"
    "  i = i + 1;\n"
    "}\n";

TEST(CrossBlock, FindsThePaperExample) {
  const DataCatalog catalog = XbCatalog();
  auto program = CompileScript(kPaperExample, catalog);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const LoopStructure loop = FindLoop(*program);
  auto outputs = InlineLoopBody(loop.loop->body);
  ASSERT_TRUE(outputs.ok());
  const size_t before = outputs->size();
  auto options = ApplyCrossBlockCse(&*outputs, loop.loop_assigned);
  ASSERT_TRUE(options.ok()) << options.status().ToString();
  ASSERT_EQ(options->size(), 1u);
  EXPECT_EQ((*options)[0].num_sites, 2);
  // A temp statement computing XY + YZ was inserted.
  EXPECT_EQ(outputs->size(), before + 1);
  bool found_temp = false;
  for (const auto& out : *outputs) {
    found_temp = found_temp || out.target == (*options)[0].temp_name;
  }
  EXPECT_TRUE(found_temp);
}

TEST(CrossBlock, NoFalsePositivesOnDfp) {
  DataCatalog catalog;
  DatasetSpec spec;
  spec.name = "ds";
  spec.rows = 100;
  spec.cols = 8;
  spec.sparsity = 0.5;
  spec.seed = 9;
  ASSERT_TRUE(RegisterDataset(&catalog, spec).ok());
  auto program = CompileScript(
      "A = read(\"ds\");\nb = read(\"ds_b\");\n"
      "x = zeros(8, 1);\nH = eye(8);\ni = 0;\n"
      "while (i < 2) {\n"
      "  g = t(A) %*% (A %*% x - b);\n"
      "  x = x - 0.1 * (H %*% g);\n"
      "  i = i + 1;\n"
      "}\n",
      catalog);
  ASSERT_TRUE(program.ok());
  const LoopStructure loop = FindLoop(*program);
  auto outputs = InlineLoopBody(loop.loop->body);
  ASSERT_TRUE(outputs.ok());
  auto options = ApplyCrossBlockCse(&*outputs, loop.loop_assigned);
  ASSERT_TRUE(options.ok());
  EXPECT_TRUE(options->empty());
}

TEST(CrossBlock, EndToEndValuePreserved) {
  const DataCatalog catalog = XbCatalog();
  RunConfig reference;
  reference.optimizer = OptimizerKind::kAsWritten;
  reference.max_iterations = 2;
  auto expected = RunScript(kPaperExample, catalog, reference);
  ASSERT_TRUE(expected.ok());
  RunConfig config;
  config.optimizer = OptimizerKind::kRemacAdaptive;
  config.max_iterations = 2;
  auto run = RunScript(kPaperExample, catalog, config);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_GT(run->optimize.applied_cross_block, 0);
  EXPECT_TRUE(run->env.at("P").AsMatrix().ApproxEquals(
      expected->env.at("P").AsMatrix(), 1e-6));
}

TEST(CrossBlock, VersionMismatchBlocksUnification) {
  // The "same" grouped sum, but one site reads M after it was updated:
  // the two sites must not unify.
  const DataCatalog catalog = XbCatalog();
  auto program = CompileScript(
      "P = read(\"P\");\nX = read(\"X\");\nY = read(\"Y\");\n"
      "Z = read(\"Z\");\nQ = read(\"Q\");\nM = read(\"X\");\ni = 0;\n"
      "while (i < 2) {\n"
      "  R = P %*% M %*% Y + P %*% Y %*% Z;\n"
      "  M = M + M;\n"
      "  S = M %*% Y %*% Q + Y %*% Z %*% Q;\n"
      "  i = i + 1;\n"
      "}\n",
      catalog);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const LoopStructure loop = FindLoop(*program);
  auto outputs = InlineLoopBody(loop.loop->body);
  ASSERT_TRUE(outputs.ok());
  auto options = ApplyCrossBlockCse(&*outputs, loop.loop_assigned);
  ASSERT_TRUE(options.ok());
  // The grouped sums are "M Y + Y Z" at version 0 of M (in R) and at
  // version 1 of M (in S) — different values, no unification.
  EXPECT_TRUE(options->empty());
  // And the rewritten program still executes to the right values.
  RunConfig config;
  config.optimizer = OptimizerKind::kRemacAdaptive;
  config.max_iterations = 2;
  auto run = RunScript(program->ToString(), catalog, config);
  ASSERT_TRUE(run.ok());
}

}  // namespace
}  // namespace remac
