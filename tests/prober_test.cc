#include <gtest/gtest.h>

#include "algorithms/scripts.h"
#include "core/block_search.h"
#include "core/cost_graph.h"
#include "core/dp_prober.h"
#include "core/enumerator.h"
#include "core/strategies.h"
#include "data/generators.h"
#include "plan/plan_builder.h"
#include "sparsity/estimator.h"

namespace remac {
namespace {

struct ProbeFixture {
  DataCatalog catalog;
  CompiledProgram program;
  SearchSpace space;
  std::vector<EliminationOption> options;
  MetadataEstimator estimator;
  std::unique_ptr<CostModel> cost_model;
  VarStats vars;
  std::unique_ptr<CostGraph> graph;

  explicit ProbeFixture(const std::string& script) {
    DatasetSpec spec;
    spec.name = "ds";
    spec.rows = 40000;
    spec.cols = 32;
    spec.sparsity = 0.02;
    spec.seed = 5;
    EXPECT_TRUE(RegisterDataset(&catalog, spec).ok());
    program = CompileScript(script, catalog).value();
    LoopStructure loop = FindLoop(program);
    auto outputs = InlineLoopBody(loop.loop->body).value();
    space = BuildSearchSpace(outputs, loop.loop_assigned,
                             InferSymmetricVars(loop))
                .value();
    options = BlockWiseSearch(space, nullptr);
    cost_model = std::make_unique<CostModel>(ClusterModel(), &estimator,
                                             &catalog);
    vars = PropagateProgramStats(program, catalog, *cost_model).value();
    graph = std::make_unique<CostGraph>(&space, cost_model.get(), &vars, 20);
    EXPECT_TRUE(graph->Build().ok());
  }

  double Cost(const std::vector<const EliminationOption*>& combo) const {
    return graph->Evaluate(combo).value().per_iteration_seconds;
  }
};

TEST(AdaptiveProbe, NeverWorseThanBaseline) {
  ProbeFixture f(DfpScript("ds", 20));
  ProbeReport report;
  auto chosen = AdaptiveProbe(*f.graph, f.options, &report);
  ASSERT_TRUE(chosen.ok());
  EXPECT_LE(report.chosen_cost, report.baseline_cost + 1e-12);
  EXPECT_GT(report.evaluations, 0);
  // The returned set evaluates to the reported cost.
  EXPECT_NEAR(f.Cost(chosen.value()), report.chosen_cost, 1e-12);
}

TEST(AdaptiveProbe, ChosenSetIsConflictFree) {
  ProbeFixture f(BfgsScript("ds", 20));
  auto chosen = AdaptiveProbe(*f.graph, f.options, nullptr);
  ASSERT_TRUE(chosen.ok());
  for (size_t i = 0; i < chosen->size(); ++i) {
    for (size_t j = i + 1; j < chosen->size(); ++j) {
      EXPECT_FALSE(OptionsConflict(*(*chosen)[i], *(*chosen)[j]));
    }
  }
}

TEST(AdaptiveProbe, LocallyOptimal) {
  // No remaining compatible option can improve the chosen set further.
  ProbeFixture f(DfpScript("ds", 20));
  auto chosen = AdaptiveProbe(*f.graph, f.options, nullptr);
  ASSERT_TRUE(chosen.ok());
  const double final_cost = f.Cost(chosen.value());
  for (const auto& opt : f.options) {
    bool in_or_conflicting = false;
    for (const auto* picked : chosen.value()) {
      if (picked == &opt || OptionsConflict(*picked, opt)) {
        in_or_conflicting = true;
        break;
      }
    }
    if (in_or_conflicting) continue;
    auto combo = chosen.value();
    combo.push_back(&opt);
    auto cost = f.graph->Evaluate(combo);
    if (!cost.ok()) continue;
    EXPECT_GE(cost->per_iteration_seconds, final_cost - 1e-12)
        << "probe missed improving option " << opt.ToString();
  }
}

TEST(Enumerate, ExhaustiveOnSmallSetsMatchesOrBeatsGreedy) {
  ProbeFixture f(GdScript("ds", 20));
  ASSERT_LE(f.options.size(), 12u) << "GD option set should be small";
  ProbeReport dp_report;
  auto dp = AdaptiveProbe(*f.graph, f.options, &dp_report);
  ASSERT_TRUE(dp.ok());
  ProbeReport enum_report;
  auto best = EnumerateCombinations(*f.graph, f.options, true, 1000000,
                                    &enum_report);
  ASSERT_TRUE(best.ok());
  // Exhaustive enumeration is optimal; greedy DP must be within a small
  // factor (and is usually identical).
  EXPECT_LE(enum_report.chosen_cost, dp_report.chosen_cost + 1e-12);
  EXPECT_LE(dp_report.chosen_cost, enum_report.chosen_cost * 1.25);
}

TEST(Enumerate, DepthAndBreadthFindSameOptimum) {
  ProbeFixture f(GdScript("ds", 20));
  ProbeReport df;
  ProbeReport bf;
  ASSERT_TRUE(
      EnumerateCombinations(*f.graph, f.options, true, 1000000, &df).ok());
  ASSERT_TRUE(
      EnumerateCombinations(*f.graph, f.options, false, 1000000, &bf).ok());
  EXPECT_NEAR(df.chosen_cost, bf.chosen_cost, 1e-12);
}

TEST(Enumerate, BudgetCapsEvaluations) {
  ProbeFixture f(DfpScript("ds", 20));
  ProbeReport report;
  ASSERT_TRUE(
      EnumerateCombinations(*f.graph, f.options, true, 50, &report).ok());
  EXPECT_LE(report.evaluations, 52);
}

TEST(Enumerate, ExploresFarMoreThanDp) {
  ProbeFixture f(DfpScript("ds", 20));
  ProbeReport dp_report;
  ASSERT_TRUE(AdaptiveProbe(*f.graph, f.options, &dp_report).ok());
  ProbeReport enum_report;
  ASSERT_TRUE(EnumerateCombinations(*f.graph, f.options, true, 100000,
                                    &enum_report)
                  .ok());
  // The combinatorial explosion: Enum burns its whole budget.
  EXPECT_GT(enum_report.evaluations, dp_report.evaluations * 5);
}

TEST(Strategies, ConservativeOnlyOrderPreservingAndNeverWorse) {
  ProbeFixture f(DfpScript("ds", 20));
  ProbeReport report;
  auto chosen = ConservativePick(*f.graph, f.options, &report);
  ASSERT_TRUE(chosen.ok());
  for (const auto* opt : chosen.value()) {
    EXPECT_TRUE(PreservesOriginalOrder(*f.graph, *opt)) << opt->ToString();
  }
  EXPECT_LE(report.chosen_cost, report.baseline_cost + 1e-12);
}

TEST(Strategies, AggressiveAppliesMoreThanConservative) {
  ProbeFixture f(DfpScript("ds", 20));
  auto conservative = ConservativePick(*f.graph, f.options, nullptr);
  auto aggressive = AggressivePick(*f.graph, f.options, nullptr);
  ASSERT_TRUE(conservative.ok());
  ASSERT_TRUE(aggressive.ok());
  EXPECT_GE(aggressive->size(), conservative->size());
}

TEST(Strategies, AdaptiveBeatsOrMatchesBothStrategies) {
  for (const char* algo : {"dfp", "bfgs"}) {
    ProbeFixture f(algo == std::string("dfp") ? DfpScript("ds", 20)
                                              : BfgsScript("ds", 20));
    ProbeReport cons;
    ProbeReport aggr;
    ProbeReport adap;
    ASSERT_TRUE(ConservativePick(*f.graph, f.options, &cons).ok());
    ASSERT_TRUE(AggressivePick(*f.graph, f.options, &aggr).ok());
    ASSERT_TRUE(AdaptiveProbe(*f.graph, f.options, &adap).ok());
    EXPECT_LE(adap.chosen_cost,
              std::min(cons.chosen_cost, aggr.chosen_cost) + 1e-9)
        << algo;
  }
}

}  // namespace
}  // namespace remac
