// Property-based sweeps: randomized scripts and datasets, with the
// invariant that redundancy elimination never changes program results,
// plus distribution-level properties of the generators and cost model.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/string_util.h"
#include "data/generators.h"
#include "distributed/distributed_ops.h"
#include "runtime/program_runner.h"

namespace remac {
namespace {

/// Generates a random loop body over A (dataset), M (square), u, w
/// (vectors) from a small grammar of matrix expressions.
std::string RandomScript(uint64_t seed) {
  Rng rng(seed);
  const char* kVectorExprs[] = {
      "t(A) %*% (A %*% u)",
      "M %*% u",
      "t(A) %*% (A %*% (M %*% u))",
      "u + 0.5 * w",
      "M %*% (t(M) %*% w)",
      "t(A) %*% (A %*% w) - t(A) %*% (A %*% u)",
  };
  const char* kMatrixExprs[] = {
      "M + u %*% t(u)",
      "M %*% t(A) %*% A %*% M",
      "M - (M %*% u %*% t(u) %*% M) / (t(u) %*% M %*% u + 1)",
      "M %*% M",
      "t(A) %*% A + M",
  };
  std::string script =
      "A = read(\"prop\");\n"
      "M = eye(ncol(A));\n"
      "u = ones(ncol(A), 1);\n"
      "w = zeros(ncol(A), 1);\n"
      "i = 0;\n"
      "while (i < 3) {\n";
  const int statements = 2 + static_cast<int>(rng.NextBounded(3));
  for (int s = 0; s < statements; ++s) {
    if (rng.NextBounded(2) == 0) {
      script += std::string("  u = ") +
                kVectorExprs[rng.NextBounded(std::size(kVectorExprs))] +
                ";\n";
    } else {
      script += std::string("  M = ") +
                kMatrixExprs[rng.NextBounded(std::size(kMatrixExprs))] +
                ";\n";
    }
  }
  script += "  i = i + 1;\n}\n";
  return script;
}

class RandomProgramTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomProgramTest, EliminationPreservesSemantics) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  DataCatalog catalog;
  DatasetSpec spec;
  spec.name = "prop";
  spec.rows = 60 + (seed % 5) * 17;
  spec.cols = 6 + (seed % 3) * 2;
  spec.sparsity = 0.3 + 0.1 * (seed % 4);
  spec.seed = seed * 7 + 1;
  ASSERT_TRUE(RegisterDataset(&catalog, spec).ok());
  const std::string script = RandomScript(seed);

  RunConfig reference_config;
  reference_config.optimizer = OptimizerKind::kAsWritten;
  reference_config.max_iterations = 3;
  auto reference = RunScript(script, catalog, reference_config);
  ASSERT_TRUE(reference.ok()) << script << reference.status().ToString();

  for (OptimizerKind kind :
       {OptimizerKind::kSystemDs, OptimizerKind::kRemacAutomatic,
        OptimizerKind::kRemacAdaptive}) {
    RunConfig config;
    config.optimizer = kind;
    config.max_iterations = 3;
    auto run = RunScript(script, catalog, config);
    ASSERT_TRUE(run.ok()) << OptimizerKindName(kind) << "\n"
                          << script << run.status().ToString();
    for (const char* var : {"u", "M"}) {
      EXPECT_TRUE(run->env.at(var).AsMatrix().ApproxEquals(
          reference->env.at(var).AsMatrix(), 1e-6))
          << "variable " << var << " under " << OptimizerKindName(kind)
          << " for script:\n"
          << script;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTest, ::testing::Range(1, 17));

class GeneratorPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(GeneratorPropertyTest, HitsRequestedSparsity) {
  DatasetSpec spec;
  spec.name = "g";
  spec.rows = 5000;
  spec.cols = 200;
  spec.sparsity = 0.005;
  spec.zipf_rows = GetParam();
  spec.zipf_cols = GetParam();
  spec.seed = 42;
  const Matrix m = GenerateMatrix(spec);
  EXPECT_NEAR(m.Sparsity(), spec.sparsity, spec.sparsity * 0.1)
      << "zipf=" << GetParam();
}

TEST_P(GeneratorPropertyTest, SkewConcentratesColumnMass) {
  const double zipf = GetParam();
  DatasetSpec spec;
  spec.name = "g";
  spec.rows = 5000;
  spec.cols = 200;
  spec.sparsity = 0.01;
  spec.zipf_rows = zipf;
  spec.zipf_cols = zipf;
  spec.seed = 43;
  const Matrix m = GenerateMatrix(spec);
  const auto cols = m.ToCsr().ColCounts();
  int64_t head = 0;
  int64_t total = 0;
  for (size_t c = 0; c < cols.size(); ++c) {
    total += cols[c];
    if (c < cols.size() / 10) head += cols[c];
  }
  const double head_fraction =
      static_cast<double>(head) / static_cast<double>(total);
  if (zipf == 0.0) {
    EXPECT_NEAR(head_fraction, 0.1, 0.03);
  } else if (zipf >= 2.0) {
    // Distinct-columns-per-row sampling bounds how hard the head can
    // saturate; >60% of mass in the top decile is already extreme skew.
    EXPECT_GT(head_fraction, 0.6);
  }
}

INSTANTIATE_TEST_SUITE_P(ZipfSweep, GeneratorPropertyTest,
                         ::testing::Values(0.0, 0.7, 1.4, 2.1, 2.8));

TEST(GeneratorProperty, Deterministic) {
  const DatasetSpec spec = ZipfSpec(1.4);
  const Matrix a = GenerateMatrix(spec);
  const Matrix b = GenerateMatrix(spec);
  EXPECT_TRUE(a.ApproxEquals(b));
}

TEST(GeneratorProperty, LabelsFollowModel) {
  DataCatalog catalog;
  DatasetSpec spec;
  spec.name = "lbl";
  spec.rows = 200;
  spec.cols = 10;
  spec.sparsity = 0.5;
  spec.seed = 44;
  ASSERT_TRUE(RegisterDataset(&catalog, spec).ok());
  ASSERT_TRUE(catalog.Contains("lbl_b"));
  const Matrix b = catalog.Value("lbl_b").value();
  EXPECT_EQ(b.rows(), 200);
  EXPECT_EQ(b.cols(), 1);
}

/// Cost-model monotonicity: costs never decrease in any dimension or in
/// sparsity.
class CostMonotonicityTest : public ::testing::TestWithParam<int> {};

TEST_P(CostMonotonicityTest, MultiplySecondsMonotone) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 77);
  ClusterModel model;
  MatInfo a;
  a.rows = 1000 + static_cast<double>(rng.NextBounded(100000));
  a.cols = 8 + static_cast<double>(rng.NextBounded(512));
  a.sparsity = 0.001 + rng.NextDouble() * 0.5;
  a.distributed = rng.NextBounded(2) == 0;
  MatInfo b;
  b.rows = a.cols;
  b.cols = 1 + static_cast<double>(rng.NextBounded(256));
  b.sparsity = 0.001 + rng.NextDouble() * 0.5;
  b.distributed = rng.NextBounded(2) == 0;
  const double sp_out = rng.NextDouble();
  const OpCosting base = CostMultiply(a, b, sp_out, model);
  MatInfo bigger = a;
  bigger.rows *= 2;
  const OpCosting grown = CostMultiply(bigger, b, sp_out, model);
  // FLOPs are monotone unconditionally.
  EXPECT_GE(grown.flops, base.flops * 0.99);
  // Seconds are monotone within the same physical regime; crossing the
  // local->distributed boundary may legitimately *reduce* time (that is
  // SystemDS's dynamic switch working as intended).
  if (grown.method == base.method &&
      grown.result_distributed == base.result_distributed) {
    EXPECT_GE(grown.Seconds(model), base.Seconds(model) * 0.99);
  }
  MatInfo denser = a;
  denser.sparsity = std::min(1.0, a.sparsity * 2.0);
  const OpCosting dense_cost = CostMultiply(denser, b, sp_out, model);
  EXPECT_GE(dense_cost.flops, base.flops * 0.99);
  if (dense_cost.method == base.method &&
      dense_cost.result_distributed == base.result_distributed) {
    EXPECT_GE(dense_cost.Seconds(model), base.Seconds(model) * 0.99);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CostMonotonicityTest,
                         ::testing::Range(0, 16));

}  // namespace
}  // namespace remac
