#include <gtest/gtest.h>

#include "lang/parser.h"
#include "plan/chain.h"
#include "plan/plan_builder.h"
#include "plan/rewriter.h"

namespace remac {
namespace {

DataCatalog ChainCatalog() {
  DataCatalog catalog;
  auto add = [&](const std::string& name, int64_t rows, int64_t cols) {
    catalog.Register(name, Matrix::Zeros(rows, cols));
  };
  add("A", 50, 8);
  add("H", 8, 8);
  add("g", 8, 1);
  return catalog;
}

Decomposition Decompose(const std::string& expr, const DataCatalog& catalog,
                        bool mark_h_symmetric = false) {
  std::string script =
      "A = read(\"A\");\nH = read(\"H\");\ng = read(\"g\");\nout = " + expr +
      ";\n";
  auto program = CompileScript(script, catalog);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  PlanNodePtr plan = NormalizeForSearch(program->statements.back().plan);
  if (mark_h_symmetric) {
    std::function<void(PlanNode*)> mark = [&](PlanNode* node) {
      if ((node->op == PlanOp::kInput || node->op == PlanOp::kReadData) &&
          node->name == "H") {
        node->symmetric = true;
      }
      for (auto& child : node->children) mark(child.get());
    };
    mark(plan.get());
  }
  auto d = DecomposeIntoBlocks(plan);
  EXPECT_TRUE(d.ok()) << d.status().ToString();
  return std::move(d).value();
}

TEST(Decompose, PureChainIsOneBlock) {
  const DataCatalog catalog = ChainCatalog();
  const Decomposition d = Decompose("t(A) %*% A %*% H %*% g", catalog);
  ASSERT_EQ(d.blocks.size(), 1u);
  EXPECT_EQ(d.blocks[0].factors.size(), 4u);
  EXPECT_EQ(d.skeleton->op, PlanOp::kBlockRef);
}

TEST(Decompose, SplitsAtElementwiseOps) {
  const DataCatalog catalog = ChainCatalog();
  // H + (H %*% g) %*% t(g): two chain blocks joined by '+': {H}, {Hgg'}.
  const Decomposition d = Decompose("H + H %*% g %*% t(g)", catalog);
  ASSERT_EQ(d.blocks.size(), 2u);
  EXPECT_EQ(d.skeleton->op, PlanOp::kAdd);
  EXPECT_EQ(d.blocks[0].factors.size(), 1u);  // bare H is its own block
  EXPECT_EQ(d.blocks[1].factors.size(), 3u);
}

TEST(Decompose, DivisionSeparatesNumeratorAndDenominator) {
  const DataCatalog catalog = ChainCatalog();
  const Decomposition d =
      Decompose("(H %*% g) / (t(g) %*% H %*% g)", catalog);
  ASSERT_EQ(d.blocks.size(), 2u);
  EXPECT_EQ(d.skeleton->op, PlanOp::kDiv);
  EXPECT_EQ(d.blocks[1].shape.rows, 1);  // 1x1 denominator chain
  EXPECT_EQ(d.blocks[1].shape.cols, 1);
}

TEST(Decompose, TransposedLeafBecomesTransposedFactor) {
  const DataCatalog catalog = ChainCatalog();
  const Decomposition d = Decompose("t(A) %*% A", catalog);
  ASSERT_EQ(d.blocks.size(), 1u);
  const Block& block = d.blocks[0];
  EXPECT_TRUE(block.factors[0].transposed);
  EXPECT_FALSE(block.factors[1].transposed);
  EXPECT_EQ(block.factors[0].Symbol(), "A'");
  EXPECT_EQ(block.factors[1].Symbol(), "A");
}

TEST(WindowKeys, TransposeCanonicalization) {
  const DataCatalog catalog = ChainCatalog();
  // A^T A H g: the window [A', A] must share its key with the window
  // [A', A] read backwards as (A^T A)^T.
  const Decomposition d = Decompose("t(A) %*% A %*% H %*% g", catalog);
  const Block& block = d.blocks[0];
  const std::string ata = WindowKey(block, 0, 2);
  // Forward string equals its own reverse-flip here (A^T A symmetric).
  EXPECT_TRUE(WindowIsForward(block, 0, 2));
  EXPECT_EQ(ata, JoinKey({"A'", "A"}));
}

TEST(WindowKeys, ReversedChainCollides) {
  const DataCatalog catalog = ChainCatalog();
  // (A^T A g) and (g^T A^T A): same canonical key, opposite orientation.
  const Decomposition fwd = Decompose("t(A) %*% A %*% g", catalog);
  const Decomposition rev = Decompose("t(g) %*% t(A) %*% A", catalog);
  const std::string k1 =
      WindowKey(fwd.blocks[0], 0, fwd.blocks[0].factors.size());
  const std::string k2 =
      WindowKey(rev.blocks[0], 0, rev.blocks[0].factors.size());
  EXPECT_EQ(k1, k2);
  EXPECT_NE(WindowIsForward(fwd.blocks[0], 0, 3),
            WindowIsForward(rev.blocks[0], 0, 3));
}

TEST(WindowKeys, SymmetricLeafDropsTranspose) {
  const DataCatalog catalog = ChainCatalog();
  // With H symmetric, A H and H A^T canonicalize to the same key
  // (paper Section 3.2 step 3).
  const Decomposition ah =
      Decompose("A %*% H", catalog, /*mark_h_symmetric=*/true);
  const Decomposition hat =
      Decompose("H %*% t(A)", catalog, /*mark_h_symmetric=*/true);
  const std::string k1 = WindowKey(ah.blocks[0], 0, 2);
  const std::string k2 = WindowKey(hat.blocks[0], 0, 2);
  EXPECT_EQ(k1, k2);
}

TEST(WindowKeys, NonSymmetricLeafKeepsTranspose) {
  const DataCatalog catalog = ChainCatalog();
  const Decomposition ah = Decompose("A %*% H", catalog, false);
  const Decomposition hat = Decompose("H %*% t(A)", catalog, false);
  // Without the symmetry fact these must NOT collide.
  EXPECT_NE(WindowKey(ah.blocks[0], 0, 2), WindowKey(hat.blocks[0], 0, 2));
}

TEST(Blocks, LoopConstantWindows) {
  const DataCatalog catalog = ChainCatalog();
  Decomposition d = Decompose("t(A) %*% A %*% H %*% g", catalog);
  Block& block = d.blocks[0];
  // Mark A loop-constant, H and g not.
  block.factors[0].loop_constant = true;
  block.factors[1].loop_constant = true;
  EXPECT_TRUE(block.AllLoopConstant(0, 2));
  EXPECT_FALSE(block.AllLoopConstant(0, 3));
  EXPECT_FALSE(block.AllLoopConstant(2, 4));
}

TEST(Blocks, LeftDeepChainEvaluatesShape) {
  const DataCatalog catalog = ChainCatalog();
  const Decomposition d = Decompose("t(A) %*% A %*% H %*% g", catalog);
  const PlanNodePtr plan = LeftDeepChain(d.blocks[0], 0, 4);
  EXPECT_EQ(plan->shape.rows, 8);
  EXPECT_EQ(plan->shape.cols, 1);
  const PlanNodePtr sub = LeftDeepChain(d.blocks[0], 1, 3);  // A H
  EXPECT_EQ(sub->shape.rows, 50);
  EXPECT_EQ(sub->shape.cols, 8);
}

TEST(Blocks, FactorPlanAppliesTranspose) {
  const DataCatalog catalog = ChainCatalog();
  const Decomposition d = Decompose("t(A) %*% A", catalog);
  const PlanNodePtr f0 = FactorPlan(d.blocks[0].factors[0]);
  EXPECT_EQ(f0->op, PlanOp::kTranspose);
  EXPECT_EQ(f0->shape.rows, 8);
  EXPECT_EQ(f0->shape.cols, 50);
}

}  // namespace
}  // namespace remac
