#include <gtest/gtest.h>

#include <numeric>

#include "cluster/cluster_model.h"
#include "cluster/partitioner.h"
#include "cluster/transmission_ledger.h"

namespace remac {
namespace {

TEST(ClusterModel, WeightsAreReciprocals) {
  ClusterModel m;
  EXPECT_DOUBLE_EQ(m.WFlop(), 1.0 / m.flops_per_sec);
  EXPECT_DOUBLE_EQ(m.WPrimitive(TransmissionPrimitive::kBroadcast),
                   1.0 / m.broadcast_bytes_per_sec);
  EXPECT_DOUBLE_EQ(m.WPrimitive(TransmissionPrimitive::kShuffle),
                   1.0 / m.shuffle_bytes_per_sec);
  EXPECT_DOUBLE_EQ(m.WPrimitive(TransmissionPrimitive::kCollection),
                   1.0 / m.collection_bytes_per_sec);
  EXPECT_DOUBLE_EQ(m.WPrimitive(TransmissionPrimitive::kDfs),
                   1.0 / m.dfs_bytes_per_sec);
}

TEST(ClusterModel, SingleNodeHasNoNetworkCost) {
  const ClusterModel m = ClusterModel::SingleNode();
  EXPECT_EQ(m.num_workers, 1);
  EXPECT_LT(m.WPrimitive(TransmissionPrimitive::kShuffle), 1e-15);
}

TEST(Ledger, ConvertsWorkToSeconds) {
  ClusterModel model;
  model.flops_per_sec = 1e9;
  model.local_flops_per_sec = 1e8;
  model.shuffle_bytes_per_sec = 1e6;
  TransmissionLedger ledger(model);
  ledger.AddDistributedFlops(2e9);       // 2 s
  ledger.AddLocalFlops(1e8);             // 1 s
  ledger.AddTransmission(TransmissionPrimitive::kShuffle, 3e6);  // 3 s
  ledger.AddCompilationSeconds(0.5);
  const TimeBreakdown b = ledger.Breakdown();
  EXPECT_NEAR(b.computation_seconds, 3.0, 1e-9);
  EXPECT_NEAR(b.transmission_seconds, 3.0, 1e-9);
  EXPECT_NEAR(b.compilation_seconds, 0.5, 1e-9);
  EXPECT_NEAR(b.TotalSeconds(), 6.5, 1e-9);
}

TEST(Ledger, InputPartitionUsesDfsRate) {
  ClusterModel model;
  model.dfs_bytes_per_sec = 1e6;
  TransmissionLedger ledger(model);
  ledger.AddInputPartition(5e6);
  EXPECT_NEAR(ledger.Breakdown().input_partition_seconds, 5.0, 1e-9);
}

TEST(Ledger, ResetClearsEverything) {
  TransmissionLedger ledger{ClusterModel()};
  ledger.AddDistributedFlops(1e12);
  ledger.AddTransmission(TransmissionPrimitive::kBroadcast, 1e9);
  ledger.Reset();
  EXPECT_DOUBLE_EQ(ledger.TotalSeconds(), 0.0);
  EXPECT_DOUBLE_EQ(ledger.TotalFlops(), 0.0);
}

TEST(Breakdown, Accumulates) {
  TimeBreakdown a;
  a.computation_seconds = 1.0;
  TimeBreakdown b;
  b.transmission_seconds = 2.0;
  a += b;
  EXPECT_DOUBLE_EQ(a.TotalSeconds(), 3.0);
}

TEST(Partitioner, Deterministic) {
  const HashPartitioner p(6);
  EXPECT_EQ(p.WorkerOf(3, 4), p.WorkerOf(3, 4));
  EXPECT_GE(p.WorkerOf(100, 200), 0);
  EXPECT_LT(p.WorkerOf(100, 200), 6);
}

TEST(Partitioner, SpreadsUniformGridEvenly) {
  const int workers = 6;
  const HashPartitioner p(workers);
  std::vector<double> weights(60 * 60, 1.0);
  const auto loads = p.WorkerLoads(weights, 60);
  const double total = std::accumulate(loads.begin(), loads.end(), 0.0);
  EXPECT_DOUBLE_EQ(total, 3600.0);
  for (double l : loads) {
    EXPECT_NEAR(l / total, 1.0 / workers, 0.03);
  }
}

TEST(Partitioner, MixesRowsAndColumns) {
  // Blocks of one row must not all land on the same worker.
  const HashPartitioner p(4);
  std::vector<int> seen(4, 0);
  for (int64_t c = 0; c < 64; ++c) ++seen[p.WorkerOf(0, c)];
  for (int count : seen) EXPECT_GT(count, 0);
}

}  // namespace
}  // namespace remac
