#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "cluster/cluster_model.h"
#include "cluster/grid2d_partitioner.h"
#include "cluster/partitioner.h"
#include "cluster/transmission_ledger.h"

namespace remac {
namespace {

TEST(ClusterModel, WeightsAreReciprocals) {
  ClusterModel m;
  EXPECT_DOUBLE_EQ(m.WFlop(), 1.0 / m.flops_per_sec);
  EXPECT_DOUBLE_EQ(m.WPrimitive(TransmissionPrimitive::kBroadcast),
                   1.0 / m.broadcast_bytes_per_sec);
  EXPECT_DOUBLE_EQ(m.WPrimitive(TransmissionPrimitive::kShuffle),
                   1.0 / m.shuffle_bytes_per_sec);
  EXPECT_DOUBLE_EQ(m.WPrimitive(TransmissionPrimitive::kCollection),
                   1.0 / m.collection_bytes_per_sec);
  EXPECT_DOUBLE_EQ(m.WPrimitive(TransmissionPrimitive::kDfs),
                   1.0 / m.dfs_bytes_per_sec);
}

TEST(ClusterModel, SingleNodeHasNoNetworkCost) {
  const ClusterModel m = ClusterModel::SingleNode();
  EXPECT_EQ(m.num_workers, 1);
  EXPECT_LT(m.WPrimitive(TransmissionPrimitive::kShuffle), 1e-15);
}

TEST(Ledger, ConvertsWorkToSeconds) {
  ClusterModel model;
  model.flops_per_sec = 1e9;
  model.local_flops_per_sec = 1e8;
  model.shuffle_bytes_per_sec = 1e6;
  TransmissionLedger ledger(model);
  ledger.AddDistributedFlops(2e9);       // 2 s
  ledger.AddLocalFlops(1e8);             // 1 s
  ledger.AddTransmission(TransmissionPrimitive::kShuffle, 3e6);  // 3 s
  ledger.AddCompilationSeconds(0.5);
  const TimeBreakdown b = ledger.Breakdown();
  EXPECT_NEAR(b.computation_seconds, 3.0, 1e-9);
  EXPECT_NEAR(b.transmission_seconds, 3.0, 1e-9);
  EXPECT_NEAR(b.compilation_seconds, 0.5, 1e-9);
  EXPECT_NEAR(b.TotalSeconds(), 6.5, 1e-9);
}

TEST(Ledger, InputPartitionUsesDfsRate) {
  ClusterModel model;
  model.dfs_bytes_per_sec = 1e6;
  TransmissionLedger ledger(model);
  ledger.AddInputPartition(5e6);
  EXPECT_NEAR(ledger.Breakdown().input_partition_seconds, 5.0, 1e-9);
}

TEST(Ledger, ResetClearsEverything) {
  TransmissionLedger ledger{ClusterModel()};
  ledger.AddDistributedFlops(1e12);
  ledger.AddTransmission(TransmissionPrimitive::kBroadcast, 1e9);
  ledger.Reset();
  EXPECT_DOUBLE_EQ(ledger.TotalSeconds(), 0.0);
  EXPECT_DOUBLE_EQ(ledger.TotalFlops(), 0.0);
}

TEST(Breakdown, Accumulates) {
  TimeBreakdown a;
  a.computation_seconds = 1.0;
  TimeBreakdown b;
  b.transmission_seconds = 2.0;
  a += b;
  EXPECT_DOUBLE_EQ(a.TotalSeconds(), 3.0);
}

TEST(Partitioner, Deterministic) {
  const HashPartitioner p(6);
  EXPECT_EQ(p.WorkerOf(3, 4), p.WorkerOf(3, 4));
  EXPECT_GE(p.WorkerOf(100, 200), 0);
  EXPECT_LT(p.WorkerOf(100, 200), 6);
}

TEST(Partitioner, SpreadsUniformGridEvenly) {
  const int workers = 6;
  const HashPartitioner p(workers);
  std::vector<double> weights(60 * 60, 1.0);
  const auto loads = p.WorkerLoads(weights, 60);
  const double total = std::accumulate(loads.begin(), loads.end(), 0.0);
  EXPECT_DOUBLE_EQ(total, 3600.0);
  for (double l : loads) {
    EXPECT_NEAR(l / total, 1.0 / workers, 0.03);
  }
}

TEST(Partitioner, MixesRowsAndColumns) {
  // Blocks of one row must not all land on the same worker.
  const HashPartitioner p(4);
  std::vector<int> seen(4, 0);
  for (int64_t c = 0; c < 64; ++c) ++seen[p.WorkerOf(0, c)];
  for (int count : seen) EXPECT_GT(count, 0);
}

TEST(Partitioner, WorkerLoadsSkewedWeights) {
  // One heavy block per grid row (a skewed column), the rest light: the
  // hash mixing must still spread the heavy blocks over several workers
  // instead of stacking them on one.
  const int workers = 6;
  const HashPartitioner p(workers);
  const int64_t grid = 36;
  std::vector<double> weights(grid * grid, 1.0);
  for (int64_t r = 0; r < grid; ++r) weights[r * grid] = 1000.0;
  const auto loads = p.WorkerLoads(weights, grid);
  ASSERT_EQ(loads.size(), static_cast<size_t>(workers));
  const double total = std::accumulate(loads.begin(), loads.end(), 0.0);
  EXPECT_DOUBLE_EQ(total, 36.0 * 1000.0 + (grid * grid - 36.0));
  const double max_load = *std::max_element(loads.begin(), loads.end());
  // No worker may own more than half of the heavy column.
  EXPECT_LT(max_load, 0.5 * total);
}

TEST(Partitioner, WorkerLoadsSingleWorkerTakesEverything) {
  const HashPartitioner p(1);
  const std::vector<double> weights{1.0, 2.0, 3.0, 4.0};
  const auto loads = p.WorkerLoads(weights, 2);
  ASSERT_EQ(loads.size(), 1u);
  EXPECT_DOUBLE_EQ(loads[0], 10.0);
}

TEST(Partitioner, WorkerLoadsEmptyGrid) {
  const HashPartitioner p(4);
  const auto loads = p.WorkerLoads({}, 8);
  ASSERT_EQ(loads.size(), 4u);
  for (double l : loads) EXPECT_DOUBLE_EQ(l, 0.0);
}

TEST(Partitioner, WorkerLoadsOneByNGrid) {
  // A 1 x N grid (one block row): every block must still be accounted
  // for and the totals preserved.
  const HashPartitioner p(3);
  std::vector<double> weights(64, 2.0);
  const auto loads = p.WorkerLoads(weights, 64);
  const double total = std::accumulate(loads.begin(), loads.end(), 0.0);
  EXPECT_DOUBLE_EQ(total, 128.0);
}

TEST(Grid2D, MakeGridMostSquareExactArea) {
  const Grid2DShape g6 = Grid2DPartitioner::MakeGrid(6);
  EXPECT_EQ(g6.rows, 2);
  EXPECT_EQ(g6.cols, 3);
  const Grid2DShape g4 = Grid2DPartitioner::MakeGrid(4);
  EXPECT_EQ(g4.rows, 2);
  EXPECT_EQ(g4.cols, 2);
  const Grid2DShape g12 = Grid2DPartitioner::MakeGrid(12);
  EXPECT_EQ(g12.rows, 3);
  EXPECT_EQ(g12.cols, 4);
  // Primes degrade to 1 x p; the area always stays exactly num_workers.
  const Grid2DShape g7 = Grid2DPartitioner::MakeGrid(7);
  EXPECT_EQ(g7.rows, 1);
  EXPECT_EQ(g7.cols, 7);
  const Grid2DShape g1 = Grid2DPartitioner::MakeGrid(1);
  EXPECT_EQ(g1.rows, 1);
  EXPECT_EQ(g1.cols, 1);
}

TEST(Grid2D, BlockCyclicOwnership) {
  const Grid2DPartitioner grid(6);  // 2 x 3
  EXPECT_EQ(grid.WorkerOf(0, 0), 0);
  EXPECT_EQ(grid.WorkerOf(0, 1), 1);
  EXPECT_EQ(grid.WorkerOf(0, 3), 0);  // wraps over worker columns
  EXPECT_EQ(grid.WorkerOf(1, 0), 3);  // second worker row
  EXPECT_EQ(grid.WorkerOf(2, 0), 0);  // wraps over worker rows
  EXPECT_EQ(grid.WorkerOf(3, 4), grid.WorkerOf(1, 1));
}

TEST(Grid2D, RowAndColGroups) {
  const Grid2DPartitioner grid(6);  // 2 x 3
  EXPECT_EQ(grid.RowGroup(0), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(grid.RowGroup(1), (std::vector<int>{3, 4, 5}));
  EXPECT_EQ(grid.ColGroup(0), (std::vector<int>{0, 3}));
  EXPECT_EQ(grid.ColGroup(2), (std::vector<int>{2, 5}));
}

TEST(Grid2D, WorkerLoadsBalancedOnUniformGrid) {
  // Block-cyclic ownership on a uniform grid divisible by the worker
  // grid is perfectly balanced (better than the hash partitioner's
  // statistical spread).
  const Grid2DPartitioner grid(6);  // 2 x 3
  std::vector<double> weights(12 * 12, 1.0);
  const auto loads = grid.WorkerLoads(weights, 12);
  ASSERT_EQ(loads.size(), 6u);
  for (double l : loads) EXPECT_DOUBLE_EQ(l, 24.0);
}

TEST(Grid2D, WorkerLoadsSkewedColumnSpreadsOverWorkerRows) {
  // A heavy tile column lands on a single worker *column*, but cycles
  // over the pr worker rows — the 2D analogue of skew tolerance.
  const Grid2DPartitioner grid(4);  // 2 x 2
  const int64_t n = 8;
  std::vector<double> weights(n * n, 0.0);
  for (int64_t r = 0; r < n; ++r) weights[r * n] = 1.0;  // tile column 0
  const auto loads = grid.WorkerLoads(weights, n);
  EXPECT_DOUBLE_EQ(loads[0], 4.0);  // worker (0,0)
  EXPECT_DOUBLE_EQ(loads[1], 0.0);  // worker (0,1): different column
  EXPECT_DOUBLE_EQ(loads[2], 4.0);  // worker (1,0)
  EXPECT_DOUBLE_EQ(loads[3], 0.0);
}

}  // namespace
}  // namespace remac
