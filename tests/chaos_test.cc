// Chaos tests: deterministic fault injection, retry-with-backoff and
// re-execution in the task-graph scheduler, ledger double-booking of
// wasted work, and the plan service's degradation ladder. The headline
// invariant: a chaos run whose retries eventually succeed is
// bitwise-identical in its results to the fault-free run. The Chaos* and
// Fault* suites run under TSan, ASan and UBSan via scripts/check.sh.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "algorithms/scripts.h"
#include "cluster/fault_plan.h"
#include "data/generators.h"
#include "obs/metrics.h"
#include "runtime/program_runner.h"
#include "sched/parallel_executor.h"
#include "sched/thread_pool.h"
#include "service/plan_service.h"

namespace remac {
namespace {

const DataCatalog& ChaosCatalog() {
  static DataCatalog* catalog = [] {
    auto* c = new DataCatalog();
    DatasetSpec spec;
    spec.name = "ds";
    spec.rows = 50;
    spec.cols = 6;
    spec.sparsity = 0.5;
    spec.seed = 9;
    EXPECT_TRUE(RegisterDataset(c, spec).ok());
    return c;
  }();
  return *catalog;
}

void ExpectValueBitwise(const std::string& name, const RtValue& a,
                        const RtValue& b) {
  ASSERT_EQ(a.is_scalar, b.is_scalar) << name;
  EXPECT_EQ(a.distributed, b.distributed) << name;
  if (a.is_scalar) {
    EXPECT_EQ(std::memcmp(&a.scalar, &b.scalar, sizeof(double)), 0)
        << name << ": " << a.scalar << " vs " << b.scalar;
    return;
  }
  ASSERT_EQ(a.matrix.rows(), b.matrix.rows()) << name;
  ASSERT_EQ(a.matrix.cols(), b.matrix.cols()) << name;
  for (int64_t r = 0; r < a.matrix.rows(); ++r) {
    for (int64_t c = 0; c < a.matrix.cols(); ++c) {
      const double va = a.matrix.At(r, c);
      const double vb = b.matrix.At(r, c);
      ASSERT_EQ(std::memcmp(&va, &vb, sizeof(double)), 0)
          << name << " at (" << r << ", " << c << "): " << va << " vs "
          << vb;
    }
  }
}

void ExpectEnvBitwise(const std::map<std::string, RtValue>& expected,
                      const std::map<std::string, RtValue>& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (const auto& [name, value] : expected) {
    auto it = actual.find(name);
    ASSERT_NE(it, actual.end()) << name;
    ExpectValueBitwise(name, value, it->second);
  }
}

// ---------------------------------------------------------------------
// FaultInjector: the deterministic fault oracle

TEST(FaultInjector, DecisionsAreAPureFunctionOfSeedKeyAndAttempt) {
  FaultPlan plan;
  plan.enabled = true;
  plan.seed = 42;
  plan.transient_probability = 0.5;
  plan.straggler_probability = 0.5;
  plan.crash_at_task = -1;  // crashes use shared state; tested separately
  FaultInjector a(plan);
  FaultInjector b(plan);
  for (int task = 0; task < 32; ++task) {
    const std::string key = "task#" + std::to_string(task);
    for (int attempt = 0; attempt < 4; ++attempt) {
      const FaultDecision da = a.Probe(key, attempt);
      const FaultDecision db = b.Probe(key, attempt);
      EXPECT_EQ(da.kind, db.kind) << key << " attempt " << attempt;
      EXPECT_EQ(da.slowdown, db.slowdown) << key << " attempt " << attempt;
    }
  }
  // And a different seed flips at least one decision.
  FaultPlan other = plan;
  other.seed = 43;
  FaultInjector c(other);
  FaultInjector a2(plan);
  int differing = 0;
  for (int task = 0; task < 32; ++task) {
    const std::string key = "task#" + std::to_string(task);
    if (c.Probe(key, 0).kind != a2.Probe(key, 0).kind) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultInjector, TransientsStopAfterConfiguredAttempts) {
  FaultPlan plan;
  plan.enabled = true;
  plan.seed = 7;
  plan.transient_probability = 1.0;  // strike every task...
  plan.transient_fail_attempts = 2;  // ...on its first two attempts
  plan.straggler_probability = 0.0;
  plan.crash_at_task = -1;
  FaultInjector injector(plan);
  EXPECT_EQ(injector.Probe("t", 0).kind, FaultKind::kTransient);
  EXPECT_EQ(injector.Probe("t", 1).kind, FaultKind::kTransient);
  EXPECT_EQ(injector.Probe("t", 2).kind, FaultKind::kNone);
  EXPECT_EQ(injector.Probe("t", 3).kind, FaultKind::kNone);
  EXPECT_EQ(injector.stats().transients, 2);
}

TEST(FaultInjector, CrashFiresExactlyOnceAtTheConfiguredOrdinal) {
  FaultPlan plan;
  plan.enabled = true;
  plan.transient_probability = 0.0;
  plan.straggler_probability = 0.0;
  plan.crash_at_task = 2;
  FaultInjector injector(plan);
  int crashes = 0;
  for (int task = 0; task < 8; ++task) {
    const std::string key = "t" + std::to_string(task);
    if (injector.Probe(key, 0).kind == FaultKind::kWorkerCrash) {
      EXPECT_EQ(task, 2);
      ++crashes;
    }
    // Retries (attempt > 0) never absorb the crash.
    EXPECT_EQ(injector.Probe(key, 1).kind, FaultKind::kNone);
  }
  EXPECT_EQ(crashes, 1);
  EXPECT_EQ(injector.stats().crashes, 1);
  EXPECT_EQ(injector.stats().injected, 1);
}

TEST(FaultInjector, BackoffGrowsExponentially) {
  FaultPlan plan;
  plan.backoff_base_seconds = 0.05;
  plan.backoff_multiplier = 2.0;
  FaultInjector injector(plan);
  EXPECT_DOUBLE_EQ(injector.BackoffSeconds(0), 0.05);
  EXPECT_DOUBLE_EQ(injector.BackoffSeconds(1), 0.10);
  EXPECT_DOUBLE_EQ(injector.BackoffSeconds(3), 0.40);
}

TEST(FaultInjector, DisabledPlanInjectsNothing) {
  FaultPlan plan;  // enabled = false
  plan.transient_probability = 1.0;
  plan.crash_at_task = 0;
  FaultInjector injector(plan);
  for (int task = 0; task < 16; ++task) {
    const FaultDecision d =
        injector.Probe("t" + std::to_string(task), 0);
    EXPECT_EQ(d.kind, FaultKind::kNone);
    EXPECT_FALSE(d.Fails());
  }
  EXPECT_EQ(injector.stats().probes, 0);
  EXPECT_EQ(injector.stats().injected, 0);
}

TEST(FaultPlan, ChaosProfileRecoversWithinTheRetryBudget) {
  const FaultPlan plan = FaultPlan::Chaos(123);
  EXPECT_TRUE(plan.enabled);
  // Eventual success by construction: transients give up before the
  // retry budget does, and a crash consumes exactly one attempt.
  EXPECT_LT(plan.transient_fail_attempts, plan.max_retries);
  EXPECT_NE(plan.ToString().find("seed=123"), std::string::npos);
}

// ---------------------------------------------------------------------
// Ledger: recovery + wasted-work accounting

TEST(ChaosLedger, TracksRecoveryAndWastedWork) {
  TransmissionLedger ledger((ClusterModel()));
  EXPECT_EQ(ledger.Breakdown().ToString().find("recovery="),
            std::string::npos);
  ledger.AddRecoverySeconds(0.25);
  ledger.AddWasted(1e9, 1e6);
  EXPECT_DOUBLE_EQ(ledger.RecoverySeconds(), 0.25);
  EXPECT_DOUBLE_EQ(ledger.WastedFlops(), 1e9);
  EXPECT_DOUBLE_EQ(ledger.WastedBytes(), 1e6);
  const TimeBreakdown b = ledger.Breakdown();
  EXPECT_DOUBLE_EQ(b.recovery_seconds, 0.25);
  EXPECT_DOUBLE_EQ(b.TotalSeconds(), ledger.TotalSeconds());
  EXPECT_NE(b.ToString().find("recovery="), std::string::npos);

  TransmissionLedger other((ClusterModel()));
  other.MergeFrom(ledger);
  EXPECT_DOUBLE_EQ(other.RecoverySeconds(), 0.25);
  EXPECT_DOUBLE_EQ(other.WastedFlops(), 1e9);
  other.Reset();
  EXPECT_DOUBLE_EQ(other.RecoverySeconds(), 0.0);
  EXPECT_DOUBLE_EQ(other.WastedFlops(), 0.0);
}

// ---------------------------------------------------------------------
// The headline invariant: recoverable chaos == fault-free, bitwise

TEST(ChaosDeterminism, RecoverableFaultsAreBitwiseIdenticalToFaultFree) {
  const DataCatalog& catalog = ChaosCatalog();
  for (const std::string& script :
       {DfpScript("ds", 3), GnmfScript("ds", 4, 3)}) {
    RunConfig config;
    config.max_iterations = 3;
    auto serial = RunScript(script, catalog, config);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    for (const uint64_t seed : {1ull, 7ull, 42ull}) {
      for (int threads : {1, 2, 8}) {
        RunConfig chaos = config;
        chaos.scheduler = SchedulerKind::kTaskGraph;
        chaos.pool_threads = threads;
        chaos.faults = FaultPlan::Chaos(seed);
        // Aggressive probabilities: most tasks suffer something.
        chaos.faults.transient_probability = 0.6;
        chaos.faults.straggler_probability = 0.5;
        auto run = RunScript(script, catalog, chaos);
        ASSERT_TRUE(run.ok())
            << "seed " << seed << ": " << run.status().ToString();
        ExpectEnvBitwise(serial->env, run->env);
        const ScheduleReport& schedule = run->schedule;
        EXPECT_TRUE(schedule.chaos);
        EXPECT_GT(schedule.faults_injected, 0) << "seed " << seed;
        // Every failing fault triggered exactly one re-execution, and
        // none ran out of budget.
        EXPECT_EQ(schedule.retries, schedule.faults_injected);
        EXPECT_EQ(schedule.exhausted, 0);
        EXPECT_GT(schedule.backoff_seconds, 0.0);
        EXPECT_GT(run->breakdown.recovery_seconds, 0.0);
      }
    }
  }
}

TEST(ChaosDeterminism, CrashedTaskIsReExecutedWithIdenticalResults) {
  const DataCatalog& catalog = ChaosCatalog();
  const std::string script = DfpScript("ds", 3);
  RunConfig config;
  config.max_iterations = 3;
  auto serial = RunScript(script, catalog, config);
  ASSERT_TRUE(serial.ok());

  RunConfig chaos = config;
  chaos.scheduler = SchedulerKind::kTaskGraph;
  chaos.pool_threads = 2;
  chaos.faults.enabled = true;
  chaos.faults.crash_at_task = 0;  // the very first task attempt dies
  auto run = RunScript(script, catalog, chaos);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ExpectEnvBitwise(serial->env, run->env);
  EXPECT_EQ(run->schedule.crashes, 1);
  EXPECT_EQ(run->schedule.retries, 1);
  // The re-execution paid rescheduling + backoff in simulated time.
  EXPECT_GE(run->schedule.backoff_seconds,
            chaos.faults.crash_recovery_seconds);
  EXPECT_GT(run->breakdown.recovery_seconds, 0.0);
}

TEST(ChaosDeterminism, StragglersSlowTheScheduleButNotTheNumerics) {
  const DataCatalog& catalog = ChaosCatalog();
  const std::string script = DfpScript("ds", 3);
  RunConfig config;
  config.max_iterations = 3;
  auto serial = RunScript(script, catalog, config);
  ASSERT_TRUE(serial.ok());

  RunConfig chaos = config;
  chaos.scheduler = SchedulerKind::kTaskGraph;
  chaos.pool_threads = 2;
  chaos.faults.enabled = true;
  chaos.faults.straggler_probability = 1.0;  // every task drags
  chaos.faults.straggler_factor = 3.0;
  auto run = RunScript(script, catalog, chaos);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ExpectEnvBitwise(serial->env, run->env);
  EXPECT_GT(run->schedule.stragglers, 0);
  EXPECT_EQ(run->schedule.retries, 0);  // stragglers finish, never retry
  // All work ran 3x slow, so the serial-sum accounting must exceed the
  // fault-free pass and the excess is booked as recovery.
  EXPECT_GT(run->schedule.serial_seconds,
            serial->breakdown.computation_seconds +
                serial->breakdown.transmission_seconds);
  EXPECT_GT(run->breakdown.recovery_seconds, 0.0);
}

TEST(ChaosDeterminism, SameSeedSameChaosRunTwice) {
  const DataCatalog& catalog = ChaosCatalog();
  const std::string script = GnmfScript("ds", 4, 3);
  RunConfig chaos;
  chaos.max_iterations = 3;
  chaos.scheduler = SchedulerKind::kTaskGraph;
  chaos.pool_threads = 4;
  chaos.faults = FaultPlan::Chaos(7);
  auto first = RunScript(script, catalog, chaos);
  auto second = RunScript(script, catalog, chaos);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ExpectEnvBitwise(first->env, second->env);
  // Hash-derived faults (transients, stragglers) are interleaving-proof.
  EXPECT_EQ(first->schedule.transients, second->schedule.transients);
  EXPECT_EQ(first->schedule.stragglers, second->schedule.stragglers);
}

// ---------------------------------------------------------------------
// Retry exhaustion and the service degradation ladder

/// A fault plan no retry budget can beat: every attempt of every task
/// fails.
FaultPlan ImpossiblePlan() {
  FaultPlan plan;
  plan.enabled = true;
  plan.seed = 3;
  plan.transient_probability = 1.0;
  plan.transient_fail_attempts = 1000;
  plan.max_retries = 2;
  plan.crash_at_task = -1;
  plan.backoff_base_seconds = 1e-4;  // keep simulated backoff small
  return plan;
}

TEST(ChaosRetry, ExhaustedRetriesReturnUnavailable) {
  const DataCatalog& catalog = ChaosCatalog();
  RunConfig chaos;
  chaos.max_iterations = 2;
  chaos.scheduler = SchedulerKind::kTaskGraph;
  chaos.pool_threads = 2;
  chaos.faults = ImpossiblePlan();
  Counter* exhausted =
      MetricsRegistry::Global().GetCounter("remac.retry.exhausted");
  const int64_t exhausted_before = exhausted->Value();
  auto run = RunScript(DfpScript("ds", 2), catalog, chaos);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(run.status().message().find("attempts"), std::string::npos);
  // The failure still recorded its retry metrics.
  EXPECT_GT(exhausted->Value(), exhausted_before);
}

TEST(ChaosDegradation, RetriesExhaustedFallsBackToSerialResult) {
  const DataCatalog& catalog = ChaosCatalog();
  const std::string script = DfpScript("ds", 2);
  RunConfig config;
  config.max_iterations = 2;

  auto reference = RunScript(script, catalog, config);
  ASSERT_TRUE(reference.ok());

  PlanService service(&catalog);
  ServiceRequest request;
  request.source = script;
  request.config = config;
  request.config.scheduler = SchedulerKind::kTaskGraph;
  request.config.pool_threads = 2;
  request.config.faults = ImpossiblePlan();
  auto report = service.Run(request);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->degraded);
  EXPECT_EQ(report->degraded_reason, "retries-exhausted");
  ExpectEnvBitwise(reference->env, report->run.env);
  EXPECT_EQ(service.stats().degraded_requests, 1);
  // The doomed chaos attempt's double-booked cost stays on the ledger:
  // its retry backoff is visible as recovery time, and compute can only
  // grow (the aborted run fails fast, so the extra work may round to 0).
  EXPECT_GT(report->run.breakdown.recovery_seconds, 0.0);
  EXPECT_GE(report->run.breakdown.computation_seconds,
            reference->breakdown.computation_seconds);
}

TEST(ChaosDegradation, DeadlinePressureDegradesToSerial) {
  const DataCatalog& catalog = ChaosCatalog();
  PlanService service(&catalog);
  ServiceRequest request;
  request.source = DfpScript("ds", 2);
  request.config.max_iterations = 2;
  request.config.scheduler = SchedulerKind::kTaskGraph;
  request.config.faults = FaultPlan::Chaos(5);
  request.deadline_seconds = 1e-9;  // compilation alone blows the budget
  auto report = service.Run(request);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->degraded);
  EXPECT_EQ(report->degraded_reason, "deadline");
  // Serial fallback ran fault-free: no schedule, no injected faults.
  EXPECT_FALSE(report->run.schedule.used);
  EXPECT_FALSE(report->run.env.empty());
}

TEST(ChaosDegradation, BackloggedLaneShedsToSerial) {
  const DataCatalog& catalog = ChaosCatalog();
  ServiceOptions options;
  options.admission_backlog_factor = 1e-6;  // any backlog at all sheds
  PlanService service(&catalog, options);

  // Park the exec lane's workers and stack up a visible backlog. The
  // gate state is shared by value so a worker still spinning when this
  // test returns never reads a dead stack frame.
  ThreadPool& pool = ThreadPool::Global();
  auto release = std::make_shared<std::atomic<bool>>(false);
  auto parked = std::make_shared<std::atomic<int>>(0);
  auto finished = std::make_shared<std::atomic<int>>(0);
  const int workers = pool.size();
  for (int i = 0; i < workers; ++i) {
    pool.Submit([release, parked, finished] {
      parked->fetch_add(1);
      while (!release->load()) std::this_thread::yield();
      finished->fetch_add(1);
    });
  }
  while (parked->load() < workers) std::this_thread::yield();
  pool.Submit([] {});  // pending() >= 1 while the workers are parked

  Counter* shed_metric =
      MetricsRegistry::Global().GetCounter("remac.service.shed");
  const int64_t shed_before = shed_metric->Value();
  ServiceRequest request;
  request.source = DfpScript("ds", 2);
  request.config.max_iterations = 2;
  request.config.scheduler = SchedulerKind::kTaskGraph;
  auto report = service.Run(request);
  release->store(true);
  while (finished->load() < workers) std::this_thread::yield();
  while (pool.pending() > 0) (void)pool.TryRunOne();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->degraded);
  EXPECT_TRUE(report->shed);
  EXPECT_EQ(report->degraded_reason, "shed-backlog");
  EXPECT_FALSE(report->run.env.empty());
  EXPECT_EQ(service.stats().shed_requests, 1);
  EXPECT_EQ(shed_metric->Value(), shed_before + 1);
}

TEST(ChaosDegradation, SessionChaosThroughBothLanesBitwiseIdentical) {
  // The full serving stack: requests ride the request lane (Session),
  // their DAG fan-out rides the exec lane, faults force retries — and
  // every result must still be bitwise identical to the plain serial
  // executor's.
  const DataCatalog& catalog = ChaosCatalog();
  const std::string script = DfpScript("ds", 2);
  RunConfig config;
  config.max_iterations = 2;
  auto reference = RunScript(script, catalog, config);
  ASSERT_TRUE(reference.ok());

  ThreadPool::SetGlobalThreads(4);
  PlanService service(&catalog);
  ServiceRequest request;
  request.source = script;
  request.config = config;
  request.config.scheduler = SchedulerKind::kTaskGraph;
  request.config.faults = FaultPlan::Chaos(7);
  PlanService::Session session = service.NewSession();
  constexpr int kRequests = 6;
  for (int k = 0; k < kRequests; ++k) session.Submit(request);
  const auto results = session.Wait();
  ASSERT_EQ(results.size(), static_cast<size_t>(kRequests));
  for (const auto& result : results) {
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectEnvBitwise(reference->env, result.value().run.env);
  }
  // Workers bump the executed counter after the task body sets the
  // future, so the last increment can trail Wait() by an instant.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (service.stats().request_pool.tasks_executed < kRequests) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    std::this_thread::yield();
  }
  // DAG tasks took the exec lane, whole requests the request lane.
  EXPECT_GE(service.stats().pool.tasks_executed, 1);
  ThreadPool::SetGlobalThreads(0);
}

TEST(ChaosDegradation, HealthyRequestsAreNotDegraded) {
  const DataCatalog& catalog = ChaosCatalog();
  PlanService service(&catalog);
  ServiceRequest request;
  request.source = DfpScript("ds", 2);
  request.config.max_iterations = 2;
  request.config.scheduler = SchedulerKind::kTaskGraph;
  request.deadline_seconds = 3600.0;
  auto report = service.Run(request);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->degraded);
  EXPECT_TRUE(report->run.schedule.used);
  EXPECT_EQ(service.stats().degraded_requests, 0);
}

}  // namespace
}  // namespace remac
