#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "data/generators.h"
#include "matrix/kernels.h"
#include "sparsity/estimator.h"
#include "sparsity/sketch.h"

namespace remac {
namespace {

Matrix UniformSparse(int64_t rows, int64_t cols, double sp, uint64_t seed) {
  Rng rng(seed);
  DenseMatrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) {
    if (rng.NextDouble() < sp) m.data()[i] = 1.0 + rng.NextDouble();
  }
  return Matrix::FromDense(std::move(m));
}

Matrix SkewedSparse(int64_t rows, int64_t cols, double sp, double zipf,
                    uint64_t seed) {
  DatasetSpec spec;
  spec.name = "skewed";
  spec.rows = rows;
  spec.cols = cols;
  spec.sparsity = sp;
  spec.zipf_rows = zipf;
  spec.zipf_cols = zipf;
  spec.seed = seed;
  return GenerateMatrix(spec);
}

MatrixStats StatsOf(const Matrix& m) {
  MatrixStats stats;
  stats.rows = m.rows();
  stats.cols = m.cols();
  stats.sparsity = m.Sparsity();
  const CsrMatrix csr = m.ToCsr();
  stats.row_counts = csr.RowCounts();
  stats.col_counts = csr.ColCounts();
  return stats;
}

double TrueProductSparsity(const Matrix& a, const Matrix& b) {
  const int64_t nnz = MultiplyNnzExact(a, b).value();
  return static_cast<double>(nnz) /
         (static_cast<double>(a.rows()) * static_cast<double>(b.cols()));
}

TEST(Sketch, FromMatrixExactCounts) {
  const Matrix m = UniformSparse(30, 20, 0.2, 1);
  auto sketch = MncSketch::FromMatrix(m);
  EXPECT_EQ(sketch->rows, 30);
  EXPECT_EQ(sketch->cols, 20);
  EXPECT_DOUBLE_EQ(sketch->nnz, static_cast<double>(m.nnz()));
  double row_sum = 0.0;
  for (double c : sketch->row_counts) row_sum += c;
  EXPECT_DOUBLE_EQ(row_sum, sketch->nnz);
}

TEST(Sketch, TransposeSwapsCounts) {
  const Matrix m = UniformSparse(10, 40, 0.1, 2);
  auto sketch = MncSketch::FromMatrix(m);
  auto t = SketchTranspose(*sketch);
  EXPECT_EQ(t->rows, 40);
  EXPECT_EQ(t->cols, 10);
  EXPECT_EQ(t->row_counts, sketch->col_counts);
  EXPECT_EQ(t->col_counts, sketch->row_counts);
}

TEST(Metadata, UniformMultiplyCloseToTruth) {
  const Matrix a = UniformSparse(200, 150, 0.05, 3);
  const Matrix b = UniformSparse(150, 180, 0.05, 4);
  const MetadataEstimator estimator;
  const NodeStats sa = estimator.LeafStats("a", StatsOf(a));
  const NodeStats sb = estimator.LeafStats("b", StatsOf(b));
  const NodeStats product = estimator.Multiply(sa, sb);
  const double truth = TrueProductSparsity(a, b);
  // On uniformly distributed non-zeros the metadata formula is accurate.
  EXPECT_NEAR(product.sparsity, truth, 0.05 * std::max(0.05, truth) + 0.02);
}

TEST(Metadata, ElementwiseRules) {
  const MetadataEstimator estimator;
  NodeStats a;
  a.rows = a.cols = 100;
  a.sparsity = 0.2;
  NodeStats b = a;
  b.sparsity = 0.3;
  EXPECT_NEAR(estimator.Elementwise(PlanOp::kAdd, a, b).sparsity,
              0.2 + 0.3 - 0.06, 1e-12);
  EXPECT_NEAR(estimator.Elementwise(PlanOp::kMul, a, b).sparsity, 0.06,
              1e-12);
  EXPECT_NEAR(estimator.Elementwise(PlanOp::kDiv, a, b).sparsity, 0.2,
              1e-12);
}

TEST(Metadata, ScalarBroadcastDensifiesAddition) {
  const MetadataEstimator estimator;
  NodeStats a;
  a.rows = a.cols = 10;
  a.sparsity = 0.1;
  EXPECT_DOUBLE_EQ(estimator.ScalarBroadcast(PlanOp::kAdd, a).sparsity, 1.0);
  EXPECT_DOUBLE_EQ(estimator.ScalarBroadcast(PlanOp::kMul, a).sparsity, 0.1);
}

TEST(Generators, GeneratorStats) {
  const MetadataEstimator estimator;
  EXPECT_DOUBLE_EQ(estimator.GeneratorStats(PlanOp::kEye, 10, 10).sparsity,
                   0.1);
  EXPECT_DOUBLE_EQ(estimator.GeneratorStats(PlanOp::kZeros, 5, 5).sparsity,
                   0.0);
  EXPECT_DOUBLE_EQ(estimator.GeneratorStats(PlanOp::kOnes, 5, 5).sparsity,
                   1.0);
}

/// MNC must beat metadata on skewed inputs (the paper's reason for
/// adopting it) while matching it on uniform inputs.
class EstimatorAccuracyTest : public ::testing::TestWithParam<double> {};

TEST_P(EstimatorAccuracyTest, MncAtLeastAsGoodOnAtA) {
  const double zipf = GetParam();
  const Matrix a = zipf == 0.0 ? UniformSparse(2000, 200, 0.01, 5)
                               : SkewedSparse(2000, 200, 0.01, zipf, 5);
  const Matrix at = Transpose(a);
  const double truth = TrueProductSparsity(at, a);

  const MetadataEstimator md;
  const MncEstimator mnc;
  const MatrixStats stats = StatsOf(a);
  const double md_est =
      md.Multiply(md.Transpose(md.LeafStats("a", stats)),
                  md.LeafStats("a", stats))
          .sparsity;
  const double mnc_est =
      mnc.Multiply(mnc.Transpose(mnc.LeafStats("a", stats)),
                   mnc.LeafStats("a", stats))
          .sparsity;
  const double md_err = std::fabs(md_est - truth);
  const double mnc_err = std::fabs(mnc_est - truth);
  // MNC exploits the count structure: allow it a tiny slack on uniform
  // data, require clear dominance under skew.
  if (zipf >= 1.5) {
    EXPECT_LT(mnc_err, md_err)
        << "zipf=" << zipf << " truth=" << truth << " md=" << md_est
        << " mnc=" << mnc_est;
  } else {
    EXPECT_LE(mnc_err, md_err + 0.1);
  }
}

INSTANTIATE_TEST_SUITE_P(ZipfSweep, EstimatorAccuracyTest,
                         ::testing::Values(0.0, 1.5, 2.0, 2.5));

TEST(Exact, OracleMatchesTruth) {
  DataCatalog catalog;
  const Matrix a = UniformSparse(100, 60, 0.05, 6);
  const Matrix b = UniformSparse(60, 80, 0.05, 7);
  catalog.Register("a", a);
  catalog.Register("b", b);
  ExactEstimator exact;
  exact.AttachCatalog(&catalog);
  const NodeStats sa = exact.LeafStats("a", StatsOf(a));
  const NodeStats sb = exact.LeafStats("b", StatsOf(b));
  const NodeStats product = exact.Multiply(sa, sb);
  EXPECT_NEAR(product.sparsity, TrueProductSparsity(a, b), 1e-12);
}

TEST(Exact, DegradesGracefullyWithoutValues) {
  ExactEstimator exact;  // no catalog attached
  MatrixStats stats;
  stats.rows = 10;
  stats.cols = 10;
  stats.sparsity = 0.5;
  const NodeStats s = exact.LeafStats("nope", stats);
  EXPECT_DOUBLE_EQ(s.sparsity, 0.5);
  EXPECT_EQ(s.pattern, nullptr);
}

TEST(Sketch, AddUnionBound) {
  const Matrix a = UniformSparse(100, 100, 0.1, 8);
  const Matrix b = UniformSparse(100, 100, 0.1, 9);
  auto sum = SketchAdd(*MncSketch::FromMatrix(a), *MncSketch::FromMatrix(b));
  const double truth = Add(a, b).value().Sparsity();
  EXPECT_NEAR(sum->Sparsity(), truth, 0.03);
}

TEST(Sketch, ElemMulIntersection) {
  const Matrix a = UniformSparse(100, 100, 0.3, 10);
  const Matrix b = UniformSparse(100, 100, 0.3, 11);
  auto prod =
      SketchElemMul(*MncSketch::FromMatrix(a), *MncSketch::FromMatrix(b));
  const double truth = ElementwiseMultiply(a, b).value().Sparsity();
  EXPECT_NEAR(prod->Sparsity(), truth, 0.03);
}

}  // namespace
}  // namespace remac
