// Focused edge-case coverage across modules: degenerate shapes, empty
// inputs, rendering, and error paths not exercised elsewhere.

#include <gtest/gtest.h>

#include "cluster/transmission_ledger.h"
#include "core/adaptive_optimizer.h"
#include "core/block_search.h"
#include "data/generators.h"
#include "lang/lexer.h"
#include "lang/parser.h"
#include "matrix/kernels.h"
#include "plan/chain.h"
#include "plan/plan_builder.h"
#include "plan/rewriter.h"
#include "runtime/program_runner.h"
#include "sparsity/sketch.h"

namespace remac {
namespace {

// ---------------------------------------------------------------- matrix

TEST(Coverage, EmptyMatrixOperations) {
  const Matrix empty = Matrix::Zeros(0, 0);
  EXPECT_EQ(empty.rows(), 0);
  EXPECT_EQ(empty.nnz(), 0);
  EXPECT_DOUBLE_EQ(empty.Sparsity(), 0.0);
  const Matrix t = Transpose(empty);
  EXPECT_EQ(t.rows(), 0);
}

TEST(Coverage, OneByOneMultiplication) {
  DenseMatrix a(1, 1, {3.0});
  DenseMatrix b(1, 1, {4.0});
  auto c = Multiply(Matrix::WrapDense(std::move(a)),
                    Matrix::WrapDense(std::move(b)));
  ASSERT_TRUE(c.ok());
  EXPECT_DOUBLE_EQ(c->At(0, 0), 12.0);
}

TEST(Coverage, VectorOuterAndInnerProducts) {
  DenseMatrix v(3, 1, {1.0, 2.0, 3.0});
  const Matrix vec = Matrix::WrapDense(std::move(v));
  auto outer = Multiply(vec, Transpose(vec));
  ASSERT_TRUE(outer.ok());
  EXPECT_EQ(outer->rows(), 3);
  EXPECT_EQ(outer->cols(), 3);
  EXPECT_DOUBLE_EQ(outer->At(2, 1), 6.0);
  auto inner = Multiply(Transpose(vec), vec);
  ASSERT_TRUE(inner.ok());
  EXPECT_DOUBLE_EQ(inner->At(0, 0), 14.0);
}

TEST(Coverage, AllZeroSparseMultiply) {
  const Matrix z = Matrix::Zeros(5, 5);
  auto c = Multiply(z, z);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->nnz(), 0);
}

// ----------------------------------------------------------------- sketch

TEST(Coverage, SketchOfEmptyMatrix) {
  auto sketch = MncSketch::FromMatrix(Matrix::Zeros(4, 4));
  EXPECT_DOUBLE_EQ(sketch->nnz, 0.0);
  auto product = SketchMultiply(*sketch, *sketch);
  EXPECT_DOUBLE_EQ(product->nnz, 0.0);
  EXPECT_DOUBLE_EQ(product->Sparsity(), 0.0);
}

TEST(Coverage, SketchUniformConsistency) {
  auto sketch = MncSketch::Uniform(100, 50, 0.1);
  EXPECT_NEAR(sketch->Sparsity(), 0.1, 1e-12);
  EXPECT_EQ(sketch->row_counts.size(), 100u);
  EXPECT_NEAR(sketch->row_counts[0], 5.0, 1e-12);
}

TEST(Coverage, SketchMultiplyBoundedBySize) {
  // The estimated nnz can never exceed the output size.
  auto a = MncSketch::Uniform(10, 10, 1.0);
  auto p = SketchMultiply(*a, *a);
  EXPECT_LE(p->nnz, 100.0 + 1e-9);
  EXPECT_GE(p->nnz, 99.0);  // dense x dense stays dense
}

// ------------------------------------------------------------------- lang

TEST(Coverage, DeeplyNestedExpressionParses) {
  std::string expr = "a";
  for (int i = 0; i < 40; ++i) expr = "(" + expr + " + a)";
  auto parsed = ParseExpression(expr);
  ASSERT_TRUE(parsed.ok());
}

TEST(Coverage, NumbersInScientificNotation) {
  auto parsed = ParseExpression("1e-6 + 2.5E+3 + .5");
  ASSERT_TRUE(parsed.ok());
}

TEST(Coverage, IdentifierWithDots) {
  // DML-style dotted names lex as one identifier.
  auto tokens = Tokenize("as.scalar");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value()[0].text, "as.scalar");
}

// ------------------------------------------------------------------- plan

TEST(Coverage, InferShapesRejectsBadGeneratorDims) {
  DataCatalog catalog;
  auto program = CompileScript("A = ones(2, 2);\nB = eye(A);\n", catalog);
  EXPECT_FALSE(program.ok());
}

TEST(Coverage, TransposeOfScalarIsDropped) {
  DataCatalog catalog;
  auto program = CompileScript("s = 3;\nt_ = t(s);\n", catalog);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const PlanNodePtr normalized =
      PushDownTransposes(program->statements[1].plan);
  // t() over a scalar vanishes; the scalar variable reference remains.
  EXPECT_EQ(normalized->op, PlanOp::kInput);
  EXPECT_EQ(normalized->name, "s");
}

TEST(Coverage, ChainWithGeneratorFactors) {
  DataCatalog catalog;
  auto program = CompileScript(
      "M = ones(4, 4);\ny = eye(4) %*% M %*% ones(4, 1);\n", catalog);
  ASSERT_TRUE(program.ok());
  auto d = DecomposeIntoBlocks(
      NormalizeForSearch(program->statements[1].plan));
  ASSERT_TRUE(d.ok());
  ASSERT_EQ(d->blocks.size(), 1u);
  EXPECT_EQ(d->blocks[0].factors.size(), 3u);
  // Generators render as stable symbols.
  EXPECT_EQ(d->blocks[0].factors[0].base_symbol, "eye(4)");
}

TEST(Coverage, WindowKeySingleSymmetricFactor) {
  DataCatalog catalog;
  catalog.Register("S", Matrix::Identity(4));
  auto program = CompileScript("S = read(\"S\");\ny = t(S) %*% S;\n", catalog);
  ASSERT_TRUE(program.ok());
  auto d = DecomposeIntoBlocks(
      NormalizeForSearch(program->statements[1].plan));
  ASSERT_TRUE(d.ok());
  // Without a symmetry label, t(S) stays a transposed factor.
  EXPECT_TRUE(d->blocks[0].factors[0].transposed);
}

// ---------------------------------------------------------------- ledger

TEST(Coverage, BreakdownRendering) {
  TimeBreakdown b;
  b.computation_seconds = 1.5;
  b.transmission_seconds = 0.25;
  const std::string s = b.ToString();
  EXPECT_NE(s.find("compute=1.50s"), std::string::npos);
  EXPECT_NE(s.find("transmit=250.0ms"), std::string::npos);
}

// ------------------------------------------------------------- search/opt

TEST(Coverage, SearchSpaceOfScalarOnlyLoop) {
  DataCatalog catalog;
  auto program = CompileScript(
      "i = 0;\nwhile (i < 3) {\n  i = i + 1;\n}\n", catalog);
  ASSERT_TRUE(program.ok());
  const LoopStructure loop = FindLoop(*program);
  auto outputs = InlineLoopBody(loop.loop->body);
  ASSERT_TRUE(outputs.ok());
  auto space = BuildSearchSpace(*outputs, loop.loop_assigned, {});
  ASSERT_TRUE(space.ok());
  EXPECT_TRUE(space->blocks.empty());  // nothing matrix-valued
  EXPECT_TRUE(BlockWiseSearch(*space, nullptr).empty());
}

TEST(Coverage, OptimizerOnScalarOnlyProgramIsIdentityLike) {
  DataCatalog catalog;
  RunConfig config;
  config.optimizer = OptimizerKind::kRemacAdaptive;
  auto run = RunScript(
      "i = 0;\nwhile (i < 5) {\n  i = i + 2;\n}\n", catalog, config);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_DOUBLE_EQ(run->env.at("i").AsScalar().value(), 6.0);
}

TEST(Coverage, ForLoopProgramOptimizes) {
  DataCatalog catalog;
  DatasetSpec spec;
  spec.name = "ds";
  spec.rows = 80;
  spec.cols = 8;
  spec.sparsity = 0.5;
  spec.seed = 17;
  ASSERT_TRUE(RegisterDataset(&catalog, spec).ok());
  const std::string script =
      "A = read(\"ds\");\nx = ones(8, 1);\n"
      "for (k in 1:4) {\n  x = x + 0.01 * (t(A) %*% (A %*% x));\n}\n";
  RunConfig reference;
  reference.optimizer = OptimizerKind::kAsWritten;
  auto expected = RunScript(script, catalog, reference);
  ASSERT_TRUE(expected.ok());
  RunConfig config;
  config.optimizer = OptimizerKind::kRemacAdaptive;
  auto run = RunScript(script, catalog, config);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_GT(run->optimize.applied_lse, 0);  // A^T A hoists out of the for
  EXPECT_TRUE(run->env.at("x").AsMatrix().ApproxEquals(
      expected->env.at("x").AsMatrix(), 1e-8));
}

TEST(Coverage, RepeatedOptimizationIsDeterministic) {
  DataCatalog catalog;
  DatasetSpec spec;
  spec.name = "ds";
  spec.rows = 100;
  spec.cols = 10;
  spec.sparsity = 0.4;
  spec.seed = 18;
  ASSERT_TRUE(RegisterDataset(&catalog, spec).ok());
  RunConfig config;
  config.optimizer = OptimizerKind::kRemacAdaptive;
  config.execute = false;
  const std::string script =
      "A = read(\"ds\");\nb = read(\"ds_b\");\nx = zeros(10, 1);\ni = 0;\n"
      "while (i < 5) {\n"
      "  x = x - 0.001 * (t(A) %*% (A %*% x) - t(A) %*% b);\n"
      "  i = i + 1;\n}\n";
  auto one = CompileOnly(script, catalog, config);
  auto two = CompileOnly(script, catalog, config);
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(two.ok());
  EXPECT_EQ(one->optimized_source, two->optimized_source);
}

// --------------------------------------------------------------- datasets

TEST(Coverage, AllPaperDatasetSpecsGenerate) {
  for (const DatasetSpec& spec : PaperDatasetSpecs()) {
    DatasetSpec small = spec;
    small.rows = std::min<int64_t>(spec.rows, 2000);
    const Matrix m = GenerateMatrix(small);
    EXPECT_EQ(m.rows(), small.rows);
    EXPECT_EQ(m.cols(), small.cols);
    EXPECT_GT(m.nnz(), 0);
  }
}

TEST(Coverage, ConvergenceConditionLoop) {
  // while (norm(g) > eps): a data-dependent trip count through the whole
  // pipeline — condition re-evaluated per iteration, optimizer applied.
  DataCatalog catalog;
  DatasetSpec spec;
  spec.name = "ds";
  spec.rows = 200;
  spec.cols = 10;
  spec.sparsity = 0.5;
  spec.seed = 19;
  ASSERT_TRUE(RegisterDataset(&catalog, spec).ok());
  const std::string script =
      "A = read(\"ds\");\nb = read(\"ds_b\");\n"
      "x = zeros(10, 1);\n"
      "g = t(A) %*% (A %*% x) - t(A) %*% b;\n"
      "while (norm(g) > 0.0001) {\n"
      "  x = x - 0.001 * g;\n"
      "  g = t(A) %*% (A %*% x) - t(A) %*% b;\n"
      "}\n";
  for (OptimizerKind kind :
       {OptimizerKind::kAsWritten, OptimizerKind::kRemacAdaptive}) {
    RunConfig config;
    config.optimizer = kind;
    config.max_iterations = 2000;
    auto run = RunScript(script, catalog, config);
    ASSERT_TRUE(run.ok()) << OptimizerKindName(kind) << ": "
                          << run.status().ToString();
    // The loop exits by convergence, not by the cap.
    EXPECT_LT(run->env.at("g").AsMatrix().ToDense().ApproxEquals(
                  Matrix::Zeros(10, 1).ToDense(), 1e-3)
                  ? 0.0
                  : FrobeniusNorm(run->env.at("g").AsMatrix()),
              0.0001 + 1e-12)
        << OptimizerKindName(kind);
  }
}

TEST(Coverage, ZipfSpecNaming) {
  EXPECT_EQ(ZipfSpec(1.4).name, "zipf-1.4");
  EXPECT_EQ(ZipfSpec(0.0).name, "zipf-0.0");
}

}  // namespace
}  // namespace remac
