#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/string_util.h"
#include "data/generators.h"
#include "matrix/fused_tape.h"
#include "matrix/kernels.h"
#include "obs/metrics.h"
#include "plan/fusion.h"
#include "runtime/program_runner.h"
#include "service/matcache/intermediate_key.h"

/// Elementwise-fusion tests (ISSUE 10): the tape interpreter is
/// bitwise-identical to the unfused kernel sequence, the plan pass fuses
/// exactly the maximal same-shape elementwise regions (and nothing across
/// barriers), results are invariant under thread count and the
/// fuse_elementwise flag, and the executor's buffer-steal path plus the
/// remac.fusion.* counters fire. Suites are named Fusion* so
/// scripts/check.sh runs them under TSan/ASan/UBSan.

namespace remac {
namespace {

Matrix RandomDense(int64_t rows, int64_t cols, uint64_t seed) {
  Rng rng(seed);
  DenseMatrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) m.data()[i] = rng.NextGaussian();
  return Matrix::WrapDense(std::move(m));
}

/// Exact same-format equality (memcmp on the payload).
::testing::AssertionResult BitwiseEqual(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return ::testing::AssertionFailure() << "shape mismatch";
  }
  if (a.is_dense() != b.is_dense()) {
    return ::testing::AssertionFailure() << "format mismatch";
  }
  if (a.is_dense()) {
    const int64_t bytes =
        a.dense().size() * static_cast<int64_t>(sizeof(double));
    if (bytes > 0 &&
        std::memcmp(a.dense().data(), b.dense().data(), bytes) != 0) {
      return ::testing::AssertionFailure() << "dense payload differs";
    }
    return ::testing::AssertionSuccess();
  }
  const CsrMatrix& sa = a.csr();
  const CsrMatrix& sb = b.csr();
  if (sa.row_ptr() != sb.row_ptr() || sa.col_idx() != sb.col_idx()) {
    return ::testing::AssertionFailure() << "csr structure differs";
  }
  if (sa.nnz() > 0 && std::memcmp(sa.values().data(), sb.values().data(),
                                  sa.nnz() * sizeof(double)) != 0) {
    return ::testing::AssertionFailure() << "csr values differ";
  }
  return ::testing::AssertionSuccess();
}

/// Exact cell-wise equality across storage formats (fused CSR regions may
/// legitimately come back dense when structures diverge; the values must
/// still match exactly, no tolerance).
::testing::AssertionResult SameValues(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return ::testing::AssertionFailure() << "shape mismatch";
  }
  for (int64_t r = 0; r < a.rows(); ++r) {
    for (int64_t c = 0; c < a.cols(); ++c) {
      if (a.At(r, c) != b.At(r, c)) {
        return ::testing::AssertionFailure()
               << "cell (" << r << "," << c << "): " << a.At(r, c) << " vs "
               << b.At(r, c);
      }
    }
  }
  return ::testing::AssertionSuccess();
}

int CountFusedNodes(const PlanNode& node) {
  int count = node.op == PlanOp::kFusedMap ? 1 : 0;
  for (const auto& child : node.children) count += CountFusedNodes(*child);
  return count;
}

int CountFusedNodes(const std::vector<CompiledStmt>& statements) {
  int count = 0;
  for (const auto& stmt : statements) {
    if (stmt.plan != nullptr) count += CountFusedNodes(*stmt.plan);
    if (stmt.condition != nullptr) count += CountFusedNodes(*stmt.condition);
    count += CountFusedNodes(stmt.body);
  }
  return count;
}

DataCatalog FusionCatalog() {
  DataCatalog catalog;
  DatasetSpec a;
  a.name = "a";
  a.rows = 40;
  a.cols = 30;
  a.sparsity = 0.9;
  a.seed = 11;
  EXPECT_TRUE(RegisterDataset(&catalog, a).ok());
  DatasetSpec b = a;
  b.name = "b";
  b.seed = 12;
  EXPECT_TRUE(RegisterDataset(&catalog, b).ok());
  DatasetSpec s = a;
  s.name = "sp";
  s.sparsity = 0.05;
  s.seed = 13;
  EXPECT_TRUE(RegisterDataset(&catalog, s).ok());
  DatasetSpec s2 = s;
  s2.name = "sp2";
  s2.seed = 14;
  EXPECT_TRUE(RegisterDataset(&catalog, s2).ok());
  return catalog;
}

/// Runs `script` fused and unfused under the same config and checks every
/// requested variable for exact value equality; returns the fused report.
RunReport RunFusedVsUnfused(const std::string& script,
                            const DataCatalog& catalog,
                            const std::vector<std::string>& vars,
                            OptimizerKind optimizer = OptimizerKind::kAsWritten) {
  RunConfig fused_config;
  fused_config.optimizer = optimizer;
  fused_config.max_iterations = 5;
  RunConfig unfused_config = fused_config;
  unfused_config.fuse_elementwise = false;
  auto fused = RunScript(script, catalog, fused_config);
  auto unfused = RunScript(script, catalog, unfused_config);
  EXPECT_TRUE(fused.ok()) << script << fused.status().ToString();
  EXPECT_TRUE(unfused.ok()) << script << unfused.status().ToString();
  if (fused.ok() && unfused.ok()) {
    EXPECT_EQ(CountFusedNodes(unfused->optimized_program->statements), 0);
    for (const std::string& var : vars) {
      EXPECT_TRUE(SameValues(fused->env.at(var).AsMatrix(),
                             unfused->env.at(var).AsMatrix()))
          << "variable " << var << " for script:\n" << script;
    }
  }
  return fused.ok() ? std::move(fused).value() : RunReport{};
}

struct ThreadGuard {
  ~ThreadGuard() { SetKernelThreads(0); }
};

// ---------------------------------------------------------------------------
// Tape interpreter unit tests
// ---------------------------------------------------------------------------

/// The bench/pass chain max((a + b) * a - b, a) as a tape (DFS input
/// occurrences, no dedup).
FusedTape ChainTape(int64_t rows, int64_t cols) {
  FusedTape tape;
  tape.rows = rows;
  tape.cols = cols;
  tape.num_inputs = 5;
  tape.input_scalar.assign(5, 0);
  tape.steps = {{FusedOp::kAdd, 0, 1},
                {FusedOp::kMul, 5, 2},
                {FusedOp::kSub, 6, 3},
                {FusedOp::kMax, 7, 4}};
  return tape;
}

TEST(FusionTape, ToStringIsCanonical) {
  const FusedTape tape = ChainTape(4, 3);
  EXPECT_EQ(tape.ToString(),
            "M,M,M,M,M|t0=add(i0,i1);t1=mul(t0,i2);t2=sub(t1,i3);"
            "t3=max(t2,i4)");
}

TEST(FusionTape, DenseExecutionMatchesUnfusedKernels) {
  const Matrix a = RandomDense(33, 17, 1);
  const Matrix b = RandomDense(33, 17, 2);
  auto exec = ExecuteFusedTape(ChainTape(33, 17), {a, b, a, b, a}, {});
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  const Matrix t0 = Add(a, b).value();
  const Matrix t1 = ElementwiseMultiply(t0, a).value();
  const Matrix t2 = Subtract(t1, b).value();
  const Matrix expected = ElementwiseMax(t2, a).value();
  EXPECT_TRUE(BitwiseEqual(exec->output, expected));
  EXPECT_FALSE(exec->csr_path);
  // Shared input handles: nothing to steal.
  EXPECT_FALSE(exec->in_place);
  // Per-step nnz is exact (the final step's count matches the output).
  ASSERT_EQ(exec->step_nnz.size(), 4u);
  EXPECT_EQ(exec->step_nnz[3], exec->output.nnz());
  EXPECT_EQ(exec->step_nnz[0], t0.nnz());
}

TEST(FusionTape, CsrValueArrayFastPath) {
  // One CSR operand used on both sides shares its structure with itself:
  // the tape runs over the stored values only.
  Rng rng(7);
  DenseMatrix d(20, 15);
  for (int64_t i = 0; i < d.size(); ++i) {
    if (rng.NextDouble() < 0.2) d.data()[i] = rng.NextGaussian();
  }
  const Matrix m = Matrix::WrapCsr(CsrMatrix::FromDense(d));
  FusedTape tape;
  tape.rows = 20;
  tape.cols = 15;
  tape.num_inputs = 3;
  tape.input_scalar = {0, 0, 1};
  tape.steps = {{FusedOp::kMul, 0, 1}, {FusedOp::kMul, 3, 2}};
  auto exec = ExecuteFusedTape(tape, {m, m}, {2.0});
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  EXPECT_TRUE(exec->csr_path);
  EXPECT_FALSE(exec->output.is_dense());
  const Matrix squared = ElementwiseMultiply(m, m).value();
  for (int64_t r = 0; r < 20; ++r) {
    for (int64_t c = 0; c < 15; ++c) {
      EXPECT_EQ(exec->output.At(r, c), 2.0 * squared.At(r, c));
    }
  }
}

TEST(FusionTape, NonZeroZeroImageFallsBackToDense) {
  Rng rng(8);
  DenseMatrix d(12, 12);
  for (int64_t i = 0; i < d.size(); ++i) {
    if (rng.NextDouble() < 0.2) d.data()[i] = rng.NextGaussian();
  }
  const Matrix m = Matrix::WrapCsr(CsrMatrix::FromDense(d));
  // m * m + 1 densifies: cells outside the structure become 1.
  FusedTape tape;
  tape.rows = 12;
  tape.cols = 12;
  tape.num_inputs = 3;
  tape.input_scalar = {0, 0, 1};
  tape.steps = {{FusedOp::kMul, 0, 1}, {FusedOp::kAdd, 3, 2}};
  auto exec = ExecuteFusedTape(tape, {m, m}, {1.0});
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  EXPECT_FALSE(exec->csr_path);
  EXPECT_TRUE(exec->output.is_dense());
  EXPECT_EQ(exec->output.At(0, 0), m.At(0, 0) * m.At(0, 0) + 1.0);
}

TEST(FusionTape, StealsUniquelyOwnedDenseInput) {
  FusedTape tape;
  tape.rows = 9;
  tape.cols = 9;
  tape.num_inputs = 2;
  tape.input_scalar = {0, 0};
  tape.steps = {{FusedOp::kAdd, 0, 1}, {FusedOp::kMul, 2, 0}};
  const Matrix shared = RandomDense(9, 9, 3);
  // Reference run with shared handles (no steal possible).
  auto reference = ExecuteFusedTape(tape, {shared, shared}, {});
  ASSERT_TRUE(reference.ok());
  EXPECT_FALSE(reference->in_place);
  // Same values through a uniquely-owned first operand: stolen, identical.
  std::vector<Matrix> inputs;
  inputs.push_back(RandomDense(9, 9, 3));
  inputs.push_back(shared);
  auto stolen = ExecuteFusedTape(tape, std::move(inputs), {});
  ASSERT_TRUE(stolen.ok());
  EXPECT_TRUE(stolen->in_place);
  EXPECT_TRUE(BitwiseEqual(stolen->output, reference->output));
}

TEST(FusionTape, ThreadCountNeverChangesBits) {
  ThreadGuard guard;
  const Matrix a = RandomDense(47, 61, 4);
  const Matrix b = RandomDense(47, 61, 5);
  const FusedTape tape = ChainTape(47, 61);
  SetKernelThreads(1);
  auto one = ExecuteFusedTape(tape, {a, b, a, b, a}, {});
  ASSERT_TRUE(one.ok());
  for (int threads : {2, 8}) {
    SetKernelThreads(threads);
    auto many = ExecuteFusedTape(tape, {a, b, a, b, a}, {});
    ASSERT_TRUE(many.ok());
    EXPECT_TRUE(BitwiseEqual(many->output, one->output))
        << threads << " threads";
    EXPECT_EQ(many->step_nnz, one->step_nnz) << threads << " threads";
  }
}

// ---------------------------------------------------------------------------
// Plan pass: what fuses and what stays apart
// ---------------------------------------------------------------------------

TEST(FusionPass, FusesChainAndStaysBitwiseIdentical) {
  const DataCatalog catalog = FusionCatalog();
  const RunReport fused = RunFusedVsUnfused(
      "A = read(\"a\");\n"
      "B = read(\"b\");\n"
      "Y = max(A + B, A * B) - A / (B + 3);\n",
      catalog, {"Y"});
  ASSERT_NE(fused.optimized_program, nullptr);
  EXPECT_GE(CountFusedNodes(fused.optimized_program->statements), 1);
}

TEST(FusionPass, MinMaxWithScalarBroadcastAndSparseOperands) {
  const DataCatalog catalog = FusionCatalog();
  RunFusedVsUnfused(
      "S = read(\"sp\");\n"
      "T = read(\"sp2\");\n"
      "Y = min(S, 0.5) + max(S, T) * 2;\n"
      "Z = max(0 - S, S) - min(S * T, S);\n",
      catalog, {"Y", "Z"});
}

TEST(FusionPass, MinMaxSemantics) {
  const DataCatalog catalog = FusionCatalog();
  RunConfig config;
  config.optimizer = OptimizerKind::kAsWritten;
  auto run = RunScript(
      "A = read(\"a\");\n"
      "L = min(A, 0.25);\n"
      "H = max(A, 0.25);\n",
      catalog, config);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const Matrix a = run->env.at("A").AsMatrix();
  const Matrix low = run->env.at("L").AsMatrix();
  const Matrix high = run->env.at("H").AsMatrix();
  for (int64_t r = 0; r < a.rows(); ++r) {
    for (int64_t c = 0; c < a.cols(); ++c) {
      EXPECT_EQ(low.At(r, c), FusedApply(FusedOp::kMin, a.At(r, c), 0.25));
      EXPECT_EQ(high.At(r, c), FusedApply(FusedOp::kMax, a.At(r, c), 0.25));
    }
  }
}

TEST(FusionPass, SingleOpDoesNotFuse) {
  const DataCatalog catalog = FusionCatalog();
  RunConfig config;
  config.optimizer = OptimizerKind::kAsWritten;
  auto run = RunScript(
      "A = read(\"a\");\nB = read(\"b\");\nY = A + B;\n", catalog, config);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(CountFusedNodes(run->optimized_program->statements), 0);
}

TEST(FusionPass, ScalarArithmeticDoesNotFuse) {
  const DataCatalog catalog = FusionCatalog();
  RunConfig config;
  config.optimizer = OptimizerKind::kAsWritten;
  auto run = RunScript("x = 2 + 3 * 4 - 1;\n", catalog, config);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(CountFusedNodes(run->optimized_program->statements), 0);
  EXPECT_DOUBLE_EQ(run->env.at("x").AsScalar().value(), 13.0);
}

TEST(FusionPass, MultiplyIsABarrierButItsResultIsAnInput) {
  const DataCatalog catalog = FusionCatalog();
  const RunReport fused = RunFusedVsUnfused(
      "A = read(\"a\");\n"
      "B = read(\"b\");\n"
      "Y = (A %*% t(B)) * 2 + (A %*% t(B));\n",
      catalog, {"Y"});
  ASSERT_NE(fused.optimized_program, nullptr);
  // The elementwise ops fuse; the multiplies survive as region inputs.
  const auto& statements = fused.optimized_program->statements;
  EXPECT_GE(CountFusedNodes(statements), 1);
  bool matmul_under_fused = false;
  for (const auto& stmt : statements) {
    if (stmt.plan == nullptr || stmt.plan->op != PlanOp::kFusedMap) continue;
    for (const auto& child : stmt.plan->children) {
      if (child->op == PlanOp::kMatMul) matmul_under_fused = true;
    }
  }
  EXPECT_TRUE(matmul_under_fused);
}

TEST(FusionPass, RandIsABarrierButItsResultIsAnInput) {
  const DataCatalog catalog = FusionCatalog();
  const RunReport fused = RunFusedVsUnfused(
      "R = rand(40, 30);\n"
      "A = read(\"a\");\n"
      "Y = (R + A) * R - A;\n",
      catalog, {"Y"});
  ASSERT_NE(fused.optimized_program, nullptr);
  EXPECT_GE(CountFusedNodes(fused.optimized_program->statements), 1);
}

TEST(FusionPass, LoopBodiesFuseAndIterate) {
  const DataCatalog catalog = FusionCatalog();
  RunFusedVsUnfused(
      "A = read(\"a\");\n"
      "B = read(\"b\");\n"
      "X = A;\n"
      "i = 0;\n"
      "while (i < 3) {\n"
      "  X = max(X + B, X * 0.5) - B / 7;\n"
      "  i = i + 1;\n"
      "}\n",
      catalog, {"X"});
}

TEST(FusionPass, AdaptiveOptimizerPipelineStaysIdentical) {
  const DataCatalog catalog = FusionCatalog();
  RunFusedVsUnfused(
      "A = read(\"a\");\n"
      "B = read(\"b\");\n"
      "G = t(A) %*% A;\n"
      "Y = (G + t(G)) * 0.5 - G / 3;\n",
      catalog, {"Y"}, OptimizerKind::kRemacAdaptive);
}

TEST(FusionPass, TreeRewriteSharesUntouchedSubtrees) {
  const DataCatalog catalog = FusionCatalog();
  RunConfig config;
  auto compiled = CompileScript(
      "A = read(\"a\");\nB = read(\"b\");\nY = A %*% t(B);\n", catalog);
  ASSERT_TRUE(compiled.ok());
  // Nothing fusable: the rewrite must return the identical plan pointers.
  for (const auto& stmt : compiled->statements) {
    if (stmt.plan == nullptr) continue;
    FusionReport report;
    PlanNodePtr rewritten = FuseElementwiseTree(stmt.plan, &report);
    EXPECT_EQ(rewritten.get(), stmt.plan.get());
    EXPECT_EQ(report.regions, 0);
  }
}

// ---------------------------------------------------------------------------
// Randomized chains (chaos seeds): fused == unfused, exactly
// ---------------------------------------------------------------------------

std::string RandomChain(Rng* rng, int depth) {
  if (depth == 0) {
    switch (rng->NextBounded(4)) {
      case 0: return "A";
      case 1: return "B";
      case 2: return "S";
      default: return "0.75";
    }
  }
  const std::string lhs = RandomChain(rng, depth - 1);
  const std::string rhs = RandomChain(rng, depth - 1);
  switch (rng->NextBounded(6)) {
    case 0: return "(" + lhs + " + " + rhs + ")";
    case 1: return "(" + lhs + " - " + rhs + ")";
    case 2: return "(" + lhs + " * " + rhs + ")";
    case 3: return "(" + lhs + " / (" + rhs + " + 2))";
    case 4: return "min(" + lhs + ", " + rhs + ")";
    default: return "max(" + lhs + ", " + rhs + ")";
  }
}

class FusionChaosTest : public ::testing::TestWithParam<int> {};

TEST_P(FusionChaosTest, RandomChainsAreInvariantUnderFusion) {
  const DataCatalog catalog = FusionCatalog();
  Rng rng(static_cast<uint64_t>(GetParam()) * 31 + 5);
  std::string script =
      "A = read(\"a\");\nB = read(\"b\");\nS = read(\"sp\");\n";
  for (int s = 0; s < 3; ++s) {
    script += StringFormat("Y%d = ", s) + RandomChain(&rng, 3) + ";\n";
  }
  RunFusedVsUnfused(script, catalog, {"Y0", "Y1", "Y2"});
}

INSTANTIATE_TEST_SUITE_P(Seeds, FusionChaosTest, ::testing::Range(1, 9));

// ---------------------------------------------------------------------------
// Executor integration: buffer steal + metrics
// ---------------------------------------------------------------------------

TEST(FusionExec, SelfUpdateStealsTheDyingBuffer) {
  const DataCatalog catalog = FusionCatalog();
  Counter* in_place =
      MetricsRegistry::Global().GetCounter("remac.fusion.in_place_hits");
  const int64_t before = in_place->Value();
  // X dies into its own update: the fused region runs inside X's buffer.
  RunFusedVsUnfused(
      "A = read(\"a\");\n"
      "X = A + 0;\n"
      "X = (X + A) * 2 - A;\n",
      catalog, {"X"});
  EXPECT_GT(in_place->Value(), before);
}

TEST(FusionExec, CountersAdvanceOnAFusedRun) {
  const DataCatalog catalog = FusionCatalog();
  auto* registry = &MetricsRegistry::Global();
  Counter* regions = registry->GetCounter("remac.fusion.regions");
  Counter* ops = registry->GetCounter("remac.fusion.ops_fused");
  Counter* bytes = registry->GetCounter("remac.fusion.bytes_avoided");
  const int64_t regions_before = regions->Value();
  const int64_t ops_before = ops->Value();
  const int64_t bytes_before = bytes->Value();
  RunConfig config;
  config.optimizer = OptimizerKind::kAsWritten;
  auto run = RunScript(
      "A = read(\"a\");\n"
      "B = read(\"b\");\n"
      "Y = max(A + B, A) * B - A / 5;\n",
      catalog, config);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_GT(regions->Value(), regions_before);
  // A 4-op region: ops_fused advances by >= 4, and every interior step's
  // materialization is counted as avoided bytes.
  EXPECT_GE(ops->Value() - ops_before, 4);
  EXPECT_GT(bytes->Value(), bytes_before);
}

TEST(FusionExec, AuditStillReconcilesFlopsUnderFusion) {
  const DataCatalog catalog = FusionCatalog();
  RunConfig config;
  config.optimizer = OptimizerKind::kAsWritten;
  auto run = RunScript(
      "A = read(\"a\");\n"
      "B = read(\"b\");\n"
      "Y = (A + B) * A - B / 2;\n",
      catalog, config);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  // The audit walker replays the fused region step by step; with the
  // exact per-step sparsities booked by the executor the FLOP sides
  // cannot drift by more than estimation error on these dense operands.
  EXPECT_GT(run->audit.flops.actual, 0.0);
  EXPECT_GT(run->audit.flops.predicted, 0.0);
}

// ---------------------------------------------------------------------------
// MatCache: fused pure-read chains are candidates
// ---------------------------------------------------------------------------

TEST(FusionMatCache, PureReadFusedChainBecomesACandidate) {
  const DataCatalog catalog = FusionCatalog();
  RunConfig config;
  config.optimizer = OptimizerKind::kAsWritten;
  auto run = RunScript(
      "Y = (read(\"a\") + read(\"b\")) * read(\"a\") - read(\"b\");\n",
      catalog, config);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const auto candidates = ExtractIntermediateCandidates(
      *run->optimized_program, catalog, config);
  bool found = false;
  for (const auto& candidate : candidates) {
    if (candidate.node->op != PlanOp::kFusedMap) continue;
    found = true;
    // The canonical key embeds the tape, and both datasets invalidate it.
    EXPECT_NE(candidate.window_key.find("t0="), std::string::npos);
    EXPECT_EQ(candidate.datasets,
              (std::vector<std::string>{"a", "b"}));
    EXPECT_GT(candidate.predicted_flops, 0.0);
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace remac
