#include <gtest/gtest.h>

#include "algorithms/scripts.h"
#include "core/analysis.h"
#include "data/generators.h"
#include "plan/plan_builder.h"

namespace remac {
namespace {

DataCatalog AnalysisCatalog() {
  DataCatalog catalog;
  DatasetSpec spec;
  spec.name = "ds";
  spec.rows = 100;
  spec.cols = 8;
  spec.sparsity = 0.5;
  spec.seed = 1;
  EXPECT_TRUE(RegisterDataset(&catalog, spec, true).ok());
  return catalog;
}

TEST(FindLoop, SplitsProgram) {
  const DataCatalog catalog = AnalysisCatalog();
  auto program = CompileScript(DfpScript("ds", 5), catalog);
  ASSERT_TRUE(program.ok());
  const LoopStructure loop = FindLoop(*program);
  ASSERT_NE(loop.loop, nullptr);
  EXPECT_EQ(loop.preamble.size(), 5u);  // A, b, x, H, i
  EXPECT_TRUE(loop.postamble.empty());
  EXPECT_EQ(loop.loop_assigned,
            (std::set<std::string>{"g", "d", "H", "x", "i"}));
}

TEST(FindLoop, NoLoopProgram) {
  const DataCatalog catalog = AnalysisCatalog();
  auto program = CompileScript(PartialDfpScript("ds"), catalog);
  ASSERT_TRUE(program.ok());
  const LoopStructure loop = FindLoop(*program);
  EXPECT_EQ(loop.loop, nullptr);
  EXPECT_EQ(loop.preamble.size(), 4u);
}

TEST(Inline, SubstitutesChainDefinitions) {
  const DataCatalog catalog = AnalysisCatalog();
  auto program = CompileScript(DfpScript("ds", 5), catalog);
  ASSERT_TRUE(program.ok());
  const LoopStructure loop = FindLoop(*program);
  auto outputs = InlineLoopBody(loop.loop->body);
  ASSERT_TRUE(outputs.ok());
  ASSERT_EQ(outputs->size(), 5u);
  // d = -(H g) is chain-like, so the H update sees H/g instead of d.
  const std::string h_update = (*outputs)[2].plan->ToString();
  EXPECT_EQ((*outputs)[2].target, "H");
  EXPECT_EQ(h_update.find(" d"), std::string::npos) << h_update;
  EXPECT_NE(h_update.find("g"), std::string::npos);
}

TEST(Inline, KeepsNonChainDefinitionsAsLeaves) {
  const DataCatalog catalog = AnalysisCatalog();
  auto program = CompileScript(DfpScript("ds", 5), catalog);
  ASSERT_TRUE(program.ok());
  const LoopStructure loop = FindLoop(*program);
  auto outputs = InlineLoopBody(loop.loop->body);
  ASSERT_TRUE(outputs.ok());
  // g = t(A)(Ax - b) contains a subtraction: it must NOT be inlined into
  // the H update (the paper's Figure 4 keeps g as a coordinate factor).
  const std::string h_update = (*outputs)[2].plan->ToString();
  EXPECT_NE(h_update.find("g"), std::string::npos);
  EXPECT_EQ(h_update.find("read"), h_update.find("read"));  // smoke
}

TEST(Inline, StaleSafety) {
  // v = A u (chain); A reassigned; w = v must NOT expand to the stale A.
  const DataCatalog catalog = AnalysisCatalog();
  auto program = CompileScript(
      "A = read(\"ds\");\n"
      "u = zeros(ncol(A), 1);\n"
      "B = eye(8);\n"
      "i = 0;\n"
      "while (i < 2) {\n"
      "  v = B %*% u;\n"
      "  B = B + B;\n"
      "  w = B %*% v;\n"
      "  i = i + 1;\n"
      "}\n",
      catalog);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const LoopStructure loop = FindLoop(*program);
  auto outputs = InlineLoopBody(loop.loop->body);
  ASSERT_TRUE(outputs.ok());
  // w's RHS must reference v (B changed in between), not (B %*% u).
  const std::string w_plan = (*outputs)[2].plan->ToString();
  EXPECT_NE(w_plan.find("v"), std::string::npos) << w_plan;
  EXPECT_EQ(w_plan.find("u"), std::string::npos) << w_plan;
}

TEST(LoopConstants, LabelsLeavesAndInteriors) {
  const DataCatalog catalog = AnalysisCatalog();
  auto program = CompileScript(
      "A = read(\"ds\");\nx = zeros(8, 1);\ny = t(A) %*% (A %*% x);\n",
      catalog);
  ASSERT_TRUE(program.ok());
  PlanNodePtr plan = program->statements[2].plan->Clone();
  LabelLoopConstants(plan.get(), /*loop_assigned=*/{"x"});
  // Whole tree depends on x: not constant.
  EXPECT_FALSE(plan->loop_constant);
  // The t(A) subtree is constant.
  EXPECT_TRUE(plan->children[0]->loop_constant);
}

TEST(Symmetry, StructuralRules) {
  const DataCatalog catalog = AnalysisCatalog();
  auto program = CompileScript(
      "A = read(\"ds\");\n"
      "E = eye(8);\n"
      "S = t(A) %*% A;\n"
      "N = A %*% t(A) %*% A;\n",
      catalog);
  ASSERT_TRUE(program.ok());
  std::map<std::string, bool> vars;
  PlanNodePtr s = program->statements[2].plan->Clone();
  LabelSymmetry(s.get(), vars);
  EXPECT_TRUE(IsStructurallySymmetric(*s));  // A^T A
  PlanNodePtr n = program->statements[3].plan->Clone();
  LabelSymmetry(n.get(), vars);
  EXPECT_FALSE(IsStructurallySymmetric(*n));  // 100 x 8, not even square
}

TEST(Symmetry, DfpHessianApproximationStaysSymmetric) {
  const DataCatalog catalog = AnalysisCatalog();
  auto program = CompileScript(DfpScript("ds", 5), catalog);
  ASSERT_TRUE(program.ok());
  const LoopStructure loop = FindLoop(*program);
  const auto symmetric = InferSymmetricVars(loop);
  EXPECT_TRUE(symmetric.at("H"));   // eye + symmetric updates
  EXPECT_FALSE(symmetric.at("x"));  // a vector
  EXPECT_FALSE(symmetric.at("g"));
}

TEST(Symmetry, RetractsWhenUpdateBreaksIt) {
  const DataCatalog catalog = AnalysisCatalog();
  auto program = CompileScript(
      "A = read(\"ds\");\n"
      "M = eye(8);\n"
      "i = 0;\n"
      "while (i < 2) {\n"
      "  M = M %*% t(A) %*% A %*% M %*% M;\n"  // M^T != M in general
      "  i = i + 1;\n"
      "}\n",
      catalog);
  ASSERT_TRUE(program.ok());
  const LoopStructure loop = FindLoop(*program);
  const auto symmetric = InferSymmetricVars(loop);
  EXPECT_FALSE(symmetric.at("M"));
}

TEST(Symmetry, OuterProductIsSymmetric) {
  const DataCatalog catalog = AnalysisCatalog();
  auto program = CompileScript(
      "v = zeros(8, 1);\nP = v %*% t(v);\n", catalog);
  ASSERT_TRUE(program.ok());
  PlanNodePtr p = program->statements[1].plan->Clone();
  LabelSymmetry(p.get(), {});
  EXPECT_TRUE(IsStructurallySymmetric(*p));
}

}  // namespace
}  // namespace remac
