#include <gtest/gtest.h>

#include <algorithm>

#include "cluster/grid2d_partitioner.h"
#include "cluster/transmission_ledger.h"
#include "common/rng.h"
#include "cost/physical_model.h"
#include "distributed/distributed_ops.h"
#include "distributed/tiled_matrix2d.h"
#include "matrix/kernels.h"
#include "matrix/storage_format.h"

namespace remac {
namespace {

Matrix RandomSparse(int64_t rows, int64_t cols, double sp, uint64_t seed) {
  Rng rng(seed);
  DenseMatrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) {
    if (rng.NextDouble() < sp) m.data()[i] = rng.NextGaussian();
  }
  return Matrix::FromDense(std::move(m));
}

/// n x n matrix whose only non-zeros are dense `bs x bs` blocks on the
/// tile diagonal — every off-diagonal tile is annotated-empty.
Matrix BlockDiagonal(int64_t n, int64_t bs) {
  DenseMatrix m(n, n);
  for (int64_t r = 0; r < n; ++r) {
    const int64_t tile = r / bs;
    for (int64_t c = tile * bs; c < std::min(n, (tile + 1) * bs); ++c) {
      m.data()[r * n + c] = 1.0 + static_cast<double>(r + c) / n;
    }
  }
  return Matrix::FromDense(std::move(m));
}

ClusterModel SmallModel() {
  ClusterModel model;
  model.block_size = 16;
  model.driver_memory_bytes = 1 << 20;
  return model;
}

TEST(TiledMatrix2D, GridShapeAndExactNnz) {
  const Matrix m = RandomSparse(40, 33, 0.2, 1);
  const TiledMatrix2D t =
      TiledMatrix2D::Partition(m, /*transposed=*/false, SmallModel());
  EXPECT_EQ(t.grid_rows(), 3);  // ceil(40/16)
  EXPECT_EQ(t.grid_cols(), 3);  // ceil(33/16)
  EXPECT_EQ(t.rows(), 40);
  EXPECT_EQ(t.cols(), 33);
  int64_t total = 0;
  for (int64_t tr = 0; tr < t.grid_rows(); ++tr) {
    for (int64_t tc = 0; tc < t.grid_cols(); ++tc) {
      total += t.TileNnz(tr, tc);
    }
  }
  EXPECT_EQ(total, m.nnz());
  EXPECT_EQ(t.TotalNnz(), m.nnz());
}

TEST(TiledMatrix2D, AnnotationsFollowSharedThreshold) {
  const ClusterModel model = SmallModel();
  const Matrix diag = BlockDiagonal(64, 16);
  const TiledMatrix2D t = TiledMatrix2D::Partition(diag, false, model);
  ASSERT_EQ(t.grid_rows(), 4);
  ASSERT_EQ(t.grid_cols(), 4);
  for (int64_t tr = 0; tr < 4; ++tr) {
    for (int64_t tc = 0; tc < 4; ++tc) {
      if (tr == tc) {
        EXPECT_EQ(t.TileAnnotation(tr, tc), TileFormat::kDense);
        EXPECT_GT(t.TileBytes(tr, tc), 0.0);
      } else {
        EXPECT_EQ(t.TileAnnotation(tr, tc), TileFormat::kEmpty);
        // Annotated-empty tiles are never shipped: exactly zero bytes.
        EXPECT_EQ(t.TileBytes(tr, tc), 0.0);
      }
    }
  }
  EXPECT_EQ(t.EmptyTiles(), 12);

  // A tile below the dense threshold is annotated CSR and priced below
  // its dense serialization.
  const Matrix sparse = RandomSparse(16, 16, 0.1, 7);
  const TiledMatrix2D ts = TiledMatrix2D::Partition(sparse, false, model);
  ASSERT_GT(sparse.nnz(), 0);
  ASSERT_LT(sparse.Sparsity(), kDenseFormatThreshold);
  EXPECT_EQ(ts.TileAnnotation(0, 0), TileFormat::kCsr);
  EXPECT_LT(ts.TileBytes(0, 0), 16 * 16 * 8.0);
}

TEST(TiledMatrix2D, TransposedViewMatchesMaterializedTranspose) {
  const ClusterModel model = SmallModel();
  const Matrix m = RandomSparse(40, 23, 0.15, 3);
  const TiledMatrix2D view = TiledMatrix2D::Partition(m, true, model);
  const TiledMatrix2D real =
      TiledMatrix2D::Partition(Transpose(m), false, model);
  ASSERT_EQ(view.grid_rows(), real.grid_rows());
  ASSERT_EQ(view.grid_cols(), real.grid_cols());
  EXPECT_EQ(view.rows(), 23);
  EXPECT_EQ(view.cols(), 40);
  for (int64_t tr = 0; tr < view.grid_rows(); ++tr) {
    for (int64_t tc = 0; tc < view.grid_cols(); ++tc) {
      EXPECT_EQ(view.TileNnz(tr, tc), real.TileNnz(tr, tc));
    }
  }
  EXPECT_DOUBLE_EQ(view.TotalBytes(), real.TotalBytes());
}

TEST(TiledMatrix2D, PerWorkerBytesSumToTotal) {
  const Matrix m = RandomSparse(64, 64, 0.3, 2);
  const TiledMatrix2D t = TiledMatrix2D::Partition(m, false, SmallModel());
  const Grid2DPartitioner grid(6);
  const auto loads = t.PerWorkerBytes(grid);
  ASSERT_EQ(loads.size(), 6u);
  double sum = 0.0;
  for (double l : loads) sum += l;
  EXPECT_NEAR(sum, t.TotalBytes(), 1e-6);
}

TEST(Dist2D, CandidateRequiresCpmmWorkersAndMode) {
  ClusterModel model = SmallModel();
  MatInfo a{100000, 64, 1.0, true};
  MatInfo b{64, 100000, 1.0, true};
  const OpCosting cpmm = CostMultiply(a, b, 1.0, model);
  ASSERT_EQ(cpmm.method, MultiplyMethod::kCpmm);
  EXPECT_TRUE(Summa2DCandidate(cpmm, model));

  model.dist2d = Dist2DMode::kOff;
  EXPECT_FALSE(Summa2DCandidate(cpmm, model));
  model.dist2d = Dist2DMode::kAuto;
  model.num_workers = 1;
  EXPECT_FALSE(Summa2DCandidate(cpmm, model));

  // A local multiply is never a 2D candidate.
  const ClusterModel small = SmallModel();
  MatInfo la{10, 10, 1.0, false};
  const OpCosting local = CostMultiply(la, la, 1.0, small);
  ASSERT_EQ(local.method, MultiplyMethod::kLocalOp);
  EXPECT_FALSE(Summa2DCandidate(local, small));
}

TEST(Dist2D, EstimatedSummaPreservesFlopsAndPlacement) {
  const ClusterModel model = SmallModel();
  MatInfo a{100000, 64, 0.05, true};
  MatInfo b{64, 100000, 0.05, true};
  const OpCosting one_d = CostMultiply(a, b, 0.1, model);
  const OpCosting summa = CostSumma2D(a, b, 0.1, model);
  EXPECT_EQ(summa.method, MultiplyMethod::kSumma2D);
  // SUMMA changes only where bytes move, never the work or the result
  // placement — the bitwise-identity guarantee at the costing level.
  EXPECT_DOUBLE_EQ(summa.flops, one_d.flops);
  EXPECT_EQ(summa.result_distributed, one_d.result_distributed);
  EXPECT_GT(summa.row_broadcast_bytes, 0.0);
  EXPECT_GT(summa.col_broadcast_bytes, 0.0);
  EXPECT_EQ(summa.shuffle_bytes, 0.0);
  EXPECT_EQ(summa.broadcast_bytes, 0.0);
}

TEST(Dist2D, SelectRespectsModeKnob) {
  ClusterModel model = SmallModel();
  MatInfo a{100000, 64, 1.0, true};
  MatInfo b{64, 100000, 1.0, true};

  model.dist2d = Dist2DMode::kOff;
  EXPECT_EQ(SelectMultiplyCosting(a, b, 1.0, model).method,
            MultiplyMethod::kCpmm);

  model.dist2d = Dist2DMode::kForce2D;
  EXPECT_EQ(SelectMultiplyCosting(a, b, 1.0, model).method,
            MultiplyMethod::kSumma2D);

  model.dist2d = Dist2DMode::kAuto;
  const OpCosting chosen = SelectMultiplyCosting(a, b, 1.0, model);
  const double one_d_s = CostMultiply(a, b, 1.0, model).Seconds(model);
  const double summa_s = CostSumma2D(a, b, 1.0, model).Seconds(model);
  EXPECT_EQ(chosen.method, summa_s < one_d_s ? MultiplyMethod::kSumma2D
                                             : MultiplyMethod::kCpmm);
  EXPECT_LE(chosen.Seconds(model), std::min(one_d_s, summa_s) + 1e-12);
}

TEST(Dist2D, TiledCostSkipsEmptyTiles) {
  const ClusterModel model = SmallModel();  // 6 workers -> 2 x 3 grid
  const Grid2DPartitioner grid(model.num_workers);
  const Matrix a = BlockDiagonal(64, 16);
  const Matrix b = BlockDiagonal(64, 16);
  auto product = Multiply(a, b);
  ASSERT_TRUE(product.ok());
  const TiledMatrix2D ta = TiledMatrix2D::Partition(a, false, model);
  const TiledMatrix2D tb = TiledMatrix2D::Partition(b, false, model);
  const TiledMatrix2D tout =
      TiledMatrix2D::Partition(product.value(), false, model);
  const OpCosting c = CostSummaTiled(ta, tb, tout, grid, model);
  EXPECT_EQ(c.method, MultiplyMethod::kSumma2D);
  // 12 empty tiles on each operand are excluded from every leg.
  EXPECT_EQ(c.empty_tiles_skipped, 24);
  EXPECT_DOUBLE_EQ(c.row_broadcast_bytes,
                   ta.TotalBytes() * (grid.grid_cols() - 1));
  EXPECT_DOUBLE_EQ(c.col_broadcast_bytes,
                   tb.TotalBytes() * (grid.grid_rows() - 1));
  // Block-diagonal times block-diagonal: every C tile has exactly one
  // contributing inner index, so no cross-column partial-sum merge.
  EXPECT_DOUBLE_EQ(c.reduce_bytes, 0.0);
}

TEST(Dist2D, ExecBitwiseIdenticalAndCheaperOnBlockSparse) {
  ClusterModel off = SmallModel();
  off.dist2d = Dist2DMode::kOff;
  ClusterModel auto_mode = SmallModel();
  auto_mode.dist2d = Dist2DMode::kAuto;

  const Matrix a = BlockDiagonal(96, 16);
  const Matrix b = BlockDiagonal(96, 16);

  TransmissionLedger ledger_off(off);
  auto r_off = ExecMultiply(a, true, false, b, true, false, off, &ledger_off);
  ASSERT_TRUE(r_off.ok());

  TransmissionLedger ledger_auto(auto_mode);
  auto r_auto =
      ExecMultiply(a, true, false, b, true, false, auto_mode, &ledger_auto);
  ASSERT_TRUE(r_auto.ok());

  // The 2D path books different traffic but computes the same product —
  // exact element equality, no tolerance.
  const Matrix& m_off = r_off->value;
  const Matrix& m_auto = r_auto->value;
  ASSERT_EQ(m_off.rows(), m_auto.rows());
  ASSERT_EQ(m_off.cols(), m_auto.cols());
  for (int64_t r = 0; r < m_off.rows(); ++r) {
    for (int64_t c = 0; c < m_off.cols(); ++c) {
      ASSERT_EQ(m_off.At(r, c), m_auto.At(r, c));
    }
  }
  EXPECT_EQ(r_off->distributed, r_auto->distributed);

  // On this block-sparse input the annotated tile grid moves strictly
  // fewer bytes than CPMM's inner-split shuffle.
  EXPECT_LT(ledger_auto.TotalBytes(), ledger_off.TotalBytes());
  EXPECT_DOUBLE_EQ(ledger_auto.TotalFlops(), ledger_off.TotalFlops());
}

TEST(Dist2D, ExecIdenticalOnDenseRandomEitherWay) {
  // Dense skew-free operands: whatever layout wins, results must agree
  // exactly and flops must not depend on the layout.
  ClusterModel off = SmallModel();
  off.dist2d = Dist2DMode::kOff;
  ClusterModel auto_mode = SmallModel();
  auto_mode.dist2d = Dist2DMode::kAuto;
  const Matrix a = RandomSparse(32, 48, 0.9, 11);
  const Matrix b = RandomSparse(32, 48, 0.9, 12);
  TransmissionLedger l1(off), l2(auto_mode);
  auto r1 = ExecMultiply(a, true, true, b, true, false, off, &l1);
  auto r2 = ExecMultiply(a, true, true, b, true, false, auto_mode, &l2);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  ASSERT_EQ(r1->value.rows(), r2->value.rows());
  for (int64_t r = 0; r < r1->value.rows(); ++r) {
    for (int64_t c = 0; c < r1->value.cols(); ++c) {
      ASSERT_EQ(r1->value.At(r, c), r2->value.At(r, c));
    }
  }
  EXPECT_DOUBLE_EQ(l1.TotalFlops(), l2.TotalFlops());
}

}  // namespace
}  // namespace remac
