#include <gtest/gtest.h>

#include <clocale>
#include <string>

#include "lang/lexer.h"
#include "lang/parser.h"

namespace remac {
namespace {

TEST(Lexer, BasicTokens) {
  auto tokens = Tokenize("x = a %*% t(B) + 2.5e-1;");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenKind> kinds;
  for (const auto& t : tokens.value()) kinds.push_back(t.kind);
  const std::vector<TokenKind> expected = {
      TokenKind::kIdentifier, TokenKind::kAssign, TokenKind::kIdentifier,
      TokenKind::kMatMul,     TokenKind::kIdentifier, TokenKind::kLParen,
      TokenKind::kIdentifier, TokenKind::kRParen, TokenKind::kPlus,
      TokenKind::kNumber,     TokenKind::kSemicolon, TokenKind::kEnd};
  EXPECT_EQ(kinds, expected);
  EXPECT_DOUBLE_EQ(tokens.value()[9].number, 0.25);
}

TEST(Lexer, CommentsAndWhitespace) {
  auto tokens = Tokenize("a = 1; # trailing comment\n# whole line\nb = 2;");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens->size(), 9u);  // two statements + end
}

TEST(Lexer, Keywords) {
  auto tokens = Tokenize("while for in whiler");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value()[0].kind, TokenKind::kKeywordWhile);
  EXPECT_EQ(tokens.value()[1].kind, TokenKind::kKeywordFor);
  EXPECT_EQ(tokens.value()[2].kind, TokenKind::kKeywordIn);
  EXPECT_EQ(tokens.value()[3].kind, TokenKind::kIdentifier);  // not 'while'
}

TEST(Lexer, ComparisonOperators) {
  auto tokens = Tokenize("< <= > >= == !=");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value()[0].kind, TokenKind::kLess);
  EXPECT_EQ(tokens.value()[1].kind, TokenKind::kLessEq);
  EXPECT_EQ(tokens.value()[2].kind, TokenKind::kGreater);
  EXPECT_EQ(tokens.value()[3].kind, TokenKind::kGreaterEq);
  EXPECT_EQ(tokens.value()[4].kind, TokenKind::kEqual);
  EXPECT_EQ(tokens.value()[5].kind, TokenKind::kNotEqual);
}

TEST(Lexer, Strings) {
  auto tokens = Tokenize("A = read(\"my dataset\");");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value()[4].kind, TokenKind::kString);
  EXPECT_EQ(tokens.value()[4].text, "my dataset");
}

TEST(Lexer, Errors) {
  EXPECT_FALSE(Tokenize("a % b").ok());          // stray %
  EXPECT_FALSE(Tokenize("\"unterminated").ok());
  EXPECT_FALSE(Tokenize("a ! b").ok());          // stray !
  EXPECT_FALSE(Tokenize("a $ b").ok());
}

TEST(Lexer, TracksLineNumbers) {
  auto tokens = Tokenize("a = 1;\nb = 2;");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value()[0].line, 1);
  EXPECT_EQ(tokens.value()[4].line, 2);
}

TEST(Lexer, OutOfRangeNumberIsAnError) {
  auto tokens = Tokenize("a = 1e999;");
  ASSERT_FALSE(tokens.ok());
  EXPECT_NE(tokens.status().message().find("out of range"),
            std::string::npos);
}

TEST(Lexer, NumbersParseUnderCommaDecimalLocale) {
  // strtod honors LC_NUMERIC: under a comma-decimal locale it reads
  // "0.5" as 0 and leaves ".5" behind. The lexer must be locale-proof.
  const std::string saved = std::setlocale(LC_NUMERIC, nullptr);
  const char* locale = nullptr;
  for (const char* candidate :
       {"de_DE.UTF-8", "de_DE.utf8", "de_DE", "fr_FR.UTF-8", "fr_FR"}) {
    if (std::setlocale(LC_NUMERIC, candidate) != nullptr) {
      locale = candidate;
      break;
    }
  }
  if (locale == nullptr) {
    GTEST_SKIP() << "no comma-decimal locale installed on this host";
  }
  auto tokens = Tokenize("x = 0.5 + 2.5e-1;");
  std::setlocale(LC_NUMERIC, saved.c_str());
  ASSERT_TRUE(tokens.ok()) << tokens.status().ToString();
  EXPECT_DOUBLE_EQ(tokens.value()[2].number, 0.5);
  EXPECT_DOUBLE_EQ(tokens.value()[4].number, 0.25);
}

TEST(Parser, PrecedenceMulOverAdd) {
  auto expr = ParseExpression("a + b %*% c");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ(expr.value()->ToString(), "(a + (b %*% c))");
}

TEST(Parser, LeftAssociativity) {
  auto expr = ParseExpression("a - b - c");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ(expr.value()->ToString(), "((a - b) - c)");
  auto chain = ParseExpression("a %*% b %*% c");
  ASSERT_TRUE(chain.ok());
  EXPECT_EQ(chain.value()->ToString(), "((a %*% b) %*% c)");
}

TEST(Parser, ParenthesesOverride) {
  auto expr = ParseExpression("(a + b) %*% c");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ(expr.value()->ToString(), "((a + b) %*% c)");
}

TEST(Parser, UnaryMinus) {
  auto expr = ParseExpression("-a %*% b");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ(expr.value()->ToString(), "((-a) %*% b)");
  auto nested = ParseExpression("--x");
  ASSERT_TRUE(nested.ok());
  EXPECT_EQ(nested.value()->ToString(), "(-(-x))");
}

TEST(Parser, CallsWithArguments) {
  auto expr = ParseExpression("zeros(ncol(A), 1)");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ(expr.value()->ToString(), "zeros(ncol(A), 1)");
}

TEST(Parser, Comparison) {
  auto expr = ParseExpression("i + 1 < n * 2");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ(expr.value()->ToString(), "((i + 1) < (n * 2))");
}

TEST(Parser, WhileProgram) {
  auto program = ParseProgram(
      "i = 0;\nwhile (i < 10) {\n  x = x + 1;\n  i = i + 1;\n}\n");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  ASSERT_EQ(program->statements.size(), 2u);
  EXPECT_EQ(program->statements[1]->kind, StmtKind::kWhile);
  EXPECT_EQ(program->statements[1]->body.size(), 2u);
}

TEST(Parser, ForProgram) {
  auto program = ParseProgram("for (k in 1:5) { x = x %*% x; }");
  ASSERT_TRUE(program.ok());
  ASSERT_EQ(program->statements.size(), 1u);
  const Stmt& loop = *program->statements[0];
  EXPECT_EQ(loop.kind, StmtKind::kFor);
  EXPECT_EQ(loop.loop_var, "k");
}

TEST(Parser, Errors) {
  EXPECT_FALSE(ParseProgram("x = ;").ok());
  EXPECT_FALSE(ParseProgram("x = 1").ok());              // missing ;
  EXPECT_FALSE(ParseProgram("while (x) x = 1;").ok());   // missing braces
  EXPECT_FALSE(ParseProgram("while (x { }").ok());
  EXPECT_FALSE(ParseProgram("= 3;").ok());
  EXPECT_FALSE(ParseExpression("a +").ok());
  EXPECT_FALSE(ParseExpression("f(a,").ok());
  EXPECT_FALSE(ParseExpression("a b").ok());  // trailing input
}

TEST(Parser, ErrorsMentionLine) {
  auto program = ParseProgram("a = 1;\nb = ;\n");
  ASSERT_FALSE(program.ok());
  EXPECT_NE(program.status().message().find("line 2"), std::string::npos);
}

TEST(Ast, CloneIsDeep) {
  auto expr = ParseExpression("a %*% (b + c)").value();
  auto clone = expr->Clone();
  EXPECT_EQ(expr->ToString(), clone->ToString());
  clone->children[0]->name = "z";
  EXPECT_NE(expr->ToString(), clone->ToString());
}

TEST(Ast, ProgramRoundTripReparses) {
  const char* source =
      "A = read(\"ds\");\n"
      "x = zeros(ncol(A), 1);\n"
      "while ((i < 10)) {\n"
      "  x = (x + (A %*% x));\n"
      "}\n";
  auto program = ParseProgram(source);
  ASSERT_TRUE(program.ok());
  auto reparsed = ParseProgram(program->ToString());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(program->ToString(), reparsed->ToString());
}

}  // namespace
}  // namespace remac
