// Integration tests: every optimizer path x every algorithm must produce
// the same numbers, and the qualitative performance relationships the
// paper reports must hold on the simulated cluster.

#include <gtest/gtest.h>

#include "algorithms/scripts.h"
#include "data/generators.h"
#include "runtime/program_runner.h"

namespace remac {
namespace {

const DataCatalog& E2ECatalog() {
  static DataCatalog* catalog = [] {
    auto* c = new DataCatalog();
    DatasetSpec spec;
    spec.name = "ds";
    spec.rows = 400;
    spec.cols = 12;
    spec.sparsity = 0.4;
    spec.seed = 10;
    EXPECT_TRUE(RegisterDataset(c, spec, true).ok());
    return c;
  }();
  return *catalog;
}

struct Case {
  const char* name;
  std::string script;
  const char* check_var;
  // GNMF's multiplicative updates amplify benign float-reassociation
  // differences between equivalent plans, so it gets a looser tolerance.
  double tolerance;
};

std::vector<Case> Cases() {
  return {
      {"GD", GdScript("ds", 4), "x", 1e-6},
      {"DFP", DfpScript("ds", 4), "x", 1e-6},
      {"BFGS", BfgsScript("ds", 4), "x", 1e-6},
      {"GNMF", GnmfScript("ds", 3, 4), "W", 1e-3},
      {"partialDFP", PartialDfpScript("ds"), "val", 1e-6},
  };
}

class OptimizerEquivalenceTest
    : public ::testing::TestWithParam<OptimizerKind> {};

TEST_P(OptimizerEquivalenceTest, AllAlgorithmsMatchReference) {
  const OptimizerKind kind = GetParam();
  for (const Case& c : Cases()) {
    RunConfig reference_config;
    reference_config.optimizer = OptimizerKind::kAsWritten;
    reference_config.max_iterations = 4;
    auto reference = RunScript(c.script, E2ECatalog(), reference_config);
    ASSERT_TRUE(reference.ok()) << c.name;
    RunConfig config;
    config.optimizer = kind;
    config.max_iterations = 4;
    auto run = RunScript(c.script, E2ECatalog(), config);
    ASSERT_TRUE(run.ok()) << c.name << "/" << OptimizerKindName(kind) << ": "
                          << run.status().ToString();
    EXPECT_TRUE(run->env.at(c.check_var)
                    .AsMatrix()
                    .ApproxEquals(reference->env.at(c.check_var).AsMatrix(),
                                  c.tolerance))
        << c.name << " diverged under " << OptimizerKindName(kind);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOptimizers, OptimizerEquivalenceTest,
    ::testing::Values(OptimizerKind::kSystemDs, OptimizerKind::kSystemDsNoCse,
                      OptimizerKind::kSpores, OptimizerKind::kRemacNone,
                      OptimizerKind::kRemacAutomatic,
                      OptimizerKind::kRemacConservative,
                      OptimizerKind::kRemacAggressive,
                      OptimizerKind::kRemacAdaptive),
    [](const ::testing::TestParamInfo<OptimizerKind>& info) {
      std::string name = OptimizerKindName(info.param);
      for (char& ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      }
      return name;
    });

class EstimatorEquivalenceTest
    : public ::testing::TestWithParam<EstimatorKind> {};

TEST_P(EstimatorEquivalenceTest, EstimatorNeverChangesResults) {
  RunConfig reference_config;
  reference_config.optimizer = OptimizerKind::kAsWritten;
  reference_config.max_iterations = 3;
  auto reference =
      RunScript(DfpScript("ds", 3), E2ECatalog(), reference_config);
  ASSERT_TRUE(reference.ok());
  RunConfig config;
  config.optimizer = OptimizerKind::kRemacAdaptive;
  config.estimator = GetParam();
  config.max_iterations = 3;
  auto run = RunScript(DfpScript("ds", 3), E2ECatalog(), config);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run->env.at("x").AsMatrix().ApproxEquals(
      reference->env.at("x").AsMatrix(), 1e-6));
}

INSTANTIATE_TEST_SUITE_P(AllEstimators, EstimatorEquivalenceTest,
                         ::testing::Values(EstimatorKind::kMetadata,
                                           EstimatorKind::kMnc,
                                           EstimatorKind::kExact),
                         [](const auto& info) {
                           return EstimatorKindName(info.param);
                         });

TEST(EndToEnd, ExecutedIterationCapKeepsPrefixSemantics) {
  RunConfig full;
  full.optimizer = OptimizerKind::kRemacAdaptive;
  full.max_iterations = 2;
  auto two = RunScript(DfpScript("ds", 2), E2ECatalog(), full);
  ASSERT_TRUE(two.ok());
  RunConfig capped;
  capped.optimizer = OptimizerKind::kRemacAdaptive;
  capped.max_iterations = 50;  // optimizer horizon differs
  capped.executed_iterations = 2;
  auto capped_run = RunScript(DfpScript("ds", 50), E2ECatalog(), capped);
  ASSERT_TRUE(capped_run.ok());
  EXPECT_TRUE(capped_run->env.at("x").AsMatrix().ApproxEquals(
      two->env.at("x").AsMatrix(), 1e-6));
}

TEST(EndToEnd, AdaptiveSimulatedTimeBeatsBlindStrategies) {
  // On a skew-prone sparse dataset large enough for distribution effects:
  // adaptive <= min(conservative, aggressive) in simulated time.
  DataCatalog catalog;
  DatasetSpec spec;
  spec.name = "mid";
  spec.rows = 30000;
  spec.cols = 64;
  spec.sparsity = 0.01;
  spec.zipf_rows = 1.0;
  spec.zipf_cols = 1.0;
  spec.seed = 123;
  ASSERT_TRUE(RegisterDataset(&catalog, spec).ok());
  auto execution_seconds = [&](OptimizerKind kind) {
    RunConfig config;
    config.optimizer = kind;
    config.max_iterations = 10;
    auto run = RunScript(DfpScript("mid", 10), catalog, config);
    EXPECT_TRUE(run.ok()) << OptimizerKindName(kind);
    return run->breakdown.TotalSeconds() -
           run->breakdown.compilation_seconds;
  };
  const double adaptive = execution_seconds(OptimizerKind::kRemacAdaptive);
  const double conservative =
      execution_seconds(OptimizerKind::kRemacConservative);
  const double aggressive =
      execution_seconds(OptimizerKind::kRemacAggressive);
  const double systemds = execution_seconds(OptimizerKind::kSystemDs);
  EXPECT_LE(adaptive, conservative * 1.05);
  EXPECT_LE(adaptive, aggressive * 1.05);
  EXPECT_LT(adaptive, systemds);  // the paper's headline
}

TEST(EndToEnd, PbdRAndSciDbSlowerThanSystemDs) {
  DataCatalog catalog;
  DatasetSpec spec;
  spec.name = "dense";
  spec.rows = 30000;
  spec.cols = 24;
  spec.sparsity = 0.6;
  spec.seed = 124;
  ASSERT_TRUE(RegisterDataset(&catalog, spec).ok());
  auto elapsed = [&](OptimizerKind kind, EngineKind engine) {
    RunConfig config;
    config.optimizer = kind;
    config.engine = engine;
    config.max_iterations = 5;
    config.count_input_partition = true;
    auto run = RunScript(GdScript("dense", 5), catalog, config);
    EXPECT_TRUE(run.ok());
    return run->breakdown.TotalSeconds();
  };
  const double systemds =
      elapsed(OptimizerKind::kSystemDs, EngineKind::kSystemDsLike);
  const double pbdr = elapsed(OptimizerKind::kAsWritten, EngineKind::kPbdR);
  const double scidb = elapsed(OptimizerKind::kAsWritten, EngineKind::kSciDb);
  EXPECT_LT(systemds, pbdr);
  EXPECT_LT(systemds, scidb);
}

TEST(EndToEnd, OptimizedSourceIsReexecutable) {
  RunConfig config;
  config.optimizer = OptimizerKind::kRemacAdaptive;
  config.max_iterations = 3;
  auto run = RunScript(DfpScript("ds", 3), E2ECatalog(), config);
  ASSERT_TRUE(run.ok());
  EXPECT_FALSE(run->optimized_source.empty());
  EXPECT_NE(run->optimized_source.find("while"), std::string::npos);
}

}  // namespace
}  // namespace remac
