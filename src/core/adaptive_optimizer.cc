#include "core/adaptive_optimizer.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <functional>

#include "common/logging.h"
#include "common/string_util.h"
#include "core/analysis.h"
#include "core/cross_block.h"
#include "core/cost_graph.h"
#include "core/enumerator.h"
#include "core/strategies.h"
#include "cost/cost_model.h"

namespace remac {

const char* SearchMethodName(SearchMethod method) {
  switch (method) {
    case SearchMethod::kBlockWise: return "block-wise";
    case SearchMethod::kTreeWise: return "tree-wise";
    case SearchMethod::kSampled: return "sampled";
  }
  return "?";
}

const char* EliminationStrategyName(EliminationStrategy strategy) {
  switch (strategy) {
    case EliminationStrategy::kNone: return "none";
    case EliminationStrategy::kAutomatic: return "automatic";
    case EliminationStrategy::kConservative: return "conservative";
    case EliminationStrategy::kAggressive: return "aggressive";
    case EliminationStrategy::kAdaptive: return "adaptive";
  }
  return "?";
}

namespace {

std::string TempName(int option_id) {
  return StringFormat("__t%d", option_id);
}

/// Builds executable plans out of chosen splits and temp references.
class Emitter {
 public:
  Emitter(const SearchSpace& space, const CostGraph& graph,
          const std::vector<const EliminationOption*>& chosen)
      : space_(space), graph_(graph), chosen_(chosen) {}

  /// All chosen occurrence sites in `block_id` that are not strictly
  /// inside another chosen site; optionally restricted to LSE options.
  std::vector<std::pair<Interval, int>> OutermostSites(
      int block_id, const Occurrence* within, bool lse_only) const {
    struct Site {
      Interval range;
      int option_id;
      bool lse;
    };
    std::vector<Site> sites;
    for (const EliminationOption* opt : chosen_) {
      for (const Occurrence& occ : opt->occurrences) {
        if (occ.block_id != block_id) continue;
        if (within != nullptr) {
          const bool strictly_inside =
              within->begin <= occ.begin && occ.end <= within->end &&
              !(occ.begin == within->begin && occ.end == within->end);
          if (!strictly_inside) continue;
          if (lse_only && !opt->IsLse()) continue;
        }
        sites.push_back(Site{Interval{occ.begin, occ.end}, opt->id,
                             opt->IsLse()});
      }
    }
    std::vector<std::pair<Interval, int>> outer;
    for (const Site& s : sites) {
      bool inside = false;
      for (const Site& other : sites) {
        if (other.range == s.range) continue;
        if (other.range.begin <= s.range.begin &&
            s.range.end <= other.range.end) {
          inside = true;
          break;
        }
      }
      if (!inside) outer.emplace_back(s.range, s.option_id);
    }
    return outer;
  }

  const EliminationOption* OptionById(int id) const {
    for (const EliminationOption* opt : chosen_) {
      if (opt->id == id) return opt;
    }
    return nullptr;
  }

  /// Builds the plan of a split tree; contracted units become references
  /// to their option's temp, re-oriented if the site reads the transpose.
  PlanNodePtr BuildFromSplit(int block_id, const SplitNode& split) const {
    const Block& block = space_.blocks[block_id];
    if (split.is_unit) {
      if (split.option_id >= 0) {
        const EliminationOption* opt = OptionById(split.option_id);
        assert(opt != nullptr);
        Shape shape = opt->shape;
        PlanNodePtr ref = MakeInput(TempName(opt->id), shape);
        const bool forward =
            WindowIsForward(block, static_cast<size_t>(split.range.begin),
                            static_cast<size_t>(split.range.end));
        if (!forward) {
          ref = MakeUnary(PlanOp::kTranspose, std::move(ref));
          const Status st = InferShapes(ref.get());
          assert(st.ok());
          (void)st;
        }
        return ref;
      }
      return FactorPlan(block.factors[static_cast<size_t>(split.range.begin)]);
    }
    PlanNodePtr out =
        MakeBinary(PlanOp::kMatMul, BuildFromSplit(block_id, *split.left),
                   BuildFromSplit(block_id, *split.right));
    const Status st = InferShapes(out.get());
    assert(st.ok());
    (void)st;
    return out;
  }

  /// Plan computing a whole block with outermost chosen sites contracted.
  PlanNodePtr BlockPlan(int block_id) const {
    const Block& block = space_.blocks[block_id];
    std::unique_ptr<SplitNode> split;
    graph_.ChainCostWithUnits(block_id, 0,
                              static_cast<int>(block.factors.size()),
                              OutermostSites(block_id, nullptr, false),
                              &split);
    return BuildFromSplit(block_id, *split);
  }

  /// Plan computing a chosen option's canonical value.
  PlanNodePtr ProductionPlan(const EliminationOption& opt) const {
    const Occurrence& site = opt.occurrences.front();
    std::unique_ptr<SplitNode> split;
    graph_.ChainCostWithUnits(site.block_id, site.begin, site.end,
                              OutermostSites(site.block_id, &site,
                                             opt.IsLse()),
                              &split);
    PlanNodePtr plan = BuildFromSplit(site.block_id, *split);
    if (!site.forward) {
      plan = MakeUnary(PlanOp::kTranspose, std::move(plan));
      const Status st = InferShapes(plan.get());
      assert(st.ok());
      (void)st;
    }
    return plan;
  }

  /// Output plan: skeleton with every block reference replaced.
  PlanNodePtr OutputPlan(int expr_index) const {
    std::function<PlanNodePtr(const PlanNode&)> rebuild =
        [&](const PlanNode& node) -> PlanNodePtr {
      if (node.op == PlanOp::kBlockRef) {
        return BlockPlan(static_cast<int>(node.value));
      }
      auto out = std::make_shared<PlanNode>();
      out->op = node.op;
      out->name = node.name;
      out->value = node.value;
      out->shape = node.shape;
      out->children.reserve(node.children.size());
      for (const auto& child : node.children) {
        out->children.push_back(rebuild(*child));
      }
      return out;
    };
    PlanNodePtr plan = rebuild(*space_.exprs[expr_index].skeleton);
    const Status st = InferShapes(plan.get());
    assert(st.ok());
    (void)st;
    return plan;
  }

 private:
  const SearchSpace& space_;
  const CostGraph& graph_;
  const std::vector<const EliminationOption*>& chosen_;
};

}  // namespace

ReMacOptimizer::ReMacOptimizer(const ClusterModel& cluster,
                               const SparsityEstimator* estimator,
                               const DataCatalog* catalog,
                               OptimizerConfig config)
    : cluster_(cluster),
      estimator_(estimator),
      catalog_(catalog),
      config_(config) {}

Result<CompiledProgram> ReMacOptimizer::Optimize(
    const CompiledProgram& program, OptimizeReport* report) {
  const auto start = std::chrono::steady_clock::now();
  OptimizeReport local_report;

  // ---- Locate the loop (or treat a loop-free program as one pass). ----
  LoopStructure loop = FindLoop(program);
  std::vector<CompiledStmt> body_stmts;
  if (loop.loop != nullptr) {
    for (const auto& stmt : loop.loop->body) body_stmts.push_back(stmt);
  } else {
    for (const auto& stmt : program.statements) {
      if (stmt.kind == CompiledStmt::Kind::kAssign) {
        body_stmts.push_back(stmt);
        loop.loop_assigned.insert(stmt.target);
      }
    }
  }
  const int iterations = loop.loop != nullptr ? config_.iterations : 1;

  // ---- Automatic elimination: inline, normalize, search. ----
  auto inlined = InlineLoopBody(body_stmts);
  if (!inlined.ok()) {
    // Bodies the search cannot handle (e.g., nested loops) pass through
    // unoptimized rather than failing the compile.
    if (inlined.status().code() == StatusCode::kUnsupported) {
      if (report != nullptr) *report = local_report;
      CompiledProgram passthrough;
      passthrough.statements = program.statements;
      return passthrough;
    }
    return inlined.status();
  }
  std::vector<InlinedOutput> outputs = std::move(inlined).value();
  if (config_.cross_block_cse) {
    REMAC_ASSIGN_OR_RETURN(
        const std::vector<CrossBlockOption> cross_block,
        ApplyCrossBlockCse(&outputs, loop.loop_assigned));
    local_report.applied_cross_block = static_cast<int>(cross_block.size());
    for (const CrossBlockOption& option : cross_block) {
      local_report.applied_options.push_back(
          StringFormat("XB{%s -> %s x%d}", option.key.c_str(),
                       option.temp_name.c_str(), option.num_sites));
      // The temp is assigned inside the loop body; treating it as
      // loop-constant would hoist its uses above its definition. (Its own
      // right-hand side still exposes loop-constant windows to LSE.)
      loop.loop_assigned.insert(option.temp_name);
    }
  }
  const std::map<std::string, bool> symmetric_vars = InferSymmetricVars(loop);
  REMAC_ASSIGN_OR_RETURN(
      SearchSpace space,
      BuildSearchSpace(outputs, loop.loop_assigned, symmetric_vars,
                       config_.max_terms));
  // Loop-free programs have no loop to hoist out of: LSE would only
  // relabel one-shot computations (amortization horizon 1).
  const bool find_lse = loop.loop != nullptr;
  std::vector<EliminationOption> options;
  switch (config_.search) {
    case SearchMethod::kBlockWise:
      options = BlockWiseSearch(space, &local_report.search, find_lse);
      break;
    case SearchMethod::kTreeWise:
      options = TreeWiseSearch(space, config_.treewise_budget,
                               &local_report.search, find_lse);
      break;
    case SearchMethod::kSampled:
      options = SampledSearch(space, config_.sampled_max_window,
                              config_.sampled_max_samples,
                              &local_report.search);
      break;
  }
  local_report.options_found = static_cast<int>(options.size());

  // ---- Adaptive elimination: cost graph + probing. ----
  CostModel cost_model(cluster_, estimator_, catalog_);
  REMAC_ASSIGN_OR_RETURN(
      VarStats vars, PropagateProgramStats(program, *catalog_, cost_model));
  // Cross-block temps are new variables; derive their statistics from
  // their defining plans (in statement order, so later temps may read
  // earlier ones).
  for (const InlinedOutput& out : outputs) {
    if (vars.Contains(out.target)) continue;
    auto costed = cost_model.CostTree(*out.plan, vars);
    if (costed.ok()) {
      CostedStats value = std::move(costed).value();
      value.seconds = 0.0;
      vars.vars.insert_or_assign(out.target, std::move(value));
    }
  }
  CostGraph graph(&space, &cost_model, &vars, iterations);
  REMAC_RETURN_NOT_OK(graph.Build());

  std::vector<const EliminationOption*> chosen;
  if (!config_.forced_option_keys.empty()) {
    for (const std::string& key : config_.forced_option_keys) {
      for (const auto& opt : options) {
        if (opt.key != key) continue;
        bool conflicts = false;
        for (const EliminationOption* picked : chosen) {
          conflicts = conflicts || OptionsConflict(opt, *picked);
        }
        if (!conflicts) chosen.push_back(&opt);
      }
    }
  } else switch (config_.strategy) {
    case EliminationStrategy::kNone:
      break;
    case EliminationStrategy::kAutomatic: {
      REMAC_ASSIGN_OR_RETURN(chosen,
                             AutomaticPick(graph, options,
                                           &local_report.probe));
      break;
    }
    case EliminationStrategy::kConservative: {
      REMAC_ASSIGN_OR_RETURN(chosen,
                             ConservativePick(graph, options,
                                              &local_report.probe));
      break;
    }
    case EliminationStrategy::kAggressive: {
      REMAC_ASSIGN_OR_RETURN(chosen,
                             AggressivePick(graph, options,
                                            &local_report.probe));
      break;
    }
    case EliminationStrategy::kAdaptive: {
      switch (config_.combiner) {
        case CombinerKind::kDp: {
          REMAC_ASSIGN_OR_RETURN(
              chosen, AdaptiveProbe(graph, options, &local_report.probe));
          break;
        }
        case CombinerKind::kEnumDepthFirst: {
          REMAC_ASSIGN_OR_RETURN(
              chosen,
              EnumerateCombinations(graph, options, /*depth_first=*/true,
                                    config_.enum_budget,
                                    &local_report.probe));
          break;
        }
        case CombinerKind::kEnumBreadthFirst: {
          REMAC_ASSIGN_OR_RETURN(
              chosen,
              EnumerateCombinations(graph, options, /*depth_first=*/false,
                                    config_.enum_budget,
                                    &local_report.probe));
          break;
        }
      }
      break;
    }
  }

  for (const EliminationOption* opt : chosen) {
    if (opt->IsLse()) {
      ++local_report.applied_lse;
    } else {
      ++local_report.applied_cse;
    }
    local_report.applied_options.push_back(opt->ToString());
  }
  if (Logger::GetLevel() <= LogLevel::kDebug) {
    REMAC_LOG(kDebug) << "optimizer: " << options.size() << " options, chose "
                      << chosen.size() << " (cse=" << local_report.applied_cse
                      << " lse=" << local_report.applied_lse
                      << "), predicted cost "
                      << local_report.probe.chosen_cost << "s/iter vs baseline "
                      << local_report.probe.baseline_cost << "s/iter";
    for (const EliminationOption* opt : chosen) {
      REMAC_LOG(kDebug) << "optimizer:   applied " << opt->ToString();
    }
  }

  // ---- Emission. ----
  Emitter emitter(space, graph, chosen);
  // Temps in dependency order: shorter (inner) windows first.
  std::vector<const EliminationOption*> ordered = chosen;
  std::sort(ordered.begin(), ordered.end(),
            [](const EliminationOption* a, const EliminationOption* b) {
              const int la = a->occurrences.front().Length();
              const int lb = b->occurrences.front().Length();
              if (la != lb) return la < lb;
              return a->id < b->id;
            });
  // Positions of each variable's assignments within the body, for
  // version-correct temp scheduling under sequential execution.
  std::map<std::string, std::vector<int>> assign_positions;
  for (size_t e = 0; e < space.exprs.size(); ++e) {
    assign_positions[space.exprs[e].target].push_back(static_cast<int>(e));
  }
  // A CSE temp reading version k of a loop variable must run after that
  // variable's k-th assignment of the iteration (k = 0: start of body).
  auto temp_slot = [&](const EliminationOption* opt) -> int {
    const Occurrence& site = opt->occurrences.front();
    const Block& block = space.blocks[site.block_id];
    int slot = 0;
    for (int f = site.begin; f < site.end; ++f) {
      const Factor& factor = block.factors[f];
      if (factor.node->op == PlanOp::kInput) {
        if (factor.version > 0) {
          const auto& positions = assign_positions[factor.node->name];
          slot = std::max(slot, positions[factor.version - 1] + 1);
        }
      } else if (!IsGeneratorOp(factor.node->op) &&
                 factor.node->op != PlanOp::kReadData) {
        // Opaque subtree: schedule conservatively at the site statement.
        slot = std::max(slot, block.expr_index);
      }
    }
    return slot;
  };

  std::vector<CompiledStmt> hoisted;
  std::map<int, std::vector<CompiledStmt>> temps_by_slot;
  for (const EliminationOption* opt : ordered) {
    CompiledStmt stmt;
    stmt.kind = CompiledStmt::Kind::kAssign;
    stmt.target = TempName(opt->id);
    stmt.plan = emitter.ProductionPlan(*opt);
    stmt.is_temp = true;
    if (opt->IsLse()) {
      hoisted.push_back(std::move(stmt));
    } else {
      temps_by_slot[temp_slot(opt)].push_back(std::move(stmt));
    }
  }
  std::vector<CompiledStmt> new_body;
  for (size_t e = 0; e < space.exprs.size(); ++e) {
    auto slot = temps_by_slot.find(static_cast<int>(e));
    if (slot != temps_by_slot.end()) {
      for (auto& tstmt : slot->second) new_body.push_back(std::move(tstmt));
    }
    CompiledStmt stmt;
    stmt.kind = CompiledStmt::Kind::kAssign;
    stmt.target = space.exprs[e].target;
    stmt.plan = emitter.OutputPlan(static_cast<int>(e));
    new_body.push_back(std::move(stmt));
  }
  auto tail = temps_by_slot.find(static_cast<int>(space.exprs.size()));
  if (tail != temps_by_slot.end()) {
    for (auto& tstmt : tail->second) new_body.push_back(std::move(tstmt));
  }

  CompiledProgram out;
  if (loop.loop != nullptr) {
    for (const CompiledStmt* stmt : loop.preamble) out.statements.push_back(*stmt);
    for (auto& stmt : hoisted) out.statements.push_back(std::move(stmt));
    CompiledStmt new_loop;
    new_loop.kind = CompiledStmt::Kind::kLoop;
    new_loop.condition =
        loop.loop->condition ? loop.loop->condition->Clone() : nullptr;
    new_loop.loop_var = loop.loop->loop_var;
    new_loop.loop_begin = loop.loop->loop_begin;
    new_loop.static_trip_count = loop.loop->static_trip_count;
    // Outputs keep their original order and reference in-iteration
    // variables by name (stale-safe inlining), so plain sequential
    // execution is correct.
    new_loop.barrier_commit = false;
    new_loop.body = std::move(new_body);
    out.statements.push_back(std::move(new_loop));
    for (const CompiledStmt* stmt : loop.postamble) {
      out.statements.push_back(*stmt);
    }
  } else {
    // Loop-free: hoisted temps (if any) first, then temps and outputs.
    for (auto& stmt : hoisted) out.statements.push_back(std::move(stmt));
    for (auto& stmt : new_body) out.statements.push_back(std::move(stmt));
  }

  local_report.total_compile_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (report != nullptr) *report = local_report;
  return out;
}

}  // namespace remac
