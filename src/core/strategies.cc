#include "core/strategies.h"

#include <algorithm>
#include <chrono>

#include "cost/physical_model.h"

namespace remac {

namespace {

using Clock = std::chrono::steady_clock;

/// Greedily adds options from `ordered` whenever they stay compatible
/// with everything chosen so far; optionally requires each addition to
/// not increase the estimated cost.
Result<std::vector<const EliminationOption*>> GreedyApply(
    const CostGraph& graph,
    const std::vector<const EliminationOption*>& ordered,
    bool require_improvement, ProbeReport* report) {
  const auto start = Clock::now();
  int evaluations = 0;
  std::vector<const EliminationOption*> chosen;
  REMAC_ASSIGN_OR_RETURN(CombinationCost base, graph.Evaluate(chosen));
  ++evaluations;
  const double baseline = base.per_iteration_seconds;
  double current = baseline;
  for (const EliminationOption* option : ordered) {
    bool conflicts = false;
    for (const EliminationOption* picked : chosen) {
      if (OptionsConflict(*option, *picked)) {
        conflicts = true;
        break;
      }
    }
    if (conflicts) continue;
    if (!require_improvement && !option->IsLse()) {
      // Blind modes: a CSE whose every occurrence already lives inside a
      // chosen temp eliminates nothing further per iteration (the outer
      // temp is computed once); longest-first ordering makes parents
      // arrive first, so such fully-shadowed options are skipped.
      bool shadowed = !option->occurrences.empty();
      for (const Occurrence& occ : option->occurrences) {
        bool inside = false;
        for (const EliminationOption* picked : chosen) {
          for (const Occurrence& outer : picked->occurrences) {
            inside = inside || occ.Inside(outer) || occ.SameRange(outer);
          }
        }
        shadowed = shadowed && inside;
      }
      if (shadowed) continue;
    }
    std::vector<const EliminationOption*> combo = chosen;
    combo.push_back(option);
    auto cost = graph.Evaluate(combo);
    ++evaluations;
    if (!cost.ok()) continue;
    if (require_improvement &&
        cost.value().per_iteration_seconds >= current) {
      continue;
    }
    chosen = std::move(combo);
    current = cost.value().per_iteration_seconds;
  }
  if (report != nullptr) {
    report->evaluations = evaluations;
    report->wall_seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    report->chosen_cost = current;
    report->baseline_cost = baseline;
  }
  return chosen;
}

/// Materializing an option's result must fit the engine's per-object
/// memory budget; any real system refuses (or crashes on) a temp that is
/// orders of magnitude larger than its inputs, so even the cost-blind
/// strategies skip physically infeasible options. (At the paper's scale
/// a window like "A H" materializes a 58M x 8.7K dense matrix — multiple
/// terabytes.)
bool FitsMemory(const CostGraph& graph, const EliminationOption& option) {
  const Occurrence& occ = option.occurrences.front();
  const CostedStats& stats =
      graph.IntervalStats(occ.block_id, occ.begin, occ.end);
  const double bytes =
      MatrixBytes(stats.stats.rows, stats.stats.cols, stats.stats.sparsity);
  const double budget = static_cast<double>(
      graph.cost_model().cluster().driver_memory_bytes);
  return bytes <= budget / 4.0;
}

/// Longest subexpressions first, LSE before CSE on ties (hoisting removes
/// strictly more work), then by key for determinism.
bool LongerFirst(const EliminationOption* a, const EliminationOption* b) {
  const int la = a->occurrences.front().Length();
  const int lb = b->occurrences.front().Length();
  if (la != lb) return la > lb;
  if (a->IsLse() != b->IsLse()) return a->IsLse();
  return a->key < b->key;
}

}  // namespace

bool PreservesOriginalOrder(const CostGraph& graph,
                            const EliminationOption& option) {
  for (const Occurrence& occ : option.occurrences) {
    if (!graph.IsOriginalOrderInterval(occ.block_id, occ.begin, occ.end)) {
      return false;
    }
  }
  return true;
}

Result<std::vector<const EliminationOption*>> ConservativePick(
    const CostGraph& graph, const std::vector<EliminationOption>& options,
    ProbeReport* report) {
  std::vector<const EliminationOption*> ordered;
  for (const auto& opt : options) {
    if (PreservesOriginalOrder(graph, opt)) ordered.push_back(&opt);
  }
  std::sort(ordered.begin(), ordered.end(), LongerFirst);
  return GreedyApply(graph, ordered, /*require_improvement=*/true, report);
}

Result<std::vector<const EliminationOption*>> AggressivePick(
    const CostGraph& graph, const std::vector<EliminationOption>& options,
    ProbeReport* report) {
  std::vector<const EliminationOption*> order_changing;
  std::vector<const EliminationOption*> order_preserving;
  for (const auto& opt : options) {
    if (!FitsMemory(graph, opt)) continue;
    if (PreservesOriginalOrder(graph, opt)) {
      order_preserving.push_back(&opt);
    } else {
      order_changing.push_back(&opt);
    }
  }
  std::sort(order_changing.begin(), order_changing.end(), LongerFirst);
  std::sort(order_preserving.begin(), order_preserving.end(), LongerFirst);
  std::vector<const EliminationOption*> ordered = order_changing;
  ordered.insert(ordered.end(), order_preserving.begin(),
                 order_preserving.end());
  return GreedyApply(graph, ordered, /*require_improvement=*/false, report);
}

Result<std::vector<const EliminationOption*>> AutomaticPick(
    const CostGraph& graph, const std::vector<EliminationOption>& options,
    ProbeReport* report) {
  std::vector<const EliminationOption*> ordered;
  ordered.reserve(options.size());
  for (const auto& opt : options) {
    if (FitsMemory(graph, opt)) ordered.push_back(&opt);
  }
  std::sort(ordered.begin(), ordered.end(), LongerFirst);
  return GreedyApply(graph, ordered, /*require_improvement=*/false, report);
}

}  // namespace remac
