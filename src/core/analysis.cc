#include "core/analysis.h"

#include <cassert>
#include <functional>

#include "plan/rewriter.h"

namespace remac {

LoopStructure FindLoop(const CompiledProgram& program) {
  LoopStructure out;
  bool seen_loop = false;
  for (const auto& stmt : program.statements) {
    if (!seen_loop && stmt.kind == CompiledStmt::Kind::kLoop) {
      out.loop = &stmt;
      seen_loop = true;
      for (const auto& body_stmt : stmt.body) {
        if (body_stmt.kind == CompiledStmt::Kind::kAssign) {
          out.loop_assigned.insert(body_stmt.target);
        }
      }
      if (!stmt.loop_var.empty()) out.loop_assigned.insert(stmt.loop_var);
      continue;
    }
    if (!seen_loop) {
      out.preamble.push_back(&stmt);
    } else {
      out.postamble.push_back(&stmt);
    }
  }
  return out;
}

namespace {

/// Substitutes current intra-iteration definitions into a plan tree.
PlanNodePtr Substitute(const PlanNode& node,
                       const std::map<std::string, PlanNodePtr>& defs) {
  if (node.op == PlanOp::kInput) {
    auto it = defs.find(node.name);
    if (it != defs.end()) return it->second->Clone();
  }
  auto out = std::make_shared<PlanNode>();
  out->op = node.op;
  out->name = node.name;
  out->value = node.value;
  out->shape = node.shape;
  out->loop_constant = node.loop_constant;
  out->symmetric = node.symmetric;
  out->children.reserve(node.children.size());
  for (const auto& child : node.children) {
    out->children.push_back(Substitute(*child, defs));
  }
  return out;
}

/// True for definitions that are pure multiplication chains (matmuls,
/// transposes, scalar coefficients over leaves). Only these are inlined
/// into later statements: substituting d = Hg extends the chains the
/// block-wise search sees (paper Figure 4 substitutes exactly this kind
/// of definition), while substituting additive expressions like
/// g = t(A)(Ax - b) would explode the expansion with cross terms the
/// paper's coordinates do not contain.
bool IsChainLike(const PlanNode& node) {
  switch (node.op) {
    case PlanOp::kInput:
    case PlanOp::kReadData:
    case PlanOp::kConst:
      return true;
    case PlanOp::kTranspose:
      return IsChainLike(*node.children[0]);
    case PlanOp::kMatMul:
      return IsChainLike(*node.children[0]) && IsChainLike(*node.children[1]);
    case PlanOp::kMul:
      // Scalar coefficient only.
      return (node.children[0]->shape.ScalarLike() ||
              node.children[1]->shape.ScalarLike()) &&
             IsChainLike(*node.children[0]) && IsChainLike(*node.children[1]);
    default:
      return false;
  }
}

}  // namespace

Result<std::vector<InlinedOutput>> InlineLoopBody(
    const std::vector<CompiledStmt>& body) {
  std::vector<InlinedOutput> outputs;
  std::map<std::string, PlanNodePtr> defs;
  for (const auto& stmt : body) {
    if (stmt.kind != CompiledStmt::Kind::kAssign) {
      return Status::Unsupported(
          "nested loops inside an optimized loop body are not supported");
    }
    PlanNodePtr inlined = Substitute(*stmt.plan, defs);
    REMAC_RETURN_NOT_OK(InferShapes(inlined.get()));
    InlinedOutput out;
    out.target = stmt.target;
    out.plan = inlined;
    out.scalar = inlined->shape.is_scalar;
    outputs.push_back(out);
    if (IsChainLike(*inlined) && CountNodes(*inlined) <= 32) {
      defs[stmt.target] = inlined;
    } else {
      defs.erase(stmt.target);
    }
    // Stale-safety: an inlined tree must evaluate identically wherever it
    // is substituted, so reassigning a variable invalidates every cached
    // definition that reads it (including a self-referential one).
    for (auto it = defs.begin(); it != defs.end();) {
      bool stale = false;
      std::function<void(const PlanNode&)> scan = [&](const PlanNode& n) {
        if (n.op == PlanOp::kInput && n.name == stmt.target) stale = true;
        for (const auto& child : n.children) scan(*child);
      };
      scan(*it->second);
      if (stale) {
        it = defs.erase(it);
      } else {
        ++it;
      }
    }
  }
  return outputs;
}

void LabelLoopConstants(PlanNode* node,
                        const std::set<std::string>& loop_assigned) {
  for (auto& child : node->children) {
    LabelLoopConstants(child.get(), loop_assigned);
  }
  switch (node->op) {
    case PlanOp::kInput:
      node->loop_constant = loop_assigned.count(node->name) == 0;
      return;
    case PlanOp::kReadData:
      node->loop_constant = true;
      return;
    case PlanOp::kConst:
      node->loop_constant = true;
      return;
    case PlanOp::kRand:
      node->loop_constant = false;
      return;
    default: {
      bool all = true;
      for (const auto& child : node->children) {
        all = all && child->loop_constant;
      }
      node->loop_constant = all && !node->children.empty();
      return;
    }
  }
}

namespace {

/// Renders a tree with symmetric-leaf transpose normalization: used to
/// compare a tree with its own transpose.
std::string SymRender(const PlanNode& node);

/// Flattens nested matrix multiplications into one factor list so the
/// rendering is associativity-insensitive (H(A^T A) and (H A^T)A must
/// compare equal).
void FlattenMatMulRender(const PlanNode& node, std::string* out) {
  if (node.op == PlanOp::kMatMul) {
    FlattenMatMulRender(*node.children[0], out);
    FlattenMatMulRender(*node.children[1], out);
    return;
  }
  if (!out->empty() && out->back() != '(') *out += ",";
  *out += SymRender(node);
}

std::string SymRender(const PlanNode& node) {
  if (node.op == PlanOp::kTranspose) {
    const PlanNode& child = *node.children[0];
    if (child.symmetric || child.shape.ScalarLike()) return SymRender(child);
    return "t(" + SymRender(child) + ")";
  }
  if (node.op == PlanOp::kMatMul) {
    std::string out = "mm(";
    FlattenMatMulRender(node, &out);
    out += ")";
    return out;
  }
  std::string out = PlanOpName(node.op);
  if (node.op == PlanOp::kInput || node.op == PlanOp::kReadData) {
    out += ":" + node.name;
  }
  if (node.op == PlanOp::kConst) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), ":%g", node.value);
    out += buf;
  }
  if (node.children.empty()) return out;
  out += "(";
  for (size_t i = 0; i < node.children.size(); ++i) {
    if (i > 0) out += ",";
    out += SymRender(*node.children[i]);
  }
  out += ")";
  return out;
}

PlanNodePtr TransposeOf(const PlanNode& node) {
  auto t = MakeUnary(PlanOp::kTranspose, node.Clone());
  const Status st = InferShapes(t.get());
  assert(st.ok());
  (void)st;
  return t;
}

}  // namespace

bool IsStructurallySymmetric(const PlanNode& node) {
  if (node.shape.rows != node.shape.cols) return false;
  if (node.shape.ScalarLike()) return true;
  if (node.op == PlanOp::kEye) return true;
  if (node.op == PlanOp::kZeros || node.op == PlanOp::kOnes) return true;
  if (node.op == PlanOp::kInput || node.op == PlanOp::kReadData) {
    return node.symmetric;
  }
  const PlanNodePtr self = PushDownTransposes(node.Clone());
  const PlanNodePtr transposed = PushDownTransposes(TransposeOf(node));
  return SymRender(*self) == SymRender(*transposed);
}

void LabelSymmetry(PlanNode* node,
                   const std::map<std::string, bool>& symmetric_vars) {
  for (auto& child : node->children) {
    LabelSymmetry(child.get(), symmetric_vars);
  }
  switch (node->op) {
    case PlanOp::kInput: {
      auto it = symmetric_vars.find(node->name);
      node->symmetric = it != symmetric_vars.end() && it->second &&
                        node->shape.rows == node->shape.cols;
      return;
    }
    case PlanOp::kReadData:
      node->symmetric = false;  // datasets are not assumed symmetric
      return;
    default:
      node->symmetric = IsStructurallySymmetric(*node);
      return;
  }
}

std::map<std::string, bool> InferSymmetricVars(const LoopStructure& loop) {
  std::map<std::string, bool> symmetric;
  // Seed from preamble definitions, assuming loop-assigned vars symmetric
  // (the fixpoint below retracts wrong assumptions monotonically).
  for (const std::string& var : loop.loop_assigned) symmetric[var] = true;
  for (const CompiledStmt* stmt : loop.preamble) {
    if (stmt->kind != CompiledStmt::Kind::kAssign) continue;
    PlanNodePtr plan = stmt->plan->Clone();
    LabelSymmetry(plan.get(), symmetric);
    symmetric[stmt->target] = IsStructurallySymmetric(*plan);
  }
  if (loop.loop == nullptr) return symmetric;
  // Loop-assigned vars with no preamble definition keep the optimistic
  // seed; iterate the body to a (descending) fixpoint.
  for (int round = 0; round < 8; ++round) {
    bool changed = false;
    for (const auto& stmt : loop.loop->body) {
      if (stmt.kind != CompiledStmt::Kind::kAssign) continue;
      PlanNodePtr plan = stmt.plan->Clone();
      LabelSymmetry(plan.get(), symmetric);
      const bool sym = IsStructurallySymmetric(*plan);
      auto it = symmetric.find(stmt.target);
      const bool prev = it != symmetric.end() && it->second;
      if (prev && !sym) {
        symmetric[stmt.target] = false;
        changed = true;
      } else if (it == symmetric.end()) {
        symmetric[stmt.target] = sym;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return symmetric;
}

}  // namespace remac
