#include "core/dp_prober.h"

#include <algorithm>
#include <chrono>

#include "obs/metrics.h"

namespace remac {

Result<std::vector<const EliminationOption*>> AdaptiveProbe(
    const CostGraph& graph, const std::vector<EliminationOption>& options,
    ProbeReport* report) {
  const auto start = std::chrono::steady_clock::now();
  int evaluations = 0;
  auto evaluate = [&](const std::vector<const EliminationOption*>& combo)
      -> Result<double> {
    ++evaluations;
    REMAC_ASSIGN_OR_RETURN(const CombinationCost cost, graph.Evaluate(combo));
    return cost.per_iteration_seconds;
  };

  std::vector<const EliminationOption*> chosen;
  REMAC_ASSIGN_OR_RETURN(double best_cost, evaluate(chosen));
  const double baseline = best_cost;

  // Live candidate set; withdrawn permanently once conflicting with a
  // committed option.
  std::vector<const EliminationOption*> candidates;
  candidates.reserve(options.size());
  for (const auto& opt : options) candidates.push_back(&opt);

  int rounds = 0;
  int withdrawn = 0;
  const double kImprovementEps = 1e-12;
  for (;;) {
    ++rounds;
    const EliminationOption* best_option = nullptr;
    double best_with = best_cost;
    for (const EliminationOption* candidate : candidates) {
      std::vector<const EliminationOption*> combo = chosen;
      combo.push_back(candidate);
      auto cost = evaluate(combo);
      if (!cost.ok()) continue;  // conflicting candidate; skip this round
      if (cost.value() < best_with - kImprovementEps) {
        best_with = cost.value();
        best_option = candidate;
      }
    }
    if (best_option == nullptr) break;
    chosen.push_back(best_option);
    best_cost = best_with;
    // Withdraw the committed option and everything now conflicting.
    std::vector<const EliminationOption*> remaining;
    remaining.reserve(candidates.size());
    for (const EliminationOption* candidate : candidates) {
      if (candidate == best_option) continue;
      if (OptionsConflict(*candidate, *best_option)) {
        ++withdrawn;
        continue;
      }
      remaining.push_back(candidate);
    }
    candidates = std::move(remaining);
    if (candidates.empty()) break;
  }

  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("remac.probe.runs")->Add();
  registry.GetCounter("remac.probe.evaluations")->Add(evaluations);
  registry.GetCounter("remac.probe.rounds")->Add(rounds);
  registry.GetCounter("remac.probe.withdrawn")->Add(withdrawn);
  registry.GetCounter("remac.probe.chosen_options")
      ->Add(static_cast<int64_t>(chosen.size()));

  if (report != nullptr) {
    report->evaluations = evaluations;
    report->rounds = rounds;
    report->withdrawn = withdrawn;
    report->wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    report->chosen_cost = best_cost;
    report->baseline_cost = baseline;
  }
  return chosen;
}

}  // namespace remac
