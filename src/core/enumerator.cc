#include "core/enumerator.h"

#include <chrono>
#include <deque>

namespace remac {

Result<std::vector<const EliminationOption*>> EnumerateCombinations(
    const CostGraph& graph, const std::vector<EliminationOption>& options,
    bool depth_first, int64_t max_evaluations, ProbeReport* report) {
  const auto start = std::chrono::steady_clock::now();
  int64_t evaluations = 0;

  std::vector<const EliminationOption*> best_combo;
  REMAC_ASSIGN_OR_RETURN(CombinationCost base, graph.Evaluate(best_combo));
  ++evaluations;
  const double baseline = base.per_iteration_seconds;
  double best_cost = baseline;

  // Precompute the pairwise conflict matrix once.
  const size_t n = options.size();
  std::vector<char> conflict(n * n, 0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (OptionsConflict(options[i], options[j])) {
        conflict[i * n + j] = conflict[j * n + i] = 1;
      }
    }
  }

  struct State {
    std::vector<int> picked;  // option indices, ascending
    int next = 0;
  };

  auto evaluate_state = [&](const State& state) -> Result<double> {
    std::vector<const EliminationOption*> combo;
    combo.reserve(state.picked.size());
    for (int idx : state.picked) combo.push_back(&options[idx]);
    REMAC_ASSIGN_OR_RETURN(const CombinationCost cost, graph.Evaluate(combo));
    ++evaluations;
    if (cost.per_iteration_seconds < best_cost) {
      best_cost = cost.per_iteration_seconds;
      best_combo = std::move(combo);
    }
    return cost.per_iteration_seconds;
  };

  std::deque<State> frontier;
  frontier.push_back(State{});
  while (!frontier.empty() && evaluations < max_evaluations) {
    State state;
    if (depth_first) {
      state = std::move(frontier.back());
      frontier.pop_back();
    } else {
      state = std::move(frontier.front());
      frontier.pop_front();
    }
    // Expand: add any later option compatible with the current pick.
    for (int idx = state.next; idx < static_cast<int>(n); ++idx) {
      bool ok = true;
      for (int picked : state.picked) {
        if (conflict[static_cast<size_t>(picked) * n + idx] != 0) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      State child;
      child.picked = state.picked;
      child.picked.push_back(idx);
      child.next = idx + 1;
      const auto cost = evaluate_state(child);
      if (!cost.ok()) continue;
      frontier.push_back(std::move(child));
      if (evaluations >= max_evaluations) break;
    }
  }

  if (report != nullptr) {
    report->evaluations = static_cast<int>(evaluations);
    report->wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    report->chosen_cost = best_cost;
    report->baseline_cost = baseline;
  }
  return best_combo;
}

}  // namespace remac
