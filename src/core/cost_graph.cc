#include "core/cost_graph.h"

#include <algorithm>
#include <cassert>
#include <functional>

#include "cost/physical_model.h"
#include "obs/metrics.h"

namespace remac {

CostGraph::CostGraph(const SearchSpace* space, const CostModel* cost_model,
                     const VarStats* vars, int iterations)
    : space_(space),
      cost_model_(cost_model),
      vars_(vars),
      iterations_(std::max(1, iterations)) {}

Result<CostedStats> CostGraph::FactorStats(const Factor& factor) const {
  CostedStats base;
  const PlanNode& node = *factor.node;
  if (node.op == PlanOp::kInput) {
    auto it = vars_->vars.find(node.name);
    if (it == vars_->vars.end()) {
      return Status::NotFound("no stats for chain factor '" + node.name + "'");
    }
    base = it->second;
    base.seconds = 0.0;
  } else if (node.op == PlanOp::kReadData) {
    REMAC_ASSIGN_OR_RETURN(base, cost_model_->DatasetStats(node.name));
  } else {
    // Generator or opaque subtree: full recursive costing.
    REMAC_ASSIGN_OR_RETURN(base, cost_model_->CostTree(node, *vars_));
  }
  if (factor.transposed) {
    const double production = base.seconds;
    base.stats = cost_model_->estimator().Transpose(base.stats);
    base.seconds = production;  // reorientation fuses into the multiply
  }
  return base;
}

Status CostGraph::Build() {
  tables_.clear();
  tables_.resize(space_->blocks.size());
  int64_t interval_nodes = 0;
  for (size_t b = 0; b < space_->blocks.size(); ++b) {
    const Block& block = space_->blocks[b];
    BlockTable& table = tables_[b];
    const int n = static_cast<int>(block.factors.size());
    table.stats.resize(static_cast<size_t>(n) * n);
    interval_nodes += static_cast<int64_t>(n) * (n + 1) / 2;
    for (int i = 0; i < n; ++i) {
      REMAC_ASSIGN_OR_RETURN(CostedStats leaf, FactorStats(block.factors[i]));
      table.opaque_factor_seconds += leaf.seconds;
      leaf.seconds = 0.0;
      table.stats[static_cast<size_t>(i) * n + i] = leaf;
    }
    // Canonical interval statistics: left fold (estimates are defined
    // per-interval, independent of the split the DP later chooses).
    for (int len = 2; len <= n; ++len) {
      for (int i = 0; i + len <= n; ++i) {
        const int j = i + len - 1;
        const CostedStats& left = StatsAt(table, n, i, j - 1);
        const CostedStats& right = StatsAt(table, n, j, j);
        CostedStats merged = cost_model_->MultiplyCost(left, right);
        merged.seconds = 0.0;
        table.stats[static_cast<size_t>(i) * n + j] = merged;
      }
    }
    table.default_cost =
        ChainCostWithUnits(static_cast<int>(b), 0, n, {}, &table.default_split);
    std::function<void(const SplitNode*)> collect = [&](const SplitNode* s) {
      if (s == nullptr) return;
      table.default_intervals.insert(Interval{s->range.begin, s->range.end});
      collect(s->left.get());
      collect(s->right.get());
    };
    collect(table.default_split.get());
  }
  built_ = true;
  // Skeleton glue costs do not depend on the chosen options (blocks are
  // contracted internally only); price them once.
  total_skeleton_seconds_ = 0.0;
  for (size_t e = 0; e < space_->exprs.size(); ++e) {
    REMAC_ASSIGN_OR_RETURN(const double glue,
                           SkeletonCost(static_cast<int>(e)));
    total_skeleton_seconds_ += glue;
  }
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("remac.costgraph.builds")->Add();
  registry.GetCounter("remac.costgraph.blocks")
      ->Add(static_cast<int64_t>(space_->blocks.size()));
  registry.GetCounter("remac.costgraph.interval_nodes")->Add(interval_nodes);
  return Status::OK();
}

const CostedStats& CostGraph::IntervalStats(int block_id, int begin,
                                            int end) const {
  assert(built_);
  const int n = static_cast<int>(space_->blocks[block_id].factors.size());
  assert(begin >= 0 && begin < end && end <= n);
  return StatsAt(tables_[block_id], n, begin, end - 1);
}

double CostGraph::PlainIntervalCost(int block_id, int begin, int end) const {
  return ChainCostWithUnits(block_id, begin, end, {}, nullptr);
}

const SplitNode* CostGraph::DefaultSplit(int block_id) const {
  return tables_[block_id].default_split.get();
}

bool CostGraph::IsOriginalOrderInterval(int block_id, int begin,
                                        int end) const {
  return tables_[block_id].default_intervals.count(Interval{begin, end}) > 0;
}

double CostGraph::ChainCostWithUnits(
    int block_id, int range_begin, int range_end,
    const std::vector<std::pair<Interval, int>>& contracted,
    std::unique_ptr<SplitNode>* split) const {
  assert(built_);
  const Block& block = space_->blocks[block_id];
  const int n = static_cast<int>(block.factors.size());
  (void)n;

  // Build the unit sequence covering [range_begin, range_end).
  struct Unit {
    Interval range;
    int option_id = -1;  // >= 0: a contracted temp reference (free)
  };
  std::vector<std::pair<Interval, int>> sorted = contracted;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<Unit> units;
  int pos = range_begin;
  size_t ci = 0;
  while (pos < range_end) {
    while (ci < sorted.size() && sorted[ci].first.begin < pos) ++ci;
    if (ci < sorted.size() && sorted[ci].first.begin == pos &&
        sorted[ci].first.end <= range_end) {
      units.push_back(Unit{sorted[ci].first, sorted[ci].second});
      pos = sorted[ci].first.end;
      ++ci;
    } else {
      units.push_back(Unit{Interval{pos, pos + 1}, -1});
      ++pos;
    }
  }
  const int m = static_cast<int>(units.size());
  assert(m > 0);

  auto make_leaf = [&](int u) {
    auto leaf = std::make_unique<SplitNode>();
    leaf->range = units[u].range;
    leaf->is_unit = true;
    leaf->option_id = units[u].option_id;
    return leaf;
  };

  if (m == 1) {
    double cost = 0.0;
    // A whole-range single unit: a plain transposed factor standing alone
    // pays its transpose; a temp reference is free.
    if (units[0].option_id < 0 &&
        units[0].range.end - units[0].range.begin == 1 &&
        block.factors[units[0].range.begin].transposed) {
      const CostedStats& s =
          IntervalStats(block_id, units[0].range.begin, units[0].range.end);
      cost = cost_model_->TransposeCost(s).seconds;
    }
    if (split != nullptr) *split = make_leaf(0);
    return cost;
  }

  // Interval DP over units.
  std::vector<double> best(static_cast<size_t>(m) * m, 0.0);
  std::vector<int> choice(static_cast<size_t>(m) * m, -1);
  auto idx = [m](int i, int j) { return static_cast<size_t>(i) * m + j; };
  for (int len = 2; len <= m; ++len) {
    for (int i = 0; i + len <= m; ++i) {
      const int j = i + len - 1;
      double best_cost = -1.0;
      int best_k = -1;
      const CostedStats& merged = IntervalStats(
          block_id, units[i].range.begin, units[j].range.end);
      for (int k = i; k < j; ++k) {
        const CostedStats& left =
            IntervalStats(block_id, units[i].range.begin, units[k].range.end);
        const CostedStats& right = IntervalStats(
            block_id, units[k + 1].range.begin, units[j].range.end);
        // The product's sparsity is the (cached) canonical estimate of
        // the merged interval, so no estimator call is needed here.
        const double op_cost = cost_model_->MultiplySeconds(
            left, right, merged.stats.sparsity);
        const double total = best[idx(i, k)] + best[idx(k + 1, j)] + op_cost;
        if (best_k < 0 || total < best_cost) {
          best_cost = total;
          best_k = k;
        }
      }
      best[idx(i, j)] = best_cost;
      choice[idx(i, j)] = best_k;
    }
  }
  if (split != nullptr) {
    std::function<std::unique_ptr<SplitNode>(int, int)> build =
        [&](int i, int j) -> std::unique_ptr<SplitNode> {
      if (i == j) return make_leaf(i);
      const int k = choice[idx(i, j)];
      auto node = std::make_unique<SplitNode>();
      node->range = Interval{units[i].range.begin, units[j].range.end};
      node->left = build(i, k);
      node->right = build(k + 1, j);
      return node;
    };
    *split = build(0, m - 1);
  }
  return best[idx(0, m - 1)];
}

Result<double> CostGraph::SkeletonCost(int expr_index) const {
  const auto& expr = space_->exprs[expr_index];
  auto resolver = [this](int block_id) -> Result<CostedStats> {
    const Block& block = space_->blocks[block_id];
    CostedStats s =
        IntervalStats(block_id, 0, static_cast<int>(block.factors.size()));
    s.seconds = 0.0;
    return s;
  };
  REMAC_ASSIGN_OR_RETURN(const CostedStats costed,
                         cost_model_->CostTree(*expr.skeleton, *vars_,
                                               resolver));
  return costed.seconds;
}

Result<CombinationCost> CostGraph::Evaluate(
    const std::vector<const EliminationOption*>& chosen) const {
  assert(built_);
  // Conflict check.
  for (size_t i = 0; i < chosen.size(); ++i) {
    for (size_t j = i + 1; j < chosen.size(); ++j) {
      if (OptionsConflict(*chosen[i], *chosen[j])) {
        return Status::InvalidArgument(
            "conflicting options: " + chosen[i]->ToString() + " vs " +
            chosen[j]->ToString());
      }
    }
  }

  // Gather chosen occurrence sites per block.
  struct Site {
    Interval range;
    int option_id;
    bool lse;
  };
  std::map<int, std::vector<Site>> sites_by_block;
  for (const EliminationOption* opt : chosen) {
    for (const Occurrence& occ : opt->occurrences) {
      sites_by_block[occ.block_id].push_back(
          Site{Interval{occ.begin, occ.end}, opt->id, opt->IsLse()});
    }
  }

  CombinationCost result;

  // Per-iteration chain costs with the *outermost* chosen sites
  // contracted into free temp-reference units.
  for (size_t b = 0; b < space_->blocks.size(); ++b) {
    std::vector<std::pair<Interval, int>> outer;
    auto it = sites_by_block.find(static_cast<int>(b));
    if (it != sites_by_block.end()) {
      for (const Site& s : it->second) {
        bool inside = false;
        for (const Site& other : it->second) {
          if (s.option_id == other.option_id && s.range == other.range)
            continue;
          if (other.range.begin <= s.range.begin &&
              s.range.end <= other.range.end &&
              !(other.range == s.range)) {
            inside = true;
            break;
          }
        }
        if (!inside) outer.emplace_back(s.range, s.option_id);
      }
    }
    result.per_iteration_seconds +=
        ChainCostWithUnits(static_cast<int>(b), 0,
                           static_cast<int>(space_->blocks[b].factors.size()),
                           outer, nullptr) +
        tables_[b].opaque_factor_seconds;
  }

  // Skeleton glue costs (cached in Build, option-independent).
  result.per_iteration_seconds += total_skeleton_seconds_;

  // Temp production costs. The production site is the first occurrence;
  // chosen options strictly nested inside it are free units (for an LSE
  // production, only nested LSE temps are available before the loop).
  for (const EliminationOption* opt : chosen) {
    const Occurrence& site = opt->occurrences.front();
    std::vector<std::pair<Interval, int>> nested;
    for (const EliminationOption* other : chosen) {
      if (other == opt) continue;
      if (opt->IsLse() && !other->IsLse()) continue;
      for (const Occurrence& occ : other->occurrences) {
        if (occ.block_id != site.block_id) continue;
        if (site.begin <= occ.begin && occ.end <= site.end &&
            !(occ.begin == site.begin && occ.end == site.end)) {
          nested.emplace_back(Interval{occ.begin, occ.end}, other->id);
        }
      }
    }
    // Keep only outermost nested intervals.
    std::vector<std::pair<Interval, int>> outer_nested;
    for (const auto& a : nested) {
      bool inside = false;
      for (const auto& b : nested) {
        if (a.first == b.first) continue;
        if (b.first.begin <= a.first.begin && a.first.end <= b.first.end) {
          inside = true;
          break;
        }
      }
      if (!inside) outer_nested.push_back(a);
    }
    const double production = ChainCostWithUnits(
        site.block_id, site.begin, site.end, outer_nested, nullptr);
    result.production_seconds[opt->id] = production;
    if (opt->IsLse()) {
      result.hoisted_seconds += production;
      result.per_iteration_seconds +=
          production / static_cast<double>(iterations_);
    } else {
      result.per_iteration_seconds += production;
    }
  }
  return result;
}

}  // namespace remac
