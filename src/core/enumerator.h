#ifndef REMAC_CORE_ENUMERATOR_H_
#define REMAC_CORE_ENUMERATOR_H_

#include <vector>

#include "common/status.h"
#include "core/cost_graph.h"
#include "core/dp_prober.h"
#include "core/elimination_option.h"

namespace remac {

/// \brief Brute-force enumeration baseline (paper Section 6.3.3's "Enum"):
/// walks the subset lattice of elimination options (depth-first or
/// breadth-first), evaluating every compatible combination it reaches,
/// and returns the best one found within `max_evaluations`.
///
/// Exhaustive when the option set is small; on DFP/BFGS-sized option
/// sets the budget runs out long before the lattice does — which is the
/// combinatorial explosion the DP-based probing avoids.
Result<std::vector<const EliminationOption*>> EnumerateCombinations(
    const CostGraph& graph, const std::vector<EliminationOption>& options,
    bool depth_first, int64_t max_evaluations, ProbeReport* report);

}  // namespace remac

#endif  // REMAC_CORE_ENUMERATOR_H_
