#ifndef REMAC_CORE_ADAPTIVE_OPTIMIZER_H_
#define REMAC_CORE_ADAPTIVE_OPTIMIZER_H_

#include <string>
#include <vector>

#include "cluster/cluster_model.h"
#include "common/status.h"
#include "core/block_search.h"
#include "core/dp_prober.h"
#include "plan/plan_builder.h"
#include "sparsity/estimator.h"

namespace remac {

/// How elimination options are searched for (paper Section 6.2.1).
enum class SearchMethod { kBlockWise, kTreeWise, kSampled };

/// Which options get applied (paper Sections 6.2.2 / 6.3.1).
enum class EliminationStrategy {
  kNone,          // no CSE/LSE at all
  kAutomatic,     // apply as many found options as possible (no cost model)
  kConservative,  // only order-preserving options
  kAggressive,    // everything, order-changing options first
  kAdaptive,      // cost-based probing (ReMac proper)
};

/// How the adaptive strategy combines options (paper Section 6.3.3).
enum class CombinerKind { kDp, kEnumDepthFirst, kEnumBreadthFirst };

const char* SearchMethodName(SearchMethod method);
const char* EliminationStrategyName(EliminationStrategy strategy);

struct OptimizerConfig {
  /// Assumed loop trip count for LSE amortization.
  int iterations = 20;
  EliminationStrategy strategy = EliminationStrategy::kAdaptive;
  CombinerKind combiner = CombinerKind::kDp;
  SearchMethod search = SearchMethod::kBlockWise;
  /// Distributive-expansion term budget.
  int max_terms = 64;
  /// Evaluation budget for the Enum combiners.
  int64_t enum_budget = 100000;
  /// Node budget for the tree-wise search baseline.
  int64_t treewise_budget = 5000000;
  /// SPORES-style sampling bounds.
  int sampled_max_window = 3;
  int sampled_max_samples = 24;
  /// When non-empty, overrides the strategy: apply exactly the options
  /// whose canonical key matches an entry (manual elimination; used to
  /// reproduce the paper's fixed-choice bars like Figure 3's "ATA, ddT").
  std::vector<std::string> forced_option_keys;
  /// Enables the cross-block CSE extension (grouped sums hidden by the
  /// distributive expansion; paper Section 3.2/3.3 discussion).
  bool cross_block_cse = true;
};

struct OptimizeReport {
  SearchReport search;
  ProbeReport probe;
  double total_compile_seconds = 0.0;
  int options_found = 0;
  int applied_cse = 0;
  int applied_lse = 0;
  /// Cross-block CSE rewrites applied before the block-wise search
  /// (paper Section 3.2 discussion).
  int applied_cross_block = 0;
  std::vector<std::string> applied_options;
};

/// \brief The ReMac optimizer: automatic elimination (block-wise search
/// for CSE and LSE options) followed by adaptive elimination (cost-graph
/// DP probing), emitting an executable program in which chosen CSE
/// subexpressions are materialized as per-iteration temporaries and
/// chosen LSE subexpressions are hoisted before the loop.
class ReMacOptimizer {
 public:
  ReMacOptimizer(const ClusterModel& cluster,
                 const SparsityEstimator* estimator,
                 const DataCatalog* catalog, OptimizerConfig config);

  /// Optimizes the first top-level loop of `program` (or, for loop-free
  /// programs such as a single expression, the whole statement list).
  Result<CompiledProgram> Optimize(const CompiledProgram& program,
                                   OptimizeReport* report = nullptr);

 private:
  ClusterModel cluster_;
  const SparsityEstimator* estimator_;
  const DataCatalog* catalog_;
  OptimizerConfig config_;
};

}  // namespace remac

#endif  // REMAC_CORE_ADAPTIVE_OPTIMIZER_H_
