#ifndef REMAC_CORE_ANALYSIS_H_
#define REMAC_CORE_ANALYSIS_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "plan/plan_builder.h"
#include "plan/plan_node.h"

namespace remac {

/// \brief The loop the optimizer targets, split out of a compiled program.
struct LoopStructure {
  std::vector<const CompiledStmt*> preamble;
  const CompiledStmt* loop = nullptr;  // null if the program has no loop
  std::vector<const CompiledStmt*> postamble;

  /// Variables assigned inside the loop body (not loop-constant).
  std::set<std::string> loop_assigned;
};

/// Locates the first top-level loop. Programs with no loop still work
/// (everything lands in `preamble`, loop stays null).
LoopStructure FindLoop(const CompiledProgram& program);

/// \brief One loop-body output after intra-iteration inlining: the
/// assignment's RHS with every temporary defined earlier in the same
/// iteration substituted, so its leaves are only start-of-iteration
/// variables and loop constants (paper Figure 4 builds its coordinates on
/// exactly this substituted form).
struct InlinedOutput {
  std::string target;
  PlanNodePtr plan;
  bool scalar = false;
};

/// Inlines intra-iteration definitions through the loop body, in order.
/// Committing all outputs at end-of-iteration then reproduces the
/// original sequential semantics exactly.
Result<std::vector<InlinedOutput>> InlineLoopBody(
    const std::vector<CompiledStmt>& body);

/// Sets node->loop_constant on every node: an input is loop-constant iff
/// its name is not in `loop_assigned`; rand() is never loop-constant;
/// interior nodes require all children constant.
void LabelLoopConstants(PlanNode* node,
                        const std::set<std::string>& loop_assigned);

/// \brief Infers which variables provably hold symmetric matrices, to a
/// fixpoint over the loop body (e.g., the inverse-Hessian approximation H
/// in DFP stays symmetric across updates).
///
/// A plan tree is symmetric iff its transpose-pushed-down rendering equals
/// its own rendering (with symmetric leaves' transposes normalized away).
std::map<std::string, bool> InferSymmetricVars(const LoopStructure& loop);

/// Sets node->symmetric on every node of the tree using the variable
/// symmetry map (and structural rules: eye is symmetric, X with
/// rows != cols is not, a subtree equal to its own transpose is).
void LabelSymmetry(PlanNode* node,
                   const std::map<std::string, bool>& symmetric_vars);

/// True if the subtree provably equals its own transpose (leaf symmetric
/// flags must already be labeled on the children).
bool IsStructurallySymmetric(const PlanNode& node);

}  // namespace remac

#endif  // REMAC_CORE_ANALYSIS_H_
