#include "core/cross_block.h"

#include <functional>
#include <map>

#include "common/string_util.h"
#include "plan/chain.h"
#include "plan/rewriter.h"

namespace remac {

namespace {

/// One additive term of a flattened sum: an optional scalar coefficient
/// times one multiplication-chain block.
struct AdditiveTerm {
  double sign = 1.0;
  double coeff = 1.0;
  int block_id = -1;  // -1: not a plain chain term (kept verbatim)
  PlanNodePtr verbatim;  // used when block_id < 0
};

/// A flattened additive group inside one output's skeleton.
struct AdditiveGroup {
  int output_index = 0;
  std::vector<AdditiveTerm> terms;
  Shape shape;
};

/// Versioned symbol of a factor (mirrors BuildSearchSpace's keying).
std::string VersionedSymbol(const Factor& factor,
                            const std::set<std::string>& loop_assigned,
                            const std::map<std::string, int>& versions) {
  std::string symbol = factor.Symbol();
  if (factor.node->op == PlanOp::kInput &&
      loop_assigned.count(factor.node->name) > 0) {
    auto it = versions.find(factor.node->name);
    symbol += "@" + std::to_string(it == versions.end() ? 0 : it->second);
  }
  return symbol;
}

std::vector<std::string> VersionedSymbols(
    const Block& block, const std::set<std::string>& loop_assigned,
    const std::map<std::string, int>& versions) {
  std::vector<std::string> symbols;
  symbols.reserve(block.factors.size());
  for (const Factor& factor : block.factors) {
    symbols.push_back(VersionedSymbol(factor, loop_assigned, versions));
  }
  return symbols;
}

/// Flattens kAdd/kSub chains over matrices into additive groups; every
/// other skeleton node recurses.
void CollectGroups(const PlanNodePtr& node, int output_index,
                   std::vector<AdditiveGroup>* groups) {
  if ((node->op == PlanOp::kAdd || node->op == PlanOp::kSub) &&
      !node->shape.ScalarLike()) {
    AdditiveGroup group;
    group.output_index = output_index;
    group.shape = node->shape;
    std::function<void(const PlanNodePtr&, double)> flatten =
        [&](const PlanNodePtr& n, double sign) {
          if ((n->op == PlanOp::kAdd || n->op == PlanOp::kSub) &&
              !n->shape.ScalarLike()) {
            flatten(n->children[0], sign);
            flatten(n->children[1],
                    n->op == PlanOp::kSub ? -sign : sign);
            return;
          }
          AdditiveTerm term;
          term.sign = sign;
          PlanNodePtr body = n;
          // Peel a scalar constant coefficient.
          if (body->op == PlanOp::kMul &&
              body->children[0]->op == PlanOp::kConst) {
            term.coeff = body->children[0]->value;
            body = body->children[1];
          } else if (body->op == PlanOp::kMul &&
                     body->children[1]->op == PlanOp::kConst) {
            term.coeff = body->children[1]->value;
            body = body->children[0];
          }
          if (body->op == PlanOp::kBlockRef) {
            term.block_id = static_cast<int>(body->value);
          } else {
            term.verbatim = n;
            // Non-chain term (e.g., nested division): recurse into it so
            // inner groups are still considered.
            CollectGroups(n, output_index, groups);
          }
          group.terms.push_back(std::move(term));
        };
    flatten(node, 1.0);
    groups->push_back(std::move(group));
    return;
  }
  for (const auto& child : node->children) {
    CollectGroups(child, output_index, groups);
  }
}

/// A candidate pairing of two terms sharing a common prefix or suffix.
struct Site {
  int group_index;
  size_t term_a;
  size_t term_b;
  int shared_len;   // factors shared
  bool prefix;      // true: common prefix (rest is the suffix sum)
  std::string group_key;
};

}  // namespace

Result<std::vector<CrossBlockOption>> ApplyCrossBlockCse(
    std::vector<InlinedOutput>* outputs,
    const std::set<std::string>& loop_assigned) {
  std::vector<CrossBlockOption> applied;

  // Versions of loop variables before each output statement.
  std::map<std::string, int> version_now;
  std::vector<std::map<std::string, int>> version_at(outputs->size());
  for (size_t i = 0; i < outputs->size(); ++i) {
    version_at[i] = version_now;
    ++version_now[(*outputs)[i].target];
  }

  // Normalize + decompose every output once.
  std::vector<Decomposition> decomposed(outputs->size());
  std::vector<std::vector<std::string>> block_symbols;  // global block id
  std::vector<const Block*> blocks_flat;
  std::vector<AdditiveGroup> groups;
  std::vector<int> block_offset(outputs->size(), 0);
  for (size_t i = 0; i < outputs->size(); ++i) {
    PlanNodePtr normalized = NormalizeForSearch((*outputs)[i].plan);
    REMAC_ASSIGN_OR_RETURN(decomposed[i],
                           DecomposeIntoBlocks(normalized,
                                               static_cast<int>(i)));
    block_offset[i] = static_cast<int>(blocks_flat.size());
    // Renumber block refs globally.
    std::function<void(PlanNode*)> renumber = [&](PlanNode* node) {
      if (node->op == PlanOp::kBlockRef) node->value += block_offset[i];
      for (auto& child : node->children) renumber(child.get());
    };
    renumber(decomposed[i].skeleton.get());
    for (const Block& block : decomposed[i].blocks) {
      blocks_flat.push_back(&block);
      block_symbols.push_back(
          VersionedSymbols(block, loop_assigned, version_at[i]));
    }
    CollectGroups(decomposed[i].skeleton, static_cast<int>(i), &groups);
  }

  // Candidate sites: pairs of chain terms in one group with a shared
  // prefix or suffix and equal sign/coefficient.
  std::map<std::string, std::vector<Site>> sites_by_key;
  for (size_t g = 0; g < groups.size(); ++g) {
    const AdditiveGroup& group = groups[g];
    for (size_t a = 0; a < group.terms.size(); ++a) {
      for (size_t b = a + 1; b < group.terms.size(); ++b) {
        const AdditiveTerm& ta = group.terms[a];
        const AdditiveTerm& tb = group.terms[b];
        if (ta.block_id < 0 || tb.block_id < 0) continue;
        if (ta.sign != tb.sign || ta.coeff != tb.coeff) continue;
        const auto& sa = block_symbols[ta.block_id];
        const auto& sb = block_symbols[tb.block_id];
        // Maximal common prefix.
        size_t p = 0;
        while (p < sa.size() - 1 && p < sb.size() - 1 && sa[p] == sb[p]) {
          ++p;
        }
        if (p >= 1) {
          std::string ka = Join(std::vector<std::string>(sa.begin() + p, sa.end()), "*");
          std::string kb = Join(std::vector<std::string>(sb.begin() + p, sb.end()), "*");
          if (kb < ka) std::swap(ka, kb);
          Site site{static_cast<int>(g), a, b, static_cast<int>(p), true,
                    ka + "+" + kb};
          sites_by_key[site.group_key].push_back(site);
        }
        // Maximal common suffix.
        size_t s = 0;
        while (s < sa.size() - 1 && s < sb.size() - 1 &&
               sa[sa.size() - 1 - s] == sb[sb.size() - 1 - s]) {
          ++s;
        }
        if (s >= 1) {
          std::string ka = Join(std::vector<std::string>(sa.begin(), sa.end() - s), "*");
          std::string kb = Join(std::vector<std::string>(sb.begin(), sb.end() - s), "*");
          if (kb < ka) std::swap(ka, kb);
          Site site{static_cast<int>(g), a, b, static_cast<int>(s), false,
                    ka + "+" + kb};
          sites_by_key[site.group_key].push_back(site);
        }
      }
    }
  }

  // Apply keys occurring at two or more sites; a term joins one rewrite.
  std::set<std::pair<int, size_t>> used_terms;
  struct Rewrite {
    Site site;
    std::string temp_name;
  };
  std::vector<Rewrite> rewrites;
  int next_temp = 0;
  // Deterministic order.
  for (auto& [key, sites] : sites_by_key) {
    if (sites.size() < 2) continue;
    std::vector<Site> usable;
    for (const Site& site : sites) {
      if (used_terms.count({site.group_index, site.term_a}) > 0) continue;
      if (used_terms.count({site.group_index, site.term_b}) > 0) continue;
      usable.push_back(site);
    }
    if (usable.size() < 2) continue;
    CrossBlockOption option;
    option.key = key;
    option.num_sites = static_cast<int>(usable.size());
    option.temp_name = StringFormat("__xb%d", next_temp++);
    for (const Site& site : usable) {
      used_terms.insert({site.group_index, site.term_a});
      used_terms.insert({site.group_index, site.term_b});
      rewrites.push_back(Rewrite{site, option.temp_name});
    }
    applied.push_back(std::move(option));
  }
  if (rewrites.empty()) return applied;

  // ---- Rebuild the affected outputs. -----------------------------------
  // For each rewritten pair, the two terms become
  //   sign * coeff * (shared-part-plan  %*%  temp)       (prefix kind)
  //   sign * coeff * (temp %*% shared-part-plan)          (suffix kind)
  // and the temp (inserted before the first use) computes
  //   rest_a + rest_b.
  auto term_rest_plan = [&](const AdditiveTerm& term, const Site& site)
      -> PlanNodePtr {
    const Block& block = *blocks_flat[term.block_id];
    const size_t n = block.factors.size();
    if (site.prefix) {
      return LeftDeepChain(block, static_cast<size_t>(site.shared_len), n);
    }
    return LeftDeepChain(block, 0, n - static_cast<size_t>(site.shared_len));
  };
  auto term_shared_plan = [&](const AdditiveTerm& term, const Site& site)
      -> PlanNodePtr {
    const Block& block = *blocks_flat[term.block_id];
    const size_t n = block.factors.size();
    if (site.prefix) {
      return LeftDeepChain(block, 0, static_cast<size_t>(site.shared_len));
    }
    return LeftDeepChain(block, n - static_cast<size_t>(site.shared_len), n);
  };

  // Temp definitions keyed by name (built from the first site seen).
  std::map<std::string, PlanNodePtr> temp_plans;
  std::map<std::string, int> temp_first_use;  // earliest output index
  // Group rewrites by (group) for reassembly.
  std::map<int, std::vector<Rewrite>> rewrites_by_group;
  for (const Rewrite& rewrite : rewrites) {
    rewrites_by_group[rewrite.site.group_index].push_back(rewrite);
    const AdditiveGroup& group = groups[rewrite.site.group_index];
    if (temp_plans.count(rewrite.temp_name) == 0) {
      const AdditiveTerm& ta = group.terms[rewrite.site.term_a];
      const AdditiveTerm& tb = group.terms[rewrite.site.term_b];
      PlanNodePtr sum =
          MakeBinary(PlanOp::kAdd, term_rest_plan(ta, rewrite.site),
                     term_rest_plan(tb, rewrite.site));
      REMAC_RETURN_NOT_OK(InferShapes(sum.get()));
      temp_plans[rewrite.temp_name] = std::move(sum);
      temp_first_use[rewrite.temp_name] = group.output_index;
    } else {
      temp_first_use[rewrite.temp_name] =
          std::min(temp_first_use[rewrite.temp_name], group.output_index);
    }
  }

  // Rebuild each affected output plan from its skeleton: additive groups
  // are re-emitted with rewritten pairs collapsed.
  std::function<Result<PlanNodePtr>(const PlanNodePtr&, size_t)> rebuild =
      [&](const PlanNodePtr& node, size_t output_index)
      -> Result<PlanNodePtr> {
    // Is this node the root of a collected group with rewrites?
    for (auto& [g, group_rewrites] : rewrites_by_group) {
      const AdditiveGroup& group = groups[g];
      if (group.output_index != static_cast<int>(output_index)) continue;
      // Match by flattening again and comparing term count/shape. The
      // skeleton is a tree, so identity of the additive root is
      // unambiguous: re-derive groups of this node and check the first.
      std::vector<AdditiveGroup> here;
      if (node->op == PlanOp::kAdd || node->op == PlanOp::kSub) {
        CollectGroups(node, static_cast<int>(output_index), &here);
      }
      if (here.empty() || here[0].terms.size() != group.terms.size()) {
        continue;
      }
      bool same = here[0].shape == group.shape;
      for (size_t t = 0; same && t < group.terms.size(); ++t) {
        same = here[0].terms[t].block_id == group.terms[t].block_id;
      }
      if (!same) continue;
      // Emit the group with rewrites applied.
      std::set<size_t> dropped;
      std::vector<PlanNodePtr> emitted;
      for (const Rewrite& rewrite : group_rewrites) {
        const AdditiveTerm& ta = group.terms[rewrite.site.term_a];
        PlanNodePtr shared = term_shared_plan(ta, rewrite.site);
        PlanNodePtr ref = MakeInput(
            rewrite.temp_name, temp_plans[rewrite.temp_name]->shape);
        PlanNodePtr product =
            rewrite.site.prefix
                ? MakeBinary(PlanOp::kMatMul, std::move(shared),
                             std::move(ref))
                : MakeBinary(PlanOp::kMatMul, std::move(ref),
                             std::move(shared));
        REMAC_RETURN_NOT_OK(InferShapes(product.get()));
        const double scale = ta.sign * ta.coeff;
        if (scale != 1.0) {
          product = MakeBinary(PlanOp::kMul, MakeConst(scale),
                               std::move(product));
          REMAC_RETURN_NOT_OK(InferShapes(product.get()));
        }
        emitted.push_back(std::move(product));
        dropped.insert(rewrite.site.term_a);
        dropped.insert(rewrite.site.term_b);
      }
      for (size_t t = 0; t < group.terms.size(); ++t) {
        if (dropped.count(t) > 0) continue;
        const AdditiveTerm& term = group.terms[t];
        PlanNodePtr body;
        if (term.block_id >= 0) {
          const Block& block = *blocks_flat[term.block_id];
          body = LeftDeepChain(block, 0, block.factors.size());
        } else {
          REMAC_ASSIGN_OR_RETURN(body,
                                 rebuild(term.verbatim, output_index));
        }
        const double scale = term.sign * term.coeff;
        if (scale != 1.0) {
          body = MakeBinary(PlanOp::kMul, MakeConst(scale), std::move(body));
          REMAC_RETURN_NOT_OK(InferShapes(body.get()));
        }
        emitted.push_back(std::move(body));
      }
      PlanNodePtr acc = emitted.front();
      for (size_t t = 1; t < emitted.size(); ++t) {
        acc = MakeBinary(PlanOp::kAdd, std::move(acc), std::move(emitted[t]));
        REMAC_RETURN_NOT_OK(InferShapes(acc.get()));
      }
      return acc;
    }
    if (node->op == PlanOp::kBlockRef) {
      const Block& block = *blocks_flat[static_cast<int>(node->value)];
      return LeftDeepChain(block, 0, block.factors.size());
    }
    auto out = std::make_shared<PlanNode>();
    out->op = node->op;
    out->name = node->name;
    out->value = node->value;
    out->shape = node->shape;
    for (const auto& child : node->children) {
      REMAC_ASSIGN_OR_RETURN(PlanNodePtr sub, rebuild(child, output_index));
      out->children.push_back(std::move(sub));
    }
    return out;
  };

  // Which outputs were touched?
  std::set<int> touched;
  for (const Rewrite& rewrite : rewrites) {
    touched.insert(groups[rewrite.site.group_index].output_index);
  }
  std::vector<InlinedOutput> result;
  for (size_t i = 0; i < outputs->size(); ++i) {
    // Insert temps whose first use is this statement.
    for (const auto& [name, plan] : temp_plans) {
      if (temp_first_use[name] == static_cast<int>(i)) {
        InlinedOutput temp;
        temp.target = name;
        temp.plan = plan;
        temp.scalar = plan->shape.is_scalar;
        result.push_back(std::move(temp));
      }
    }
    if (touched.count(static_cast<int>(i)) > 0) {
      REMAC_ASSIGN_OR_RETURN(PlanNodePtr plan,
                             rebuild(decomposed[i].skeleton, i));
      REMAC_RETURN_NOT_OK(InferShapes(plan.get()));
      InlinedOutput out = (*outputs)[i];
      out.plan = std::move(plan);
      result.push_back(std::move(out));
    } else {
      result.push_back((*outputs)[i]);
    }
  }
  *outputs = std::move(result);
  return applied;
}

}  // namespace remac
