#ifndef REMAC_CORE_CROSS_BLOCK_H_
#define REMAC_CORE_CROSS_BLOCK_H_

#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/analysis.h"

namespace remac {

/// \brief A cross-block CSE found by reverting the distributive expansion
/// (paper Section 3.2 discussion): the expansion splits
/// P(XY + YZ) into the blocks P·X·Y and P·Y·Z, hiding the common sum
/// XY + YZ; grouping terms by their shared prefix/suffix factors reveals
/// it. When the same grouped sum occurs in two or more places it is
/// materialized once.
struct CrossBlockOption {
  /// Canonical key of the grouped sum (sorted canonical chain keys of the
  /// residual terms joined with '+').
  std::string key;
  int num_sites = 0;
  /// Name of the temp the rewrite introduced.
  std::string temp_name;
};

/// Detects repeated grouped sums across the (inlined) loop outputs and
/// rewrites them: a temp statement computing the grouped sum is inserted
/// before its first use and the matched additive terms are replaced by
/// (common factor) * temp. The rewritten outputs flow through the normal
/// pipeline, where the temp's own chains get searched like any other
/// statement. Sites are only unified when every referenced loop variable
/// has the same intra-iteration version at both sites.
///
/// Returns the applied options (empty when nothing repeats, which is the
/// common case for GD/DFP/BFGS — the pattern needs sums of products that
/// share factors, as in the paper's P XY + P YZ + XY Q + YZ Q example).
Result<std::vector<CrossBlockOption>> ApplyCrossBlockCse(
    std::vector<InlinedOutput>* outputs,
    const std::set<std::string>& loop_assigned);

}  // namespace remac

#endif  // REMAC_CORE_CROSS_BLOCK_H_
