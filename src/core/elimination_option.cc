#include "core/elimination_option.h"

#include "common/string_util.h"

namespace remac {

bool Occurrence::Overlaps(const Occurrence& other) const {
  if (block_id != other.block_id) return false;
  return begin < other.end && other.begin < end;
}

bool Occurrence::Inside(const Occurrence& other) const {
  return block_id == other.block_id && other.begin <= begin &&
         end <= other.end && !SameRange(other);
}

bool Occurrence::SameRange(const Occurrence& other) const {
  return block_id == other.block_id && begin == other.begin &&
         end == other.end;
}

std::string Occurrence::ToString() const {
  return StringFormat("b%d[%d,%d)%s", block_id, begin, end,
                      forward ? "" : "^T");
}

std::string EliminationOption::ToString() const {
  std::vector<std::string> occs;
  occs.reserve(occurrences.size());
  for (const auto& o : occurrences) occs.push_back(o.ToString());
  return StringFormat("%s#%d{%s @ %s}", IsLse() ? "LSE" : "CSE", id,
                      key.c_str(), Join(occs, ",").c_str());
}

bool OptionsConflict(const EliminationOption& a, const EliminationOption& b) {
  for (const auto& oa : a.occurrences) {
    for (const auto& ob : b.occurrences) {
      if (!oa.Overlaps(ob)) continue;
      if (oa.SameRange(ob)) return true;
      if (oa.Inside(ob) || ob.Inside(oa)) continue;  // nesting is fine
      return true;  // partial overlap
    }
  }
  return false;
}

}  // namespace remac
