#ifndef REMAC_CORE_BLOCK_SEARCH_H_
#define REMAC_CORE_BLOCK_SEARCH_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/analysis.h"
#include "core/elimination_option.h"
#include "plan/chain.h"

namespace remac {

/// \brief The normalized search space of one loop body: per-output
/// skeletons plus the flat list of blocks laid out on the global
/// coordinate axis (paper Figure 4).
struct SearchSpace {
  struct ExprEntry {
    std::string target;
    PlanNodePtr skeleton;  // kBlockRef leaves index into `blocks`
    bool scalar = false;
  };
  std::vector<ExprEntry> exprs;
  std::vector<Block> blocks;
  int64_t coordinate_length = 0;
};

/// Normalizes the inlined loop outputs (symmetry + loop-constant labels,
/// transpose push-down, expansion) and decomposes them into one global
/// block list (paper Section 3.2 steps 1-2).
Result<SearchSpace> BuildSearchSpace(
    const std::vector<InlinedOutput>& outputs,
    const std::set<std::string>& loop_assigned,
    const std::map<std::string, bool>& symmetric_vars, int max_terms = 64);

/// Metrics of one search run.
struct SearchReport {
  double wall_seconds = 0.0;
  int64_t windows_visited = 0;
  int options_found = 0;
};

/// \brief The block-wise search (paper Section 3.2 step 3 + Section 3.3):
/// slides windows of every size over every block, hashing canonical keys;
/// hash conflicts yield CSE options, all-loop-constant windows yield LSE
/// options.
std::vector<EliminationOption> BlockWiseSearch(const SearchSpace& space,
                                               SearchReport* report,
                                               bool find_lse = true);

/// \brief Reference tree-wise search (paper Section 3.1): enumerates the
/// parenthesization trees of every block (Catalan-many per chain) and
/// collects subtree expressions — the baseline whose duplicated work
/// motivates the block-wise search. Produces the same option set when it
/// completes. Stops early after `budget` tree nodes, returning what it
/// found with report->wall_seconds reflecting the time spent.
std::vector<EliminationOption> TreeWiseSearch(const SearchSpace& space,
                                              int64_t budget,
                                              SearchReport* report,
                                              bool find_lse = true);

/// \brief SPORES-style sampled search: considers only a bounded sample of
/// windows per block (mimicking the sampling SPORES uses on long
/// multiplication chains) and finds CSE only (no loop analysis).
std::vector<EliminationOption> SampledSearch(const SearchSpace& space,
                                             int max_window, int max_samples,
                                             SearchReport* report);

}  // namespace remac

#endif  // REMAC_CORE_BLOCK_SEARCH_H_
