#ifndef REMAC_CORE_DP_PROBER_H_
#define REMAC_CORE_DP_PROBER_H_

#include <vector>

#include "common/status.h"
#include "core/cost_graph.h"
#include "core/elimination_option.h"

namespace remac {

/// Metrics of one probing / enumeration run.
struct ProbeReport {
  int evaluations = 0;
  /// Greedy pick-the-best rounds the probe ran (>= 1).
  int rounds = 0;
  /// Candidates withdrawn for conflicting with a committed option.
  int withdrawn = 0;
  double wall_seconds = 0.0;
  double chosen_cost = 0.0;    // per-iteration cost of the final pick
  double baseline_cost = 0.0;  // per-iteration cost with no options
};

/// \brief The probing phase of adaptive elimination (paper Section 4.3.2).
///
/// Each candidate option's accumulated cost is evaluated in the joint
/// upstream of its occurrences by a full interval-DP pass (Equations
/// 7-10 reduce to chain DP over contracted units); options whose
/// candidate cost beats the current minimum are picked, options that can
/// no longer contribute are withdrawn, and the process repeats until no
/// candidate improves the plan. Avoids brute-force enumeration: the work
/// is O(rounds * options * DP) instead of exponential.
Result<std::vector<const EliminationOption*>> AdaptiveProbe(
    const CostGraph& graph, const std::vector<EliminationOption>& options,
    ProbeReport* report);

}  // namespace remac

#endif  // REMAC_CORE_DP_PROBER_H_
