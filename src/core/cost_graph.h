#ifndef REMAC_CORE_COST_GRAPH_H_
#define REMAC_CORE_COST_GRAPH_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/block_search.h"
#include "core/elimination_option.h"
#include "cost/cost_model.h"

namespace remac {

/// A half-open factor interval within a block.
struct Interval {
  int begin = 0;
  int end = 0;
  bool operator<(const Interval& other) const {
    return std::tie(begin, end) < std::tie(other.begin, other.end);
  }
  bool operator==(const Interval&) const = default;
};

/// Binary split structure chosen by the chain DP for one block.
struct SplitNode {
  Interval range;
  /// Leaf unit: either a single factor or a contracted (temp) interval.
  bool is_unit = false;
  /// When the unit is a contracted occurrence: the option providing it
  /// (-1 for plain single factors).
  int option_id = -1;
  std::unique_ptr<SplitNode> left;
  std::unique_ptr<SplitNode> right;
};

/// Result of evaluating one combination of elimination options.
struct CombinationCost {
  /// Cost of one loop iteration, including CSE temp production and the
  /// amortized share of hoisted LSE productions.
  double per_iteration_seconds = 0.0;
  /// Un-amortized one-time cost of all hoisted LSE temps.
  double hoisted_seconds = 0.0;
  /// Per-option production cost (seconds), indexed by option id.
  std::map<int, double> production_seconds;
};

/// \brief The cost graph of paper Section 4.3: for every block, the
/// lattice of interval operators O(I_l, I_r) with their costs, where
/// alternative downstream operators are alternative split points
/// (Figure 6), LSE contributes amortized operator costs, and CSE
/// contributes apportioned candidate costs.
///
/// Built once per optimization (the building phase); the probing phase
/// calls Evaluate() with different option sets (Equations 7-10 reduce to
/// interval DP over contracted units).
class CostGraph {
 public:
  CostGraph(const SearchSpace* space, const CostModel* cost_model,
            const VarStats* vars, int iterations);

  /// Precomputes interval statistics for every block (the building
  /// phase's per-operator evaluations).
  Status Build();

  int iterations() const { return iterations_; }
  const CostModel& cost_model() const { return *cost_model_; }

  /// Canonical statistics of factors [begin, end) of `block_id`.
  const CostedStats& IntervalStats(int block_id, int begin, int end) const;

  /// Minimum cost of computing the interval with no options applied
  /// (Equations 7-8 without candidates), plus the chosen split.
  double PlainIntervalCost(int block_id, int begin, int end) const;

  /// Evaluates the total per-iteration cost of the loop body with the
  /// given chosen options (the probing phase objective). Returns an
  /// error when the chosen options conflict.
  Result<CombinationCost> Evaluate(
      const std::vector<const EliminationOption*>& chosen) const;

  /// Split tree of the no-option optimal plan of one block.
  const SplitNode* DefaultSplit(int block_id) const;

  /// True if [begin, end) is a subtree interval of the default split of
  /// `block_id` (used by the conservative strategy's order test).
  bool IsOriginalOrderInterval(int block_id, int begin, int end) const;

  /// Chain DP over a block with `contracted` occurrence intervals used as
  /// free units (temp references). Returns cost; fills `split` when
  /// non-null. `contracted` must be pairwise disjoint.
  double ChainCostWithUnits(int block_id, int range_begin, int range_end,
                            const std::vector<std::pair<Interval, int>>&
                                contracted,
                            std::unique_ptr<SplitNode>* split) const;

  /// Total skeleton cost of one expression given per-block costs already
  /// accounted: returns operator costs of the non-chain glue (element-wise
  /// ops, divisions, ...), treating each kBlockRef as a free leaf with the
  /// block's root statistics.
  Result<double> SkeletonCost(int expr_index) const;

 private:
  struct BlockTable {
    // stats[i * n + j] for 0 <= i <= j < n.
    std::vector<CostedStats> stats;
    // Production cost of opaque factors (charged once per block plan).
    double opaque_factor_seconds = 0.0;
    std::unique_ptr<SplitNode> default_split;
    double default_cost = 0.0;
    std::set<Interval> default_intervals;
  };

  const CostedStats& StatsAt(const BlockTable& table, int n, int i,
                             int j) const {
    return table.stats[static_cast<size_t>(i) * n + j];
  }

  Result<CostedStats> FactorStats(const Factor& factor) const;

  const SearchSpace* space_;
  const CostModel* cost_model_;
  const VarStats* vars_;
  int iterations_;
  std::vector<BlockTable> tables_;
  double total_skeleton_seconds_ = 0.0;  // cached: option-independent
  bool built_ = false;
};

}  // namespace remac

#endif  // REMAC_CORE_COST_GRAPH_H_
