#ifndef REMAC_CORE_ELIMINATION_OPTION_H_
#define REMAC_CORE_ELIMINATION_OPTION_H_

#include <string>
#include <vector>

#include "plan/chain.h"
#include "plan/plan_node.h"

namespace remac {

/// \brief One appearance of a redundant subexpression: a factor window
/// [begin, end) inside a block.
struct Occurrence {
  int block_id = 0;
  int begin = 0;
  int end = 0;
  /// True if the window reads in the canonical orientation; false means
  /// the site needs the transpose of the shared result.
  bool forward = true;

  int Length() const { return end - begin; }
  bool Overlaps(const Occurrence& other) const;
  /// Strict containment (this inside other).
  bool Inside(const Occurrence& other) const;
  bool SameRange(const Occurrence& other) const;
  std::string ToString() const;
};

enum class OptionKind { kCse, kLse };

/// \brief One elimination option produced by the block-wise search: a
/// canonical subexpression plus every place it occurs. CSE options have
/// at least two disjoint occurrences; LSE options have loop-constant
/// windows (one occurrence suffices — hoisting still pays off).
struct EliminationOption {
  int id = 0;
  OptionKind kind = OptionKind::kCse;
  std::string key;  // canonical window key
  std::vector<Occurrence> occurrences;
  /// Shape of the canonical subexpression's result.
  Shape shape;

  bool IsLse() const { return kind == OptionKind::kLse; }
  std::string ToString() const;
};

/// Two options conflict when any pair of their occurrences in the same
/// block partially overlaps (nesting and disjointness are fine), or when
/// they share an identical range (both would materialize the same window).
bool OptionsConflict(const EliminationOption& a, const EliminationOption& b);

}  // namespace remac

#endif  // REMAC_CORE_ELIMINATION_OPTION_H_
