#include "core/block_search.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <unordered_map>

#include "obs/metrics.h"
#include "plan/rewriter.h"

namespace remac {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Books one search run into the registry (all three search methods).
void RecordSearchMetrics(int64_t windows,
                         const std::vector<EliminationOption>& options) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("remac.search.runs")->Add();
  if (windows > 0) {
    registry.GetCounter("remac.search.windows_visited")->Add(windows);
  }
  registry.GetCounter("remac.search.options_found")
      ->Add(static_cast<int64_t>(options.size()));
  int64_t lse = 0;
  for (const auto& option : options) {
    if (option.IsLse()) ++lse;
  }
  registry.GetCounter("remac.search.lse_options")->Add(lse);
  registry.GetCounter("remac.search.cse_options")
      ->Add(static_cast<int64_t>(options.size()) - lse);
}

/// Shape of the canonical (key-oriented) subexpression of an occurrence.
Shape CanonicalShape(const Block& block, const Occurrence& occ) {
  Shape s;
  s.rows = block.factors[occ.begin].shape.rows;
  s.cols = block.factors[occ.end - 1].shape.cols;
  if (!occ.forward) std::swap(s.rows, s.cols);
  return s;
}

/// A window is worth eliminating only if reusing it saves computation:
/// at least two factors, or a single transposed factor.
bool WindowIsComputation(const Block& block, int begin, int end) {
  if (end - begin >= 2) return true;
  return block.factors[begin].transposed;
}

/// Greedily selects a maximal set of pairwise disjoint occurrences
/// (within a block, overlapping windows cannot share one materialized
/// value).
std::vector<Occurrence> DisjointSubset(std::vector<Occurrence> occs) {
  std::sort(occs.begin(), occs.end(), [](const Occurrence& a,
                                         const Occurrence& b) {
    if (a.block_id != b.block_id) return a.block_id < b.block_id;
    if (a.end != b.end) return a.end < b.end;
    return a.begin < b.begin;
  });
  std::vector<Occurrence> out;
  for (const auto& occ : occs) {
    bool clash = false;
    for (const auto& kept : out) {
      if (occ.Overlaps(kept)) {
        clash = true;
        break;
      }
    }
    if (!clash) out.push_back(occ);
  }
  return out;
}

/// Builds options from a filled window table.
std::vector<EliminationOption> OptionsFromTable(
    const SearchSpace& space,
    const std::unordered_map<std::string, std::vector<Occurrence>>& table,
    bool find_lse) {
  std::vector<EliminationOption> options;
  for (const auto& [key, occs] : table) {
    const std::vector<Occurrence> disjoint = DisjointSubset(occs);
    if (disjoint.empty()) continue;
    // CSE: the key appears in two or more disjoint places.
    if (disjoint.size() >= 2) {
      EliminationOption opt;
      opt.kind = OptionKind::kCse;
      opt.key = key;
      opt.occurrences = disjoint;
      opt.shape = CanonicalShape(space.blocks[disjoint[0].block_id],
                                 disjoint[0]);
      options.push_back(std::move(opt));
    }
    if (!find_lse) continue;
    // LSE: occurrences whose factors are all loop-constant (paper
    // Section 3.3 step 3*). A single occurrence still pays off.
    std::vector<Occurrence> constant;
    for (const auto& occ : disjoint) {
      const Block& block = space.blocks[occ.block_id];
      if (block.AllLoopConstant(occ.begin, occ.end)) constant.push_back(occ);
    }
    if (!constant.empty()) {
      EliminationOption opt;
      opt.kind = OptionKind::kLse;
      opt.key = key;
      opt.occurrences = constant;
      opt.shape = CanonicalShape(space.blocks[constant[0].block_id],
                                 constant[0]);
      options.push_back(std::move(opt));
    }
  }
  // Deterministic order + ids.
  std::sort(options.begin(), options.end(),
            [](const EliminationOption& a, const EliminationOption& b) {
              if (a.key != b.key) return a.key < b.key;
              return a.kind < b.kind;
            });
  for (size_t i = 0; i < options.size(); ++i) {
    options[i].id = static_cast<int>(i);
  }
  return options;
}

}  // namespace

Result<SearchSpace> BuildSearchSpace(
    const std::vector<InlinedOutput>& outputs,
    const std::set<std::string>& loop_assigned,
    const std::map<std::string, bool>& symmetric_vars, int max_terms) {
  SearchSpace space;
  // Version of each loop-assigned variable *before* statement i: the
  // number of assignments among statements 0..i-1. Two windows over a
  // loop variable may only unify when they read the same version, so the
  // version is baked into the factor symbol.
  std::map<std::string, int> version_now;
  std::vector<std::map<std::string, int>> version_at(outputs.size());
  for (size_t i = 0; i < outputs.size(); ++i) {
    version_at[i] = version_now;
    ++version_now[outputs[i].target];
  }
  for (size_t i = 0; i < outputs.size(); ++i) {
    PlanNodePtr plan = outputs[i].plan->Clone();
    LabelSymmetry(plan.get(), symmetric_vars);
    LabelLoopConstants(plan.get(), loop_assigned);
    plan = NormalizeForSearch(plan, max_terms);
    // Normalization rebuilt nodes; re-label.
    LabelSymmetry(plan.get(), symmetric_vars);
    LabelLoopConstants(plan.get(), loop_assigned);
    REMAC_ASSIGN_OR_RETURN(Decomposition d,
                           DecomposeIntoBlocks(plan, static_cast<int>(i)));
    // Renumber this decomposition's blocks into the global list.
    const int offset = static_cast<int>(space.blocks.size());
    std::function<void(PlanNode*)> renumber = [&](PlanNode* node) {
      if (node->op == PlanOp::kBlockRef) {
        node->value += offset;
      }
      for (auto& child : node->children) renumber(child.get());
    };
    renumber(d.skeleton.get());
    for (auto& block : d.blocks) {
      for (Factor& factor : block.factors) {
        if (factor.node->op == PlanOp::kInput &&
            loop_assigned.count(factor.node->name) > 0) {
          auto vit = version_at[i].find(factor.node->name);
          factor.version = vit == version_at[i].end() ? 0 : vit->second;
          factor.base_symbol +=
              "@" + std::to_string(factor.version);
        }
      }
      block.coord_begin = space.coordinate_length;
      space.coordinate_length += block.Length();
      space.blocks.push_back(std::move(block));
    }
    SearchSpace::ExprEntry entry;
    entry.target = outputs[i].target;
    entry.skeleton = std::move(d.skeleton);
    entry.scalar = outputs[i].scalar;
    space.exprs.push_back(std::move(entry));
  }
  return space;
}

std::vector<EliminationOption> BlockWiseSearch(const SearchSpace& space,
                                               SearchReport* report,
                                               bool find_lse) {
  const auto start = Clock::now();
  std::unordered_map<std::string, std::vector<Occurrence>> table;
  int64_t windows = 0;
  for (size_t b = 0; b < space.blocks.size(); ++b) {
    const Block& block = space.blocks[b];
    const int len = static_cast<int>(block.factors.size());
    for (int w = 1; w <= len; ++w) {
      for (int s = 0; s + w <= len; ++s) {
        if (!WindowIsComputation(block, s, s + w)) continue;
        ++windows;
        Occurrence occ;
        occ.block_id = static_cast<int>(b);
        occ.begin = s;
        occ.end = s + w;
        occ.forward = WindowIsForward(block, s, s + w);
        table[WindowKey(block, s, s + w)].push_back(occ);
      }
    }
  }
  std::vector<EliminationOption> options =
      OptionsFromTable(space, table, find_lse);
  RecordSearchMetrics(windows, options);
  if (report != nullptr) {
    report->wall_seconds = SecondsSince(start);
    report->windows_visited = windows;
    report->options_found = static_cast<int>(options.size());
  }
  return options;
}

namespace {

/// Literal tree-wise enumeration (paper Section 3.1): builds every
/// parenthesization tree of a chain, in every transposition variant
/// (each internal node can also be computed as the transpose of its
/// reversed children), and records every subtree of every such plan into
/// the hash table — revisiting the same subexpression Catalan-many times.
/// This is the duplicated search the block-wise method eliminates.
class TreeEnumerator {
 public:
  TreeEnumerator(const SearchSpace& space, int64_t budget,
                 std::unordered_map<std::string, std::vector<Occurrence>>*
                     table)
      : space_(space), budget_(budget), table_(table) {}

  /// Enumerates trees over block `block_id`; returns false when the node
  /// budget ran out mid-way.
  bool EnumerateBlock(int block_id) {
    block_id_ = block_id;
    const Block& block = space_.blocks[block_id];
    const int n = static_cast<int>(block.factors.size());
    if (n == 0) return true;
    pending_.clear();
    chosen_.clear();
    pending_.push_back({0, n});
    return Step();
  }

  bool exhausted() const { return budget_ <= 0; }

 private:
  /// Expands the next pending range; on an empty agenda a complete tree
  /// has formed and every subtree is visited in both orientations (the
  /// 2^internal transposition variants are walked as an explicit loop,
  /// which is exactly the wasted work a real tree-wise search performs).
  bool Step() {
    if (budget_ <= 0) return false;
    if (pending_.empty()) {
      int internal = 0;
      for (const auto& range : chosen_) {
        internal += (range.second - range.first) > 1;
      }
      // Each orientation assignment of internal nodes is a distinct plan
      // tree; visit all of them (capped so a single huge tree cannot
      // overshoot the budget by orders of magnitude).
      const int64_t variants = int64_t{1}
                               << std::min(internal, 24);
      for (int64_t v = 0; v < variants; ++v) {
        for (const auto& range : chosen_) {
          budget_ -= 1;
          if (budget_ <= 0) return false;
          if (!WindowIsComputation(space_.blocks[block_id_], range.first,
                                   range.second)) {
            continue;
          }
          Occurrence occ;
          occ.block_id = block_id_;
          occ.begin = range.first;
          occ.end = range.second;
          occ.forward = WindowIsForward(space_.blocks[block_id_],
                                        range.first, range.second);
          auto& entries = (*table_)[WindowKey(
              space_.blocks[block_id_], range.first, range.second)];
          // Collapse consecutive duplicate visits so memory stays
          // bounded; the (wasted) hash-table work is still performed.
          if (entries.empty() || !entries.back().SameRange(occ)) {
            entries.push_back(occ);
          }
        }
      }
      return true;
    }
    const std::pair<int, int> range = pending_.back();
    pending_.pop_back();
    chosen_.push_back(range);
    if (range.second - range.first == 1) {
      if (!Step()) return false;
    } else {
      for (int k = range.first + 1; k < range.second; ++k) {
        pending_.push_back({range.first, k});
        pending_.push_back({k, range.second});
        if (!Step()) return false;
        pending_.pop_back();
        pending_.pop_back();
      }
    }
    chosen_.pop_back();
    pending_.push_back(range);
    return true;
  }

  const SearchSpace& space_;
  int64_t budget_;
  std::unordered_map<std::string, std::vector<Occurrence>>* table_;
  int block_id_ = 0;
  std::vector<std::pair<int, int>> pending_;
  std::vector<std::pair<int, int>> chosen_;
};

}  // namespace

std::vector<EliminationOption> TreeWiseSearch(const SearchSpace& space,
                                              int64_t budget,
                                              SearchReport* report,
                                              bool find_lse) {
  const auto start = Clock::now();
  std::unordered_map<std::string, std::vector<Occurrence>> table;
  TreeEnumerator enumerator(space, budget, &table);
  bool exhausted = false;
  for (size_t b = 0; b < space.blocks.size() && !exhausted; ++b) {
    if (space.blocks[b].factors.empty()) continue;
    exhausted = !enumerator.EnumerateBlock(static_cast<int>(b));
  }
  // Dedupe repeated visits of the same window before option building.
  for (auto& [key, occs] : table) {
    std::sort(occs.begin(), occs.end(),
              [](const Occurrence& a, const Occurrence& b) {
                return std::tie(a.block_id, a.begin, a.end) <
                       std::tie(b.block_id, b.begin, b.end);
              });
    occs.erase(std::unique(occs.begin(), occs.end(),
                           [](const Occurrence& a, const Occurrence& b) {
                             return a.SameRange(b);
                           }),
               occs.end());
  }
  std::vector<EliminationOption> options =
      OptionsFromTable(space, table, find_lse);
  RecordSearchMetrics(0, options);
  if (report != nullptr) {
    report->wall_seconds = SecondsSince(start);
    report->windows_visited = exhausted ? -1 : 0;
    report->options_found = static_cast<int>(options.size());
  }
  return options;
}

std::vector<EliminationOption> SampledSearch(const SearchSpace& space,
                                             int max_window, int max_samples,
                                             SearchReport* report) {
  const auto start = Clock::now();
  std::unordered_map<std::string, std::vector<Occurrence>> table;
  int64_t windows = 0;
  for (size_t b = 0; b < space.blocks.size(); ++b) {
    const Block& block = space.blocks[b];
    const int len = static_cast<int>(block.factors.size());
    int samples = 0;
    for (int w = 1; w <= std::min(len, max_window); ++w) {
      for (int s = 0; s + w <= len && samples < max_samples; ++s) {
        if (!WindowIsComputation(block, s, s + w)) continue;
        ++windows;
        ++samples;
        Occurrence occ;
        occ.block_id = static_cast<int>(b);
        occ.begin = s;
        occ.end = s + w;
        occ.forward = WindowIsForward(block, s, s + w);
        table[WindowKey(block, s, s + w)].push_back(occ);
      }
    }
  }
  std::vector<EliminationOption> options =
      OptionsFromTable(space, table, /*find_lse=*/false);
  RecordSearchMetrics(windows, options);
  if (report != nullptr) {
    report->wall_seconds = SecondsSince(start);
    report->windows_visited = windows;
    report->options_found = static_cast<int>(options.size());
  }
  return options;
}

}  // namespace remac
