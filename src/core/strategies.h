#ifndef REMAC_CORE_STRATEGIES_H_
#define REMAC_CORE_STRATEGIES_H_

#include <vector>

#include "common/status.h"
#include "core/cost_graph.h"
#include "core/dp_prober.h"
#include "core/elimination_option.h"

namespace remac {

/// \brief The conservative strategy (paper Section 6.3.1): applies only
/// elimination options whose every occurrence is a subtree of the
/// original (default chain-DP) execution plan — they reuse results
/// without changing the operator order, so they never hurt.
Result<std::vector<const EliminationOption*>> ConservativePick(
    const CostGraph& graph, const std::vector<EliminationOption>& options,
    ProbeReport* report);

/// \brief The aggressive strategy: applies as many options as possible,
/// preferring options that change the original execution order (then the
/// rest), without consulting the cost model — fast on friendly datasets,
/// disastrous on hostile ones.
Result<std::vector<const EliminationOption*>> AggressivePick(
    const CostGraph& graph, const std::vector<EliminationOption>& options,
    ProbeReport* report);

/// \brief Automatic elimination's blind application (paper Section 6.2):
/// applies as many found options as fit together, longest subexpressions
/// first, with no cost adaptivity.
Result<std::vector<const EliminationOption*>> AutomaticPick(
    const CostGraph& graph, const std::vector<EliminationOption>& options,
    ProbeReport* report);

/// True if every occurrence of `option` is an interval of the default
/// split tree of its block (order-preserving).
bool PreservesOriginalOrder(const CostGraph& graph,
                            const EliminationOption& option);

}  // namespace remac

#endif  // REMAC_CORE_STRATEGIES_H_
