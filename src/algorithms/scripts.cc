#include "algorithms/scripts.h"

#include "common/string_util.h"

namespace remac {

std::string GdScript(const std::string& ds, int iterations) {
  return StringFormat(R"(
A = read("%s");
b = read("%s_b");
x = zeros(ncol(A), 1);
alpha = 0.000001;
i = 0;
while (i < %d) {
  g = t(A) %%*%% (A %%*%% x) - t(A) %%*%% b;
  x = x - alpha * g;
  i = i + 1;
}
)",
                      ds.c_str(), ds.c_str(), iterations);
}

std::string DfpScript(const std::string& ds, int iterations) {
  return StringFormat(R"(
A = read("%s");
b = read("%s_b");
x = zeros(ncol(A), 1);
H = eye(ncol(A));
i = 0;
while (i < %d) {
  g = t(A) %%*%% (A %%*%% x - b);
  d = -(H %%*%% g);
  H = H - (H %%*%% t(A) %%*%% A %%*%% d %%*%% t(d) %%*%% t(A) %%*%% A %%*%% H) / (t(d) %%*%% t(A) %%*%% A %%*%% H %%*%% t(A) %%*%% A %%*%% d) + (d %%*%% t(d)) / (2 * (t(d) %%*%% t(A) %%*%% A %%*%% d));
  x = x + 0.5 * d;
  i = i + 1;
}
)",
                      ds.c_str(), ds.c_str(), iterations);
}

std::string BfgsScript(const std::string& ds, int iterations) {
  return StringFormat(R"(
A = read("%s");
b = read("%s_b");
x = zeros(ncol(A), 1);
H = eye(ncol(A));
i = 0;
while (i < %d) {
  g = t(A) %%*%% (A %%*%% x - b);
  d = -(H %%*%% g);
  sy = t(d) %%*%% t(A) %%*%% (A %%*%% d);
  H = H - (d %%*%% t(d) %%*%% t(A) %%*%% A %%*%% H) / sy - (H %%*%% t(A) %%*%% A %%*%% d %%*%% t(d)) / sy + (t(d) %%*%% t(A) %%*%% A %%*%% H %%*%% t(A) %%*%% A %%*%% d) * (d %%*%% t(d)) / (sy * sy) + (d %%*%% t(d)) / sy;
  x = x + 0.5 * d;
  i = i + 1;
}
)",
                      ds.c_str(), ds.c_str(), iterations);
}

std::string GnmfScript(const std::string& ds, int rank, int iterations) {
  return StringFormat(R"(
V = read("%s");
W = rand(nrow(V), %d);
H = rand(%d, ncol(V));
i = 0;
while (i < %d) {
  H = H * (t(W) %%*%% V) / (t(W) %%*%% W %%*%% H);
  W = W * (V %%*%% t(H)) / (W %%*%% H %%*%% t(H));
  i = i + 1;
}
)",
                      ds.c_str(), rank, rank, iterations);
}

std::string LogisticRegressionScript(const std::string& ds, int iterations) {
  return StringFormat(R"(
A = read("%s");
y = read("%s_b");
x = zeros(ncol(A), 1);
alpha = 0.0001;
i = 0;
while (i < %d) {
  p = 1 / (1 + exp(-(A %%*%% x)));
  g = t(A) %%*%% (p - y);
  x = x - alpha * g;
  i = i + 1;
}
)",
                      ds.c_str(), ds.c_str(), iterations);
}

std::string RidgeRegressionScript(const std::string& ds, int iterations,
                                  double lambda) {
  return StringFormat(R"(
A = read("%s");
b = read("%s_b");
x = zeros(ncol(A), 1);
alpha = 0.000001;
i = 0;
while (i < %d) {
  g = t(A) %%*%% (A %%*%% x) - t(A) %%*%% b + %g * x;
  x = x - alpha * g;
  i = i + 1;
}
)",
                      ds.c_str(), ds.c_str(), iterations, lambda);
}

std::string PartialDfpScript(const std::string& ds) {
  return StringFormat(R"(
A = read("%s");
d = read("%s_pd");
H = read("%s_pH");
val = t(d) %%*%% t(A) %%*%% A %%*%% H %%*%% t(A) %%*%% A %%*%% d;
)",
                      ds.c_str(), ds.c_str(), ds.c_str());
}

}  // namespace remac
