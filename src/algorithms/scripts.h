#ifndef REMAC_ALGORITHMS_SCRIPTS_H_
#define REMAC_ALGORITHMS_SCRIPTS_H_

#include <string>

namespace remac {

/// Script builders for the paper's evaluation algorithms (Section 6.1).
/// Each expects the catalog to hold dataset `ds` and its label vector
/// `<ds>_b` (see RegisterDataset in data/generators.h).

/// Gradient descent for least squares. Contains loop-constant
/// subexpressions (t(A) %*% b and the implicit t(A) %*% A) but no CSE.
std::string GdScript(const std::string& ds, int iterations);

/// Davidon-Fletcher-Powell (paper Equations 1-2). Rich in both implicit
/// CSE (A %*% d, d^T A^T A, H %*% g, d d^T, ...) and LSE (A^T A).
std::string DfpScript(const std::string& ds, int iterations);

/// Broyden-Fletcher-Goldfarb-Shanno in expanded form; like DFP it mixes
/// common and loop-constant subexpressions across five additive terms.
std::string BfgsScript(const std::string& ds, int iterations);

/// Gaussian non-negative matrix factorization with multiplicative
/// updates; long multiplication chains, no loop-constant subexpressions.
std::string GnmfScript(const std::string& ds, int rank, int iterations);

/// Logistic regression via gradient descent: exercises the element-wise
/// exp() path (sigmoid written as 1 / (1 + exp(-Ax))). The loop-constant
/// A^T does not hoist as a whole, but A^T-involving chains still expose
/// CSE to the optimizer.
std::string LogisticRegressionScript(const std::string& ds, int iterations);

/// Ridge regression (L2-regularized least squares) via gradient descent:
/// g = A^T A x - A^T b + lambda x. Like GD it is LSE-rich (A^T A, A^T b).
std::string RidgeRegressionScript(const std::string& ds, int iterations,
                                  double lambda = 0.1);

/// The longest DFP subexpression SPORES supports (paper Section 6.2.1):
/// d^T A^T A H A^T A d as a straight-line program. Requires auxiliary
/// datasets `<ds>_pd` (n x 1) and `<ds>_pH` (n x n).
std::string PartialDfpScript(const std::string& ds);

}  // namespace remac

#endif  // REMAC_ALGORITHMS_SCRIPTS_H_
