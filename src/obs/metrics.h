#ifndef REMAC_OBS_METRICS_H_
#define REMAC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace remac {

/// \brief Process-wide telemetry primitives.
///
/// Every subsystem reports into one MetricsRegistry under the naming
/// scheme `remac.<subsystem>.<name>` (see docs/INTERNALS.md Section 10),
/// so a single snapshot spans parse -> optimize -> execute instead of
/// ad-hoc per-struct counters. Updates are lock-free atomics; only
/// metric registration takes a (sharded) lock. All types are TSan-clean
/// under concurrent update + snapshot.

/// Monotonically increasing integer metric. Exact under concurrency
/// (fetch_add), which the hammer tests in tests/obs_test.cc assert.
class Counter {
 public:
  void Add(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-write-wins double metric with accumulate and running-max modes
/// (Add is a CAS loop, the repo's atomic-double idiom; SetMax keeps the
/// high-water mark, used for queue depths).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta);
  void SetMax(double value);
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket latency/size histogram. A value lands in the first
/// bucket whose upper bound is >= the value (bounds are inclusive upper
/// edges); values above every bound land in the implicit +Inf bucket.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  /// Default bounds for second-valued latencies: 1us ... 60s, log-ish.
  static const std::vector<double>& DefaultLatencyBounds();

  void Observe(double value);

  int64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; index bounds_.size() is +Inf.
  std::vector<int64_t> BucketCounts() const;
  void Reset();

 private:
  std::vector<double> bounds_;
  /// bounds_.size() + 1 slots (last = +Inf overflow).
  std::unique_ptr<std::atomic<int64_t>[]> buckets_;
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Interpolated quantile (q in [0, 1]) from the histogram's bucket
/// counts: walks the cumulative distribution to the bucket holding the
/// q-th observation and interpolates linearly between the bucket's lower
/// and (inclusive) upper bound. The first bucket's lower edge is 0;
/// observations in the +Inf overflow bucket clamp to the top finite
/// bound (the histogram cannot know how far past it they landed). An
/// empty histogram reports 0.
double HistogramQuantile(const Histogram& histogram, double q);

/// \brief Thread-safe, lock-sharded registry of named metrics.
///
/// Get* registers on first use and returns a pointer that stays valid
/// for the registry's lifetime (metrics are never erased; Reset zeroes
/// values in place). Names are dot-separated (`remac.pool.steals`);
/// exports sort by name so snapshots are deterministic (golden-testable).
class MetricsRegistry {
 public:
  MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every built-in instrumentation site uses.
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `bounds` applies only on first registration of `name`.
  Histogram* GetHistogram(const std::string& name,
                          const std::vector<double>& bounds =
                              Histogram::DefaultLatencyBounds());

  /// JSON snapshot: {"counters": {...}, "gauges": {...},
  /// "histograms": {...}}. With include_histograms=false the histograms
  /// section is omitted entirely (compact form for bench JSON lines).
  std::string ToJson(bool include_histograms = true) const;

  /// Prometheus text exposition format (dots become underscores,
  /// histograms emit cumulative `_bucket{le=...}` series).
  std::string ToPrometheus() const;

  /// Writes a snapshot to `path`; ".prom"/".txt" extensions select the
  /// Prometheus text format, anything else gets JSON. The snapshot is
  /// written to `path + ".tmp"` and atomically renamed into place, so a
  /// concurrent reader (scraper) never observes a torn file.
  Status WriteToFile(const std::string& path) const;

  /// Zeroes every registered metric in place (pointers stay valid).
  void Reset();

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, std::unique_ptr<Counter>> counters;
    std::unordered_map<std::string, std::unique_ptr<Gauge>> gauges;
    std::unordered_map<std::string, std::unique_ptr<Histogram>> histograms;
  };

  Shard& ShardFor(const std::string& name);

  static constexpr int kShards = 8;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace remac

#endif  // REMAC_OBS_METRICS_H_
