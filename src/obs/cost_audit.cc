#include "obs/cost_audit.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "cost/physical_model.h"
#include "distributed/distributed_ops.h"
#include "matrix/fused_tape.h"

namespace remac {

namespace {

/// Estimated counterpart of RtValue: statistics plus placement.
struct PredValue {
  bool is_scalar = false;
  NodeStats stats;
  bool distributed = false;

  static PredValue Scalar() {
    PredValue out;
    out.is_scalar = true;
    return out;
  }
  static PredValue FromStats(NodeStats stats, bool distributed) {
    PredValue out;
    out.stats = std::move(stats);
    out.distributed = distributed;
    return out;
  }
};

/// Maps a tape opcode back onto its PlanOp (for the estimator calls).
PlanOp FromFusedOp(FusedOp op) {
  switch (op) {
    case FusedOp::kAdd: return PlanOp::kAdd;
    case FusedOp::kSub: return PlanOp::kSub;
    case FusedOp::kMul: return PlanOp::kMul;
    case FusedOp::kDiv: return PlanOp::kDiv;
    case FusedOp::kMin: return PlanOp::kMin;
    case FusedOp::kMax: return PlanOp::kMax;
    case FusedOp::kExp: return PlanOp::kExp;
    case FusedOp::kLog: return PlanOp::kLog;
  }
  return PlanOp::kAdd;
}

NodeStats PlainStats(double rows, double cols, double sparsity) {
  NodeStats stats;
  stats.rows = rows;
  stats.cols = cols;
  stats.sparsity = std::clamp(sparsity, 0.0, 1.0);
  return stats;
}

/// Mirrors runtime/executor.cc's Eval over statistics instead of
/// matrices, booking each operator's OpCosting into a PredictedCost the
/// same way OpCosting::Book books into the TransmissionLedger. Every
/// booking site below corresponds one-to-one to an executor site; keep
/// them in sync when the executor changes.
class CostWalker {
 public:
  CostWalker(const DataCatalog& catalog, const SparsityEstimator& estimator,
             const ClusterModel& model, const EngineTraits& traits)
      : catalog_(catalog),
        estimator_(estimator),
        model_(model),
        traits_(traits) {}

  Status Run(const std::vector<CompiledStmt>& statements,
             int max_loop_iterations) {
    for (const auto& stmt : statements) {
      if (stmt.kind == CompiledStmt::Kind::kAssign) {
        REMAC_ASSIGN_OR_RETURN(PredValue value, Eval(*stmt.plan));
        env_.insert_or_assign(stmt.target, std::move(value));
        continue;
      }
      int64_t limit = max_loop_iterations;
      if (stmt.static_trip_count >= 0) {
        limit = std::min<int64_t>(limit, stmt.static_trip_count);
      }
      if (!stmt.loop_var.empty()) {
        env_.insert_or_assign(stmt.loop_var, PredValue::Scalar());
      }
      for (int64_t iter = 0; iter < limit; ++iter) {
        if (stmt.condition != nullptr) {
          // Cost of evaluating the condition is booked each iteration;
          // its boolean outcome is unknowable here, so the audit assumes
          // the loop runs to `limit` (see header).
          REMAC_RETURN_NOT_OK(Eval(*stmt.condition).status());
        }
        if (stmt.barrier_commit) {
          std::vector<std::pair<std::string, PredValue>> staged;
          for (const auto& body_stmt : stmt.body) {
            if (body_stmt.kind != CompiledStmt::Kind::kAssign) {
              return Status::Unsupported(
                  "nested loop in barrier-commit body");
            }
            REMAC_ASSIGN_OR_RETURN(PredValue value, Eval(*body_stmt.plan));
            if (body_stmt.is_temp) {
              env_.insert_or_assign(body_stmt.target, std::move(value));
            } else {
              staged.emplace_back(body_stmt.target, std::move(value));
            }
          }
          for (auto& [name, value] : staged) {
            env_.insert_or_assign(name, std::move(value));
          }
        } else {
          REMAC_RETURN_NOT_OK(Run(stmt.body, max_loop_iterations));
        }
      }
    }
    return Status::OK();
  }

  const PredictedCost& cost() const { return cost_; }

 private:
  /// Mirror of OpCosting::Book (including the SUMMA legs' mapping onto
  /// the broadcast/shuffle primitives).
  void Book(const OpCosting& c) {
    if (c.method == MultiplyMethod::kLocalOp && c.broadcast_bytes == 0.0 &&
        c.shuffle_bytes == 0.0 && c.collection_bytes == 0.0 &&
        c.row_broadcast_bytes == 0.0 && c.col_broadcast_bytes == 0.0 &&
        c.reduce_bytes == 0.0) {
      cost_.local_flops += c.flops;
    } else {
      cost_.distributed_flops += c.flops;
    }
    At(TransmissionPrimitive::kBroadcast) +=
        c.broadcast_bytes + c.row_broadcast_bytes + c.col_broadcast_bytes;
    At(TransmissionPrimitive::kShuffle) += c.shuffle_bytes + c.reduce_bytes;
    At(TransmissionPrimitive::kCollection) += c.collection_bytes;
    At(TransmissionPrimitive::kDfs) += c.dfs_bytes;
  }

  double& At(TransmissionPrimitive pr) {
    return cost_.bytes[static_cast<size_t>(pr)];
  }

  static MatInfo InfoOf(const NodeStats& stats, bool distributed) {
    MatInfo info;
    info.rows = stats.rows;
    info.cols = stats.cols;
    info.sparsity = stats.sparsity;
    info.distributed = distributed;
    return info;
  }
  static MatInfo InfoOf(const PredValue& v) {
    return InfoOf(v.stats, v.distributed);
  }

  /// Mirror of Executor::ApplyTraits (force_dense does not change the
  /// nnz-based sparsity the costing reads, so only placement matters).
  PredValue ApplyTraits(PredValue value) const {
    if (value.is_scalar) return value;
    if (traits_.force_distributed &&
        value.stats.rows * value.stats.cols > 1.0) {
      value.distributed = true;
    }
    return value;
  }

  Result<PredValue> Eval(const PlanNode& node) {
    REMAC_ASSIGN_OR_RETURN(PredValue value, EvalImpl(node));
    return ApplyTraits(std::move(value));
  }

  Result<PredValue> EvalImpl(const PlanNode& node) {
    switch (node.op) {
      case PlanOp::kInput: {
        auto it = env_.find(node.name);
        if (it == env_.end()) {
          return Status::NotFound("variable '" + node.name +
                                  "' is not defined");
        }
        return it->second;
      }
      case PlanOp::kConst:
        return PredValue::Scalar();
      case PlanOp::kReadData: {
        REMAC_ASSIGN_OR_RETURN(const MatrixStats stats,
                               catalog_.Stats(node.name));
        // Input datasets live distributed (executor ReadDataset); the
        // input-partition dfs cost lands in a separate ledger accumulator
        // outside the audited primitives.
        return PredValue::FromStats(estimator_.LeafStats(node.name, stats),
                                    /*distributed=*/true);
      }
      case PlanOp::kEye:
      case PlanOp::kZeros:
      case PlanOp::kOnes:
      case PlanOp::kRand: {
        NodeStats stats = estimator_.GeneratorStats(node.op, node.shape.rows,
                                                    node.shape.cols);
        bool distributed = false;
        if (node.op == PlanOp::kRand) {
          // rand() produces a fully dense matrix (|gaussian| + 0.1).
          distributed = IsDistributedSize(
              MatrixBytes(stats.rows, stats.cols, 1.0), model_);
        }
        return PredValue::FromStats(std::move(stats), distributed);
      }
      case PlanOp::kTranspose: {
        REMAC_ASSIGN_OR_RETURN(const PredValue child,
                               Eval(*node.children[0]));
        if (child.is_scalar) return child;
        const OpCosting costing = CostTranspose(InfoOf(child), model_);
        Book(costing);
        return PredValue::FromStats(estimator_.Transpose(child.stats),
                                    costing.result_distributed);
      }
      case PlanOp::kMatMul: {
        // Transpose fusion, exactly as the executor unwraps it.
        const PlanNode* lhs = node.children[0].get();
        const PlanNode* rhs = node.children[1].get();
        const bool lt = lhs->op == PlanOp::kTranspose &&
                        !lhs->children[0]->shape.ScalarLike();
        const bool rt = rhs->op == PlanOp::kTranspose &&
                        !rhs->children[0]->shape.ScalarLike();
        if (!lt && !rt) return EvalBinary(node);
        REMAC_ASSIGN_OR_RETURN(const PredValue a,
                               Eval(lt ? *lhs->children[0] : *lhs));
        REMAC_ASSIGN_OR_RETURN(const PredValue b,
                               Eval(rt ? *rhs->children[0] : *rhs));
        if (a.is_scalar || b.is_scalar) {
          // Degenerate fallback: the executor re-evaluates the original
          // children here, double-booking the subtrees; mirror that.
          return EvalBinary(node);
        }
        const NodeStats ea =
            lt ? estimator_.Transpose(a.stats) : a.stats;
        const NodeStats eb =
            rt ? estimator_.Transpose(b.stats) : b.stats;
        NodeStats out = estimator_.Multiply(ea, eb);
        const OpCosting costing = SelectMultiplyCosting(
            InfoOf(ea, a.distributed), InfoOf(eb, b.distributed),
            out.sparsity, model_);
        Book(costing);
        return PredValue::FromStats(std::move(out),
                                    costing.result_distributed);
      }
      case PlanOp::kAdd:
      case PlanOp::kSub:
      case PlanOp::kMul:
      case PlanOp::kDiv:
      case PlanOp::kMin:
      case PlanOp::kMax:
      case PlanOp::kLess:
      case PlanOp::kGreater:
      case PlanOp::kLessEq:
      case PlanOp::kGreaterEq:
      case PlanOp::kEqual:
      case PlanOp::kNotEqual:
        return EvalBinary(node);
      case PlanOp::kSum: {
        REMAC_ASSIGN_OR_RETURN(const PredValue child,
                               Eval(*node.children[0]));
        if (child.is_scalar) return child;
        cost_.distributed_flops += child.stats.Nnz();
        return PredValue::Scalar();
      }
      case PlanOp::kTrace: {
        REMAC_ASSIGN_OR_RETURN(const PredValue child,
                               Eval(*node.children[0]));
        if (child.is_scalar) return child;
        cost_.distributed_flops += child.stats.rows;
        return PredValue::Scalar();
      }
      case PlanOp::kExp:
      case PlanOp::kLog: {
        REMAC_ASSIGN_OR_RETURN(const PredValue child,
                               Eval(*node.children[0]));
        if (child.is_scalar) return child;
        const OpCosting costing = CostScalarOp(InfoOf(child), model_);
        Book(costing);
        // exp densifies (exp(0) = 1); log touches stored non-zeros only.
        const double sp =
            node.op == PlanOp::kExp ? 1.0 : child.stats.sparsity;
        return PredValue::FromStats(
            PlainStats(child.stats.rows, child.stats.cols, sp),
            costing.result_distributed);
      }
      case PlanOp::kRowSums:
      case PlanOp::kColSums: {
        REMAC_ASSIGN_OR_RETURN(const PredValue child,
                               Eval(*node.children[0]));
        const NodeStats& m = child.stats;  // 1x1 for scalars, as AsMatrix
        cost_.distributed_flops += m.Nnz();
        const bool rows = node.op == PlanOp::kRowSums;
        NodeStats out = PlainStats(rows ? m.rows : 1.0, rows ? 1.0 : m.cols,
                                   1.0);  // dense result vector
        const bool distributed = IsDistributedSize(
            MatrixBytes(out.rows, out.cols, out.sparsity), model_);
        return PredValue::FromStats(std::move(out), distributed);
      }
      case PlanOp::kDiag: {
        REMAC_ASSIGN_OR_RETURN(const PredValue child,
                               Eval(*node.children[0]));
        const NodeStats& m = child.stats;
        // Books no simulated cost (mirrors the executor).
        if (m.cols == 1.0) {
          // Vector -> diagonal matrix: keeps the vector's nnz.
          const double sp = m.rows > 0 ? m.sparsity / m.rows : 0.0;
          return PredValue::FromStats(PlainStats(m.rows, m.rows, sp), false);
        }
        // Square matrix -> diagonal vector; assume uniform sparsity.
        return PredValue::FromStats(PlainStats(m.rows, 1.0, m.sparsity),
                                    false);
      }
      case PlanOp::kNorm: {
        REMAC_ASSIGN_OR_RETURN(const PredValue child,
                               Eval(*node.children[0]));
        if (child.is_scalar) return child;
        cost_.distributed_flops += 2.0 * child.stats.Nnz();
        return PredValue::Scalar();
      }
      case PlanOp::kSqrt:
      case PlanOp::kAbs:
      case PlanOp::kNcol:
      case PlanOp::kNrow: {
        REMAC_RETURN_NOT_OK(Eval(*node.children[0]).status());
        return PredValue::Scalar();
      }
      case PlanOp::kFusedMap:
        return EvalFusedMap(node);
      case PlanOp::kBlockRef:
        return Status::Internal("kBlockRef reached the cost audit");
    }
    return Status::Internal("unhandled op in cost audit");
  }

  /// Mirror of Executor::EvalFusedMap: replays the tape over statistics,
  /// booking per step exactly what the standalone operator's audit site
  /// books (CostScalarOp for unary maps and scalar broadcasts,
  /// CostElementwise with the estimated result sparsity otherwise).
  Result<PredValue> EvalFusedMap(const PlanNode& node) {
    if (node.fused == nullptr) {
      return Status::Internal("kFusedMap node without a tape");
    }
    const FusedTape& tape = *node.fused;
    if (node.children.size() != static_cast<size_t>(tape.num_inputs)) {
      return Status::Internal("fused region input arity mismatch");
    }
    std::vector<PredValue> slots(static_cast<size_t>(tape.num_inputs));
    for (int32_t i = 0; i < tape.num_inputs; ++i) {
      REMAC_ASSIGN_OR_RETURN(slots[static_cast<size_t>(i)],
                             Eval(*node.children[i]));
    }
    auto scalar_slot = [&](int32_t slot) {
      return slot >= 0 && slot < tape.num_inputs &&
             tape.input_scalar[static_cast<size_t>(slot)] != 0;
    };
    PredValue step_value;
    std::vector<PredValue> step_values(tape.steps.size());
    for (size_t j = 0; j < tape.steps.size(); ++j) {
      const FusedStep& step = tape.steps[j];
      auto operand = [&](int32_t slot) -> const PredValue& {
        return slot < tape.num_inputs
                   ? slots[static_cast<size_t>(slot)]
                   : step_values[static_cast<size_t>(slot -
                                                     tape.num_inputs)];
      };
      const PlanOp op = FromFusedOp(step.op);
      PredValue value;
      if (step.rhs < 0) {
        // Unary map: exp densifies, log keeps the sparsity pattern.
        const PredValue& a = operand(step.lhs);
        const OpCosting costing = CostScalarOp(InfoOf(a), model_);
        Book(costing);
        const double sp =
            step.op == FusedOp::kExp ? 1.0 : a.stats.sparsity;
        value = PredValue::FromStats(
            PlainStats(a.stats.rows, a.stats.cols, sp),
            costing.result_distributed);
      } else if (scalar_slot(step.lhs) || scalar_slot(step.rhs)) {
        const PredValue& mat =
            scalar_slot(step.lhs) ? operand(step.rhs) : operand(step.lhs);
        const OpCosting costing = CostScalarOp(InfoOf(mat), model_);
        Book(costing);
        value = PredValue::FromStats(estimator_.ScalarBroadcast(op, mat.stats),
                                     costing.result_distributed);
      } else {
        const PredValue& a = operand(step.lhs);
        const PredValue& b = operand(step.rhs);
        NodeStats out = estimator_.Elementwise(op, a.stats, b.stats);
        const OpCosting costing =
            CostElementwise(InfoOf(a), InfoOf(b), out.sparsity, model_);
        Book(costing);
        value = PredValue::FromStats(std::move(out),
                                     costing.result_distributed);
      }
      step_values[j] = ApplyTraits(std::move(value));
      step_value = step_values[j];
    }
    return step_value;
  }

  Result<PredValue> EvalBinary(const PlanNode& node) {
    REMAC_ASSIGN_OR_RETURN(const PredValue a, Eval(*node.children[0]));
    REMAC_ASSIGN_OR_RETURN(const PredValue b, Eval(*node.children[1]));
    const bool l_scalar =
        a.is_scalar || (a.stats.rows == 1.0 && a.stats.cols == 1.0);
    const bool r_scalar =
        b.is_scalar || (b.stats.rows == 1.0 && b.stats.cols == 1.0);
    if (l_scalar && r_scalar) return PredValue::Scalar();
    if (IsComparisonOp(node.op)) {
      return Status::InvalidArgument("comparison of non-scalar values");
    }
    // Scalar-matrix broadcast: every such path books one CostScalarOp
    // over the matrix side.
    if (l_scalar != r_scalar && node.op != PlanOp::kMatMul) {
      const PredValue& mat = l_scalar ? b : a;
      const OpCosting costing = CostScalarOp(InfoOf(mat), model_);
      Book(costing);
      return PredValue::FromStats(
          estimator_.ScalarBroadcast(node.op, mat.stats),
          costing.result_distributed);
    }
    if (node.op == PlanOp::kMatMul) {
      if (l_scalar || r_scalar) {
        // 1x1-matrix operands degrade to scalar scaling.
        const PredValue& mat = l_scalar ? b : a;
        const OpCosting costing = CostScalarOp(InfoOf(mat), model_);
        Book(costing);
        return PredValue::FromStats(
            estimator_.ScalarBroadcast(PlanOp::kMul, mat.stats),
            costing.result_distributed);
      }
      NodeStats out = estimator_.Multiply(a.stats, b.stats);
      const OpCosting costing =
          SelectMultiplyCosting(InfoOf(a), InfoOf(b), out.sparsity, model_);
      Book(costing);
      return PredValue::FromStats(std::move(out),
                                  costing.result_distributed);
    }
    NodeStats out = estimator_.Elementwise(node.op, a.stats, b.stats);
    const OpCosting costing =
        CostElementwise(InfoOf(a), InfoOf(b), out.sparsity, model_);
    Book(costing);
    return PredValue::FromStats(std::move(out), costing.result_distributed);
  }

  const DataCatalog& catalog_;
  const SparsityEstimator& estimator_;
  const ClusterModel& model_;
  const EngineTraits& traits_;
  std::map<std::string, PredValue> env_;
  PredictedCost cost_;
};

}  // namespace

Result<PredictedCost> PredictProgramCost(const CompiledProgram& program,
                                         const DataCatalog& catalog,
                                         const SparsityEstimator& estimator,
                                         const ClusterModel& model,
                                         const EngineTraits& traits,
                                         int loop_iterations) {
  CostWalker walker(catalog, estimator, model, traits);
  REMAC_RETURN_NOT_OK(walker.Run(program.statements, loop_iterations));
  return walker.cost();
}

double PrimitiveAudit::RelativeError() const {
  const double denom = std::fabs(actual);
  if (denom < 1e-9) return std::fabs(predicted) < 1e-9 ? 0.0 : 1.0;
  return std::fabs(predicted - actual) / denom;
}

std::string CostAuditRecord::ToString() const {
  if (!valid) {
    return "cost-model accuracy: unavailable (" + error + ")\n";
  }
  std::string out = "cost-model accuracy (predicted vs actual):\n";
  const auto line = [](const char* label, const PrimitiveAudit& p) {
    return StringFormat("  %-12s predicted %-12.4g actual %-12.4g "
                        "rel-err %.2f%%\n",
                        label, p.predicted, p.actual,
                        p.RelativeError() * 100.0);
  };
  out += line("flop", flops);
  for (size_t i = 0; i < transmission.size(); ++i) {
    out += line(
        TransmissionPrimitiveName(static_cast<TransmissionPrimitive>(i)),
        transmission[i]);
  }
  return out;
}

CostAuditRecord MakeCostAudit(
    const PredictedCost& predicted, double actual_flops,
    const std::array<double, kNumTransmissionPrimitives>& actual_bytes) {
  CostAuditRecord audit;
  audit.valid = true;
  audit.flops.predicted = predicted.TotalFlops();
  audit.flops.actual = actual_flops;
  for (size_t i = 0; i < actual_bytes.size(); ++i) {
    audit.transmission[i].predicted = predicted.bytes[i];
    audit.transmission[i].actual = actual_bytes[i];
  }
  return audit;
}

void PublishCostAudit(const CostAuditRecord& audit,
                      MetricsRegistry* registry) {
  if (registry == nullptr) return;
  registry->GetCounter("remac.audit.programs")->Add();
  if (!audit.valid) {
    registry->GetCounter("remac.audit.failures")->Add();
    return;
  }
  static const std::vector<double> kErrorBounds = {0.001, 0.01, 0.05, 0.1,
                                                   0.25, 0.5,  1.0,  2.0};
  const auto publish = [&](const std::string& key, const PrimitiveAudit& p) {
    registry->GetGauge("remac.audit." + key + ".predicted")->Add(p.predicted);
    registry->GetGauge("remac.audit." + key + ".actual")->Add(p.actual);
    registry->GetHistogram("remac.audit." + key + ".rel_error", kErrorBounds)
        ->Observe(p.RelativeError());
  };
  publish("flops", audit.flops);
  for (size_t i = 0; i < audit.transmission.size(); ++i) {
    publish(TransmissionPrimitiveName(static_cast<TransmissionPrimitive>(i)),
            audit.transmission[i]);
  }
}

}  // namespace remac
