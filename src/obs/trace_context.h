#ifndef REMAC_OBS_TRACE_CONTEXT_H_
#define REMAC_OBS_TRACE_CONTEXT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace remac {

/// \brief Request-scoped tracing and contention profiling.
///
/// A request entering the plan service gets one RequestTrace; a
/// TraceContext (trace + parent-span id) rides the thread-local current
/// context and is captured into every ThreadPool task submitted while it
/// is installed, so compile, cache, scheduler and kernel spans of one
/// request land in a single rooted span tree regardless of which worker
/// ran them. All timestamps — including the sched::TraceSink events the
/// parallel executor emits — share one process-wide steady-clock epoch
/// (TraceNowMicros), so a request's spans and its task events line up on
/// the same Chrome-trace timeline.
///
/// Everything is off by default. The only cost on the disabled path is a
/// relaxed atomic load (Tracer::enabled / Tracer::any_active); no clocks
/// are read and no spans are allocated, and results are bitwise
/// identical with tracing on or off (tracing only observes, never
/// changes execution).

/// One completed span of a request's trace tree.
struct TraceSpan {
  uint64_t id = 0;
  /// Parent span id; 0 only on the root span.
  uint64_t parent = 0;
  std::string name;
  /// "request", "stage", "task", "loop", "condition" or "wait".
  const char* category = "stage";
  /// Pool worker index that recorded the span (-1 = external thread).
  int thread = -1;
  /// Process trace clock (TraceNowMicros) at span start.
  double start_us = 0.0;
  double duration_us = 0.0;
};

/// Microseconds on the process-wide trace clock: a steady clock whose
/// origin is fixed once per process, shared by request spans and the
/// scheduler's TraceSink events.
double TraceNowMicros();

/// \brief One request's span tree. Thread-safe: tasks of the request
/// record spans concurrently from any pool worker.
///
/// Span id 1 is reserved for the root span (recorded last, via
/// CloseRoot, covering the whole request); children allocate ids with
/// NextSpanId and name their parent, so the file is a rooted tree that
/// tools/validate_trace.py can check for integrity.
class RequestTrace {
 public:
  static constexpr uint64_t kRootSpanId = 1;

  explicit RequestTrace(uint64_t request_id);

  uint64_t request_id() const { return request_id_; }
  /// Trace clock at creation — the root span's start.
  double start_us() const { return start_us_; }

  uint64_t NextSpanId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }

  void Record(TraceSpan span);

  /// Records the root span (id 1, parent 0) covering creation → now.
  void CloseRoot(std::string name);

  std::vector<TraceSpan> Spans() const;
  int64_t size() const;
  /// Spans discarded after the per-request cap (backstop against
  /// runaway loops; counted in remac.trace.dropped too).
  int64_t dropped() const;

  /// Chrome trace-event JSON; ts is relative to the root span's start,
  /// args carry span_id/parent/request_id. A top-level "remac" object
  /// records the request id and the dropped-span count.
  std::string ToChromeJson() const;
  Status WriteChromeJson(const std::string& path) const;

 private:
  static constexpr size_t kMaxSpans = 65536;

  uint64_t request_id_;
  double start_us_;
  std::atomic<uint64_t> next_id_{kRootSpanId + 1};
  mutable std::mutex mu_;
  std::vector<TraceSpan> spans_;
  int64_t dropped_ = 0;
};

/// The propagated half of the tracing layer: which trace (if any) the
/// current work belongs to and which span new children should hang off.
/// An empty context (no trace) means "not traced" and costs nothing to
/// copy around.
struct TraceContext {
  std::shared_ptr<RequestTrace> trace;
  uint64_t parent_span = 0;

  bool active() const { return trace != nullptr; }
};

/// The calling thread's current context (empty when untraced).
const TraceContext& CurrentTraceContext();

/// Replaces the thread-local context, returning the previous one.
/// Prefer TraceContextScope; this is the primitive it and the pool's
/// task wrapper are built on.
TraceContext SwapCurrentTraceContext(TraceContext ctx);

/// RAII install/restore of the thread-local context. Installing an
/// empty context over an empty context is a no-op (nothing saved).
class TraceContextScope {
 public:
  explicit TraceContextScope(TraceContext ctx);
  ~TraceContextScope();

  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  TraceContext saved_;
  bool swapped_ = false;
};

/// \brief Process-wide tracing switchboard.
///
/// `enabled` turns on request span trees (and implies `profiling`);
/// `profiling` alone turns on the contention clocks (lock-wait and
/// pool-queue histograms) without allocating any spans — what the load
/// harness uses for its measured phases.
class Tracer {
 public:
  static Tracer& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  bool profiling() const {
    return profiling_.load(std::memory_order_relaxed);
  }
  /// Any instrumentation that must read clocks on hot paths is on.
  bool any_active() const { return profiling() || enabled(); }

  /// Enabling tracing also enables profiling (span trees without the
  /// contention clocks would lose their wait attribution); disabling
  /// leaves profiling as SetProfiling last set it.
  void SetEnabled(bool on);
  void SetProfiling(bool on);

  /// A new per-request trace, or nullptr when tracing is disabled.
  std::shared_ptr<RequestTrace> StartRequest();

 private:
  Tracer();

  std::atomic<bool> enabled_{false};
  std::atomic<bool> profiling_{false};
  std::atomic<uint64_t> next_request_id_{1};
};

/// Wait spans shorter than this are histogram-only noise and are not
/// added to the span tree.
inline constexpr double kWaitSpanFloorUs = 10.0;

/// Records a completed span into `ctx` (no-op when inactive).
void RecordSpanIn(const TraceContext& ctx, std::string name,
                  const char* category, double start_us, double end_us);

/// Records a "wait" span into `ctx` when it exceeds kWaitSpanFloorUs.
void RecordWaitSpanIn(const TraceContext& ctx, const char* name,
                      double start_us, double end_us);

/// RecordWaitSpanIn against the calling thread's current context.
void RecordWaitSpan(const char* name, double start_us, double end_us);

/// \brief RAII span against the thread-local current context.
///
/// Allocates a span id up front so children opened under `enter` mode
/// can name it as their parent; records the span on Stop()/destruction.
/// Inactive (no current trace) construction is a thread-local read plus
/// one branch.
class ScopedTraceSpan {
 public:
  explicit ScopedTraceSpan(std::string name, const char* category = "stage",
                           bool enter = false);
  ~ScopedTraceSpan() { Stop(); }

  ScopedTraceSpan(const ScopedTraceSpan&) = delete;
  ScopedTraceSpan& operator=(const ScopedTraceSpan&) = delete;

  void Stop();

  bool active() const { return ctx_.active(); }
  uint64_t span_id() const { return id_; }
  /// Context for children of this span (empty when inactive).
  TraceContext child_context() const;

 private:
  TraceContext ctx_;
  uint64_t id_ = 0;
  std::string name_;
  const char* category_;
  double start_us_ = 0.0;
  bool entered_ = false;
  bool stopped_ = false;
};

/// \brief lock_guard that times contended mutex acquisition.
///
/// With profiling off this is exactly std::lock_guard. With it on, an
/// uncontended try_lock still reads no clocks; only a contended
/// acquisition is timed, observed into `wait_histogram` and (when a
/// trace is active and the wait clears the floor) recorded as a wait
/// span — so the histograms attribute pure contention, not throughput.
class TimedMutexLock {
 public:
  TimedMutexLock(std::mutex& mu, Histogram* wait_histogram,
                 const char* name);
  ~TimedMutexLock() { mu_.unlock(); }

  TimedMutexLock(const TimedMutexLock&) = delete;
  TimedMutexLock& operator=(const TimedMutexLock&) = delete;

 private:
  std::mutex& mu_;
};

}  // namespace remac

#endif  // REMAC_OBS_TRACE_CONTEXT_H_
