#ifndef REMAC_OBS_COST_AUDIT_H_
#define REMAC_OBS_COST_AUDIT_H_

#include <array>
#include <string>

#include "cluster/cluster_model.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "plan/plan_builder.h"
#include "runtime/executor.h"
#include "sparsity/estimator.h"

namespace remac {

/// \brief Cost-model accuracy audit (ISSUE/paper Section 4).
///
/// ReMac picks elimination combinations by predicted cost
/// (w_flop * FLOP + sum_pr w_pr * D_pr); this module checks that those
/// predictions track what the simulated cluster actually booked. Before
/// execution, PredictProgramCost walks the optimized program exactly the
/// way runtime/executor.cc will (transpose fusion, scalar degradation,
/// local/distributed placement, barrier-commit loops) but with the
/// optimizer's sparsity *estimates* instead of materialized matrices, so
/// any predicted-vs-actual gap isolates estimation error. After
/// execution, the runner pairs the prediction with the ledger delta.

/// FLOPs and per-primitive transmission bytes a program is predicted to
/// book into the TransmissionLedger.
struct PredictedCost {
  double local_flops = 0.0;
  double distributed_flops = 0.0;
  /// Indexed by TransmissionPrimitive.
  std::array<double, kNumTransmissionPrimitives> bytes{};

  double TotalFlops() const { return local_flops + distributed_flops; }
};

/// Walks `program` mirroring the serial executor's booking sites,
/// propagating statistics with `estimator`. `loop_iterations` must be the
/// iteration count the executor will actually run (the audit cannot
/// predict condition-based early exit — a documented limitation).
Result<PredictedCost> PredictProgramCost(const CompiledProgram& program,
                                         const DataCatalog& catalog,
                                         const SparsityEstimator& estimator,
                                         const ClusterModel& model,
                                         const EngineTraits& traits,
                                         int loop_iterations);

/// One predicted-vs-actual pair.
struct PrimitiveAudit {
  double predicted = 0.0;
  double actual = 0.0;

  /// |predicted - actual| / actual; 1.0 when the model predicted work
  /// where none happened, 0.0 when both sides are zero.
  double RelativeError() const;
};

/// Per-program audit result attached to RunReport and rendered by
/// `remac run --stats`.
struct CostAuditRecord {
  /// False when prediction failed (error holds why); audit failures never
  /// fail the run itself.
  bool valid = false;
  std::string error;
  PrimitiveAudit flops;
  /// Indexed by TransmissionPrimitive.
  std::array<PrimitiveAudit, kNumTransmissionPrimitives> transmission{};

  /// Human-readable accuracy section (predicted / actual / rel-err per
  /// primitive).
  std::string ToString() const;
};

/// Pairs a prediction with the ledger-observed actuals.
CostAuditRecord MakeCostAudit(
    const PredictedCost& predicted, double actual_flops,
    const std::array<double, kNumTransmissionPrimitives>& actual_bytes);

/// Records the audit into `registry` under remac.audit.* (per-program
/// relative-error histograms plus running predicted/actual totals).
void PublishCostAudit(const CostAuditRecord& audit, MetricsRegistry* registry);

}  // namespace remac

#endif  // REMAC_OBS_COST_AUDIT_H_
