#include "obs/trace_context.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

#include "common/string_util.h"
#include "sched/thread_pool.h"

namespace remac {

namespace {

/// Process-wide aggregates of the per-request trace accounting; the
/// Tracer constructor touches these so the remac.trace.* family is
/// registered even while tracing stays disabled.
struct TraceMetrics {
  Counter* requests =
      MetricsRegistry::Global().GetCounter("remac.trace.requests");
  Counter* spans = MetricsRegistry::Global().GetCounter("remac.trace.spans");
  Counter* dropped =
      MetricsRegistry::Global().GetCounter("remac.trace.dropped");
};

TraceMetrics& Metrics() {
  static TraceMetrics metrics;
  return metrics;
}

double SteadyMicros() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Minimal JSON string escaping for span labels.
std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

thread_local TraceContext tl_context;

}  // namespace

double TraceNowMicros() {
  // The origin is captured once, on the first call, and shared by every
  // sink and span in the process — the "single clock epoch" that lets a
  // request's spans and the scheduler's task events interleave in one
  // Chrome-trace file.
  static const double origin = SteadyMicros();
  return SteadyMicros() - origin;
}

RequestTrace::RequestTrace(uint64_t request_id)
    : request_id_(request_id), start_us_(TraceNowMicros()) {}

void RequestTrace::Record(TraceSpan span) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (spans_.size() >= kMaxSpans) {
      ++dropped_;
      Metrics().dropped->Add();
      return;
    }
    spans_.push_back(std::move(span));
  }
  Metrics().spans->Add();
}

void RequestTrace::CloseRoot(std::string name) {
  TraceSpan root;
  root.id = kRootSpanId;
  root.parent = 0;
  root.name = std::move(name);
  root.category = "request";
  root.thread = ThreadPool::CurrentWorkerId();
  root.start_us = start_us_;
  root.duration_us = TraceNowMicros() - start_us_;
  Record(std::move(root));
}

std::vector<TraceSpan> RequestTrace::Spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

int64_t RequestTrace::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(spans_.size());
}

int64_t RequestTrace::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::string RequestTrace::ToChromeJson() const {
  const std::vector<TraceSpan> spans = Spans();
  std::string out = StringFormat(
      "{\"remac\":{\"request_id\":%llu,\"dropped\":%lld},\n"
      "\"traceEvents\":[\n",
      static_cast<unsigned long long>(request_id_),
      static_cast<long long>(dropped()));
  for (size_t i = 0; i < spans.size(); ++i) {
    const TraceSpan& s = spans[i];
    out += StringFormat(
        "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":0,"
        "\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,"
        "\"args\":{\"span_id\":%llu,\"parent\":%llu,\"request_id\":%llu}}"
        "%s\n",
        JsonEscape(s.name).c_str(), s.category, s.thread,
        s.start_us - start_us_, s.duration_us,
        static_cast<unsigned long long>(s.id),
        static_cast<unsigned long long>(s.parent),
        static_cast<unsigned long long>(request_id_),
        i + 1 < spans.size() ? "," : "");
  }
  out += "]}\n";
  return out;
}

Status RequestTrace::WriteChromeJson(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::Internal("cannot open trace file '" + path + "'");
  }
  const std::string json = ToChromeJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), file);
  std::fclose(file);
  if (written != json.size()) {
    return Status::Internal("short write to trace file '" + path + "'");
  }
  return Status::OK();
}

const TraceContext& CurrentTraceContext() { return tl_context; }

TraceContext SwapCurrentTraceContext(TraceContext ctx) {
  TraceContext prev = std::move(tl_context);
  tl_context = std::move(ctx);
  return prev;
}

TraceContextScope::TraceContextScope(TraceContext ctx) {
  // Empty-over-empty skips the swap entirely — the common untraced path
  // pays one thread-local null check.
  if (ctx.active() || tl_context.active()) {
    saved_ = SwapCurrentTraceContext(std::move(ctx));
    swapped_ = true;
  }
}

TraceContextScope::~TraceContextScope() {
  if (swapped_) SwapCurrentTraceContext(std::move(saved_));
}

Tracer::Tracer() {
  Metrics();  // register remac.trace.* up front, even when disabled
}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::SetEnabled(bool on) {
  enabled_.store(on, std::memory_order_relaxed);
  if (on) profiling_.store(true, std::memory_order_relaxed);
}

void Tracer::SetProfiling(bool on) {
  profiling_.store(on, std::memory_order_relaxed);
}

std::shared_ptr<RequestTrace> Tracer::StartRequest() {
  if (!enabled()) return nullptr;
  Metrics().requests->Add();
  return std::make_shared<RequestTrace>(
      next_request_id_.fetch_add(1, std::memory_order_relaxed));
}

void RecordSpanIn(const TraceContext& ctx, std::string name,
                  const char* category, double start_us, double end_us) {
  if (!ctx.active()) return;
  TraceSpan span;
  span.id = ctx.trace->NextSpanId();
  span.parent = ctx.parent_span;
  span.name = std::move(name);
  span.category = category;
  span.thread = ThreadPool::CurrentWorkerId();
  span.start_us = start_us;
  span.duration_us = std::max(0.0, end_us - start_us);
  ctx.trace->Record(std::move(span));
}

void RecordWaitSpanIn(const TraceContext& ctx, const char* name,
                      double start_us, double end_us) {
  if (!ctx.active()) return;
  if (end_us - start_us < kWaitSpanFloorUs) return;
  RecordSpanIn(ctx, name, "wait", start_us, end_us);
}

void RecordWaitSpan(const char* name, double start_us, double end_us) {
  RecordWaitSpanIn(tl_context, name, start_us, end_us);
}

ScopedTraceSpan::ScopedTraceSpan(std::string name, const char* category,
                                 bool enter)
    : name_(std::move(name)), category_(category) {
  if (!tl_context.active()) {
    stopped_ = true;  // inactive spans have nothing to do on Stop
    return;
  }
  ctx_ = tl_context;
  id_ = ctx_.trace->NextSpanId();
  start_us_ = TraceNowMicros();
  if (enter) {
    SwapCurrentTraceContext(TraceContext{ctx_.trace, id_});
    entered_ = true;
  }
}

void ScopedTraceSpan::Stop() {
  if (stopped_) return;
  stopped_ = true;
  if (entered_) {
    SwapCurrentTraceContext(ctx_);
    entered_ = false;
  }
  TraceSpan span;
  span.id = id_;
  span.parent = ctx_.parent_span;
  span.name = std::move(name_);
  span.category = category_;
  span.thread = ThreadPool::CurrentWorkerId();
  span.start_us = start_us_;
  span.duration_us = std::max(0.0, TraceNowMicros() - start_us_);
  ctx_.trace->Record(std::move(span));
}

TraceContext ScopedTraceSpan::child_context() const {
  if (!ctx_.active()) return TraceContext{};
  return TraceContext{ctx_.trace, id_};
}

TimedMutexLock::TimedMutexLock(std::mutex& mu, Histogram* wait_histogram,
                               const char* name)
    : mu_(mu) {
  if (!Tracer::Global().any_active()) {
    mu_.lock();
    return;
  }
  if (mu_.try_lock()) return;
  const double start_us = TraceNowMicros();
  mu_.lock();
  const double end_us = TraceNowMicros();
  if (wait_histogram != nullptr) {
    wait_histogram->Observe((end_us - start_us) * 1e-6);
  }
  RecordWaitSpanIn(tl_context, name, start_us, end_us);
}

}  // namespace remac
