#ifndef REMAC_OBS_SPAN_H_
#define REMAC_OBS_SPAN_H_

#include <chrono>
#include <string>

#include "obs/metrics.h"
#include "obs/trace_context.h"

namespace remac {

class TraceSink;

/// \brief RAII stage timer.
///
/// Starts a steady-clock timer on construction and, on Stop() or
/// destruction, records the elapsed seconds into a registry histogram
/// and (when a sink is attached) emits a Chrome-trace event so pipeline
/// stages appear on the same timeline as executor tasks. When the
/// calling thread carries an active TraceContext the span is also
/// recorded into the request's span tree under its current parent.
///
///   StageSpan span(registry.GetHistogram("remac.compile.parse_seconds"),
///                  trace, "parse");
///
/// Stop() is idempotent; ElapsedSeconds() may be polled while running.
class StageSpan {
 public:
  explicit StageSpan(Histogram* histogram, TraceSink* trace = nullptr,
                     std::string name = {}, const char* category = "stage");
  ~StageSpan() { Stop(); }

  StageSpan(const StageSpan&) = delete;
  StageSpan& operator=(const StageSpan&) = delete;

  /// Records the measurement; later calls (and the destructor) no-op.
  /// Returns the elapsed seconds at the moment the span stopped.
  double Stop();

  double ElapsedSeconds() const;

 private:
  Histogram* histogram_;
  TraceSink* trace_;
  TraceContext ctx_;
  std::string name_;
  const char* category_;
  std::chrono::steady_clock::time_point start_;
  double trace_start_us_ = 0.0;
  bool stopped_ = false;
  double elapsed_seconds_ = 0.0;
};

}  // namespace remac

#endif  // REMAC_OBS_SPAN_H_
