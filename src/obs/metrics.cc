#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "common/string_util.h"

namespace remac {

namespace {

/// Formats a double the same way in JSON and Prometheus exports.
/// Integral values print without an exponent or trailing zeros so that
/// golden tests stay readable ("3" rather than "3.0000000").
std::string FormatDouble(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::fabs(value) < 1e15) {
    return StringFormat("%.0f", value);
  }
  return StringFormat("%.9g", value);
}

/// Prometheus metric names allow [a-zA-Z0-9_:] and must not start with
/// a digit; the registry's dot-separated names map dots (and any other
/// byte) to underscores and prefix a leading digit with '_'.
std::string PrometheusName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(0, 1, '_');
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StringFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

bool HasSuffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

void Gauge::Add(double delta) {
  double current = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

void Gauge::SetMax(double value) {
  double current = value_.load(std::memory_order_relaxed);
  while (value > current &&
         !value_.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_ = std::make_unique<std::atomic<int64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

const std::vector<double>& Histogram::DefaultLatencyBounds() {
  static const std::vector<double> bounds = {1e-6, 1e-5, 1e-4, 1e-3, 1e-2,
                                             0.1,  1.0,  10.0, 60.0};
  return bounds;
}

void Histogram::Observe(double value) {
  // First bucket whose inclusive upper bound holds the value.
  size_t index = bounds_.size();
  for (size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      index = i;
      break;
    }
  }
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double current = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(current, current + value,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<int64_t> Histogram::BucketCounts() const {
  std::vector<int64_t> counts(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

double HistogramQuantile(const Histogram& histogram, double q) {
  const std::vector<int64_t> counts = histogram.BucketCounts();
  const std::vector<double>& bounds = histogram.bounds();
  int64_t total = 0;
  for (int64_t c : counts) total += c;
  if (total <= 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (size_t i = 0; i < counts.size(); ++i) {
    const double next = cumulative + static_cast<double>(counts[i]);
    if (next >= target && counts[i] > 0) {
      if (i == bounds.size()) {
        // +Inf overflow bucket: the histogram only knows the value
        // exceeded every finite bound, so clamp to the top one.
        return bounds.empty() ? 0.0 : bounds.back();
      }
      const double lo = i == 0 ? 0.0 : bounds[i - 1];
      const double hi = bounds[i];
      const double fraction =
          (target - cumulative) / static_cast<double>(counts[i]);
      return lo + (hi - lo) * fraction;
    }
    cumulative = next;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry::MetricsRegistry() {
  shards_.reserve(kShards);
  for (int i = 0; i < kShards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Shard& MetricsRegistry::ShardFor(const std::string& name) {
  return *shards_[std::hash<std::string>{}(name) % shards_.size()];
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto& slot = shard.counters[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto& slot = shard.gauges[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::vector<double>& bounds) {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto& slot = shard.histograms[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(bounds);
  return slot.get();
}

std::string MetricsRegistry::ToJson(bool include_histograms) const {
  // Collect pointers under the shard locks, render sorted by name.
  std::map<std::string, const Counter*> counters;
  std::map<std::string, const Gauge*> gauges;
  std::map<std::string, const Histogram*> histograms;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [name, metric] : shard->counters) {
      counters[name] = metric.get();
    }
    for (const auto& [name, metric] : shard->gauges) {
      gauges[name] = metric.get();
    }
    for (const auto& [name, metric] : shard->histograms) {
      histograms[name] = metric.get();
    }
  }

  std::string out = "{\"counters\": {";
  bool first = true;
  for (const auto& [name, metric] : counters) {
    if (!first) out += ", ";
    first = false;
    out += StringFormat("\"%s\": %lld", JsonEscape(name).c_str(),
                        static_cast<long long>(metric->Value()));
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const auto& [name, metric] : gauges) {
    if (!first) out += ", ";
    first = false;
    out += StringFormat("\"%s\": %s", JsonEscape(name).c_str(),
                        FormatDouble(metric->Value()).c_str());
  }
  out += "}";
  if (include_histograms) {
    out += ", \"histograms\": {";
    first = true;
    for (const auto& [name, metric] : histograms) {
      if (!first) out += ", ";
      first = false;
      out += StringFormat("\"%s\": {\"count\": %lld, \"sum\": %s, "
                          "\"buckets\": [",
                          JsonEscape(name).c_str(),
                          static_cast<long long>(metric->Count()),
                          FormatDouble(metric->Sum()).c_str());
      const std::vector<int64_t> counts = metric->BucketCounts();
      const std::vector<double>& bounds = metric->bounds();
      for (size_t i = 0; i < counts.size(); ++i) {
        if (i > 0) out += ", ";
        const std::string le =
            i < bounds.size() ? FormatDouble(bounds[i]) : "\"+Inf\"";
        out += StringFormat("{\"le\": %s, \"count\": %lld}", le.c_str(),
                            static_cast<long long>(counts[i]));
      }
      out += "]}";
    }
    out += "}";
  }
  out += "}";
  return out;
}

std::string MetricsRegistry::ToPrometheus() const {
  std::map<std::string, const Counter*> counters;
  std::map<std::string, const Gauge*> gauges;
  std::map<std::string, const Histogram*> histograms;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [name, metric] : shard->counters) {
      counters[name] = metric.get();
    }
    for (const auto& [name, metric] : shard->gauges) {
      gauges[name] = metric.get();
    }
    for (const auto& [name, metric] : shard->histograms) {
      histograms[name] = metric.get();
    }
  }

  std::string out;
  for (const auto& [name, metric] : counters) {
    const std::string pname = PrometheusName(name);
    out += StringFormat("# TYPE %s counter\n%s %lld\n", pname.c_str(),
                        pname.c_str(),
                        static_cast<long long>(metric->Value()));
  }
  for (const auto& [name, metric] : gauges) {
    const std::string pname = PrometheusName(name);
    out += StringFormat("# TYPE %s gauge\n%s %s\n", pname.c_str(),
                        pname.c_str(),
                        FormatDouble(metric->Value()).c_str());
  }
  for (const auto& [name, metric] : histograms) {
    const std::string pname = PrometheusName(name);
    out += StringFormat("# TYPE %s histogram\n", pname.c_str());
    const std::vector<int64_t> counts = metric->BucketCounts();
    const std::vector<double>& bounds = metric->bounds();
    int64_t cumulative = 0;
    for (size_t i = 0; i < counts.size(); ++i) {
      cumulative += counts[i];
      const std::string le =
          i < bounds.size() ? FormatDouble(bounds[i]) : "+Inf";
      out += StringFormat("%s_bucket{le=\"%s\"} %lld\n", pname.c_str(),
                          le.c_str(), static_cast<long long>(cumulative));
    }
    out += StringFormat("%s_sum %s\n%s_count %lld\n", pname.c_str(),
                        FormatDouble(metric->Sum()).c_str(), pname.c_str(),
                        static_cast<long long>(metric->Count()));
  }
  return out;
}

Status MetricsRegistry::WriteToFile(const std::string& path) const {
  const bool prometheus = HasSuffix(path, ".prom") || HasSuffix(path, ".txt");
  const std::string body =
      prometheus ? ToPrometheus() : ToJson(/*include_histograms=*/true) + "\n";
  // Write-temp-then-rename: rename(2) is atomic within a filesystem, so
  // a scraper reading `path` sees either the previous snapshot or this
  // one, never a torn prefix.
  const std::string tmp = path + ".tmp";
  FILE* file = std::fopen(tmp.c_str(), "w");
  if (file == nullptr) {
    return Status::Internal("cannot write metrics to '" + tmp + "'");
  }
  const size_t written = std::fwrite(body.data(), 1, body.size(), file);
  std::fclose(file);
  if (written != body.size()) {
    std::remove(tmp.c_str());
    return Status::Internal("short write to '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename '" + tmp + "' to '" + path + "'");
  }
  return Status::OK();
}

void MetricsRegistry::Reset() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto& [name, metric] : shard->counters) metric->Reset();
    for (auto& [name, metric] : shard->gauges) metric->Reset();
    for (auto& [name, metric] : shard->histograms) metric->Reset();
  }
}

}  // namespace remac
