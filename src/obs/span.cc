#include "obs/span.h"

#include "sched/thread_pool.h"
#include "sched/trace.h"

namespace remac {

StageSpan::StageSpan(Histogram* histogram, TraceSink* trace, std::string name,
                     const char* category)
    : histogram_(histogram),
      trace_(trace),
      name_(std::move(name)),
      category_(category),
      start_(std::chrono::steady_clock::now()) {
  if (trace_ != nullptr) trace_start_us_ = trace_->NowMicros();
}

double StageSpan::Stop() {
  if (stopped_) return elapsed_seconds_;
  elapsed_seconds_ = ElapsedSeconds();
  stopped_ = true;
  if (histogram_ != nullptr) histogram_->Observe(elapsed_seconds_);
  if (trace_ != nullptr) {
    TraceEvent event;
    event.name = name_.empty() ? "stage" : name_;
    event.category = category_;
    event.thread = ThreadPool::CurrentWorkerId();
    event.start_us = trace_start_us_;
    event.duration_us = elapsed_seconds_ * 1e6;
    trace_->Record(std::move(event));
  }
  return elapsed_seconds_;
}

double StageSpan::ElapsedSeconds() const {
  if (stopped_) return elapsed_seconds_;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

}  // namespace remac
