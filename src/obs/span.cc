#include "obs/span.h"

#include "sched/thread_pool.h"
#include "sched/trace.h"

namespace remac {

StageSpan::StageSpan(Histogram* histogram, TraceSink* trace, std::string name,
                     const char* category)
    : histogram_(histogram),
      trace_(trace),
      name_(std::move(name)),
      category_(category),
      start_(std::chrono::steady_clock::now()) {
  if (Tracer::Global().enabled()) ctx_ = CurrentTraceContext();
  if (trace_ != nullptr || ctx_.active()) {
    // Both sinks share the process trace epoch, so one stamp serves the
    // TraceSink event and the request span alike.
    trace_start_us_ = TraceNowMicros();
  }
}

double StageSpan::Stop() {
  if (stopped_) return elapsed_seconds_;
  elapsed_seconds_ = ElapsedSeconds();
  stopped_ = true;
  if (histogram_ != nullptr) histogram_->Observe(elapsed_seconds_);
  if (trace_ != nullptr) {
    TraceEvent event;
    event.name = name_.empty() ? "stage" : name_;
    event.category = category_;
    event.thread = ThreadPool::CurrentWorkerId();
    event.start_us = trace_start_us_;
    event.duration_us = elapsed_seconds_ * 1e6;
    trace_->Record(std::move(event));
  }
  if (ctx_.active()) {
    RecordSpanIn(ctx_, name_.empty() ? "stage" : name_, category_,
                 trace_start_us_, trace_start_us_ + elapsed_seconds_ * 1e6);
  }
  return elapsed_seconds_;
}

double StageSpan::ElapsedSeconds() const {
  if (stopped_) return elapsed_seconds_;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

}  // namespace remac
