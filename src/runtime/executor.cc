#include "runtime/executor.h"

#include <cmath>

#include "common/rng.h"
#include "common/string_util.h"
#include "cost/physical_model.h"
#include "matrix/fused_tape.h"
#include "matrix/kernels.h"
#include "obs/span.h"

namespace remac {

namespace {

/// Registry handles resolved once; every Executor instance (serial and
/// per-task) bumps the same process-wide counters.
struct ExecMetrics {
  Counter* ops =
      MetricsRegistry::Global().GetCounter("remac.executor.ops");
  Histogram* statement_seconds = MetricsRegistry::Global().GetHistogram(
      "remac.executor.statement_seconds");
  Histogram* multiply_seconds = MetricsRegistry::Global().GetHistogram(
      "remac.executor.multiply_seconds");
  Histogram* elementwise_seconds = MetricsRegistry::Global().GetHistogram(
      "remac.executor.elementwise_seconds");
  Histogram* transpose_seconds = MetricsRegistry::Global().GetHistogram(
      "remac.executor.transpose_seconds");
  /// Bytes of fused-region intermediates that were never materialized
  /// (one MatrixBytes-worth per interior tape step).
  Counter* fusion_bytes_avoided =
      MetricsRegistry::Global().GetCounter("remac.fusion.bytes_avoided");
  /// Fused regions whose output was computed in place inside a dying
  /// input's dense buffer.
  Counter* fusion_in_place =
      MetricsRegistry::Global().GetCounter("remac.fusion.in_place_hits");
};

ExecMetrics& Metrics() {
  static ExecMetrics metrics;
  return metrics;
}

/// Number of kInput references to `name` in the tree.
int64_t CountInputRefs(const PlanNode& node, const std::string& name) {
  int64_t count =
      node.op == PlanOp::kInput && node.name == name ? 1 : 0;
  for (const auto& child : node.children) {
    count += CountInputRefs(*child, name);
  }
  return count;
}

}  // namespace

RtValue RtValue::Scalar(double v) {
  RtValue out;
  out.is_scalar = true;
  out.scalar = v;
  return out;
}

RtValue RtValue::FromMatrix(Matrix m, bool distributed) {
  RtValue out;
  out.matrix = std::move(m);
  out.distributed = distributed;
  return out;
}

Result<double> RtValue::AsScalar() const {
  if (is_scalar) return scalar;
  if (matrix.rows() == 1 && matrix.cols() == 1) return matrix.At(0, 0);
  return Status::InvalidArgument(StringFormat(
      "cannot use a %lld x %lld matrix as a scalar",
      static_cast<long long>(matrix.rows()),
      static_cast<long long>(matrix.cols())));
}

Matrix RtValue::AsMatrix() const {
  if (!is_scalar) return matrix;
  DenseMatrix m(1, 1);
  m.At(0, 0) = scalar;
  return Matrix::WrapDense(std::move(m));
}

Executor::Executor(const ClusterModel& model, const DataCatalog* catalog,
                   TransmissionLedger* ledger, EngineTraits traits)
    : model_(model), catalog_(catalog), ledger_(ledger), traits_(traits) {}

Result<RtValue> Executor::Get(const std::string& name) const {
  auto it = env_.find(name);
  if (it == env_.end()) {
    return Status::NotFound("variable '" + name + "' is not defined");
  }
  return it->second;
}

void Executor::Set(const std::string& name, RtValue value) {
  env_.insert_or_assign(name, std::move(value));
}

Status Executor::Run(const std::vector<CompiledStmt>& statements,
                     int max_loop_iterations) {
  for (const auto& stmt : statements) {
    if (stmt.kind == CompiledStmt::Kind::kAssign) {
      StageSpan span(Metrics().statement_seconds, nullptr, "statement");
      // Last-use buffer handoff: when the assignment target's previous
      // value is read exactly once by the new plan (X = X + ... style
      // updates), move it out of the environment so a fused region can
      // steal its dense buffer and run in place. Safe only here — a
      // barrier-commit body must keep start-of-iteration values readable
      // until the joint commit, and the task-graph path never calls Run.
      ArmBufferSteal(stmt);
      auto value = Eval(*stmt.plan);
      steal_.reset();  // unconsumed when a cache hit covered the input
      if (!value.ok()) return value.status();
      Set(stmt.target, std::move(value).value());
      continue;
    }
    // Loop.
    int64_t limit = max_loop_iterations;
    if (stmt.static_trip_count >= 0) {
      limit = std::min<int64_t>(limit, stmt.static_trip_count);
    }
    if (!stmt.loop_var.empty()) {
      Set(stmt.loop_var, RtValue::Scalar(stmt.loop_begin));
    }
    for (int64_t iter = 0; iter < limit; ++iter) {
      if (stmt.condition != nullptr) {
        REMAC_ASSIGN_OR_RETURN(const RtValue cond, Eval(*stmt.condition));
        REMAC_ASSIGN_OR_RETURN(const double flag, cond.AsScalar());
        if (flag == 0.0) break;
      }
      if (stmt.barrier_commit) {
        // Temps commit immediately; outputs are staged and committed
        // together, so every output reads start-of-iteration state.
        std::vector<std::pair<std::string, RtValue>> staged;
        for (const auto& body_stmt : stmt.body) {
          if (body_stmt.kind != CompiledStmt::Kind::kAssign) {
            return Status::Unsupported("nested loop in barrier-commit body");
          }
          REMAC_ASSIGN_OR_RETURN(RtValue value, Eval(*body_stmt.plan));
          if (body_stmt.is_temp) {
            Set(body_stmt.target, std::move(value));
          } else {
            staged.emplace_back(body_stmt.target, std::move(value));
          }
        }
        for (auto& [name, value] : staged) Set(name, std::move(value));
      } else {
        REMAC_RETURN_NOT_OK(Run(stmt.body, max_loop_iterations));
      }
      if (!stmt.loop_var.empty()) {
        Set(stmt.loop_var,
            RtValue::Scalar(stmt.loop_begin + static_cast<double>(iter + 1)));
      }
    }
  }
  return Status::OK();
}

void Executor::ArmBufferSteal(const CompiledStmt& stmt) {
  steal_.reset();
  auto it = env_.find(stmt.target);
  if (it == env_.end() || it->second.is_scalar) return;
  if (CountInputRefs(*stmt.plan, stmt.target) != 1) return;
  steal_.emplace(stmt.target, std::move(it->second));
  it->second = RtValue{};  // benign placeholder until the re-assignment
}

Result<RtValue> Executor::ReadDataset(const std::string& name) {
  if (catalog_ == nullptr) {
    return Status::Internal("executor has no catalog");
  }
  REMAC_ASSIGN_OR_RETURN(Matrix value, catalog_->Value(name));
  if (traits_.force_dense && !value.is_dense()) {
    value = Matrix::WrapDense(value.ToDense());
  }
  const bool first_load = shared_datasets_ != nullptr
                              ? shared_datasets_->MarkLoaded(name)
                              : !loaded_datasets_[name];
  if (first_load) {
    loaded_datasets_[name] = true;
    if (count_input_partition_ && ledger_ != nullptr) {
      ledger_->AddInputPartition(static_cast<double>(value.SizeInBytes()) *
                                 traits_.input_partition_factor);
    }
  }
  // Input datasets live distributed: they are the cluster-scale payloads
  // (the paper's 30-40GB Criteo/Reddit matrices).
  return RtValue::FromMatrix(std::move(value), /*distributed=*/true);
}

Result<RtValue> Executor::EvalGenerator(const PlanNode& node) {
  const int64_t rows = node.shape.rows;
  const int64_t cols = node.shape.cols;
  switch (node.op) {
    case PlanOp::kEye:
      return RtValue::FromMatrix(Matrix::Identity(rows), false);
    case PlanOp::kZeros:
      return RtValue::FromMatrix(Matrix::Zeros(rows, cols), false);
    case PlanOp::kOnes: {
      DenseMatrix m(rows, cols);
      for (int64_t i = 0; i < m.size(); ++i) m.data()[i] = 1.0;
      return RtValue::FromMatrix(Matrix::WrapDense(std::move(m)), false);
    }
    case PlanOp::kRand: {
      Rng rng(0x5eedULL + (rand_counter_++));
      DenseMatrix m(rows, cols);
      for (int64_t i = 0; i < m.size(); ++i) {
        m.data()[i] = std::fabs(rng.NextGaussian()) + 0.1;
      }
      Matrix value = Matrix::WrapDense(std::move(m));
      const bool dist = IsDistributedSize(
          static_cast<double>(value.SizeInBytes()), model_);
      return RtValue::FromMatrix(std::move(value), dist);
    }
    default:
      return Status::Internal("not a generator");
  }
}

Result<RtValue> Executor::EvalBinary(const PlanNode& node) {
  REMAC_ASSIGN_OR_RETURN(const RtValue lhs, Eval(*node.children[0]));
  REMAC_ASSIGN_OR_RETURN(const RtValue rhs, Eval(*node.children[1]));
  const bool l_scalar =
      lhs.is_scalar || (lhs.matrix.rows() == 1 && lhs.matrix.cols() == 1);
  const bool r_scalar =
      rhs.is_scalar || (rhs.matrix.rows() == 1 && rhs.matrix.cols() == 1);
  ++ops_executed_;
  Metrics().ops->Add();
  // Scalar-scalar.
  if (l_scalar && r_scalar) {
    REMAC_ASSIGN_OR_RETURN(const double a, lhs.AsScalar());
    REMAC_ASSIGN_OR_RETURN(const double b, rhs.AsScalar());
    switch (node.op) {
      case PlanOp::kAdd: return RtValue::Scalar(a + b);
      case PlanOp::kSub: return RtValue::Scalar(a - b);
      case PlanOp::kMul: return RtValue::Scalar(a * b);
      case PlanOp::kDiv: return RtValue::Scalar(b == 0.0 ? 0.0 : a / b);
      case PlanOp::kMin:
        return RtValue::Scalar(FusedApply(FusedOp::kMin, a, b));
      case PlanOp::kMax:
        return RtValue::Scalar(FusedApply(FusedOp::kMax, a, b));
      case PlanOp::kLess: return RtValue::Scalar(a < b ? 1.0 : 0.0);
      case PlanOp::kGreater: return RtValue::Scalar(a > b ? 1.0 : 0.0);
      case PlanOp::kLessEq: return RtValue::Scalar(a <= b ? 1.0 : 0.0);
      case PlanOp::kGreaterEq: return RtValue::Scalar(a >= b ? 1.0 : 0.0);
      case PlanOp::kEqual: return RtValue::Scalar(a == b ? 1.0 : 0.0);
      case PlanOp::kNotEqual: return RtValue::Scalar(a != b ? 1.0 : 0.0);
      case PlanOp::kMatMul: return RtValue::Scalar(a * b);
      default:
        return Status::Internal("bad scalar binary op");
    }
  }
  if (IsComparisonOp(node.op)) {
    return Status::InvalidArgument("comparison of non-scalar values");
  }
  // Scalar-matrix broadcast.
  if (l_scalar != r_scalar && node.op != PlanOp::kMatMul) {
    const RtValue& mat = l_scalar ? rhs : lhs;
    REMAC_ASSIGN_OR_RETURN(const double s,
                           (l_scalar ? lhs : rhs).AsScalar());
    switch (node.op) {
      case PlanOp::kMul: {
        DistValue out = ExecScalarMultiply(mat.matrix, mat.distributed, s,
                                           model_, ledger_);
        return RtValue::FromMatrix(std::move(out.value), out.distributed);
      }
      case PlanOp::kDiv: {
        if (l_scalar) {
          // scalar ./ matrix: element-wise reciprocal, scaled.
          DenseMatrix d = mat.matrix.ToDense();
          for (int64_t i = 0; i < d.size(); ++i) {
            d.data()[i] = d.data()[i] == 0.0 ? 0.0 : s / d.data()[i];
          }
          const OpCosting costing =
              CostScalarOp(InfoOf(mat.matrix, mat.distributed), model_);
          costing.Book(ledger_);
          return RtValue::FromMatrix(Matrix::FromDense(std::move(d)),
                                     costing.result_distributed);
        }
        DistValue out = ExecScalarMultiply(
            mat.matrix, mat.distributed, s == 0.0 ? 0.0 : 1.0 / s, model_,
            ledger_);
        return RtValue::FromMatrix(std::move(out.value), out.distributed);
      }
      case PlanOp::kAdd:
      case PlanOp::kSub:
      case PlanOp::kMin:
      case PlanOp::kMax: {
        DenseMatrix d = mat.matrix.ToDense();
        for (int64_t i = 0; i < d.size(); ++i) {
          if (node.op == PlanOp::kAdd) {
            d.data()[i] += s;
          } else if (node.op == PlanOp::kSub) {
            d.data()[i] = l_scalar ? s - d.data()[i] : d.data()[i] - s;
          } else {
            // min/max broadcast; operand order preserved (ties and NaNs
            // resolve to the left operand, see FusedApply).
            const FusedOp fop =
                node.op == PlanOp::kMin ? FusedOp::kMin : FusedOp::kMax;
            d.data()[i] = l_scalar ? FusedApply(fop, s, d.data()[i])
                                   : FusedApply(fop, d.data()[i], s);
          }
        }
        const OpCosting costing =
            CostScalarOp(InfoOf(mat.matrix, mat.distributed), model_);
        costing.Book(ledger_);
        return RtValue::FromMatrix(Matrix::FromDense(std::move(d)),
                                   costing.result_distributed);
      }
      default:
        return Status::Internal("bad scalar-matrix op");
    }
  }
  // Matrix multiplication with transpose fusion: t(X) %*% Y and
  // X %*% t(Y) do not materialize the distributed transpose (SystemDS's
  // fused transpose-multiply operators).
  if (node.op == PlanOp::kMatMul) {
    // 1x1-matrix operands degrade to scalar scaling.
    if (l_scalar || r_scalar) {
      REMAC_ASSIGN_OR_RETURN(const double s,
                             (l_scalar ? lhs : rhs).AsScalar());
      const RtValue& mat = l_scalar ? rhs : lhs;
      DistValue out = ExecScalarMultiply(mat.matrix, mat.distributed, s,
                                         model_, ledger_);
      return RtValue::FromMatrix(std::move(out.value), out.distributed);
    }
    StageSpan span(Metrics().multiply_seconds, nullptr, "multiply");
    REMAC_ASSIGN_OR_RETURN(
        DistValue out,
        ExecMultiply(lhs.matrix, lhs.distributed, /*a_transposed=*/false,
                     rhs.matrix, rhs.distributed, /*b_transposed=*/false,
                     model_, ledger_));
    return RtValue::FromMatrix(std::move(out.value), out.distributed);
  }
  // Element-wise matrix op.
  BinaryOpKind kind;
  switch (node.op) {
    case PlanOp::kAdd: kind = BinaryOpKind::kAdd; break;
    case PlanOp::kSub: kind = BinaryOpKind::kSub; break;
    case PlanOp::kMul: kind = BinaryOpKind::kElemMul; break;
    case PlanOp::kDiv: kind = BinaryOpKind::kElemDiv; break;
    case PlanOp::kMin: kind = BinaryOpKind::kMin; break;
    case PlanOp::kMax: kind = BinaryOpKind::kMax; break;
    default:
      return Status::Internal("bad elementwise op");
  }
  StageSpan span(Metrics().elementwise_seconds, nullptr, "elementwise");
  REMAC_ASSIGN_OR_RETURN(
      DistValue out,
      ExecElementwise(kind, lhs.matrix, lhs.distributed, rhs.matrix,
                      rhs.distributed, model_, ledger_));
  return RtValue::FromMatrix(std::move(out.value), out.distributed);
}

RtValue Executor::ApplyTraits(RtValue value) const {
  if (value.is_scalar) return value;
  if (traits_.force_dense && !value.matrix.is_dense()) {
    value.matrix = Matrix::WrapDense(value.matrix.ToDense());
  }
  if (traits_.force_distributed &&
      value.matrix.rows() * value.matrix.cols() > 1) {
    value.distributed = true;
  }
  return value;
}

Result<RtValue> Executor::Eval(const PlanNode& node) {
  if (intermediates_ != nullptr) {
    if (const RtValue* served = intermediates_->Lookup(&node)) return *served;
  }
  REMAC_ASSIGN_OR_RETURN(RtValue value, EvalImpl(node));
  value = ApplyTraits(std::move(value));
  if (intermediates_ != nullptr) intermediates_->Offer(&node, value);
  return value;
}

Result<RtValue> Executor::EvalImpl(const PlanNode& node) {
  switch (node.op) {
    case PlanOp::kInput:
      if (steal_.has_value() && steal_->first == node.name) {
        RtValue stolen = std::move(steal_->second);
        steal_.reset();
        return stolen;
      }
      return Get(node.name);
    case PlanOp::kConst:
      return RtValue::Scalar(node.value);
    case PlanOp::kReadData:
      return ReadDataset(node.name);
    case PlanOp::kEye:
    case PlanOp::kZeros:
    case PlanOp::kOnes:
    case PlanOp::kRand:
      return EvalGenerator(node);
    case PlanOp::kTranspose: {
      // Fuse into a child multiply when possible; otherwise materialize.
      REMAC_ASSIGN_OR_RETURN(const RtValue child, Eval(*node.children[0]));
      if (child.is_scalar) return child;
      ++ops_executed_;
      Metrics().ops->Add();
      StageSpan span(Metrics().transpose_seconds, nullptr, "transpose");
      DistValue out =
          ExecTranspose(child.matrix, child.distributed, model_, ledger_);
      return RtValue::FromMatrix(std::move(out.value), out.distributed);
    }
    case PlanOp::kMatMul: {
      // Transpose fusion: unwrap t() children.
      const PlanNode* lhs = node.children[0].get();
      const PlanNode* rhs = node.children[1].get();
      const bool lt = lhs->op == PlanOp::kTranspose &&
                      !lhs->children[0]->shape.ScalarLike();
      const bool rt = rhs->op == PlanOp::kTranspose &&
                      !rhs->children[0]->shape.ScalarLike();
      if (!lt && !rt) return EvalBinary(node);
      REMAC_ASSIGN_OR_RETURN(const RtValue a,
                             Eval(lt ? *lhs->children[0] : *lhs));
      REMAC_ASSIGN_OR_RETURN(const RtValue b,
                             Eval(rt ? *rhs->children[0] : *rhs));
      if (a.is_scalar || b.is_scalar) {
        // Degenerate; fall back to materialized transpose semantics.
        return EvalBinary(node);
      }
      ++ops_executed_;
      Metrics().ops->Add();
      StageSpan span(Metrics().multiply_seconds, nullptr, "multiply");
      REMAC_ASSIGN_OR_RETURN(
          DistValue out,
          ExecMultiply(a.matrix, a.distributed, lt, b.matrix, b.distributed,
                       rt, model_, ledger_));
      return RtValue::FromMatrix(std::move(out.value), out.distributed);
    }
    case PlanOp::kAdd:
    case PlanOp::kSub:
    case PlanOp::kMul:
    case PlanOp::kDiv:
    case PlanOp::kMin:
    case PlanOp::kMax:
    case PlanOp::kLess:
    case PlanOp::kGreater:
    case PlanOp::kLessEq:
    case PlanOp::kGreaterEq:
    case PlanOp::kEqual:
    case PlanOp::kNotEqual:
      return EvalBinary(node);
    case PlanOp::kSum: {
      REMAC_ASSIGN_OR_RETURN(const RtValue child, Eval(*node.children[0]));
      if (child.is_scalar) return child;
      if (ledger_ != nullptr) {
        ledger_->AddDistributedFlops(static_cast<double>(child.matrix.nnz()));
      }
      return RtValue::Scalar(SumAll(child.matrix));
    }
    case PlanOp::kTrace: {
      REMAC_ASSIGN_OR_RETURN(const RtValue child, Eval(*node.children[0]));
      if (child.is_scalar) return child;
      const Matrix& m = child.matrix;
      if (m.rows() != m.cols()) {
        return Status::DimensionMismatch("trace of a non-square matrix");
      }
      double total = 0.0;
      for (int64_t i = 0; i < m.rows(); ++i) total += m.At(i, i);
      if (ledger_ != nullptr) {
        ledger_->AddDistributedFlops(static_cast<double>(m.rows()));
      }
      return RtValue::Scalar(total);
    }
    case PlanOp::kExp:
    case PlanOp::kLog: {
      REMAC_ASSIGN_OR_RETURN(const RtValue child, Eval(*node.children[0]));
      if (child.is_scalar) {
        return RtValue::Scalar(node.op == PlanOp::kExp
                                   ? std::exp(child.scalar)
                                   : std::log(child.scalar));
      }
      ++ops_executed_;
      Metrics().ops->Add();
      if (node.op == PlanOp::kExp) {
        DenseMatrix d = child.matrix.ToDense();  // exp(0) = 1 densifies
        for (int64_t i = 0; i < d.size(); ++i) {
          d.data()[i] = std::exp(d.data()[i]);
        }
        const OpCosting costing =
            CostScalarOp(InfoOf(child.matrix, child.distributed), model_);
        costing.Book(ledger_);
        return RtValue::FromMatrix(Matrix::FromDense(std::move(d)),
                                   costing.result_distributed);
      }
      // Safe log: zero cells stay zero (stored explicit zeros included, so
      // the result is bitwise-identical to the fused tape's cell-wise
      // FusedApply(kLog) regardless of how zeros are represented).
      CsrMatrix csr = child.matrix.ToCsr();
      for (auto& v : csr.mutable_values()) {
        v = FusedApply(FusedOp::kLog, v, 0.0);
      }
      const OpCosting costing =
          CostScalarOp(InfoOf(child.matrix, child.distributed), model_);
      costing.Book(ledger_);
      return RtValue::FromMatrix(Matrix::FromCsr(std::move(csr)),
                                 costing.result_distributed);
    }
    case PlanOp::kRowSums:
    case PlanOp::kColSums: {
      REMAC_ASSIGN_OR_RETURN(const RtValue child, Eval(*node.children[0]));
      const Matrix m = child.AsMatrix();
      ++ops_executed_;
      Metrics().ops->Add();
      const bool rows = node.op == PlanOp::kRowSums;
      DenseMatrix out(rows ? m.rows() : 1, rows ? 1 : m.cols());
      const CsrMatrix csr = m.ToCsr();
      for (int64_t r = 0; r < csr.rows(); ++r) {
        for (int64_t k = csr.row_ptr()[r]; k < csr.row_ptr()[r + 1]; ++k) {
          if (rows) {
            out.At(r, 0) += csr.values()[k];
          } else {
            out.At(0, csr.col_idx()[k]) += csr.values()[k];
          }
        }
      }
      if (ledger_ != nullptr) {
        ledger_->AddDistributedFlops(static_cast<double>(m.nnz()));
      }
      Matrix result = Matrix::FromDense(std::move(out));
      const bool dist = IsDistributedSize(
          static_cast<double>(result.SizeInBytes()), model_);
      return RtValue::FromMatrix(std::move(result), dist);
    }
    case PlanOp::kDiag: {
      REMAC_ASSIGN_OR_RETURN(const RtValue child, Eval(*node.children[0]));
      const Matrix m = child.AsMatrix();
      ++ops_executed_;
      Metrics().ops->Add();
      if (m.cols() == 1) {
        std::vector<std::tuple<int64_t, int64_t, double>> triplets;
        for (int64_t i = 0; i < m.rows(); ++i) {
          const double v = m.At(i, 0);
          if (v != 0.0) triplets.emplace_back(i, i, v);
        }
        return RtValue::FromMatrix(
            Matrix::FromCsr(
                CsrMatrix::FromTriplets(m.rows(), m.rows(),
                                        std::move(triplets))),
            false);
      }
      if (m.rows() != m.cols()) {
        return Status::DimensionMismatch("diag of a non-square matrix");
      }
      DenseMatrix out(m.rows(), 1);
      for (int64_t i = 0; i < m.rows(); ++i) out.At(i, 0) = m.At(i, i);
      return RtValue::FromMatrix(Matrix::FromDense(std::move(out)), false);
    }
    case PlanOp::kNorm: {
      REMAC_ASSIGN_OR_RETURN(const RtValue child, Eval(*node.children[0]));
      if (child.is_scalar) return RtValue::Scalar(std::fabs(child.scalar));
      if (ledger_ != nullptr) {
        ledger_->AddDistributedFlops(
            2.0 * static_cast<double>(child.matrix.nnz()));
      }
      return RtValue::Scalar(FrobeniusNorm(child.matrix));
    }
    case PlanOp::kSqrt: {
      REMAC_ASSIGN_OR_RETURN(const RtValue child, Eval(*node.children[0]));
      REMAC_ASSIGN_OR_RETURN(const double v, child.AsScalar());
      return RtValue::Scalar(std::sqrt(v));
    }
    case PlanOp::kAbs: {
      REMAC_ASSIGN_OR_RETURN(const RtValue child, Eval(*node.children[0]));
      REMAC_ASSIGN_OR_RETURN(const double v, child.AsScalar());
      return RtValue::Scalar(std::fabs(v));
    }
    case PlanOp::kNcol:
    case PlanOp::kNrow: {
      REMAC_ASSIGN_OR_RETURN(const RtValue child, Eval(*node.children[0]));
      const Matrix m = child.AsMatrix();
      return RtValue::Scalar(static_cast<double>(
          node.op == PlanOp::kNcol ? m.cols() : m.rows()));
    }
    case PlanOp::kFusedMap:
      return EvalFusedMap(node);
    case PlanOp::kBlockRef:
      return Status::Internal("kBlockRef reached the executor");
  }
  return Status::Internal("unhandled op in Eval");
}

Result<RtValue> Executor::EvalFusedMap(const PlanNode& node) {
  if (node.fused == nullptr) {
    return Status::Internal("kFusedMap node without a tape");
  }
  const FusedTape& tape = *node.fused;
  if (node.children.size() != static_cast<size_t>(tape.num_inputs)) {
    return Status::Internal("fused region input arity mismatch");
  }
  // Evaluate the region inputs in slot order, capturing per-slot placement
  // info before the matrices move into the kernel.
  std::vector<Matrix> matrices;
  std::vector<double> scalars;
  std::vector<MatInfo> slot_info(static_cast<size_t>(tape.num_inputs));
  for (int32_t i = 0; i < tape.num_inputs; ++i) {
    REMAC_ASSIGN_OR_RETURN(RtValue v, Eval(*node.children[i]));
    if (tape.input_scalar[static_cast<size_t>(i)] != 0) {
      REMAC_ASSIGN_OR_RETURN(const double s, v.AsScalar());
      scalars.push_back(s);
    } else {
      if (v.is_scalar) {
        return Status::Internal("scalar value in a matrix slot of " +
                                node.ToString());
      }
      slot_info[static_cast<size_t>(i)] = InfoOf(v.matrix, v.distributed);
      matrices.push_back(std::move(v.matrix));
    }
  }
  StageSpan span(Metrics().elementwise_seconds, nullptr, "fused");
  REMAC_ASSIGN_OR_RETURN(
      FusedExecResult exec,
      ExecuteFusedTape(tape, std::move(matrices), scalars));
  // Per-step cost booking mirrors the unfused operator sequence: every
  // tape step books exactly what the standalone operator would have
  // booked (scalar broadcasts and unary maps as CostScalarOp over the
  // matrix side; matrix-matrix steps as CostElementwise with the step's
  // exact result sparsity), so the cost audit still reconciles.
  const double cells =
      static_cast<double>(tape.rows) * static_cast<double>(tape.cols);
  std::vector<MatInfo> step_info(tape.steps.size());
  double bytes_avoided = 0.0;
  bool result_distributed = false;
  for (size_t j = 0; j < tape.steps.size(); ++j) {
    const FusedStep& step = tape.steps[j];
    const double sp =
        cells > 0.0 ? static_cast<double>(exec.step_nnz[j]) / cells : 0.0;
    auto operand_scalar = [&](int32_t slot) {
      return slot >= 0 && slot < tape.num_inputs &&
             tape.input_scalar[static_cast<size_t>(slot)] != 0;
    };
    auto operand_info = [&](int32_t slot) -> const MatInfo& {
      return slot < tape.num_inputs
                 ? slot_info[static_cast<size_t>(slot)]
                 : step_info[static_cast<size_t>(slot - tape.num_inputs)];
    };
    OpCosting costing;
    if (step.rhs < 0 || operand_scalar(step.lhs) ||
        operand_scalar(step.rhs)) {
      const int32_t mat_slot =
          (step.rhs >= 0 && operand_scalar(step.lhs)) ? step.rhs : step.lhs;
      if (operand_scalar(mat_slot)) {
        return Status::Internal("fused step with no matrix operand");
      }
      costing = CostScalarOp(operand_info(mat_slot), model_);
    } else {
      costing = CostElementwise(operand_info(step.lhs),
                                operand_info(step.rhs), sp, model_);
    }
    costing.Book(ledger_);
    ++ops_executed_;
    Metrics().ops->Add();
    MatInfo info;
    info.rows = static_cast<double>(tape.rows);
    info.cols = static_cast<double>(tape.cols);
    info.sparsity = sp;
    info.distributed = costing.result_distributed;
    // Mirror ApplyTraits: unfused intermediates pass through it one by
    // one, so placement-forcing personalities must see the same flow.
    if (traits_.force_distributed && cells > 1.0) info.distributed = true;
    step_info[j] = info;
    if (j + 1 < tape.steps.size()) {
      bytes_avoided += MatrixBytes(info.rows, info.cols, info.sparsity);
    }
    result_distributed = info.distributed;
  }
  Metrics().fusion_bytes_avoided->Add(
      static_cast<int64_t>(bytes_avoided));
  if (exec.in_place) Metrics().fusion_in_place->Add();
  return RtValue::FromMatrix(std::move(exec.output), result_distributed);
}

}  // namespace remac
