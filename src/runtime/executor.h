#ifndef REMAC_RUNTIME_EXECUTOR_H_
#define REMAC_RUNTIME_EXECUTOR_H_

#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster_model.h"
#include "cluster/transmission_ledger.h"
#include "common/status.h"
#include "distributed/distributed_ops.h"
#include "matrix/matrix.h"
#include "plan/plan_builder.h"

namespace remac {

/// Runtime value: a scalar or a matrix with its placement.
struct RtValue {
  bool is_scalar = false;
  double scalar = 0.0;
  Matrix matrix;
  bool distributed = false;

  static RtValue Scalar(double v);
  static RtValue FromMatrix(Matrix m, bool distributed);

  /// Scalar view; 1x1 matrices coerce.
  Result<double> AsScalar() const;
  /// Matrix view; scalars become 1x1 matrices.
  Matrix AsMatrix() const;
};

/// Engine personality knobs used to emulate the comparator systems
/// (paper Section 6.4).
struct EngineTraits {
  /// pbdR/ScaLAPACK: sparse matrices are handled as dense.
  bool force_dense = false;
  /// pbdR/SciDB: no dynamic local/distributed switch; every matrix
  /// operator runs distributed.
  bool force_distributed = false;
  /// Multiplier on the dfs cost of loading/partitioning input data
  /// (pbdR and SciDB partition inputs sequentially; SciDB additionally
  /// pays a redimension pass).
  double input_partition_factor = 1.0;
};

/// \brief First-load registry shared by executors running concurrently.
///
/// The task-graph path gives every task its own Executor; this set makes
/// "book the input-partition cost once per dataset" hold program-wide
/// instead of per-executor.
struct SharedDatasetSet {
  std::mutex mu;
  std::set<std::string> loaded;

  /// Marks `name` loaded; true only on the first call for that name.
  bool MarkLoaded(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu);
    return loaded.insert(name).second;
  }
};

/// \brief Serving hook for materialized sub-plan results.
///
/// The service's matcache implements this to splice cached intermediates
/// into plan evaluation without rewriting the (shared, immutable) plan
/// trees: before evaluating a node the executor asks Lookup — a non-null
/// result *is* the node's value and the subtree underneath is never
/// walked (no FLOPs, no transmission booked, the runtime equivalent of
/// rewriting the sub-plan into a cache read). After computing a node the
/// executor calls Offer so the store can capture values it asked for.
/// Implementations must be thread-safe: the task-graph path calls both
/// hooks from concurrent per-task executors.
class IntermediateStore {
 public:
  virtual ~IntermediateStore() = default;

  /// The served value for this exact plan node, or null to evaluate it
  /// normally. The pointer must stay valid for the execution's lifetime.
  virtual const RtValue* Lookup(const PlanNode* node) = 0;

  /// Offers a freshly computed node value (called for every evaluated
  /// node; implementations filter by pointer identity).
  virtual void Offer(const PlanNode* node, const RtValue& value) = 0;
};

/// \brief Executes compiled statements against the simulated cluster.
///
/// Operators are computed for real with the local kernels while their
/// distributed cost (FLOPs and transmission bytes) is booked into the
/// ledger; see DESIGN.md for the substitution argument. Loops marked
/// barrier_commit evaluate every non-temp assignment against the
/// start-of-iteration environment and commit them together, which is how
/// the optimizer's fully-inlined outputs preserve sequential semantics.
class Executor {
 public:
  Executor(const ClusterModel& model, const DataCatalog* catalog,
           TransmissionLedger* ledger, EngineTraits traits = {});

  /// Runs a statement list. Loops run until their condition turns false
  /// or `max_loop_iterations` is reached, whichever is first.
  Status Run(const std::vector<CompiledStmt>& statements,
             int max_loop_iterations = 1000);

  /// Evaluates one plan tree in the current environment.
  Result<RtValue> Eval(const PlanNode& node);

  /// Environment access.
  bool Has(const std::string& name) const { return env_.count(name) > 0; }
  Result<RtValue> Get(const std::string& name) const;
  void Set(const std::string& name, RtValue value);
  const std::map<std::string, RtValue>& env() const { return env_; }

  /// Books the dfs cost of partitioning every catalog dataset referenced
  /// by read() into the cluster (Figure 12's "input partition" phase).
  /// No-op for datasets already loaded.
  void set_count_input_partition(bool on) { count_input_partition_ = on; }

  /// Routes first-load tracking through a registry shared across
  /// executors (the task-graph path; see SharedDatasetSet).
  void set_shared_loaded_datasets(SharedDatasetSet* shared) {
    shared_datasets_ = shared;
  }

  /// Attaches a materialized-intermediate store (see IntermediateStore).
  /// Null (the default) evaluates every node; behaviour is then bitwise
  /// identical to builds without the hook.
  void set_intermediate_store(IntermediateStore* store) {
    intermediates_ = store;
  }

  /// Position in the deterministic rand() stream. The task-graph
  /// executor re-bases each task to the offset the serial executor would
  /// have reached, so rand-using programs stay bitwise reproducible.
  void set_rand_counter(uint64_t value) { rand_counter_ = value; }
  uint64_t rand_counter() const { return rand_counter_; }

  int64_t ops_executed() const { return ops_executed_; }

 private:
  Result<RtValue> EvalImpl(const PlanNode& node);
  /// Applies the engine personality to a produced value (pbdR/SciDB force
  /// dense storage and distributed placement).
  RtValue ApplyTraits(RtValue value) const;
  Result<RtValue> EvalBinary(const PlanNode& node);
  /// Evaluates a kFusedMap region: single-pass tape kernel plus per-step
  /// cost booking identical to the unfused operator sequence.
  Result<RtValue> EvalFusedMap(const PlanNode& node);
  Result<RtValue> EvalGenerator(const PlanNode& node);
  Result<RtValue> ReadDataset(const std::string& name);
  /// If `stmt` re-assigns a matrix variable its plan reads exactly once,
  /// moves the old value into `steal_` so the single kInput reference can
  /// consume it (last use) and fused kernels may reuse its buffer.
  void ArmBufferSteal(const CompiledStmt& stmt);

  ClusterModel model_;
  const DataCatalog* catalog_;
  TransmissionLedger* ledger_;
  EngineTraits traits_;
  std::map<std::string, RtValue> env_;
  std::map<std::string, bool> loaded_datasets_;
  SharedDatasetSet* shared_datasets_ = nullptr;
  IntermediateStore* intermediates_ = nullptr;
  bool count_input_partition_ = false;
  int64_t ops_executed_ = 0;
  uint64_t rand_counter_ = 0;
  /// Armed by Run() for last-use re-assignments; consumed by the kInput
  /// case of EvalImpl (see ArmBufferSteal).
  std::optional<std::pair<std::string, RtValue>> steal_;
};

}  // namespace remac

#endif  // REMAC_RUNTIME_EXECUTOR_H_
