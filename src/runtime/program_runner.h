#ifndef REMAC_RUNTIME_PROGRAM_RUNNER_H_
#define REMAC_RUNTIME_PROGRAM_RUNNER_H_

#include <map>
#include <string>
#include <vector>

#include "baselines/engine_modes.h"
#include "cluster/fault_plan.h"
#include "cluster/transmission_ledger.h"
#include "common/status.h"
#include "core/adaptive_optimizer.h"
#include <memory>

#include "obs/cost_audit.h"
#include "plan/plan_builder.h"
#include "runtime/executor.h"
#include "sched/parallel_executor.h"

namespace remac {

/// Which compiler produces the executed plan.
enum class OptimizerKind {
  kAsWritten,          // no optimization at all (pbdR/SciDB style)
  kSystemDs,           // explicit CSE + chain reordering
  kSystemDsNoCse,      // SystemDS* of Figure 8(b)
  kSpores,             // sampled implicit-CSE search
  kRemacNone,          // ReMac pipeline, no elimination applied
  kRemacAutomatic,     // automatic elimination, applied blindly
  kRemacConservative,  // order-preserving options only
  kRemacAggressive,    // everything, order-changing first
  kRemacAdaptive,      // ReMac proper
};

const char* OptimizerKindName(OptimizerKind kind);

enum class EstimatorKind { kMetadata, kMnc, kSampling, kExact };

const char* EstimatorKindName(EstimatorKind kind);

/// Constructs the sparsity estimator a RunConfig selects (the exact
/// estimator binds to `catalog`; the rest ignore it). Shared by the
/// optimizer switch, the cost audit, and the materialized-intermediate
/// cache's recompute-cost predictions.
std::unique_ptr<SparsityEstimator> MakeEstimator(EstimatorKind kind,
                                                 const DataCatalog* catalog);

/// Which execution backend runs the optimized program.
enum class SchedulerKind {
  kSerial,     // one statement at a time (the classic Executor)
  kTaskGraph,  // dependency DAG on the shared thread pool
};

const char* SchedulerKindName(SchedulerKind kind);

/// One experiment configuration: cluster, compiler, estimator, engine.
struct RunConfig {
  ClusterModel cluster;
  OptimizerKind optimizer = OptimizerKind::kRemacAdaptive;
  EstimatorKind estimator = EstimatorKind::kMnc;
  CombinerKind combiner = CombinerKind::kDp;
  EngineKind engine = EngineKind::kSystemDsLike;
  /// Loop iteration cap; also the LSE amortization horizon.
  int max_iterations = 20;
  /// When > 0, the executor runs only this many loop iterations while the
  /// optimizer still amortizes over max_iterations — benchmark harnesses
  /// execute 1-2 real iterations and extrapolate the simulated loop time.
  int executed_iterations = -1;
  /// Book the dfs cost of partitioning inputs (Figure 12).
  bool count_input_partition = false;
  /// Skip execution (compile-only experiments, Figures 8(a)/10(a)).
  bool execute = true;
  /// Override the ReMac search method (Figure 8(a)'s tree-wise arm).
  SearchMethod search = SearchMethod::kBlockWise;
  int64_t treewise_budget = 5000000;
  int64_t enum_budget = 100000;
  /// Manual elimination: apply exactly these canonical option keys
  /// (overrides the strategy of the ReMac optimizer kinds).
  std::vector<std::string> forced_option_keys;
  /// Execution backend. kTaskGraph runs independent statements
  /// concurrently on the shared thread pool and additionally reports the
  /// DAG's critical-path makespan; numerics stay bitwise-identical to
  /// kSerial.
  SchedulerKind scheduler = SchedulerKind::kSerial;
  /// Thread count for the shared pool when scheduler == kTaskGraph
  /// (0 = keep the pool's current size). Must not shrink/grow the pool
  /// while another run is in flight.
  int pool_threads = 0;
  /// When non-empty (and scheduler == kTaskGraph), per-task trace events
  /// are written to this path as Chrome-trace JSON (chrome://tracing).
  std::string trace_path;
  /// Deterministic fault injection (chaos runs). Only the task-graph
  /// scheduler injects faults; the serial executor always runs fault-free
  /// and serves as the reference (and degradation fallback) path.
  FaultPlan faults;
  /// Optional materialized-intermediate store spliced into execution
  /// (see IntermediateStore). Null keeps behaviour bitwise-identical to
  /// builds without the hook. Must be thread-safe under kTaskGraph and
  /// outlive ExecuteCompiled.
  IntermediateStore* intermediates = nullptr;
  /// Rewrite same-shape elementwise chains into single-pass fused-map
  /// regions after optimization (see plan/fusion.h). Results are
  /// bitwise-identical with the flag off; off exists for A/B comparison
  /// and the equivalence gates.
  bool fuse_elementwise = true;
};

struct RunReport {
  /// Simulated cluster time (includes real compile wall time).
  TimeBreakdown breakdown;
  double compile_wall_seconds = 0.0;
  /// Populated by the kTaskGraph scheduler: serial-sum vs critical-path
  /// simulated time, task/edge counts (see ScheduleReport).
  ScheduleReport schedule;
  OptimizeReport optimize;  // populated by the ReMac/SPORES paths
  /// Predicted-vs-actual cost comparison for this execution (valid only
  /// when the program was executed and prediction succeeded).
  CostAuditRecord audit;
  std::map<std::string, RtValue> env;  // final variable values
  std::string optimized_source;        // final program rendering
  /// The optimized program itself (plan trees), for inspection and
  /// visualization (see plan/plan_dot.h).
  std::shared_ptr<const CompiledProgram> optimized_program;
};

/// Compiles `source` with the configured optimizer, executes it against
/// the simulated cluster, and reports the simulated time breakdown plus
/// the final environment. The one-call public API of the library.
Result<RunReport> RunScript(const std::string& source,
                            const DataCatalog& catalog,
                            const RunConfig& config);

/// Runs just the optimizer stage of RunScript on an already-compiled
/// program: the switch over OptimizerKind, including estimator
/// construction. `report` may be null. The plan service calls this once
/// per cache miss and replays the result on hits.
Result<CompiledProgram> OptimizeCompiled(const CompiledProgram& program,
                                         const DataCatalog& catalog,
                                         const RunConfig& config,
                                         OptimizeReport* report);

/// Executes an already-optimized program on the configured backend
/// (serial or task-graph), booking simulated costs into `ledger` and
/// filling `report->env` (plus `report->schedule` for the task-graph
/// path). Does not touch `report->breakdown`; callers snapshot the
/// ledger afterwards.
Status ExecuteCompiled(const CompiledProgram& optimized,
                       const DataCatalog& catalog, const RunConfig& config,
                       TransmissionLedger* ledger, RunReport* report);

/// Compile-only variant (used by compilation-time experiments).
Result<RunReport> CompileOnly(const std::string& source,
                              const DataCatalog& catalog,
                              const RunConfig& config);

}  // namespace remac

#endif  // REMAC_RUNTIME_PROGRAM_RUNNER_H_
