#include "runtime/program_runner.h"

#include <algorithm>
#include <chrono>
#include <memory>

#include "baselines/spores_optimizer.h"
#include "baselines/systemds_optimizer.h"
#include "cost/cost_model.h"
#include "obs/metrics.h"
#include "plan/fusion.h"
#include "obs/span.h"
#include "sparsity/estimator.h"

namespace remac {

const char* OptimizerKindName(OptimizerKind kind) {
  switch (kind) {
    case OptimizerKind::kAsWritten: return "as-written";
    case OptimizerKind::kSystemDs: return "SystemDS";
    case OptimizerKind::kSystemDsNoCse: return "SystemDS*";
    case OptimizerKind::kSpores: return "SPORES";
    case OptimizerKind::kRemacNone: return "ReMac(none)";
    case OptimizerKind::kRemacAutomatic: return "automatic";
    case OptimizerKind::kRemacConservative: return "conservative";
    case OptimizerKind::kRemacAggressive: return "aggressive";
    case OptimizerKind::kRemacAdaptive: return "adaptive";
  }
  return "?";
}

const char* EstimatorKindName(EstimatorKind kind) {
  switch (kind) {
    case EstimatorKind::kMetadata: return "MD";
    case EstimatorKind::kMnc: return "MNC";
    case EstimatorKind::kSampling: return "Sample";
    case EstimatorKind::kExact: return "Exact";
  }
  return "?";
}

const char* SchedulerKindName(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kSerial: return "serial";
    case SchedulerKind::kTaskGraph: return "taskgraph";
  }
  return "?";
}

std::unique_ptr<SparsityEstimator> MakeEstimator(EstimatorKind kind,
                                                 const DataCatalog* catalog) {
  switch (kind) {
    case EstimatorKind::kMetadata:
      return std::make_unique<MetadataEstimator>();
    case EstimatorKind::kMnc:
      return std::make_unique<MncEstimator>();
    case EstimatorKind::kSampling:
      return std::make_unique<SamplingEstimator>();
    case EstimatorKind::kExact: {
      auto est = std::make_unique<ExactEstimator>();
      est->AttachCatalog(catalog);
      return est;
    }
  }
  return std::make_unique<MetadataEstimator>();
}

namespace {

EliminationStrategy StrategyFor(OptimizerKind kind) {
  switch (kind) {
    case OptimizerKind::kRemacNone:
      return EliminationStrategy::kNone;
    case OptimizerKind::kRemacAutomatic:
      return EliminationStrategy::kAutomatic;
    case OptimizerKind::kRemacConservative:
      return EliminationStrategy::kConservative;
    case OptimizerKind::kRemacAggressive:
      return EliminationStrategy::kAggressive;
    default:
      return EliminationStrategy::kAdaptive;
  }
}

Result<RunReport> RunInternal(const std::string& source,
                              const DataCatalog& catalog,
                              const RunConfig& config, bool execute) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  RunReport report;
  StageSpan parse_span(
      registry.GetHistogram("remac.compile.parse_seconds"), nullptr,
      "parse");
  REMAC_ASSIGN_OR_RETURN(const CompiledProgram program,
                         CompileScript(source, catalog));
  parse_span.Stop();

  StageSpan optimize_span(
      registry.GetHistogram("remac.compile.optimize_seconds"), nullptr,
      "optimize");
  const auto compile_start = std::chrono::steady_clock::now();
  REMAC_ASSIGN_OR_RETURN(
      CompiledProgram optimized,
      OptimizeCompiled(program, catalog, config, &report.optimize));
  report.compile_wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    compile_start)
          .count();
  optimize_span.Stop();
  report.optimized_source = optimized.ToString();
  report.optimized_program =
      std::make_shared<const CompiledProgram>(std::move(optimized));

  TransmissionLedger ledger(config.cluster);
  ledger.AddCompilationSeconds(report.compile_wall_seconds);
  if (execute) {
    REMAC_RETURN_NOT_OK(ExecuteCompiled(*report.optimized_program, catalog,
                                        config, &ledger, &report));
  }
  report.breakdown = ledger.Breakdown();
  return report;
}

}  // namespace

Result<CompiledProgram> OptimizeCompiled(const CompiledProgram& program,
                                         const DataCatalog& catalog,
                                         const RunConfig& config,
                                         OptimizeReport* report) {
  OptimizeReport local;
  if (report == nullptr) report = &local;
  const std::unique_ptr<SparsityEstimator> estimator =
      MakeEstimator(config.estimator, &catalog);
  Result<CompiledProgram> optimized = [&]() -> Result<CompiledProgram> {
    switch (config.optimizer) {
      case OptimizerKind::kAsWritten:
        return program;
      case OptimizerKind::kSystemDs:
      case OptimizerKind::kSystemDsNoCse: {
        SystemDsConfig sds;
        sds.explicit_cse = config.optimizer == OptimizerKind::kSystemDs;
        return SystemDsOptimize(program, config.cluster, estimator.get(),
                                &catalog, sds);
      }
      case OptimizerKind::kSpores:
        return SporesOptimize(program, config.cluster, estimator.get(),
                              &catalog, SporesConfig{}, report);
      default: {
        OptimizerConfig opt;
        opt.iterations = config.max_iterations;
        opt.strategy = StrategyFor(config.optimizer);
        opt.combiner = config.combiner;
        opt.search = config.search;
        opt.treewise_budget = config.treewise_budget;
        opt.enum_budget = config.enum_budget;
        opt.forced_option_keys = config.forced_option_keys;
        ReMacOptimizer optimizer(config.cluster, estimator.get(), &catalog,
                                 opt);
        return optimizer.Optimize(program, report);
      }
    }
    return Status::Internal("unhandled optimizer kind");
  }();
  if (!optimized.ok()) return optimized;
  CompiledProgram final_program = std::move(optimized).value();
  // Stamp each multiply with the layout the cost model picks for it
  // (1D BMM/CPMM vs 2D SUMMA) so the plan records the decision for
  // reporting. Advisory: a failed annotation leaves nodes at kUnset.
  const CostModel layout_model(config.cluster, estimator.get(), &catalog);
  (void)AnnotateMultiplyLayouts(&final_program, catalog, layout_model);
  // Last pass: collapse same-shape elementwise chains into single-pass
  // fused regions. Runs after all plan-shape decisions (sharing decisions
  // are statement boundaries by now, so fusion never absorbs a
  // multi-consumer intermediate).
  if (config.fuse_elementwise) {
    FuseElementwiseChains(&final_program, nullptr);
  }
  return final_program;
}

namespace {

/// Snapshot of the audited ledger accumulators, so ExecuteCompiled can
/// attribute exactly this execution's delta even when the caller reuses
/// a ledger across runs.
struct LedgerSnapshot {
  double flops = 0.0;
  std::array<double, kNumTransmissionPrimitives> bytes{};

  static LedgerSnapshot Of(const TransmissionLedger& ledger) {
    LedgerSnapshot snap;
    snap.flops = ledger.TotalFlops();
    for (size_t i = 0; i < snap.bytes.size(); ++i) {
      snap.bytes[i] =
          ledger.BytesFor(static_cast<TransmissionPrimitive>(i));
    }
    return snap;
  }
};

/// Runs the accuracy audit for one finished execution and publishes the
/// ledger delta plus audit metrics. Audit failures are recorded but never
/// fail the run.
void AuditExecution(const CompiledProgram& optimized,
                    const DataCatalog& catalog, const RunConfig& config,
                    int executed_iterations, const LedgerSnapshot& before,
                    const TransmissionLedger& ledger, RunReport* report) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  const LedgerSnapshot after = LedgerSnapshot::Of(ledger);
  const double actual_flops = after.flops - before.flops;
  std::array<double, kNumTransmissionPrimitives> actual_bytes{};
  for (size_t i = 0; i < actual_bytes.size(); ++i) {
    actual_bytes[i] = after.bytes[i] - before.bytes[i];
    registry
        .GetGauge(std::string("remac.ledger.") +
                  TransmissionPrimitiveName(
                      static_cast<TransmissionPrimitive>(i)) +
                  "_bytes")
        ->Add(actual_bytes[i]);
  }
  registry.GetGauge("remac.ledger.flops")->Add(actual_flops);

  const std::unique_ptr<SparsityEstimator> estimator =
      MakeEstimator(config.estimator, &catalog);
  const Result<PredictedCost> predicted = PredictProgramCost(
      optimized, catalog, *estimator, config.cluster,
      TraitsFor(config.engine), executed_iterations);
  CostAuditRecord audit;
  if (predicted.ok()) {
    audit = MakeCostAudit(predicted.value(), actual_flops, actual_bytes);
  } else {
    audit.error = predicted.status().ToString();
  }
  PublishCostAudit(audit, &registry);
  if (report != nullptr) report->audit = audit;
}

}  // namespace

Status ExecuteCompiled(const CompiledProgram& optimized,
                       const DataCatalog& catalog, const RunConfig& config,
                       TransmissionLedger* ledger, RunReport* report) {
  const int executed = config.executed_iterations > 0
                           ? std::min(config.executed_iterations,
                                      config.max_iterations)
                           : config.max_iterations;
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("remac.executor.programs")->Add();
  // Entered scope: task, kernel and audit spans recorded below — on this
  // thread or on pool workers the scheduler fans out to — nest under the
  // request's "execute" span.
  ScopedTraceSpan trace_span("execute", "stage", /*enter=*/true);
  StageSpan execute_span(
      registry.GetHistogram("remac.executor.execute_seconds"), nullptr,
      "execute-measured");
  const LedgerSnapshot before = LedgerSnapshot::Of(*ledger);
  if (config.scheduler == SchedulerKind::kTaskGraph) {
    if (config.pool_threads > 0) {
      // Only the execution lane: this may run on a request-lane worker
      // (Session-submitted requests), which must never join its own lane.
      ThreadPool::SetExecLaneThreads(config.pool_threads);
    }
    TraceSink trace;
    ParallelExecutor executor(config.cluster, &catalog, ledger,
                              &ThreadPool::Global(),
                              TraitsFor(config.engine));
    executor.set_count_input_partition(config.count_input_partition);
    executor.set_intermediate_store(config.intermediates);
    if (!config.trace_path.empty()) executor.set_trace(&trace);
    std::unique_ptr<FaultInjector> faults;
    if (config.faults.enabled) {
      faults = std::make_unique<FaultInjector>(config.faults);
      executor.set_fault_injector(faults.get());
    }
    const Status run_status = executor.Run(optimized.statements, executed);
    // The schedule report carries the fault/retry accounting, which
    // callers (and the degradation path) want even when retries ran out.
    report->schedule = executor.schedule();
    REMAC_RETURN_NOT_OK(run_status);
    report->env = executor.env();
    if (!config.trace_path.empty()) {
      REMAC_RETURN_NOT_OK(trace.WriteChromeJson(config.trace_path));
    }
  } else {
    Executor executor(config.cluster, &catalog, ledger,
                      TraitsFor(config.engine));
    executor.set_count_input_partition(config.count_input_partition);
    executor.set_intermediate_store(config.intermediates);
    REMAC_RETURN_NOT_OK(executor.Run(optimized.statements, executed));
    report->env = executor.env();
  }
  execute_span.Stop();
  AuditExecution(optimized, catalog, config, executed, before, *ledger,
                 report);
  return Status::OK();
}

Result<RunReport> RunScript(const std::string& source,
                            const DataCatalog& catalog,
                            const RunConfig& config) {
  return RunInternal(source, catalog, config, config.execute);
}

Result<RunReport> CompileOnly(const std::string& source,
                              const DataCatalog& catalog,
                              const RunConfig& config) {
  return RunInternal(source, catalog, config, /*execute=*/false);
}

}  // namespace remac
