#ifndef REMAC_COST_COST_MODEL_H_
#define REMAC_COST_COST_MODEL_H_

#include <functional>
#include <map>
#include <string>

#include "cluster/cluster_model.h"
#include "common/status.h"
#include "distributed/distributed_ops.h"
#include "plan/plan_builder.h"
#include "plan/plan_node.h"
#include "sparsity/estimator.h"

namespace remac {

/// Statistics plus physical placement of a (sub)result.
struct CostedStats {
  NodeStats stats;
  bool distributed = false;
  double seconds = 0.0;  // cost of producing this result
};

/// Variable environment for costing: name -> statistics of the variable's
/// current value (leaves of plan trees reference these).
struct VarStats {
  std::map<std::string, CostedStats> vars;

  bool Contains(const std::string& name) const {
    return vars.count(name) > 0;
  }
};

/// \brief The ReMac cost model (paper Section 4.2).
///
/// c_O = compute_O + transmit_O, with compute_O = w_flop * FLOP_O and
/// transmit_O = sum over primitives of w_pr * D_pr. The FLOP counts and
/// transmission volumes come from the same OpCosting functions the
/// simulated runtime books, parameterized by the chosen sparsity
/// estimator; the optimizer and the engine therefore agree on what an
/// operator costs up to estimation error.
class CostModel {
 public:
  /// Resolves a kBlockRef node to the stats of the chosen block plan
  /// (wired up by the cost graph when costing skeletons).
  using BlockResolver = std::function<Result<CostedStats>(int block_id)>;

  CostModel(const ClusterModel& model, const SparsityEstimator* estimator,
            const DataCatalog* catalog);

  const ClusterModel& cluster() const { return model_; }
  const SparsityEstimator& estimator() const { return *estimator_; }

  /// Stats of a dataset leaf (read("name")), with placement by size.
  Result<CostedStats> DatasetStats(const std::string& name) const;

  /// Costs one multiplication given operand stats; returns result stats
  /// with its placement and the operator's seconds.
  CostedStats MultiplyCost(const CostedStats& a, const CostedStats& b) const;

  /// Prices one multiplication when the output sparsity is already known
  /// (e.g., from cached interval statistics) — skips the estimator, which
  /// makes the chain DP O(1) per split candidate.
  double MultiplySeconds(const CostedStats& a, const CostedStats& b,
                         double sp_out) const;

  /// Costs one element-wise operator (kAdd/kSub/kMul/kDiv), handling
  /// scalar broadcast.
  CostedStats ElementwiseCost(PlanOp op, const CostedStats& a,
                              const CostedStats& b) const;

  /// Costs a transpose.
  CostedStats TransposeCost(const CostedStats& a) const;

  /// Recursively costs a full plan tree under `vars`. `resolver` may be
  /// null when the tree contains no kBlockRef nodes.
  Result<CostedStats> CostTree(const PlanNode& node, const VarStats& vars,
                               const BlockResolver& resolver = nullptr) const;

 private:
  ClusterModel model_;
  const SparsityEstimator* estimator_;
  const DataCatalog* catalog_;
};

/// Propagates statistics through a compiled program to obtain the
/// steady-state stats of every variable (loop bodies are swept
/// `loop_sweeps` times so loop-carried variables like an inverse-Hessian
/// approximation reach their dense steady state). Also returns stats for
/// datasets referenced via read().
Result<VarStats> PropagateProgramStats(const CompiledProgram& program,
                                       const DataCatalog& catalog,
                                       const CostModel& cost_model,
                                       int loop_sweeps = 2);

/// Stamps every kMatMul node of `program` with the physical layout the
/// cost model selects for it (PlanNode::layout: local / BMM / CPMM /
/// SUMMA-2D), pricing operands at their steady-state statistics and
/// mirroring the executor's transpose fusion. Advisory plan metadata for
/// reporting (`remac run --stats`); execution re-derives the same
/// decision from actual statistics, and nodes whose operand statistics
/// cannot be derived keep kUnset.
Status AnnotateMultiplyLayouts(CompiledProgram* program,
                               const DataCatalog& catalog,
                               const CostModel& cost_model);

}  // namespace remac

#endif  // REMAC_COST_COST_MODEL_H_
