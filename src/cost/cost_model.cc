#include "cost/cost_model.h"

#include <cmath>

#include "cost/physical_model.h"

namespace remac {

namespace {

MatInfo ToMatInfo(const CostedStats& s) {
  MatInfo info;
  info.rows = s.stats.rows;
  info.cols = s.stats.cols;
  info.sparsity = s.stats.sparsity;
  info.distributed = s.distributed;
  return info;
}

bool ScalarLike(const NodeStats& s) { return s.rows == 1 && s.cols == 1; }

}  // namespace

CostModel::CostModel(const ClusterModel& model,
                     const SparsityEstimator* estimator,
                     const DataCatalog* catalog)
    : model_(model), estimator_(estimator), catalog_(catalog) {}

Result<CostedStats> CostModel::DatasetStats(const std::string& name) const {
  if (catalog_ == nullptr) {
    return Status::Internal("cost model has no catalog");
  }
  REMAC_ASSIGN_OR_RETURN(const MatrixStats stats, catalog_->Stats(name));
  CostedStats out;
  out.stats = estimator_->LeafStats(name, stats);
  // Input datasets live distributed (the executor's read() contract:
  // they are the cluster-scale payloads).
  out.distributed = true;
  out.seconds = 0.0;
  return out;
}

CostedStats CostModel::MultiplyCost(const CostedStats& a,
                                    const CostedStats& b) const {
  CostedStats out;
  out.stats = estimator_->Multiply(a.stats, b.stats);
  const OpCosting costing = SelectMultiplyCosting(
      ToMatInfo(a), ToMatInfo(b), out.stats.sparsity, model_);
  out.distributed = costing.result_distributed;
  out.seconds = costing.Seconds(model_);
  return out;
}

double CostModel::MultiplySeconds(const CostedStats& a, const CostedStats& b,
                                  double sp_out) const {
  const OpCosting costing =
      SelectMultiplyCosting(ToMatInfo(a), ToMatInfo(b), sp_out, model_);
  return costing.Seconds(model_);
}

CostedStats CostModel::ElementwiseCost(PlanOp op, const CostedStats& a,
                                       const CostedStats& b) const {
  CostedStats out;
  const bool a_scalar = ScalarLike(a.stats);
  const bool b_scalar = ScalarLike(b.stats);
  if (a_scalar && !b_scalar) {
    out.stats = estimator_->ScalarBroadcast(op, b.stats);
    const OpCosting costing = CostScalarOp(ToMatInfo(b), model_);
    out.distributed = costing.result_distributed;
    out.seconds = costing.Seconds(model_);
    return out;
  }
  if (b_scalar && !a_scalar) {
    out.stats = estimator_->ScalarBroadcast(op, a.stats);
    const OpCosting costing = CostScalarOp(ToMatInfo(a), model_);
    out.distributed = costing.result_distributed;
    out.seconds = costing.Seconds(model_);
    return out;
  }
  if (a_scalar && b_scalar) {
    out.stats.rows = 1;
    out.stats.cols = 1;
    out.stats.sparsity = 1.0;
    return out;
  }
  out.stats = estimator_->Elementwise(op, a.stats, b.stats);
  const OpCosting costing = remac::CostElementwise(
      ToMatInfo(a), ToMatInfo(b), out.stats.sparsity, model_);
  out.distributed = costing.result_distributed;
  out.seconds = costing.Seconds(model_);
  return out;
}

CostedStats CostModel::TransposeCost(const CostedStats& a) const {
  CostedStats out;
  out.stats = estimator_->Transpose(a.stats);
  const OpCosting costing = remac::CostTranspose(ToMatInfo(a), model_);
  out.distributed = costing.result_distributed;
  out.seconds = costing.Seconds(model_);
  return out;
}

Result<CostedStats> CostModel::CostTree(const PlanNode& node,
                                        const VarStats& vars,
                                        const BlockResolver& resolver) const {
  switch (node.op) {
    case PlanOp::kInput: {
      auto it = vars.vars.find(node.name);
      if (it == vars.vars.end()) {
        return Status::NotFound("no stats for variable '" + node.name + "'");
      }
      CostedStats out = it->second;
      out.seconds = 0.0;  // referencing a variable is free
      return out;
    }
    case PlanOp::kReadData:
      return DatasetStats(node.name);
    case PlanOp::kConst: {
      CostedStats out;
      out.stats.rows = 1;
      out.stats.cols = 1;
      out.stats.sparsity = node.value != 0.0 ? 1.0 : 0.0;
      return out;
    }
    case PlanOp::kBlockRef: {
      if (!resolver) {
        return Status::Internal("kBlockRef costed without a resolver");
      }
      return resolver(static_cast<int>(node.value));
    }
    case PlanOp::kMatMul: {
      REMAC_ASSIGN_OR_RETURN(const CostedStats a,
                             CostTree(*node.children[0], vars, resolver));
      REMAC_ASSIGN_OR_RETURN(const CostedStats b,
                             CostTree(*node.children[1], vars, resolver));
      CostedStats out = MultiplyCost(a, b);
      out.seconds += a.seconds + b.seconds;
      return out;
    }
    case PlanOp::kAdd:
    case PlanOp::kSub:
    case PlanOp::kMul:
    case PlanOp::kDiv:
    case PlanOp::kMin:
    case PlanOp::kMax: {
      REMAC_ASSIGN_OR_RETURN(const CostedStats a,
                             CostTree(*node.children[0], vars, resolver));
      REMAC_ASSIGN_OR_RETURN(const CostedStats b,
                             CostTree(*node.children[1], vars, resolver));
      CostedStats out = ElementwiseCost(node.op, a, b);
      out.seconds += a.seconds + b.seconds;
      return out;
    }
    case PlanOp::kTranspose: {
      REMAC_ASSIGN_OR_RETURN(const CostedStats a,
                             CostTree(*node.children[0], vars, resolver));
      CostedStats out = TransposeCost(a);
      out.seconds += a.seconds;
      return out;
    }
    case PlanOp::kSum:
    case PlanOp::kNorm:
    case PlanOp::kTrace: {
      REMAC_ASSIGN_OR_RETURN(const CostedStats a,
                             CostTree(*node.children[0], vars, resolver));
      CostedStats out;
      out.stats.rows = 1;
      out.stats.cols = 1;
      out.stats.sparsity = 1.0;
      out.seconds = a.seconds + a.stats.Nnz() * model_.WFlop();
      return out;
    }
    case PlanOp::kSqrt:
    case PlanOp::kAbs: {
      REMAC_ASSIGN_OR_RETURN(CostedStats a,
                             CostTree(*node.children[0], vars, resolver));
      a.seconds += a.stats.Nnz() * model_.WFlop();
      return a;
    }
    case PlanOp::kExp:
    case PlanOp::kLog: {
      REMAC_ASSIGN_OR_RETURN(CostedStats a,
                             CostTree(*node.children[0], vars, resolver));
      // exp(0) = 1: the result densifies; log keeps the pattern (safe
      // log over the non-zeros).
      if (node.op == PlanOp::kExp) a.stats.sparsity = 1.0;
      a.stats.sketch.reset();
      a.stats.pattern.reset();
      a.seconds += a.stats.rows * a.stats.cols * model_.WFlop();
      return a;
    }
    case PlanOp::kRowSums:
    case PlanOp::kColSums: {
      REMAC_ASSIGN_OR_RETURN(const CostedStats a,
                             CostTree(*node.children[0], vars, resolver));
      CostedStats out;
      out.stats.rows = node.op == PlanOp::kRowSums ? a.stats.rows : 1;
      out.stats.cols = node.op == PlanOp::kColSums ? a.stats.cols : 1;
      out.stats.sparsity = std::min(1.0, a.stats.sparsity *
                                             (node.op == PlanOp::kRowSums
                                                  ? a.stats.cols
                                                  : a.stats.rows));
      out.distributed = IsDistributedSize(
          MatrixBytes(out.stats.rows, out.stats.cols, out.stats.sparsity),
          model_);
      out.seconds = a.seconds + a.stats.Nnz() * model_.WFlop();
      return out;
    }
    case PlanOp::kDiag: {
      REMAC_ASSIGN_OR_RETURN(const CostedStats a,
                             CostTree(*node.children[0], vars, resolver));
      CostedStats out;
      if (a.stats.cols == 1) {
        out.stats.rows = a.stats.rows;
        out.stats.cols = a.stats.rows;
        out.stats.sparsity =
            a.stats.rows > 0 ? a.stats.sparsity / a.stats.rows : 0.0;
      } else {
        out.stats.rows = a.stats.rows;
        out.stats.cols = 1;
        out.stats.sparsity = std::min(1.0, a.stats.sparsity * a.stats.cols);
      }
      out.seconds =
          a.seconds + std::min(a.stats.rows, a.stats.cols) * model_.WFlop();
      return out;
    }
    case PlanOp::kLess:
    case PlanOp::kGreater:
    case PlanOp::kLessEq:
    case PlanOp::kGreaterEq:
    case PlanOp::kEqual:
    case PlanOp::kNotEqual: {
      REMAC_ASSIGN_OR_RETURN(const CostedStats a,
                             CostTree(*node.children[0], vars, resolver));
      REMAC_ASSIGN_OR_RETURN(const CostedStats b,
                             CostTree(*node.children[1], vars, resolver));
      CostedStats out;
      out.stats.rows = 1;
      out.stats.cols = 1;
      out.stats.sparsity = 1.0;
      out.seconds = a.seconds + b.seconds;
      return out;
    }
    case PlanOp::kEye:
    case PlanOp::kZeros:
    case PlanOp::kOnes:
    case PlanOp::kRand: {
      CostedStats out;
      out.stats = estimator_->GeneratorStats(node.op, node.shape.rows,
                                             node.shape.cols);
      const double bytes =
          MatrixBytes(out.stats.rows, out.stats.cols, out.stats.sparsity);
      out.distributed = IsDistributedSize(bytes, model_);
      out.seconds = out.stats.Nnz() * model_.WLocalFlop();
      return out;
    }
    case PlanOp::kNcol:
    case PlanOp::kNrow: {
      CostedStats out;
      out.stats.rows = 1;
      out.stats.cols = 1;
      return out;
    }
  }
  return Status::Internal("unhandled op in CostTree");
}

namespace {

MultiplyLayout LayoutOf(MultiplyMethod method) {
  switch (method) {
    case MultiplyMethod::kLocalOp:
      return MultiplyLayout::kLocal;
    case MultiplyMethod::kBmm:
      return MultiplyLayout::kBmm1D;
    case MultiplyMethod::kCpmm:
      return MultiplyLayout::kCpmm1D;
    case MultiplyMethod::kSumma2D:
      return MultiplyLayout::kSumma2D;
  }
  return MultiplyLayout::kUnset;
}

void AnnotateNode(PlanNode* node, const VarStats& vars,
                  const CostModel& cost_model) {
  for (const PlanNodePtr& child : node->children) {
    AnnotateNode(child.get(), vars, cost_model);
  }
  if (node->op != PlanOp::kMatMul) return;
  // Mirror the executor's transpose fusion so the stamp prices the fused
  // operands the runtime actually multiplies.
  const PlanNode* lhs = node->children[0].get();
  const PlanNode* rhs = node->children[1].get();
  const bool lt = lhs->op == PlanOp::kTranspose &&
                  !lhs->children[0]->shape.ScalarLike();
  const bool rt = rhs->op == PlanOp::kTranspose &&
                  !rhs->children[0]->shape.ScalarLike();
  const Result<CostedStats> a =
      cost_model.CostTree(lt ? *lhs->children[0] : *lhs, vars);
  const Result<CostedStats> b =
      cost_model.CostTree(rt ? *rhs->children[0] : *rhs, vars);
  if (!a.ok() || !b.ok()) return;  // stays kUnset
  const SparsityEstimator& estimator = cost_model.estimator();
  const NodeStats ea =
      lt ? estimator.Transpose(a.value().stats) : a.value().stats;
  const NodeStats eb =
      rt ? estimator.Transpose(b.value().stats) : b.value().stats;
  const NodeStats out = estimator.Multiply(ea, eb);
  CostedStats ca = a.value();
  ca.stats = ea;
  CostedStats cb = b.value();
  cb.stats = eb;
  const OpCosting costing = SelectMultiplyCosting(
      ToMatInfo(ca), ToMatInfo(cb), out.sparsity, cost_model.cluster());
  node->layout = LayoutOf(costing.method);
}

}  // namespace

Status AnnotateMultiplyLayouts(CompiledProgram* program,
                               const DataCatalog& catalog,
                               const CostModel& cost_model) {
  REMAC_ASSIGN_OR_RETURN(
      const VarStats vars,
      PropagateProgramStats(*program, catalog, cost_model));
  std::function<void(std::vector<CompiledStmt>&)> walk =
      [&](std::vector<CompiledStmt>& stmts) {
        for (CompiledStmt& stmt : stmts) {
          if (stmt.kind == CompiledStmt::Kind::kAssign) {
            if (stmt.plan) AnnotateNode(stmt.plan.get(), vars, cost_model);
            continue;
          }
          if (stmt.condition) {
            AnnotateNode(stmt.condition.get(), vars, cost_model);
          }
          walk(stmt.body);
        }
      };
  walk(program->statements);
  return Status::OK();
}

Result<VarStats> PropagateProgramStats(const CompiledProgram& program,
                                       const DataCatalog& catalog,
                                       const CostModel& cost_model,
                                       int loop_sweeps) {
  (void)catalog;
  VarStats vars;
  std::function<Status(const std::vector<CompiledStmt>&)> sweep =
      [&](const std::vector<CompiledStmt>& stmts) -> Status {
    for (const auto& stmt : stmts) {
      if (stmt.kind == CompiledStmt::Kind::kAssign) {
        auto costed = cost_model.CostTree(*stmt.plan, vars);
        if (!costed.ok()) return costed.status();
        CostedStats value = std::move(costed).value();
        value.seconds = 0.0;
        vars.vars.insert_or_assign(stmt.target, std::move(value));
      } else {
        if (!stmt.loop_var.empty()) {
          CostedStats counter;
          counter.stats.rows = 1;
          counter.stats.cols = 1;
          vars.vars.insert_or_assign(stmt.loop_var, counter);
        }
        for (int pass = 0; pass < loop_sweeps; ++pass) {
          REMAC_RETURN_NOT_OK(sweep(stmt.body));
        }
      }
    }
    return Status::OK();
  };
  REMAC_RETURN_NOT_OK(sweep(program.statements));
  return vars;
}

}  // namespace remac
