#ifndef REMAC_COST_PHYSICAL_MODEL_H_
#define REMAC_COST_PHYSICAL_MODEL_H_

#include <algorithm>
#include <cstdint>

#include "matrix/storage_format.h"

namespace remac {

/// Pure size/FLOP formulas shared by the optimizer's cost model and the
/// runtime's simulated-time accounting, so estimated and booked costs are
/// computed with the same physical model (paper Section 4.2).

/// FLOP count of multiplying (rows_a x cols_a, sparsity sp_a) by
/// (cols_a x cols_b, sparsity sp_b): 3 * R_U * C_U * C_V * S_U * S_V
/// (2 for multiply-add, 1 for aggregation; paper Equation 4 discussion).
inline double MultiplyFlops(double rows_a, double cols_a, double cols_b,
                            double sp_a, double sp_b) {
  return 3.0 * rows_a * cols_a * cols_b * sp_a * sp_b;
}

/// FLOP count of an element-wise binary operator over the non-zeros.
inline double ElementwiseFlops(double rows, double cols, double sp_out) {
  return rows * cols * std::min(1.0, sp_out);
}

/// Serialized size of a matrix given its sparsity, applying the format
/// rule: dense when sp > kDenseFormatThreshold; otherwise CSR with size
/// alpha*sp + beta (values 8B + column index 4B per non-zero, 8B row
/// pointer per row).
inline double MatrixBytes(double rows, double cols, double sp) {
  sp = std::clamp(sp, 0.0, 1.0);
  if (sp > kDenseFormatThreshold) return rows * cols * 8.0;
  const double alpha = rows * cols * (8.0 + 4.0);
  const double beta = rows * 8.0 + 16.0;
  return alpha * sp + beta;
}

/// Number of block rows/cols for a dimension under a given block size.
inline int64_t NumBlocks(int64_t dim, int64_t block_size) {
  if (dim <= 0) return 0;
  return (dim + block_size - 1) / block_size;
}

}  // namespace remac

#endif  // REMAC_COST_PHYSICAL_MODEL_H_
