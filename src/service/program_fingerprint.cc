#include "service/program_fingerprint.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/string_util.h"
#include "lang/parser.h"
#include "matrix/matrix.h"

namespace remac {

namespace {

/// Renders statements/expressions with identifiers alpha-renamed in
/// order of first appearance, collecting read("...") dataset names.
class Canonicalizer {
 public:
  std::string Render(const Program& program) {
    std::string out;
    for (const auto& stmt : program.statements) RenderStmt(*stmt, &out);
    return out;
  }

  std::vector<std::string> TakeDatasets() { return std::move(datasets_); }

 private:
  const std::string& NameFor(const std::string& ident) {
    auto it = names_.find(ident);
    if (it == names_.end()) {
      it = names_.emplace(ident, "$" + std::to_string(names_.size())).first;
    }
    return it->second;
  }

  void RenderExpr(const Expr& expr, std::string* out) {
    switch (expr.kind) {
      case ExprKind::kIdentifier:
        *out += NameFor(expr.name);
        return;
      case ExprKind::kNumber:
        *out += StringFormat("%.17g", expr.number);
        return;
      case ExprKind::kString:
        *out += '"';
        *out += expr.name;
        *out += '"';
        return;
      case ExprKind::kCall: {
        if (expr.name == "read" && expr.children.size() == 1 &&
            expr.children[0]->kind == ExprKind::kString) {
          const std::string& ds = expr.children[0]->name;
          if (std::find(datasets_.begin(), datasets_.end(), ds) ==
              datasets_.end()) {
            datasets_.push_back(ds);
          }
        }
        *out += expr.name;
        *out += '(';
        for (size_t i = 0; i < expr.children.size(); ++i) {
          if (i > 0) *out += ',';
          RenderExpr(*expr.children[i], out);
        }
        *out += ')';
        return;
      }
      case ExprKind::kBinary:
        *out += '(';
        RenderExpr(*expr.children[0], out);
        *out += BinaryOpName(expr.op);
        RenderExpr(*expr.children[1], out);
        *out += ')';
        return;
      case ExprKind::kUnaryMinus:
        *out += "(-";
        RenderExpr(*expr.children[0], out);
        *out += ')';
        return;
    }
  }

  void RenderStmt(const Stmt& stmt, std::string* out) {
    switch (stmt.kind) {
      case StmtKind::kAssign:
        *out += NameFor(stmt.target);
        *out += '=';
        RenderExpr(*stmt.value, out);
        *out += ";";
        return;
      case StmtKind::kWhile:
        *out += "while(";
        RenderExpr(*stmt.condition, out);
        *out += "){";
        for (const auto& s : stmt.body) RenderStmt(*s, out);
        *out += '}';
        return;
      case StmtKind::kFor:
        *out += "for(";
        *out += NameFor(stmt.loop_var);
        *out += " in ";
        RenderExpr(*stmt.range_begin, out);
        *out += ':';
        RenderExpr(*stmt.range_end, out);
        *out += "){";
        for (const auto& s : stmt.body) RenderStmt(*s, out);
        *out += '}';
        return;
    }
  }

  std::map<std::string, std::string> names_;
  std::vector<std::string> datasets_;
};

}  // namespace

uint64_t Fnv1a64(std::string_view bytes) {
  uint64_t hash = 1469598103934665603ULL;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

ProgramFingerprint FingerprintProgram(const Program& program) {
  Canonicalizer canon;
  ProgramFingerprint fp;
  fp.canonical = canon.Render(program);
  fp.datasets = canon.TakeDatasets();
  fp.hash = Fnv1a64(fp.canonical);
  return fp;
}

Result<ProgramFingerprint> FingerprintScript(std::string_view source) {
  REMAC_ASSIGN_OR_RETURN(const Program program, ParseProgram(source));
  return FingerprintProgram(program);
}

int SparsityBucket(double sparsity) {
  if (sparsity >= kDenseFormatThreshold) return 0;  // dense regime
  if (sparsity <= 1e-12) return -100;               // (near-)empty
  return static_cast<int>(std::floor(2.0 * std::log10(sparsity)));
}

Result<std::string> DatasetMetadataFragment(const std::string& name,
                                            const DataCatalog& catalog) {
  REMAC_ASSIGN_OR_RETURN(const MatrixStats stats, catalog.Stats(name));
  return StringFormat("%s=%lldx%lld,%s,b%d;", name.c_str(),
                      static_cast<long long>(stats.rows),
                      static_cast<long long>(stats.cols),
                      stats.rows == stats.cols ? "sq" : "rc",
                      SparsityBucket(stats.sparsity));
}

Result<std::string> InputMetadataKey(const std::vector<std::string>& datasets,
                                     const DataCatalog& catalog) {
  std::string key;
  for (const std::string& name : datasets) {
    REMAC_ASSIGN_OR_RETURN(const std::string fragment,
                           DatasetMetadataFragment(name, catalog));
    key += fragment;
  }
  return key;
}

}  // namespace remac
