#include "service/plan_cache.h"

#include <algorithm>
#include <functional>

#include "obs/metrics.h"

namespace remac {

namespace {

/// Global mirrors of the per-instance cache counters (instances are the
/// exact per-cache view; these aggregate across every cache).
struct CacheMetrics {
  Counter* hits =
      MetricsRegistry::Global().GetCounter("remac.plancache.hits");
  Counter* misses =
      MetricsRegistry::Global().GetCounter("remac.plancache.misses");
  Counter* evictions =
      MetricsRegistry::Global().GetCounter("remac.plancache.evictions");
  Counter* invalidations =
      MetricsRegistry::Global().GetCounter("remac.plancache.invalidations");
  Gauge* entries =
      MetricsRegistry::Global().GetGauge("remac.plancache.entries");
};

CacheMetrics& Metrics() {
  static CacheMetrics metrics;
  return metrics;
}

}  // namespace

PlanCache::PlanCache(size_t capacity, int shards)
    : capacity_(std::max<size_t>(capacity, 1)) {
  const size_t n = std::clamp<size_t>(shards <= 0 ? 1 : shards, 1, capacity_);
  shards_.reserve(n);
  const size_t base = capacity_ / n;
  const size_t rem = capacity_ % n;
  for (size_t i = 0; i < n; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->capacity = base + (i < rem ? 1 : 0);
    shards_.push_back(std::move(shard));
  }
}

PlanCache::Shard& PlanCache::ShardFor(const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

std::shared_ptr<const CachedPlan> PlanCache::Get(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    Metrics().misses->Add();
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  Metrics().hits->Add();
  return it->second->plan;
}

void PlanCache::EvictLocked(Shard* shard) {
  while (shard->lru.size() > shard->capacity) {
    // Sample the tail (up to 3 LRU entries) and drop the cheapest to
    // rebuild — cost-aware LRU.
    auto victim = std::prev(shard->lru.end());
    auto candidate = victim;
    for (int probe = 1; probe < 3; ++probe) {
      if (candidate == shard->lru.begin()) break;
      candidate = std::prev(candidate);
      // Never consider the MRU entry — it is the one just inserted.
      if (candidate == shard->lru.begin()) break;
      if (candidate->plan->build_wall_seconds <
          victim->plan->build_wall_seconds) {
        victim = candidate;
      }
    }
    shard->index.erase(victim->key);
    shard->lru.erase(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    Metrics().evictions->Add();
    Metrics().entries->Add(-1.0);
  }
}

void PlanCache::Put(const std::string& key,
                    std::shared_ptr<const CachedPlan> plan) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->plan = std::move(plan);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{key, std::move(plan)});
  shard.index[key] = shard.lru.begin();
  Metrics().entries->Add(1.0);
  EvictLocked(&shard);
}

bool PlanCache::Erase(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) return false;
  shard.lru.erase(it->second);
  shard.index.erase(it);
  Metrics().entries->Add(-1.0);
  return true;
}

int PlanCache::ErasePlansForProgram(uint64_t program_hash) {
  int dropped = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto it = shard->lru.begin(); it != shard->lru.end();) {
      if (it->plan->program_hash == program_hash) {
        shard->index.erase(it->key);
        it = shard->lru.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
  }
  invalidations_.fetch_add(dropped, std::memory_order_relaxed);
  Metrics().invalidations->Add(dropped);
  Metrics().entries->Add(-static_cast<double>(dropped));
  return dropped;
}

PlanCacheStats PlanCache::stats() const {
  PlanCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.invalidations = invalidations_.load(std::memory_order_relaxed);
  stats.entries = static_cast<int64_t>(size());
  return stats;
}

size_t PlanCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->lru.size();
  }
  return total;
}

}  // namespace remac
