#include "service/plan_cache.h"

#include <algorithm>
#include <functional>

#include "obs/metrics.h"
#include "obs/trace_context.h"

namespace remac {

namespace {

/// Global mirrors of the per-instance cache counters (instances are the
/// exact per-cache view; these aggregate across every cache).
struct CacheMetrics {
  /// Contended shard-lock wait (TimedMutexLock; only observed while
  /// contention profiling is on).
  Histogram* lock_wait = MetricsRegistry::Global().GetHistogram(
      "remac.contention.plancache_lock_seconds");
  Counter* hits =
      MetricsRegistry::Global().GetCounter("remac.plancache.hits");
  Counter* misses =
      MetricsRegistry::Global().GetCounter("remac.plancache.misses");
  Counter* evictions =
      MetricsRegistry::Global().GetCounter("remac.plancache.evictions");
  Counter* invalidations =
      MetricsRegistry::Global().GetCounter("remac.plancache.invalidations");
  Gauge* entries =
      MetricsRegistry::Global().GetGauge("remac.plancache.entries");
  Gauge* resident_bytes =
      MetricsRegistry::Global().GetGauge("remac.plancache.resident_bytes");
};

CacheMetrics& Metrics() {
  static CacheMetrics metrics;
  return metrics;
}

int64_t ProgramNodeCount(const std::vector<CompiledStmt>& statements) {
  int64_t nodes = 0;
  for (const CompiledStmt& stmt : statements) {
    if (stmt.plan != nullptr) nodes += CountNodes(*stmt.plan);
    if (stmt.condition != nullptr) nodes += CountNodes(*stmt.condition);
    nodes += ProgramNodeCount(stmt.body);
  }
  return nodes;
}

}  // namespace

int64_t CachedPlan::EstimateResidentBytes() const {
  int64_t bytes = static_cast<int64_t>(sizeof(CachedPlan));
  bytes += static_cast<int64_t>(optimized_source.size());
  bytes += static_cast<int64_t>(metadata_key.size());
  if (program != nullptr) {
    bytes += ProgramNodeCount(program->statements) *
             static_cast<int64_t>(sizeof(PlanNode));
  }
  if (intermediates != nullptr) {
    for (const SubplanCandidate& candidate : *intermediates) {
      bytes += static_cast<int64_t>(sizeof(SubplanCandidate));
      bytes += static_cast<int64_t>(candidate.window_key.size());
      for (const std::string& name : candidate.datasets) {
        bytes += static_cast<int64_t>(name.size());
      }
    }
  }
  return bytes;
}

PlanCache::PlanCache(size_t capacity, int shards)
    : capacity_(std::max<size_t>(capacity, 1)) {
  const size_t n = std::clamp<size_t>(shards <= 0 ? 1 : shards, 1, capacity_);
  shards_.reserve(n);
  const size_t base = capacity_ / n;
  const size_t rem = capacity_ % n;
  for (size_t i = 0; i < n; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->capacity = base + (i < rem ? 1 : 0);
    shards_.push_back(std::move(shard));
  }
}

PlanCache::Shard& PlanCache::ShardFor(const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

std::shared_ptr<const CachedPlan> PlanCache::Get(const std::string& key) {
  Shard& shard = ShardFor(key);
  TimedMutexLock lock(shard.mu, Metrics().lock_wait, "plancache-lock");
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    Metrics().misses->Add();
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  Metrics().hits->Add();
  return it->second->plan;
}

void PlanCache::EvictLocked(Shard* shard) {
  while (shard->lru.size() > shard->capacity) {
    // Sample the tail (up to 3 LRU entries) and drop the cheapest to
    // rebuild — cost-aware LRU.
    auto victim = std::prev(shard->lru.end());
    auto candidate = victim;
    for (int probe = 1; probe < 3; ++probe) {
      if (candidate == shard->lru.begin()) break;
      candidate = std::prev(candidate);
      // Never consider the MRU entry — it is the one just inserted.
      if (candidate == shard->lru.begin()) break;
      if (candidate->plan->build_wall_seconds <
          victim->plan->build_wall_seconds) {
        victim = candidate;
      }
    }
    DropLocked(shard, victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    Metrics().evictions->Add();
  }
}

std::list<PlanCache::Entry>::iterator PlanCache::DropLocked(
    Shard* shard, std::list<Entry>::iterator it) {
  resident_bytes_.fetch_sub(it->bytes, std::memory_order_relaxed);
  Metrics().entries->Add(-1.0);
  Metrics().resident_bytes->Add(-static_cast<double>(it->bytes));
  shard->index.erase(it->key);
  return shard->lru.erase(it);
}

void PlanCache::Put(const std::string& key,
                    std::shared_ptr<const CachedPlan> plan) {
  const int64_t bytes = plan->resident_bytes > 0
                            ? plan->resident_bytes
                            : plan->EstimateResidentBytes();
  Shard& shard = ShardFor(key);
  TimedMutexLock lock(shard.mu, Metrics().lock_wait, "plancache-lock");
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    resident_bytes_.fetch_add(bytes - it->second->bytes,
                              std::memory_order_relaxed);
    Metrics().resident_bytes->Add(
        static_cast<double>(bytes - it->second->bytes));
    it->second->plan = std::move(plan);
    it->second->bytes = bytes;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{key, std::move(plan), bytes});
  shard.index[key] = shard.lru.begin();
  resident_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  Metrics().entries->Add(1.0);
  Metrics().resident_bytes->Add(static_cast<double>(bytes));
  EvictLocked(&shard);
}

bool PlanCache::Erase(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) return false;
  DropLocked(&shard, it->second);
  return true;
}

int PlanCache::ErasePlansForProgram(uint64_t program_hash) {
  int dropped = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto it = shard->lru.begin(); it != shard->lru.end();) {
      if (it->plan->program_hash == program_hash) {
        it = DropLocked(shard.get(), it);
        ++dropped;
      } else {
        ++it;
      }
    }
  }
  invalidations_.fetch_add(dropped, std::memory_order_relaxed);
  Metrics().invalidations->Add(dropped);
  return dropped;
}

PlanCacheStats PlanCache::stats() const {
  PlanCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.invalidations = invalidations_.load(std::memory_order_relaxed);
  stats.entries = static_cast<int64_t>(size());
  stats.resident_bytes = resident_bytes();
  return stats;
}

size_t PlanCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->lru.size();
  }
  return total;
}

}  // namespace remac
