#ifndef REMAC_SERVICE_PLAN_SERVICE_H_
#define REMAC_SERVICE_PLAN_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "obs/trace_context.h"
#include "runtime/program_runner.h"
#include "sched/thread_pool.h"
#include "service/matcache/exec_context.h"
#include "service/matcache/matcache.h"
#include "service/plan_cache.h"
#include "service/program_fingerprint.h"

namespace remac {

/// One optimize-and-execute request: a script plus the run configuration
/// (optimizer, estimator, engine, scheduler...). Anything that changes
/// the emitted plan is folded into the cache key; the execution-only
/// knobs (scheduler, executed_iterations, trace) are not.
struct ServiceRequest {
  std::string source;
  RunConfig config;
  /// Soft wall-clock budget for the request. When compilation (or queue
  /// time) has already eaten the budget by the time execution starts, the
  /// service degrades the run instead of failing it: serial executor,
  /// faults off, result still exact. 0 disables the deadline.
  double deadline_seconds = 0.0;
};

/// Per-request wall-clock split. On a warm hit parse covers only the
/// source-text lookup and metadata check, and optimize is exactly zero —
/// the acceptance signal that the cached path skips the compiler.
struct RequestTiming {
  double parse_seconds = 0.0;
  double optimize_seconds = 0.0;
  double execute_seconds = 0.0;
  double total_seconds = 0.0;
};

struct ServiceReport {
  RunReport run;
  /// The plan came straight from the cache (no optimizer work at all).
  bool cache_hit = false;
  /// A concurrent request on the same key was already optimizing; this
  /// one blocked on its result instead of duplicating the work.
  bool shared_flight = false;
  std::string cache_key;
  RequestTiming timing;
  /// The request fell back to the serial fault-free executor (deadline
  /// pressure, admission shedding, or a chaos run that ran out of
  /// retries). A degraded response is slower-but-correct, never wrong.
  bool degraded = false;
  /// Why: "deadline", "shed-backlog", "shed-deadline" or
  /// "retries-exhausted".
  std::string degraded_reason;
  /// Admission control shed this request's task-graph path at entry
  /// (backlog or queue-eaten deadline); it still ran — degraded — and
  /// returned the exact result.
  bool shed = false;
  /// This warm hit rode another in-flight identical request's execution
  /// instead of executing the plan itself.
  bool coalesced = false;
  /// This request's materialized-intermediate cache interaction: probes,
  /// hits served without recomputation, flights led and waited on.
  MatRequestStats matcache;
  /// The request's span tree when tracing was enabled (null otherwise).
  /// One rooted tree: span 1 covers the whole request, every other span
  /// names its parent. `remac serve --trace-dir` writes one Chrome-trace
  /// file per request from this.
  std::shared_ptr<RequestTrace> trace;
};

struct ServiceStats {
  PlanCacheStats cache;
  MatCacheStats matcache;
  /// Execution-lane pool (DAG tasks, kernel fan-out).
  PoolStats pool;
  /// Request-lane pool (Session submissions).
  PoolStats request_pool;
  int64_t requests = 0;
  /// Times the optimizer actually ran (single-flight: once per cold key).
  int64_t optimizer_invocations = 0;
  int64_t single_flight_waits = 0;
  int64_t warm_requests = 0;  // served from cache
  int64_t cold_requests = 0;  // optimized (or waited on an optimize)
  int64_t degraded_requests = 0;  // fell back to the serial executor
  int64_t shed_requests = 0;  // degraded by admission control
  int64_t coalesced_requests = 0;  // warm hits served by a shared run
  double warm_seconds = 0.0;  // summed request latency, warm
  double cold_seconds = 0.0;  // summed request latency, cold
};

struct ServiceOptions {
  size_t cache_capacity = 64;
  int cache_shards = 8;
  /// Admission control: a task-graph request is shed (degraded to the
  /// serial fault-free executor, never rejected) when either lane's
  /// backlog reaches `factor * lane size` pending tasks at admission
  /// time — adding DAG fan-out to a saturated pool only deepens the
  /// queue. Queued requests whose wait already ate their deadline are
  /// shed the same way ("shed-deadline"). <= 0 disables the backlog
  /// check (deadline shedding still applies).
  double admission_backlog_factor = 8.0;
  /// Coalesce concurrent identical warm hits: when an identical request
  /// (same cache key + execution knobs) on a deterministic plan is
  /// already executing, followers wait for its result instead of
  /// re-executing. Off by default; pure win for read-heavy hot keys.
  bool coalesce_warm_hits = false;
  /// Materialized-intermediate cache (src/service/matcache): byte
  /// budget (0 disables cross-request intermediate sharing entirely),
  /// shard count, admission threshold and single-flight toggle — see
  /// MatCacheOptions for the semantics of each knob.
  int64_t mat_cache_bytes = 256ll << 20;
  int mat_cache_shards = 8;
  /// Admission FLOP density. Negative (the default) derives the
  /// break-even recompute-vs-serve density from a one-time measurement
  /// (MeasuredAdmitFlopsPerByte); 0 admits everything that fits;
  /// positive values are passed through verbatim.
  double mat_admit_flops_per_byte = -1.0;
  bool mat_single_flight = true;
};

/// \brief Long-lived optimize-and-execute front end with a plan cache.
///
/// Thread-safe: any number of threads (or pool tasks via Session) may
/// call Run concurrently. The flow per request:
///
///   source text ──fast path──> known fingerprint        (no parse)
///        │ first sighting: parse + alpha-renamed AST hash
///        ▼
///   fingerprint + input-metadata bucket + config digest = cache key
///        ▼
///   cache hit? ── yes ──> execute the shared plan        (no optimize)
///        │ no
///        ▼
///   single-flight: first thread optimizes, concurrent requests on the
///   same key block on its result; the plan lands in the LRU cache.
///
/// When a program's input metadata leaves its previous bucket (dims or
/// sparsity bucket changed under the same catalog names), every cached
/// plan of that program is explicitly invalidated before the miss is
/// processed, so stale plans cannot linger at old keys.
class PlanService {
 public:
  explicit PlanService(const DataCatalog* catalog,
                       ServiceOptions options = {});

  PlanService(const PlanService&) = delete;
  PlanService& operator=(const PlanService&) = delete;

  /// Serves one request on the calling thread. Starts a per-request
  /// trace when Tracer::Global() is enabled.
  Result<ServiceReport> Run(const ServiceRequest& request);

  /// Run under a caller-provided trace (null = untraced). Session uses
  /// this to start the trace at submission time, so the root span also
  /// covers the queue wait before the request reached a worker.
  Result<ServiceReport> RunTraced(const ServiceRequest& request,
                                  std::shared_ptr<RequestTrace> trace);

  ServiceStats stats() const;
  PlanCache& cache() { return cache_; }
  MatCache& mat_cache() { return mat_cache_; }
  const DataCatalog& catalog() const { return *catalog_; }

  /// \brief A client session: submits requests onto the shared thread
  /// pool and collects the results in submission order.
  class Session {
   public:
    explicit Session(PlanService* service) : service_(service) {}

    /// Enqueues the request on ThreadPool::RequestLane(), stamping its
    /// queue-entry time so admission control can shed requests whose
    /// wait already ate their deadline.
    void Submit(ServiceRequest request);

    /// Blocks until every submitted request finished; returns reports in
    /// submission order and resets the session.
    std::vector<Result<ServiceReport>> Wait();

    size_t submitted() const;

   private:
    PlanService* service_;
    mutable std::mutex mu_;
    std::vector<std::future<Result<ServiceReport>>> pending_;
  };

  Session NewSession() { return Session(this); }

 private:
  /// A cold key being optimized; concurrent requests wait on `cv`.
  struct Flight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Status status = Status::OK();
    std::shared_ptr<const CachedPlan> plan;
  };
  /// An identical warm request currently executing; coalesced followers
  /// wait on `cv` and copy the leader's finished report (Matrix payloads
  /// are shared immutable buffers, so the copy is cheap).
  struct ResultFlight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Status status = Status::OK();
    std::shared_ptr<const ServiceReport> report;
  };
  /// What the source-text fast path remembers about a script: its
  /// canonical identity, so repeat requests skip the parser entirely.
  struct SourceAlias {
    uint64_t program_hash = 0;
    std::vector<std::string> datasets;
  };

  /// RunTraced with the request's queue wait made explicit. Direct Run
  /// calls pass 0 (the caller never queued); Session passes the measured
  /// submit-to-start wait, which admission control counts against the
  /// deadline and backlog checks.
  Result<ServiceReport> RunQueued(const ServiceRequest& request,
                                  std::shared_ptr<RequestTrace> trace,
                                  double queued_seconds);

  /// Builds (parse if needed + optimize) the plan for a cold key.
  Result<std::shared_ptr<const CachedPlan>> BuildPlan(
      const ServiceRequest& request, uint64_t program_hash,
      const std::string& metadata_key, RequestTiming* timing);

  /// Datasets among `names` whose metadata fragment or registration
  /// version changed since last observed; updates the observation and
  /// erases stale materialized intermediates for the changed names.
  void InvalidateChangedDatasets(const std::vector<std::string>& names);

  const DataCatalog* catalog_;
  ServiceOptions options_;
  PlanCache cache_;
  MatCache mat_cache_;

  mutable std::mutex mu_;  // aliases_, last_metadata_, flights_,
                           // dataset_fragments_
  std::unordered_map<std::string, SourceAlias> aliases_;
  std::unordered_map<uint64_t, std::string> last_metadata_;
  std::unordered_map<std::string, std::shared_ptr<Flight>> flights_;
  /// In-flight executions keyed by cache key + execution knobs, the
  /// warm-hit coalescing map (empty unless coalesce_warm_hits).
  std::unordered_map<std::string, std::shared_ptr<ResultFlight>>
      result_flights_;
  /// Last-seen strict fragment (metadata + version) per dataset, the
  /// trigger for dataset-level matcache invalidation.
  std::unordered_map<std::string, std::string> dataset_fragments_;

  std::atomic<int64_t> requests_{0};
  std::atomic<int64_t> optimizer_invocations_{0};
  std::atomic<int64_t> single_flight_waits_{0};
  std::atomic<int64_t> warm_requests_{0};
  std::atomic<int64_t> cold_requests_{0};
  std::atomic<int64_t> degraded_requests_{0};
  std::atomic<int64_t> shed_requests_{0};
  std::atomic<int64_t> coalesced_requests_{0};
  std::atomic<double> warm_seconds_{0.0};
  std::atomic<double> cold_seconds_{0.0};
};

/// Digest of the plan-affecting RunConfig fields (optimizer, estimator,
/// engine, combiner, search, iteration horizon, budgets, forced option
/// keys). Exposed for tests.
std::string PlanConfigDigest(const RunConfig& config);

}  // namespace remac

#endif  // REMAC_SERVICE_PLAN_SERVICE_H_
