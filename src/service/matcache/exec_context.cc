#include "service/matcache/exec_context.h"

#include <utility>

#include "obs/trace_context.h"
#include "sched/thread_pool.h"

namespace remac {

MatExecContext::MatExecContext(
    MatCache* cache,
    std::shared_ptr<const std::vector<SubplanCandidate>> candidates,
    const DataCatalog& catalog, const RunConfig& config)
    : cache_(cache), candidates_(std::move(candidates)) {
  const std::string env_digest = ExecEnvDigest(config);
  std::unordered_map<std::string, KeyState*> by_key;
  for (const SubplanCandidate& candidate : *candidates_) {
    Result<std::string> key =
        IntermediateCacheKey(candidate, catalog, env_digest);
    if (!key.ok()) continue;  // dataset left the catalog: don't cache
    auto it = by_key.find(key.value());
    if (it != by_key.end()) {
      // Another node of this plan computes the same key; share its
      // resolution instead of joining the flight twice.
      by_node_.emplace(candidate.node.get(), it->second);
      continue;
    }
    auto state = std::make_unique<KeyState>();
    state->key = std::move(key).value();
    state->candidate = &candidate;
    ++stats_.probes;
    state->served = cache_->Get(state->key);
    if (state->served != nullptr) {
      ++stats_.hits;
      cache_->RecordFlopsSaved(candidate.predicted_flops);
    } else {
      auto [flight, leader] = cache_->JoinFlight(state->key);
      if (leader) {
        // With single-flight disabled JoinFlight reports everyone as a
        // flightless leader: still compute-and-admit, just with nobody
        // to publish to (CompleteFlight is a no-op without a flight).
        state->leader = true;
        if (flight != nullptr) {
          leads_any_ = true;
          ++stats_.flights_led;
        }
      } else {
        state->follower = true;
        state->flight = std::move(flight);
      }
    }
    by_key.emplace(state->key, state.get());
    by_node_.emplace(candidate.node.get(), state.get());
    states_.push_back(std::move(state));
  }
}

MatExecContext::~MatExecContext() {
  // A led flight nobody offered to (failed request, loop that exited
  // before reaching the node) would strand its followers; cancel wakes
  // them to compute locally.
  for (const auto& state : states_) {
    if (state->leader && !state->completed) {
      cache_->CancelFlight(state->key);
    }
  }
}

const RtValue* MatExecContext::ServedLocked(const KeyState& state) const {
  if (state.served != nullptr) return &state.served->value;
  if (state.local != nullptr) return state.local.get();
  return nullptr;
}

const RtValue* MatExecContext::Lookup(const PlanNode* node) {
  auto it = by_node_.find(node);
  if (it == by_node_.end()) return nullptr;
  KeyState* state = it->second;

  std::shared_ptr<MatCache::Flight> flight;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (const RtValue* served = ServedLocked(*state)) return served;
    if (!state->follower) return nullptr;  // leader or local: compute
    if (leads_any_) {
      // Leader-never-waits: a context that owes results to followers
      // elsewhere must not block on another leader (two leaders waiting
      // on each other's keys would deadlock). Compute this one locally.
      return nullptr;
    }
    flight = state->flight;
  }

  // Pure waiter: block on the leader's result, helping drain its own
  // lane meanwhile so a fleet of waiting sessions cannot starve the
  // leader's nested tasks.
  const double wait_start_us = TraceNowMicros();
  if (ThreadPool* self = ThreadPool::CurrentPool(); self != nullptr) {
    while (true) {
      {
        std::unique_lock<std::mutex> lock(flight->mu);
        if (flight->done) break;
      }
      if (!self->TryRunOne()) break;
    }
  }
  std::shared_ptr<const MaterializedIntermediate> served =
      cache_->WaitFlight(flight.get());
  const double wait_end_us = TraceNowMicros();
  cache_->RecordFlightWait((wait_end_us - wait_start_us) * 1e-6);
  RecordWaitSpan("matcache-flight-wait", wait_start_us, wait_end_us);

  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.flight_waits;
  state->follower = false;  // resolved either way; never wait again
  state->flight.reset();
  if (served == nullptr) return nullptr;  // cancelled: compute locally
  state->served = std::move(served);
  cache_->RecordFlopsSaved(state->candidate->predicted_flops);
  return &state->served->value;
}

void MatExecContext::Offer(const PlanNode* node, const RtValue& value) {
  auto it = by_node_.find(node);
  if (it == by_node_.end()) return;
  KeyState* state = it->second;

  bool complete_flight = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (ServedLocked(*state) != nullptr) return;  // already resolved
    if (state->leader && !state->completed) {
      state->completed = true;
      complete_flight = true;
    } else if (state->leader) {
      return;  // already offered; nothing to do
    } else {
      // Computed locally (a leader elsewhere owns the flight, or it was
      // cancelled): keep a copy so loop iterations and sibling nodes of
      // this request are still served without recomputing.
      state->local = std::make_shared<const RtValue>(value);
      return;
    }
  }

  // Leader path: admission + publication outside mu_ (cache locks and
  // follower wakeups don't need the context lock).
  std::shared_ptr<const MaterializedIntermediate> entry = cache_->Offer(
      state->key, value, state->candidate->predicted_flops,
      state->candidate->datasets);
  cache_->CompleteFlight(state->key, entry);
  std::lock_guard<std::mutex> lock(mu_);
  state->served = std::move(entry);
}

MatRequestStats MatExecContext::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace remac
