#include "service/matcache/intermediate_key.h"

#include <algorithm>
#include <memory>
#include <set>
#include <utility>

#include "baselines/engine_modes.h"
#include "common/string_util.h"
#include "obs/cost_audit.h"
#include "plan/chain.h"
#include "plan/rewriter.h"
#include "service/program_fingerprint.h"

namespace remac {

namespace {

/// True when every leaf under `node` is a catalog read (or a constant)
/// and every interior node is a multiply, transpose, or fused elementwise
/// region — the subtree's value depends on nothing but registered
/// datasets. Generators stay out: rand() depends on the deterministic
/// stream position, and eye/ones/zeros chains are cheaper to rebuild than
/// to cache. A bare constant is not itself pure (nothing to cache); it
/// only keeps a fused region pure as a scalar-broadcast operand.
bool IsPureReadSubtree(const PlanNode& node) {
  switch (node.op) {
    case PlanOp::kReadData:
      return true;
    case PlanOp::kTranspose:
      return IsPureReadSubtree(*node.children[0]);
    case PlanOp::kMatMul:
      return IsPureReadSubtree(*node.children[0]) &&
             IsPureReadSubtree(*node.children[1]);
    case PlanOp::kFusedMap:
      for (const PlanNodePtr& child : node.children) {
        if (child->op != PlanOp::kConst && !IsPureReadSubtree(*child)) {
          return false;
        }
      }
      return true;
    default:
      return false;
  }
}

void CollectReadNames(const PlanNode& node, std::set<std::string>* out) {
  if (node.op == PlanOp::kReadData) out->insert(node.name);
  for (const PlanNodePtr& child : node.children) {
    CollectReadNames(*child, out);
  }
}

/// Collects maximal pure subtree roots, unwrapping transpose roots down
/// to the first multiply (see SubplanCandidate's doc for why).
void CollectRoots(const PlanNodePtr& node, std::vector<PlanNodePtr>* roots) {
  if (node == nullptr) return;
  if (IsPureReadSubtree(*node)) {
    PlanNodePtr root = node;
    while (root->op == PlanOp::kTranspose) root = root->children[0];
    if (root->op == PlanOp::kMatMul || root->op == PlanOp::kFusedMap) {
      roots->push_back(root);
    }
    return;  // children are part of the captured subtree
  }
  for (const PlanNodePtr& child : node->children) {
    CollectRoots(child, roots);
  }
}

void CollectFromStatements(const std::vector<CompiledStmt>& statements,
                           std::vector<PlanNodePtr>* roots) {
  for (const CompiledStmt& stmt : statements) {
    if (stmt.kind == CompiledStmt::Kind::kAssign) {
      CollectRoots(stmt.plan, roots);
    } else {
      CollectRoots(stmt.condition, roots);
      CollectFromStatements(stmt.body, roots);
    }
  }
}

/// Canonical chain key of a pure subtree: normalize (transpose push-down
/// + folding), decompose, and take the whole-block WindowKey. A pure
/// multiply chain decomposes into exactly one block; anything else falls
/// back to the normalized rendering, which is still canonical across
/// transpose placements.
std::string CanonicalWindowKey(const PlanNodePtr& node) {
  if (node->op == PlanOp::kFusedMap) {
    // A fused region's rendering embeds the canonical tape string
    // ("M,S|t0=sub(i0,i1);...") plus the input renderings — already a
    // stable cross-process key; the chain normalizer does not apply.
    return node->ToString();
  }
  PlanNodePtr normalized = NormalizeForSearch(node->Clone());
  Result<Decomposition> decomposed = DecomposeIntoBlocks(normalized);
  if (decomposed.ok() && decomposed.value().blocks.size() == 1) {
    const Block& block = decomposed.value().blocks[0];
    return WindowKey(block, 0, block.factors.size());
  }
  return normalized->ToString();
}

}  // namespace

std::vector<SubplanCandidate> ExtractIntermediateCandidates(
    const CompiledProgram& program, const DataCatalog& catalog,
    const RunConfig& config) {
  std::vector<PlanNodePtr> roots;
  CollectFromStatements(program.statements, &roots);

  const std::unique_ptr<SparsityEstimator> estimator =
      MakeEstimator(config.estimator, &catalog);
  const EngineTraits traits = TraitsFor(config.engine);

  std::vector<SubplanCandidate> candidates;
  candidates.reserve(roots.size());
  for (PlanNodePtr& root : roots) {
    SubplanCandidate candidate;
    candidate.window_key = CanonicalWindowKey(root);
    candidate.structural_digest = Fnv1a64(root->ToString());

    std::set<std::string> reads;
    CollectReadNames(*root, &reads);
    candidate.datasets.assign(reads.begin(), reads.end());

    // Recompute cost: the audit walker over a one-statement program
    // computing exactly this subtree. Prediction failures leave 0 —
    // a strict admission knob then rejects the entry, which errs toward
    // not caching rather than caching blindly.
    CompiledProgram wrapper;
    CompiledStmt stmt;
    stmt.kind = CompiledStmt::Kind::kAssign;
    stmt.target = "__matcache";
    stmt.plan = root;
    wrapper.statements.push_back(std::move(stmt));
    Result<PredictedCost> predicted =
        PredictProgramCost(wrapper, catalog, *estimator, config.cluster,
                           traits, /*loop_iterations=*/1);
    if (predicted.ok()) {
      candidate.predicted_flops = predicted.value().TotalFlops();
    }

    candidate.node = std::move(root);
    candidates.push_back(std::move(candidate));
  }
  return candidates;
}

std::string ExecEnvDigest(const RunConfig& config) {
  return StringFormat("g%d,w%d,bs%lld", static_cast<int>(config.engine),
                      config.cluster.num_workers,
                      static_cast<long long>(config.cluster.block_size));
}

Result<std::string> IntermediateCacheKey(const SubplanCandidate& candidate,
                                         const DataCatalog& catalog,
                                         const std::string& env_digest) {
  std::string key = candidate.window_key;
  key += StringFormat("|%016llx|", static_cast<unsigned long long>(
                                       candidate.structural_digest));
  for (const std::string& name : candidate.datasets) {
    REMAC_ASSIGN_OR_RETURN(const std::string fragment,
                           DatasetMetadataFragment(name, catalog));
    key += fragment;
    key += StringFormat("v%lld;",
                        static_cast<long long>(catalog.Version(name)));
  }
  key += '|';
  key += env_digest;
  return key;
}

}  // namespace remac
