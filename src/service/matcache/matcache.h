#ifndef REMAC_SERVICE_MATCACHE_MATCACHE_H_
#define REMAC_SERVICE_MATCACHE_MATCACHE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "runtime/executor.h"

namespace remac {

/// \brief One materialized sub-plan result held by the matcache.
///
/// Immutable once inserted. Served requests pin the entry with a
/// shared_ptr, so eviction never invalidates a value an in-flight
/// execution is reading.
struct MaterializedIntermediate {
  RtValue value;
  /// Exact resident footprint of the value (Matrix::BytesUsed), the
  /// cache's byte-budget currency.
  int64_t bytes = 0;
  /// Predicted FLOPs to recompute the sub-plan — the benefit side of
  /// admission and eviction scoring.
  double predicted_flops = 0.0;
  /// Datasets the sub-plan reads; dataset-level invalidation drops every
  /// entry whose set intersects the changed names.
  std::vector<std::string> datasets;
  /// Times this entry was served (relaxed; eviction scoring only).
  mutable std::atomic<int64_t> hits{0};
};

struct MatCacheOptions {
  /// Total byte budget across shards. 0 disables the cache entirely
  /// (every Get misses, every Admit rejects).
  int64_t capacity_bytes = 256ll << 20;
  int shards = 8;
  /// Admission threshold: admit a computed value only when
  ///   predicted_flops * observed_probes(key) >=
  ///       admit_flops_per_byte * bytes.
  /// Probes count every Get for the key (a ghost-frequency map), so an
  /// intermediate nobody asked for twice must be proportionally cheap
  /// per byte to earn residency. 0 admits everything that fits;
  /// MeasuredAdmitFlopsPerByte() derives a machine-specific default.
  double admit_flops_per_byte = 0.0;
  /// Single-flight: concurrent misses on one key compute once, the rest
  /// wait for the leader's result (see MatExecContext).
  bool single_flight = true;
};

struct MatCacheStats {
  int64_t probes = 0;
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t admits = 0;
  int64_t rejects = 0;
  int64_t evictions = 0;
  int64_t invalidations = 0;
  int64_t flight_waits = 0;
  int64_t entries = 0;
  int64_t resident_bytes = 0;
  /// Predicted FLOPs of every served hit — the recompute work the cache
  /// eliminated across requests.
  double flops_saved = 0.0;
};

/// \brief Sharded, byte-bounded, cost-aware cache of materialized
/// sub-plan results (the cross-request redundancy store).
///
/// Keys are opaque strings built by IntermediateCacheKey. Eviction is
/// benefit-aware LRU like the plan cache: when a shard overflows its
/// byte budget, the least valuable of the few least-recently-used
/// entries — scored by predicted recompute FLOPs, amortized hit count
/// and footprint — is dropped first.
///
/// Single-flight bookkeeping lives here too (JoinFlight / WaitFlight /
/// CompleteFlight / CancelFlight) so concurrent sessions missing on the
/// same key compute the value once; the per-request leader/follower
/// protocol is in exec_context.cc.
class MatCache {
 public:
  explicit MatCache(MatCacheOptions options = {});

  MatCache(const MatCache&) = delete;
  MatCache& operator=(const MatCache&) = delete;

  /// A computed value published to single-flight followers. `served`
  /// stays null when the leader was cancelled before offering; followers
  /// then recompute locally.
  struct Flight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    std::shared_ptr<const MaterializedIntermediate> served;
  };

  /// Returns the entry (promoting and pinning it) or null. Every call
  /// counts a probe into the ghost-frequency map the admission policy
  /// reads, whether or not the key is resident.
  std::shared_ptr<const MaterializedIntermediate> Get(const std::string& key);

  /// Offers a computed value. Applies the admission policy; admitted
  /// values are inserted (evicting while over budget) and returned,
  /// rejected values are wrapped and returned without insertion — the
  /// caller still publishes them to single-flight followers. Oversized
  /// values (larger than their shard's budget) are always rejected.
  std::shared_ptr<const MaterializedIntermediate> Offer(
      const std::string& key, RtValue value, double predicted_flops,
      std::vector<std::string> datasets);

  /// Drops every entry reading any of `names` (metadata or content of a
  /// dataset changed). Returns the number dropped.
  int EraseDatasets(const std::vector<std::string>& names);

  /// Joins the single-flight for `key`: returns {flight, true} when this
  /// caller is the first (the leader, expected to compute and
  /// CompleteFlight) and {flight, false} for followers. With
  /// single_flight disabled, returns {nullptr, true} — everyone
  /// computes.
  std::pair<std::shared_ptr<Flight>, bool> JoinFlight(const std::string& key);

  /// Publishes the leader's value (post-admission entry) and wakes
  /// followers.
  void CompleteFlight(const std::string& key,
                      std::shared_ptr<const MaterializedIntermediate> served);

  /// Cancels a flight whose leader will never offer (request failed or
  /// finished without evaluating the node — e.g. an early loop exit).
  /// Followers wake and compute locally.
  void CancelFlight(const std::string& key);

  /// Blocks until `flight` completes; returns the served entry or null
  /// if the flight was cancelled. Callers on the shared pool should help
  /// drain it while waiting (exec_context.cc does).
  std::shared_ptr<const MaterializedIntermediate> WaitFlight(Flight* flight);

  /// Counts one flight wait (kept here so stats stay in one place); a
  /// non-negative duration is also observed into the
  /// remac.matcache.flight_wait_seconds histogram.
  void RecordFlightWait(double wait_seconds = -1.0);
  /// Credits a served hit's predicted recompute cost to flops_saved.
  void RecordFlopsSaved(double flops);

  MatCacheStats stats() const;
  int64_t resident_bytes() const;
  size_t size() const;
  const MatCacheOptions& options() const { return options_; }

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const MaterializedIntermediate> value;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
    int64_t capacity_bytes = 0;
    int64_t resident_bytes = 0;
  };

  Shard& ShardFor(const std::string& key);
  void EvictLocked(Shard* shard);
  /// Removes the entry at `it` from `shard` (locked by the caller),
  /// keeping byte accounting and gauges consistent.
  std::list<Entry>::iterator RemoveLocked(Shard* shard,
                                          std::list<Entry>::iterator it);
  int64_t ProbeCount(const std::string& key);

  MatCacheOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::mutex flights_mu_;
  std::unordered_map<std::string, std::shared_ptr<Flight>> flights_;

  /// Ghost frequency: probes per key, including misses, bounded by
  /// dropping ~half the map when it outgrows kMaxGhostKeys.
  static constexpr size_t kMaxGhostKeys = 4096;
  std::mutex ghost_mu_;
  std::unordered_map<std::string, int64_t> ghost_probes_;

  mutable std::atomic<int64_t> probes_{0};
  mutable std::atomic<int64_t> hits_{0};
  mutable std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> admits_{0};
  std::atomic<int64_t> rejects_{0};
  std::atomic<int64_t> evictions_{0};
  std::atomic<int64_t> invalidations_{0};
  std::atomic<int64_t> flight_waits_{0};
  std::atomic<double> flops_saved_{0.0};
};

/// Derives a machine-specific admission threshold for
/// MatCacheOptions::admit_flops_per_byte: the break-even FLOP density at
/// which recomputing an intermediate takes as long as copying it out of
/// the cache. Measured once per process (a tiny naive GEMM for
/// flops/sec, a memcpy sweep for bytes/sec) and clamped to [0.05, 64] so
/// a noisy timing sample cannot produce an absurd knob. Entries below
/// the returned density are faster to recompute than to serve, so
/// caching them only burns budget.
double MeasuredAdmitFlopsPerByte();

}  // namespace remac

#endif  // REMAC_SERVICE_MATCACHE_MATCACHE_H_
