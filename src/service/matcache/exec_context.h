#ifndef REMAC_SERVICE_MATCACHE_EXEC_CONTEXT_H_
#define REMAC_SERVICE_MATCACHE_EXEC_CONTEXT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "plan/plan_builder.h"
#include "runtime/executor.h"
#include "runtime/program_runner.h"
#include "service/matcache/intermediate_key.h"
#include "service/matcache/matcache.h"

namespace remac {

/// Per-request matcache accounting, surfaced on ServiceReport.
struct MatRequestStats {
  int64_t probes = 0;        // candidate keys probed against the cache
  int64_t hits = 0;          // served straight from a resident entry
  int64_t flights_led = 0;   // cold keys this request computes for everyone
  int64_t flight_waits = 0;  // cold keys served by another request's leader
};

/// \brief One request's view of the materialized-intermediate cache.
///
/// Constructed per execution from the plan's extracted candidates; probes
/// every candidate key against the cache up front (pinning hits so
/// eviction cannot invalidate a value mid-execution) and joins the
/// single-flight for misses. Plugged into the executor as its
/// IntermediateStore:
///
///   Lookup  — serves pinned hits by node pointer; single-flight
///             followers block on the leader's result here (helping
///             drain the shared pool while they wait, the plan-service
///             idiom). A context that leads any flight never waits — a
///             leader blocking on another leader could deadlock in a
///             cycle, so leaders compute follower misses locally.
///   Offer   — a led key's first computed value completes its flight
///             (publishing to waiting followers even when the admission
///             policy rejects residency) and goes through cache
///             admission. Every resolved key also serves later
///             evaluations of the same node (loop iterations) and any
///             other candidate node sharing the key in this request.
///
/// The destructor cancels flights this context led but never offered
/// (failed or short-circuited executions), waking followers to compute
/// locally. Thread-safe: the task-graph scheduler calls both hooks from
/// concurrent per-task executors.
class MatExecContext : public IntermediateStore {
 public:
  /// `candidates` is the plan's shared candidate list (kept alive for
  /// the context's lifetime); keys are built against the catalog's
  /// current dataset metadata and versions, so a stale plan entry simply
  /// probes keys nobody populates.
  MatExecContext(
      MatCache* cache,
      std::shared_ptr<const std::vector<SubplanCandidate>> candidates,
      const DataCatalog& catalog, const RunConfig& config);

  MatExecContext(const MatExecContext&) = delete;
  MatExecContext& operator=(const MatExecContext&) = delete;

  ~MatExecContext() override;

  const RtValue* Lookup(const PlanNode* node) override;
  void Offer(const PlanNode* node, const RtValue& value) override;

  MatRequestStats stats() const;

 private:
  /// Shared resolution state of one cache key (several candidate nodes
  /// of one plan may share a key — intra-request sharing for free).
  struct KeyState {
    std::string key;
    const SubplanCandidate* candidate = nullptr;
    bool leader = false;
    bool follower = false;   // cleared after the flight resolves
    bool completed = false;  // led flight was completed (or cancelled)
    std::shared_ptr<MatCache::Flight> flight;  // followers only
    /// Pinned cache entry (probe hit, leader offer, or flight result).
    std::shared_ptr<const MaterializedIntermediate> served;
    /// Locally computed value when no cache entry applies (cancelled
    /// flight or non-leading recompute); still serves loop iterations.
    std::shared_ptr<const RtValue> local;
  };

  /// The servable value of `state`, or null. Caller holds mu_.
  const RtValue* ServedLocked(const KeyState& state) const;

  MatCache* cache_;
  std::shared_ptr<const std::vector<SubplanCandidate>> candidates_;

  /// Immutable after construction; KeyState contents are guarded by mu_.
  std::unordered_map<const PlanNode*, KeyState*> by_node_;
  std::vector<std::unique_ptr<KeyState>> states_;

  bool leads_any_ = false;
  mutable std::mutex mu_;
  MatRequestStats stats_;
};

}  // namespace remac

#endif  // REMAC_SERVICE_MATCACHE_EXEC_CONTEXT_H_
