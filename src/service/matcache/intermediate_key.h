#ifndef REMAC_SERVICE_MATCACHE_INTERMEDIATE_KEY_H_
#define REMAC_SERVICE_MATCACHE_INTERMEDIATE_KEY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "plan/plan_builder.h"
#include "runtime/program_runner.h"

namespace remac {

/// \brief A cacheable sub-plan of an optimized program.
///
/// Candidates are the maximal pure-read subtrees: every leaf is a
/// read("...") of a catalog dataset (or a constant inside a fused
/// region) and every interior node is a matrix multiply, transpose, or
/// fused elementwise region (kFusedMap). Such a subtree's value is a
/// pure function of the referenced datasets, so it can be shared across
/// requests — and across *programs* — that compute the same chain over
/// the same data (the cross-request analogue of the paper's common
/// subexpression elimination). The candidate root is always a kMatMul or
/// kFusedMap node: the executor fuses t() children into the parent
/// multiply and never evaluates the fused transpose node itself, so a
/// transpose root would never be observed at runtime.
struct SubplanCandidate {
  /// The candidate root inside the (shared, immutable) plan tree. The
  /// runtime store matches executor callbacks against this pointer.
  PlanNodePtr node;
  /// Canonical chain key of the subtree (plan/chain.h WindowKey over the
  /// normalized factor sequence): unifies a chain with its transpose for
  /// grouping and observability. Falls back to the normalized rendering
  /// for subtrees the decomposition cannot split into a single block.
  std::string window_key;
  /// FNV-1a 64 of the exact subtree rendering. Two different
  /// parenthesizations of one chain share a window key but compute
  /// bitwise-different floats; the structural digest keeps them apart so
  /// a cache hit is always bitwise-identical to recomputing this exact
  /// tree. Cross-program sharing still works because the optimizer
  /// canonicalizes equal chains to equal parenthesizations.
  uint64_t structural_digest = 0;
  /// Datasets the subtree reads (sorted, unique) — the invalidation set.
  std::vector<std::string> datasets;
  /// Predicted FLOPs to recompute the subtree (obs/cost_audit walker on
  /// a one-statement wrapper program), the admission policy's benefit
  /// side. 0 when prediction failed.
  double predicted_flops = 0.0;
};

/// Extracts every maximal pure-read multiply subtree from `program`
/// (assignments, loop bodies and loop conditions), with recompute costs
/// predicted under the request's estimator/cluster/engine. Runs once per
/// plan build; the result is stored on the cached plan and shared by all
/// requests executing it.
std::vector<SubplanCandidate> ExtractIntermediateCandidates(
    const CompiledProgram& program, const DataCatalog& catalog,
    const RunConfig& config);

/// Digest of the execution-environment knobs that can change the bits a
/// candidate evaluates to: the engine personality (pbdR/SciDB force
/// dense storage) and the cluster geometry the blocked kernels chunk by
/// (summation order). Cost-only knobs (bandwidths, FLOP rates) stay out
/// so cached intermediates shared across cost configurations.
std::string ExecEnvDigest(const RunConfig& config);

/// The full cache key of one candidate under the current catalog state:
///   window_key | structural digest | per-dataset metadata fragment +
///   registration version | exec-environment digest.
/// The version term makes keys of superseded data unreachable even when
/// re-registered data lands in the same dimensions and sparsity bucket.
/// Errors if a referenced dataset is missing from the catalog.
Result<std::string> IntermediateCacheKey(const SubplanCandidate& candidate,
                                         const DataCatalog& catalog,
                                         const std::string& env_digest);

}  // namespace remac

#endif  // REMAC_SERVICE_MATCACHE_INTERMEDIATE_KEY_H_
