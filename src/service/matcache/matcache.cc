#include "service/matcache/matcache.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <functional>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace_context.h"

namespace remac {

namespace {

/// Global mirrors of the per-instance counters (instances are the exact
/// per-cache view; these aggregate across every cache).
struct MatCacheMetrics {
  /// Contended shard-lock wait (TimedMutexLock; only observed while
  /// contention profiling is on).
  Histogram* lock_wait = MetricsRegistry::Global().GetHistogram(
      "remac.contention.matcache_lock_seconds");
  /// How long single-flight followers actually blocked on a leader
  /// (always observed — the wait itself dwarfs the clock reads).
  Histogram* flight_wait_seconds = MetricsRegistry::Global().GetHistogram(
      "remac.matcache.flight_wait_seconds");
  Counter* probes =
      MetricsRegistry::Global().GetCounter("remac.matcache.probes");
  Counter* hits = MetricsRegistry::Global().GetCounter("remac.matcache.hits");
  Counter* misses =
      MetricsRegistry::Global().GetCounter("remac.matcache.misses");
  Counter* admits =
      MetricsRegistry::Global().GetCounter("remac.matcache.admits");
  Counter* rejects =
      MetricsRegistry::Global().GetCounter("remac.matcache.rejects");
  Counter* evictions =
      MetricsRegistry::Global().GetCounter("remac.matcache.evictions");
  Counter* invalidations =
      MetricsRegistry::Global().GetCounter("remac.matcache.invalidations");
  Counter* flight_waits =
      MetricsRegistry::Global().GetCounter("remac.matcache.flight_waits");
  Gauge* entries =
      MetricsRegistry::Global().GetGauge("remac.matcache.entries");
  Gauge* resident_bytes =
      MetricsRegistry::Global().GetGauge("remac.matcache.resident_bytes");
  Gauge* flops_saved =
      MetricsRegistry::Global().GetGauge("remac.matcache.flops_saved");
};

MatCacheMetrics& Metrics() {
  static MatCacheMetrics metrics;
  return metrics;
}

void AtomicAdd(std::atomic<double>* target, double delta) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}

/// Eviction score: recompute cost saved per resident byte, scaled by
/// observed hits. Lowest score goes first.
double BenefitScore(const MaterializedIntermediate& entry) {
  const double bytes =
      static_cast<double>(std::max<int64_t>(entry.bytes, 1));
  const double uses =
      1.0 +
      static_cast<double>(entry.hits.load(std::memory_order_relaxed));
  return entry.predicted_flops * uses / bytes;
}

}  // namespace

MatCache::MatCache(MatCacheOptions options) : options_(options) {
  Metrics();  // register the remac.matcache.* family up front
  const int64_t capacity = std::max<int64_t>(options_.capacity_bytes, 0);
  const size_t n = static_cast<size_t>(
      std::clamp<int>(options_.shards <= 0 ? 1 : options_.shards, 1, 64));
  shards_.reserve(n);
  const int64_t base = capacity / static_cast<int64_t>(n);
  const int64_t rem = capacity % static_cast<int64_t>(n);
  for (size_t i = 0; i < n; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->capacity_bytes =
        base + (static_cast<int64_t>(i) < rem ? 1 : 0);
    shards_.push_back(std::move(shard));
  }
}

MatCache::Shard& MatCache::ShardFor(const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

int64_t MatCache::ProbeCount(const std::string& key) {
  std::lock_guard<std::mutex> lock(ghost_mu_);
  if (ghost_probes_.size() > kMaxGhostKeys) {
    // Halve by dropping the low-frequency tail; exactness does not
    // matter, the map only biases admission toward re-requested keys.
    for (auto it = ghost_probes_.begin(); it != ghost_probes_.end();) {
      it = it->second <= 1 ? ghost_probes_.erase(it) : std::next(it);
    }
  }
  return ++ghost_probes_[key];
}

std::shared_ptr<const MaterializedIntermediate> MatCache::Get(
    const std::string& key) {
  probes_.fetch_add(1, std::memory_order_relaxed);
  Metrics().probes->Add();
  ProbeCount(key);
  Shard& shard = ShardFor(key);
  TimedMutexLock lock(shard.mu, Metrics().lock_wait, "matcache-lock");
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    Metrics().misses->Add();
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  Metrics().hits->Add();
  it->second->value->hits.fetch_add(1, std::memory_order_relaxed);
  return it->second->value;
}

std::list<MatCache::Entry>::iterator MatCache::RemoveLocked(
    Shard* shard, std::list<Entry>::iterator it) {
  shard->resident_bytes -= it->value->bytes;
  Metrics().entries->Add(-1.0);
  Metrics().resident_bytes->Add(-static_cast<double>(it->value->bytes));
  shard->index.erase(it->key);
  return shard->lru.erase(it);
}

void MatCache::EvictLocked(Shard* shard) {
  while (shard->resident_bytes > shard->capacity_bytes &&
         !shard->lru.empty()) {
    // Sample the tail (up to 3 LRU entries, never the just-inserted MRU)
    // and drop the lowest benefit — cost-aware LRU like the plan cache.
    auto victim = std::prev(shard->lru.end());
    auto candidate = victim;
    for (int probe = 1; probe < 3; ++probe) {
      if (candidate == shard->lru.begin()) break;
      candidate = std::prev(candidate);
      if (candidate == shard->lru.begin()) break;
      if (BenefitScore(*candidate->value) < BenefitScore(*victim->value)) {
        victim = candidate;
      }
    }
    RemoveLocked(shard, victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    Metrics().evictions->Add();
  }
}

std::shared_ptr<const MaterializedIntermediate> MatCache::Offer(
    const std::string& key, RtValue value, double predicted_flops,
    std::vector<std::string> datasets) {
  auto entry = std::make_shared<MaterializedIntermediate>();
  entry->bytes = value.is_scalar
                     ? static_cast<int64_t>(sizeof(double))
                     : value.matrix.BytesUsed();
  entry->value = std::move(value);
  entry->predicted_flops = predicted_flops;
  entry->datasets = std::move(datasets);

  Shard& shard = ShardFor(key);
  const bool fits =
      entry->bytes <= shard.capacity_bytes && options_.capacity_bytes > 0;
  bool admit = fits;
  if (admit && options_.admit_flops_per_byte > 0.0) {
    // Cost-aware admission: the predicted recompute work, amortized over
    // how often this key has actually been asked for, must clear the
    // per-byte bar. First-probe entries thus need to be FLOP-dense;
    // re-requested ones earn residency at lower density.
    int64_t observed = 0;
    {
      std::lock_guard<std::mutex> lock(ghost_mu_);
      auto it = ghost_probes_.find(key);
      observed = it == ghost_probes_.end() ? 1 : it->second;
    }
    admit = entry->predicted_flops * static_cast<double>(observed) >=
            options_.admit_flops_per_byte *
                static_cast<double>(std::max<int64_t>(entry->bytes, 1));
  }
  if (!admit) {
    rejects_.fetch_add(1, std::memory_order_relaxed);
    Metrics().rejects->Add();
    return entry;  // still published to followers, just not resident
  }

  TimedMutexLock lock(shard.mu, Metrics().lock_wait, "matcache-lock");
  auto it = shard.index.find(key);
  if (it != shard.index.end()) RemoveLocked(&shard, it->second);
  shard.lru.push_front(Entry{key, entry});
  shard.index[key] = shard.lru.begin();
  shard.resident_bytes += entry->bytes;
  admits_.fetch_add(1, std::memory_order_relaxed);
  Metrics().admits->Add();
  Metrics().entries->Add(1.0);
  Metrics().resident_bytes->Add(static_cast<double>(entry->bytes));
  EvictLocked(&shard);
  return entry;
}

int MatCache::EraseDatasets(const std::vector<std::string>& names) {
  int dropped = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto it = shard->lru.begin(); it != shard->lru.end();) {
      const bool stale = std::any_of(
          it->value->datasets.begin(), it->value->datasets.end(),
          [&](const std::string& ds) {
            return std::find(names.begin(), names.end(), ds) != names.end();
          });
      if (stale) {
        it = RemoveLocked(shard.get(), it);
        ++dropped;
      } else {
        ++it;
      }
    }
  }
  invalidations_.fetch_add(dropped, std::memory_order_relaxed);
  Metrics().invalidations->Add(dropped);
  return dropped;
}

std::pair<std::shared_ptr<MatCache::Flight>, bool> MatCache::JoinFlight(
    const std::string& key) {
  if (!options_.single_flight) return {nullptr, true};
  std::lock_guard<std::mutex> lock(flights_mu_);
  auto it = flights_.find(key);
  if (it != flights_.end()) return {it->second, false};
  auto flight = std::make_shared<Flight>();
  flights_.emplace(key, flight);
  return {flight, true};
}

void MatCache::CompleteFlight(
    const std::string& key,
    std::shared_ptr<const MaterializedIntermediate> served) {
  std::shared_ptr<Flight> flight;
  {
    std::lock_guard<std::mutex> lock(flights_mu_);
    auto it = flights_.find(key);
    if (it == flights_.end()) return;
    flight = it->second;
    flights_.erase(it);
  }
  {
    std::lock_guard<std::mutex> lock(flight->mu);
    flight->done = true;
    flight->served = std::move(served);
  }
  flight->cv.notify_all();
}

void MatCache::CancelFlight(const std::string& key) {
  CompleteFlight(key, nullptr);
}

std::shared_ptr<const MaterializedIntermediate> MatCache::WaitFlight(
    Flight* flight) {
  std::unique_lock<std::mutex> lock(flight->mu);
  flight->cv.wait(lock, [&] { return flight->done; });
  return flight->served;
}

void MatCache::RecordFlightWait(double wait_seconds) {
  flight_waits_.fetch_add(1, std::memory_order_relaxed);
  Metrics().flight_waits->Add();
  if (wait_seconds >= 0.0) {
    Metrics().flight_wait_seconds->Observe(wait_seconds);
  }
}

void MatCache::RecordFlopsSaved(double flops) {
  AtomicAdd(&flops_saved_, flops);
  Metrics().flops_saved->Add(flops);
}

MatCacheStats MatCache::stats() const {
  MatCacheStats stats;
  stats.probes = probes_.load(std::memory_order_relaxed);
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.admits = admits_.load(std::memory_order_relaxed);
  stats.rejects = rejects_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.invalidations = invalidations_.load(std::memory_order_relaxed);
  stats.flight_waits = flight_waits_.load(std::memory_order_relaxed);
  stats.entries = static_cast<int64_t>(size());
  stats.resident_bytes = resident_bytes();
  stats.flops_saved = flops_saved_.load(std::memory_order_relaxed);
  return stats;
}

int64_t MatCache::resident_bytes() const {
  int64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->resident_bytes;
  }
  return total;
}

size_t MatCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->lru.size();
  }
  return total;
}

double MeasuredAdmitFlopsPerByte() {
  static const double measured = [] {
    using Clock = std::chrono::steady_clock;
    // Compute side: a naive n^3 GEMM small enough to stay in cache, so
    // the sample reflects arithmetic throughput rather than memory
    // stalls (an upper bound on recompute speed keeps the threshold
    // conservative: borderline entries stay cached).
    constexpr int n = 96;
    std::vector<double> a(n * n, 1.0), b(n * n, 0.5), c(n * n, 0.0);
    const auto gemm_start = Clock::now();
    for (int i = 0; i < n; ++i) {
      for (int k = 0; k < n; ++k) {
        const double aik = a[i * n + k];
        for (int j = 0; j < n; ++j) c[i * n + j] += aik * b[k * n + j];
      }
    }
    const double gemm_seconds =
        std::chrono::duration<double>(Clock::now() - gemm_start).count();
    // Keep the result observable so the loop cannot be optimized away.
    volatile double sink = c[0] + c[n * n - 1];
    (void)sink;
    const double flops_per_sec =
        2.0 * n * n * n / std::max(gemm_seconds, 1e-9);

    // Serve side: a memcpy sweep large enough to spill cache, modelling
    // what a matcache hit actually costs (copying the value out).
    constexpr size_t kCopyBytes = size_t{8} << 20;
    constexpr int kCopyReps = 4;
    std::vector<char> src(kCopyBytes, 1), dst(kCopyBytes, 0);
    const auto copy_start = Clock::now();
    for (int rep = 0; rep < kCopyReps; ++rep) {
      std::memcpy(dst.data(), src.data(), kCopyBytes);
      src[0] = dst[kCopyBytes - 1];  // serialize the reps
    }
    const double copy_seconds =
        std::chrono::duration<double>(Clock::now() - copy_start).count();
    const double bytes_per_sec =
        static_cast<double>(kCopyBytes) * kCopyReps /
        std::max(copy_seconds, 1e-9);

    // Break-even density: recompute time == serve time at exactly
    // flops_per_sec / bytes_per_sec FLOPs per byte.
    return std::clamp(flops_per_sec / bytes_per_sec, 0.05, 64.0);
  }();
  return measured;
}

}  // namespace remac
