#include "service/plan_service.h"

#include <chrono>
#include <utility>

#include "common/string_util.h"
#include "lang/parser.h"
#include "obs/metrics.h"

namespace remac {

namespace {

using Clock = std::chrono::steady_clock;

/// Global mirrors of the per-service request stats (instances keep the
/// exact per-service view; these aggregate across every service).
struct ServiceMetrics {
  Counter* requests =
      MetricsRegistry::Global().GetCounter("remac.service.requests");
  Counter* warm_hits =
      MetricsRegistry::Global().GetCounter("remac.service.warm_hits");
  Counter* cold_misses =
      MetricsRegistry::Global().GetCounter("remac.service.cold_misses");
  Counter* flight_waits =
      MetricsRegistry::Global().GetCounter("remac.service.flight_waits");
  /// How long single-flight followers actually blocked on a leader's
  /// optimize — the duration behind the flight_waits count.
  Histogram* flight_wait_seconds = MetricsRegistry::Global().GetHistogram(
      "remac.service.flight_wait_seconds");
  Histogram* request_seconds = MetricsRegistry::Global().GetHistogram(
      "remac.service.request_seconds");
  Histogram* warm_seconds =
      MetricsRegistry::Global().GetHistogram("remac.service.warm_seconds");
  Histogram* cold_seconds =
      MetricsRegistry::Global().GetHistogram("remac.service.cold_seconds");
  Histogram* build_seconds =
      MetricsRegistry::Global().GetHistogram("remac.service.build_seconds");
  Counter* degraded =
      MetricsRegistry::Global().GetCounter("remac.service.degraded");
  /// Requests shed by admission control (a subset of `degraded`).
  Counter* shed =
      MetricsRegistry::Global().GetCounter("remac.service.shed");
  /// Warm hits served by another request's in-flight execution.
  Counter* coalesced =
      MetricsRegistry::Global().GetCounter("remac.service.coalesced");
};

ServiceMetrics& Metrics() {
  static ServiceMetrics metrics;
  return metrics;
}

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// fetch_add for atomic<double> (pre-C++20-style CAS loop, matching the
/// parallel executor's accumulator idiom).
void AtomicAdd(std::atomic<double>* target, double delta) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}

/// Negative admission knob = "derive from this machine": measure the
/// break-even recompute-vs-serve FLOP density once per process.
double ResolveAdmitFlopsPerByte(double knob) {
  return knob < 0.0 ? MeasuredAdmitFlopsPerByte() : knob;
}

}  // namespace

std::string PlanConfigDigest(const RunConfig& config) {
  std::string digest = StringFormat(
      "o%d,e%d,g%d,c%d,s%d,i%d,tb%lld,eb%lld,w%d,f%.6g,l%.6g,m%lld,bs%lld,"
      "d%d",
      static_cast<int>(config.optimizer), static_cast<int>(config.estimator),
      static_cast<int>(config.engine), static_cast<int>(config.combiner),
      static_cast<int>(config.search), config.max_iterations,
      static_cast<long long>(config.treewise_budget),
      static_cast<long long>(config.enum_budget),
      config.cluster.num_workers, config.cluster.flops_per_sec,
      config.cluster.local_flops_per_sec,
      static_cast<long long>(config.cluster.driver_memory_bytes),
      static_cast<long long>(config.cluster.block_size),
      static_cast<int>(config.cluster.dist2d));
  for (const std::string& key : config.forced_option_keys) {
    digest += '+';
    digest += key;
  }
  return digest;
}

PlanService::PlanService(const DataCatalog* catalog, ServiceOptions options)
    : catalog_(catalog),
      options_(options),
      cache_(options.cache_capacity, options.cache_shards),
      mat_cache_(MatCacheOptions{
          .capacity_bytes = options.mat_cache_bytes,
          .shards = options.mat_cache_shards,
          .admit_flops_per_byte =
              ResolveAdmitFlopsPerByte(options.mat_admit_flops_per_byte),
          .single_flight = options.mat_single_flight,
      }) {}

Result<std::shared_ptr<const CachedPlan>> PlanService::BuildPlan(
    const ServiceRequest& request, uint64_t program_hash,
    const std::string& metadata_key, RequestTiming* timing) {
  const auto parse_start = Clock::now();
  ScopedTraceSpan parse_span("parse");
  REMAC_ASSIGN_OR_RETURN(CompiledProgram compiled,
                         CompileScript(request.source, *catalog_));
  parse_span.Stop();
  const auto optimize_start = Clock::now();
  timing->parse_seconds +=
      std::chrono::duration<double>(optimize_start - parse_start).count();
  optimizer_invocations_.fetch_add(1, std::memory_order_relaxed);
  CachedPlan plan;
  ScopedTraceSpan optimize_span("optimize");
  REMAC_ASSIGN_OR_RETURN(
      CompiledProgram optimized,
      OptimizeCompiled(compiled, *catalog_, request.config, &plan.optimize));
  optimize_span.Stop();
  timing->optimize_seconds += SecondsSince(optimize_start);
  plan.optimized_source = optimized.ToString();
  // Coalescing eligibility, decided once per build: a plan that calls
  // rand() produces a different (seed-streamed) result per execution, so
  // two requests must never share one run of it.
  plan.deterministic =
      plan.optimized_source.find("rand(") == std::string::npos;
  plan.program = std::make_shared<const CompiledProgram>(std::move(optimized));
  if (options_.mat_cache_bytes > 0) {
    // Extract the matcache candidates once per build against the final
    // shared trees: node pointers stay valid for every request that
    // executes this plan.
    plan.intermediates =
        std::make_shared<const std::vector<SubplanCandidate>>(
            ExtractIntermediateCandidates(*plan.program, *catalog_,
                                          request.config));
  }
  plan.build_wall_seconds = SecondsSince(parse_start);
  Metrics().build_seconds->Observe(plan.build_wall_seconds);
  plan.program_hash = program_hash;
  plan.metadata_key = metadata_key;
  plan.resident_bytes = plan.EstimateResidentBytes();
  return std::make_shared<const CachedPlan>(std::move(plan));
}

void PlanService::InvalidateChangedDatasets(
    const std::vector<std::string>& names) {
  // Strict per-dataset fragments: the plan-cache bucket fragment plus
  // the registration version, so re-registered data invalidates even
  // when it lands in the same dimensions and sparsity bucket.
  std::vector<std::pair<std::string, std::string>> observed;
  observed.reserve(names.size());
  for (const std::string& name : names) {
    Result<std::string> fragment = DatasetMetadataFragment(name, *catalog_);
    if (!fragment.ok()) continue;  // missing datasets fail later, loudly
    observed.emplace_back(
        name, fragment.value() + StringFormat("v%lld", static_cast<long long>(
                                                           catalog_->Version(
                                                               name))));
  }
  std::vector<std::string> changed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, fragment] : observed) {
      std::string& last = dataset_fragments_[name];
      if (!last.empty() && last != fragment) changed.push_back(name);
      last = std::move(fragment);
    }
  }
  if (!changed.empty()) mat_cache_.EraseDatasets(changed);
}

Result<ServiceReport> PlanService::Run(const ServiceRequest& request) {
  return RunQueued(request, Tracer::Global().StartRequest(),
                   /*queued_seconds=*/0.0);
}

Result<ServiceReport> PlanService::RunTraced(
    const ServiceRequest& request, std::shared_ptr<RequestTrace> trace) {
  return RunQueued(request, std::move(trace), /*queued_seconds=*/0.0);
}

Result<ServiceReport> PlanService::RunQueued(
    const ServiceRequest& request, std::shared_ptr<RequestTrace> trace,
    double queued_seconds) {
  const auto start = Clock::now();
  requests_.fetch_add(1, std::memory_order_relaxed);
  Metrics().requests->Add();

  // Everything below runs under the request's root context: spans opened
  // here — and in every pool task submitted while it is installed — join
  // this request's tree. Untraced requests skip the swap entirely.
  TraceContextScope root_scope(
      trace != nullptr ? TraceContext{trace, RequestTrace::kRootSpanId}
                       : TraceContext{});

  ServiceReport report;
  report.trace = trace;

  // Identify the program: source-text fast path first, parse once on the
  // first sighting of a script.
  SourceAlias alias;
  bool known = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = aliases_.find(request.source);
    if (it != aliases_.end()) {
      alias = it->second;
      known = true;
    }
  }
  if (!known) {
    ScopedTraceSpan span("fingerprint");
    REMAC_ASSIGN_OR_RETURN(const ProgramFingerprint fp,
                           FingerprintScript(request.source));
    alias.program_hash = fp.hash;
    alias.datasets = fp.datasets;
    std::lock_guard<std::mutex> lock(mu_);
    aliases_.emplace(request.source, alias);
  }

  REMAC_ASSIGN_OR_RETURN(const std::string metadata_key,
                         InputMetadataKey(alias.datasets, *catalog_));

  // Explicit invalidation: the same program seen with metadata outside
  // its previous bucket drops every stale plan of that program.
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::string& last = last_metadata_[alias.program_hash];
    if (!last.empty() && last != metadata_key) {
      cache_.ErasePlansForProgram(alias.program_hash);
    }
    last = metadata_key;
  }
  // Dataset-level invalidation cascade: any referenced dataset whose
  // metadata or registration version moved drops its materialized
  // intermediates before this request probes the matcache.
  InvalidateChangedDatasets(alias.datasets);

  report.cache_key =
      StringFormat("%016llx|", static_cast<unsigned long long>(
                                   alias.program_hash)) +
      metadata_key + "|" + PlanConfigDigest(request.config);
  report.timing.parse_seconds = SecondsSince(start);

  std::shared_ptr<const CachedPlan> plan;
  {
    ScopedTraceSpan span("plancache-probe");
    plan = cache_.Get(report.cache_key);
  }
  report.cache_hit = plan != nullptr;

  if (plan == nullptr) {
    // Single-flight: one thread optimizes a cold key, the rest wait.
    std::shared_ptr<Flight> flight;
    bool leader = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = flights_.find(report.cache_key);
      if (it != flights_.end()) {
        flight = it->second;
      } else {
        // A finishing flight publishes to the cache before removing
        // itself, so a re-probe under this lock closes the window where
        // a request misses the cache, then finds no flight either —
        // without it the optimizer could run twice for one key.
        plan = cache_.Get(report.cache_key);
        if (plan != nullptr) {
          report.cache_hit = true;
        } else {
          flight = std::make_shared<Flight>();
          flights_.emplace(report.cache_key, flight);
          leader = true;
        }
      }
    }
    if (leader) {
      // Children (parse/optimize) nest under the build span.
      ScopedTraceSpan build_span("build-plan", "stage", /*enter=*/true);
      auto built = BuildPlan(request, alias.program_hash, metadata_key,
                             &report.timing);
      build_span.Stop();
      if (built.ok()) {
        plan = std::move(built).value();
        cache_.Put(report.cache_key, plan);
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        flights_.erase(report.cache_key);
      }
      {
        std::lock_guard<std::mutex> lock(flight->mu);
        flight->done = true;
        if (built.ok()) {
          flight->plan = plan;
        } else {
          flight->status = built.status();
        }
      }
      flight->cv.notify_all();
      if (!built.ok()) return built.status();
    } else if (flight != nullptr) {
      single_flight_waits_.fetch_add(1, std::memory_order_relaxed);
      Metrics().flight_waits->Add();
      report.shared_flight = true;
      const auto wait_start = Clock::now();
      const double wait_start_us = TraceNowMicros();
      if (ThreadPool* self = ThreadPool::CurrentPool(); self != nullptr) {
        // A pool task helps drain its own lane while it waits, so a
        // fleet of hammering sessions cannot starve the leader's nested
        // work — a request-lane waiter drains queued requests, an
        // exec-lane waiter drains DAG tasks.
        while (true) {
          {
            std::unique_lock<std::mutex> lock(flight->mu);
            if (flight->done) break;
          }
          if (!self->TryRunOne()) {
            // Queues are dry: sleep until the leader's notify. The
            // leader never needs this thread — its nested RunAndWait
            // drains its own sub-tasks — so parking here cannot wedge
            // the flight.
            std::unique_lock<std::mutex> lock(flight->mu);
            flight->cv.wait(lock, [&] { return flight->done; });
            break;
          }
        }
      } else {
        std::unique_lock<std::mutex> lock(flight->mu);
        flight->cv.wait(lock, [&] { return flight->done; });
      }
      const double wait_seconds = SecondsSince(wait_start);
      report.timing.optimize_seconds += wait_seconds;
      Metrics().flight_wait_seconds->Observe(wait_seconds);
      RecordWaitSpan("flight-wait", wait_start_us, TraceNowMicros());
      {
        std::lock_guard<std::mutex> lock(flight->mu);
        if (!flight->status.ok()) return flight->status;
        plan = flight->plan;
      }
    }
  }

  // Execute the (shared, immutable) plan for this request.
  report.run.optimize = plan->optimize;
  report.run.optimized_source = plan->optimized_source;
  report.run.optimized_program = plan->program;
  report.run.compile_wall_seconds =
      report.timing.parse_seconds + report.timing.optimize_seconds;
  TransmissionLedger ledger(request.config.cluster);
  ledger.AddCompilationSeconds(report.run.compile_wall_seconds);

  // Tail bookkeeping shared by the normal and coalesced return paths.
  auto finish = [&] {
    report.timing.total_seconds = SecondsSince(start);
    Metrics().request_seconds->Observe(report.timing.total_seconds);
    if (report.cache_hit) {
      warm_requests_.fetch_add(1, std::memory_order_relaxed);
      AtomicAdd(&warm_seconds_, report.timing.total_seconds);
      Metrics().warm_hits->Add();
      Metrics().warm_seconds->Observe(report.timing.total_seconds);
    } else {
      cold_requests_.fetch_add(1, std::memory_order_relaxed);
      AtomicAdd(&cold_seconds_, report.timing.total_seconds);
      Metrics().cold_misses->Add();
      Metrics().cold_seconds->Observe(report.timing.total_seconds);
    }
    if (trace != nullptr) trace->CloseRoot("request");
  };

  // Warm-hit coalescing state: when this request leads a result flight,
  // every exit path below must publish exactly once.
  std::shared_ptr<ResultFlight> rflight;
  bool rleader = false;
  std::string result_key;
  auto publish_result = [&](const Status& status) {
    if (!rleader) return;
    rleader = false;  // publish exactly once
    {
      std::lock_guard<std::mutex> lock(mu_);
      result_flights_.erase(result_key);
    }
    {
      std::lock_guard<std::mutex> lock(rflight->mu);
      rflight->done = true;
      if (status.ok()) {
        rflight->report = std::make_shared<const ServiceReport>(report);
      } else {
        rflight->status = status;
      }
    }
    rflight->cv.notify_all();
  };

  if (request.config.execute) {
    const auto execute_start = Clock::now();
    // Degradation ladder: when the request can't (or shouldn't) take the
    // task-graph path, fall back to the serial fault-free executor — a
    // degraded response is slower but exact, never an error.
    RunConfig exec = request.config;
    auto degrade = [&](const char* reason, bool shed) {
      exec.scheduler = SchedulerKind::kSerial;
      exec.faults.enabled = false;
      report.degraded = true;
      report.degraded_reason = reason;
      degraded_requests_.fetch_add(1, std::memory_order_relaxed);
      Metrics().degraded->Add();
      if (shed) {
        report.shed = true;
        shed_requests_.fetch_add(1, std::memory_order_relaxed);
        Metrics().shed->Add();
      }
    };

    // Coalescing: an identical warm request on a deterministic plan is
    // already executing — ride its result instead of re-executing. Only
    // plans with no stochastic builtins qualify (decided at build time),
    // and only plain requests (no faults, no tracing) so a shared run is
    // bitwise indistinguishable from a private one.
    if (options_.coalesce_warm_hits && report.cache_hit &&
        plan->deterministic && trace == nullptr &&
        !request.config.faults.enabled &&
        request.config.trace_path.empty()) {
      // The plan-cache key excludes execution-only knobs, so fold the
      // result-affecting ones back in: iteration horizon, scheduler and
      // the ledger's input-partition accounting mode.
      result_key =
          report.cache_key +
          StringFormat("|x%d,s%d,p%d", request.config.executed_iterations,
                       static_cast<int>(request.config.scheduler),
                       request.config.count_input_partition ? 1 : 0);
      std::lock_guard<std::mutex> lock(mu_);
      auto it = result_flights_.find(result_key);
      if (it != result_flights_.end()) {
        rflight = it->second;
      } else {
        rflight = std::make_shared<ResultFlight>();
        result_flights_.emplace(result_key, rflight);
        rleader = true;
      }
    }
    if (rflight != nullptr && !rleader) {
      coalesced_requests_.fetch_add(1, std::memory_order_relaxed);
      Metrics().coalesced->Add();
      if (ThreadPool* self = ThreadPool::CurrentPool(); self != nullptr) {
        // Help drain this worker's own lane while waiting (same
        // leader-never-needs-us argument as the plan flight above).
        while (true) {
          {
            std::unique_lock<std::mutex> lock(rflight->mu);
            if (rflight->done) break;
          }
          if (!self->TryRunOne()) break;
        }
      }
      std::shared_ptr<const ServiceReport> shared;
      {
        std::unique_lock<std::mutex> lock(rflight->mu);
        rflight->cv.wait(lock, [&] { return rflight->done; });
        if (!rflight->status.ok()) return rflight->status;
        shared = rflight->report;
      }
      // The leader's finished run IS this request's result: same plan,
      // same inputs, deterministic execution. Matrix payloads are shared
      // immutable buffers, so the copy is one pointer bump per value.
      report.run = shared->run;
      report.coalesced = true;
      report.timing.execute_seconds = SecondsSince(execute_start);
      finish();
      return report;
    }

    if (exec.scheduler == SchedulerKind::kTaskGraph) {
      // Admission control. Shedding never rejects: the request still
      // runs — serially, faults off — and returns the exact result.
      const double deadline = request.deadline_seconds;
      if (deadline > 0.0 && queued_seconds >= deadline &&
          queued_seconds > 0.0) {
        // The session-queue wait alone ate the whole budget; spending
        // DAG fan-out on an already-late request only delays the rest
        // of the backlog.
        degrade("shed-deadline", /*shed=*/true);
      } else if (deadline > 0.0 &&
                 queued_seconds + SecondsSince(start) >= deadline) {
        degrade("deadline", /*shed=*/false);
      } else if (options_.admission_backlog_factor > 0.0) {
        const auto backlogged = [&](const ThreadPool& lane) {
          return static_cast<double>(lane.pending()) >=
                 options_.admission_backlog_factor *
                     static_cast<double>(lane.size());
        };
        // Either lane deep in backlog means fan-out would queue, not
        // run: the request lane measures how many whole requests are
        // waiting, the exec lane how many DAG tasks are.
        if (backlogged(ThreadPool::RequestLane()) ||
            backlogged(ThreadPool::Global())) {
          degrade("shed-backlog", /*shed=*/true);
        }
      }
    }
    // Cross-request redundancy elimination: splice the materialized
    // intermediate cache into this execution. Candidates were extracted
    // at plan-build time; the per-request context probes them against
    // the cache under the catalog's *current* metadata/versions, so a
    // warm plan hit still sees fresh keys.
    std::unique_ptr<MatExecContext> mat_context;
    if (options_.mat_cache_bytes > 0 && plan->intermediates != nullptr &&
        !plan->intermediates->empty()) {
      ScopedTraceSpan span("matcache-probe");
      mat_context = std::make_unique<MatExecContext>(
          &mat_cache_, plan->intermediates, *catalog_, exec);
      exec.intermediates = mat_context.get();
    }
    Status executed = ExecuteCompiled(*plan->program, *catalog_, exec,
                                      &ledger, &report.run);
    if (!executed.ok() && executed.code() == StatusCode::kUnavailable &&
        exec.scheduler == SchedulerKind::kTaskGraph) {
      // A chaos run lost a task to injected faults more times than the
      // retry budget allows. Re-run serially with faults off on the SAME
      // ledger: the wasted double-booked work stays accounted, and the
      // serial pass produces the exact result.
      degrade("retries-exhausted", /*shed=*/false);
      executed = ExecuteCompiled(*plan->program, *catalog_, exec, &ledger,
                                 &report.run);
    }
    // The context's destructor cancels any flight it led but never
    // offered (failed executions), so followers are never stranded.
    if (mat_context != nullptr) report.matcache = mat_context->stats();
    if (!executed.ok()) {
      publish_result(executed);
      return executed;
    }
    report.timing.execute_seconds = SecondsSince(execute_start);
  }
  report.run.breakdown = ledger.Breakdown();
  publish_result(Status::OK());
  finish();
  return report;
}

ServiceStats PlanService::stats() const {
  ServiceStats stats;
  stats.cache = cache_.stats();
  stats.matcache = mat_cache_.stats();
  stats.pool = ThreadPool::Global().stats();
  stats.request_pool = ThreadPool::RequestLane().stats();
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.optimizer_invocations =
      optimizer_invocations_.load(std::memory_order_relaxed);
  stats.single_flight_waits =
      single_flight_waits_.load(std::memory_order_relaxed);
  stats.warm_requests = warm_requests_.load(std::memory_order_relaxed);
  stats.cold_requests = cold_requests_.load(std::memory_order_relaxed);
  stats.degraded_requests =
      degraded_requests_.load(std::memory_order_relaxed);
  stats.shed_requests = shed_requests_.load(std::memory_order_relaxed);
  stats.coalesced_requests =
      coalesced_requests_.load(std::memory_order_relaxed);
  stats.warm_seconds = warm_seconds_.load(std::memory_order_relaxed);
  stats.cold_seconds = cold_seconds_.load(std::memory_order_relaxed);
  return stats;
}

void PlanService::Session::Submit(ServiceRequest request) {
  // Start the trace at submission, not execution: the root span then
  // covers the session-queue wait, which a loaded pool can make the
  // dominant part of a request's latency.
  std::shared_ptr<RequestTrace> trace = Tracer::Global().StartRequest();
  const double submit_us = trace != nullptr ? TraceNowMicros() : 0.0;
  // Queue-entry stamp, independent of tracing: admission control counts
  // the submit-to-start wait against the request's deadline.
  const auto submitted_at = Clock::now();
  auto task = std::make_shared<std::packaged_task<Result<ServiceReport>()>>(
      [service = service_, request = std::move(request), trace, submit_us,
       submitted_at] {
        if (trace != nullptr) {
          RecordWaitSpanIn(TraceContext{trace, RequestTrace::kRootSpanId},
                           "session-queue", submit_us, TraceNowMicros());
        }
        return service->RunQueued(request, trace,
                                  SecondsSince(submitted_at));
      });
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.push_back(task->get_future());
  }
  // The request lane: whole requests never queue behind (or ahead of)
  // another request's DAG fan-out, which rides the exec lane.
  ThreadPool::RequestLane().Submit([task] { (*task)(); });
}

std::vector<Result<ServiceReport>> PlanService::Session::Wait() {
  std::vector<std::future<Result<ServiceReport>>> pending;
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending.swap(pending_);
  }
  std::vector<Result<ServiceReport>> results;
  results.reserve(pending.size());
  for (auto& future : pending) results.push_back(future.get());
  return results;
}

size_t PlanService::Session::submitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

}  // namespace remac
