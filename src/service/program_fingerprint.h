#ifndef REMAC_SERVICE_PROGRAM_FINGERPRINT_H_
#define REMAC_SERVICE_PROGRAM_FINGERPRINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "lang/ast.h"
#include "plan/plan_builder.h"

namespace remac {

/// \brief Canonical identity of a parsed program.
///
/// Two scripts that differ only in variable naming (or whitespace,
/// comments, parenthesization noise) produce the same fingerprint:
/// identifiers are alpha-renamed to `$0, $1, ...` in order of first
/// appearance, the AST is re-rendered fully parenthesized, and the
/// canonical text is hashed (FNV-1a 64). Builtin call names, numeric
/// literals and string literals — including the read("...") dataset
/// names, which bind the plan to concrete catalog entries — are kept
/// verbatim.
struct ProgramFingerprint {
  uint64_t hash = 0;
  /// The alpha-renamed rendering the hash is computed over (debugging,
  /// collision checks in tests).
  std::string canonical;
  /// read("...") dataset names in first-use order (duplicates removed);
  /// the service combines their catalog metadata into the cache key.
  std::vector<std::string> datasets;
};

/// Fingerprints an already-parsed program.
ProgramFingerprint FingerprintProgram(const Program& program);

/// Parses `source` and fingerprints it.
Result<ProgramFingerprint> FingerprintScript(std::string_view source);

/// \brief Buckets a sparsity value so "close enough" inputs share a plan.
///
/// The cost model's decisions are scale-sensitive, not point-sensitive:
/// a plan chosen for sparsity 0.012 is equally right at 0.015. Buckets
/// are half-decades of log10(sparsity), with two special cases pinned to
/// the cost model's own discontinuities: everything above the dense
/// format threshold (0.4, matrix/matrix.h) is one "dense regime" bucket
/// 0, and (near-)empty matrices get their own sentinel bucket.
int SparsityBucket(double sparsity);

/// One dataset's metadata fragment, `name=rowsxcols,sq|rc,b<bucket>;`:
/// exact dimensions, a square/rectangular flag (the shape class symmetry
/// the rewriter keys on), and the bucketed sparsity. The unit of both
/// plan-cache keying (concatenated by InputMetadataKey) and the
/// materialized-intermediate cache's dataset-level invalidation. Errors
/// if the dataset is missing from the catalog.
Result<std::string> DatasetMetadataFragment(const std::string& name,
                                            const DataCatalog& catalog);

/// \brief Metadata key of a program's inputs against a catalog.
///
/// One DatasetMetadataFragment per dataset, in first-use order. Plans
/// are reusable while every input stays in its bucket; any fragment
/// changing moves the request to a different cache key. Errors if a
/// dataset is missing from the catalog.
Result<std::string> InputMetadataKey(const std::vector<std::string>& datasets,
                                     const DataCatalog& catalog);

/// FNV-1a 64-bit over arbitrary bytes (exposed for the service's
/// source-text fast path).
uint64_t Fnv1a64(std::string_view bytes);

}  // namespace remac

#endif  // REMAC_SERVICE_PROGRAM_FINGERPRINT_H_
