#ifndef REMAC_SERVICE_PLAN_CACHE_H_
#define REMAC_SERVICE_PLAN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/adaptive_optimizer.h"
#include "plan/plan_builder.h"
#include "service/matcache/intermediate_key.h"

namespace remac {

/// \brief An optimized program held by the plan cache.
///
/// Immutable once inserted; requests execute the shared CompiledProgram
/// directly (plan trees are never mutated by execution), so a hit costs
/// one shared_ptr copy.
struct CachedPlan {
  std::shared_ptr<const CompiledProgram> program;
  std::string optimized_source;
  OptimizeReport optimize;
  /// Wall seconds spent producing this entry (parse + optimize). The
  /// eviction weight: expensive-to-rebuild entries are sticky.
  double build_wall_seconds = 0.0;
  /// Canonical fingerprint hash of the source program (see
  /// program_fingerprint.h); invalidation drops all buckets of a program.
  uint64_t program_hash = 0;
  /// The input-metadata bucket this plan was optimized for.
  std::string metadata_key;
  /// Cacheable sub-plans of `program` (see matcache/intermediate_key.h),
  /// extracted once at build time; every request executing this plan
  /// probes them against the service's materialized-intermediate cache.
  /// Node pointers reference `program`'s shared trees.
  std::shared_ptr<const std::vector<SubplanCandidate>> intermediates;
  /// Approximate resident footprint of this entry (plan trees, sources,
  /// candidate keys), computed once at insertion.
  int64_t resident_bytes = 0;
  /// The optimized program references no stochastic builtin (rand), so
  /// executing it twice against unchanged inputs is bitwise identical.
  /// Gate for warm-hit coalescing: only deterministic plans may share
  /// one execution across concurrent identical requests.
  bool deterministic = false;

  /// Estimates `resident_bytes` from the entry's actual contents.
  int64_t EstimateResidentBytes() const;
};

struct PlanCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
  /// Entries dropped by ErasePlansForProgram (metadata left the bucket).
  int64_t invalidations = 0;
  int64_t entries = 0;
  /// Summed CachedPlan::resident_bytes of live entries — real byte
  /// accounting instead of the old entry-count-only view.
  int64_t resident_bytes = 0;
};

/// \brief Sharded, thread-safe LRU cache of optimized programs.
///
/// Keys are opaque strings (the service combines program fingerprint,
/// input-metadata bucket and optimizer-config digest). Eviction is
/// cost-aware: when a shard overflows, the cheapest-to-rebuild entry
/// among the few least-recently-used ones is dropped, so a plan that
/// took seconds to optimize is not displaced by one that took
/// microseconds just because it is marginally older.
class PlanCache {
 public:
  /// `capacity` is the total entry budget across shards (min 1). The
  /// shard count is clamped to [1, capacity] so tiny caches still
  /// enforce their capacity exactly.
  explicit PlanCache(size_t capacity, int shards = 8);

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Returns the entry (promoting it to most-recent) or null. Counts a
  /// hit or a miss.
  std::shared_ptr<const CachedPlan> Get(const std::string& key);

  /// Inserts or replaces; evicts while the shard is over budget.
  void Put(const std::string& key, std::shared_ptr<const CachedPlan> plan);

  /// Drops one key; true if it was present. Not counted as an eviction.
  bool Erase(const std::string& key);

  /// Drops every entry of `program_hash` (explicit invalidation when the
  /// input metadata leaves its bucket). Returns the number dropped.
  int ErasePlansForProgram(uint64_t program_hash);

  PlanCacheStats stats() const;
  size_t size() const;
  size_t capacity() const { return capacity_; }
  int64_t resident_bytes() const {
    return resident_bytes_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const CachedPlan> plan;
    /// Byte footprint charged for this entry (fixed at insertion so the
    /// removal credit always matches).
    int64_t bytes = 0;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
    size_t capacity = 1;
  };

  Shard& ShardFor(const std::string& key);
  /// Evicts from `shard` (locked by the caller) until within budget.
  void EvictLocked(Shard* shard);
  /// Removes the entry at `it` from `shard` (locked by the caller),
  /// keeping byte accounting and gauges consistent.
  std::list<Entry>::iterator DropLocked(Shard* shard,
                                        std::list<Entry>::iterator it);

  size_t capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  mutable std::atomic<int64_t> hits_{0};
  mutable std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> evictions_{0};
  std::atomic<int64_t> invalidations_{0};
  std::atomic<int64_t> resident_bytes_{0};
};

}  // namespace remac

#endif  // REMAC_SERVICE_PLAN_CACHE_H_
