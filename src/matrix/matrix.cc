#include "matrix/matrix.h"

#include <cassert>
#include <cmath>

namespace remac {

Matrix::Matrix()
    : format_(MatrixFormat::kDense),
      dense_(std::make_shared<DenseMatrix>()),
      nnz_(0) {}

Matrix Matrix::FromDense(DenseMatrix dense) {
  const int64_t total = dense.size();
  const int64_t nnz = dense.CountNonZeros();
  if (total > 0 &&
      static_cast<double>(nnz) / static_cast<double>(total) <=
          kDenseFormatThreshold) {
    return WrapCsr(CsrMatrix::FromDense(dense));
  }
  return WrapDense(std::move(dense));
}

Matrix Matrix::FromCsr(CsrMatrix csr) {
  if (csr.Sparsity() > kDenseFormatThreshold) {
    return WrapDense(csr.ToDense());
  }
  return WrapCsr(std::move(csr));
}

Matrix Matrix::WrapDense(DenseMatrix dense) {
  Matrix m;
  m.format_ = MatrixFormat::kDense;
  m.nnz_ = dense.CountNonZeros();
  // Created non-const so TryReleaseDense may legally cast constness away
  // from a uniquely-owned payload.
  m.dense_ = std::make_shared<DenseMatrix>(std::move(dense));
  m.csr_.reset();
  return m;
}

Matrix Matrix::WrapCsr(CsrMatrix csr) {
  Matrix m;
  m.format_ = MatrixFormat::kSparse;
  m.nnz_ = csr.nnz();
  m.csr_ = std::make_shared<const CsrMatrix>(std::move(csr));
  m.dense_.reset();
  return m;
}

Matrix Matrix::Identity(int64_t n) {
  std::vector<std::tuple<int64_t, int64_t, double>> triplets;
  triplets.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) triplets.emplace_back(i, i, 1.0);
  CsrMatrix csr = CsrMatrix::FromTriplets(n, n, std::move(triplets));
  if (n <= 2) return WrapDense(csr.ToDense());
  return WrapCsr(std::move(csr));
}

Matrix Matrix::Zeros(int64_t rows, int64_t cols) {
  return WrapCsr(CsrMatrix(rows, cols));
}

int64_t Matrix::rows() const {
  return is_dense() ? dense_->rows() : csr_->rows();
}

int64_t Matrix::cols() const {
  return is_dense() ? dense_->cols() : csr_->cols();
}

int64_t Matrix::nnz() const { return nnz_; }

double Matrix::Sparsity() const {
  const int64_t total = rows() * cols();
  if (total == 0) return 0.0;
  return static_cast<double>(nnz_) / static_cast<double>(total);
}

int64_t Matrix::SizeInBytes() const {
  return is_dense() ? dense_->SizeInBytes() : csr_->SizeInBytes();
}

int64_t Matrix::BytesUsed() const {
  return is_dense() ? dense_->BytesUsed() : csr_->BytesUsed();
}

const DenseMatrix& Matrix::dense() const {
  assert(is_dense());
  return *dense_;
}

const CsrMatrix& Matrix::csr() const {
  assert(!is_dense());
  return *csr_;
}

DenseMatrix Matrix::ToDense() const {
  return is_dense() ? *dense_ : csr_->ToDense();
}

CsrMatrix Matrix::ToCsr() const {
  return is_dense() ? CsrMatrix::FromDense(*dense_) : *csr_;
}

double Matrix::At(int64_t r, int64_t c) const {
  if (is_dense()) return dense_->At(r, c);
  const CsrMatrix& m = *csr_;
  for (int64_t k = m.row_ptr()[r]; k < m.row_ptr()[r + 1]; ++k) {
    if (m.col_idx()[k] == c) return m.values()[k];
    if (m.col_idx()[k] > c) break;
  }
  return 0.0;
}

bool Matrix::TryReleaseDense(DenseMatrix* out) {
  if (!is_dense() || dense_ == nullptr || dense_.use_count() != 1) {
    return false;
  }
  // Safe: every dense payload is created via make_shared<DenseMatrix>
  // (WrapDense / the default constructor), so the object itself is not
  // const and use_count()==1 proves this Matrix is the only owner.
  *out = std::move(*std::const_pointer_cast<DenseMatrix>(dense_));
  dense_ = std::make_shared<DenseMatrix>();
  nnz_ = 0;
  return true;
}

bool Matrix::ApproxEquals(const Matrix& other, double tolerance) const {
  if (rows() != other.rows() || cols() != other.cols()) return false;
  return ToDense().ApproxEquals(other.ToDense(), tolerance);
}

}  // namespace remac
