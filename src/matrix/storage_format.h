#ifndef REMAC_MATRIX_STORAGE_FORMAT_H_
#define REMAC_MATRIX_STORAGE_FORMAT_H_

namespace remac {

/// Sparsity threshold above which the dense format is used, following
/// SystemDS (Section 4.2 of the paper: "we use a dense format if S_V > 0.4").
///
/// This is the single source of truth for the dense/CSR boundary: Matrix's
/// format choice, the physical byte model (MatrixBytes), blocked/tiled
/// per-block byte accounting, per-tile sparsity annotations
/// (TiledMatrix2D), and the fingerprint sparsity bucketing all read it, so
/// every layer agrees on where a value flips between formats.
inline constexpr double kDenseFormatThreshold = 0.4;

}  // namespace remac

#endif  // REMAC_MATRIX_STORAGE_FORMAT_H_
