#ifndef REMAC_MATRIX_KERNEL_INTERNAL_H_
#define REMAC_MATRIX_KERNEL_INTERNAL_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <functional>
#include <vector>

#include "common/status.h"
#include "common/string_util.h"
#include "matrix/kernels.h"
#include "matrix/matrix.h"
#include "obs/metrics.h"
#include "sched/thread_pool.h"

/// \brief Internals shared by the local kernel translation units
/// (kernels.cc, gemm.cc, fused_multiply.cc). Not part of the public API.
///
/// Determinism contract (docs/INTERNALS.md Section 12): every kernel here
/// produces bitwise-identical results at any thread count. Row-parallel
/// kernels compute each output row serially, so chunk boundaries cannot
/// change any floating-point accumulation order; reductions always sum
/// fixed-size chunks and fold the partials in chunk order.

namespace remac {
namespace internal {

/// Work threshold (in touched elements / flops) below which a kernel runs
/// serially: row count alone mispredicts wide-and-short shapes (a
/// 200 x 100000 elementwise op is 20M elements of work).
inline constexpr int64_t kParallelGrainWork = 1 << 15;

/// Fixed reduction chunk length. Independent of the thread count, so
/// chunked SumAll / FrobeniusNorm are deterministic at any parallelism.
inline constexpr int64_t kReductionChunk = 1 << 15;

/// Cache-blocking parameters for the dense GEMM family: MR output rows
/// are accumulated per register tile over NC output columns, so the B
/// panel (k x NC doubles) stays cache-resident across an i-block pass.
/// kGemmColBlock sizes the scalar 2x8 path's panel; kGemmPanelCols sizes
/// the wider AVX2 4x16 path's panel (256 cols x 1024 rows of B = 2 MB,
/// the L2 capacity of the target part, which has no L3).
inline constexpr int64_t kGemmRowBlock = 8;
inline constexpr int64_t kGemmColBlock = 64;
inline constexpr int64_t kGemmPanelCols = 256;

/// AVX2 micro-kernels are compiled (behind a runtime CPU check) only for
/// x86-64 GCC/Clang; everything else uses the scalar micro-kernels.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define REMAC_KERNEL_AVX2 1
#else
#define REMAC_KERNEL_AVX2 0
#endif

/// Kernel-layer telemetry (INTERNALS.md Section 12). Resolving the struct
/// once registers every name, so a metrics snapshot always carries the
/// full `remac.kernel.*` set even for counters still at zero.
struct KernelMetrics {
  Counter* multiplies =
      MetricsRegistry::Global().GetCounter("remac.kernel.multiplies");
  Counter* gemm_blocked =
      MetricsRegistry::Global().GetCounter("remac.kernel.gemm_blocked");
  /// Fused transpose-multiply executions (at least one transposed side).
  Counter* fused_transpose =
      MetricsRegistry::Global().GetCounter("remac.kernel.fused_transpose");
  /// Bytes of transpose materialization the fused kernels avoided
  /// (footprint of each transposed operand that was never copied).
  Counter* fused_bytes_avoided = MetricsRegistry::Global().GetCounter(
      "remac.kernel.fused_bytes_avoided");
  /// Transpose kernel invocations (each one materializes the result).
  Counter* transposes =
      MetricsRegistry::Global().GetCounter("remac.kernel.transposes");
  Counter* elementwise_ops =
      MetricsRegistry::Global().GetCounter("remac.kernel.elementwise_ops");
  Counter* scalar_ops =
      MetricsRegistry::Global().GetCounter("remac.kernel.scalar_ops");
  Counter* reductions =
      MetricsRegistry::Global().GetCounter("remac.kernel.reductions");
  /// Tasks ParallelForRows actually fanned out (0 increments = serial).
  Counter* parallel_tasks =
      MetricsRegistry::Global().GetCounter("remac.kernel.parallel_tasks");
};

inline KernelMetrics& Metrics() {
  static KernelMetrics metrics;
  return metrics;
}

inline Status ShapeErrorDims(const char* op, int64_t ar, int64_t ac,
                             int64_t br, int64_t bc) {
  return Status::DimensionMismatch(StringFormat(
      "%s: (%lld x %lld) vs (%lld x %lld)", op, static_cast<long long>(ar),
      static_cast<long long>(ac), static_cast<long long>(br),
      static_cast<long long>(bc)));
}

/// Runs fn(first_row, last_row) across KernelThreads() workers on the
/// shared scheduler pool. Chunk boundaries depend only on KernelThreads(),
/// never on the pool size, so results are bitwise-identical no matter how
/// many threads actually execute (and some kernels derive a worker index
/// from r0 / chunk). `row_work` approximates the elements (or flops)
/// touched per row; below kParallelGrainWork total the call runs inline.
void ParallelForRows(int64_t rows, int64_t row_work,
                     const std::function<void(int64_t, int64_t)>& fn);

/// --- sparse row providers -------------------------------------------------
///
/// The sparse multiply cores below are templated over a row provider, so
/// the same loop body (and therefore the exact same floating-point
/// operation sequence) runs for a CSR operand and for the column view of
/// a CSR operand that stands in for its transpose.

/// Rows of a CsrMatrix as stored.
struct CsrRows {
  const int64_t* ptr;
  const int32_t* idx;
  const double* val;
  int64_t rows_count;
  int64_t nnz_count;

  explicit CsrRows(const CsrMatrix& m)
      : ptr(m.row_ptr().data()),
        idx(m.col_idx().data()),
        val(m.values().data()),
        rows_count(m.rows()),
        nnz_count(m.nnz()) {}

  int64_t rows() const { return rows_count; }
  int64_t nnz() const { return nnz_count; }
  int64_t begin(int64_t r) const { return ptr[r]; }
  int64_t end(int64_t r) const { return ptr[r + 1]; }
  int32_t col(int64_t p) const { return idx[p]; }
  double value(int64_t p) const { return val[p]; }
};

/// Column-major view of a CsrMatrix: "row j" of the view enumerates the
/// entries of column j, ordered by original row index ascending — exactly
/// the rows TransposeCsr would produce, but without constructing a
/// CsrMatrix (no Matrix materialization, no format re-wrapping).
struct CscView {
  std::vector<int64_t> ptr;   // cols + 1
  std::vector<int32_t> idx;   // original row indices, ascending per column
  std::vector<double> val;

  explicit CscView(const CsrMatrix& a) {
    const int64_t n = a.cols();
    ptr.assign(static_cast<size_t>(n) + 1, 0);
    idx.resize(static_cast<size_t>(a.nnz()));
    val.resize(static_cast<size_t>(a.nnz()));
    // Counting sort by column; stable over rows, matching TransposeCsr.
    for (int32_t c : a.col_idx()) ++ptr[c + 1];
    for (int64_t i = 0; i < n; ++i) ptr[i + 1] += ptr[i];
    std::vector<int64_t> cursor(ptr.begin(), ptr.end() - 1);
    for (int64_t r = 0; r < a.rows(); ++r) {
      for (int64_t p = a.row_ptr()[r]; p < a.row_ptr()[r + 1]; ++p) {
        const int64_t dst = cursor[a.col_idx()[p]]++;
        idx[dst] = static_cast<int32_t>(r);
        val[dst] = a.values()[p];
      }
    }
  }

  int64_t rows() const { return static_cast<int64_t>(ptr.size()) - 1; }
  int64_t nnz() const { return static_cast<int64_t>(val.size()); }
  int64_t begin(int64_t r) const { return ptr[r]; }
  int64_t end(int64_t r) const { return ptr[r + 1]; }
  int32_t col(int64_t p) const { return idx[p]; }
  double value(int64_t p) const { return val[p]; }
};

/// --- shared multiply cores ------------------------------------------------

/// Sparse-left x dense-right: C(i, :) += v * B(j, :) for each stored
/// (j, v) in row i of `a`. `out_rows` x b.cols().
template <typename LeftRows>
DenseMatrix MultiplySparseDenseCore(const LeftRows& a, int64_t out_rows,
                                    const DenseMatrix& b) {
  const int64_t n = b.cols();
  DenseMatrix c(out_rows, n);
  const double* pb = b.data();
  double* pc = c.data();
  const int64_t row_work =
      n * std::max<int64_t>(1, a.nnz() / std::max<int64_t>(1, out_rows));
  ParallelForRows(out_rows, row_work, [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      double* ci = pc + i * n;
      for (int64_t p = a.begin(i); p < a.end(i); ++p) {
        const double v = a.value(p);
        const double* bj = pb + static_cast<int64_t>(a.col(p)) * n;
        for (int64_t x = 0; x < n; ++x) ci[x] += v * bj[x];
      }
    }
  });
  return c;
}

/// Sparse x sparse Gustavson row-merge. Identical operation sequence to
/// the historical MultiplySparseSparse for CSR providers; the column-view
/// providers slot in for transposed operands. Per-part buffers are
/// reserved from nnz-based estimates and stitched through precomputed
/// offsets (single resize + memcpy, no incremental insert growth).
template <typename LeftRows, typename RightRows>
CsrMatrix MultiplySparseSparseCore(const LeftRows& a, const RightRows& b,
                                   int64_t out_rows, int64_t out_cols) {
  const int64_t m = out_rows;
  const int64_t n = out_cols;
  CsrMatrix c(m, n);
  auto& row_ptr = c.mutable_row_ptr();
  // First pass per thread-range into local buffers, then stitch.
  const int threads = std::max(1, KernelThreads());
  const int64_t chunk = (m + threads - 1) / threads;
  struct Part {
    std::vector<int32_t> cols;
    std::vector<double> vals;
    std::vector<int64_t> row_nnz;
  };
  std::vector<Part> parts(static_cast<size_t>(threads));
  const int64_t avg_a = a.nnz() / std::max<int64_t>(1, a.rows());
  const int64_t avg_b = b.nnz() / std::max<int64_t>(1, b.rows());
  const int64_t row_work = std::max<int64_t>(1, avg_a * std::max<int64_t>(
                                                           1, avg_b));
  ParallelForRows(m, row_work, [&](int64_t r0, int64_t r1) {
    const int tid = static_cast<int>(r0 / std::max<int64_t>(1, chunk));
    Part& part = parts[static_cast<size_t>(std::min(tid, threads - 1))];
    // Upper-bound estimate of this range's output entries: its stored
    // left entries times the average right-row fill, capped at dense.
    const int64_t range_entries = a.begin(r1) - a.begin(r0);
    const int64_t estimate =
        std::min((r1 - r0) * n, range_entries * std::max<int64_t>(1, avg_b));
    part.row_nnz.reserve(static_cast<size_t>(r1 - r0));
    part.cols.reserve(static_cast<size_t>(estimate));
    part.vals.reserve(static_cast<size_t>(estimate));
    std::vector<double> acc(static_cast<size_t>(n), 0.0);
    std::vector<int32_t> touched;
    for (int64_t i = r0; i < r1; ++i) {
      touched.clear();
      for (int64_t p = a.begin(i); p < a.end(i); ++p) {
        const double va = a.value(p);
        const int64_t j = a.col(p);
        for (int64_t q = b.begin(j); q < b.end(j); ++q) {
          const int32_t col = b.col(q);
          if (acc[col] == 0.0) touched.push_back(col);
          acc[col] += va * b.value(q);
        }
      }
      std::sort(touched.begin(), touched.end());
      int64_t nnz_row = 0;
      for (int32_t col : touched) {
        if (acc[col] != 0.0) {
          part.cols.push_back(col);
          part.vals.push_back(acc[col]);
          ++nnz_row;
        }
        acc[col] = 0.0;
      }
      part.row_nnz.push_back(nnz_row);
    }
  });
  // Stitch parts in row order: sizes first, then one resize + bulk copy.
  auto& out_cols_v = c.mutable_col_idx();
  auto& out_vals_v = c.mutable_values();
  int64_t total = 0;
  std::vector<int64_t> offsets(parts.size() + 1, 0);
  for (size_t t = 0; t < parts.size(); ++t) {
    total += static_cast<int64_t>(parts[t].cols.size());
    offsets[t + 1] = total;
  }
  out_cols_v.resize(static_cast<size_t>(total));
  out_vals_v.resize(static_cast<size_t>(total));
  int64_t row = 0;
  for (size_t t = 0; t < parts.size(); ++t) {
    const Part& part = parts[t];
    for (int64_t nnz_row : part.row_nnz) {
      row_ptr[row + 1] = row_ptr[row] + nnz_row;
      ++row;
    }
    if (!part.cols.empty()) {
      std::memcpy(out_cols_v.data() + offsets[t], part.cols.data(),
                  part.cols.size() * sizeof(int32_t));
      std::memcpy(out_vals_v.data() + offsets[t], part.vals.data(),
                  part.vals.size() * sizeof(double));
    }
  }
  for (; row < m; ++row) row_ptr[row + 1] = row_ptr[row];
  return c;
}

/// 2 x 8 register micro-kernel: accumulates C(i0..i0+1, x0..x0+7) over the
/// full shared dimension in 16 named scalars the compiler keeps in SIMD
/// registers, so the inner loop does zero accumulator loads/stores (the
/// naive kernel pays 2 loads + 1 store per multiply-add; that memory-port
/// pressure, not cache misses, is what bounds it on one core).
///
/// `a0`/`a1` point at the j_count-long streams of the two output rows'
/// left operands; `stride` is the distance between consecutive j elements
/// (1 when the left operand is a plain row, the row width when it is a
/// column of a row-major matrix standing in for a transposed row). Per
/// output element the j-terms accumulate in ascending order from +0.0
/// with the same v == 0.0 skip as the naive kernel, so the result is
/// bitwise-identical.
inline void MicroKernel2x8(const double* a0, const double* a1, int64_t stride,
                           int64_t j_count, const double* b, int64_t ldb,
                           double* c0, double* c1) {
  double c00 = 0.0, c01 = 0.0, c02 = 0.0, c03 = 0.0;
  double c04 = 0.0, c05 = 0.0, c06 = 0.0, c07 = 0.0;
  double c10 = 0.0, c11 = 0.0, c12 = 0.0, c13 = 0.0;
  double c14 = 0.0, c15 = 0.0, c16 = 0.0, c17 = 0.0;
  for (int64_t j = 0; j < j_count; ++j) {
    const double* bj = b + j * ldb;
    const double v0 = a0[j * stride];
    if (v0 != 0.0) {
      c00 += v0 * bj[0];
      c01 += v0 * bj[1];
      c02 += v0 * bj[2];
      c03 += v0 * bj[3];
      c04 += v0 * bj[4];
      c05 += v0 * bj[5];
      c06 += v0 * bj[6];
      c07 += v0 * bj[7];
    }
    const double v1 = a1[j * stride];
    if (v1 != 0.0) {
      c10 += v1 * bj[0];
      c11 += v1 * bj[1];
      c12 += v1 * bj[2];
      c13 += v1 * bj[3];
      c14 += v1 * bj[4];
      c15 += v1 * bj[5];
      c16 += v1 * bj[6];
      c17 += v1 * bj[7];
    }
  }
  c0[0] = c00; c0[1] = c01; c0[2] = c02; c0[3] = c03;
  c0[4] = c04; c0[5] = c05; c0[6] = c06; c0[7] = c07;
  c1[0] = c10; c1[1] = c11; c1[2] = c12; c1[3] = c13;
  c1[4] = c14; c1[5] = c15; c1[6] = c16; c1[7] = c17;
}

/// Remainder path for the dense GEMM family: one output element as a
/// (possibly strided) dot product with the same ascending-j order and
/// v == 0.0 skip as the naive kernel.
inline double DotStrided(const double* a, int64_t stride, int64_t j_count,
                         const double* b, int64_t ldb) {
  double s = 0.0;
  for (int64_t j = 0; j < j_count; ++j) {
    const double v = a[j * stride];
    if (v == 0.0) continue;
    s += v * b[j * ldb];
  }
  return s;
}

/// True when the running CPU supports AVX2 (cached after the first call).
/// Dispatching on this cannot change any result: the AVX2 micro-kernel is
/// bitwise-identical to the scalar one lane-for-lane.
bool KernelHasAvx2();

#if REMAC_KERNEL_AVX2
/// 4 x 16 AVX2 micro-kernel (defined in gemm.cc with the `avx2` target
/// attribute; call only when KernelHasAvx2()). Same contract as
/// MicroKernel2x8 scaled up: 16 __m256d accumulators, per j one broadcast
/// of each left value guarded by the v == 0.0 skip, separate
/// _mm256_mul_pd + _mm256_add_pd (no FMA, so no contraction), j ascending
/// — every lane performs exactly the scalar kernel's operation sequence,
/// so results are bitwise-identical to the naive loop.
void MicroKernel4x16Avx2(const double* a0, const double* a1, const double* a2,
                         const double* a3, int64_t stride, int64_t j_count,
                         const double* b, int64_t ldb, double* c0, double* c1,
                         double* c2, double* c3);
#endif

/// Naive reference GEMM (the pre-blocking i-j-x loop). Kept as the
/// bitwise oracle for the blocked kernel and as the bench baseline.
DenseMatrix MultiplyDenseDenseNaive(const DenseMatrix& a,
                                    const DenseMatrix& b);

/// Cache-blocked, bitwise-identical replacement (see gemm.cc).
DenseMatrix MultiplyDenseDenseBlocked(const DenseMatrix& a,
                                      const DenseMatrix& b);

}  // namespace internal
}  // namespace remac

#endif  // REMAC_MATRIX_KERNEL_INTERNAL_H_
