#ifndef REMAC_MATRIX_KERNELS_H_
#define REMAC_MATRIX_KERNELS_H_

#include "common/status.h"
#include "matrix/matrix.h"

namespace remac {

/// Local (single-node) matrix kernels. All binary kernels validate
/// dimensions and return DimensionMismatch on incompatible shapes.
///
/// Format selection: results involving a dense operand are computed
/// densely; sparse x sparse uses a Gustavson row-merge. Output wrappers
/// re-normalize the storage format from the actual result sparsity.

/// C = A * B (matrix multiplication).
Result<Matrix> Multiply(const Matrix& a, const Matrix& b);

/// C = op(A) * op(B) where op is an optional transpose, computed without
/// materializing either transposed operand (fused kernels; see
/// docs/INTERNALS.md Section 12). Bitwise-identical to
/// Multiply(Transpose(a), b) and friends.
Result<Matrix> MultiplyTransposed(const Matrix& a, bool a_transposed,
                                  const Matrix& b, bool b_transposed);

/// Reference multiply: the pre-blocking naive i-j-x GEMM for dense-dense
/// operands (other combos fall through to Multiply). Kept as the bitwise
/// oracle for equivalence tests and as the bench_kernels baseline.
Result<Matrix> MultiplyReferenceNaive(const Matrix& a, const Matrix& b);

/// C = A^T.
Matrix Transpose(const Matrix& a);

/// C = A + B.
Result<Matrix> Add(const Matrix& a, const Matrix& b);

/// C = A - B.
Result<Matrix> Subtract(const Matrix& a, const Matrix& b);

/// C = A .* B (element-wise product).
Result<Matrix> ElementwiseMultiply(const Matrix& a, const Matrix& b);

/// C = A ./ B (element-wise quotient; zero denominators yield 0 to match
/// the "safe divide" semantics of ML systems).
Result<Matrix> ElementwiseDivide(const Matrix& a, const Matrix& b);

/// C = min(A, B) element-wise (ties and NaNs resolve to the left operand,
/// matching FusedApply — the shared per-cell semantics).
Result<Matrix> ElementwiseMin(const Matrix& a, const Matrix& b);

/// C = max(A, B) element-wise.
Result<Matrix> ElementwiseMax(const Matrix& a, const Matrix& b);

/// C = s * A.
Matrix ScalarMultiply(const Matrix& a, double s);

/// C = A + s (applied to every cell; densifies).
Matrix ScalarAdd(const Matrix& a, double s);

/// C = -A.
Matrix Negate(const Matrix& a);

/// Sum of all cells.
double SumAll(const Matrix& a);

/// sqrt(sum of squared cells).
double FrobeniusNorm(const Matrix& a);

/// Exact number of non-zeros in A * B without materializing values
/// (row-merge on sparsity patterns). Used by the exact estimator oracle.
Result<int64_t> MultiplyNnzExact(const Matrix& a, const Matrix& b);

/// Number of worker threads the local kernels use (>= 1).
int KernelThreads();
/// Overrides the kernel thread count (0 restores the hardware default).
void SetKernelThreads(int threads);

}  // namespace remac

#endif  // REMAC_MATRIX_KERNELS_H_
