#ifndef REMAC_MATRIX_FUSED_TAPE_H_
#define REMAC_MATRIX_FUSED_TAPE_H_

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "matrix/matrix.h"

namespace remac {

/// Opcode of one fused elementwise step. The kernel layer owns this enum
/// (the plan layer maps PlanOp onto it) so the tape interpreter has no
/// dependency on the plan.
enum class FusedOp : uint8_t { kAdd, kSub, kMul, kDiv, kMin, kMax, kExp, kLog };

const char* FusedOpName(FusedOp op);

/// The single source of truth for per-cell elementwise semantics: the
/// unfused kernels, the executor's scalar paths, and the fused tape
/// interpreter all apply exactly this function, which is what makes fused
/// execution bitwise-identical to the unfused operator sequence.
///   - divide is the "safe divide" (zero denominators yield 0);
///   - log is the safe log (zero cells stay 0, matching the CSR
///     stored-values-only application);
///   - min/max tie-break toward the left operand.
/// Unary ops ignore `b`.
inline double FusedApply(FusedOp op, double a, double b) {
  switch (op) {
    case FusedOp::kAdd: return a + b;
    case FusedOp::kSub: return a - b;
    case FusedOp::kMul: return a * b;
    case FusedOp::kDiv: return b == 0.0 ? 0.0 : a / b;
    case FusedOp::kMin: return b < a ? b : a;
    case FusedOp::kMax: return b > a ? b : a;
    case FusedOp::kExp: return std::exp(a);
    case FusedOp::kLog: return a == 0.0 ? 0.0 : std::log(a);
  }
  return 0.0;
}

/// One step of a fused tape. Slot numbering: slots [0, num_inputs) are the
/// region inputs in child order; slot num_inputs + j is the result of step
/// j. `rhs` is -1 for unary ops (kExp/kLog).
struct FusedStep {
  FusedOp op = FusedOp::kAdd;
  int32_t lhs = -1;
  int32_t rhs = -1;
  bool operator==(const FusedStep&) const = default;
};

/// \brief Post-order tape of a fused elementwise region.
///
/// All matrix slots share the region shape `rows x cols`; slots flagged in
/// `input_scalar` are scalar-broadcast operands. The last step's result is
/// the region output. Tapes are immutable once built and shared by
/// pointer from the kFusedMap plan node.
struct FusedTape {
  int64_t rows = 0;
  int64_t cols = 0;
  int32_t num_inputs = 0;
  std::vector<uint8_t> input_scalar;  // size num_inputs; 1 = scalar slot
  std::vector<FusedStep> steps;

  bool operator==(const FusedTape&) const = default;

  /// Canonical one-line rendering, e.g. "M,S|t0=sub(i0,i1);t1=div(t0,i2)".
  /// Stable across processes: used in plan ToString and as part of the
  /// matcache canonical key.
  std::string ToString() const;
};

/// Result of executing a fused tape.
struct FusedExecResult {
  Matrix output;
  /// Exact non-zero count of every step's (conceptual) intermediate,
  /// including the final output. Feeds per-step cost booking so the
  /// ledger matches the unfused operator sequence.
  std::vector<int64_t> step_nnz;
  /// True when the CSR value-array fast path ran (all matrix inputs
  /// shared one sparsity structure and zeros stay zeros through the tape).
  bool csr_path = false;
  /// True when the output was computed in place inside a dying input's
  /// dense buffer (no fresh allocation for the result grid).
  bool in_place = false;
};

/// Executes `tape` in a single pass over the data. `matrices` holds the
/// matrix-slot operands in slot order (i.e. skipping scalar slots) and is
/// taken by value: when a dense operand's payload is uniquely owned it is
/// stolen and the output is computed in place (safe because every cell
/// reads all of its inputs before the output cell is written). `scalars`
/// holds the scalar-slot operands in slot order.
Result<FusedExecResult> ExecuteFusedTape(const FusedTape& tape,
                                         std::vector<Matrix> matrices,
                                         const std::vector<double>& scalars);

}  // namespace remac

#endif  // REMAC_MATRIX_FUSED_TAPE_H_
