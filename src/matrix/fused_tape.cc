#include "matrix/fused_tape.h"

#include <algorithm>
#include <atomic>
#include <vector>

#include "common/string_util.h"
#include "matrix/kernel_internal.h"

namespace remac {

namespace {

using internal::ParallelForRows;

/// A resolved operand of a compiled step: either a per-cell value slot
/// (`cell >= 0`, an index into the per-cell scratch array) or a constant
/// (scalar-slot inputs, folded at compile time).
struct Operand {
  int32_t cell = -1;
  double cval = 0.0;
};

struct CompiledStep {
  FusedOp op = FusedOp::kAdd;
  Operand a;
  Operand b;
};

/// The tape lowered for interpretation: scalar slots folded into
/// constants, matrix slots and step results numbered as per-cell scratch
/// cells, and divide-by-scalar turned into the reciprocal multiply the
/// unfused scalar path performs.
struct CompiledTape {
  std::vector<CompiledStep> steps;
  int32_t num_matrix_inputs = 0;
  int32_t num_cells = 0;
  /// Per step, the value a cell outside every input's sparsity structure
  /// takes (all matrix operands zero). Drives the CSR fast-path validity
  /// check and the out-of-structure part of per-step nnz counts.
  std::vector<double> zero_image;
};

Result<CompiledTape> CompileTape(const FusedTape& tape, size_t num_matrices,
                                 const std::vector<double>& scalars) {
  if (tape.num_inputs < 0 ||
      tape.input_scalar.size() != static_cast<size_t>(tape.num_inputs)) {
    return Status::Internal("fused tape: bad input_scalar size");
  }
  if (tape.steps.empty()) {
    return Status::Internal("fused tape: empty step list");
  }
  // Map slot -> operand.
  std::vector<Operand> slot_operand(static_cast<size_t>(tape.num_inputs) +
                                    tape.steps.size());
  CompiledTape out;
  size_t mi = 0;
  size_t si = 0;
  for (int32_t s = 0; s < tape.num_inputs; ++s) {
    if (tape.input_scalar[static_cast<size_t>(s)]) {
      if (si >= scalars.size()) {
        return Status::Internal("fused tape: missing scalar operand");
      }
      slot_operand[static_cast<size_t>(s)] = Operand{-1, scalars[si++]};
    } else {
      slot_operand[static_cast<size_t>(s)] =
          Operand{static_cast<int32_t>(mi++), 0.0};
    }
  }
  if (mi != num_matrices || si != scalars.size()) {
    return Status::Internal("fused tape: operand count mismatch");
  }
  out.num_matrix_inputs = static_cast<int32_t>(mi);
  out.num_cells =
      out.num_matrix_inputs + static_cast<int32_t>(tape.steps.size());
  out.steps.reserve(tape.steps.size());
  for (size_t j = 0; j < tape.steps.size(); ++j) {
    const FusedStep& step = tape.steps[j];
    const int32_t limit = tape.num_inputs + static_cast<int32_t>(j);
    const bool unary = step.op == FusedOp::kExp || step.op == FusedOp::kLog;
    if (step.lhs < 0 || step.lhs >= limit ||
        (unary ? step.rhs != -1 : (step.rhs < 0 || step.rhs >= limit))) {
      return Status::Internal("fused tape: step operand out of range");
    }
    CompiledStep cs;
    cs.op = step.op;
    cs.a = slot_operand[static_cast<size_t>(step.lhs)];
    if (!unary) cs.b = slot_operand[static_cast<size_t>(step.rhs)];
    // Matrix / scalar divides by the reciprocal (the unfused
    // ExecScalarMultiply path), not per-cell division.
    if (cs.op == FusedOp::kDiv && !unary && cs.b.cell < 0) {
      cs.op = FusedOp::kMul;
      cs.b.cval = cs.b.cval == 0.0 ? 0.0 : 1.0 / cs.b.cval;
    }
    slot_operand[tape.num_inputs + j] =
        Operand{out.num_matrix_inputs + static_cast<int32_t>(j), 0.0};
    out.steps.push_back(cs);
  }
  // Zero image: run the tape once with every matrix cell at 0.
  std::vector<double> cells(static_cast<size_t>(out.num_cells), 0.0);
  out.zero_image.resize(out.steps.size());
  for (size_t j = 0; j < out.steps.size(); ++j) {
    const CompiledStep& cs = out.steps[j];
    const double a = cs.a.cell >= 0 ? cells[static_cast<size_t>(cs.a.cell)]
                                    : cs.a.cval;
    const double b = cs.b.cell >= 0 ? cells[static_cast<size_t>(cs.b.cell)]
                                    : cs.b.cval;
    const double v = FusedApply(cs.op, a, b);
    cells[static_cast<size_t>(out.num_matrix_inputs) + j] = v;
    out.zero_image[j] = v;
  }
  return out;
}

/// Cells interpreted per tile: small enough that every step's scratch
/// lane (8 KiB) stays L1-resident, large enough to amortize the per-step
/// dispatch to ~nothing.
constexpr int64_t kTileCells = 1024;

/// One compiled step applied over a tile with the opcode fixed at compile
/// time, so each operand-mode branch is a plain vectorizable loop over
/// FusedApply. A null `pa`/`pb` means the operand is the constant
/// `ca`/`cb` (unary steps pass a null b). Returns the tile's non-zero
/// count.
template <FusedOp Op>
int64_t StepTile(const double* pa, double ca, const double* pb, double cb,
                 double* dst, int64_t len) {
  int64_t nz = 0;
  if (pa != nullptr && pb != nullptr) {
    for (int64_t k = 0; k < len; ++k) {
      const double v = FusedApply(Op, pa[k], pb[k]);
      dst[k] = v;
      nz += v != 0.0 ? 1 : 0;
    }
  } else if (pa != nullptr) {
    for (int64_t k = 0; k < len; ++k) {
      const double v = FusedApply(Op, pa[k], cb);
      dst[k] = v;
      nz += v != 0.0 ? 1 : 0;
    }
  } else if (pb != nullptr) {
    for (int64_t k = 0; k < len; ++k) {
      const double v = FusedApply(Op, ca, pb[k]);
      dst[k] = v;
      nz += v != 0.0 ? 1 : 0;
    }
  } else {
    const double v = FusedApply(Op, ca, cb);
    for (int64_t k = 0; k < len; ++k) dst[k] = v;
    nz = v != 0.0 ? len : 0;
  }
  return nz;
}

int64_t StepTileDispatch(FusedOp op, const double* pa, double ca,
                         const double* pb, double cb, double* dst,
                         int64_t len) {
  switch (op) {
    case FusedOp::kAdd: return StepTile<FusedOp::kAdd>(pa, ca, pb, cb, dst, len);
    case FusedOp::kSub: return StepTile<FusedOp::kSub>(pa, ca, pb, cb, dst, len);
    case FusedOp::kMul: return StepTile<FusedOp::kMul>(pa, ca, pb, cb, dst, len);
    case FusedOp::kDiv: return StepTile<FusedOp::kDiv>(pa, ca, pb, cb, dst, len);
    case FusedOp::kMin: return StepTile<FusedOp::kMin>(pa, ca, pb, cb, dst, len);
    case FusedOp::kMax: return StepTile<FusedOp::kMax>(pa, ca, pb, cb, dst, len);
    case FusedOp::kExp: return StepTile<FusedOp::kExp>(pa, ca, pb, cb, dst, len);
    case FusedOp::kLog: return StepTile<FusedOp::kLog>(pa, ca, pb, cb, dst, len);
  }
  return 0;
}

/// Runs the compiled steps over `count` flat cells, loading matrix-slot
/// values through `in_ptr`, writing the final step's value to `out` and
/// exact per-step non-zero counts to `nnz_out`. Tile-at-a-time: each step
/// sweeps a kTileCells-wide lane before the next step runs, which keeps
/// every intermediate in L1 instead of materializing it (the whole point
/// of fusing), while the fixed-opcode inner loops vectorize like the
/// unfused kernels. The final step streams straight into `out`; when
/// `out` aliases a stolen input this is still safe, because an
/// elementwise step reads cell k of every operand before writing cell k,
/// and earlier steps only touch the current tile's range. Parallel over
/// fixed flat ranges; integer counts fold order-independently, so the
/// result never depends on the thread count.
void RunCells(const CompiledTape& ct, const std::vector<const double*>& in_ptr,
              int64_t count, double* out, std::vector<int64_t>* nnz_out) {
  const size_t ns = ct.steps.size();
  const size_t nm = static_cast<size_t>(ct.num_matrix_inputs);
  std::vector<std::atomic<int64_t>> counts(ns);
  ParallelForRows(count, static_cast<int64_t>(ns), [&](int64_t i0,
                                                       int64_t i1) {
    std::vector<double> scratch(ns * static_cast<size_t>(kTileCells));
    std::vector<int64_t> local(ns, 0);
    for (int64_t t = i0; t < i1; t += kTileCells) {
      const int64_t len = std::min(kTileCells, i1 - t);
      auto lane = [&](const Operand& o) -> const double* {
        if (o.cell < 0) return nullptr;
        if (o.cell < static_cast<int32_t>(nm)) return in_ptr[o.cell] + t;
        return scratch.data() +
               static_cast<size_t>(o.cell - static_cast<int32_t>(nm)) *
                   static_cast<size_t>(kTileCells);
      };
      for (size_t j = 0; j < ns; ++j) {
        const CompiledStep& cs = ct.steps[j];
        double* dst = j + 1 == ns
                          ? out + t
                          : scratch.data() + j * static_cast<size_t>(kTileCells);
        local[j] += StepTileDispatch(cs.op, lane(cs.a), cs.a.cval, lane(cs.b),
                                     cs.b.cval, dst, len);
      }
    }
    for (size_t j = 0; j < ns; ++j) {
      counts[j].fetch_add(local[j], std::memory_order_relaxed);
    }
  });
  nnz_out->resize(ns);
  for (size_t j = 0; j < ns; ++j) {
    (*nnz_out)[j] = counts[j].load(std::memory_order_relaxed);
  }
}

/// True when every matrix operand is CSR with one shared sparsity
/// structure (identical row_ptr and col_idx).
bool SharedCsrStructure(const std::vector<Matrix>& matrices) {
  if (matrices.empty()) return false;
  for (const Matrix& m : matrices) {
    if (m.is_dense()) return false;
  }
  const CsrMatrix& base = matrices[0].csr();
  for (size_t i = 1; i < matrices.size(); ++i) {
    const CsrMatrix& other = matrices[i].csr();
    if (&other == &base) continue;
    if (other.nnz() != base.nnz()) return false;
    if (other.row_ptr() != base.row_ptr()) return false;
    if (other.col_idx() != base.col_idx()) return false;
  }
  return true;
}

}  // namespace

const char* FusedOpName(FusedOp op) {
  switch (op) {
    case FusedOp::kAdd: return "add";
    case FusedOp::kSub: return "sub";
    case FusedOp::kMul: return "mul";
    case FusedOp::kDiv: return "div";
    case FusedOp::kMin: return "min";
    case FusedOp::kMax: return "max";
    case FusedOp::kExp: return "exp";
    case FusedOp::kLog: return "log";
  }
  return "?";
}

std::string FusedTape::ToString() const {
  std::string out;
  for (int32_t s = 0; s < num_inputs; ++s) {
    if (s > 0) out += ",";
    out += input_scalar[static_cast<size_t>(s)] ? "S" : "M";
  }
  out += "|";
  auto slot_name = [&](int32_t slot) {
    if (slot < num_inputs) return StringFormat("i%d", slot);
    return StringFormat("t%d", slot - num_inputs);
  };
  for (size_t j = 0; j < steps.size(); ++j) {
    if (j > 0) out += ";";
    const FusedStep& step = steps[j];
    out += StringFormat("t%d=%s(", static_cast<int>(j), FusedOpName(step.op));
    out += slot_name(step.lhs);
    if (step.rhs >= 0) {
      out += ",";
      out += slot_name(step.rhs);
    }
    out += ")";
  }
  return out;
}

Result<FusedExecResult> ExecuteFusedTape(const FusedTape& tape,
                                         std::vector<Matrix> matrices,
                                         const std::vector<double>& scalars) {
  for (const Matrix& m : matrices) {
    if (m.rows() != tape.rows || m.cols() != tape.cols) {
      return Status::Internal(StringFormat(
          "fused tape: operand is %lld x %lld, region is %lld x %lld",
          static_cast<long long>(m.rows()), static_cast<long long>(m.cols()),
          static_cast<long long>(tape.rows),
          static_cast<long long>(tape.cols)));
    }
  }
  REMAC_ASSIGN_OR_RETURN(const CompiledTape ct,
                         CompileTape(tape, matrices.size(), scalars));
  const int64_t total = tape.rows * tape.cols;
  FusedExecResult result;

  // CSR value-array fast path: all matrix operands share one structure
  // and cells outside it end at exactly 0, so only the stored values need
  // to run through the tape.
  if (total > 0 && SharedCsrStructure(matrices) &&
      ct.zero_image.back() == 0.0) {
    const CsrMatrix& base = matrices[0].csr();
    const int64_t snnz = base.nnz();
    std::vector<const double*> in_ptr(matrices.size());
    for (size_t i = 0; i < matrices.size(); ++i) {
      in_ptr[i] = matrices[i].csr().values().data();
    }
    std::vector<double> out_vals(static_cast<size_t>(snnz));
    RunCells(ct, in_ptr, snnz, out_vals.data(), &result.step_nnz);
    // Out-of-structure cells follow the zero image: a step whose image is
    // non-zero (e.g. an interior "+ s") conceptually densifies, exactly as
    // its unfused counterpart would have.
    for (size_t j = 0; j < result.step_nnz.size(); ++j) {
      if (ct.zero_image[j] != 0.0) result.step_nnz[j] += total - snnz;
    }
    // Rebuild the structure, dropping cells the tape zeroed.
    CsrMatrix out(tape.rows, tape.cols);
    auto& row_ptr = out.mutable_row_ptr();
    auto& cols = out.mutable_col_idx();
    auto& vals = out.mutable_values();
    cols.reserve(static_cast<size_t>(snnz));
    vals.reserve(static_cast<size_t>(snnz));
    for (int64_t r = 0; r < tape.rows; ++r) {
      for (int64_t k = base.row_ptr()[r]; k < base.row_ptr()[r + 1]; ++k) {
        const double v = out_vals[static_cast<size_t>(k)];
        if (v != 0.0) {
          cols.push_back(base.col_idx()[k]);
          vals.push_back(v);
        }
      }
      row_ptr[r + 1] = static_cast<int64_t>(vals.size());
    }
    result.output = Matrix::FromCsr(std::move(out));
    result.csr_path = true;
    return result;
  }

  // Dense path. Try to run in place inside a dying dense input: safe
  // because each flat cell reads every operand before its own output cell
  // is written, and parallel ranges are disjoint.
  DenseMatrix out_buf;
  int64_t stolen_slot = -1;
  for (size_t i = 0; i < matrices.size(); ++i) {
    if (matrices[i].TryReleaseDense(&out_buf)) {
      stolen_slot = static_cast<int64_t>(i);
      break;
    }
  }
  if (stolen_slot < 0) out_buf = DenseMatrix(tape.rows, tape.cols);
  std::vector<DenseMatrix> temps;
  temps.reserve(matrices.size());
  std::vector<const double*> in_ptr(matrices.size());
  for (size_t i = 0; i < matrices.size(); ++i) {
    if (static_cast<int64_t>(i) == stolen_slot) {
      in_ptr[i] = out_buf.data();
    } else if (matrices[i].is_dense()) {
      in_ptr[i] = matrices[i].dense().data();
    } else {
      temps.push_back(matrices[i].csr().ToDense());
      in_ptr[i] = temps.back().data();
    }
  }
  RunCells(ct, in_ptr, total, out_buf.data(), &result.step_nnz);
  result.output = Matrix::FromDense(std::move(out_buf));
  result.in_place = stolen_slot >= 0;
  return result;
}

}  // namespace remac
