#ifndef REMAC_MATRIX_MATRIX_H_
#define REMAC_MATRIX_MATRIX_H_

#include <cstdint>
#include <memory>
#include <variant>

#include "matrix/csr_matrix.h"
#include "matrix/dense_matrix.h"
#include "matrix/storage_format.h"

namespace remac {

/// Storage format of a Matrix.
enum class MatrixFormat { kDense, kSparse };

/// \brief Format-polymorphic matrix value.
///
/// Wraps either a DenseMatrix or a CsrMatrix behind a shared immutable
/// payload, so copies are cheap (matrices flow through plan execution by
/// value). The format is chosen from the actual sparsity at construction
/// unless explicitly forced.
class Matrix {
 public:
  Matrix();

  /// Wraps a dense payload, converting to CSR if sparsity <= 0.4.
  static Matrix FromDense(DenseMatrix dense);

  /// Wraps a sparse payload, converting to dense if sparsity > 0.4.
  static Matrix FromCsr(CsrMatrix csr);

  /// Keeps the given payload's format regardless of sparsity.
  static Matrix WrapDense(DenseMatrix dense);
  static Matrix WrapCsr(CsrMatrix csr);

  /// n x n identity (stored sparse for n > 2).
  static Matrix Identity(int64_t n);

  /// rows x cols matrix of zeros (stored sparse).
  static Matrix Zeros(int64_t rows, int64_t cols);

  int64_t rows() const;
  int64_t cols() const;
  int64_t nnz() const;
  double Sparsity() const;
  MatrixFormat format() const { return format_; }
  bool is_dense() const { return format_ == MatrixFormat::kDense; }

  /// In-memory footprint in the current format.
  int64_t SizeInBytes() const;

  /// Exact resident footprint of the stored payload in its current
  /// format: the dense value buffer, or the CSR value + column-index +
  /// row-pointer arrays. The byte currency of the materialized
  /// intermediate cache and resident-bytes accounting.
  int64_t BytesUsed() const;

  /// The dense payload; requires is_dense().
  const DenseMatrix& dense() const;
  /// The sparse payload; requires !is_dense().
  const CsrMatrix& csr() const;

  /// Materializes a dense copy regardless of the stored format.
  DenseMatrix ToDense() const;
  /// Materializes a CSR copy regardless of the stored format.
  CsrMatrix ToCsr() const;

  /// Element read in either format (O(log rowNnz) for sparse).
  double At(int64_t r, int64_t c) const;

  /// Element-wise comparison across formats.
  bool ApproxEquals(const Matrix& other, double tolerance = 1e-9) const;

  /// Buffer reuse for dying values: when this matrix is dense and the
  /// sole owner of its payload, moves the payload into `*out` (leaving
  /// this matrix empty) and returns true. Callers may then compute a new
  /// result in place of the released buffer. Returns false — and leaves
  /// the matrix untouched — whenever the payload is shared (environment
  /// copies, cached intermediates, concurrent task snapshots), which is
  /// what makes stealing always safe to attempt.
  bool TryReleaseDense(DenseMatrix* out);

 private:
  MatrixFormat format_ = MatrixFormat::kDense;
  std::shared_ptr<const DenseMatrix> dense_;
  std::shared_ptr<const CsrMatrix> csr_;
  int64_t nnz_ = 0;
};

}  // namespace remac

#endif  // REMAC_MATRIX_MATRIX_H_
