#ifndef REMAC_MATRIX_CSR_MATRIX_H_
#define REMAC_MATRIX_CSR_MATRIX_H_

#include <cstdint>
#include <vector>

#include "matrix/dense_matrix.h"

namespace remac {

/// \brief Compressed-sparse-row matrix of doubles.
///
/// Column indices within each row are kept sorted. This is the sparse
/// storage format the cost model assumes (size = alpha * sparsity + beta,
/// cf. Section 4.2 of the paper).
class CsrMatrix {
 public:
  CsrMatrix() = default;
  CsrMatrix(int64_t rows, int64_t cols);

  /// Builds from coordinate triplets; duplicates are summed.
  static CsrMatrix FromTriplets(
      int64_t rows, int64_t cols,
      std::vector<std::tuple<int64_t, int64_t, double>> triplets);

  /// Converts a dense matrix, dropping exact zeros.
  static CsrMatrix FromDense(const DenseMatrix& dense);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(values_.size()); }

  double Sparsity() const {
    if (rows_ == 0 || cols_ == 0) return 0.0;
    return static_cast<double>(nnz()) / static_cast<double>(rows_ * cols_);
  }

  /// CSR memory footprint: values + column indices + row pointers.
  int64_t SizeInBytes() const {
    return nnz() * (8 + 4) + (rows_ + 1) * 8 + 16;
  }

  /// Exact resident payload: values + column indices + row pointers as
  /// actually allocated (no header estimate).
  int64_t BytesUsed() const {
    return static_cast<int64_t>(values_.size() * sizeof(double)) +
           static_cast<int64_t>(col_idx_.size() * sizeof(int32_t)) +
           static_cast<int64_t>(row_ptr_.size() * sizeof(int64_t));
  }

  const std::vector<int64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<int32_t>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }

  std::vector<int64_t>& mutable_row_ptr() { return row_ptr_; }
  std::vector<int32_t>& mutable_col_idx() { return col_idx_; }
  std::vector<double>& mutable_values() { return values_; }

  /// Number of stored entries in row r.
  int64_t RowNnz(int64_t r) const { return row_ptr_[r + 1] - row_ptr_[r]; }

  /// Materializes the dense equivalent (for tests and small results).
  DenseMatrix ToDense() const;

  /// Per-row and per-column non-zero counts (used by the MNC sketch).
  std::vector<int64_t> RowCounts() const;
  std::vector<int64_t> ColCounts() const;

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<int64_t> row_ptr_;  // size rows_ + 1
  std::vector<int32_t> col_idx_;
  std::vector<double> values_;
};

}  // namespace remac

#endif  // REMAC_MATRIX_CSR_MATRIX_H_
