#include "matrix/kernels.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <cstring>
#include <functional>
#include <thread>
#include <vector>

#include "common/string_util.h"
#include "sched/thread_pool.h"

namespace remac {

namespace {

std::atomic<int> g_kernel_threads{0};

Status ShapeError(const char* op, const Matrix& a, const Matrix& b) {
  return Status::DimensionMismatch(StringFormat(
      "%s: (%lld x %lld) vs (%lld x %lld)", op,
      static_cast<long long>(a.rows()), static_cast<long long>(a.cols()),
      static_cast<long long>(b.rows()), static_cast<long long>(b.cols())));
}

/// Runs fn(first_row, last_row) across KernelThreads() workers on the
/// shared scheduler pool. Chunk boundaries depend only on KernelThreads(),
/// never on the pool size, so results are bitwise-identical no matter how
/// many threads actually execute (and some kernels derive a worker index
/// from r0 / chunk).
void ParallelForRows(int64_t rows, const std::function<void(int64_t, int64_t)>& fn) {
  const int threads = KernelThreads();
  if (threads <= 1 || rows < 256) {
    fn(0, rows);
    return;
  }
  const int64_t chunk = (rows + threads - 1) / threads;
  std::vector<std::function<void()>> tasks;
  tasks.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    const int64_t begin = t * chunk;
    const int64_t end = std::min(rows, begin + chunk);
    if (begin >= end) break;
    tasks.push_back([&fn, begin, end] { fn(begin, end); });
  }
  ThreadPool::Global().RunAndWait(std::move(tasks));
}

DenseMatrix MultiplyDenseDense(const DenseMatrix& a, const DenseMatrix& b) {
  const int64_t m = a.rows();
  const int64_t k = a.cols();
  const int64_t n = b.cols();
  DenseMatrix c(m, n);
  const double* pa = a.data();
  const double* pb = b.data();
  double* pc = c.data();
  ParallelForRows(m, [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      double* ci = pc + i * n;
      const double* ai = pa + i * k;
      for (int64_t j = 0; j < k; ++j) {
        const double v = ai[j];
        if (v == 0.0) continue;
        const double* bj = pb + j * n;
        for (int64_t x = 0; x < n; ++x) ci[x] += v * bj[x];
      }
    }
  });
  return c;
}

DenseMatrix MultiplySparseDense(const CsrMatrix& a, const DenseMatrix& b) {
  const int64_t m = a.rows();
  const int64_t n = b.cols();
  DenseMatrix c(m, n);
  const double* pb = b.data();
  double* pc = c.data();
  ParallelForRows(m, [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      double* ci = pc + i * n;
      for (int64_t p = a.row_ptr()[i]; p < a.row_ptr()[i + 1]; ++p) {
        const double v = a.values()[p];
        const double* bj = pb + static_cast<int64_t>(a.col_idx()[p]) * n;
        for (int64_t x = 0; x < n; ++x) ci[x] += v * bj[x];
      }
    }
  });
  return c;
}

DenseMatrix MultiplyDenseSparse(const DenseMatrix& a, const CsrMatrix& b) {
  const int64_t m = a.rows();
  const int64_t k = a.cols();
  const int64_t n = b.cols();
  DenseMatrix c(m, n);
  const double* pa = a.data();
  double* pc = c.data();
  ParallelForRows(m, [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      double* ci = pc + i * n;
      const double* ai = pa + i * k;
      for (int64_t j = 0; j < k; ++j) {
        const double v = ai[j];
        if (v == 0.0) continue;
        for (int64_t p = b.row_ptr()[j]; p < b.row_ptr()[j + 1]; ++p) {
          ci[b.col_idx()[p]] += v * b.values()[p];
        }
      }
    }
  });
  return c;
}

CsrMatrix MultiplySparseSparse(const CsrMatrix& a, const CsrMatrix& b) {
  // Gustavson's algorithm with a dense accumulator per output row.
  const int64_t m = a.rows();
  const int64_t n = b.cols();
  std::vector<std::vector<int64_t>> row_ptr_parts;
  CsrMatrix c(m, n);
  auto& row_ptr = c.mutable_row_ptr();
  // First pass per thread-range into local buffers, then stitch.
  const int threads = std::max(1, KernelThreads());
  const int64_t chunk = (m + threads - 1) / threads;
  struct Part {
    std::vector<int32_t> cols;
    std::vector<double> vals;
    std::vector<int64_t> row_nnz;
  };
  std::vector<Part> parts(static_cast<size_t>(threads));
  ParallelForRows(m, [&](int64_t r0, int64_t r1) {
    const int tid = static_cast<int>(r0 / std::max<int64_t>(1, chunk));
    Part& part = parts[static_cast<size_t>(std::min(tid, threads - 1))];
    std::vector<double> acc(static_cast<size_t>(n), 0.0);
    std::vector<int32_t> touched;
    for (int64_t i = r0; i < r1; ++i) {
      touched.clear();
      for (int64_t p = a.row_ptr()[i]; p < a.row_ptr()[i + 1]; ++p) {
        const double va = a.values()[p];
        const int64_t j = a.col_idx()[p];
        for (int64_t q = b.row_ptr()[j]; q < b.row_ptr()[j + 1]; ++q) {
          const int32_t col = b.col_idx()[q];
          if (acc[col] == 0.0) touched.push_back(col);
          acc[col] += va * b.values()[q];
        }
      }
      std::sort(touched.begin(), touched.end());
      int64_t nnz_row = 0;
      for (int32_t col : touched) {
        if (acc[col] != 0.0) {
          part.cols.push_back(col);
          part.vals.push_back(acc[col]);
          ++nnz_row;
        }
        acc[col] = 0.0;
      }
      part.row_nnz.push_back(nnz_row);
    }
  });
  // Stitch parts in row order.
  auto& out_cols = c.mutable_col_idx();
  auto& out_vals = c.mutable_values();
  int64_t row = 0;
  for (const Part& part : parts) {
    for (int64_t nnz_row : part.row_nnz) {
      row_ptr[row + 1] = row_ptr[row] + nnz_row;
      ++row;
    }
    out_cols.insert(out_cols.end(), part.cols.begin(), part.cols.end());
    out_vals.insert(out_vals.end(), part.vals.begin(), part.vals.end());
  }
  for (; row < m; ++row) row_ptr[row + 1] = row_ptr[row];
  return c;
}

CsrMatrix TransposeCsr(const CsrMatrix& a) {
  const int64_t m = a.rows();
  const int64_t n = a.cols();
  CsrMatrix t(n, m);
  auto& row_ptr = t.mutable_row_ptr();
  auto& col_idx = t.mutable_col_idx();
  auto& values = t.mutable_values();
  col_idx.resize(static_cast<size_t>(a.nnz()));
  values.resize(static_cast<size_t>(a.nnz()));
  // Counting sort by column.
  for (int32_t c : a.col_idx()) ++row_ptr[c + 1];
  for (int64_t i = 0; i < n; ++i) row_ptr[i + 1] += row_ptr[i];
  std::vector<int64_t> cursor(row_ptr.begin(), row_ptr.end() - 1);
  for (int64_t r = 0; r < m; ++r) {
    for (int64_t p = a.row_ptr()[r]; p < a.row_ptr()[r + 1]; ++p) {
      const int64_t dst = cursor[a.col_idx()[p]]++;
      col_idx[dst] = static_cast<int32_t>(r);
      values[dst] = a.values()[p];
    }
  }
  return t;
}

DenseMatrix TransposeDense(const DenseMatrix& a) {
  DenseMatrix t(a.cols(), a.rows());
  for (int64_t r = 0; r < a.rows(); ++r) {
    for (int64_t c = 0; c < a.cols(); ++c) {
      t.At(c, r) = a.At(r, c);
    }
  }
  return t;
}

template <typename Op>
Result<Matrix> ElementwiseBinary(const char* name, const Matrix& a,
                                 const Matrix& b, Op op,
                                 bool zero_zero_is_zero) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return ShapeError(name, a, b);
  }
  if (!a.is_dense() && !b.is_dense() && zero_zero_is_zero) {
    // Sparse-safe op: merge the two CSR row lists.
    const CsrMatrix& sa = a.csr();
    const CsrMatrix& sb = b.csr();
    CsrMatrix out(a.rows(), a.cols());
    auto& row_ptr = out.mutable_row_ptr();
    auto& cols = out.mutable_col_idx();
    auto& vals = out.mutable_values();
    for (int64_t r = 0; r < a.rows(); ++r) {
      int64_t pa = sa.row_ptr()[r];
      int64_t pb = sb.row_ptr()[r];
      const int64_t ea = sa.row_ptr()[r + 1];
      const int64_t eb = sb.row_ptr()[r + 1];
      while (pa < ea || pb < eb) {
        const int32_t ca = pa < ea ? sa.col_idx()[pa] : INT32_MAX;
        const int32_t cb = pb < eb ? sb.col_idx()[pb] : INT32_MAX;
        const int32_t col = std::min(ca, cb);
        double va = 0.0;
        double vb = 0.0;
        if (ca == col) va = sa.values()[pa++];
        if (cb == col) vb = sb.values()[pb++];
        const double v = op(va, vb);
        if (v != 0.0) {
          cols.push_back(col);
          vals.push_back(v);
        }
      }
      row_ptr[r + 1] = static_cast<int64_t>(vals.size());
    }
    return Matrix::FromCsr(std::move(out));
  }
  DenseMatrix da = a.ToDense();
  const DenseMatrix db = b.ToDense();
  double* pa = da.data();
  const double* pb = db.data();
  const int64_t total = da.size();
  for (int64_t i = 0; i < total; ++i) pa[i] = op(pa[i], pb[i]);
  return Matrix::FromDense(std::move(da));
}

}  // namespace

int KernelThreads() {
  const int override_threads = g_kernel_threads.load(std::memory_order_relaxed);
  if (override_threads > 0) return override_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(std::min(hw, 16u));
}

void SetKernelThreads(int threads) {
  g_kernel_threads.store(threads, std::memory_order_relaxed);
}

Result<Matrix> Multiply(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) return ShapeError("multiply", a, b);
  if (a.is_dense() && b.is_dense()) {
    return Matrix::FromDense(MultiplyDenseDense(a.dense(), b.dense()));
  }
  if (!a.is_dense() && b.is_dense()) {
    return Matrix::FromDense(MultiplySparseDense(a.csr(), b.dense()));
  }
  if (a.is_dense() && !b.is_dense()) {
    return Matrix::FromDense(MultiplyDenseSparse(a.dense(), b.csr()));
  }
  return Matrix::FromCsr(MultiplySparseSparse(a.csr(), b.csr()));
}

Matrix Transpose(const Matrix& a) {
  if (a.is_dense()) return Matrix::WrapDense(TransposeDense(a.dense()));
  return Matrix::WrapCsr(TransposeCsr(a.csr()));
}

Result<Matrix> Add(const Matrix& a, const Matrix& b) {
  return ElementwiseBinary(
      "add", a, b, [](double x, double y) { return x + y; },
      /*zero_zero_is_zero=*/true);
}

Result<Matrix> Subtract(const Matrix& a, const Matrix& b) {
  return ElementwiseBinary(
      "subtract", a, b, [](double x, double y) { return x - y; },
      /*zero_zero_is_zero=*/true);
}

Result<Matrix> ElementwiseMultiply(const Matrix& a, const Matrix& b) {
  return ElementwiseBinary(
      "elementwise multiply", a, b, [](double x, double y) { return x * y; },
      /*zero_zero_is_zero=*/true);
}

Result<Matrix> ElementwiseDivide(const Matrix& a, const Matrix& b) {
  return ElementwiseBinary(
      "elementwise divide", a, b,
      [](double x, double y) { return y == 0.0 ? 0.0 : x / y; },
      /*zero_zero_is_zero=*/true);
}

Matrix ScalarMultiply(const Matrix& a, double s) {
  if (a.is_dense()) {
    DenseMatrix d = a.dense();
    for (int64_t i = 0; i < d.size(); ++i) d.data()[i] *= s;
    return Matrix::FromDense(std::move(d));
  }
  CsrMatrix c = a.csr();
  for (auto& v : c.mutable_values()) v *= s;
  return Matrix::FromCsr(std::move(c));
}

Matrix ScalarAdd(const Matrix& a, double s) {
  DenseMatrix d = a.ToDense();
  for (int64_t i = 0; i < d.size(); ++i) d.data()[i] += s;
  return Matrix::FromDense(std::move(d));
}

Matrix Negate(const Matrix& a) { return ScalarMultiply(a, -1.0); }

double SumAll(const Matrix& a) {
  double total = 0.0;
  if (a.is_dense()) {
    for (int64_t i = 0; i < a.dense().size(); ++i) total += a.dense().data()[i];
  } else {
    for (double v : a.csr().values()) total += v;
  }
  return total;
}

double FrobeniusNorm(const Matrix& a) {
  double total = 0.0;
  if (a.is_dense()) {
    for (int64_t i = 0; i < a.dense().size(); ++i) {
      const double v = a.dense().data()[i];
      total += v * v;
    }
  } else {
    for (double v : a.csr().values()) total += v * v;
  }
  return std::sqrt(total);
}

Result<int64_t> MultiplyNnzExact(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) return ShapeError("multiply-nnz", a, b);
  const CsrMatrix sa = a.ToCsr();
  const CsrMatrix sb = b.ToCsr();
  std::vector<char> seen(static_cast<size_t>(b.cols()), 0);
  std::vector<int32_t> touched;
  int64_t nnz = 0;
  for (int64_t i = 0; i < sa.rows(); ++i) {
    touched.clear();
    for (int64_t p = sa.row_ptr()[i]; p < sa.row_ptr()[i + 1]; ++p) {
      const int64_t j = sa.col_idx()[p];
      for (int64_t q = sb.row_ptr()[j]; q < sb.row_ptr()[j + 1]; ++q) {
        const int32_t col = sb.col_idx()[q];
        if (!seen[col]) {
          seen[col] = 1;
          touched.push_back(col);
        }
      }
    }
    nnz += static_cast<int64_t>(touched.size());
    for (int32_t col : touched) seen[col] = 0;
  }
  return nnz;
}

}  // namespace remac
