#include "matrix/kernels.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <cstring>
#include <functional>
#include <thread>
#include <vector>

#include "common/string_util.h"
#include "matrix/fused_tape.h"
#include "matrix/kernel_internal.h"
#include "sched/thread_pool.h"

namespace remac {

namespace internal {

void ParallelForRows(int64_t rows, int64_t row_work,
                     const std::function<void(int64_t, int64_t)>& fn) {
  const int threads = KernelThreads();
  const int64_t total_work = rows * std::max<int64_t>(1, row_work);
  if (threads <= 1 || rows <= 1 || total_work < kParallelGrainWork) {
    fn(0, rows);
    return;
  }
  const int64_t chunk = (rows + threads - 1) / threads;
  const int task_count =
      static_cast<int>((rows + chunk - 1) / std::max<int64_t>(1, chunk));
  // Stable range records first, then one exactly-reserved task vector whose
  // closures capture a single pointer each (fits the std::function small
  // buffer — no per-task heap allocation).
  struct RowRange {
    const std::function<void(int64_t, int64_t)>* fn;
    int64_t begin;
    int64_t end;
  };
  std::vector<RowRange> ranges;
  ranges.reserve(static_cast<size_t>(task_count));
  for (int t = 0; t < task_count; ++t) {
    const int64_t begin = t * chunk;
    const int64_t end = std::min(rows, begin + chunk);
    if (begin >= end) break;
    ranges.push_back(RowRange{&fn, begin, end});
  }
  std::vector<std::function<void()>> tasks;
  tasks.reserve(ranges.size());
  for (const RowRange& range : ranges) {
    const RowRange* r = &range;
    tasks.emplace_back([r] { (*r->fn)(r->begin, r->end); });
  }
  Metrics().parallel_tasks->Add(static_cast<int64_t>(tasks.size()));
  ThreadPool::Global().RunAndWait(std::move(tasks));
}

}  // namespace internal

namespace {

using internal::kReductionChunk;
using internal::CsrRows;
using internal::Metrics;
using internal::MultiplyDenseDenseBlocked;
using internal::MultiplyDenseDenseNaive;
using internal::MultiplySparseDenseCore;
using internal::MultiplySparseSparseCore;
using internal::ParallelForRows;

std::atomic<int> g_kernel_threads{0};

Status ShapeError(const char* op, const Matrix& a, const Matrix& b) {
  return internal::ShapeErrorDims(op, a.rows(), a.cols(), b.rows(), b.cols());
}

DenseMatrix MultiplyDenseSparse(const DenseMatrix& a, const CsrMatrix& b) {
  const int64_t m = a.rows();
  const int64_t k = a.cols();
  const int64_t n = b.cols();
  DenseMatrix c(m, n);
  const double* pa = a.data();
  double* pc = c.data();
  const int64_t row_work = std::max<int64_t>(k, b.nnz());
  ParallelForRows(m, row_work, [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      double* ci = pc + i * n;
      const double* ai = pa + i * k;
      for (int64_t j = 0; j < k; ++j) {
        const double v = ai[j];
        if (v == 0.0) continue;
        for (int64_t p = b.row_ptr()[j]; p < b.row_ptr()[j + 1]; ++p) {
          ci[b.col_idx()[p]] += v * b.values()[p];
        }
      }
    }
  });
  return c;
}

CsrMatrix TransposeCsr(const CsrMatrix& a) {
  const int64_t m = a.rows();
  const int64_t n = a.cols();
  CsrMatrix t(n, m);
  auto& row_ptr = t.mutable_row_ptr();
  auto& col_idx = t.mutable_col_idx();
  auto& values = t.mutable_values();
  col_idx.resize(static_cast<size_t>(a.nnz()));
  values.resize(static_cast<size_t>(a.nnz()));
  // Counting sort by column.
  for (int32_t c : a.col_idx()) ++row_ptr[c + 1];
  for (int64_t i = 0; i < n; ++i) row_ptr[i + 1] += row_ptr[i];
  std::vector<int64_t> cursor(row_ptr.begin(), row_ptr.end() - 1);
  for (int64_t r = 0; r < m; ++r) {
    for (int64_t p = a.row_ptr()[r]; p < a.row_ptr()[r + 1]; ++p) {
      const int64_t dst = cursor[a.col_idx()[p]]++;
      col_idx[dst] = static_cast<int32_t>(r);
      values[dst] = a.values()[p];
    }
  }
  return t;
}

/// Blocked transpose: the output is written row-contiguously in square
/// tiles so both source and destination stay within a few cache lines per
/// tile. Parallel over output rows; pure data movement, so there is no
/// floating-point ordering to preserve.
DenseMatrix TransposeDense(const DenseMatrix& a) {
  const int64_t m = a.rows();
  const int64_t n = a.cols();
  DenseMatrix t(n, m);
  const double* pa = a.data();
  double* pt = t.data();
  constexpr int64_t kTile = 32;
  ParallelForRows(n, m, [&](int64_t r0, int64_t r1) {
    for (int64_t c0 = r0; c0 < r1; c0 += kTile) {
      const int64_t ce = std::min(r1, c0 + kTile);
      for (int64_t b0 = 0; b0 < m; b0 += kTile) {
        const int64_t be = std::min(m, b0 + kTile);
        for (int64_t c = c0; c < ce; ++c) {
          double* tr = pt + c * m;
          for (int64_t r = b0; r < be; ++r) tr[r] = pa[r * n + c];
        }
      }
    }
  });
  return t;
}

template <typename Op>
Result<Matrix> ElementwiseBinary(const char* name, const Matrix& a,
                                 const Matrix& b, Op op,
                                 bool zero_zero_is_zero) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return ShapeError(name, a, b);
  }
  Metrics().elementwise_ops->Add();
  if (!a.is_dense() && !b.is_dense() && zero_zero_is_zero) {
    // Sparse-safe op: merge the two CSR row lists.
    const CsrMatrix& sa = a.csr();
    const CsrMatrix& sb = b.csr();
    CsrMatrix out(a.rows(), a.cols());
    auto& row_ptr = out.mutable_row_ptr();
    auto& cols = out.mutable_col_idx();
    auto& vals = out.mutable_values();
    for (int64_t r = 0; r < a.rows(); ++r) {
      int64_t pa = sa.row_ptr()[r];
      int64_t pb = sb.row_ptr()[r];
      const int64_t ea = sa.row_ptr()[r + 1];
      const int64_t eb = sb.row_ptr()[r + 1];
      while (pa < ea || pb < eb) {
        const int32_t ca = pa < ea ? sa.col_idx()[pa] : INT32_MAX;
        const int32_t cb = pb < eb ? sb.col_idx()[pb] : INT32_MAX;
        const int32_t col = std::min(ca, cb);
        double va = 0.0;
        double vb = 0.0;
        if (ca == col) va = sa.values()[pa++];
        if (cb == col) vb = sb.values()[pb++];
        const double v = op(va, vb);
        if (v != 0.0) {
          cols.push_back(col);
          vals.push_back(v);
        }
      }
      row_ptr[r + 1] = static_cast<int64_t>(vals.size());
    }
    return Matrix::FromCsr(std::move(out));
  }
  DenseMatrix da = a.ToDense();
  const DenseMatrix db = b.ToDense();
  double* pa = da.data();
  const double* pb = db.data();
  // Cells are independent: parallelize over flat element ranges with the
  // shared element-count heuristic (rows=size, row_work=1).
  ParallelForRows(da.size(), 1, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) pa[i] = op(pa[i], pb[i]);
  });
  return Matrix::FromDense(std::move(da));
}

/// Deterministic chunked reduction: data is split into fixed-size chunks
/// (independent of thread count), each chunk is summed serially in index
/// order, and the per-chunk partials are folded in chunk order. The result
/// therefore never depends on how many threads ran. `transform` maps each
/// element before accumulation (identity for SumAll, square for the norm).
template <typename Transform>
double ChunkedReduce(const double* data, int64_t count, Transform transform) {
  if (count == 0) return 0.0;
  const int64_t chunks = (count + kReductionChunk - 1) / kReductionChunk;
  std::vector<double> partials(static_cast<size_t>(chunks), 0.0);
  ParallelForRows(chunks, kReductionChunk, [&](int64_t c0, int64_t c1) {
    for (int64_t c = c0; c < c1; ++c) {
      const int64_t begin = c * kReductionChunk;
      const int64_t end = std::min(count, begin + kReductionChunk);
      double s = 0.0;
      for (int64_t i = begin; i < end; ++i) s += transform(data[i]);
      partials[static_cast<size_t>(c)] = s;
    }
  });
  double total = 0.0;
  for (double p : partials) total += p;
  return total;
}

}  // namespace

int KernelThreads() {
  const int override_threads = g_kernel_threads.load(std::memory_order_relaxed);
  if (override_threads > 0) return override_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(std::min(hw, 16u));
}

void SetKernelThreads(int threads) {
  g_kernel_threads.store(threads, std::memory_order_relaxed);
}

Result<Matrix> Multiply(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) return ShapeError("multiply", a, b);
  Metrics().multiplies->Add();
  if (a.is_dense() && b.is_dense()) {
    return Matrix::FromDense(MultiplyDenseDenseBlocked(a.dense(), b.dense()));
  }
  if (!a.is_dense() && b.is_dense()) {
    return Matrix::FromDense(
        MultiplySparseDenseCore(CsrRows(a.csr()), a.rows(), b.dense()));
  }
  if (a.is_dense() && !b.is_dense()) {
    return Matrix::FromDense(MultiplyDenseSparse(a.dense(), b.csr()));
  }
  return Matrix::FromCsr(MultiplySparseSparseCore(
      CsrRows(a.csr()), CsrRows(b.csr()), a.rows(), b.cols()));
}

Result<Matrix> MultiplyReferenceNaive(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) return ShapeError("multiply", a, b);
  if (a.is_dense() && b.is_dense()) {
    return Matrix::FromDense(MultiplyDenseDenseNaive(a.dense(), b.dense()));
  }
  return Multiply(a, b);
}

Matrix Transpose(const Matrix& a) {
  Metrics().transposes->Add();
  if (a.is_dense()) return Matrix::WrapDense(TransposeDense(a.dense()));
  return Matrix::WrapCsr(TransposeCsr(a.csr()));
}

Result<Matrix> Add(const Matrix& a, const Matrix& b) {
  return ElementwiseBinary(
      "add", a, b, [](double x, double y) { return x + y; },
      /*zero_zero_is_zero=*/true);
}

Result<Matrix> Subtract(const Matrix& a, const Matrix& b) {
  return ElementwiseBinary(
      "subtract", a, b, [](double x, double y) { return x - y; },
      /*zero_zero_is_zero=*/true);
}

Result<Matrix> ElementwiseMultiply(const Matrix& a, const Matrix& b) {
  return ElementwiseBinary(
      "elementwise multiply", a, b, [](double x, double y) { return x * y; },
      /*zero_zero_is_zero=*/true);
}

Result<Matrix> ElementwiseDivide(const Matrix& a, const Matrix& b) {
  return ElementwiseBinary(
      "elementwise divide", a, b,
      [](double x, double y) { return y == 0.0 ? 0.0 : x / y; },
      /*zero_zero_is_zero=*/true);
}

Result<Matrix> ElementwiseMin(const Matrix& a, const Matrix& b) {
  return ElementwiseBinary(
      "elementwise min", a, b,
      [](double x, double y) { return FusedApply(FusedOp::kMin, x, y); },
      /*zero_zero_is_zero=*/true);
}

Result<Matrix> ElementwiseMax(const Matrix& a, const Matrix& b) {
  return ElementwiseBinary(
      "elementwise max", a, b,
      [](double x, double y) { return FusedApply(FusedOp::kMax, x, y); },
      /*zero_zero_is_zero=*/true);
}

Matrix ScalarMultiply(const Matrix& a, double s) {
  Metrics().scalar_ops->Add();
  if (a.is_dense()) {
    DenseMatrix d = a.dense();
    double* pd = d.data();
    ParallelForRows(d.size(), 1, [&](int64_t i0, int64_t i1) {
      for (int64_t i = i0; i < i1; ++i) pd[i] *= s;
    });
    return Matrix::FromDense(std::move(d));
  }
  CsrMatrix c = a.csr();
  double* pv = c.mutable_values().data();
  ParallelForRows(c.nnz(), 1, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) pv[i] *= s;
  });
  return Matrix::FromCsr(std::move(c));
}

Matrix ScalarAdd(const Matrix& a, double s) {
  Metrics().scalar_ops->Add();
  DenseMatrix d = a.ToDense();
  double* pd = d.data();
  ParallelForRows(d.size(), 1, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) pd[i] += s;
  });
  return Matrix::FromDense(std::move(d));
}

Matrix Negate(const Matrix& a) { return ScalarMultiply(a, -1.0); }

double SumAll(const Matrix& a) {
  Metrics().reductions->Add();
  const double* data =
      a.is_dense() ? a.dense().data() : a.csr().values().data();
  const int64_t count = a.is_dense() ? a.dense().size() : a.csr().nnz();
  return ChunkedReduce(data, count, [](double v) { return v; });
}

double FrobeniusNorm(const Matrix& a) {
  Metrics().reductions->Add();
  const double* data =
      a.is_dense() ? a.dense().data() : a.csr().values().data();
  const int64_t count = a.is_dense() ? a.dense().size() : a.csr().nnz();
  return std::sqrt(ChunkedReduce(data, count, [](double v) { return v * v; }));
}

Result<int64_t> MultiplyNnzExact(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) return ShapeError("multiply-nnz", a, b);
  const CsrMatrix sa = a.ToCsr();
  const CsrMatrix sb = b.ToCsr();
  std::vector<char> seen(static_cast<size_t>(b.cols()), 0);
  std::vector<int32_t> touched;
  int64_t nnz = 0;
  for (int64_t i = 0; i < sa.rows(); ++i) {
    touched.clear();
    for (int64_t p = sa.row_ptr()[i]; p < sa.row_ptr()[i + 1]; ++p) {
      const int64_t j = sa.col_idx()[p];
      for (int64_t q = sb.row_ptr()[j]; q < sb.row_ptr()[j + 1]; ++q) {
        const int32_t col = sb.col_idx()[q];
        if (!seen[col]) {
          seen[col] = 1;
          touched.push_back(col);
        }
      }
    }
    nnz += static_cast<int64_t>(touched.size());
    for (int32_t col : touched) seen[col] = 0;
  }
  return nnz;
}

}  // namespace remac
