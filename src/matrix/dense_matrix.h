#ifndef REMAC_MATRIX_DENSE_MATRIX_H_
#define REMAC_MATRIX_DENSE_MATRIX_H_

#include <cstdint>
#include <vector>

namespace remac {

/// \brief Row-major dense matrix of doubles.
///
/// A plain value type: copyable and movable. Bounds are checked with
/// assertions in debug builds only; hot paths index the raw buffer.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(int64_t rows, int64_t cols);
  DenseMatrix(int64_t rows, int64_t cols, std::vector<double> values);

  DenseMatrix(const DenseMatrix&) = default;
  DenseMatrix& operator=(const DenseMatrix&) = default;
  DenseMatrix(DenseMatrix&&) = default;
  DenseMatrix& operator=(DenseMatrix&&) = default;

  /// Identity matrix of size n x n.
  static DenseMatrix Identity(int64_t n);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t size() const { return rows_ * cols_; }

  double& At(int64_t r, int64_t c) { return values_[r * cols_ + c]; }
  double At(int64_t r, int64_t c) const { return values_[r * cols_ + c]; }

  double* data() { return values_.data(); }
  const double* data() const { return values_.data(); }
  const std::vector<double>& values() const { return values_; }

  /// Number of non-zero entries (exact scan).
  int64_t CountNonZeros() const;

  /// Fraction of non-zero entries; 0 for an empty matrix.
  double Sparsity() const;

  /// Memory footprint of the dense representation in bytes.
  int64_t SizeInBytes() const { return rows_ * cols_ * 8 + 16; }

  /// Exact resident payload: the value buffer only (no header estimate).
  int64_t BytesUsed() const {
    return static_cast<int64_t>(values_.size()) *
           static_cast<int64_t>(sizeof(double));
  }

  /// Element-wise equality within `tolerance`.
  bool ApproxEquals(const DenseMatrix& other, double tolerance = 1e-9) const;

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<double> values_;
};

}  // namespace remac

#endif  // REMAC_MATRIX_DENSE_MATRIX_H_
