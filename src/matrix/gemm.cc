#include "matrix/kernel_internal.h"

#if REMAC_KERNEL_AVX2
#include <immintrin.h>
#endif

namespace remac {
namespace internal {

bool KernelHasAvx2() {
#if REMAC_KERNEL_AVX2
  static const bool has = __builtin_cpu_supports("avx2");
  return has;
#else
  return false;
#endif
}

#if REMAC_KERNEL_AVX2
// Compiled for AVX2 via the target attribute instead of a TU-wide flag,
// so the rest of the file (and the whole build) keeps the baseline ISA
// and the compiler cannot auto-contract anything into FMA elsewhere.
// Separate mul + add intrinsics keep each lane's rounding identical to
// the scalar `acc += v * b` it replaces; the v == 0.0 skip is preserved
// per left value, so skipped terms never round -0.0 accumulators.
__attribute__((target("avx2"))) void MicroKernel4x16Avx2(
    const double* a0, const double* a1, const double* a2, const double* a3,
    int64_t stride, int64_t j_count, const double* b, int64_t ldb, double* c0,
    double* c1, double* c2, double* c3) {
  __m256d acc[4][4];
  for (int r = 0; r < 4; ++r) {
    for (int q = 0; q < 4; ++q) acc[r][q] = _mm256_setzero_pd();
  }
  for (int64_t j = 0; j < j_count; ++j) {
    const double* bj = b + j * ldb;
    const __m256d b0 = _mm256_loadu_pd(bj);
    const __m256d b1 = _mm256_loadu_pd(bj + 4);
    const __m256d b2 = _mm256_loadu_pd(bj + 8);
    const __m256d b3 = _mm256_loadu_pd(bj + 12);
    const double vs[4] = {a0[j * stride], a1[j * stride], a2[j * stride],
                          a3[j * stride]};
    for (int r = 0; r < 4; ++r) {
      const double v = vs[r];
      if (v == 0.0) continue;
      const __m256d vv = _mm256_set1_pd(v);
      acc[r][0] = _mm256_add_pd(acc[r][0], _mm256_mul_pd(vv, b0));
      acc[r][1] = _mm256_add_pd(acc[r][1], _mm256_mul_pd(vv, b1));
      acc[r][2] = _mm256_add_pd(acc[r][2], _mm256_mul_pd(vv, b2));
      acc[r][3] = _mm256_add_pd(acc[r][3], _mm256_mul_pd(vv, b3));
    }
  }
  double* cs[4] = {c0, c1, c2, c3};
  for (int r = 0; r < 4; ++r) {
    for (int q = 0; q < 4; ++q) _mm256_storeu_pd(cs[r] + 4 * q, acc[r][q]);
  }
}
#endif  // REMAC_KERNEL_AVX2

DenseMatrix MultiplyDenseDenseNaive(const DenseMatrix& a,
                                    const DenseMatrix& b) {
  const int64_t m = a.rows();
  const int64_t k = a.cols();
  const int64_t n = b.cols();
  DenseMatrix c(m, n);
  const double* pa = a.data();
  const double* pb = b.data();
  double* pc = c.data();
  ParallelForRows(m, n * std::max<int64_t>(1, k), [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      double* ci = pc + i * n;
      const double* ai = pa + i * k;
      for (int64_t j = 0; j < k; ++j) {
        const double v = ai[j];
        if (v == 0.0) continue;
        const double* bj = pb + j * n;
        for (int64_t x = 0; x < n; ++x) ci[x] += v * bj[x];
      }
    }
  });
  return c;
}

DenseMatrix MultiplyDenseDenseBlocked(const DenseMatrix& a,
                                      const DenseMatrix& b) {
  const int64_t m = a.rows();
  const int64_t k = a.cols();
  const int64_t n = b.cols();
  DenseMatrix c(m, n);
  const double* pa = a.data();
  const double* pb = b.data();
  double* pc = c.data();
  Metrics().gemm_blocked->Add();
  const bool avx = KernelHasAvx2();
  // Column panels keep the active B slab (k x panel doubles) L2 resident
  // while the row blocks of this range sweep over it. The wider AVX2 tile
  // amortizes each B load over 4 rows, so it tolerates a wider panel.
  const int64_t panel = avx ? kGemmPanelCols : kGemmColBlock;
  ParallelForRows(m, n * std::max<int64_t>(1, k), [&](int64_t r0, int64_t r1) {
    for (int64_t x0 = 0; x0 < n; x0 += panel) {
      const int64_t xe = std::min(n, x0 + panel);
      int64_t i = r0;
#if REMAC_KERNEL_AVX2
      if (avx) {
        for (; i + 4 <= r1; i += 4) {
          const double* a0 = pa + i * k;
          int64_t x = x0;
          for (; x + 16 <= xe; x += 16) {
            MicroKernel4x16Avx2(a0, a0 + k, a0 + 2 * k, a0 + 3 * k,
                                /*stride=*/1, k, pb + x, n, pc + i * n + x,
                                pc + (i + 1) * n + x, pc + (i + 2) * n + x,
                                pc + (i + 3) * n + x);
          }
          for (; x < xe; ++x) {
            for (int64_t r = 0; r < 4; ++r) {
              pc[(i + r) * n + x] = DotStrided(a0 + r * k, 1, k, pb + x, n);
            }
          }
        }
      }
#endif
      // Scalar 2x8 path: all rows on non-AVX2 hardware, the <= 3
      // trailing rows of the range otherwise.
      for (; i + 2 <= r1; i += 2) {
        const double* a0 = pa + i * k;
        const double* a1 = a0 + k;
        int64_t x = x0;
        for (; x + 8 <= xe; x += 8) {
          MicroKernel2x8(a0, a1, /*stride=*/1, k, pb + x, n, pc + i * n + x,
                         pc + (i + 1) * n + x);
        }
        for (; x < xe; ++x) {
          pc[i * n + x] = DotStrided(a0, 1, k, pb + x, n);
          pc[(i + 1) * n + x] = DotStrided(a1, 1, k, pb + x, n);
        }
      }
      if (i < r1) {  // odd trailing row of this range
        const double* a0 = pa + i * k;
        for (int64_t x = x0; x < xe; ++x) {
          pc[i * n + x] = DotStrided(a0, 1, k, pb + x, n);
        }
      }
    }
  });
  return c;
}

}  // namespace internal
}  // namespace remac
