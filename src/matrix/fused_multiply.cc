#include "matrix/kernel_internal.h"
#include "matrix/kernels.h"

/// Fused transpose-multiply kernels: AᵀB, ABᵀ and AᵀBᵀ for every
/// dense/CSR operand combination, so the executor never materializes a
/// transposed operand (ISSUE 5 tentpole; docs/INTERNALS.md Section 12).
///
/// Every kernel reproduces the exact floating-point operation sequence of
/// the materialize-then-multiply path it replaces: per output element the
/// shared-index terms are accumulated in ascending order with the same
/// v == 0.0 skip, so results are bitwise-identical (asserted by
/// tests/kernels_fused_test.cc across formats, shapes and thread counts).
/// Dense transposed operands are traversed in place; sparse transposed
/// operands go through a transient CscView (column-grouped index/value
/// arrays, identical ordering to TransposeCsr) so the shared sparse cores
/// run unchanged and row-parallelism is preserved.

namespace remac {

namespace internal {
namespace {

/// C = AᵀB, both dense. A: m x k, B: m x n, C: k x n. Four A columns at a
/// time are gathered once into a small reused pack buffer (4 x m doubles,
/// ~32 KB at m = 1024 — a GEMM packing panel, not a transpose of the
/// operand: the full t(A) copy and its O(m*k) footprint never exist).
/// Walking a raw column instead would touch a new page every j step
/// (stride = k doubles), and the resulting TLB pressure measured slower
/// than the materialized path. After packing, the streams are stride-1
/// and the shared micro-kernels run exactly as in the blocked GEMM, so
/// per output element the j-terms accumulate in ascending order with the
/// v == 0.0 skip — bitwise-identical to materialize-then-multiply.
DenseMatrix FusedDenseATB(const DenseMatrix& a, const DenseMatrix& b) {
  const int64_t m = a.rows();
  const int64_t k = a.cols();
  const int64_t n = b.cols();
  DenseMatrix c(k, n);
  const double* pa = a.data();
  const double* pb = b.data();
  double* pc = c.data();
  const bool avx = KernelHasAvx2();
  const int64_t panel = avx ? kGemmPanelCols : kGemmColBlock;
  ParallelForRows(k, n * std::max<int64_t>(1, m), [&](int64_t r0, int64_t r1) {
    std::vector<double> pack(static_cast<size_t>(4 * m));
    double* p0 = pack.data();
    int64_t i = r0;
    for (; i + 4 <= r1; i += 4) {
      for (int64_t r = 0; r < 4; ++r) {  // gather columns i .. i+3 once
        double* dst = p0 + r * m;
        const double* src = pa + i + r;
        for (int64_t j = 0; j < m; ++j) dst[j] = src[j * k];
      }
      for (int64_t x0 = 0; x0 < n; x0 += panel) {
        const int64_t xe = std::min(n, x0 + panel);
        int64_t x = x0;
#if REMAC_KERNEL_AVX2
        if (avx) {
          for (; x + 16 <= xe; x += 16) {
            MicroKernel4x16Avx2(p0, p0 + m, p0 + 2 * m, p0 + 3 * m,
                                /*stride=*/1, m, pb + x, n, pc + i * n + x,
                                pc + (i + 1) * n + x, pc + (i + 2) * n + x,
                                pc + (i + 3) * n + x);
          }
        } else
#endif
        {
          for (; x + 8 <= xe; x += 8) {
            MicroKernel2x8(p0, p0 + m, /*stride=*/1, m, pb + x, n,
                           pc + i * n + x, pc + (i + 1) * n + x);
            MicroKernel2x8(p0 + 2 * m, p0 + 3 * m, /*stride=*/1, m, pb + x, n,
                           pc + (i + 2) * n + x, pc + (i + 3) * n + x);
          }
        }
        for (; x < xe; ++x) {
          for (int64_t r = 0; r < 4; ++r) {
            pc[(i + r) * n + x] = DotStrided(p0 + r * m, 1, m, pb + x, n);
          }
        }
      }
    }
    for (; i < r1; ++i) {  // <= 3 trailing columns: strided dots
      const double* a0 = pa + i;
      for (int64_t x = 0; x < n; ++x) {
        pc[i * n + x] = DotStrided(a0, k, m, pb + x, n);
      }
    }
  });
  return c;
}

/// C = ABᵀ, both dense. A: m x k, B: n x k, C: m x n. Row-by-row dot
/// products; B rows are tiled so a panel stays cache-resident across the
/// rows of the thread's range.
DenseMatrix FusedDenseABT(const DenseMatrix& a, const DenseMatrix& b) {
  const int64_t m = a.rows();
  const int64_t k = a.cols();
  const int64_t n = b.rows();
  DenseMatrix c(m, n);
  const double* pa = a.data();
  const double* pb = b.data();
  double* pc = c.data();
  constexpr int64_t kPanelRows = 32;  // B panel: 32 x k doubles
  ParallelForRows(m, n * std::max<int64_t>(1, k), [&](int64_t r0, int64_t r1) {
    for (int64_t x0 = 0; x0 < n; x0 += kPanelRows) {
      const int64_t xe = std::min(n, x0 + kPanelRows);
      for (int64_t i = r0; i < r1; ++i) {
        const double* ai = pa + i * k;
        double* ci = pc + i * n;
        for (int64_t x = x0; x < xe; ++x) {
          const double* bx = pb + x * k;
          double s = 0.0;
          for (int64_t j = 0; j < k; ++j) {
            const double v = ai[j];
            if (v == 0.0) continue;
            s += v * bx[j];
          }
          ci[x] = s;
        }
      }
    }
  });
  return c;
}

/// C = AᵀBᵀ, both dense. A: m x k, B: n x m, C: k x n. A's column i is
/// strided; the shapes that hit this path are rare (the optimizer
/// canonicalizes t(A) %*% t(B) into t(B %*% A) when profitable).
DenseMatrix FusedDenseATBT(const DenseMatrix& a, const DenseMatrix& b) {
  const int64_t m = a.rows();
  const int64_t k = a.cols();
  const int64_t n = b.rows();
  DenseMatrix c(k, n);
  const double* pa = a.data();
  const double* pb = b.data();
  double* pc = c.data();
  ParallelForRows(k, n * std::max<int64_t>(1, m), [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      double* ci = pc + i * n;
      for (int64_t x = 0; x < n; ++x) {
        const double* bx = pb + x * m;
        double s = 0.0;
        for (int64_t j = 0; j < m; ++j) {
          const double v = pa[j * k + i];
          if (v == 0.0) continue;
          s += v * bx[j];
        }
        ci[x] = s;
      }
    }
  });
  return c;
}

/// C = AᵀB with A sparse, B dense: A's column view stands in for the
/// transposed rows; the shared sparse-dense core runs unchanged.
DenseMatrix FusedSparseDenseATB(const CsrMatrix& a, const DenseMatrix& b) {
  const CscView at(a);
  return MultiplySparseDenseCore(at, a.cols(), b);
}

/// C = ABᵀ with A sparse (m x k), B dense (n x k): per output row the
/// stored entries of A's row gather from B's rows — no transpose copy.
DenseMatrix FusedSparseDenseABT(const CsrMatrix& a, const DenseMatrix& b) {
  const int64_t m = a.rows();
  const int64_t k = a.cols();
  const int64_t n = b.rows();
  DenseMatrix c(m, n);
  const double* pb = b.data();
  double* pc = c.data();
  const int64_t row_work =
      n * std::max<int64_t>(1, a.nnz() / std::max<int64_t>(1, m));
  ParallelForRows(m, row_work, [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      double* ci = pc + i * n;
      const int64_t pa0 = a.row_ptr()[i];
      const int64_t pa1 = a.row_ptr()[i + 1];
      for (int64_t x = 0; x < n; ++x) {
        const double* bx = pb + x * k;
        double s = 0.0;
        for (int64_t p = pa0; p < pa1; ++p) {
          s += a.values()[p] * bx[a.col_idx()[p]];
        }
        ci[x] = s;
      }
    }
  });
  return c;
}

/// C = AᵀBᵀ with A sparse (m x k), B dense (n x m).
DenseMatrix FusedSparseDenseATBT(const CsrMatrix& a, const DenseMatrix& b) {
  const CscView at(a);
  const int64_t m = a.rows();
  const int64_t k = a.cols();
  const int64_t n = b.rows();
  DenseMatrix c(k, n);
  const double* pb = b.data();
  double* pc = c.data();
  const int64_t row_work =
      n * std::max<int64_t>(1, a.nnz() / std::max<int64_t>(1, k));
  ParallelForRows(k, row_work, [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      double* ci = pc + i * n;
      const int64_t pa0 = at.begin(i);
      const int64_t pa1 = at.end(i);
      for (int64_t x = 0; x < n; ++x) {
        const double* bx = pb + x * m;
        double s = 0.0;
        for (int64_t p = pa0; p < pa1; ++p) {
          s += at.value(p) * bx[at.col(p)];
        }
        ci[x] = s;
      }
    }
  });
  return c;
}

/// C = AᵀB with A dense (m x k), B sparse (m x n), C: k x n. Walks the
/// shared index with strided A reads, blocked so A loads stay contiguous.
DenseMatrix FusedDenseSparseATB(const DenseMatrix& a, const CsrMatrix& b) {
  const int64_t m = a.rows();
  const int64_t k = a.cols();
  const int64_t n = b.cols();
  DenseMatrix c(k, n);
  const double* pa = a.data();
  double* pc = c.data();
  const int64_t row_work =
      std::max<int64_t>(m, b.nnz());  // each output row scans all of B
  ParallelForRows(k, row_work, [&](int64_t r0, int64_t r1) {
    for (int64_t i0 = r0; i0 < r1; i0 += kGemmRowBlock) {
      const int64_t ib = std::min(kGemmRowBlock, r1 - i0);
      for (int64_t j = 0; j < m; ++j) {
        const double* aj = pa + j * k + i0;  // A(j, i0 .. i0+ib)
        const int64_t q0 = b.row_ptr()[j];
        const int64_t q1 = b.row_ptr()[j + 1];
        if (q0 == q1) continue;
        for (int64_t r = 0; r < ib; ++r) {
          const double v = aj[r];
          if (v == 0.0) continue;
          double* ci = pc + (i0 + r) * n;
          for (int64_t q = q0; q < q1; ++q) {
            ci[b.col_idx()[q]] += v * b.values()[q];
          }
        }
      }
    }
  });
  return c;
}

/// C = ABᵀ with A dense (m x k), B sparse (n x k), C: m x n. B's rows are
/// the columns of the materialized transpose: a sparse dot per cell.
DenseMatrix FusedDenseSparseABT(const DenseMatrix& a, const CsrMatrix& b) {
  const int64_t m = a.rows();
  const int64_t k = a.cols();
  const int64_t n = b.rows();
  DenseMatrix c(m, n);
  const double* pa = a.data();
  double* pc = c.data();
  const int64_t row_work = std::max<int64_t>(k, b.nnz());
  ParallelForRows(m, row_work, [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      const double* ai = pa + i * k;
      double* ci = pc + i * n;
      for (int64_t x = 0; x < n; ++x) {
        double s = 0.0;
        for (int64_t p = b.row_ptr()[x]; p < b.row_ptr()[x + 1]; ++p) {
          const double v = ai[b.col_idx()[p]];
          if (v == 0.0) continue;
          s += v * b.values()[p];
        }
        ci[x] = s;
      }
    }
  });
  return c;
}

/// C = AᵀBᵀ with A dense (m x k), B sparse (n x m), C: k x n.
DenseMatrix FusedDenseSparseATBT(const DenseMatrix& a, const CsrMatrix& b) {
  const int64_t m = a.rows();
  const int64_t k = a.cols();
  const int64_t n = b.rows();
  DenseMatrix c(k, n);
  const double* pa = a.data();
  double* pc = c.data();
  const int64_t row_work = std::max<int64_t>(m, b.nnz());
  ParallelForRows(k, row_work, [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      double* ci = pc + i * n;
      for (int64_t x = 0; x < n; ++x) {
        double s = 0.0;
        for (int64_t p = b.row_ptr()[x]; p < b.row_ptr()[x + 1]; ++p) {
          const double v = pa[static_cast<int64_t>(b.col_idx()[p]) * k + i];
          if (v == 0.0) continue;
          s += v * b.values()[p];
        }
        ci[x] = s;
      }
    }
  });
  return c;
}

}  // namespace
}  // namespace internal

Result<Matrix> MultiplyTransposed(const Matrix& a, bool a_transposed,
                                  const Matrix& b, bool b_transposed) {
  using namespace internal;
  if (!a_transposed && !b_transposed) return Multiply(a, b);
  const int64_t ear = a_transposed ? a.cols() : a.rows();
  const int64_t eac = a_transposed ? a.rows() : a.cols();
  const int64_t ebr = b_transposed ? b.cols() : b.rows();
  const int64_t ebc = b_transposed ? b.rows() : b.cols();
  if (eac != ebr) return ShapeErrorDims("multiply", ear, eac, ebr, ebc);
  Metrics().multiplies->Add();
  Metrics().fused_transpose->Add();
  Metrics().fused_bytes_avoided->Add((a_transposed ? a.SizeInBytes() : 0) +
                                     (b_transposed ? b.SizeInBytes() : 0));
  if (a.is_dense() && b.is_dense()) {
    const DenseMatrix& da = a.dense();
    const DenseMatrix& db = b.dense();
    if (a_transposed && b_transposed) {
      return Matrix::FromDense(FusedDenseATBT(da, db));
    }
    if (a_transposed) return Matrix::FromDense(FusedDenseATB(da, db));
    return Matrix::FromDense(FusedDenseABT(da, db));
  }
  if (!a.is_dense() && b.is_dense()) {
    const CsrMatrix& sa = a.csr();
    const DenseMatrix& db = b.dense();
    if (a_transposed && b_transposed) {
      return Matrix::FromDense(FusedSparseDenseATBT(sa, db));
    }
    if (a_transposed) return Matrix::FromDense(FusedSparseDenseATB(sa, db));
    return Matrix::FromDense(FusedSparseDenseABT(sa, db));
  }
  if (a.is_dense() && !b.is_dense()) {
    const DenseMatrix& da = a.dense();
    const CsrMatrix& sb = b.csr();
    if (a_transposed && b_transposed) {
      return Matrix::FromDense(FusedDenseSparseATBT(da, sb));
    }
    if (a_transposed) return Matrix::FromDense(FusedDenseSparseATB(da, sb));
    return Matrix::FromDense(FusedDenseSparseABT(da, sb));
  }
  const CsrMatrix& sa = a.csr();
  const CsrMatrix& sb = b.csr();
  if (a_transposed && b_transposed) {
    const CscView at(sa);
    const CscView bt(sb);
    return Matrix::FromCsr(
        MultiplySparseSparseCore(at, bt, sa.cols(), sb.rows()));
  }
  if (a_transposed) {
    const CscView at(sa);
    return Matrix::FromCsr(
        MultiplySparseSparseCore(at, CsrRows(sb), sa.cols(), sb.cols()));
  }
  const CscView bt(sb);
  return Matrix::FromCsr(
      MultiplySparseSparseCore(CsrRows(sa), bt, sa.rows(), sb.rows()));
}

}  // namespace remac
