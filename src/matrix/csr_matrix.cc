#include "matrix/csr_matrix.h"

#include <algorithm>
#include <cassert>
#include <tuple>

namespace remac {

CsrMatrix::CsrMatrix(int64_t rows, int64_t cols)
    : rows_(rows), cols_(cols), row_ptr_(static_cast<size_t>(rows) + 1, 0) {}

CsrMatrix CsrMatrix::FromTriplets(
    int64_t rows, int64_t cols,
    std::vector<std::tuple<int64_t, int64_t, double>> triplets) {
  std::sort(triplets.begin(), triplets.end());
  CsrMatrix m(rows, cols);
  m.col_idx_.reserve(triplets.size());
  m.values_.reserve(triplets.size());
  int64_t prev_r = -1;
  int64_t prev_c = -1;
  for (const auto& [r, c, v] : triplets) {
    assert(r >= 0 && r < rows && c >= 0 && c < cols);
    if (r == prev_r && c == prev_c) {
      m.values_.back() += v;  // merge duplicates
      continue;
    }
    // Close out row pointers up to r.
    for (int64_t rr = prev_r + 1; rr <= r; ++rr) {
      m.row_ptr_[rr] = static_cast<int64_t>(m.values_.size());
    }
    m.col_idx_.push_back(static_cast<int32_t>(c));
    m.values_.push_back(v);
    prev_r = r;
    prev_c = c;
  }
  for (int64_t rr = prev_r + 1; rr <= rows; ++rr) {
    m.row_ptr_[rr] = static_cast<int64_t>(m.values_.size());
  }
  return m;
}

CsrMatrix CsrMatrix::FromDense(const DenseMatrix& dense) {
  CsrMatrix m(dense.rows(), dense.cols());
  for (int64_t r = 0; r < dense.rows(); ++r) {
    for (int64_t c = 0; c < dense.cols(); ++c) {
      const double v = dense.At(r, c);
      if (v != 0.0) {
        m.col_idx_.push_back(static_cast<int32_t>(c));
        m.values_.push_back(v);
      }
    }
    m.row_ptr_[r + 1] = static_cast<int64_t>(m.values_.size());
  }
  return m;
}

DenseMatrix CsrMatrix::ToDense() const {
  DenseMatrix out(rows_, cols_);
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      out.At(r, col_idx_[k]) = values_[k];
    }
  }
  return out;
}

std::vector<int64_t> CsrMatrix::RowCounts() const {
  std::vector<int64_t> counts(static_cast<size_t>(rows_));
  for (int64_t r = 0; r < rows_; ++r) counts[r] = RowNnz(r);
  return counts;
}

std::vector<int64_t> CsrMatrix::ColCounts() const {
  std::vector<int64_t> counts(static_cast<size_t>(cols_), 0);
  for (int32_t c : col_idx_) ++counts[c];
  return counts;
}

}  // namespace remac
