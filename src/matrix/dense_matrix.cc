#include "matrix/dense_matrix.h"

#include <cassert>
#include <cmath>

namespace remac {

DenseMatrix::DenseMatrix(int64_t rows, int64_t cols)
    : rows_(rows), cols_(cols), values_(static_cast<size_t>(rows * cols)) {
  assert(rows >= 0 && cols >= 0);
}

DenseMatrix::DenseMatrix(int64_t rows, int64_t cols,
                         std::vector<double> values)
    : rows_(rows), cols_(cols), values_(std::move(values)) {
  assert(static_cast<int64_t>(values_.size()) == rows * cols);
}

DenseMatrix DenseMatrix::Identity(int64_t n) {
  DenseMatrix m(n, n);
  for (int64_t i = 0; i < n; ++i) m.At(i, i) = 1.0;
  return m;
}

int64_t DenseMatrix::CountNonZeros() const {
  int64_t nnz = 0;
  for (double v : values_) {
    if (v != 0.0) ++nnz;
  }
  return nnz;
}

double DenseMatrix::Sparsity() const {
  if (rows_ == 0 || cols_ == 0) return 0.0;
  return static_cast<double>(CountNonZeros()) /
         static_cast<double>(rows_ * cols_);
}

bool DenseMatrix::ApproxEquals(const DenseMatrix& other,
                               double tolerance) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (size_t i = 0; i < values_.size(); ++i) {
    const double diff = std::fabs(values_[i] - other.values_[i]);
    const double scale =
        std::max(1.0, std::max(std::fabs(values_[i]), std::fabs(other.values_[i])));
    if (diff > tolerance * scale) return false;
  }
  return true;
}

}  // namespace remac
