#include "io/matrix_market.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace remac {

namespace {

struct Header {
  bool coordinate = true;
  bool symmetric = false;
  bool pattern = false;
};

/// Advances to the next non-blank, non-comment line. The MatrixMarket
/// spec allows comment ('%') and blank lines anywhere after the banner,
/// including interleaved with coordinate data. Returns false on EOF.
bool NextDataLine(std::istream& in, std::string* line) {
  while (std::getline(in, *line)) {
    const std::string_view stripped = StripWhitespace(*line);
    if (!stripped.empty() && stripped[0] != '%') return true;
  }
  return false;
}

Result<Header> ParseHeader(const std::string& line) {
  std::istringstream in(line);
  std::string banner, object, format, field, symmetry;
  in >> banner >> object >> format >> field >> symmetry;
  if (banner != "%%MatrixMarket") {
    return Status::ParseError("not a MatrixMarket file: '" + line + "'");
  }
  if (object != "matrix") {
    return Status::Unsupported("MatrixMarket object '" + object + "'");
  }
  Header header;
  if (format == "coordinate") {
    header.coordinate = true;
  } else if (format == "array") {
    header.coordinate = false;
  } else {
    return Status::Unsupported("MatrixMarket format '" + format + "'");
  }
  if (field == "pattern") {
    header.pattern = true;
  } else if (field != "real" && field != "integer" && field != "double") {
    return Status::Unsupported("MatrixMarket field '" + field + "'");
  }
  if (symmetry == "symmetric") {
    header.symmetric = true;
  } else if (symmetry != "general") {
    return Status::Unsupported("MatrixMarket symmetry '" + symmetry + "'");
  }
  return header;
}

}  // namespace

Result<Matrix> ParseMatrixMarket(const std::string& content) {
  std::istringstream in(content);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::ParseError("empty MatrixMarket input");
  }
  REMAC_ASSIGN_OR_RETURN(const Header header, ParseHeader(line));
  if (!NextDataLine(in, &line)) {
    return Status::ParseError(
        "missing size line (file has only header and comments)");
  }
  std::istringstream dims(line);
  int64_t rows = 0;
  int64_t cols = 0;
  int64_t nnz = 0;
  if (header.coordinate) {
    if (!(dims >> rows >> cols >> nnz)) {
      return Status::ParseError("bad coordinate size line: '" + line + "'");
    }
    std::vector<std::tuple<int64_t, int64_t, double>> triplets;
    triplets.reserve(static_cast<size_t>(nnz) * (header.symmetric ? 2 : 1));
    for (int64_t k = 0; k < nnz; ++k) {
      if (!NextDataLine(in, &line)) {
        return Status::ParseError(StringFormat(
            "expected %lld entries, file ended after %lld",
            static_cast<long long>(nnz), static_cast<long long>(k)));
      }
      std::istringstream entry(line);
      int64_t r = 0;
      int64_t c = 0;
      double v = 1.0;
      if (!(entry >> r >> c)) {
        return Status::ParseError("bad entry line: '" + line + "'");
      }
      if (!header.pattern && !(entry >> v)) {
        return Status::ParseError("missing value in: '" + line + "'");
      }
      if (r < 1 || r > rows || c < 1 || c > cols) {
        return Status::OutOfRange("entry index out of bounds: '" + line +
                                  "'");
      }
      triplets.emplace_back(r - 1, c - 1, v);
      if (header.symmetric && r != c) {
        triplets.emplace_back(c - 1, r - 1, v);
      }
    }
    return Matrix::FromCsr(
        CsrMatrix::FromTriplets(rows, cols, std::move(triplets)));
  }
  if (!(dims >> rows >> cols)) {
    return Status::ParseError("bad array size line: '" + line + "'");
  }
  DenseMatrix m(rows, cols);
  // Array format is column-major.
  for (int64_t c = 0; c < cols; ++c) {
    for (int64_t r = 0; r < rows; ++r) {
      double v = 0.0;
      if (!(in >> v)) {
        return Status::ParseError("array data ended early");
      }
      m.At(r, c) = v;
    }
  }
  return Matrix::FromDense(std::move(m));
}

Result<Matrix> ReadMatrixMarket(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::ostringstream content;
  content << file.rdbuf();
  return ParseMatrixMarket(content.str());
}

Result<std::string> FormatMatrixMarket(const Matrix& m, bool dense) {
  std::string out;
  if (dense) {
    out += "%%MatrixMarket matrix array real general\n";
    out += StringFormat("%lld %lld\n", static_cast<long long>(m.rows()),
                        static_cast<long long>(m.cols()));
    const DenseMatrix d = m.ToDense();
    for (int64_t c = 0; c < d.cols(); ++c) {
      for (int64_t r = 0; r < d.rows(); ++r) {
        out += StringFormat("%.17g\n", d.At(r, c));
      }
    }
    return out;
  }
  const CsrMatrix csr = m.ToCsr();
  out += "%%MatrixMarket matrix coordinate real general\n";
  out += StringFormat("%lld %lld %lld\n", static_cast<long long>(csr.rows()),
                      static_cast<long long>(csr.cols()),
                      static_cast<long long>(csr.nnz()));
  for (int64_t r = 0; r < csr.rows(); ++r) {
    for (int64_t k = csr.row_ptr()[r]; k < csr.row_ptr()[r + 1]; ++k) {
      out += StringFormat("%lld %lld %.17g\n", static_cast<long long>(r + 1),
                          static_cast<long long>(csr.col_idx()[k] + 1),
                          csr.values()[k]);
    }
  }
  return out;
}

Status WriteMatrixMarket(const std::string& path, const Matrix& m,
                         bool dense) {
  REMAC_ASSIGN_OR_RETURN(const std::string content,
                         FormatMatrixMarket(m, dense));
  std::ofstream file(path);
  if (!file) {
    return Status::InvalidArgument("cannot write '" + path + "'");
  }
  file << content;
  if (!file) {
    return Status::Internal("short write to '" + path + "'");
  }
  return Status::OK();
}

}  // namespace remac
