#ifndef REMAC_IO_MATRIX_MARKET_H_
#define REMAC_IO_MATRIX_MARKET_H_

#include <string>

#include "common/status.h"
#include "matrix/matrix.h"

namespace remac {

/// \brief Matrix Market (.mtx) file I/O.
///
/// Supports the two common headers:
///   %%MatrixMarket matrix coordinate real general|symmetric
///   %%MatrixMarket matrix array real general
/// Coordinate files use 1-based indices; symmetric coordinate files store
/// the lower triangle and are mirrored on read. Pattern files get 1.0
/// values. Integer fields are read as doubles.
Result<Matrix> ReadMatrixMarket(const std::string& path);

/// Writes `m` in coordinate format (or array format when `dense` is set).
Status WriteMatrixMarket(const std::string& path, const Matrix& m,
                         bool dense = false);

/// Parses Matrix Market content from a string (testing / embedding).
Result<Matrix> ParseMatrixMarket(const std::string& content);

/// Serializes to a Matrix Market string.
Result<std::string> FormatMatrixMarket(const Matrix& m, bool dense = false);

}  // namespace remac

#endif  // REMAC_IO_MATRIX_MARKET_H_
