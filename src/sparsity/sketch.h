#ifndef REMAC_SPARSITY_SKETCH_H_
#define REMAC_SPARSITY_SKETCH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "matrix/matrix.h"

namespace remac {

/// \brief MNC-style structural sparsity sketch (Sommer et al., SIGMOD'19):
/// exact per-row and per-column non-zero counts of a matrix.
///
/// The paper's ReMac uses the MNC estimator variant with extended counts
/// for accuracy (footnote 1); we keep the row/column count vectors, which
/// capture the skew structure the experiments in Sections 6.3.2 / 6.5
/// depend on.
struct MncSketch {
  int64_t rows = 0;
  int64_t cols = 0;
  double nnz = 0;  // fractional after propagation
  std::vector<double> row_counts;  // length rows (may be scaled estimates)
  std::vector<double> col_counts;  // length cols

  double Sparsity() const {
    if (rows == 0 || cols == 0) return 0.0;
    return nnz / (static_cast<double>(rows) * static_cast<double>(cols));
  }

  /// Builds the exact sketch of an in-memory matrix.
  static std::shared_ptr<const MncSketch> FromMatrix(const Matrix& m);

  /// Builds from precomputed exact counts.
  static std::shared_ptr<const MncSketch> FromCounts(
      int64_t rows, int64_t cols, const std::vector<int64_t>& row_counts,
      const std::vector<int64_t>& col_counts);

  /// A synthetic sketch with uniformly spread non-zeros (fallback when a
  /// leaf has no exact counts).
  static std::shared_ptr<const MncSketch> Uniform(int64_t rows, int64_t cols,
                                                  double sparsity);
};

/// Sketch propagation rules. Estimates are heuristic but skew-aware.
std::shared_ptr<const MncSketch> SketchMultiply(const MncSketch& a,
                                                const MncSketch& b);
std::shared_ptr<const MncSketch> SketchTranspose(const MncSketch& a);
std::shared_ptr<const MncSketch> SketchAdd(const MncSketch& a,
                                           const MncSketch& b);
std::shared_ptr<const MncSketch> SketchElemMul(const MncSketch& a,
                                               const MncSketch& b);

}  // namespace remac

#endif  // REMAC_SPARSITY_SKETCH_H_
