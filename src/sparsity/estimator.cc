#include "sparsity/estimator.h"

namespace remac {

NodeStats SparsityEstimator::GeneratorStats(PlanOp op, int64_t rows,
                                            int64_t cols) const {
  NodeStats s;
  s.rows = static_cast<double>(rows);
  s.cols = static_cast<double>(cols);
  switch (op) {
    case PlanOp::kEye:
      s.sparsity = rows > 0 ? 1.0 / static_cast<double>(rows) : 0.0;
      break;
    case PlanOp::kZeros:
      s.sparsity = 0.0;
      break;
    case PlanOp::kOnes:
    case PlanOp::kRand:
      s.sparsity = 1.0;
      break;
    default:
      s.sparsity = 1.0;
      break;
  }
  return s;
}

NodeStats SparsityEstimator::ScalarBroadcast(PlanOp op,
                                             const NodeStats& matrix) const {
  NodeStats s = matrix;
  if (op == PlanOp::kAdd || op == PlanOp::kSub || op == PlanOp::kMin ||
      op == PlanOp::kMax) {
    // Adding (or min/max against) a generally non-zero scalar densifies.
    s.sparsity = 1.0;
    s.sketch.reset();
    s.pattern.reset();
  }
  return s;
}

}  // namespace remac
