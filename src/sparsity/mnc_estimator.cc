#include <algorithm>

#include "sparsity/estimator.h"

namespace remac {

NodeStats MncEstimator::LeafStats(const std::string& name,
                                  const MatrixStats& stats) const {
  (void)name;
  NodeStats s;
  s.rows = static_cast<double>(stats.rows);
  s.cols = static_cast<double>(stats.cols);
  s.sparsity = stats.sparsity;
  if (!stats.row_counts.empty() && !stats.col_counts.empty()) {
    s.sketch = MncSketch::FromCounts(stats.rows, stats.cols, stats.row_counts,
                                     stats.col_counts);
  } else {
    s.sketch = MncSketch::Uniform(stats.rows, stats.cols, stats.sparsity);
  }
  return s;
}

namespace {

/// Falls back to a uniform sketch if a stats object lost its sketch
/// (e.g., after a densifying scalar op).
std::shared_ptr<const MncSketch> SketchOf(const NodeStats& s) {
  if (s.sketch) return s.sketch;
  return MncSketch::Uniform(static_cast<int64_t>(s.rows),
                            static_cast<int64_t>(s.cols), s.sparsity);
}

NodeStats FromSketch(std::shared_ptr<const MncSketch> sketch) {
  NodeStats s;
  s.rows = static_cast<double>(sketch->rows);
  s.cols = static_cast<double>(sketch->cols);
  s.sparsity = std::clamp(sketch->Sparsity(), 0.0, 1.0);
  s.sketch = std::move(sketch);
  return s;
}

}  // namespace

NodeStats MncEstimator::Multiply(const NodeStats& a,
                                 const NodeStats& b) const {
  return FromSketch(SketchMultiply(*SketchOf(a), *SketchOf(b)));
}

NodeStats MncEstimator::Transpose(const NodeStats& a) const {
  return FromSketch(SketchTranspose(*SketchOf(a)));
}

NodeStats MncEstimator::Elementwise(PlanOp op, const NodeStats& a,
                                    const NodeStats& b) const {
  switch (op) {
    case PlanOp::kAdd:
    case PlanOp::kSub:
    case PlanOp::kMin:
    case PlanOp::kMax:
      // min/max patterns are bounded by the union, like add.
      return FromSketch(SketchAdd(*SketchOf(a), *SketchOf(b)));
    case PlanOp::kMul:
      return FromSketch(SketchElemMul(*SketchOf(a), *SketchOf(b)));
    case PlanOp::kDiv:
    default: {
      NodeStats s = a;  // safe divide keeps the numerator's pattern
      return s;
    }
  }
}

}  // namespace remac
