#include "sparsity/sketch.h"

#include <algorithm>
#include <cmath>

namespace remac {

namespace {

double SumOf(const std::vector<double>& v) {
  double total = 0.0;
  for (double x : v) total += x;
  return total;
}

/// Scales `counts` so it sums to `target_total`, capping entries at `cap`.
void ScaleTo(std::vector<double>* counts, double target_total, double cap) {
  double total = SumOf(*counts);
  if (total <= 0.0) return;
  // One capped-rescale round is enough for estimation purposes.
  double factor = target_total / total;
  double overflow = 0.0;
  double headroom_total = 0.0;
  for (double& c : *counts) {
    c *= factor;
    if (c > cap) {
      overflow += c - cap;
      c = cap;
    } else {
      headroom_total += cap - c;
    }
  }
  if (overflow > 0.0 && headroom_total > 0.0) {
    const double redistribute = std::min(1.0, overflow / headroom_total);
    for (double& c : *counts) c += (cap - c) * redistribute;
  }
}

}  // namespace

std::shared_ptr<const MncSketch> MncSketch::FromMatrix(const Matrix& m) {
  const CsrMatrix csr = m.ToCsr();
  const auto row_counts = csr.RowCounts();
  const auto col_counts = csr.ColCounts();
  return FromCounts(m.rows(), m.cols(), row_counts, col_counts);
}

std::shared_ptr<const MncSketch> MncSketch::FromCounts(
    int64_t rows, int64_t cols, const std::vector<int64_t>& row_counts,
    const std::vector<int64_t>& col_counts) {
  auto s = std::make_shared<MncSketch>();
  s->rows = rows;
  s->cols = cols;
  s->row_counts.assign(row_counts.begin(), row_counts.end());
  s->col_counts.assign(col_counts.begin(), col_counts.end());
  s->nnz = SumOf(s->row_counts);
  return s;
}

std::shared_ptr<const MncSketch> MncSketch::Uniform(int64_t rows, int64_t cols,
                                                    double sparsity) {
  auto s = std::make_shared<MncSketch>();
  s->rows = rows;
  s->cols = cols;
  s->nnz = sparsity * static_cast<double>(rows) * static_cast<double>(cols);
  s->row_counts.assign(static_cast<size_t>(rows),
                       sparsity * static_cast<double>(cols));
  s->col_counts.assign(static_cast<size_t>(cols),
                       sparsity * static_cast<double>(rows));
  return s;
}

namespace {

/// Compresses a count vector into (value, multiplicity) buckets so the
/// bilinear collision sums below cost O(K^2) instead of O(m * l).
std::vector<std::pair<double, double>> BucketCounts(
    const std::vector<double>& counts, int max_buckets = 64) {
  // Long vectors are stride-sampled before sorting: the buckets only feed
  // an estimation formula, and O(n log n) per propagation step would make
  // the optimizer's interval tables quadratic in the data size.
  std::vector<double> sorted;
  constexpr size_t kMaxSample = 4096;
  if (counts.size() > kMaxSample) {
    const size_t stride = counts.size() / kMaxSample;
    sorted.reserve(kMaxSample + 1);
    for (size_t i = 0; i < counts.size(); i += stride) {
      sorted.push_back(counts[i]);
    }
  } else {
    sorted = counts;
  }
  std::sort(sorted.begin(), sorted.end());
  std::vector<std::pair<double, double>> buckets;
  const size_t n = sorted.size();
  if (n == 0) return buckets;
  const size_t per = std::max<size_t>(1, n / static_cast<size_t>(max_buckets));
  size_t i = 0;
  while (i < n) {
    const size_t end = std::min(n, i + per);
    double sum = 0.0;
    for (size_t k = i; k < end; ++k) sum += sorted[k];
    buckets.emplace_back(sum / static_cast<double>(end - i),
                         static_cast<double>(end - i));
    i = end;
  }
  return buckets;
}

}  // namespace

std::shared_ptr<const MncSketch> SketchMultiply(const MncSketch& a,
                                                const MncSketch& b) {
  auto out = std::make_shared<MncSketch>();
  out->rows = a.rows;
  out->cols = b.cols;
  const double cells =
      static_cast<double>(a.rows) * static_cast<double>(b.cols);
  if (cells <= 0.0 || a.nnz <= 0.0 || b.nnz <= 0.0) {
    out->nnz = 0;
    out->row_counts.assign(static_cast<size_t>(a.rows), 0.0);
    out->col_counts.assign(static_cast<size_t>(b.cols), 0.0);
    return out;
  }
  // Structure-exploiting collision model (MNC's key idea): approximate
  // the expected number of scalar products landing in output cell (i, k)
  // by a rank-1 intensity
  //   lambda_{ik} = alpha * h_r^A[i] * h_c^B[k],
  // calibrated so the total intensity equals the exact total number of
  // products S = sum_j h_c^A[j] * h_r^B[j]. Then
  //   P(C[i,k] != 0) ~= 1 - exp(-lambda_{ik}),
  // which saturates for heavy rows/columns — exactly the concentration a
  // uniform model misses on skewed data.
  double total_products = 0.0;
  const size_t inner = std::min(a.col_counts.size(), b.row_counts.size());
  for (size_t j = 0; j < inner; ++j) {
    total_products += a.col_counts[j] * b.row_counts[j];
  }
  if (total_products <= 0.0) {
    out->nnz = 0;
    out->row_counts.assign(static_cast<size_t>(a.rows), 0.0);
    out->col_counts.assign(static_cast<size_t>(b.cols), 0.0);
    return out;
  }
  const double alpha = total_products / (a.nnz * b.nnz);
  const auto col_buckets = BucketCounts(b.col_counts);
  // Per-output-row expected counts: h_r^C[i] = sum_k P(C[i,k] != 0).
  // Rows with equal input counts get equal outputs, so the (expensive)
  // bucket sum is memoized per distinct input count.
  out->row_counts.resize(a.row_counts.size());
  double nnz = 0.0;
  double memo_key = -1.0;
  double memo_value = 0.0;
  for (size_t i = 0; i < a.row_counts.size(); ++i) {
    const double r = a.row_counts[i];
    if (r != memo_key) {
      double expected = 0.0;
      for (const auto& [value, count] : col_buckets) {
        expected += count * -std::expm1(-alpha * r * value);
      }
      memo_key = r;
      memo_value = expected;
    }
    out->row_counts[i] = memo_value;
    nnz += memo_value;
  }
  out->nnz = nnz;
  // Per-output-column expected counts, from the row buckets of A.
  const auto row_buckets = BucketCounts(a.row_counts);
  out->col_counts.resize(b.col_counts.size());
  for (size_t k = 0; k < b.col_counts.size(); ++k) {
    double expected = 0.0;
    for (const auto& [value, count] : row_buckets) {
      expected += count * -std::expm1(-alpha * value * b.col_counts[k]);
    }
    out->col_counts[k] = expected;
  }
  ScaleTo(&out->col_counts, out->nnz, static_cast<double>(a.rows));
  return out;
}

std::shared_ptr<const MncSketch> SketchTranspose(const MncSketch& a) {
  auto out = std::make_shared<MncSketch>();
  out->rows = a.cols;
  out->cols = a.rows;
  out->nnz = a.nnz;
  out->row_counts = a.col_counts;
  out->col_counts = a.row_counts;
  return out;
}

std::shared_ptr<const MncSketch> SketchAdd(const MncSketch& a,
                                           const MncSketch& b) {
  auto out = std::make_shared<MncSketch>();
  out->rows = a.rows;
  out->cols = a.cols;
  out->row_counts.resize(a.row_counts.size());
  const double cols = static_cast<double>(a.cols);
  for (size_t i = 0; i < a.row_counts.size(); ++i) {
    const double bc = i < b.row_counts.size() ? b.row_counts[i] : 0.0;
    // Union under independence within the row.
    const double pa = std::min(1.0, a.row_counts[i] / std::max(1.0, cols));
    const double pb = std::min(1.0, bc / std::max(1.0, cols));
    out->row_counts[i] = cols * (pa + pb - pa * pb);
  }
  out->nnz = SumOf(out->row_counts);
  const double rows = static_cast<double>(a.rows);
  out->col_counts.resize(a.col_counts.size());
  for (size_t j = 0; j < a.col_counts.size(); ++j) {
    const double bc = j < b.col_counts.size() ? b.col_counts[j] : 0.0;
    const double pa = std::min(1.0, a.col_counts[j] / std::max(1.0, rows));
    const double pb = std::min(1.0, bc / std::max(1.0, rows));
    out->col_counts[j] = rows * (pa + pb - pa * pb);
  }
  ScaleTo(&out->col_counts, out->nnz, rows);
  return out;
}

std::shared_ptr<const MncSketch> SketchElemMul(const MncSketch& a,
                                               const MncSketch& b) {
  auto out = std::make_shared<MncSketch>();
  out->rows = a.rows;
  out->cols = a.cols;
  out->row_counts.resize(a.row_counts.size());
  const double cols = std::max<double>(1, a.cols);
  for (size_t i = 0; i < a.row_counts.size(); ++i) {
    const double bc = i < b.row_counts.size() ? b.row_counts[i] : 0.0;
    out->row_counts[i] = a.row_counts[i] * bc / cols;  // intersection
  }
  out->nnz = SumOf(out->row_counts);
  const double rows = std::max<double>(1, a.rows);
  out->col_counts.resize(a.col_counts.size());
  for (size_t j = 0; j < a.col_counts.size(); ++j) {
    const double bc = j < b.col_counts.size() ? b.col_counts[j] : 0.0;
    out->col_counts[j] = a.col_counts[j] * bc / rows;
  }
  ScaleTo(&out->col_counts, out->nnz, rows);
  return out;
}

}  // namespace remac
