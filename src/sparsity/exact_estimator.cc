#include <algorithm>

#include "matrix/kernels.h"
#include "sparsity/estimator.h"

namespace remac {

namespace {

NodeStats FromPattern(Matrix pattern) {
  NodeStats s;
  s.rows = static_cast<double>(pattern.rows());
  s.cols = static_cast<double>(pattern.cols());
  s.sparsity = pattern.Sparsity();
  s.pattern = std::make_shared<const Matrix>(std::move(pattern));
  return s;
}

/// Replaces all stored values with 1.0 (boolean pattern).
Matrix Booleanize(const Matrix& m) {
  CsrMatrix csr = m.ToCsr();
  for (auto& v : csr.mutable_values()) v = 1.0;
  return Matrix::WrapCsr(std::move(csr));
}

}  // namespace

NodeStats ExactEstimator::LeafStats(const std::string& name,
                                    const MatrixStats& stats) const {
  if (catalog_ != nullptr) {
    Result<Matrix> value = catalog_->Value(name);
    if (value.ok()) {
      return FromPattern(Booleanize(value.value()));
    }
  }
  // No value available: degrade to the metadata behaviour.
  NodeStats s;
  s.rows = static_cast<double>(stats.rows);
  s.cols = static_cast<double>(stats.cols);
  s.sparsity = stats.sparsity;
  return s;
}

NodeStats ExactEstimator::Multiply(const NodeStats& a,
                                   const NodeStats& b) const {
  if (a.pattern && b.pattern) {
    Result<Matrix> product = remac::Multiply(*a.pattern, *b.pattern);
    if (product.ok()) {
      return FromPattern(Booleanize(product.value()));
    }
  }
  NodeStats s;
  s.rows = a.rows;
  s.cols = b.cols;
  s.sparsity = std::min(1.0, a.sparsity * b.sparsity * a.cols);
  return s;
}

NodeStats ExactEstimator::Transpose(const NodeStats& a) const {
  if (a.pattern) {
    return FromPattern(remac::Transpose(*a.pattern));
  }
  NodeStats s = a;
  std::swap(s.rows, s.cols);
  return s;
}

NodeStats ExactEstimator::Elementwise(PlanOp op, const NodeStats& a,
                                      const NodeStats& b) const {
  if (a.pattern && b.pattern) {
    Result<Matrix> out = [&]() -> Result<Matrix> {
      switch (op) {
        case PlanOp::kAdd:
        case PlanOp::kSub:
        case PlanOp::kMin:
        case PlanOp::kMax:
          // Union of the patterns bounds the min/max result.
          return Add(*a.pattern, *b.pattern);
        case PlanOp::kMul:
          return ElementwiseMultiply(*a.pattern, *b.pattern);
        case PlanOp::kDiv:
        default:
          return *a.pattern;
      }
    }();
    if (out.ok()) return FromPattern(Booleanize(out.value()));
  }
  NodeStats s = a;
  s.sparsity = std::min(1.0, std::max(a.sparsity, b.sparsity));
  return s;
}

}  // namespace remac
