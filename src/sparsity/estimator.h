#ifndef REMAC_SPARSITY_ESTIMATOR_H_
#define REMAC_SPARSITY_ESTIMATOR_H_

#include <memory>
#include <string>

#include "matrix/matrix.h"
#include "plan/plan_builder.h"
#include "plan/plan_node.h"
#include "sparsity/sketch.h"

namespace remac {

/// \brief Per-node statistics propagated by a sparsity estimator.
///
/// Every estimator fills rows/cols/sparsity; the MNC estimator
/// additionally carries a structural sketch, and the exact oracle carries
/// the boolean non-zero pattern.
struct NodeStats {
  double rows = 1;
  double cols = 1;
  double sparsity = 1.0;
  std::shared_ptr<const MncSketch> sketch;
  std::shared_ptr<const Matrix> pattern;  // exact oracle only

  double Nnz() const { return rows * cols * sparsity; }
};

/// \brief Pluggable sparsity estimator (paper Section 4.2).
///
/// The cost model walks plan trees bottom-up calling these propagation
/// rules. Choosing the estimator trades compile time against plan
/// quality; Figure 10 compares the metadata-based estimator (fast,
/// uniform-assumption) with MNC (slower, structure-exploiting).
class SparsityEstimator {
 public:
  virtual ~SparsityEstimator() = default;

  virtual const char* Name() const = 0;

  /// Statistics of a catalog dataset.
  virtual NodeStats LeafStats(const std::string& name,
                              const MatrixStats& stats) const = 0;

  /// Statistics of a generator output (eye/zeros/ones/rand).
  virtual NodeStats GeneratorStats(PlanOp op, int64_t rows,
                                   int64_t cols) const;

  virtual NodeStats Multiply(const NodeStats& a, const NodeStats& b) const = 0;
  virtual NodeStats Transpose(const NodeStats& a) const = 0;
  /// op is one of kAdd/kSub/kMul/kDiv.
  virtual NodeStats Elementwise(PlanOp op, const NodeStats& a,
                                const NodeStats& b) const = 0;
  /// Scalar (1x1) broadcast against a matrix: sparsity is preserved for
  /// * and /, densified for + and - with a non-zero scalar.
  virtual NodeStats ScalarBroadcast(PlanOp op, const NodeStats& matrix) const;
};

/// Metadata-based estimator: assumes uniformly distributed non-zeros and
/// derives output sparsity from input sparsities alone. Negligible
/// overhead; inaccurate under skew.
class MetadataEstimator : public SparsityEstimator {
 public:
  const char* Name() const override { return "MD"; }
  NodeStats LeafStats(const std::string& name,
                      const MatrixStats& stats) const override;
  NodeStats Multiply(const NodeStats& a, const NodeStats& b) const override;
  NodeStats Transpose(const NodeStats& a) const override;
  NodeStats Elementwise(PlanOp op, const NodeStats& a,
                        const NodeStats& b) const override;
};

/// MNC estimator: exploits exact row/column non-zero counts of the leaf
/// matrices and propagates skew-aware sketches.
class MncEstimator : public SparsityEstimator {
 public:
  const char* Name() const override { return "MNC"; }
  NodeStats LeafStats(const std::string& name,
                      const MatrixStats& stats) const override;
  NodeStats Multiply(const NodeStats& a, const NodeStats& b) const override;
  NodeStats Transpose(const NodeStats& a) const override;
  NodeStats Elementwise(PlanOp op, const NodeStats& a,
                        const NodeStats& b) const override;
};

/// Sampling-based estimator (in the spirit of MATFAST): samples the leaf
/// count vectors instead of reading them fully, then propagates with the
/// MNC rules. Cheaper than MNC, loses the skew structure the sample
/// misses — the middle ground of the paper's efficiency/accuracy spectrum
/// (Section 4.2's estimator survey).
class SamplingEstimator : public SparsityEstimator {
 public:
  explicit SamplingEstimator(int sample_size = 64)
      : sample_size_(sample_size) {}
  const char* Name() const override { return "Sample"; }
  NodeStats LeafStats(const std::string& name,
                      const MatrixStats& stats) const override;
  NodeStats Multiply(const NodeStats& a, const NodeStats& b) const override;
  NodeStats Transpose(const NodeStats& a) const override;
  NodeStats Elementwise(PlanOp op, const NodeStats& a,
                        const NodeStats& b) const override;

 private:
  int sample_size_;
  MncEstimator mnc_rules_;
};

/// Exact oracle: propagates true boolean non-zero patterns with sparse
/// kernel operations. Accurate and expensive; used as the accuracy
/// baseline in tests and the ablation bench. Leaf patterns must be
/// attached via SetLeafPattern before use.
class ExactEstimator : public SparsityEstimator {
 public:
  const char* Name() const override { return "Exact"; }

  /// Registers the actual matrix backing a dataset so leaves get true
  /// patterns. (The estimator keys patterns by dimensions + nnz, which is
  /// unambiguous within one catalog in practice; prefer attaching stats
  /// with unique shapes in tests.)
  void AttachCatalog(const DataCatalog* catalog) { catalog_ = catalog; }

  NodeStats LeafStats(const std::string& name,
                      const MatrixStats& stats) const override;
  NodeStats Multiply(const NodeStats& a, const NodeStats& b) const override;
  NodeStats Transpose(const NodeStats& a) const override;
  NodeStats Elementwise(PlanOp op, const NodeStats& a,
                        const NodeStats& b) const override;

 private:
  const DataCatalog* catalog_ = nullptr;
};

}  // namespace remac

#endif  // REMAC_SPARSITY_ESTIMATOR_H_
