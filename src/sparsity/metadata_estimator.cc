#include <algorithm>
#include <cmath>

#include "sparsity/estimator.h"

namespace remac {

NodeStats MetadataEstimator::LeafStats(const std::string& name,
                                       const MatrixStats& stats) const {
  (void)name;
  NodeStats s;
  s.rows = static_cast<double>(stats.rows);
  s.cols = static_cast<double>(stats.cols);
  s.sparsity = stats.sparsity;
  return s;
}

NodeStats MetadataEstimator::Multiply(const NodeStats& a,
                                      const NodeStats& b) const {
  NodeStats s;
  s.rows = a.rows;
  s.cols = b.cols;
  // Uniform non-zeros: an output cell is non-zero unless all k inner
  // products miss, so sp = 1 - (1 - sA*sB)^k (SystemML's worst-case
  // metadata propagation).
  const double k = a.cols;
  const double p = std::clamp(a.sparsity * b.sparsity, 0.0, 1.0);
  if (p >= 1.0) {
    s.sparsity = 1.0;
  } else {
    s.sparsity = 1.0 - std::exp(k * std::log1p(-p));
  }
  return s;
}

NodeStats MetadataEstimator::Transpose(const NodeStats& a) const {
  NodeStats s = a;
  std::swap(s.rows, s.cols);
  return s;
}

NodeStats MetadataEstimator::Elementwise(PlanOp op, const NodeStats& a,
                                         const NodeStats& b) const {
  NodeStats s;
  s.rows = a.rows;
  s.cols = a.cols;
  switch (op) {
    case PlanOp::kAdd:
    case PlanOp::kSub:
    case PlanOp::kMin:
    case PlanOp::kMax:
      // Union under independence (min/max can surface either operand's
      // non-zeros, so the union is the conservative pattern).
      s.sparsity = a.sparsity + b.sparsity - a.sparsity * b.sparsity;
      break;
    case PlanOp::kMul:
      s.sparsity = a.sparsity * b.sparsity;
      break;
    case PlanOp::kDiv:
      // Safe divide: zeros of the numerator stay zero.
      s.sparsity = a.sparsity;
      break;
    default:
      s.sparsity = std::max(a.sparsity, b.sparsity);
      break;
  }
  s.sparsity = std::clamp(s.sparsity, 0.0, 1.0);
  return s;
}

}  // namespace remac
