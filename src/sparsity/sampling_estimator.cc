#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "sparsity/estimator.h"

namespace remac {

NodeStats SamplingEstimator::LeafStats(const std::string& name,
                                       const MatrixStats& stats) const {
  NodeStats s;
  s.rows = static_cast<double>(stats.rows);
  s.cols = static_cast<double>(stats.cols);
  s.sparsity = stats.sparsity;
  if (stats.row_counts.empty() || stats.col_counts.empty()) {
    s.sketch = MncSketch::Uniform(stats.rows, stats.cols, stats.sparsity);
    (void)name;
    return s;
  }
  // Sample `sample_size` rows and columns of the exact count vectors and
  // scale up: a cheaper (and noisier) stand-in for the full MNC sketch,
  // in the spirit of MATFAST's sampling-based estimation.
  auto sketch = std::make_shared<MncSketch>();
  sketch->rows = stats.rows;
  sketch->cols = stats.cols;
  sketch->nnz = stats.sparsity * static_cast<double>(stats.rows) *
                static_cast<double>(stats.cols);
  Rng rng(0x5a3f11ULL ^ static_cast<uint64_t>(stats.rows * 131 + stats.cols));
  auto sample = [&](const std::vector<int64_t>& counts, int64_t dim,
                    std::vector<double>* out) {
    out->assign(static_cast<size_t>(dim), 0.0);
    const int n = std::min<int>(sample_size_, static_cast<int>(dim));
    if (n == 0) return;
    double total = 0.0;
    for (int k = 0; k < n; ++k) {
      total += static_cast<double>(
          counts[rng.NextBounded(static_cast<uint64_t>(counts.size()))]);
    }
    const double mean = total / n;
    // Spread the sampled mean uniformly; skew within the vector is lost,
    // which is exactly the estimation error the sampling trades for speed.
    for (auto& v : *out) v = mean;
  };
  sample(stats.row_counts, stats.rows, &sketch->row_counts);
  sample(stats.col_counts, stats.cols, &sketch->col_counts);
  s.sketch = std::move(sketch);
  return s;
}

NodeStats SamplingEstimator::Multiply(const NodeStats& a,
                                      const NodeStats& b) const {
  return mnc_rules_.Multiply(a, b);
}

NodeStats SamplingEstimator::Transpose(const NodeStats& a) const {
  return mnc_rules_.Transpose(a);
}

NodeStats SamplingEstimator::Elementwise(PlanOp op, const NodeStats& a,
                                         const NodeStats& b) const {
  return mnc_rules_.Elementwise(op, a, b);
}

}  // namespace remac
