#ifndef REMAC_BASELINES_ENGINE_MODES_H_
#define REMAC_BASELINES_ENGINE_MODES_H_

#include "runtime/executor.h"

namespace remac {

/// Engine personalities of the comparator systems (paper Section 6.4).
enum class EngineKind {
  kSystemDsLike,  // dynamic local/distributed switch, sparse support
  kPbdR,          // ScaLAPACK-based: dense-only, always distributed
  kSciDb,         // array DB: always distributed, costly redimension load
};

const char* EngineKindName(EngineKind kind);

/// Personality knobs of each engine:
/// - pbdR treats sparse matrices as dense and keeps running in
///   distributed mode; its input distribution is sequential (paper
///   Section 6.5: "hours for input partition").
/// - SciDB keeps running in distributed mode and pays a redimension
///   pass to build (dense) arrays on load.
/// - The SystemDS-like engine switches between local and distributed
///   execution and handles sparse matrices natively.
EngineTraits TraitsFor(EngineKind kind);

}  // namespace remac

#endif  // REMAC_BASELINES_ENGINE_MODES_H_
