#ifndef REMAC_BASELINES_SPORES_OPTIMIZER_H_
#define REMAC_BASELINES_SPORES_OPTIMIZER_H_

#include "cluster/cluster_model.h"
#include "common/status.h"
#include "core/adaptive_optimizer.h"
#include "plan/plan_builder.h"
#include "sparsity/estimator.h"

namespace remac {

struct SporesConfig {
  /// SPORES handles long multiplication chains by sampling rewrites;
  /// these bounds cap the windows it explores per chain.
  int max_window = 3;
  int max_samples = 24;
};

/// \brief A SPORES-like optimizer (Wang et al., VLDB'20): relational-
/// equality-saturation-style CSE discovery, emulated by a sampled subset
/// of the rewrite space. Finds implicit CSE within its sample but no
/// loop-constant elimination, and misses CSE on long multiplication
/// chains — the behaviour Figures 8(a)/8(b) report.
Result<CompiledProgram> SporesOptimize(const CompiledProgram& program,
                                       const ClusterModel& cluster,
                                       const SparsityEstimator* estimator,
                                       const DataCatalog* catalog,
                                       const SporesConfig& config = {},
                                       OptimizeReport* report = nullptr);

}  // namespace remac

#endif  // REMAC_BASELINES_SPORES_OPTIMIZER_H_
