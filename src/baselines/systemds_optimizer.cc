#include "baselines/systemds_optimizer.h"

#include <chrono>
#include <functional>
#include <map>
#include <vector>

#include "common/string_util.h"
#include "cost/cost_model.h"

namespace remac {

namespace {

/// Signature of a subtree at a program point: its structure plus the
/// version of every variable it reads, so textually identical subtrees
/// with different underlying values never unify.
std::string Signature(const PlanNode& node,
                      const std::map<std::string, int>& versions) {
  std::string out = PlanOpName(node.op);
  if (node.op == PlanOp::kInput) {
    auto it = versions.find(node.name);
    out += ":" + node.name + "@" +
           std::to_string(it == versions.end() ? 0 : it->second);
  } else if (node.op == PlanOp::kReadData) {
    out += ":" + node.name;
  } else if (node.op == PlanOp::kConst) {
    out += StringFormat(":%g", node.value);
  }
  if (node.children.empty()) return out;
  out += "(";
  for (size_t i = 0; i < node.children.size(); ++i) {
    if (i > 0) out += ",";
    out += Signature(*node.children[i], versions);
  }
  out += ")";
  return out;
}

/// A subtree is worth materializing only if it contains a matrix
/// multiplication. Bare transposes are excluded: SystemDS fuses t() into
/// the consuming multiply and never materializes a distributed transpose
/// just to share it.
bool ContainsMatMul(const PlanNode& node) {
  if (node.op == PlanOp::kMatMul) return true;
  for (const auto& child : node.children) {
    if (ContainsMatMul(*child)) return true;
  }
  return false;
}

bool WorthEliminating(const PlanNode& node) {
  if (node.shape.ScalarLike()) return false;
  return ContainsMatMul(node);
}

/// Explicit CSE over a statement sequence: identical (same-version)
/// subtrees occurring at least twice become temporaries inserted before
/// their first occurrence. This is what SystemDS's HOP DAG construction
/// achieves by hash-consing identical subtrees.
void ExplicitCse(std::vector<CompiledStmt>* statements) {
  // Count signatures.
  std::map<std::string, int> versions;
  std::map<std::string, int> counts;
  std::function<void(const PlanNode&)> count =
      [&](const PlanNode& node) {
        if (WorthEliminating(node)) {
          ++counts[Signature(node, versions)];
        }
        for (const auto& child : node.children) count(*child);
      };
  for (const auto& stmt : *statements) {
    if (stmt.kind != CompiledStmt::Kind::kAssign) continue;
    count(*stmt.plan);
    ++versions[stmt.target];
  }
  // Rewrite, outermost-first: a repeated subtree becomes a temp; nested
  // repeats inside the temp body are handled by the recursion as well.
  versions.clear();
  std::map<std::string, std::string> temp_of_signature;
  int next_temp = 0;
  std::vector<CompiledStmt> out;
  for (auto& stmt : *statements) {
    if (stmt.kind != CompiledStmt::Kind::kAssign) {
      out.push_back(std::move(stmt));
      continue;
    }
    std::vector<CompiledStmt> temps;
    std::function<PlanNodePtr(const PlanNode&)> rewrite =
        [&](const PlanNode& node) -> PlanNodePtr {
      if (WorthEliminating(node)) {
        const std::string sig = Signature(node, versions);
        auto counted = counts.find(sig);
        if (counted != counts.end() && counted->second >= 2) {
          auto named = temp_of_signature.find(sig);
          if (named == temp_of_signature.end()) {
            const std::string temp = StringFormat("__sds%d", next_temp++);
            // Build the temp's own plan (with nested CSE applied).
            CompiledStmt tstmt;
            tstmt.kind = CompiledStmt::Kind::kAssign;
            tstmt.target = temp;
            tstmt.is_temp = true;
            PlanNodePtr body = std::make_shared<PlanNode>();
            body->op = node.op;
            body->name = node.name;
            body->value = node.value;
            body->shape = node.shape;
            for (const auto& child : node.children) {
              body->children.push_back(rewrite(*child));
            }
            tstmt.plan = std::move(body);
            temps.push_back(std::move(tstmt));
            named = temp_of_signature.emplace(sig, temp).first;
          }
          return MakeInput(named->second, node.shape);
        }
      }
      auto copy = std::make_shared<PlanNode>();
      copy->op = node.op;
      copy->name = node.name;
      copy->value = node.value;
      copy->shape = node.shape;
      for (const auto& child : node.children) {
        copy->children.push_back(rewrite(*child));
      }
      return copy;
    };
    CompiledStmt rewritten = stmt;
    rewritten.plan = rewrite(*stmt.plan);
    for (auto& tstmt : temps) out.push_back(std::move(tstmt));
    ++versions[stmt.target];
    // Version bump invalidates signatures mentioning the target.
    for (auto it = temp_of_signature.begin();
         it != temp_of_signature.end();) {
      if (it->first.find(":" + rewritten.target + "@") !=
          std::string::npos) {
        it = temp_of_signature.erase(it);
      } else {
        ++it;
      }
    }
    out.push_back(std::move(rewritten));
  }
  *statements = std::move(out);
}

/// Flattens as-written multiplication chains and reorders them with the
/// interval DP (SystemDS's mmchain optimization). Atoms are anything
/// that is not a kMatMul (transposed leaves stay fused atoms).
class ChainReorderer {
 public:
  ChainReorderer(const CostModel* cost_model, VarStats* vars)
      : cost_model_(cost_model), vars_(vars) {}

  Result<PlanNodePtr> Reorder(const PlanNode& node) {
    if (node.op != PlanOp::kMatMul) {
      auto copy = std::make_shared<PlanNode>();
      copy->op = node.op;
      copy->name = node.name;
      copy->value = node.value;
      copy->shape = node.shape;
      for (const auto& child : node.children) {
        REMAC_ASSIGN_OR_RETURN(PlanNodePtr sub, Reorder(*child));
        copy->children.push_back(std::move(sub));
      }
      return copy;
    }
    // Flatten the chain.
    std::vector<PlanNodePtr> atoms;
    std::function<Status(const PlanNode&)> flatten =
        [&](const PlanNode& n) -> Status {
      if (n.op == PlanOp::kMatMul) {
        REMAC_RETURN_NOT_OK(flatten(*n.children[0]));
        return flatten(*n.children[1]);
      }
      REMAC_ASSIGN_OR_RETURN(PlanNodePtr atom, Reorder(n));
      atoms.push_back(std::move(atom));
      return Status::OK();
    };
    REMAC_RETURN_NOT_OK(flatten(node));
    const int n = static_cast<int>(atoms.size());
    if (n <= 2) return RebuildLeftDeep(atoms);
    // Stats per atom and per interval (left fold).
    std::vector<CostedStats> stats(static_cast<size_t>(n) * n);
    for (int i = 0; i < n; ++i) {
      auto s = cost_model_->CostTree(*atoms[i], *vars_);
      if (!s.ok()) return s.status();
      stats[static_cast<size_t>(i) * n + i] = std::move(s).value();
    }
    for (int len = 2; len <= n; ++len) {
      for (int i = 0; i + len <= n; ++i) {
        const int j = i + len - 1;
        stats[static_cast<size_t>(i) * n + j] = cost_model_->MultiplyCost(
            stats[static_cast<size_t>(i) * n + j - 1],
            stats[static_cast<size_t>(j) * n + j]);
      }
    }
    std::vector<double> best(static_cast<size_t>(n) * n, 0.0);
    std::vector<int> choice(static_cast<size_t>(n) * n, -1);
    auto idx = [n](int i, int j) { return static_cast<size_t>(i) * n + j; };
    for (int len = 2; len <= n; ++len) {
      for (int i = 0; i + len <= n; ++i) {
        const int j = i + len - 1;
        double best_cost = -1.0;
        for (int k = i; k < j; ++k) {
          const double op = cost_model_->MultiplySeconds(
              stats[idx(i, k)], stats[idx(k + 1, j)],
              stats[idx(i, j)].stats.sparsity);
          const double total = best[idx(i, k)] + best[idx(k + 1, j)] + op;
          if (choice[idx(i, j)] < 0 || total < best_cost) {
            best_cost = total;
            choice[idx(i, j)] = k;
          }
        }
        best[idx(i, j)] = best_cost;
      }
    }
    std::function<PlanNodePtr(int, int)> build = [&](int i,
                                                     int j) -> PlanNodePtr {
      if (i == j) return atoms[i];
      const int k = choice[idx(i, j)];
      PlanNodePtr out = MakeBinary(PlanOp::kMatMul, build(i, k),
                                   build(k + 1, j));
      const Status st = InferShapes(out.get());
      (void)st;
      return out;
    };
    return build(0, n - 1);
  }

 private:
  Result<PlanNodePtr> RebuildLeftDeep(const std::vector<PlanNodePtr>& atoms) {
    PlanNodePtr acc = atoms[0];
    for (size_t i = 1; i < atoms.size(); ++i) {
      acc = MakeBinary(PlanOp::kMatMul, acc, atoms[i]);
      REMAC_RETURN_NOT_OK(InferShapes(acc.get()));
    }
    return acc;
  }

  const CostModel* cost_model_;
  VarStats* vars_;
};

Status ReorderStatements(std::vector<CompiledStmt>* statements,
                         const CostModel& cost_model, VarStats* vars) {
  ChainReorderer reorderer(&cost_model, vars);
  for (auto& stmt : *statements) {
    if (stmt.kind == CompiledStmt::Kind::kAssign) {
      REMAC_ASSIGN_OR_RETURN(stmt.plan, reorderer.Reorder(*stmt.plan));
      auto costed = cost_model.CostTree(*stmt.plan, *vars);
      if (costed.ok()) {
        CostedStats value = std::move(costed).value();
        value.seconds = 0.0;
        vars->vars.insert_or_assign(stmt.target, std::move(value));
      }
    } else {
      REMAC_RETURN_NOT_OK(ReorderStatements(&stmt.body, cost_model, vars));
    }
  }
  return Status::OK();
}

}  // namespace

Result<CompiledProgram> SystemDsOptimize(const CompiledProgram& program,
                                         const ClusterModel& cluster,
                                         const SparsityEstimator* estimator,
                                         const DataCatalog* catalog,
                                         const SystemDsConfig& config) {
  const auto start = std::chrono::steady_clock::now();
  CompiledProgram out;
  out.statements = program.statements;  // deep enough: plans are immutable

  // SystemDS applies CSE before the order-improving rewrites, which is
  // why explicit CSE can block mmchain reordering (paper Section 6.2.2,
  // BFGS discussion).
  if (config.explicit_cse) {
    for (auto& stmt : out.statements) {
      if (stmt.kind == CompiledStmt::Kind::kLoop) {
        ExplicitCse(&stmt.body);
      }
    }
    ExplicitCse(&out.statements);
  }

  if (config.chain_reordering) {
    CostModel cost_model(cluster, estimator, catalog);
    auto vars = PropagateProgramStats(out, *catalog, cost_model);
    if (!vars.ok()) return vars.status();
    VarStats var_stats = std::move(vars).value();
    REMAC_RETURN_NOT_OK(
        ReorderStatements(&out.statements, cost_model, &var_stats));
  }

  if (config.compile_seconds != nullptr) {
    *config.compile_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
  }
  return out;
}

}  // namespace remac
