#ifndef REMAC_BASELINES_SYSTEMDS_OPTIMIZER_H_
#define REMAC_BASELINES_SYSTEMDS_OPTIMIZER_H_

#include "cluster/cluster_model.h"
#include "common/status.h"
#include "plan/plan_builder.h"
#include "sparsity/estimator.h"

namespace remac {

struct SystemDsConfig {
  /// Explicit common-subexpression elimination on identical subtrees
  /// (disable to obtain the paper's SystemDS* baseline).
  bool explicit_cse = true;
  /// Matrix-multiplication-chain reordering (SystemDS's mmchain
  /// optimization); operates per statement with the metadata estimator.
  bool chain_reordering = true;
  /// Wall-clock compile time is reported through this pointer when set.
  double* compile_seconds = nullptr;
};

/// \brief A SystemDS-like plan compiler: per-statement multiplication
/// chain reordering plus *explicit* CSE only — identical subtrees within
/// the loop body are computed once per iteration (paper Sections 1-2:
/// SystemDS applies explicit CSE but is oblivious to implicit CSE/LSE).
///
/// Used as the baseline in every experiment; with explicit_cse=false it
/// is the SystemDS* configuration of Figure 8(b).
Result<CompiledProgram> SystemDsOptimize(const CompiledProgram& program,
                                         const ClusterModel& cluster,
                                         const SparsityEstimator* estimator,
                                         const DataCatalog* catalog,
                                         const SystemDsConfig& config = {});

}  // namespace remac

#endif  // REMAC_BASELINES_SYSTEMDS_OPTIMIZER_H_
