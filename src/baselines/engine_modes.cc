#include "baselines/engine_modes.h"

namespace remac {

const char* EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kSystemDsLike:
      return "systemds";
    case EngineKind::kPbdR:
      return "pbdR";
    case EngineKind::kSciDb:
      return "SciDB";
  }
  return "?";
}

EngineTraits TraitsFor(EngineKind kind) {
  EngineTraits traits;
  switch (kind) {
    case EngineKind::kSystemDsLike:
      break;
    case EngineKind::kPbdR:
      traits.force_dense = true;
      traits.force_distributed = true;
      // Sequential (single-channel) distribution of the input matrix.
      traits.input_partition_factor = 8.0;
      break;
    case EngineKind::kSciDb:
      traits.force_dense = true;
      traits.force_distributed = true;
      // Load plus a redimension pass over the data.
      traits.input_partition_factor = 12.0;
      break;
  }
  return traits;
}

}  // namespace remac
