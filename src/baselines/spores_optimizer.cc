#include "baselines/spores_optimizer.h"

namespace remac {

Result<CompiledProgram> SporesOptimize(const CompiledProgram& program,
                                       const ClusterModel& cluster,
                                       const SparsityEstimator* estimator,
                                       const DataCatalog* catalog,
                                       const SporesConfig& config,
                                       OptimizeReport* report) {
  OptimizerConfig opt_config;
  opt_config.search = SearchMethod::kSampled;
  opt_config.sampled_max_window = config.max_window;
  opt_config.sampled_max_samples = config.max_samples;
  // SPORES extracts the cheapest plan from its saturated e-graph, so the
  // CSE it applies never worsens the plan; within our framework that is
  // cost-guided selection over the *sampled* option set. It finds no LSE
  // (the sampled search emits none) and misses long-chain CSE entirely.
  opt_config.strategy = EliminationStrategy::kAdaptive;
  ReMacOptimizer optimizer(cluster, estimator, catalog, opt_config);
  return optimizer.Optimize(program, report);
}

}  // namespace remac
