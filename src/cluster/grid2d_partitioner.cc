#include "cluster/grid2d_partitioner.h"

#include <cassert>
#include <cstddef>

namespace remac {

Grid2DShape Grid2DPartitioner::MakeGrid(int num_workers) {
  assert(num_workers > 0);
  Grid2DShape shape;
  // Largest divisor of num_workers not exceeding its square root: the
  // most-square exact factorization (pr <= pc keeps the wider dimension
  // on columns, matching the row-major flat worker ids).
  int best = 1;
  for (int d = 1; d * d <= num_workers; ++d) {
    if (num_workers % d == 0) best = d;
  }
  shape.rows = best;
  shape.cols = num_workers / best;
  return shape;
}

std::vector<int> Grid2DPartitioner::RowGroup(int worker_row) const {
  assert(worker_row >= 0 && worker_row < shape_.rows);
  std::vector<int> group;
  group.reserve(static_cast<size_t>(shape_.cols));
  for (int c = 0; c < shape_.cols; ++c) {
    group.push_back(worker_row * shape_.cols + c);
  }
  return group;
}

std::vector<int> Grid2DPartitioner::ColGroup(int worker_col) const {
  assert(worker_col >= 0 && worker_col < shape_.cols);
  std::vector<int> group;
  group.reserve(static_cast<size_t>(shape_.rows));
  for (int r = 0; r < shape_.rows; ++r) {
    group.push_back(r * shape_.cols + worker_col);
  }
  return group;
}

std::vector<double> Grid2DPartitioner::WorkerLoads(
    const std::vector<double>& weights, int64_t grid_cols) const {
  assert(grid_cols > 0);
  std::vector<double> loads(static_cast<size_t>(num_workers()), 0.0);
  for (size_t i = 0; i < weights.size(); ++i) {
    const int64_t tr = static_cast<int64_t>(i) / grid_cols;
    const int64_t tc = static_cast<int64_t>(i) % grid_cols;
    loads[static_cast<size_t>(WorkerOf(tr, tc))] += weights[i];
  }
  return loads;
}

}  // namespace remac
