#ifndef REMAC_CLUSTER_TRANSMISSION_LEDGER_H_
#define REMAC_CLUSTER_TRANSMISSION_LEDGER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "cluster/cluster_model.h"

namespace remac {

/// \brief Breakdown of a run's simulated time, mirroring Figure 12.
struct TimeBreakdown {
  double input_partition_seconds = 0.0;
  double compilation_seconds = 0.0;
  double computation_seconds = 0.0;
  double transmission_seconds = 0.0;
  /// Time lost to fault recovery: retry backoff, crash rescheduling and
  /// straggler delay (chaos runs only; zero on fault-free runs).
  double recovery_seconds = 0.0;

  double TotalSeconds() const {
    return input_partition_seconds + compilation_seconds +
           computation_seconds + transmission_seconds + recovery_seconds;
  }

  TimeBreakdown& operator+=(const TimeBreakdown& other);
  std::string ToString() const;
};

/// \brief Accounts all simulated work performed during execution.
///
/// The runtime executes operators for real (numerics are exact) and books
/// the FLOPs and bytes each operator *would* cost on the modeled cluster
/// here; the ledger converts them into simulated seconds using the
/// ClusterModel weights. This is the substitution for the paper's 7-node
/// Spark testbed (see DESIGN.md Section 2).
///
/// Booking is thread-safe: every accumulator is an atomic double updated
/// with a CAS add, so the task-graph executor's concurrent tasks can
/// book into one ledger directly (they normally book into private
/// per-task ledgers folded in via MergeFrom, which keeps per-task costs
/// attributable for the makespan accounting).
class TransmissionLedger {
 public:
  explicit TransmissionLedger(ClusterModel model) : model_(model) {}

  TransmissionLedger(const TransmissionLedger&) = delete;
  TransmissionLedger& operator=(const TransmissionLedger&) = delete;

  const ClusterModel& model() const { return model_; }

  /// Books FLOPs executed by the distributed engine.
  void AddDistributedFlops(double flops);
  /// Books FLOPs executed locally on the driver.
  void AddLocalFlops(double flops);
  /// Books bytes moved by a transmission primitive.
  void AddTransmission(TransmissionPrimitive pr, double bytes);
  /// Books bytes written/read while partitioning input data into the
  /// cluster (Figure 12's "input partition" bar).
  void AddInputPartition(double bytes);
  /// Books real compilation wall time.
  void AddCompilationSeconds(double seconds);
  /// Books simulated fault-recovery time (retry backoff, crash
  /// rescheduling, straggler delay).
  void AddRecoverySeconds(double seconds);
  /// Records work lost to a failed attempt. The attempt's FLOPs/bytes are
  /// double-booked into the main accumulators via MergeFrom (a re-run
  /// costs the cluster twice, the way Spark re-executes lineage); this
  /// tracks the lost share so reports can attribute it.
  void AddWasted(double flops, double bytes);

  /// Adds every accumulator of `other` into this ledger (used to fold
  /// per-task ledgers into the run's main ledger).
  void MergeFrom(const TransmissionLedger& other);

  double TotalFlops() const {
    return distributed_flops_.load(std::memory_order_relaxed) +
           local_flops_.load(std::memory_order_relaxed);
  }
  double BytesFor(TransmissionPrimitive pr) const {
    return bytes_[static_cast<size_t>(pr)].load(std::memory_order_relaxed);
  }
  /// Total bytes across all transmission primitives.
  double TotalBytes() const;

  double WastedFlops() const {
    return wasted_flops_.load(std::memory_order_relaxed);
  }
  double WastedBytes() const {
    return wasted_bytes_.load(std::memory_order_relaxed);
  }
  double RecoverySeconds() const {
    return recovery_seconds_.load(std::memory_order_relaxed);
  }

  /// The simulated time breakdown accumulated so far.
  TimeBreakdown Breakdown() const;

  /// Total simulated seconds (sum of the breakdown).
  double TotalSeconds() const { return Breakdown().TotalSeconds(); }

  void Reset();

 private:
  ClusterModel model_;
  std::atomic<double> distributed_flops_{0.0};
  std::atomic<double> local_flops_{0.0};
  std::array<std::atomic<double>, kNumTransmissionPrimitives> bytes_{};
  std::atomic<double> input_partition_bytes_{0.0};
  std::atomic<double> compilation_seconds_{0.0};
  std::atomic<double> recovery_seconds_{0.0};
  std::atomic<double> wasted_flops_{0.0};
  std::atomic<double> wasted_bytes_{0.0};
};

}  // namespace remac

#endif  // REMAC_CLUSTER_TRANSMISSION_LEDGER_H_
