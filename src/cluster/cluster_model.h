#ifndef REMAC_CLUSTER_CLUSTER_MODEL_H_
#define REMAC_CLUSTER_CLUSTER_MODEL_H_

#include <cstdint>
#include <string>

namespace remac {

/// Transmission primitives of the cost model (paper Section 4.2):
/// collection (gather to the driver), broadcast (driver to all workers),
/// shuffle (worker-to-worker exchange), and dfs (distributed filesystem IO).
enum class TransmissionPrimitive { kCollection, kBroadcast, kShuffle, kDfs };

inline constexpr int kNumTransmissionPrimitives = 4;

const char* TransmissionPrimitiveName(TransmissionPrimitive pr);

/// Whether the cost model may place a multiply on the 2D tiled layout
/// (SUMMA over a pr x pc worker grid) instead of the 1D hash-partitioned
/// one: kAuto lets the cost model pick whichever is cheaper per operator,
/// kOff forces the 1D layout (the paper's baseline and the bench's
/// comparison arm), kForce2D always takes SUMMA when it applies (both
/// operands distributed, more than one worker).
enum class Dist2DMode { kAuto, kOff, kForce2D };

const char* Dist2DModeName(Dist2DMode mode);

/// \brief Static description of the (simulated) cluster.
///
/// Mirrors the paper's 7-node testbed: one driver plus `num_workers`
/// workers, 1 Gbps Ethernet, block-partitioned matrices. The reciprocals
/// of these rates are the cost-model weights w_flop and w_pr. The same
/// parameters drive both the optimizer's cost model and the runtime's
/// simulated-time accounting, so "estimated" and "measured" times live on
/// one scale.
struct ClusterModel {
  /// Number of workers (the paper uses 6 Spark workers).
  int num_workers = 6;

  /// Aggregate peak floating-point throughput of the cluster (FLOP/s).
  /// w_flop = 1 / flops_per_sec.
  double flops_per_sec = 4.0e10;

  /// Single-node floating-point throughput used when an operator runs
  /// locally on the driver.
  double local_flops_per_sec = 8.0e9;

  /// Effective bandwidth of each transmission primitive (bytes/s).
  /// w_pr = 1 / bandwidth. 1 Gbps Ethernet ~= 1.25e8 B/s.
  double broadcast_bytes_per_sec = 1.25e8;
  double shuffle_bytes_per_sec = 1.25e8;
  double collection_bytes_per_sec = 1.25e8;
  double dfs_bytes_per_sec = 2.5e8;

  /// Driver memory budget: operators whose inputs and output fit run in
  /// local mode with no transmission (SystemDS's dynamic local/distributed
  /// switch, Section 5 / Section 6.4).
  int64_t driver_memory_bytes = 512LL << 20;

  /// Side length of the square blocks matrices are partitioned into
  /// (the paper inherits SystemDS's 1000 x 1000 blocks).
  int64_t block_size = 1024;

  /// 2D tiled layout policy (see Dist2DMode). Auto by default: the DP
  /// optimizer and the runtime score SUMMA against CPMM per multiply and
  /// take the cheaper plan.
  Dist2DMode dist2d = Dist2DMode::kAuto;

  /// Weight accessors (reciprocal rates).
  double WFlop() const { return 1.0 / flops_per_sec; }
  double WLocalFlop() const { return 1.0 / local_flops_per_sec; }
  double WPrimitive(TransmissionPrimitive pr) const;

  /// A small single-node configuration: everything local (used for the
  /// paper's Figure 3(b) single-node comparison).
  static ClusterModel SingleNode();

  std::string ToString() const;
};

}  // namespace remac

#endif  // REMAC_CLUSTER_CLUSTER_MODEL_H_
