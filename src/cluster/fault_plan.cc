#include "cluster/fault_plan.h"

#include <cmath>

#include "common/string_util.h"
#include "obs/metrics.h"

namespace remac {

namespace {

/// Process-wide fault/retry metric handles. Constructed on the first
/// injector, which registers every `remac.fault.*` / `remac.retry.*`
/// name even for runs that end up injecting nothing — the bench-smoke
/// manifest check relies on a chaos pass registering the full set.
struct FaultMetrics {
  Counter* injected =
      MetricsRegistry::Global().GetCounter("remac.fault.injected");
  Counter* transients =
      MetricsRegistry::Global().GetCounter("remac.fault.transients");
  Counter* crashes =
      MetricsRegistry::Global().GetCounter("remac.fault.crashes");
  Counter* stragglers =
      MetricsRegistry::Global().GetCounter("remac.fault.stragglers");
  Gauge* wasted_seconds =
      MetricsRegistry::Global().GetGauge("remac.fault.wasted_seconds");
  Counter* retry_attempts =
      MetricsRegistry::Global().GetCounter("remac.retry.attempts");
  Counter* retry_exhausted =
      MetricsRegistry::Global().GetCounter("remac.retry.exhausted");
  Gauge* backoff_seconds =
      MetricsRegistry::Global().GetGauge("remac.retry.backoff_seconds");
};

FaultMetrics& Metrics() {
  static FaultMetrics metrics;
  return metrics;
}

/// FNV-1a 64 over the key bytes, mixed with seed and salt via splitmix64
/// finalization. Pure function of its inputs: the same (seed, key, salt)
/// draws the same fault on every run and every thread schedule.
uint64_t MixHash(uint64_t seed, std::string_view key, uint64_t salt) {
  uint64_t h = 14695981039346656037ull ^ seed;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  h ^= salt + 0x9e3779b97f4a7c15ull;
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h;
}

}  // namespace

FaultPlan FaultPlan::Chaos(uint64_t seed) {
  FaultPlan plan;
  plan.enabled = true;
  plan.seed = seed;
  plan.transient_probability = 0.2;
  plan.transient_fail_attempts = 2;
  plan.straggler_probability = 0.2;
  plan.straggler_factor = 4.0;
  // One worker crash somewhere in the first few tasks (seed-dependent).
  plan.crash_at_task = static_cast<int64_t>(seed % 5);
  plan.max_retries = 4;
  return plan;
}

std::string FaultPlan::ToString() const {
  if (!enabled) return "faults disabled";
  return StringFormat(
      "seed=%llu transient=%.2f(x%d) straggler=%.2f(%.1fx) "
      "crash@%lld retries=%d backoff=%.3gs*%.1f^k",
      static_cast<unsigned long long>(seed), transient_probability,
      transient_fail_attempts, straggler_probability, straggler_factor,
      static_cast<long long>(crash_at_task), max_retries,
      backoff_base_seconds, backoff_multiplier);
}

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kTransient: return "transient";
    case FaultKind::kWorkerCrash: return "worker-crash";
    case FaultKind::kStraggler: return "straggler";
  }
  return "?";
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(plan) {
  Metrics();  // register the full metric set up front
}

double FaultInjector::Draw(std::string_view task_key, uint64_t salt) const {
  const uint64_t h = MixHash(plan_.seed, task_key, salt);
  // 53 mantissa bits -> uniform in [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

FaultDecision FaultInjector::Probe(std::string_view task_key, int attempt) {
  FaultDecision decision;
  if (!plan_.enabled) return decision;
  probes_.fetch_add(1, std::memory_order_relaxed);

  // Worker crash: exactly one first attempt (the crash_at_task-th task
  // to start) is lost with the worker that ran it.
  if (attempt == 0 && plan_.crash_at_task >= 0 &&
      first_attempts_.fetch_add(1, std::memory_order_relaxed) ==
          plan_.crash_at_task) {
    crashes_.fetch_add(1, std::memory_order_relaxed);
    Metrics().crashes->Add();
    Metrics().injected->Add();
    decision.kind = FaultKind::kWorkerCrash;
    return decision;
  }

  // Transient kernel/transmission error: strikes a seed-chosen subset of
  // tasks, deterministically failing their first few attempts.
  if (attempt < plan_.transient_fail_attempts &&
      Draw(task_key, /*salt=*/1) < plan_.transient_probability) {
    transients_.fetch_add(1, std::memory_order_relaxed);
    Metrics().transients->Add();
    Metrics().injected->Add();
    decision.kind = FaultKind::kTransient;
    return decision;
  }

  // Straggler: the task's placement is slow; every attempt on it drags.
  if (Draw(task_key, /*salt=*/2) < plan_.straggler_probability) {
    stragglers_.fetch_add(1, std::memory_order_relaxed);
    Metrics().stragglers->Add();
    decision.kind = FaultKind::kStraggler;
    decision.slowdown = plan_.straggler_factor;
  }
  return decision;
}

double FaultInjector::BackoffSeconds(int attempt) const {
  return plan_.backoff_base_seconds *
         std::pow(plan_.backoff_multiplier, attempt);
}

FaultStats FaultInjector::stats() const {
  FaultStats stats;
  stats.probes = probes_.load(std::memory_order_relaxed);
  stats.transients = transients_.load(std::memory_order_relaxed);
  stats.crashes = crashes_.load(std::memory_order_relaxed);
  stats.stragglers = stragglers_.load(std::memory_order_relaxed);
  stats.injected = stats.transients + stats.crashes;
  return stats;
}

}  // namespace remac
