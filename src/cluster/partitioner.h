#ifndef REMAC_CLUSTER_PARTITIONER_H_
#define REMAC_CLUSTER_PARTITIONER_H_

#include <cstdint>
#include <vector>

namespace remac {

/// \brief Hash partitioner mapping block coordinates to workers.
///
/// ReMac inherits SystemDS's hash partitioning of fixed-size matrix blocks
/// (paper Section 6.5): block (br, bc) is owned by
/// hash(br, bc) mod num_workers. The hash mixes both coordinates so that
/// skewed data still spreads evenly across workers (Figure 13).
class HashPartitioner {
 public:
  explicit HashPartitioner(int num_workers) : num_workers_(num_workers) {}

  int num_workers() const { return num_workers_; }

  /// Worker owning block (block_row, block_col).
  int WorkerOf(int64_t block_row, int64_t block_col) const;

  /// Distributes `weights[i]` (e.g., per-block byte sizes laid out
  /// row-major on a grid_cols-wide grid) over workers; returns per-worker
  /// totals. Used to measure work balance.
  std::vector<double> WorkerLoads(const std::vector<double>& weights,
                                  int64_t grid_cols) const;

 private:
  int num_workers_;
};

}  // namespace remac

#endif  // REMAC_CLUSTER_PARTITIONER_H_
