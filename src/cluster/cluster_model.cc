#include "cluster/cluster_model.h"

#include "common/string_util.h"

namespace remac {

const char* TransmissionPrimitiveName(TransmissionPrimitive pr) {
  switch (pr) {
    case TransmissionPrimitive::kCollection:
      return "collection";
    case TransmissionPrimitive::kBroadcast:
      return "broadcast";
    case TransmissionPrimitive::kShuffle:
      return "shuffle";
    case TransmissionPrimitive::kDfs:
      return "dfs";
  }
  return "?";
}

const char* Dist2DModeName(Dist2DMode mode) {
  switch (mode) {
    case Dist2DMode::kAuto:
      return "auto";
    case Dist2DMode::kOff:
      return "off";
    case Dist2DMode::kForce2D:
      return "force2d";
  }
  return "?";
}

double ClusterModel::WPrimitive(TransmissionPrimitive pr) const {
  switch (pr) {
    case TransmissionPrimitive::kCollection:
      return 1.0 / collection_bytes_per_sec;
    case TransmissionPrimitive::kBroadcast:
      return 1.0 / broadcast_bytes_per_sec;
    case TransmissionPrimitive::kShuffle:
      return 1.0 / shuffle_bytes_per_sec;
    case TransmissionPrimitive::kDfs:
      return 1.0 / dfs_bytes_per_sec;
  }
  return 0.0;
}

ClusterModel ClusterModel::SingleNode() {
  ClusterModel m;
  m.num_workers = 1;
  m.flops_per_sec = m.local_flops_per_sec;
  // A single node never transmits; infinite bandwidth keeps the cost model
  // well-defined if a distributed operator is costed anyway.
  m.broadcast_bytes_per_sec = 1e18;
  m.shuffle_bytes_per_sec = 1e18;
  m.collection_bytes_per_sec = 1e18;
  // dfs doubles as the out-of-core streaming path of a single node: the
  // paper's nodes carry 4TB hard disks (~150MB/s sequential).
  m.dfs_bytes_per_sec = 1.5e8;
  m.driver_memory_bytes = 16LL << 30;
  return m;
}

std::string ClusterModel::ToString() const {
  return StringFormat(
      "ClusterModel{workers=%d, flops=%.2e, mem=%lldMB, block=%lld}",
      num_workers, flops_per_sec,
      static_cast<long long>(driver_memory_bytes >> 20),
      static_cast<long long>(block_size));
}

}  // namespace remac
