#ifndef REMAC_CLUSTER_GRID2D_PARTITIONER_H_
#define REMAC_CLUSTER_GRID2D_PARTITIONER_H_

#include <cstdint>
#include <vector>

namespace remac {

/// Shape of the logical worker grid: pr rows by pc columns.
struct Grid2DShape {
  int rows = 1;
  int cols = 1;
};

/// \brief 2D block-cyclic partitioner mapping tiles to a pr x pc worker
/// grid (LA3-style, the layout SUMMA multiplies against).
///
/// The `num_workers` workers are arranged into the most-square grid whose
/// area is exactly num_workers (6 workers -> 2 x 3; primes degrade to
/// 1 x p). Tile (tr, tc) is owned block-cyclically by the worker at grid
/// position (tr mod pr, tc mod pc), so every worker row holds a stripe of
/// tile rows and every worker column a stripe of tile columns. SUMMA's
/// communication groups fall directly out of this mapping: an A tile is
/// broadcast along its owner's worker *row* (pc - 1 receivers), a B tile
/// along its owner's worker *column* (pr - 1 receivers).
class Grid2DPartitioner {
 public:
  explicit Grid2DPartitioner(int num_workers)
      : shape_(MakeGrid(num_workers)) {}

  /// Most-square factorization pr x pc == num_workers with pr <= pc.
  static Grid2DShape MakeGrid(int num_workers);

  int num_workers() const { return shape_.rows * shape_.cols; }
  int grid_rows() const { return shape_.rows; }  // pr
  int grid_cols() const { return shape_.cols; }  // pc

  /// Grid coordinates of the worker owning tile (tile_row, tile_col).
  int WorkerRowOf(int64_t tile_row) const {
    return static_cast<int>(tile_row % shape_.rows);
  }
  int WorkerColOf(int64_t tile_col) const {
    return static_cast<int>(tile_col % shape_.cols);
  }

  /// Flat worker id owning tile (tile_row, tile_col): row-major over the
  /// worker grid.
  int WorkerOf(int64_t tile_row, int64_t tile_col) const {
    return WorkerRowOf(tile_row) * shape_.cols + WorkerColOf(tile_col);
  }

  /// Flat ids of the workers in grid row `worker_row` (an A-broadcast
  /// group) / grid column `worker_col` (a B-broadcast group).
  std::vector<int> RowGroup(int worker_row) const;
  std::vector<int> ColGroup(int worker_col) const;

  /// Distributes `weights[i]` (row-major on a grid_cols-wide tile grid)
  /// over workers; same contract as HashPartitioner::WorkerLoads so the
  /// two layouts' balance is directly comparable.
  std::vector<double> WorkerLoads(const std::vector<double>& weights,
                                  int64_t grid_cols) const;

 private:
  Grid2DShape shape_;
};

}  // namespace remac

#endif  // REMAC_CLUSTER_GRID2D_PARTITIONER_H_
