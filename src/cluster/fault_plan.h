#ifndef REMAC_CLUSTER_FAULT_PLAN_H_
#define REMAC_CLUSTER_FAULT_PLAN_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace remac {

/// \brief Seeded description of the faults a simulated run must survive.
///
/// The paper's substrate (Spark on 7 nodes) re-executes lost tasks from
/// lineage; our simulated cluster never fails on its own, so chaos runs
/// inject failures deterministically instead. Every decision is a pure
/// function of (seed, task identity, attempt), independent of thread
/// interleaving, so a chaos run is reproducible and — because failed
/// attempts are discarded before commit — bitwise-identical in its
/// results to the fault-free run whenever retries eventually succeed.
///
/// The default Chaos() profile guarantees eventual success by
/// construction: transient faults only strike the first
/// `transient_fail_attempts` attempts of a task, a worker crash consumes
/// exactly one attempt, and `max_retries` exceeds both.
struct FaultPlan {
  /// Master switch; disabled plans inject nothing.
  bool enabled = false;
  /// Seed for every per-task fault draw.
  uint64_t seed = 0;

  /// Probability that a task suffers transient failures (kernel or
  /// transmission error). A struck task fails deterministically on
  /// attempts [0, transient_fail_attempts) and succeeds afterwards.
  double transient_probability = 0.0;
  int transient_fail_attempts = 2;

  /// Probability that a task lands on a straggler worker; its simulated
  /// duration is multiplied by `straggler_factor` (numerics unchanged).
  double straggler_probability = 0.0;
  double straggler_factor = 4.0;

  /// Global task ordinal (first attempts only) at which a worker crash
  /// destroys the running attempt; -1 disables. The re-execution pays
  /// `crash_recovery_seconds` of simulated rescheduling on top of the
  /// usual backoff.
  int64_t crash_at_task = -1;
  double crash_recovery_seconds = 0.5;

  /// Retries per task before the run gives up with Unavailable
  /// (attempts = max_retries + 1).
  int max_retries = 4;

  /// Exponential backoff booked as simulated recovery time:
  /// backoff(attempt) = backoff_base_seconds * backoff_multiplier^attempt.
  double backoff_base_seconds = 0.05;
  double backoff_multiplier = 2.0;

  /// The `remac run --chaos <seed>` profile: transients, stragglers and
  /// one early worker crash, tuned so every task recovers within the
  /// retry budget.
  static FaultPlan Chaos(uint64_t seed);

  std::string ToString() const;
};

enum class FaultKind { kNone, kTransient, kWorkerCrash, kStraggler };

const char* FaultKindName(FaultKind kind);

/// One probe's outcome for a task attempt.
struct FaultDecision {
  FaultKind kind = FaultKind::kNone;
  /// Simulated-duration multiplier (>1 for stragglers).
  double slowdown = 1.0;

  /// Whether the attempt's result must be discarded and re-executed.
  bool Fails() const {
    return kind == FaultKind::kTransient || kind == FaultKind::kWorkerCrash;
  }
};

/// Counters of what an injector actually did (relaxed snapshots).
struct FaultStats {
  int64_t probes = 0;
  int64_t injected = 0;  // failing faults (transients + crashes)
  int64_t transients = 0;
  int64_t crashes = 0;
  int64_t stragglers = 0;
};

/// \brief Deterministic fault oracle threaded through the scheduler.
///
/// Thread-safe; decisions hash (seed, task_key, attempt) so concurrent
/// probing from pool workers yields the same faults regardless of
/// interleaving. The crash ordinal is the only shared state: an atomic
/// first-attempt counter, so exactly one task absorbs the crash.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  const FaultPlan& plan() const { return plan_; }

  /// Decides the fate of `task_key`'s attempt number `attempt`.
  FaultDecision Probe(std::string_view task_key, int attempt);

  /// Simulated seconds of backoff before re-executing after `attempt`.
  double BackoffSeconds(int attempt) const;

  FaultStats stats() const;

 private:
  /// Uniform draw in [0, 1) from (seed, task_key, salt).
  double Draw(std::string_view task_key, uint64_t salt) const;

  FaultPlan plan_;
  std::atomic<int64_t> first_attempts_{0};
  std::atomic<int64_t> probes_{0};
  std::atomic<int64_t> transients_{0};
  std::atomic<int64_t> crashes_{0};
  std::atomic<int64_t> stragglers_{0};
};

}  // namespace remac

#endif  // REMAC_CLUSTER_FAULT_PLAN_H_
