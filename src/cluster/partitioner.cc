#include "cluster/partitioner.h"

#include <cassert>
#include <cstddef>

namespace remac {

namespace {

uint64_t Mix(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

int HashPartitioner::WorkerOf(int64_t block_row, int64_t block_col) const {
  assert(num_workers_ > 0);
  const uint64_t key = static_cast<uint64_t>(block_row) * 0x9e3779b97f4a7c15ULL +
                       static_cast<uint64_t>(block_col);
  return static_cast<int>(Mix(key) % static_cast<uint64_t>(num_workers_));
}

std::vector<double> HashPartitioner::WorkerLoads(
    const std::vector<double>& weights, int64_t grid_cols) const {
  assert(grid_cols > 0);
  std::vector<double> loads(static_cast<size_t>(num_workers_), 0.0);
  for (size_t i = 0; i < weights.size(); ++i) {
    const int64_t br = static_cast<int64_t>(i) / grid_cols;
    const int64_t bc = static_cast<int64_t>(i) % grid_cols;
    loads[WorkerOf(br, bc)] += weights[i];
  }
  return loads;
}

}  // namespace remac
