#include "cluster/transmission_ledger.h"

#include "common/string_util.h"

namespace remac {

namespace {

/// Relaxed CAS add; the ledger only needs atomicity of each increment,
/// totals are read after execution quiesces.
void AtomicAdd(std::atomic<double>& accumulator, double delta) {
  double current = accumulator.load(std::memory_order_relaxed);
  while (!accumulator.compare_exchange_weak(current, current + delta,
                                            std::memory_order_relaxed)) {
  }
}

}  // namespace

TimeBreakdown& TimeBreakdown::operator+=(const TimeBreakdown& other) {
  input_partition_seconds += other.input_partition_seconds;
  compilation_seconds += other.compilation_seconds;
  computation_seconds += other.computation_seconds;
  transmission_seconds += other.transmission_seconds;
  recovery_seconds += other.recovery_seconds;
  return *this;
}

std::string TimeBreakdown::ToString() const {
  // The recovery component only appears on chaos runs; fault-free output
  // keeps the historical four-part format.
  std::string recovery =
      recovery_seconds > 0.0
          ? StringFormat(" recovery=%s", HumanSeconds(recovery_seconds).c_str())
          : "";
  return StringFormat(
      "partition=%s compile=%s compute=%s transmit=%s%s total=%s",
      HumanSeconds(input_partition_seconds).c_str(),
      HumanSeconds(compilation_seconds).c_str(),
      HumanSeconds(computation_seconds).c_str(),
      HumanSeconds(transmission_seconds).c_str(), recovery.c_str(),
      HumanSeconds(TotalSeconds()).c_str());
}

void TransmissionLedger::AddDistributedFlops(double flops) {
  AtomicAdd(distributed_flops_, flops);
}

void TransmissionLedger::AddLocalFlops(double flops) {
  AtomicAdd(local_flops_, flops);
}

void TransmissionLedger::AddTransmission(TransmissionPrimitive pr,
                                         double bytes) {
  AtomicAdd(bytes_[static_cast<size_t>(pr)], bytes);
}

void TransmissionLedger::AddInputPartition(double bytes) {
  AtomicAdd(input_partition_bytes_, bytes);
}

void TransmissionLedger::AddCompilationSeconds(double seconds) {
  AtomicAdd(compilation_seconds_, seconds);
}

void TransmissionLedger::AddRecoverySeconds(double seconds) {
  AtomicAdd(recovery_seconds_, seconds);
}

void TransmissionLedger::AddWasted(double flops, double bytes) {
  AtomicAdd(wasted_flops_, flops);
  AtomicAdd(wasted_bytes_, bytes);
}

void TransmissionLedger::MergeFrom(const TransmissionLedger& other) {
  AtomicAdd(distributed_flops_,
            other.distributed_flops_.load(std::memory_order_relaxed));
  AtomicAdd(local_flops_, other.local_flops_.load(std::memory_order_relaxed));
  for (size_t i = 0; i < bytes_.size(); ++i) {
    AtomicAdd(bytes_[i], other.bytes_[i].load(std::memory_order_relaxed));
  }
  AtomicAdd(input_partition_bytes_,
            other.input_partition_bytes_.load(std::memory_order_relaxed));
  AtomicAdd(compilation_seconds_,
            other.compilation_seconds_.load(std::memory_order_relaxed));
  AtomicAdd(recovery_seconds_,
            other.recovery_seconds_.load(std::memory_order_relaxed));
  AtomicAdd(wasted_flops_, other.wasted_flops_.load(std::memory_order_relaxed));
  AtomicAdd(wasted_bytes_, other.wasted_bytes_.load(std::memory_order_relaxed));
}

double TransmissionLedger::TotalBytes() const {
  double total = 0.0;
  for (const auto& b : bytes_) total += b.load(std::memory_order_relaxed);
  return total;
}

TimeBreakdown TransmissionLedger::Breakdown() const {
  TimeBreakdown b;
  b.compilation_seconds = compilation_seconds_.load(std::memory_order_relaxed);
  b.computation_seconds =
      distributed_flops_.load(std::memory_order_relaxed) * model_.WFlop() +
      local_flops_.load(std::memory_order_relaxed) * model_.WLocalFlop();
  for (int i = 0; i < kNumTransmissionPrimitives; ++i) {
    b.transmission_seconds +=
        bytes_[static_cast<size_t>(i)].load(std::memory_order_relaxed) *
        model_.WPrimitive(static_cast<TransmissionPrimitive>(i));
  }
  b.input_partition_seconds =
      input_partition_bytes_.load(std::memory_order_relaxed) *
      model_.WPrimitive(TransmissionPrimitive::kDfs);
  b.recovery_seconds = recovery_seconds_.load(std::memory_order_relaxed);
  return b;
}

void TransmissionLedger::Reset() {
  distributed_flops_.store(0.0, std::memory_order_relaxed);
  local_flops_.store(0.0, std::memory_order_relaxed);
  for (auto& b : bytes_) b.store(0.0, std::memory_order_relaxed);
  input_partition_bytes_.store(0.0, std::memory_order_relaxed);
  compilation_seconds_.store(0.0, std::memory_order_relaxed);
  recovery_seconds_.store(0.0, std::memory_order_relaxed);
  wasted_flops_.store(0.0, std::memory_order_relaxed);
  wasted_bytes_.store(0.0, std::memory_order_relaxed);
}

}  // namespace remac
