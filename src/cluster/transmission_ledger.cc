#include "cluster/transmission_ledger.h"

#include "common/string_util.h"

namespace remac {

TimeBreakdown& TimeBreakdown::operator+=(const TimeBreakdown& other) {
  input_partition_seconds += other.input_partition_seconds;
  compilation_seconds += other.compilation_seconds;
  computation_seconds += other.computation_seconds;
  transmission_seconds += other.transmission_seconds;
  return *this;
}

std::string TimeBreakdown::ToString() const {
  return StringFormat(
      "partition=%s compile=%s compute=%s transmit=%s total=%s",
      HumanSeconds(input_partition_seconds).c_str(),
      HumanSeconds(compilation_seconds).c_str(),
      HumanSeconds(computation_seconds).c_str(),
      HumanSeconds(transmission_seconds).c_str(),
      HumanSeconds(TotalSeconds()).c_str());
}

void TransmissionLedger::AddDistributedFlops(double flops) {
  distributed_flops_ += flops;
}

void TransmissionLedger::AddLocalFlops(double flops) { local_flops_ += flops; }

void TransmissionLedger::AddTransmission(TransmissionPrimitive pr,
                                         double bytes) {
  bytes_[static_cast<int>(pr)] += bytes;
}

void TransmissionLedger::AddInputPartition(double bytes) {
  input_partition_bytes_ += bytes;
}

void TransmissionLedger::AddCompilationSeconds(double seconds) {
  compilation_seconds_ += seconds;
}

TimeBreakdown TransmissionLedger::Breakdown() const {
  TimeBreakdown b;
  b.compilation_seconds = compilation_seconds_;
  b.computation_seconds = distributed_flops_ * model_.WFlop() +
                          local_flops_ * model_.WLocalFlop();
  for (int i = 0; i < kNumTransmissionPrimitives; ++i) {
    b.transmission_seconds +=
        bytes_[i] * model_.WPrimitive(static_cast<TransmissionPrimitive>(i));
  }
  b.input_partition_seconds =
      input_partition_bytes_ *
      model_.WPrimitive(TransmissionPrimitive::kDfs);
  return b;
}

void TransmissionLedger::Reset() {
  distributed_flops_ = 0.0;
  local_flops_ = 0.0;
  bytes_.fill(0.0);
  input_partition_bytes_ = 0.0;
  compilation_seconds_ = 0.0;
}

}  // namespace remac
