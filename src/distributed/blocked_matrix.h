#ifndef REMAC_DISTRIBUTED_BLOCKED_MATRIX_H_
#define REMAC_DISTRIBUTED_BLOCKED_MATRIX_H_

#include <cstdint>
#include <vector>

#include "cluster/cluster_model.h"
#include "cluster/partitioner.h"
#include "matrix/matrix.h"

namespace remac {

/// \brief A matrix hash-partitioned into fixed-size blocks across workers.
///
/// The payload stays whole in driver memory (this is a simulation of a
/// cluster, not a cluster), but the block grid, the per-block non-zero
/// counts, and the block-to-worker assignment are computed exactly from
/// the real data. Distributed operators use these statistics to book
/// transmission volumes, which keeps skew effects (Figures 12/13) honest.
class BlockedMatrix {
 public:
  BlockedMatrix() = default;

  /// Partitions `data` into block_size x block_size tiles.
  static BlockedMatrix Partition(Matrix data, const ClusterModel& model);

  const Matrix& data() const { return data_; }
  int64_t block_size() const { return block_size_; }
  int64_t grid_rows() const { return grid_rows_; }
  int64_t grid_cols() const { return grid_cols_; }
  int64_t num_blocks() const { return grid_rows_ * grid_cols_; }

  /// Exact non-zero count of block (br, bc).
  int64_t BlockNnz(int64_t br, int64_t bc) const {
    return block_nnz_[static_cast<size_t>(br * grid_cols_ + bc)];
  }

  /// Serialized bytes of block (br, bc) under the format rule (a block is
  /// stored dense if its own sparsity exceeds 0.4, CSR otherwise).
  double BlockBytes(int64_t br, int64_t bc) const;

  /// Sum of BlockBytes over the grid (the matrix's RDD footprint).
  double TotalBytes() const;

  /// Per-worker resident bytes under `partitioner` (Figure 13's metric).
  std::vector<double> PerWorkerBytes(const HashPartitioner& partitioner) const;

 private:
  Matrix data_;
  int64_t block_size_ = 0;
  int64_t grid_rows_ = 0;
  int64_t grid_cols_ = 0;
  std::vector<int64_t> block_nnz_;  // row-major over the grid
};

}  // namespace remac

#endif  // REMAC_DISTRIBUTED_BLOCKED_MATRIX_H_
