#include "distributed/distributed_ops.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include <cstdio>
#include <cstdlib>

#include "cost/physical_model.h"
#include "matrix/kernels.h"

namespace remac {

namespace {

/// Result sparsity estimated from the actual output (runtime path).
double ActualSparsity(const Matrix& m) { return m.Sparsity(); }

}  // namespace

const char* MultiplyMethodName(MultiplyMethod method) {
  switch (method) {
    case MultiplyMethod::kLocalOp:
      return "local";
    case MultiplyMethod::kBmm:
      return "BMM";
    case MultiplyMethod::kCpmm:
      return "CPMM";
  }
  return "?";
}

double MatInfo::Bytes() const { return MatrixBytes(rows, cols, sparsity); }

double OpCosting::Seconds(const ClusterModel& model) const {
  double s = 0.0;
  if (method == MultiplyMethod::kLocalOp && !result_distributed &&
      broadcast_bytes == 0.0 && shuffle_bytes == 0.0) {
    s += flops * model.WLocalFlop();
  } else {
    s += flops * model.WFlop();
  }
  s += broadcast_bytes * model.WPrimitive(TransmissionPrimitive::kBroadcast);
  s += shuffle_bytes * model.WPrimitive(TransmissionPrimitive::kShuffle);
  s += collection_bytes *
       model.WPrimitive(TransmissionPrimitive::kCollection);
  s += dfs_bytes * model.WPrimitive(TransmissionPrimitive::kDfs);
  return s;
}

/// On a single-node model, "distributed" means out-of-core: every pass
/// over such an operand streams it from disk.
void ChargeSingleNodeStreaming(const MatInfo& a, const MatInfo& b,
                               const ClusterModel& model, OpCosting* c) {
  if (model.num_workers != 1) return;
  if (a.distributed) c->dfs_bytes += a.Bytes();
  if (b.distributed) c->dfs_bytes += b.Bytes();
}

void OpCosting::Book(TransmissionLedger* ledger) const {
  if (ledger == nullptr) return;
  static const bool trace = std::getenv("REMAC_TRACE_OPS") != nullptr;
  if (trace) {
    std::fprintf(stderr,
                 "[op] %s flops=%.3g bcast=%.3g shuffle=%.3g collect=%.3g\n",
                 MultiplyMethodName(method), flops, broadcast_bytes,
                 shuffle_bytes, collection_bytes);
  }
  if (method == MultiplyMethod::kLocalOp && broadcast_bytes == 0.0 &&
      shuffle_bytes == 0.0 && collection_bytes == 0.0) {
    ledger->AddLocalFlops(flops);
  } else {
    ledger->AddDistributedFlops(flops);
  }
  ledger->AddTransmission(TransmissionPrimitive::kBroadcast, broadcast_bytes);
  ledger->AddTransmission(TransmissionPrimitive::kShuffle, shuffle_bytes);
  ledger->AddTransmission(TransmissionPrimitive::kCollection,
                          collection_bytes);
  ledger->AddTransmission(TransmissionPrimitive::kDfs, dfs_bytes);
}

bool IsDistributedSize(double bytes, const ClusterModel& model) {
  return bytes > static_cast<double>(model.driver_memory_bytes) / 4.0;
}

bool IsBroadcastable(double bytes, const ClusterModel& model) {
  return bytes <= static_cast<double>(model.driver_memory_bytes) / 8.0;
}

OpCosting CostMultiply(const MatInfo& a, const MatInfo& b, double sp_out,
                       const ClusterModel& model) {
  OpCosting c;
  c.flops = MultiplyFlops(a.rows, a.cols, b.cols, a.sparsity, b.sparsity);
  const double out_bytes = MatrixBytes(a.rows, b.cols, sp_out);
  c.result_distributed = IsDistributedSize(out_bytes, model);
  ChargeSingleNodeStreaming(a, b, model, &c);

  if (!a.distributed && !b.distributed) {
    c.method = MultiplyMethod::kLocalOp;
    // A local-by-local product whose output must be distributed pays a dfs
    // write; this is rare (it means the inputs barely fit) and we fold it
    // into a shuffle-equivalent charge.
    if (c.result_distributed) c.shuffle_bytes += out_bytes;
    return c;
  }

  const bool a_broadcastable = !a.distributed && IsBroadcastable(a.Bytes(), model);
  const bool b_broadcastable = !b.distributed && IsBroadcastable(b.Bytes(), model);
  if ((a.distributed && b_broadcastable) || (b.distributed && a_broadcastable)) {
    // BMM: broadcast the local side, multiply map-side over the blocks of
    // the distributed side, aggregate partial products by output row.
    c.method = MultiplyMethod::kBmm;
    const MatInfo& dist = a.distributed ? a : b;
    const MatInfo& local = a.distributed ? b : a;
    c.broadcast_bytes = local.Bytes();
    // Paper Equation 6: D_shuffle = size(one block product) * B_U / P_U.
    // With U split into g_r x g_c blocks, partial products of the same
    // output block-row must be aggregated only when the inner dimension is
    // split (g_inner > 1 for U=A; symmetric for U=B).
    const int64_t bs = model.block_size;
    const int64_t g_rows = NumBlocks(static_cast<int64_t>(dist.rows), bs);
    const int64_t g_cols = NumBlocks(static_cast<int64_t>(dist.cols), bs);
    const bool dist_is_left = a.distributed;
    const int64_t g_inner = dist_is_left ? g_cols : g_rows;
    if (g_inner > 1) {
      // One partial product covers a block of the distributed side joined
      // with the whole broadcast side: block_rows x b.cols when U = A,
      // a.rows x block_cols when U = B.
      const double bp_rows = dist_is_left
                                 ? std::min(static_cast<double>(bs), a.rows)
                                 : a.rows;
      const double bp_cols = dist_is_left
                                 ? b.cols
                                 : std::min(static_cast<double>(bs), b.cols);
      const double block_product_bytes = MatrixBytes(bp_rows, bp_cols, sp_out);
      const double num_blocks = static_cast<double>(g_rows * g_cols);
      const double p_u = std::max<double>(
          1.0, static_cast<double>(g_inner) / model.num_workers);
      c.shuffle_bytes += block_product_bytes * num_blocks / p_u;
    }
    if (!c.result_distributed) c.collection_bytes += out_bytes;
    static const bool trace = std::getenv("REMAC_TRACE_OPS") != nullptr;
    if (trace) {
      std::fprintf(stderr,
                   "[mul] BMM a=%gx%g sp=%g dist=%d | b=%gx%g sp=%g dist=%d "
                   "| sp_out=%g shuffle=%.3g\n",
                   a.rows, a.cols, a.sparsity, a.distributed, b.rows, b.cols,
                   b.sparsity, b.distributed, sp_out, c.shuffle_bytes);
    }
    return c;
  }
  // CPMM: shuffle both inputs to join on the inner dimension; partial
  // products (one per inner block split) are shuffled again for
  // aggregation.
  c.method = MultiplyMethod::kCpmm;
  c.shuffle_bytes = a.Bytes() + b.Bytes();
  const int64_t inner_splits = std::max<int64_t>(
      1, NumBlocks(static_cast<int64_t>(a.cols), model.block_size));
  c.shuffle_bytes += out_bytes * static_cast<double>(inner_splits);
  if (!c.result_distributed) c.collection_bytes += out_bytes;
  return c;
}

OpCosting CostElementwise(const MatInfo& a, const MatInfo& b, double sp_out,
                          const ClusterModel& model) {
  OpCosting c;
  c.flops = ElementwiseFlops(a.rows, a.cols,
                             std::max({a.sparsity, b.sparsity, sp_out}));
  ChargeSingleNodeStreaming(a, b, model, &c);
  const double out_bytes = MatrixBytes(a.rows, a.cols, sp_out);
  if (!a.distributed && !b.distributed) {
    c.method = MultiplyMethod::kLocalOp;
    c.result_distributed = false;
    return c;
  }
  c.method = MultiplyMethod::kBmm;  // zip with a broadcast of the local side
  if (!a.distributed) c.broadcast_bytes += a.Bytes();
  if (!b.distributed) c.broadcast_bytes += b.Bytes();
  c.result_distributed = IsDistributedSize(out_bytes, model);
  if (!c.result_distributed) c.collection_bytes += out_bytes;
  return c;
}

OpCosting CostTranspose(const MatInfo& a, const ClusterModel& model) {
  OpCosting c;
  c.flops = a.rows * a.cols * a.sparsity;  // one touch per non-zero
  if (model.num_workers == 1 && a.distributed) c.dfs_bytes += a.Bytes();
  if (!a.distributed) {
    c.method = MultiplyMethod::kLocalOp;
    c.result_distributed = false;
    return c;
  }
  // Distributed transpose re-keys every block: a full shuffle.
  c.method = MultiplyMethod::kCpmm;
  c.shuffle_bytes = a.Bytes();
  c.result_distributed = true;
  return c;
}

OpCosting CostScalarOp(const MatInfo& a, const ClusterModel& model) {
  OpCosting c;
  c.flops = a.rows * a.cols * a.sparsity;
  c.method = MultiplyMethod::kLocalOp;
  c.result_distributed = a.distributed;
  if (a.distributed) {
    c.method = MultiplyMethod::kBmm;  // map-side, no data movement
  }
  (void)model;
  return c;
}

MatInfo InfoOf(const Matrix& m, bool distributed) {
  MatInfo info;
  info.rows = static_cast<double>(m.rows());
  info.cols = static_cast<double>(m.cols());
  info.sparsity = m.Sparsity();
  info.distributed = distributed;
  return info;
}

/// Shape info of op(m) without materializing the transpose: sparsity is
/// invariant under transposition, so only rows/cols swap. Keeps the cost
/// model's inputs identical to the old materialize-then-cost path.
MatInfo InfoOfTransposed(const Matrix& m, bool transposed, bool distributed) {
  MatInfo info = InfoOf(m, distributed);
  if (transposed) std::swap(info.rows, info.cols);
  return info;
}

Result<DistValue> ExecMultiply(const Matrix& a, bool a_distributed,
                               bool a_transposed, const Matrix& b,
                               bool b_distributed, bool b_transposed,
                               const ClusterModel& model,
                               TransmissionLedger* ledger) {
  // Fused kernels consume the transpose flags directly — no operand is
  // ever materialized (remac.kernel.fused_transpose counts these).
  REMAC_ASSIGN_OR_RETURN(
      Matrix out, MultiplyTransposed(a, a_transposed, b, b_transposed));
  const OpCosting costing =
      CostMultiply(InfoOfTransposed(a, a_transposed, a_distributed),
                   InfoOfTransposed(b, b_transposed, b_distributed),
                   ActualSparsity(out), model);
  costing.Book(ledger);
  return DistValue{std::move(out), costing.result_distributed};
}

Result<DistValue> ExecElementwise(BinaryOpKind op, const Matrix& a,
                                  bool a_distributed, const Matrix& b,
                                  bool b_distributed,
                                  const ClusterModel& model,
                                  TransmissionLedger* ledger) {
  Result<Matrix> out = [&]() -> Result<Matrix> {
    switch (op) {
      case BinaryOpKind::kAdd:
        return Add(a, b);
      case BinaryOpKind::kSub:
        return Subtract(a, b);
      case BinaryOpKind::kElemMul:
        return ElementwiseMultiply(a, b);
      case BinaryOpKind::kElemDiv:
        return ElementwiseDivide(a, b);
    }
    return Status::Internal("unknown binary op");
  }();
  if (!out.ok()) return out.status();
  const OpCosting costing =
      CostElementwise(InfoOf(a, a_distributed), InfoOf(b, b_distributed),
                      ActualSparsity(out.value()), model);
  costing.Book(ledger);
  return DistValue{std::move(out).value(), costing.result_distributed};
}

DistValue ExecTranspose(const Matrix& a, bool a_distributed,
                        const ClusterModel& model,
                        TransmissionLedger* ledger) {
  Matrix out = Transpose(a);
  const OpCosting costing = CostTranspose(InfoOf(a, a_distributed), model);
  costing.Book(ledger);
  return DistValue{std::move(out), costing.result_distributed};
}

DistValue ExecScalarMultiply(const Matrix& a, bool a_distributed, double s,
                             const ClusterModel& model,
                             TransmissionLedger* ledger) {
  Matrix out = ScalarMultiply(a, s);
  const OpCosting costing = CostScalarOp(InfoOf(a, a_distributed), model);
  costing.Book(ledger);
  return DistValue{std::move(out), costing.result_distributed};
}

}  // namespace remac
