#include "distributed/distributed_ops.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include <cstdio>
#include <cstdlib>

#include "cluster/grid2d_partitioner.h"
#include "cost/physical_model.h"
#include "distributed/tiled_matrix2d.h"
#include "matrix/kernels.h"
#include "obs/metrics.h"

namespace remac {

namespace {

/// Result sparsity estimated from the actual output (runtime path).
double ActualSparsity(const Matrix& m) { return m.Sparsity(); }

/// Registry handles resolved once (the ExecMetrics idiom): touched on
/// every ExecMultiply so the remac.dist2d.* family registers even in runs
/// where no multiply is a 2D candidate.
struct Dist2dMetrics {
  Counter* candidates =
      MetricsRegistry::Global().GetCounter("remac.dist2d.candidates");
  Counter* selected =
      MetricsRegistry::Global().GetCounter("remac.dist2d.selected");
  Counter* empty_tiles_skipped = MetricsRegistry::Global().GetCounter(
      "remac.dist2d.empty_tiles_skipped");
  Gauge* row_broadcast_bytes = MetricsRegistry::Global().GetGauge(
      "remac.dist2d.row_broadcast_bytes");
  Gauge* col_broadcast_bytes = MetricsRegistry::Global().GetGauge(
      "remac.dist2d.col_broadcast_bytes");
  Gauge* reduce_bytes =
      MetricsRegistry::Global().GetGauge("remac.dist2d.reduce_bytes");
  Gauge* bytes_saved =
      MetricsRegistry::Global().GetGauge("remac.dist2d.bytes_saved");
};

Dist2dMetrics& D2Metrics() {
  static Dist2dMetrics metrics;
  return metrics;
}

/// Every byte an operator moves, across all primitives and SUMMA legs.
double TotalMovedBytes(const OpCosting& c) {
  return c.broadcast_bytes + c.shuffle_bytes + c.collection_bytes +
         c.dfs_bytes + c.row_broadcast_bytes + c.col_broadcast_bytes +
         c.reduce_bytes;
}

}  // namespace

const char* MultiplyMethodName(MultiplyMethod method) {
  switch (method) {
    case MultiplyMethod::kLocalOp:
      return "local";
    case MultiplyMethod::kBmm:
      return "BMM";
    case MultiplyMethod::kCpmm:
      return "CPMM";
    case MultiplyMethod::kSumma2D:
      return "SUMMA";
  }
  return "?";
}

double MatInfo::Bytes() const { return MatrixBytes(rows, cols, sparsity); }

double OpCosting::Seconds(const ClusterModel& model) const {
  double s = 0.0;
  if (method == MultiplyMethod::kLocalOp && !result_distributed &&
      broadcast_bytes == 0.0 && shuffle_bytes == 0.0) {
    s += flops * model.WLocalFlop();
  } else {
    s += flops * model.WFlop();
  }
  s += (broadcast_bytes + row_broadcast_bytes + col_broadcast_bytes) *
       model.WPrimitive(TransmissionPrimitive::kBroadcast);
  s += (shuffle_bytes + reduce_bytes) *
       model.WPrimitive(TransmissionPrimitive::kShuffle);
  s += collection_bytes *
       model.WPrimitive(TransmissionPrimitive::kCollection);
  s += dfs_bytes * model.WPrimitive(TransmissionPrimitive::kDfs);
  return s;
}

/// On a single-node model, "distributed" means out-of-core: every pass
/// over such an operand streams it from disk.
void ChargeSingleNodeStreaming(const MatInfo& a, const MatInfo& b,
                               const ClusterModel& model, OpCosting* c) {
  if (model.num_workers != 1) return;
  if (a.distributed) c->dfs_bytes += a.Bytes();
  if (b.distributed) c->dfs_bytes += b.Bytes();
}

void OpCosting::Book(TransmissionLedger* ledger) const {
  if (ledger == nullptr) return;
  static const bool trace = std::getenv("REMAC_TRACE_OPS") != nullptr;
  if (trace) {
    std::fprintf(stderr,
                 "[op] %s flops=%.3g bcast=%.3g shuffle=%.3g collect=%.3g\n",
                 MultiplyMethodName(method), flops, broadcast_bytes,
                 shuffle_bytes, collection_bytes);
  }
  if (method == MultiplyMethod::kLocalOp && broadcast_bytes == 0.0 &&
      shuffle_bytes == 0.0 && collection_bytes == 0.0 &&
      row_broadcast_bytes == 0.0 && col_broadcast_bytes == 0.0 &&
      reduce_bytes == 0.0) {
    ledger->AddLocalFlops(flops);
  } else {
    ledger->AddDistributedFlops(flops);
  }
  ledger->AddTransmission(TransmissionPrimitive::kBroadcast,
                          broadcast_bytes + row_broadcast_bytes +
                              col_broadcast_bytes);
  ledger->AddTransmission(TransmissionPrimitive::kShuffle,
                          shuffle_bytes + reduce_bytes);
  ledger->AddTransmission(TransmissionPrimitive::kCollection,
                          collection_bytes);
  ledger->AddTransmission(TransmissionPrimitive::kDfs, dfs_bytes);
  if (method == MultiplyMethod::kSumma2D) {
    Dist2dMetrics& m = D2Metrics();
    m.row_broadcast_bytes->Add(row_broadcast_bytes);
    m.col_broadcast_bytes->Add(col_broadcast_bytes);
    m.reduce_bytes->Add(reduce_bytes);
    m.empty_tiles_skipped->Add(empty_tiles_skipped);
  }
}

bool IsDistributedSize(double bytes, const ClusterModel& model) {
  return bytes > static_cast<double>(model.driver_memory_bytes) / 4.0;
}

bool IsBroadcastable(double bytes, const ClusterModel& model) {
  return bytes <= static_cast<double>(model.driver_memory_bytes) / 8.0;
}

OpCosting CostMultiply(const MatInfo& a, const MatInfo& b, double sp_out,
                       const ClusterModel& model) {
  OpCosting c;
  c.flops = MultiplyFlops(a.rows, a.cols, b.cols, a.sparsity, b.sparsity);
  const double out_bytes = MatrixBytes(a.rows, b.cols, sp_out);
  c.result_distributed = IsDistributedSize(out_bytes, model);
  ChargeSingleNodeStreaming(a, b, model, &c);

  if (!a.distributed && !b.distributed) {
    c.method = MultiplyMethod::kLocalOp;
    // A local-by-local product whose output must be distributed pays a dfs
    // write; this is rare (it means the inputs barely fit) and we fold it
    // into a shuffle-equivalent charge.
    if (c.result_distributed) c.shuffle_bytes += out_bytes;
    return c;
  }

  const bool a_broadcastable = !a.distributed && IsBroadcastable(a.Bytes(), model);
  const bool b_broadcastable = !b.distributed && IsBroadcastable(b.Bytes(), model);
  if ((a.distributed && b_broadcastable) || (b.distributed && a_broadcastable)) {
    // BMM: broadcast the local side, multiply map-side over the blocks of
    // the distributed side, aggregate partial products by output row.
    c.method = MultiplyMethod::kBmm;
    const MatInfo& dist = a.distributed ? a : b;
    const MatInfo& local = a.distributed ? b : a;
    c.broadcast_bytes = local.Bytes();
    // Paper Equation 6: D_shuffle = size(one block product) * B_U / P_U.
    // With U split into g_r x g_c blocks, partial products of the same
    // output block-row must be aggregated only when the inner dimension is
    // split (g_inner > 1 for U=A; symmetric for U=B).
    const int64_t bs = model.block_size;
    const int64_t g_rows = NumBlocks(static_cast<int64_t>(dist.rows), bs);
    const int64_t g_cols = NumBlocks(static_cast<int64_t>(dist.cols), bs);
    const bool dist_is_left = a.distributed;
    const int64_t g_inner = dist_is_left ? g_cols : g_rows;
    if (g_inner > 1) {
      // One partial product covers a block of the distributed side joined
      // with the whole broadcast side: block_rows x b.cols when U = A,
      // a.rows x block_cols when U = B.
      const double bp_rows = dist_is_left
                                 ? std::min(static_cast<double>(bs), a.rows)
                                 : a.rows;
      const double bp_cols = dist_is_left
                                 ? b.cols
                                 : std::min(static_cast<double>(bs), b.cols);
      const double block_product_bytes = MatrixBytes(bp_rows, bp_cols, sp_out);
      const double num_blocks = static_cast<double>(g_rows * g_cols);
      const double p_u = std::max<double>(
          1.0, static_cast<double>(g_inner) / model.num_workers);
      c.shuffle_bytes += block_product_bytes * num_blocks / p_u;
    }
    if (!c.result_distributed) c.collection_bytes += out_bytes;
    static const bool trace = std::getenv("REMAC_TRACE_OPS") != nullptr;
    if (trace) {
      std::fprintf(stderr,
                   "[mul] BMM a=%gx%g sp=%g dist=%d | b=%gx%g sp=%g dist=%d "
                   "| sp_out=%g shuffle=%.3g\n",
                   a.rows, a.cols, a.sparsity, a.distributed, b.rows, b.cols,
                   b.sparsity, b.distributed, sp_out, c.shuffle_bytes);
    }
    return c;
  }
  // CPMM: shuffle both inputs to join on the inner dimension; partial
  // products (one per inner block split) are shuffled again for
  // aggregation.
  c.method = MultiplyMethod::kCpmm;
  c.shuffle_bytes = a.Bytes() + b.Bytes();
  const int64_t inner_splits = std::max<int64_t>(
      1, NumBlocks(static_cast<int64_t>(a.cols), model.block_size));
  c.shuffle_bytes += out_bytes * static_cast<double>(inner_splits);
  if (!c.result_distributed) c.collection_bytes += out_bytes;
  return c;
}

namespace {

/// Probability a tile_rows x tile_cols tile of a uniform-sparsity matrix
/// has at least one non-zero.
double NonEmptyTileProb(double tile_rows, double tile_cols, double sp) {
  const double cells = tile_rows * tile_cols;
  if (cells <= 0.0) return 0.0;
  sp = std::clamp(sp, 0.0, 1.0);
  if (sp <= 0.0) return 0.0;
  if (sp >= 1.0) return 1.0;
  return 1.0 - std::pow(1.0 - sp, cells);
}

/// Expected serialized bytes of one tile under the uniform-sparsity
/// assumption: empty tiles (probability 1 - p) ship nothing, non-empty
/// ones concentrate the conserved nnz at conditional sparsity sp / p.
double ExpectedTileBytes(double tile_rows, double tile_cols, double sp) {
  const double p = NonEmptyTileProb(tile_rows, tile_cols, sp);
  if (p <= 0.0) return 0.0;
  return p * MatrixBytes(tile_rows, tile_cols,
                         std::min(1.0, std::clamp(sp, 0.0, 1.0) / p));
}

/// Expected total tile bytes of a rows x cols matrix on a bs-sized tile
/// grid: closed form over the four tile-size classes (interior, edge row,
/// edge column, corner) instead of a per-tile loop, so the DP's many
/// costing calls stay O(1).
double ExpectedGridBytes(double rows, double cols, double sp, int64_t bs) {
  const int64_t mt = NumBlocks(static_cast<int64_t>(rows), bs);
  const int64_t nt = NumBlocks(static_cast<int64_t>(cols), bs);
  if (mt <= 0 || nt <= 0) return 0.0;
  const double full = static_cast<double>(bs);
  const double edge_rows = rows - static_cast<double>(mt - 1) * full;
  const double edge_cols = cols - static_cast<double>(nt - 1) * full;
  double total = static_cast<double>((mt - 1) * (nt - 1)) *
                 ExpectedTileBytes(full, full, sp);
  total += static_cast<double>(nt - 1) *
           ExpectedTileBytes(edge_rows, full, sp);
  total += static_cast<double>(mt - 1) *
           ExpectedTileBytes(full, edge_cols, sp);
  total += ExpectedTileBytes(edge_rows, edge_cols, sp);
  return total;
}

}  // namespace

OpCosting CostSumma2D(const MatInfo& a, const MatInfo& b, double sp_out,
                      const ClusterModel& model) {
  OpCosting c;
  c.method = MultiplyMethod::kSumma2D;
  c.flops = MultiplyFlops(a.rows, a.cols, b.cols, a.sparsity, b.sparsity);
  const double out_bytes = MatrixBytes(a.rows, b.cols, sp_out);
  c.result_distributed = IsDistributedSize(out_bytes, model);
  ChargeSingleNodeStreaming(a, b, model, &c);
  const Grid2DShape g =
      Grid2DPartitioner::MakeGrid(std::max(1, model.num_workers));
  const int64_t bs = model.block_size;
  // Row broadcast: every expected-non-empty A tile reaches the other
  // pc - 1 worker columns of its worker row; symmetrically for B along
  // worker columns. Empty tiles are skipped, which ExpectedTileBytes
  // already accounts for.
  c.row_broadcast_bytes = ExpectedGridBytes(a.rows, a.cols, a.sparsity, bs) *
                          static_cast<double>(g.cols - 1);
  c.col_broadcast_bytes = ExpectedGridBytes(b.rows, b.cols, b.sparsity, bs) *
                          static_cast<double>(g.rows - 1);
  // Partial-sum merge: each worker column accumulates the inner tile
  // indices it owns locally, then the partials merge to the C tile's
  // owner — one C-tile transfer per contributing worker column beyond the
  // first. Expected contributing columns = min(expected non-empty inner
  // pairs, pc), against CPMM's full inner_splits multiplier.
  const int64_t inner_tiles = std::max<int64_t>(
      1, NumBlocks(static_cast<int64_t>(a.cols), bs));
  const double tile_r = std::min(static_cast<double>(bs), a.rows);
  const double tile_i = std::min(static_cast<double>(bs), a.cols);
  const double tile_c = std::min(static_cast<double>(bs), b.cols);
  const double contributing =
      static_cast<double>(inner_tiles) *
      NonEmptyTileProb(tile_r, tile_i, a.sparsity) *
      NonEmptyTileProb(tile_i, tile_c, b.sparsity);
  const double merge_columns =
      std::min(contributing, static_cast<double>(g.cols));
  c.reduce_bytes = ExpectedGridBytes(a.rows, b.cols, sp_out, bs) *
                   std::max(0.0, merge_columns - 1.0);
  if (!c.result_distributed) c.collection_bytes += out_bytes;
  return c;
}

bool Summa2DCandidate(const OpCosting& one_d, const ClusterModel& model) {
  return one_d.method == MultiplyMethod::kCpmm && model.num_workers > 1 &&
         model.dist2d != Dist2DMode::kOff;
}

OpCosting SelectMultiplyCosting(const MatInfo& a, const MatInfo& b,
                                double sp_out, const ClusterModel& model) {
  OpCosting one_d = CostMultiply(a, b, sp_out, model);
  if (!Summa2DCandidate(one_d, model)) return one_d;
  OpCosting summa = CostSumma2D(a, b, sp_out, model);
  if (model.dist2d == Dist2DMode::kForce2D) return summa;
  return summa.Seconds(model) < one_d.Seconds(model) ? summa : one_d;
}

OpCosting CostSummaTiled(const TiledMatrix2D& a, const TiledMatrix2D& b,
                         const TiledMatrix2D& out,
                         const Grid2DPartitioner& grid,
                         const ClusterModel& model) {
  OpCosting c;
  c.method = MultiplyMethod::kSumma2D;
  const double a_cells = static_cast<double>(a.rows()) * a.cols();
  const double b_cells = static_cast<double>(b.rows()) * b.cols();
  const double out_cells = static_cast<double>(out.rows()) * out.cols();
  const double sp_a =
      a_cells > 0 ? static_cast<double>(a.TotalNnz()) / a_cells : 0.0;
  const double sp_b =
      b_cells > 0 ? static_cast<double>(b.TotalNnz()) / b_cells : 0.0;
  const double sp_out =
      out_cells > 0 ? static_cast<double>(out.TotalNnz()) / out_cells : 0.0;
  // FLOPs and result placement are identical to the 1D methods: the
  // layout changes where bytes move, not what is computed or where the
  // result lands.
  c.flops = MultiplyFlops(static_cast<double>(a.rows()),
                          static_cast<double>(a.cols()),
                          static_cast<double>(b.cols()), sp_a, sp_b);
  const double out_bytes = MatrixBytes(static_cast<double>(out.rows()),
                                       static_cast<double>(out.cols()),
                                       sp_out);
  c.result_distributed = IsDistributedSize(out_bytes, model);
  const int pr = grid.grid_rows();
  const int pc = grid.grid_cols();
  c.row_broadcast_bytes = a.TotalBytes() * static_cast<double>(pc - 1);
  c.col_broadcast_bytes = b.TotalBytes() * static_cast<double>(pr - 1);
  c.empty_tiles_skipped = a.EmptyTiles() + b.EmptyTiles();
  // Partial-sum merge, exact: for each C tile, count the distinct worker
  // columns owning at least one non-empty contributing tile pair
  // A(tr, k) x B(k, tc); each beyond the first ships one C tile to the
  // owner. Annotated-empty C tiles cost zero bytes by TileBytes.
  const int64_t inner =
      std::min(a.grid_cols(), b.grid_rows());  // equal for valid products
  std::vector<char> seen(static_cast<size_t>(pc), 0);
  for (int64_t tr = 0; tr < out.grid_rows(); ++tr) {
    for (int64_t tc = 0; tc < out.grid_cols(); ++tc) {
      std::fill(seen.begin(), seen.end(), 0);
      int distinct = 0;
      for (int64_t k = 0; k < inner; ++k) {
        if (a.TileNnz(tr, k) == 0 || b.TileNnz(k, tc) == 0) continue;
        const int col = grid.WorkerColOf(k);
        if (!seen[static_cast<size_t>(col)]) {
          seen[static_cast<size_t>(col)] = 1;
          ++distinct;
        }
      }
      if (distinct > 1) {
        c.reduce_bytes += out.TileBytes(tr, tc) *
                          static_cast<double>(distinct - 1);
      }
    }
  }
  if (!c.result_distributed) c.collection_bytes += out_bytes;
  return c;
}

OpCosting CostElementwise(const MatInfo& a, const MatInfo& b, double sp_out,
                          const ClusterModel& model) {
  OpCosting c;
  c.flops = ElementwiseFlops(a.rows, a.cols,
                             std::max({a.sparsity, b.sparsity, sp_out}));
  ChargeSingleNodeStreaming(a, b, model, &c);
  const double out_bytes = MatrixBytes(a.rows, a.cols, sp_out);
  if (!a.distributed && !b.distributed) {
    c.method = MultiplyMethod::kLocalOp;
    c.result_distributed = false;
    return c;
  }
  c.method = MultiplyMethod::kBmm;  // zip with a broadcast of the local side
  if (!a.distributed) c.broadcast_bytes += a.Bytes();
  if (!b.distributed) c.broadcast_bytes += b.Bytes();
  c.result_distributed = IsDistributedSize(out_bytes, model);
  if (!c.result_distributed) c.collection_bytes += out_bytes;
  return c;
}

OpCosting CostTranspose(const MatInfo& a, const ClusterModel& model) {
  OpCosting c;
  c.flops = a.rows * a.cols * a.sparsity;  // one touch per non-zero
  if (model.num_workers == 1 && a.distributed) c.dfs_bytes += a.Bytes();
  if (!a.distributed) {
    c.method = MultiplyMethod::kLocalOp;
    c.result_distributed = false;
    return c;
  }
  // Distributed transpose re-keys every block: a full shuffle.
  c.method = MultiplyMethod::kCpmm;
  c.shuffle_bytes = a.Bytes();
  c.result_distributed = true;
  return c;
}

OpCosting CostScalarOp(const MatInfo& a, const ClusterModel& model) {
  OpCosting c;
  c.flops = a.rows * a.cols * a.sparsity;
  c.method = MultiplyMethod::kLocalOp;
  c.result_distributed = a.distributed;
  if (a.distributed) {
    c.method = MultiplyMethod::kBmm;  // map-side, no data movement
  }
  (void)model;
  return c;
}

MatInfo InfoOf(const Matrix& m, bool distributed) {
  MatInfo info;
  info.rows = static_cast<double>(m.rows());
  info.cols = static_cast<double>(m.cols());
  info.sparsity = m.Sparsity();
  info.distributed = distributed;
  return info;
}

/// Shape info of op(m) without materializing the transpose: sparsity is
/// invariant under transposition, so only rows/cols swap. Keeps the cost
/// model's inputs identical to the old materialize-then-cost path.
MatInfo InfoOfTransposed(const Matrix& m, bool transposed, bool distributed) {
  MatInfo info = InfoOf(m, distributed);
  if (transposed) std::swap(info.rows, info.cols);
  return info;
}

Result<DistValue> ExecMultiply(const Matrix& a, bool a_distributed,
                               bool a_transposed, const Matrix& b,
                               bool b_distributed, bool b_transposed,
                               const ClusterModel& model,
                               TransmissionLedger* ledger) {
  // Touch the dist2d metric family up front so it registers even when no
  // multiply in the process ever becomes a 2D candidate.
  Dist2dMetrics& metrics = D2Metrics();
  // Fused kernels consume the transpose flags directly — no operand is
  // ever materialized (remac.kernel.fused_transpose counts these).
  REMAC_ASSIGN_OR_RETURN(
      Matrix out, MultiplyTransposed(a, a_transposed, b, b_transposed));
  OpCosting costing =
      CostMultiply(InfoOfTransposed(a, a_transposed, a_distributed),
                   InfoOfTransposed(b, b_transposed, b_distributed),
                   ActualSparsity(out), model);
  if (Summa2DCandidate(costing, model)) {
    // Price the 2D layout from exact tile grids (the preprocessing pass):
    // transposed operands are tiled as views, the product is tiled as
    // computed. Unlike the optimizer's uniform-sparsity estimate this
    // sees real skew, so the runtime's layout choice is the measured one.
    metrics.candidates->Add();
    const Grid2DPartitioner grid(model.num_workers);
    const TiledMatrix2D ta = TiledMatrix2D::Partition(a, a_transposed, model);
    const TiledMatrix2D tb = TiledMatrix2D::Partition(b, b_transposed, model);
    const TiledMatrix2D tout =
        TiledMatrix2D::Partition(out, /*transposed=*/false, model);
    const OpCosting summa = CostSummaTiled(ta, tb, tout, grid, model);
    if (model.dist2d == Dist2DMode::kForce2D ||
        summa.Seconds(model) < costing.Seconds(model)) {
      metrics.selected->Add();
      metrics.bytes_saved->Add(TotalMovedBytes(costing) -
                               TotalMovedBytes(summa));
      costing = summa;
    }
  }
  costing.Book(ledger);
  return DistValue{std::move(out), costing.result_distributed};
}

Result<DistValue> ExecElementwise(BinaryOpKind op, const Matrix& a,
                                  bool a_distributed, const Matrix& b,
                                  bool b_distributed,
                                  const ClusterModel& model,
                                  TransmissionLedger* ledger) {
  Result<Matrix> out = [&]() -> Result<Matrix> {
    switch (op) {
      case BinaryOpKind::kAdd:
        return Add(a, b);
      case BinaryOpKind::kSub:
        return Subtract(a, b);
      case BinaryOpKind::kElemMul:
        return ElementwiseMultiply(a, b);
      case BinaryOpKind::kElemDiv:
        return ElementwiseDivide(a, b);
      case BinaryOpKind::kMin:
        return ElementwiseMin(a, b);
      case BinaryOpKind::kMax:
        return ElementwiseMax(a, b);
    }
    return Status::Internal("unknown binary op");
  }();
  if (!out.ok()) return out.status();
  const OpCosting costing =
      CostElementwise(InfoOf(a, a_distributed), InfoOf(b, b_distributed),
                      ActualSparsity(out.value()), model);
  costing.Book(ledger);
  return DistValue{std::move(out).value(), costing.result_distributed};
}

DistValue ExecTranspose(const Matrix& a, bool a_distributed,
                        const ClusterModel& model,
                        TransmissionLedger* ledger) {
  Matrix out = Transpose(a);
  const OpCosting costing = CostTranspose(InfoOf(a, a_distributed), model);
  costing.Book(ledger);
  return DistValue{std::move(out), costing.result_distributed};
}

DistValue ExecScalarMultiply(const Matrix& a, bool a_distributed, double s,
                             const ClusterModel& model,
                             TransmissionLedger* ledger) {
  Matrix out = ScalarMultiply(a, s);
  const OpCosting costing = CostScalarOp(InfoOf(a, a_distributed), model);
  costing.Book(ledger);
  return DistValue{std::move(out), costing.result_distributed};
}

}  // namespace remac
