#ifndef REMAC_DISTRIBUTED_TILED_MATRIX2D_H_
#define REMAC_DISTRIBUTED_TILED_MATRIX2D_H_

#include <cstdint>
#include <vector>

#include "cluster/cluster_model.h"
#include "cluster/grid2d_partitioner.h"
#include "matrix/matrix.h"

namespace remac {

/// Redundancy annotation of one tile, discovered by the preprocessing
/// pass (LA3's empty/dense bitvectors): empty tiles are never transmitted
/// at all, dense tiles ship without index structures, the rest go as CSR.
enum class TileFormat { kEmpty, kCsr, kDense };

const char* TileFormatName(TileFormat format);

/// \brief The 2D-layout counterpart of BlockedMatrix: a tile-grid view of
/// a matrix with exact per-tile non-zero counts and redundancy
/// annotations.
///
/// Like BlockedMatrix this is a statistics view over a simulated cluster
/// — the payload is not physically scattered — but the grid, the per-tile
/// nnz, and the per-tile format annotations are computed exactly from the
/// real data in one preprocessing scan. The SUMMA multiply prices its
/// row-broadcast / col-broadcast / reduce legs from these statistics, and
/// annotated-empty tiles contribute exactly zero bytes to every leg.
///
/// A transposed view (`transposed = true`) tiles op(M) = M^T without
/// materializing the transpose: the scan buckets (c, r) instead of
/// (r, c), mirroring the executor's fused transpose-multiply.
class TiledMatrix2D {
 public:
  TiledMatrix2D() = default;

  /// Tiles `data` (or its transpose) into block_size x block_size tiles.
  static TiledMatrix2D Partition(const Matrix& data, bool transposed,
                                 const ClusterModel& model);

  /// Logical dimensions of the tiled view (post-transpose).
  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t tile_size() const { return tile_size_; }
  int64_t grid_rows() const { return grid_rows_; }
  int64_t grid_cols() const { return grid_cols_; }
  int64_t num_tiles() const { return grid_rows_ * grid_cols_; }

  /// Exact non-zero count of tile (tr, tc).
  int64_t TileNnz(int64_t tr, int64_t tc) const {
    return tile_nnz_[static_cast<size_t>(tr * grid_cols_ + tc)];
  }

  bool TileEmpty(int64_t tr, int64_t tc) const {
    return TileNnz(tr, tc) == 0;
  }

  /// Sparsity annotation of tile (tr, tc) under the shared format rule
  /// (dense above kDenseFormatThreshold, CSR below, empty at zero).
  TileFormat TileAnnotation(int64_t tr, int64_t tc) const;

  /// Serialized bytes of tile (tr, tc): exactly 0 for annotated-empty
  /// tiles (they are never shipped), MatrixBytes under the tile's own
  /// sparsity otherwise.
  double TileBytes(int64_t tr, int64_t tc) const;

  /// Sum of TileBytes over the grid.
  double TotalBytes() const;

  /// Number of annotated-empty tiles (the redundancy the 2D layout
  /// eliminates from communication).
  int64_t EmptyTiles() const;

  /// Exact non-zero count of the whole matrix (sum over tiles).
  int64_t TotalNnz() const;

  /// Per-worker resident bytes under the block-cyclic 2D mapping.
  std::vector<double> PerWorkerBytes(const Grid2DPartitioner& grid) const;

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  int64_t tile_size_ = 0;
  int64_t grid_rows_ = 0;
  int64_t grid_cols_ = 0;
  std::vector<int64_t> tile_nnz_;  // row-major over the grid

  int64_t TileRows(int64_t tr) const {
    return std::min(tile_size_, rows_ - tr * tile_size_);
  }
  int64_t TileCols(int64_t tc) const {
    return std::min(tile_size_, cols_ - tc * tile_size_);
  }
};

}  // namespace remac

#endif  // REMAC_DISTRIBUTED_TILED_MATRIX2D_H_
