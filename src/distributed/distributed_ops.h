#ifndef REMAC_DISTRIBUTED_DISTRIBUTED_OPS_H_
#define REMAC_DISTRIBUTED_DISTRIBUTED_OPS_H_

#include "cluster/cluster_model.h"
#include "cluster/transmission_ledger.h"
#include "common/status.h"
#include "matrix/matrix.h"

namespace remac {

/// Physical multiplication operators, following SystemDS (paper Section 2.2):
/// a purely local operator, BMM (broadcast-based: one side is small and is
/// broadcast to the partitions of the other), and CPMM (cross-product
/// shuffle-based: both sides are shuffled on the inner dimension and the
/// partial products are aggregated with a second shuffle). kSumma2D is the
/// 2D tiled layout's primitive: A tiles broadcast along worker rows, B
/// tiles along worker columns, partial sums merged to the C tile owner —
/// annotated-empty tiles skip every leg.
enum class MultiplyMethod { kLocalOp, kBmm, kCpmm, kSumma2D };

const char* MultiplyMethodName(MultiplyMethod method);

/// Logical description of an operand, sufficient for costing: dimensions,
/// sparsity, and whether it lives distributed across workers or locally on
/// the driver. Used with *actual* statistics by the runtime and with
/// *estimated* statistics by the optimizer's cost model, so both sides of
/// the system price an operator identically.
struct MatInfo {
  double rows = 0;
  double cols = 0;
  double sparsity = 1.0;
  bool distributed = false;

  double Bytes() const;
};

/// Transmission volumes and FLOPs one operator books, plus where its
/// result lands.
struct OpCosting {
  MultiplyMethod method = MultiplyMethod::kLocalOp;
  double flops = 0.0;
  double broadcast_bytes = 0.0;
  double shuffle_bytes = 0.0;
  double collection_bytes = 0.0;
  /// Filesystem traffic: on a single-node model this carries the
  /// out-of-core streaming cost of operands that do not fit in memory
  /// (the paper's single-node experiments are disk-bound).
  double dfs_bytes = 0.0;
  /// SUMMA legs (kSumma2D only; zero for the 1D methods). Row/col
  /// broadcasts ride the broadcast primitive, the partial-sum merge the
  /// shuffle primitive, so the ledger's per-primitive split distinguishes
  /// the layouts.
  double row_broadcast_bytes = 0.0;
  double col_broadcast_bytes = 0.0;
  double reduce_bytes = 0.0;
  /// Tiles the SUMMA preprocessing pass annotated empty and therefore
  /// excluded from every communication leg (reporting only).
  int64_t empty_tiles_skipped = 0;
  bool result_distributed = false;

  /// Converts this costing to simulated seconds under `model`.
  double Seconds(const ClusterModel& model) const;

  /// Books this costing into `ledger`.
  void Book(TransmissionLedger* ledger) const;
};

/// Whether a value of `bytes` must live distributed (exceeds the driver
/// budget share SystemDS would grant a single object).
bool IsDistributedSize(double bytes, const ClusterModel& model);

/// Whether a value of `bytes` is small enough to broadcast to workers.
bool IsBroadcastable(double bytes, const ClusterModel& model);

/// Prices a matrix multiplication a * b with result sparsity `sp_out`.
/// Chooses local / BMM / CPMM exactly as the runtime does — the 1D
/// chooser; never returns kSumma2D (see SelectMultiplyCosting).
OpCosting CostMultiply(const MatInfo& a, const MatInfo& b, double sp_out,
                       const ClusterModel& model);

/// Prices a * b on the 2D tiled layout (SUMMA over the pr x pc worker
/// grid) from estimated statistics: per-tile bytes and empty-tile
/// probabilities are derived from the uniform-sparsity assumption, the
/// exact counterpart of which the runtime computes from the real tile
/// grids. Only meaningful when both operands are distributed.
OpCosting CostSumma2D(const MatInfo& a, const MatInfo& b, double sp_out,
                      const ClusterModel& model);

/// True when a multiply priced as `one_d` is eligible for the 2D layout
/// under `model`: the 1D chooser picked CPMM (both sides distributed),
/// there is more than one worker, and dist2d is not kOff.
bool Summa2DCandidate(const OpCosting& one_d, const ClusterModel& model);

/// The layout-aware multiply chooser: prices the 1D methods via
/// CostMultiply, and when the operator is a 2D candidate also prices
/// SUMMA, returning whichever costing is cheaper in simulated seconds
/// (kForce2D always takes SUMMA). The optimizer's cost model, the cost
/// audit, and the runtime all select through this one function, so the
/// three layers agree on the chosen layout.
OpCosting SelectMultiplyCosting(const MatInfo& a, const MatInfo& b,
                                double sp_out, const ClusterModel& model);

/// Prices an element-wise binary operator (add/sub/mul/div).
OpCosting CostElementwise(const MatInfo& a, const MatInfo& b, double sp_out,
                          const ClusterModel& model);

/// Prices a standalone transpose.
OpCosting CostTranspose(const MatInfo& a, const ClusterModel& model);

/// Prices a scalar-matrix operator.
OpCosting CostScalarOp(const MatInfo& a, const ClusterModel& model);

class TiledMatrix2D;
class Grid2DPartitioner;

/// Prices a * b on the 2D layout from *exact* tile grids (the runtime
/// path): every leg sums real per-tile bytes, annotated-empty tiles
/// contribute zero, and the partial-sum merge counts the distinct worker
/// columns actually holding non-empty contributing tile pairs per C tile.
/// `out` is the tiled view of the already-computed product.
OpCosting CostSummaTiled(const TiledMatrix2D& a, const TiledMatrix2D& b,
                         const TiledMatrix2D& out,
                         const Grid2DPartitioner& grid,
                         const ClusterModel& model);

/// Derives the MatInfo of an in-memory matrix (actual statistics).
MatInfo InfoOf(const Matrix& m, bool distributed);

/// Executes a * b (with optional transposes applied to either side, which
/// models SystemDS's fused transpose-multiply so that t(A) %*% v does not
/// materialize a distributed transpose), books the costing into `ledger`
/// (if non-null), and reports whether the result lands distributed.
struct DistValue {
  Matrix value;
  bool distributed = false;
};

Result<DistValue> ExecMultiply(const Matrix& a, bool a_distributed,
                               bool a_transposed, const Matrix& b,
                               bool b_distributed, bool b_transposed,
                               const ClusterModel& model,
                               TransmissionLedger* ledger);

enum class BinaryOpKind { kAdd, kSub, kElemMul, kElemDiv, kMin, kMax };

Result<DistValue> ExecElementwise(BinaryOpKind op, const Matrix& a,
                                  bool a_distributed, const Matrix& b,
                                  bool b_distributed,
                                  const ClusterModel& model,
                                  TransmissionLedger* ledger);

DistValue ExecTranspose(const Matrix& a, bool a_distributed,
                        const ClusterModel& model, TransmissionLedger* ledger);

DistValue ExecScalarMultiply(const Matrix& a, bool a_distributed, double s,
                             const ClusterModel& model,
                             TransmissionLedger* ledger);

}  // namespace remac

#endif  // REMAC_DISTRIBUTED_DISTRIBUTED_OPS_H_
