#include "distributed/blocked_matrix.h"

#include <cassert>

#include "cost/physical_model.h"

namespace remac {

BlockedMatrix BlockedMatrix::Partition(Matrix data, const ClusterModel& model) {
  BlockedMatrix b;
  b.block_size_ = model.block_size;
  b.grid_rows_ = NumBlocks(data.rows(), model.block_size);
  b.grid_cols_ = NumBlocks(data.cols(), model.block_size);
  b.block_nnz_.assign(static_cast<size_t>(b.grid_rows_ * b.grid_cols_), 0);
  const int64_t bs = model.block_size;
  if (data.is_dense()) {
    const DenseMatrix& d = data.dense();
    for (int64_t r = 0; r < d.rows(); ++r) {
      const int64_t br = r / bs;
      for (int64_t c = 0; c < d.cols(); ++c) {
        if (d.At(r, c) != 0.0) {
          ++b.block_nnz_[static_cast<size_t>(br * b.grid_cols_ + c / bs)];
        }
      }
    }
  } else {
    const CsrMatrix& s = data.csr();
    for (int64_t r = 0; r < s.rows(); ++r) {
      const int64_t br = r / bs;
      for (int64_t p = s.row_ptr()[r]; p < s.row_ptr()[r + 1]; ++p) {
        const int64_t bc = s.col_idx()[p] / bs;
        ++b.block_nnz_[static_cast<size_t>(br * b.grid_cols_ + bc)];
      }
    }
  }
  b.data_ = std::move(data);
  return b;
}

double BlockedMatrix::BlockBytes(int64_t br, int64_t bc) const {
  assert(br >= 0 && br < grid_rows_ && bc >= 0 && bc < grid_cols_);
  const int64_t block_rows =
      std::min(block_size_, data_.rows() - br * block_size_);
  const int64_t block_cols =
      std::min(block_size_, data_.cols() - bc * block_size_);
  const int64_t cells = block_rows * block_cols;
  if (cells == 0) return 0.0;
  const double sp =
      static_cast<double>(BlockNnz(br, bc)) / static_cast<double>(cells);
  return MatrixBytes(static_cast<double>(block_rows),
                     static_cast<double>(block_cols), sp);
}

double BlockedMatrix::TotalBytes() const {
  double total = 0.0;
  for (int64_t br = 0; br < grid_rows_; ++br) {
    for (int64_t bc = 0; bc < grid_cols_; ++bc) {
      total += BlockBytes(br, bc);
    }
  }
  return total;
}

std::vector<double> BlockedMatrix::PerWorkerBytes(
    const HashPartitioner& partitioner) const {
  std::vector<double> weights;
  weights.reserve(static_cast<size_t>(num_blocks()));
  for (int64_t br = 0; br < grid_rows_; ++br) {
    for (int64_t bc = 0; bc < grid_cols_; ++bc) {
      weights.push_back(BlockBytes(br, bc));
    }
  }
  return partitioner.WorkerLoads(weights, grid_cols_ == 0 ? 1 : grid_cols_);
}

}  // namespace remac
