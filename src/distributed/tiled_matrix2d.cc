#include "distributed/tiled_matrix2d.h"

#include <cassert>

#include "cost/physical_model.h"

namespace remac {

const char* TileFormatName(TileFormat format) {
  switch (format) {
    case TileFormat::kEmpty:
      return "empty";
    case TileFormat::kCsr:
      return "CSR";
    case TileFormat::kDense:
      return "dense";
  }
  return "?";
}

TiledMatrix2D TiledMatrix2D::Partition(const Matrix& data, bool transposed,
                                       const ClusterModel& model) {
  TiledMatrix2D t;
  t.rows_ = transposed ? data.cols() : data.rows();
  t.cols_ = transposed ? data.rows() : data.cols();
  t.tile_size_ = model.block_size;
  t.grid_rows_ = NumBlocks(t.rows_, t.tile_size_);
  t.grid_cols_ = NumBlocks(t.cols_, t.tile_size_);
  t.tile_nnz_.assign(static_cast<size_t>(t.grid_rows_ * t.grid_cols_), 0);
  const int64_t ts = t.tile_size_;
  const auto bump = [&](int64_t r, int64_t c) {
    // Bucket the transposed coordinate without materializing op(M).
    const int64_t tr = (transposed ? c : r) / ts;
    const int64_t tc = (transposed ? r : c) / ts;
    ++t.tile_nnz_[static_cast<size_t>(tr * t.grid_cols_ + tc)];
  };
  if (data.is_dense()) {
    const DenseMatrix& d = data.dense();
    for (int64_t r = 0; r < d.rows(); ++r) {
      for (int64_t c = 0; c < d.cols(); ++c) {
        if (d.At(r, c) != 0.0) bump(r, c);
      }
    }
  } else {
    const CsrMatrix& s = data.csr();
    for (int64_t r = 0; r < s.rows(); ++r) {
      for (int64_t p = s.row_ptr()[r]; p < s.row_ptr()[r + 1]; ++p) {
        bump(r, s.col_idx()[p]);
      }
    }
  }
  return t;
}

TileFormat TiledMatrix2D::TileAnnotation(int64_t tr, int64_t tc) const {
  assert(tr >= 0 && tr < grid_rows_ && tc >= 0 && tc < grid_cols_);
  const int64_t nnz = TileNnz(tr, tc);
  if (nnz == 0) return TileFormat::kEmpty;
  const int64_t cells = TileRows(tr) * TileCols(tc);
  const double sp =
      cells > 0 ? static_cast<double>(nnz) / static_cast<double>(cells) : 0.0;
  return sp > kDenseFormatThreshold ? TileFormat::kDense : TileFormat::kCsr;
}

double TiledMatrix2D::TileBytes(int64_t tr, int64_t tc) const {
  assert(tr >= 0 && tr < grid_rows_ && tc >= 0 && tc < grid_cols_);
  const int64_t nnz = TileNnz(tr, tc);
  if (nnz == 0) return 0.0;  // annotated empty: never transmitted
  const int64_t tile_rows = TileRows(tr);
  const int64_t tile_cols = TileCols(tc);
  const int64_t cells = tile_rows * tile_cols;
  if (cells == 0) return 0.0;
  const double sp = static_cast<double>(nnz) / static_cast<double>(cells);
  return MatrixBytes(static_cast<double>(tile_rows),
                     static_cast<double>(tile_cols), sp);
}

double TiledMatrix2D::TotalBytes() const {
  double total = 0.0;
  for (int64_t tr = 0; tr < grid_rows_; ++tr) {
    for (int64_t tc = 0; tc < grid_cols_; ++tc) {
      total += TileBytes(tr, tc);
    }
  }
  return total;
}

int64_t TiledMatrix2D::EmptyTiles() const {
  int64_t empty = 0;
  for (const int64_t nnz : tile_nnz_) {
    if (nnz == 0) ++empty;
  }
  return empty;
}

int64_t TiledMatrix2D::TotalNnz() const {
  int64_t total = 0;
  for (const int64_t nnz : tile_nnz_) total += nnz;
  return total;
}

std::vector<double> TiledMatrix2D::PerWorkerBytes(
    const Grid2DPartitioner& grid) const {
  std::vector<double> weights;
  weights.reserve(static_cast<size_t>(num_tiles()));
  for (int64_t tr = 0; tr < grid_rows_; ++tr) {
    for (int64_t tc = 0; tc < grid_cols_; ++tc) {
      weights.push_back(TileBytes(tr, tc));
    }
  }
  return grid.WorkerLoads(weights, grid_cols_ == 0 ? 1 : grid_cols_);
}

}  // namespace remac
