#ifndef REMAC_SCHED_PARALLEL_EXECUTOR_H_
#define REMAC_SCHED_PARALLEL_EXECUTOR_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/fault_plan.h"
#include "runtime/executor.h"
#include "sched/task_graph.h"
#include "sched/thread_pool.h"
#include "sched/trace.h"

namespace remac {

/// \brief How a task-graph run would schedule on the modeled cluster.
///
/// Execution books each task's simulated cost (FLOPs + transmission
/// converted to seconds) into a private ledger; afterwards the DAG is
/// list-scheduled over ClusterModel::num_workers to obtain the parallel
/// makespan. `serial_seconds` is the old serial-sum accounting, so both
/// are reported side by side (see DESIGN.md, "Serial sum vs critical
/// path").
struct ScheduleReport {
  bool used = false;
  int pool_threads = 0;     // real threads that executed the DAG
  int modeled_workers = 0;  // simulated workers the makespan assumes
  int64_t tasks = 0;        // DAG nodes executed (loop iterations included)
  int64_t edges = 0;        // dependency edges across all executed DAGs
  /// Serial-sum simulated execution time (compute + transmission), the
  /// quantity the serial executor's ledger reports.
  double serial_seconds = 0.0;
  /// Longest dependency chain — the makespan with unbounded workers.
  double critical_path_seconds = 0.0;
  /// List-scheduled makespan over `modeled_workers`. Always within
  /// [critical_path_seconds, serial_seconds].
  double makespan_seconds = 0.0;

  /// Chaos-run accounting (all zero when no FaultInjector is attached).
  bool chaos = false;
  int64_t faults_injected = 0;  // failing faults (transients + crashes)
  int64_t transients = 0;
  int64_t crashes = 0;
  int64_t stragglers = 0;
  int64_t retries = 0;    // re-executed attempts
  int64_t exhausted = 0;  // tasks that ran out of retries
  double wasted_seconds = 0.0;   // simulated cost of discarded attempts
  double backoff_seconds = 0.0;  // simulated retry backoff + rescheduling

  double Speedup() const {
    return makespan_seconds > 0.0 ? serial_seconds / makespan_seconds : 1.0;
  }
  std::string ToString() const;
};

/// List-schedules `costs` over `workers` machines in id order (ids are a
/// topological order: every dep precedes its dependents). Returns the
/// makespan. `deps[i]` holds prerequisite ids of task i.
double ListScheduleMakespan(const std::vector<std::vector<int>>& deps,
                            const std::vector<double>& costs, int workers);

/// Longest dependency chain (sum of costs along the heaviest path).
double CriticalPathSeconds(const std::vector<std::vector<int>>& deps,
                           const std::vector<double>& costs);

/// \brief Runs compiled statements as a dependency DAG on a thread pool.
///
/// Statement-level parallelism: independent assignments (and whole
/// loops) run concurrently on the pool; each loop iteration spawns its
/// own DAG over the loop body. Every task evaluates with a private
/// Executor seeded from a shared variable store, so numerics are
/// bitwise-identical to the serial Executor: kernels chunk work the same
/// way regardless of pool size, and rand() draws are re-based to the
/// serial stream position of each statement.
class ParallelExecutor {
 public:
  ParallelExecutor(const ClusterModel& model, const DataCatalog* catalog,
                   TransmissionLedger* ledger, ThreadPool* pool,
                   EngineTraits traits = {});

  /// See Executor::set_count_input_partition.
  void set_count_input_partition(bool on) { count_input_partition_ = on; }
  /// Optional per-task trace sink (Chrome-trace events).
  void set_trace(TraceSink* trace) { trace_ = trace; }
  /// Optional fault oracle for chaos runs. Failed attempts are retried
  /// (up to the plan's max_retries) with their wasted work double-booked
  /// into the ledger; results stay bitwise-identical to a fault-free run
  /// whenever retries eventually succeed. Must outlive Run().
  void set_fault_injector(FaultInjector* faults) { faults_ = faults; }
  /// Optional materialized-intermediate store, forwarded to every
  /// per-task Executor (see IntermediateStore; must be thread-safe and
  /// outlive Run()).
  void set_intermediate_store(IntermediateStore* store) {
    intermediates_ = store;
  }

  /// Runs a statement list; semantics identical to Executor::Run.
  Status Run(const std::vector<CompiledStmt>& statements,
             int max_loop_iterations = 1000);

  /// Final environment (valid after Run).
  const std::map<std::string, RtValue>& env() const { return env_; }
  Result<RtValue> Get(const std::string& name) const;

  const ScheduleReport& schedule() const { return schedule_; }
  int64_t ops_executed() const {
    return ops_executed_.load(std::memory_order_relaxed);
  }

 private:
  /// Simulated durations of one executed statement list.
  struct ListTimes {
    double makespan_seconds = 0.0;
    double critical_path_seconds = 0.0;
    uint64_t rand_consumed = 0;  // rand() draws the list used
  };

  Result<ListTimes> RunList(const std::vector<CompiledStmt>& statements,
                            int max_loop_iterations, bool barrier_commit,
                            uint64_t rand_base);
  Result<ListTimes> RunLoop(const CompiledStmt& stmt,
                            int max_loop_iterations, uint64_t rand_base);

  /// Makes a task-local Executor seeded with the current values of
  /// `reads` (missing names are left unset so evaluation reports the
  /// same NotFound as the serial path).
  Executor MakeTaskExecutor(const std::vector<std::string>& reads,
                            TransmissionLedger* task_ledger,
                            uint64_t rand_base);

  RtValue StoreGetOr(const std::string& name, bool* found) const;
  void StoreSet(const std::string& name, RtValue value);

  /// Records a completed task into the attached TraceSink (when set) and
  /// into the calling thread's request TraceContext (when active) — both
  /// on the shared process trace epoch.
  void RecordTrace(const std::string& name, const char* category,
                   double start_us, double end_us, double queue_us,
                   const TransmissionLedger& task_ledger);
  /// Trace clock when any sink could use it, else 0 (no clock read).
  double TraceTimestampUs() const;

  ClusterModel model_;
  const DataCatalog* catalog_;
  TransmissionLedger* ledger_;
  ThreadPool* pool_;
  EngineTraits traits_;
  bool count_input_partition_ = false;
  TraceSink* trace_ = nullptr;
  FaultInjector* faults_ = nullptr;
  IntermediateStore* intermediates_ = nullptr;

  mutable std::mutex env_mu_;
  std::map<std::string, RtValue> env_;
  SharedDatasetSet datasets_;

  ScheduleReport schedule_;
  std::atomic<int64_t> ops_executed_{0};
  std::atomic<int64_t> tasks_run_{0};
  std::atomic<int64_t> edges_seen_{0};
  /// Serial-sum of leaf task costs (atomic double via CAS).
  std::atomic<double> serial_seconds_{0.0};
  std::atomic<int64_t> retries_{0};
  std::atomic<int64_t> exhausted_{0};
  std::atomic<double> wasted_seconds_{0.0};
  std::atomic<double> backoff_seconds_{0.0};
};

}  // namespace remac

#endif  // REMAC_SCHED_PARALLEL_EXECUTOR_H_
