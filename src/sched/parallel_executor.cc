#include "sched/parallel_executor.h"

#include <algorithm>
#include <condition_variable>
#include <functional>
#include <memory>

#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace_context.h"

namespace remac {

namespace {

void AtomicAdd(std::atomic<double>& accumulator, double delta) {
  double current = accumulator.load(std::memory_order_relaxed);
  while (!accumulator.compare_exchange_weak(current, current + delta,
                                            std::memory_order_relaxed)) {
  }
}

/// Compute + transmission seconds a task ledger accumulated — the task's
/// duration on the simulated cluster.
double TaskCostSeconds(const TransmissionLedger& ledger) {
  const TimeBreakdown b = ledger.Breakdown();
  return b.computation_seconds + b.transmission_seconds;
}

}  // namespace

std::string ScheduleReport::ToString() const {
  std::string out = StringFormat(
      "tasks=%lld edges=%lld pool_threads=%d workers=%d "
      "serial=%s critical_path=%s makespan=%s speedup=%.2fx",
      static_cast<long long>(tasks), static_cast<long long>(edges),
      pool_threads, modeled_workers, HumanSeconds(serial_seconds).c_str(),
      HumanSeconds(critical_path_seconds).c_str(),
      HumanSeconds(makespan_seconds).c_str(), Speedup());
  if (chaos) {
    out += StringFormat(
        " faults=%lld (transient=%lld crash=%lld straggler=%lld) "
        "retries=%lld exhausted=%lld wasted=%s backoff=%s",
        static_cast<long long>(faults_injected),
        static_cast<long long>(transients), static_cast<long long>(crashes),
        static_cast<long long>(stragglers), static_cast<long long>(retries),
        static_cast<long long>(exhausted), HumanSeconds(wasted_seconds).c_str(),
        HumanSeconds(backoff_seconds).c_str());
  }
  return out;
}

double ListScheduleMakespan(const std::vector<std::vector<int>>& deps,
                            const std::vector<double>& costs, int workers) {
  const size_t n = costs.size();
  std::vector<double> finish(n, 0.0);
  std::vector<double> worker_free(static_cast<size_t>(std::max(1, workers)),
                                  0.0);
  double makespan = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double ready = 0.0;
    for (int dep : deps[i]) {
      ready = std::max(ready, finish[static_cast<size_t>(dep)]);
    }
    size_t best = 0;
    for (size_t w = 1; w < worker_free.size(); ++w) {
      if (worker_free[w] < worker_free[best]) best = w;
    }
    const double start = std::max(ready, worker_free[best]);
    finish[i] = start + costs[i];
    worker_free[best] = finish[i];
    makespan = std::max(makespan, finish[i]);
  }
  return makespan;
}

double CriticalPathSeconds(const std::vector<std::vector<int>>& deps,
                           const std::vector<double>& costs) {
  const size_t n = costs.size();
  std::vector<double> finish(n, 0.0);
  double longest = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double ready = 0.0;
    for (int dep : deps[i]) {
      ready = std::max(ready, finish[static_cast<size_t>(dep)]);
    }
    finish[i] = ready + costs[i];
    longest = std::max(longest, finish[i]);
  }
  return longest;
}

ParallelExecutor::ParallelExecutor(const ClusterModel& model,
                                   const DataCatalog* catalog,
                                   TransmissionLedger* ledger,
                                   ThreadPool* pool, EngineTraits traits)
    : model_(model),
      catalog_(catalog),
      ledger_(ledger),
      pool_(pool),
      traits_(traits) {}

Result<RtValue> ParallelExecutor::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(env_mu_);
  auto it = env_.find(name);
  if (it == env_.end()) {
    return Status::NotFound("variable '" + name + "' is not defined");
  }
  return it->second;
}

RtValue ParallelExecutor::StoreGetOr(const std::string& name,
                                     bool* found) const {
  std::lock_guard<std::mutex> lock(env_mu_);
  auto it = env_.find(name);
  *found = it != env_.end();
  return *found ? it->second : RtValue{};
}

void ParallelExecutor::StoreSet(const std::string& name, RtValue value) {
  std::lock_guard<std::mutex> lock(env_mu_);
  env_.insert_or_assign(name, std::move(value));
}

Executor ParallelExecutor::MakeTaskExecutor(
    const std::vector<std::string>& reads, TransmissionLedger* task_ledger,
    uint64_t rand_base) {
  Executor executor(model_, catalog_, task_ledger, traits_);
  executor.set_count_input_partition(count_input_partition_);
  executor.set_shared_loaded_datasets(&datasets_);
  executor.set_intermediate_store(intermediates_);
  executor.set_rand_counter(rand_base);
  std::lock_guard<std::mutex> lock(env_mu_);
  for (const std::string& name : reads) {
    auto it = env_.find(name);
    if (it != env_.end()) executor.Set(name, it->second);
  }
  return executor;
}

double ParallelExecutor::TraceTimestampUs() const {
  return (trace_ != nullptr || CurrentTraceContext().active())
             ? TraceNowMicros()
             : 0.0;
}

void ParallelExecutor::RecordTrace(const std::string& name,
                                   const char* category, double start_us,
                                   double end_us, double queue_us,
                                   const TransmissionLedger& task_ledger) {
  if (trace_ != nullptr) {
    TraceEvent event;
    event.name = name;
    event.category = category;
    event.thread = ThreadPool::CurrentWorkerId();
    event.start_us = start_us;
    event.duration_us = std::max(0.0, end_us - start_us);
    event.queue_us = queue_us;
    event.flops = task_ledger.TotalFlops();
    event.bytes = task_ledger.TotalBytes();
    trace_->Record(event);
  }
  // The same completed task lands in the request's span tree (the pool
  // wrapper installed the submitting request's context on this worker).
  RecordSpanIn(CurrentTraceContext(), name, category, start_us, end_us);
}

Status ParallelExecutor::Run(const std::vector<CompiledStmt>& statements,
                             int max_loop_iterations) {
  Result<ListTimes> run =
      RunList(statements, max_loop_iterations, /*barrier_commit=*/false,
              /*rand_base=*/0);
  MetricsRegistry& registry = MetricsRegistry::Global();
  if (faults_ != nullptr) {
    // Published even when the run failed: an exhausted-retries error is
    // exactly when the fault/retry counters matter most.
    const FaultStats fs = faults_->stats();
    schedule_.chaos = true;
    schedule_.faults_injected = fs.injected;
    schedule_.transients = fs.transients;
    schedule_.crashes = fs.crashes;
    schedule_.stragglers = fs.stragglers;
    schedule_.retries = retries_.load(std::memory_order_relaxed);
    schedule_.exhausted = exhausted_.load(std::memory_order_relaxed);
    schedule_.wasted_seconds = wasted_seconds_.load(std::memory_order_relaxed);
    schedule_.backoff_seconds =
        backoff_seconds_.load(std::memory_order_relaxed);
    registry.GetCounter("remac.retry.attempts")->Add(schedule_.retries);
    registry.GetCounter("remac.retry.exhausted")->Add(schedule_.exhausted);
    registry.GetGauge("remac.fault.wasted_seconds")
        ->Add(schedule_.wasted_seconds);
    registry.GetGauge("remac.retry.backoff_seconds")
        ->Add(schedule_.backoff_seconds);
  }
  REMAC_RETURN_NOT_OK(run.status());
  const ListTimes times = *run;
  schedule_.used = true;
  schedule_.pool_threads = pool_->size();
  schedule_.modeled_workers = std::max(1, model_.num_workers);
  schedule_.tasks = tasks_run_.load(std::memory_order_relaxed);
  schedule_.edges = edges_seen_.load(std::memory_order_relaxed);
  schedule_.serial_seconds = serial_seconds_.load(std::memory_order_relaxed);
  // The clamps only absorb floating-point association noise: list
  // scheduling on >= 1 worker can mathematically neither beat the
  // critical path nor lose to the serial sum.
  schedule_.critical_path_seconds =
      std::min(schedule_.critical_path_seconds + times.critical_path_seconds,
               schedule_.serial_seconds);
  schedule_.makespan_seconds = std::clamp(
      schedule_.makespan_seconds + times.makespan_seconds,
      schedule_.critical_path_seconds, schedule_.serial_seconds);
  registry.GetGauge("remac.sched.tasks")
      ->Add(static_cast<double>(schedule_.tasks));
  registry.GetGauge("remac.sched.edges")
      ->Add(static_cast<double>(schedule_.edges));
  registry.GetGauge("remac.sched.serial_seconds")
      ->Add(schedule_.serial_seconds);
  registry.GetGauge("remac.sched.critical_path_seconds")
      ->Add(schedule_.critical_path_seconds);
  registry.GetGauge("remac.sched.makespan_seconds")
      ->Add(schedule_.makespan_seconds);
  return Status::OK();
}

Result<ParallelExecutor::ListTimes> ParallelExecutor::RunList(
    const std::vector<CompiledStmt>& statements, int max_loop_iterations,
    bool barrier_commit, uint64_t rand_base) {
  ListTimes times;
  if (statements.empty()) return times;
  if (barrier_commit) {
    for (const CompiledStmt& stmt : statements) {
      if (stmt.kind != CompiledStmt::Kind::kAssign) {
        return Status::Unsupported("nested loop in barrier-commit body");
      }
    }
  }

  const TaskGraph graph = BuildTaskGraph(statements, barrier_commit);
  const size_t n = graph.nodes.size();
  edges_seen_.fetch_add(graph.EdgeCount(), std::memory_order_relaxed);

  struct NodeState {
    std::atomic<int> remaining{0};
    /// rand() draws this node actually consumed (loops; set on finish).
    std::atomic<uint64_t> consumed{0};
    double cost_makespan = 0.0;
    double cost_critical = 0.0;
    double ready_us = 0.0;
  };
  std::vector<NodeState> state(n);
  std::vector<std::vector<int>> unique_deps(n);
  for (size_t i = 0; i < n; ++i) {
    std::set<int> dep_ids;
    for (const TaskDep& dep : graph.nodes[i].deps) dep_ids.insert(dep.task);
    unique_deps[i].assign(dep_ids.begin(), dep_ids.end());
    state[i].remaining.store(static_cast<int>(dep_ids.size()),
                             std::memory_order_relaxed);
  }

  std::mutex done_mu;
  std::condition_variable done_cv;
  size_t outstanding = n;
  std::atomic<bool> failed{false};
  Status first_error = Status::OK();
  std::mutex error_mu;
  // Barrier-commit: non-temp results stage here, committed in statement
  // order after the whole list finished (Executor's loop semantics).
  std::vector<std::unique_ptr<RtValue>> staged(n);

  std::function<void(int)> execute;
  auto submit = [&](int id) {
    state[static_cast<size_t>(id)].ready_us = TraceTimestampUs();
    pool_->Submit([&execute, id] { execute(id); });
  };
  auto fail = [&](Status status) {
    std::lock_guard<std::mutex> lock(error_mu);
    if (!failed.load(std::memory_order_relaxed)) {
      first_error = std::move(status);
      failed.store(true, std::memory_order_release);
    }
  };

  execute = [&](int id) {
   // Continuation loop: when finishing this node readies exactly one
   // dependent, run it inline instead of paying a Submit/park/pop round
   // trip — the common case for the chain-shaped DAGs long scripts
   // produce. Additional ready dependents are submitted (onto this
   // worker's own deque; parked siblings are woken to steal them).
   while (true) {
    const TaskNode& node = graph.nodes[static_cast<size_t>(id)];
    NodeState& ns = state[static_cast<size_t>(id)];
    tasks_run_.fetch_add(1, std::memory_order_relaxed);
    if (!failed.load(std::memory_order_acquire)) {
      // Serial position in the rand() stream: every earlier statement's
      // consumption is either static (assignments) or pinned by a
      // rand-order edge (loops, already finished).
      uint64_t base = rand_base;
      if (node.rand_count > 0 || node.dynamic_rand) {
        for (int j = 0; j < id; ++j) {
          const TaskNode& prev = graph.nodes[static_cast<size_t>(j)];
          base += prev.dynamic_rand
                      ? state[static_cast<size_t>(j)].consumed.load(
                            std::memory_order_acquire)
                      : static_cast<uint64_t>(prev.rand_count);
        }
      }
      const double start_us = TraceTimestampUs();
      if (node.stmt->kind == CompiledStmt::Kind::kAssign) {
        // Chaos runs retry failed attempts: every attempt re-evaluates
        // from the same rand base with a fresh private ledger, so a
        // retry's numerics are bitwise those of an undisturbed first
        // attempt. Wasted attempts are still merged into the main
        // ledger — a re-executed task costs the simulated cluster twice,
        // the way Spark re-runs lost tasks from lineage.
        const int max_attempts =
            faults_ != nullptr ? faults_->plan().max_retries + 1 : 1;
        const std::string task_key =
            node.label + "#" + std::to_string(id);
        double lost_cost = 0.0;  // wasted attempts + backoff + straggler drag
        for (int attempt = 0; attempt < max_attempts; ++attempt) {
          FaultDecision decision;
          if (faults_ != nullptr) {
            decision = faults_->Probe(task_key, attempt);
            if (attempt > 0) retries_.fetch_add(1, std::memory_order_relaxed);
          }
          TransmissionLedger task_ledger(model_);
          Executor executor =
              MakeTaskExecutor(node.reads, &task_ledger, base);
          Result<RtValue> value = executor.Eval(*node.stmt->plan);
          if (value.ok() && decision.Fails()) {
            // The attempt's work really ran before it was lost: book it,
            // mark it wasted, and pay backoff (plus rescheduling for
            // crashes) in simulated time before the retry.
            const double cost = TaskCostSeconds(task_ledger);
            double backoff = faults_->BackoffSeconds(attempt);
            if (decision.kind == FaultKind::kWorkerCrash) {
              backoff += faults_->plan().crash_recovery_seconds;
            }
            if (ledger_ != nullptr) {
              ledger_->MergeFrom(task_ledger);
              ledger_->AddWasted(task_ledger.TotalFlops(),
                                 task_ledger.TotalBytes());
              ledger_->AddRecoverySeconds(backoff);
            }
            AtomicAdd(wasted_seconds_, cost);
            AtomicAdd(backoff_seconds_, backoff);
            lost_cost += cost + backoff;
            if (attempt == max_attempts - 1) {
              exhausted_.fetch_add(1, std::memory_order_relaxed);
              fail(Status::Unavailable(StringFormat(
                  "task '%s' lost all %d attempts to injected faults "
                  "(last: %s)",
                  node.label.c_str(), max_attempts,
                  FaultKindName(decision.kind))));
            }
            continue;
          }
          // Success, or a genuine evaluation error (never retried: a
          // deterministic error would fail every attempt identically).
          if (!value.ok()) {
            fail(value.status());
          } else if (barrier_commit && !node.stmt->is_temp) {
            staged[static_cast<size_t>(id)] =
                std::make_unique<RtValue>(std::move(value).value());
          } else {
            StoreSet(node.stmt->target, std::move(value).value());
          }
          ns.consumed.store(executor.rand_counter() - base,
                            std::memory_order_release);
          ops_executed_.fetch_add(executor.ops_executed(),
                                  std::memory_order_relaxed);
          double cost = TaskCostSeconds(task_ledger);
          if (decision.kind == FaultKind::kStraggler) {
            // Slow placement: the task's simulated duration stretches;
            // the excess is recovery time, the numerics are untouched.
            const double drag = (decision.slowdown - 1.0) * cost;
            if (ledger_ != nullptr) ledger_->AddRecoverySeconds(drag);
            cost *= decision.slowdown;
          }
          ns.cost_makespan = cost + lost_cost;
          ns.cost_critical = cost + lost_cost;
          AtomicAdd(serial_seconds_, cost + lost_cost);
          if (ledger_ != nullptr) ledger_->MergeFrom(task_ledger);
          RecordTrace(node.label, "task", start_us, TraceTimestampUs(),
                      std::max(0.0, start_us - ns.ready_us), task_ledger);
          break;
        }
      } else {
        Result<ListTimes> loop =
            RunLoop(*node.stmt, max_loop_iterations, base);
        if (!loop.ok()) {
          fail(loop.status());
        } else {
          ns.cost_makespan = loop->makespan_seconds;
          ns.cost_critical = loop->critical_path_seconds;
          ns.consumed.store(loop->rand_consumed, std::memory_order_release);
        }
        if (trace_ != nullptr || CurrentTraceContext().active()) {
          TransmissionLedger empty(model_);
          RecordTrace(node.label, "loop", start_us, TraceTimestampUs(),
                      std::max(0.0, start_us - ns.ready_us), empty);
        }
      }
    }
    int inline_next = -1;
    for (int dependent : node.dependents) {
      if (state[static_cast<size_t>(dependent)].remaining.fetch_sub(
              1, std::memory_order_acq_rel) == 1) {
        if (inline_next < 0) {
          inline_next = dependent;
        } else {
          submit(dependent);
        }
      }
    }
    {
      std::lock_guard<std::mutex> lock(done_mu);
      if (--outstanding == 0) done_cv.notify_all();
    }
    if (inline_next < 0) break;
    state[static_cast<size_t>(inline_next)].ready_us = TraceTimestampUs();
    id = inline_next;
   }
  };

  // Snapshot the ready set before submitting anything: a submitted task
  // can finish and submit its dependents concurrently, so probing
  // `remaining` on the fly would double-submit a freshly-unblocked node.
  std::vector<int> initially_ready;
  for (size_t i = 0; i < n; ++i) {
    if (state[i].remaining.load(std::memory_order_relaxed) == 0) {
      initially_ready.push_back(static_cast<int>(i));
    }
  }
  for (int id : initially_ready) submit(id);
  // Help drain the pool while waiting; keeps nested lists (loop bodies
  // running on pool threads) deadlock-free at any pool size. Once the
  // pool has nothing runnable, every task of this list is either done or
  // executing on another thread, so sleeping until the final task's
  // notify (no timeout) cannot deadlock.
  while (true) {
    {
      std::lock_guard<std::mutex> lock(done_mu);
      if (outstanding == 0) break;
    }
    if (pool_->TryRunOne()) continue;
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&] { return outstanding == 0; });
    break;
  }
  if (failed.load(std::memory_order_acquire)) return first_error;

  for (size_t i = 0; i < n; ++i) {
    if (staged[i] != nullptr) {
      StoreSet(statements[i].target, std::move(*staged[i]));
    }
  }

  std::vector<double> costs_makespan(n);
  std::vector<double> costs_critical(n);
  for (size_t i = 0; i < n; ++i) {
    costs_makespan[i] = state[i].cost_makespan;
    costs_critical[i] = state[i].cost_critical;
    times.rand_consumed +=
        graph.nodes[i].dynamic_rand
            ? state[i].consumed.load(std::memory_order_relaxed)
            : static_cast<uint64_t>(graph.nodes[i].rand_count);
  }
  times.makespan_seconds = ListScheduleMakespan(
      unique_deps, costs_makespan, std::max(1, model_.num_workers));
  times.critical_path_seconds =
      CriticalPathSeconds(unique_deps, costs_critical);
  return times;
}

Result<ParallelExecutor::ListTimes> ParallelExecutor::RunLoop(
    const CompiledStmt& stmt, int max_loop_iterations, uint64_t rand_base) {
  ListTimes total;
  int64_t limit = max_loop_iterations;
  if (stmt.static_trip_count >= 0) {
    limit = std::min<int64_t>(limit, stmt.static_trip_count);
  }
  if (!stmt.loop_var.empty()) {
    StoreSet(stmt.loop_var, RtValue::Scalar(stmt.loop_begin));
  }
  uint64_t consumed = 0;
  for (int64_t iter = 0; iter < limit; ++iter) {
    if (stmt.condition != nullptr) {
      std::set<std::string> cond_reads;
      CollectPlanReads(*stmt.condition, &cond_reads);
      const uint64_t before = rand_base + consumed;
      TransmissionLedger cond_ledger(model_);
      Executor executor = MakeTaskExecutor(
          std::vector<std::string>(cond_reads.begin(), cond_reads.end()),
          &cond_ledger, before);
      const double start_us = TraceTimestampUs();
      REMAC_ASSIGN_OR_RETURN(const RtValue cond,
                             executor.Eval(*stmt.condition));
      REMAC_ASSIGN_OR_RETURN(const double flag, cond.AsScalar());
      consumed += executor.rand_counter() - before;
      ops_executed_.fetch_add(executor.ops_executed(),
                              std::memory_order_relaxed);
      const double cost = TaskCostSeconds(cond_ledger);
      total.makespan_seconds += cost;
      total.critical_path_seconds += cost;
      AtomicAdd(serial_seconds_, cost);
      if (ledger_ != nullptr) ledger_->MergeFrom(cond_ledger);
      RecordTrace("loop-cond", "condition", start_us, TraceTimestampUs(),
                  0.0, cond_ledger);
      if (flag == 0.0) break;
    }
    REMAC_ASSIGN_OR_RETURN(
        const ListTimes body,
        RunList(stmt.body, max_loop_iterations, stmt.barrier_commit,
                rand_base + consumed));
    // Iterations are sequential: their DAG makespans add up.
    total.makespan_seconds += body.makespan_seconds;
    total.critical_path_seconds += body.critical_path_seconds;
    consumed += body.rand_consumed;
    if (!stmt.loop_var.empty()) {
      StoreSet(stmt.loop_var,
               RtValue::Scalar(stmt.loop_begin +
                               static_cast<double>(iter + 1)));
    }
  }
  total.rand_consumed = consumed;
  return total;
}

}  // namespace remac
