#ifndef REMAC_SCHED_TASK_GRAPH_H_
#define REMAC_SCHED_TASK_GRAPH_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "plan/plan_builder.h"

namespace remac {

/// Hazard class of a dependency edge.
enum class DepKind {
  kRaw,        // read-after-write: reader needs the writer's value
  kWar,        // write-after-read: writer must wait for readers
  kWaw,        // write-after-write: later write wins
  kRandOrder,  // rand() stream ordering after a dynamic consumer (loop)
};

const char* DepKindName(DepKind kind);

/// One incoming dependency edge.
struct TaskDep {
  int task = -1;  // id of the prerequisite task
  DepKind kind = DepKind::kRaw;
  std::string var;  // variable that induced the hazard ("" for rand-order)

  bool operator==(const TaskDep&) const = default;
};

/// \brief One node of the statement-level task DAG.
///
/// A node wraps one CompiledStmt of a statement list: either an
/// assignment (a leaf of real work) or a whole loop (whose body spawns
/// its own per-iteration DAG at execution time). `read_versions` /
/// `write_versions` record which SSA-style version of each variable the
/// statement consumes/produces — the same "@k" versioning the optimizer
/// uses for its search-space keys (docs/INTERNALS.md §2).
struct TaskNode {
  int id = 0;
  const CompiledStmt* stmt = nullptr;
  std::string label;  // assignment target, or "loop" for kLoop nodes

  std::vector<TaskDep> deps;   // incoming edges (prerequisites)
  std::vector<int> dependents;  // outgoing edges (unique task ids)

  std::vector<std::string> reads;   // environment variables read
  std::vector<std::string> writes;  // environment variables written
  /// Version of each read variable at this statement (0 = the value the
  /// list was entered with).
  std::map<std::string, int> read_versions;
  /// Version each written variable has after this statement.
  std::map<std::string, int> write_versions;

  /// Number of rand() plan nodes one execution of this statement
  /// evaluates (loops: one iteration of condition + body).
  int rand_count = 0;
  /// True for loops containing rand(): their total consumption depends
  /// on the executed trip count, so later rand() users must wait.
  bool dynamic_rand = false;

  bool DependsOn(int task) const;
  const TaskDep* FindDep(int task, DepKind kind) const;
};

/// \brief The dependency DAG of one statement list.
///
/// Edges always point from an earlier statement to a later one (ids are
/// statement indices), so id order is a topological order.
struct TaskGraph {
  std::vector<TaskNode> nodes;

  int64_t EdgeCount() const;
  /// Multi-line debug rendering ("2 <- RAW(a@1) 0, WAW(a) 0").
  std::string ToString() const;
};

/// Collects the environment variables a plan tree reads (kInput leaves).
void CollectPlanReads(const PlanNode& node, std::set<std::string>* reads);

/// Counts rand() generator nodes in a plan tree (each consumes one draw
/// of the executor's deterministic rand stream).
int CountRandNodes(const PlanNode& node);

/// Collects the variables a statement reads and writes. Loops aggregate
/// their condition and whole body (conservatively: every name read
/// anywhere in the body counts as a loop-level read).
void CollectStmtAccess(const CompiledStmt& stmt,
                       std::set<std::string>* reads,
                       std::set<std::string>* writes);

/// \brief Builds the dependency DAG over one statement list.
///
/// Derives RAW/WAR/WAW edges from per-variable versions: each write
/// bumps the variable's version; readers bind to the current version and
/// writers serialize against the previous writer and its readers.
///
/// `barrier_commit` mirrors Executor's barrier-commit loop semantics:
/// non-temp assignments stage their writes (committed together at the end
/// of the list), so they produce no WAR/WAW hazards and readers keep
/// seeing the version-0 (start-of-iteration) value; optimizer temps
/// commit immediately and are versioned normally.
TaskGraph BuildTaskGraph(const std::vector<CompiledStmt>& statements,
                         bool barrier_commit = false);

}  // namespace remac

#endif  // REMAC_SCHED_TASK_GRAPH_H_
