#include "sched/task_graph.h"

#include <algorithm>

#include "common/string_util.h"

namespace remac {

const char* DepKindName(DepKind kind) {
  switch (kind) {
    case DepKind::kRaw: return "RAW";
    case DepKind::kWar: return "WAR";
    case DepKind::kWaw: return "WAW";
    case DepKind::kRandOrder: return "RAND";
  }
  return "?";
}

bool TaskNode::DependsOn(int task) const {
  for (const TaskDep& dep : deps) {
    if (dep.task == task) return true;
  }
  return false;
}

const TaskDep* TaskNode::FindDep(int task, DepKind kind) const {
  for (const TaskDep& dep : deps) {
    if (dep.task == task && dep.kind == kind) return &dep;
  }
  return nullptr;
}

int64_t TaskGraph::EdgeCount() const {
  int64_t total = 0;
  for (const TaskNode& node : nodes) {
    total += static_cast<int64_t>(node.deps.size());
  }
  return total;
}

std::string TaskGraph::ToString() const {
  std::string out;
  for (const TaskNode& node : nodes) {
    out += StringFormat("%d [%s]", node.id, node.label.c_str());
    if (!node.deps.empty()) {
      out += " <-";
      for (const TaskDep& dep : node.deps) {
        out += StringFormat(" %s(%s) %d", DepKindName(dep.kind),
                            dep.var.c_str(), dep.task);
      }
    }
    out += "\n";
  }
  return out;
}

void CollectPlanReads(const PlanNode& node, std::set<std::string>* reads) {
  if (node.op == PlanOp::kInput) reads->insert(node.name);
  for (const auto& child : node.children) {
    CollectPlanReads(*child, reads);
  }
}

int CountRandNodes(const PlanNode& node) {
  int count = node.op == PlanOp::kRand ? 1 : 0;
  for (const auto& child : node.children) {
    count += CountRandNodes(*child);
  }
  return count;
}

void CollectStmtAccess(const CompiledStmt& stmt,
                       std::set<std::string>* reads,
                       std::set<std::string>* writes) {
  if (stmt.kind == CompiledStmt::Kind::kAssign) {
    if (stmt.plan != nullptr) CollectPlanReads(*stmt.plan, reads);
    writes->insert(stmt.target);
    return;
  }
  if (stmt.condition != nullptr) CollectPlanReads(*stmt.condition, reads);
  if (!stmt.loop_var.empty()) writes->insert(stmt.loop_var);
  for (const CompiledStmt& body_stmt : stmt.body) {
    CollectStmtAccess(body_stmt, reads, writes);
  }
}

namespace {

/// rand() nodes one run of the statement evaluates (loops: condition +
/// one body pass).
int StmtRandCount(const CompiledStmt& stmt) {
  if (stmt.kind == CompiledStmt::Kind::kAssign) {
    return stmt.plan != nullptr ? CountRandNodes(*stmt.plan) : 0;
  }
  int count =
      stmt.condition != nullptr ? CountRandNodes(*stmt.condition) : 0;
  for (const CompiledStmt& body_stmt : stmt.body) {
    count += StmtRandCount(body_stmt);
  }
  return count;
}

void AddDep(TaskNode* node, int task, DepKind kind, const std::string& var) {
  if (task == node->id) return;
  TaskDep dep{task, kind, var};
  if (std::find(node->deps.begin(), node->deps.end(), dep) !=
      node->deps.end()) {
    return;
  }
  node->deps.push_back(std::move(dep));
}

}  // namespace

TaskGraph BuildTaskGraph(const std::vector<CompiledStmt>& statements,
                         bool barrier_commit) {
  TaskGraph graph;
  graph.nodes.resize(statements.size());

  std::map<std::string, int> version;      // current version (0 = incoming)
  std::map<std::string, int> last_writer;  // task producing current version
  std::map<std::string, std::vector<int>> readers;  // of the current version
  std::vector<int> dynamic_rand_tasks;

  for (size_t i = 0; i < statements.size(); ++i) {
    const CompiledStmt& stmt = statements[i];
    TaskNode& node = graph.nodes[i];
    node.id = static_cast<int>(i);
    node.stmt = &stmt;
    node.label =
        stmt.kind == CompiledStmt::Kind::kAssign ? stmt.target : "loop";

    std::set<std::string> reads;
    std::set<std::string> writes;
    CollectStmtAccess(stmt, &reads, &writes);
    node.reads.assign(reads.begin(), reads.end());
    node.writes.assign(writes.begin(), writes.end());
    node.rand_count = StmtRandCount(stmt);
    node.dynamic_rand =
        stmt.kind == CompiledStmt::Kind::kLoop && node.rand_count > 0;

    // Reads bind to the current version of each variable (RAW).
    for (const std::string& name : reads) {
      node.read_versions[name] = version[name];
      auto writer = last_writer.find(name);
      if (writer != last_writer.end()) {
        AddDep(&node, writer->second, DepKind::kRaw, name);
      }
    }

    // In a barrier-commit body, non-temp assignments stage their writes:
    // they induce no WAR/WAW hazards and do not advance versions, so
    // later readers keep seeing start-of-iteration values.
    const bool staged = barrier_commit &&
                        stmt.kind == CompiledStmt::Kind::kAssign &&
                        !stmt.is_temp;
    for (const std::string& name : writes) {
      if (staged) {
        node.write_versions[name] = version[name];
        continue;
      }
      auto writer = last_writer.find(name);
      if (writer != last_writer.end()) {
        AddDep(&node, writer->second, DepKind::kWaw, name);
      }
      for (int reader : readers[name]) {
        AddDep(&node, reader, DepKind::kWar, name);
      }
    }
    // Register reads after hazard detection so self-reads (x = x + 1)
    // do not create self-edges.
    for (const std::string& name : reads) {
      readers[name].push_back(node.id);
    }
    for (const std::string& name : writes) {
      if (staged) continue;
      node.write_versions[name] = ++version[name];
      last_writer[name] = node.id;
      readers[name].clear();
    }

    // rand() stream ordering: anything consuming the stream after a loop
    // with a dynamic draw count must wait for that loop to finish, so its
    // own base offset is known.
    if (node.rand_count > 0 || node.dynamic_rand) {
      for (int task : dynamic_rand_tasks) {
        AddDep(&node, task, DepKind::kRandOrder, "");
      }
    }
    if (node.dynamic_rand) dynamic_rand_tasks.push_back(node.id);
  }

  // Outgoing edges (unique).
  for (TaskNode& node : graph.nodes) {
    std::set<int> seen;
    for (const TaskDep& dep : node.deps) {
      if (seen.insert(dep.task).second) {
        graph.nodes[dep.task].dependents.push_back(node.id);
      }
    }
  }
  return graph;
}

}  // namespace remac
