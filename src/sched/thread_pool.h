#ifndef REMAC_SCHED_THREAD_POOL_H_
#define REMAC_SCHED_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace remac {

/// Lightweight pool counters for stats reports (plan service, benches).
/// All monotonically increasing since pool construction; reads are
/// relaxed snapshots.
struct PoolStats {
  int threads = 0;
  int64_t tasks_executed = 0;
  /// Tasks a worker popped from a sibling's deque.
  int64_t steals = 0;
  /// Deepest any single worker deque has been at submission time.
  int64_t peak_queue_depth = 0;
  /// Times a thread blocked on a pool condition variable (worker idle
  /// sleeps + RunAndWait latch waits). Waits are signaled, not polled, so
  /// this stays small even across long idle stretches — tests assert it.
  int64_t wait_wakeups = 0;
};

/// \brief Persistent work-stealing thread pool.
///
/// Each worker owns a deque: Submit distributes tasks round-robin across
/// the deques, workers pop from the front of their own deque and steal
/// from the back of a sibling's when it runs dry. The pool is shared
/// process-wide (see Global()): both the local matrix kernels and the
/// task-graph executor run on it, so a kernel invoked from inside a DAG
/// task reuses the same threads instead of spawning fresh ones.
///
/// Nested blocking is safe at any pool size, including 1: a thread that
/// waits for sub-tasks (RunAndWait) keeps draining queues through
/// TryRunOne instead of sleeping, so the pool cannot deadlock on
/// recursive fan-out (DAG task -> kernel ParallelFor -> pool).
class ThreadPool {
 public:
  /// `threads` <= 0 selects the hardware default (capped at 16).
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(threads_.size()); }

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> fn);

  /// Runs one pending task on the calling thread, if any queue holds one.
  /// Returns false when everything was empty. External threads use this
  /// to participate in pool work while they wait.
  bool TryRunOne();

  /// Runs every closure — on the pool workers plus the calling thread —
  /// and returns once all of them completed. Safe to call from inside a
  /// pool task (the caller helps instead of blocking).
  void RunAndWait(std::vector<std::function<void()>> tasks);

  /// Index of the current pool worker thread, or -1 for external threads.
  static int CurrentWorkerId();

  /// The process-wide shared pool.
  static ThreadPool& Global();

  /// Re-creates the global pool with `threads` workers (<= 0 restores the
  /// hardware default). No-ops when the size already matches. Must not be
  /// called while pool work is in flight.
  static void SetGlobalThreads(int threads);

  /// Total tasks executed since construction (observability and tests).
  int64_t tasks_executed() const {
    return tasks_executed_.load(std::memory_order_relaxed);
  }

  /// Tasks submitted but not yet popped by any thread. A saturation
  /// signal: the plan service degrades to the serial executor when this
  /// backs up far beyond the worker count.
  int64_t pending() const {
    return pending_.load(std::memory_order_acquire);
  }

  /// Counter snapshot (tasks executed, steals, peak queue depth).
  PoolStats stats() const;

 private:
  struct Queue {
    std::mutex mu;
    std::deque<std::function<void()>> items;
  };

  void WorkerLoop(int index);
  /// Pops from queue `preferred` first (front), then steals from the
  /// others (back). Returns false when every queue was empty.
  bool PopTask(int preferred, std::function<void()>* out);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> threads_;
  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> next_queue_{0};
  std::atomic<int64_t> pending_{0};
  std::atomic<int64_t> tasks_executed_{0};
  std::atomic<int64_t> steals_{0};
  std::atomic<int64_t> peak_queue_depth_{0};
  std::atomic<int64_t> wait_wakeups_{0};
};

}  // namespace remac

#endif  // REMAC_SCHED_THREAD_POOL_H_
