#ifndef REMAC_SCHED_THREAD_POOL_H_
#define REMAC_SCHED_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace remac {

class Counter;
class Gauge;

/// Lightweight pool counters for stats reports (plan service, benches).
/// All monotonically increasing since pool construction; reads are
/// relaxed snapshots.
struct PoolStats {
  int threads = 0;
  int64_t tasks_executed = 0;
  /// Tasks a worker popped from a sibling's deque.
  int64_t steals = 0;
  /// Deepest any single worker deque has been at submission time.
  int64_t peak_queue_depth = 0;
  /// Times a thread blocked on a pool condition variable (worker idle
  /// parks + RunAndWait latch waits). Waits are signaled, not polled, so
  /// this stays small even across long idle stretches — tests assert it.
  int64_t wait_wakeups = 0;
};

/// \brief Persistent work-stealing thread pool.
///
/// Each worker owns a deque: external submitters distribute tasks
/// round-robin across the deques, while a submit from a pool worker goes
/// onto the submitter's own deque (a worker-originated continuation is
/// overwhelmingly likely to be picked up next by that same worker, so
/// routing it anywhere else just forces a steal). Workers pop from the
/// front of their own deque and steal from the back of a sibling's when
/// it runs dry.
///
/// Idle workers park on a per-worker condition variable, not a global
/// one: Submit wakes the owner of the deque that received the task (or,
/// if that owner is busy, the nearest parked sibling, which will steal
/// it). When no worker is parked — the saturated steady state — Submit
/// touches no wake mutex at all. The old design funneled every Submit
/// and every idle sleep through one global sleep_mu_, which became the
/// dominant contention source past two threads.
///
/// The process hosts two long-lived lanes sized from one thread budget
/// (SetGlobalThreads): Global() is the execution lane (task-graph DAG
/// tasks, kernel ParallelFor fan-out) and RequestLane() is the request
/// lane (whole PlanService requests submitted via Session). Splitting
/// them keeps a burst of cheap request tasks from queueing behind one
/// request's DAG fan-out and vice versa; a lane left idle by the
/// workload costs nothing (its workers stay parked).
///
/// Nested blocking is safe at any pool size, including 1: a thread that
/// waits for sub-tasks (RunAndWait) keeps draining queues through
/// TryRunOne instead of sleeping, so the pool cannot deadlock on
/// recursive fan-out (DAG task -> kernel ParallelFor -> pool).
class ThreadPool {
 public:
  /// `threads` <= 0 selects the hardware default (capped at 16).
  /// `lane` selects the metric family this pool's counters mirror into
  /// ("exec" or "request"; nullptr = no lane metrics, e.g. test pools).
  explicit ThreadPool(int threads, const char* lane = nullptr);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(threads_.size()); }

  /// Enqueues a task for asynchronous execution. Called from one of this
  /// pool's own workers, the task lands on the submitter's deque;
  /// otherwise deques are filled round-robin.
  void Submit(std::function<void()> fn);

  /// Runs one pending task on the calling thread, if any queue holds one.
  /// Returns false when everything was empty. External threads use this
  /// to participate in pool work while they wait.
  bool TryRunOne();

  /// Runs every closure — on the pool workers plus the calling thread —
  /// and returns once all of them completed. Safe to call from inside a
  /// pool task (the caller helps instead of blocking).
  void RunAndWait(std::vector<std::function<void()>> tasks);

  /// Index of the current pool worker thread, or -1 for external threads.
  /// The id is scoped to the pool returned by CurrentPool().
  static int CurrentWorkerId();

  /// The pool whose worker the calling thread is, or nullptr for
  /// external threads. Waiters use this to help drain their own lane.
  static ThreadPool* CurrentPool();

  /// The process-wide execution lane (DAG tasks, kernel fan-out).
  static ThreadPool& Global();

  /// The process-wide request lane (PlanService Session submissions).
  static ThreadPool& RequestLane();

  /// Re-creates both lanes with `threads` workers each (<= 0 restores
  /// the hardware default). Lanes are sized from this one budget: each
  /// lane owns the full budget because at most one lane is CPU-saturated
  /// at a time in practice (parked workers cost nothing), and capping
  /// either lane below the budget reintroduces the head-of-line blocking
  /// the split exists to remove. No-ops for a lane whose size already
  /// matches. Must not be called while pool work is in flight.
  static void SetGlobalThreads(int threads);

  /// Re-sizes only the execution lane (RunConfig::pool_threads on a
  /// per-run basis). The request lane is left alone so a request-lane
  /// worker configuring its run's execution parallelism never joins the
  /// very lane it runs on.
  static void SetExecLaneThreads(int threads);

  /// Total tasks executed since construction (observability and tests).
  int64_t tasks_executed() const {
    return tasks_executed_.load(std::memory_order_relaxed);
  }

  /// Tasks submitted but not yet popped by any thread. A saturation
  /// signal: the plan service's admission control sheds task-graph
  /// fan-out when a lane's backlog runs far beyond its worker count.
  int64_t pending() const {
    return pending_.load(std::memory_order_acquire);
  }

  /// Counter snapshot (tasks executed, steals, peak queue depth).
  PoolStats stats() const;

 private:
  struct Queue {
    std::mutex mu;
    std::deque<std::function<void()>> items;
    /// Parking slot for the owning worker. `parked` is written under
    /// `park_mu` but read lock-free by submitters looking for a worker
    /// to wake.
    std::mutex park_mu;
    std::condition_variable park_cv;
    std::atomic<bool> parked{false};
  };

  void WorkerLoop(int index);
  /// Pops from queue `preferred` first (front), then steals from the
  /// others (back). Returns false when every queue was empty.
  bool PopTask(int preferred, std::function<void()>* out);
  /// Wakes the owner of queue `target` if it is parked, else the nearest
  /// parked sibling. No-op (no locks) when nobody is parked.
  void WakeForTask(size_t target);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> threads_;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> next_queue_{0};
  std::atomic<int64_t> pending_{0};
  std::atomic<int64_t> parked_count_{0};
  std::atomic<int64_t> tasks_executed_{0};
  std::atomic<int64_t> steals_{0};
  std::atomic<int64_t> peak_queue_depth_{0};
  std::atomic<int64_t> wait_wakeups_{0};
  /// Per-lane metric mirrors (null for unnamed pools).
  Counter* lane_tasks_ = nullptr;
  Gauge* lane_threads_ = nullptr;
};

}  // namespace remac

#endif  // REMAC_SCHED_THREAD_POOL_H_
