#include "sched/thread_pool.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace_context.h"

namespace remac {

namespace {

thread_local int tl_worker_id = -1;

/// Process-wide mirrors of the per-instance pool counters. PoolStats
/// stays the exact per-pool view (tests assert it; SetGlobalThreads
/// recreates pools); these aggregate across every pool's lifetime.
struct PoolMetrics {
  Counter* tasks =
      MetricsRegistry::Global().GetCounter("remac.pool.tasks_executed");
  Counter* steals = MetricsRegistry::Global().GetCounter("remac.pool.steals");
  Gauge* peak_queue_depth =
      MetricsRegistry::Global().GetGauge("remac.pool.peak_queue_depth");
  /// Submit-to-start latency, observed only while contention profiling
  /// is on (obs/trace_context Tracer) — the disabled path reads no
  /// clocks on submit or execution.
  Histogram* queue_seconds = MetricsRegistry::Global().GetHistogram(
      "remac.contention.pool_queue_seconds");
};

PoolMetrics& Metrics() {
  static PoolMetrics metrics;
  return metrics;
}

int ResolveThreads(int threads) {
  if (threads > 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(std::min(hw, 16u));
}

/// Holder for the process-wide pool; reset by SetGlobalThreads.
struct GlobalPoolHolder {
  std::mutex mu;
  std::unique_ptr<ThreadPool> pool;
  int configured = 0;  // <= 0: hardware default
};

GlobalPoolHolder& Holder() {
  static GlobalPoolHolder holder;
  return holder;
}

}  // namespace

ThreadPool::ThreadPool(int threads) {
  const int n = ResolveThreads(threads);
  queues_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) queues_.push_back(std::make_unique<Queue>());
  threads_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(sleep_mu_);
    sleep_cv_.notify_all();
  }
  for (auto& thread : threads_) thread.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  if (Tracer::Global().any_active()) {
    // Profiling wrapper: stamp the submit time and carry the submitter's
    // trace context into the task, so (a) submit-to-start queue latency
    // lands in remac.contention.pool_queue_seconds and (b) spans the
    // task records join the submitting request's tree even though it
    // runs on an arbitrary worker.
    fn = [fn = std::move(fn), ctx = CurrentTraceContext(),
          submit_us = TraceNowMicros()] {
      const double start_us = TraceNowMicros();
      Metrics().queue_seconds->Observe((start_us - submit_us) * 1e-6);
      RecordWaitSpanIn(ctx, "pool-queue", submit_us, start_us);
      TraceContextScope scope(ctx);
      fn();
    };
  }
  const size_t target = next_queue_.fetch_add(1, std::memory_order_relaxed) %
                        queues_.size();
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mu);
    queues_[target]->items.push_back(std::move(fn));
    const auto depth = static_cast<int64_t>(queues_[target]->items.size());
    int64_t peak = peak_queue_depth_.load(std::memory_order_relaxed);
    while (depth > peak &&
           !peak_queue_depth_.compare_exchange_weak(
               peak, depth, std::memory_order_relaxed)) {
    }
    Metrics().peak_queue_depth->SetMax(static_cast<double>(depth));
  }
  pending_.fetch_add(1, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(sleep_mu_);
    sleep_cv_.notify_one();
  }
}

bool ThreadPool::PopTask(int preferred, std::function<void()>* out) {
  const int n = static_cast<int>(queues_.size());
  // Own queue first (front: LIFO-ish locality for the owner is not
  // needed here; FIFO keeps DAG submission order roughly intact).
  for (int probe = 0; probe < n; ++probe) {
    const int q = (preferred + probe) % n;
    Queue& queue = *queues_[q];
    std::lock_guard<std::mutex> lock(queue.mu);
    if (queue.items.empty()) continue;
    if (probe == 0) {
      *out = std::move(queue.items.front());
      queue.items.pop_front();
    } else {
      // Steal from the back to reduce contention with the owner.
      *out = std::move(queue.items.back());
      queue.items.pop_back();
      steals_.fetch_add(1, std::memory_order_relaxed);
      Metrics().steals->Add();
    }
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    return true;
  }
  return false;
}

void ThreadPool::WorkerLoop(int index) {
  tl_worker_id = index;
  std::function<void()> task;
  while (true) {
    if (PopTask(index, &task)) {
      task();
      task = nullptr;
      tasks_executed_.fetch_add(1, std::memory_order_relaxed);
      Metrics().tasks->Add();
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) break;
    // Signaled sleep, no timeout: Submit bumps pending_ and notifies
    // under sleep_mu_, and the predicate re-checks it under the same
    // mutex, so a wakeup can't slip between the empty-queue probe above
    // and the wait below.
    std::unique_lock<std::mutex> lock(sleep_mu_);
    wait_wakeups_.fetch_add(1, std::memory_order_relaxed);
    sleep_cv_.wait(lock, [this] {
      return stop_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
  }
  tl_worker_id = -1;
}

bool ThreadPool::TryRunOne() {
  const int preferred =
      tl_worker_id >= 0
          ? tl_worker_id
          : static_cast<int>(next_queue_.load(std::memory_order_relaxed) %
                             queues_.size());
  std::function<void()> task;
  if (!PopTask(preferred, &task)) return false;
  task();
  tasks_executed_.fetch_add(1, std::memory_order_relaxed);
  Metrics().tasks->Add();
  return true;
}

void ThreadPool::RunAndWait(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  if (tasks.size() == 1) {
    tasks[0]();
    return;
  }
  struct Latch {
    std::mutex mu;
    std::condition_variable cv;
    int remaining;
  };
  auto latch = std::make_shared<Latch>();
  latch->remaining = static_cast<int>(tasks.size()) - 1;
  for (size_t i = 1; i < tasks.size(); ++i) {
    Submit([latch, task = std::move(tasks[i])] {
      task();
      std::lock_guard<std::mutex> lock(latch->mu);
      if (--latch->remaining == 0) latch->cv.notify_all();
    });
  }
  // The caller contributes the first chunk, then helps drain queues
  // until its own sub-tasks finished — this is what makes nested
  // RunAndWait deadlock-free even on a single-thread pool.
  tasks[0]();
  while (true) {
    {
      std::lock_guard<std::mutex> lock(latch->mu);
      if (latch->remaining == 0) return;
    }
    if (TryRunOne()) continue;
    // Every queue is empty, so the remaining sub-tasks are executing on
    // other threads: sleep until the last one's notify instead of
    // polling (the completion check runs under latch->mu, so the notify
    // cannot be missed).
    std::unique_lock<std::mutex> lock(latch->mu);
    wait_wakeups_.fetch_add(1, std::memory_order_relaxed);
    latch->cv.wait(lock, [&] { return latch->remaining == 0; });
    return;
  }
}

PoolStats ThreadPool::stats() const {
  PoolStats stats;
  stats.threads = size();
  stats.tasks_executed = tasks_executed_.load(std::memory_order_relaxed);
  stats.steals = steals_.load(std::memory_order_relaxed);
  stats.peak_queue_depth =
      peak_queue_depth_.load(std::memory_order_relaxed);
  stats.wait_wakeups = wait_wakeups_.load(std::memory_order_relaxed);
  return stats;
}

int ThreadPool::CurrentWorkerId() { return tl_worker_id; }

ThreadPool& ThreadPool::Global() {
  GlobalPoolHolder& holder = Holder();
  std::lock_guard<std::mutex> lock(holder.mu);
  if (holder.pool == nullptr) {
    holder.pool = std::make_unique<ThreadPool>(holder.configured);
  }
  return *holder.pool;
}

void ThreadPool::SetGlobalThreads(int threads) {
  GlobalPoolHolder& holder = Holder();
  std::lock_guard<std::mutex> lock(holder.mu);
  holder.configured = threads;
  if (holder.pool != nullptr &&
      holder.pool->size() == ResolveThreads(threads)) {
    return;
  }
  holder.pool.reset();  // joins workers; Global() recreates on demand
}

}  // namespace remac
